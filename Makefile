GO ?= go

.PHONY: all build test race vet bench tables snapshot trace clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Hot-path microbenchmarks + per-experiment wall times.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Regenerate every paper table/claim (E1-E15).
tables:
	$(GO) run ./cmd/benchtab

# Write a fresh benchmark regression snapshot (pick the next free number
# before committing: BENCH_1.json, BENCH_2.json, ...).
snapshot:
	$(GO) run ./cmd/benchtab -json BENCH_new.json

# Virtual-time trace of one experiment (override with EXP=E7 etc.); load
# trace.json at ui.perfetto.dev.
EXP ?= E4
trace:
	$(GO) run ./cmd/benchtab -e $(EXP) -trace trace.json -metrics metrics.txt

clean:
	$(GO) clean ./...
	rm -f BENCH_new.json trace.json metrics.txt
