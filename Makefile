GO ?= go

.PHONY: all build test race vet bench tables snapshot benchdiff pps profile trace timeline live-soak clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Hot-path microbenchmarks + per-experiment wall times.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Regenerate every paper table/claim (E1-E17).
tables:
	$(GO) run ./cmd/benchtab

# Write a fresh benchmark regression snapshot (pick the next free number
# before committing: BENCH_1.json, BENCH_2.json, ...).
snapshot:
	$(GO) run ./cmd/benchtab -json BENCH_new.json

# Regression guard: regenerate a snapshot (schema 5) and diff it against the
# newest committed BENCH_N.json. Fails on >10% ns/op regressions, any new
# hot-path allocation, (on hosts with >= 4 cpus) a sub-1.8x parallel speedup
# or a sharded pump (multicore decode / egress workers) falling behind the
# single pump, a >10% packets/sec drop on any macro shared with the baseline,
# or allocs/datagram growth on macros that carry the meta in both snapshots.
BENCH_BASE ?= $(lastword $(sort $(wildcard BENCH_[0-9]*.json)))
benchdiff:
	$(GO) run ./cmd/benchtab -pps -json BENCH_new.json > /dev/null
	$(GO) run ./cmd/benchdiff -base $(BENCH_BASE) -new BENCH_new.json

# Packets/sec headline: the E17 throughput table plus the sim/live macro
# rates (sim hot path at burst 64; live UDP pump single-core, multicore
# decode, and sharded egress — each live row also reports allocs/datagram).
pps:
	$(GO) run ./cmd/benchtab -pps -e E17

# CPU/heap/mutex profiles of the experiment batch (sharded; override with
# SHARDS=0 for the sequential profile). Inspect with `go tool pprof`.
SHARDS ?= 4
profile:
	$(GO) run ./cmd/benchtab -shards $(SHARDS) \
		-cpuprofile cpu.pb.gz -memprofile mem.pb.gz -mutexprofile mutex.pb.gz \
		> /dev/null
	@echo "wrote cpu.pb.gz mem.pb.gz mutex.pb.gz (go tool pprof cpu.pb.gz)"

# Virtual-time trace of one experiment (override with EXP=E7 etc.); load
# trace.json at ui.perfetto.dev.
EXP ?= E4
trace:
	$(GO) run ./cmd/benchtab -e $(EXP) -trace trace.json -metrics metrics.txt

# Metrics timeline of one sim run (override NF=ddos etc.), schema-validated
# by cmd/timelinecheck. The same JSONL document streams from the live soak
# (-soak.timeline) and from any live swishd role (-live.timeline).
NF ?= lb
timeline:
	$(GO) run ./cmd/swishd -nf $(NF) -duration 100ms -timeline timeline.jsonl
	$(GO) run ./cmd/timelinecheck timeline.jsonl

# Loopback live-cluster soak under the race detector: real UDP transport,
# injected loss, explore oracles over the surviving state, plus the metrics
# timeline (and, on failure, flight recorder) artifacts.
live-soak:
	$(GO) test ./internal/livecluster -race -count=1 -v -run 'TestSoak$$' \
		-soak.budget=2s -soak.loss=0.05 -soak.out=$(CURDIR)/soak-metrics.txt \
		-soak.timeline=$(CURDIR)/soak-timeline.jsonl \
		-soak.flightrec=$(CURDIR)/soak-flightrec.txt
	$(GO) run ./cmd/timelinecheck soak-timeline.jsonl

clean:
	$(GO) clean ./...
	rm -f BENCH_new.json trace.json metrics.txt timeline.jsonl \
		soak-metrics.txt soak-timeline.jsonl soak-flightrec.txt \
		cpu.pb.gz mem.pb.gz mutex.pb.gz
