GO ?= go

.PHONY: all build test race vet bench tables snapshot trace live-soak clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Hot-path microbenchmarks + per-experiment wall times.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Regenerate every paper table/claim (E1-E15).
tables:
	$(GO) run ./cmd/benchtab

# Write a fresh benchmark regression snapshot (pick the next free number
# before committing: BENCH_1.json, BENCH_2.json, ...).
snapshot:
	$(GO) run ./cmd/benchtab -json BENCH_new.json

# Virtual-time trace of one experiment (override with EXP=E7 etc.); load
# trace.json at ui.perfetto.dev.
EXP ?= E4
trace:
	$(GO) run ./cmd/benchtab -e $(EXP) -trace trace.json -metrics metrics.txt

# Loopback live-cluster soak under the race detector: real UDP transport,
# injected loss, explore oracles over the surviving state.
live-soak:
	$(GO) test ./internal/livecluster -race -count=1 -v -run 'TestSoak$$' \
		-soak.budget=2s -soak.loss=0.05 -soak.out=$(CURDIR)/soak-metrics.txt

clean:
	$(GO) clean ./...
	rm -f BENCH_new.json trace.json metrics.txt soak-metrics.txt
