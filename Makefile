GO ?= go

.PHONY: all build test race vet bench tables snapshot clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Hot-path microbenchmarks + per-experiment wall times.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Regenerate every paper table/claim (E1-E15).
tables:
	$(GO) run ./cmd/benchtab

# Write a fresh benchmark regression snapshot (pick the next free number
# before committing: BENCH_1.json, BENCH_2.json, ...).
snapshot:
	$(GO) run ./cmd/benchtab -json BENCH_new.json

clean:
	$(GO) clean ./...
	rm -f BENCH_new.json
