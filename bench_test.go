// Benchmarks regenerating the paper's tables and claims: one benchmark per
// experiment in the DESIGN.md index (E1–E18), plus microbenchmarks of the
// protocol hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// Each experiment benchmark reports the wall time of one full experiment
// run; the regenerated rows themselves are printed by cmd/benchtab.
package swishmem_test

import (
	"strings"
	"testing"
	"time"

	"swishmem"
	"swishmem/internal/experiments"
	"swishmem/internal/sim"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := e.Run(int64(i + 1))
		for _, n := range res.Notes {
			if strings.Contains(n, "SHAPE VIOLATION") || strings.Contains(n, "MISMATCH") {
				b.Fatalf("%s: %s", id, n)
			}
		}
	}
}

// BenchmarkTable1_NFAccessPatterns regenerates Table 1 (E1).
func BenchmarkTable1_NFAccessPatterns(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2_SwitchVsServer regenerates the §3.1 throughput claim.
func BenchmarkE2_SwitchVsServer(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3_SyncBandwidth regenerates the §6.2 bandwidth math.
func BenchmarkE3_SyncBandwidth(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4_SROLatency regenerates the §6.1 latency characterization.
func BenchmarkE4_SROLatency(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5_ProtocolMatrix regenerates the §5 cost matrix.
func BenchmarkE5_ProtocolMatrix(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6_EWOConvergence regenerates the §6.2 convergence-under-loss sweep.
func BenchmarkE6_EWOConvergence(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7_Failover regenerates the §6.3 failover/recovery measurements.
func BenchmarkE7_Failover(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8_LWWvsCRDT regenerates the §6.2 merge comparison.
func BenchmarkE8_LWWvsCRDT(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9_PCCViolations regenerates the §3.2 sharded-vs-replicated LB comparison.
func BenchmarkE9_PCCViolations(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10_Memory regenerates the §7 SRAM overhead tables.
func BenchmarkE10_Memory(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11_Batching regenerates the §7 batching trade-off.
func BenchmarkE11_Batching(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12_DataVsControlPlane regenerates the §3.3 comparison.
func BenchmarkE12_DataVsControlPlane(b *testing.B) { benchExperiment(b, "E12") }

// --- protocol hot-path microbenchmarks ---
//
// The benchmark bodies live in internal/experiments/micro.go so that
// cmd/benchtab can run the same code under testing.Benchmark and write the
// BENCH_*.json regression snapshots.

// BenchmarkSROWriteCommit measures the replicated write path on a 3-switch
// chain; commit drains run off the clock (see MicroSROWriteCommit).
func BenchmarkSROWriteCommit(b *testing.B) { experiments.MicroSROWriteCommit(b) }

// BenchmarkEWOCounterAdd measures the EWO fast path: local apply plus
// multicast enqueue.
func BenchmarkEWOCounterAdd(b *testing.B) { experiments.MicroEWOCounterAdd(b) }

// BenchmarkSROLocalRead measures the clean-key local read path.
func BenchmarkSROLocalRead(b *testing.B) { experiments.MicroSROLocalRead(b) }

// BenchmarkShardedCounterAdd measures the EWO fast path with the cluster
// sharded across 3 engines, windowed drain included in the timed region.
func BenchmarkShardedCounterAdd(b *testing.B) { experiments.MicroShardedCounterAdd(b) }

// --- steady-state allocation budgets ---
//
// These tests pin the zero-allocation guarantees the pooled hot paths
// provide; a regression that reintroduces per-op garbage fails here long
// before it shows up in benchmark noise.

// TestEWOCounterAddAllocBudget: after warmup, an EWO counter increment
// (local apply + multicast enqueue + pooled flush) allocates nothing.
func TestEWOCounterAddAllocBudget(t *testing.T) {
	c, _ := swishmem.New(swishmem.Config{Switches: 3, Seed: 1})
	regs, err := c.DeclareCounter("b", swishmem.EventualOptions{Capacity: 64, DisableSync: true})
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * time.Millisecond)
	// Warm pools (events, deliveries, tasks, updates) and the slot maps.
	for i := 0; i < 512; i++ {
		regs[0].Add(uint64(i%64), 1)
	}
	c.RunFor(10 * time.Millisecond)
	allocs := testing.AllocsPerRun(1000, func() {
		regs[0].Add(3, 1)
		// Drain the multicast deliveries so pooled events, network
		// deliveries, and updates cycle back to their free lists.
		c.RunFor(time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("EWO counter Add+deliver allocates %v per op, want 0", allocs)
	}
}

// TestShardedCounterAddAllocBudget: the sharded steady state allocates
// nothing either — the per-shard window loop is the same pooled Step as the
// sequential engine, the barrier is slice resets, and shard wakeups are
// channel sends of a scalar. This pins the parallel mode's zero-alloc
// hot-path guarantee.
func TestShardedCounterAddAllocBudget(t *testing.T) {
	c, _ := swishmem.New(swishmem.Config{Switches: 3, Seed: 1, Shards: 3})
	defer c.Close()
	regs, err := c.DeclareCounter("b", swishmem.EventualOptions{Capacity: 64, DisableSync: true})
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * time.Millisecond)
	for i := 0; i < 512; i++ {
		regs[0].Add(uint64(i%64), 1)
	}
	c.RunFor(10 * time.Millisecond)
	allocs := testing.AllocsPerRun(1000, func() {
		regs[0].Add(3, 1)
		c.RunFor(time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("sharded counter Add+window drain allocates %v per op, want 0", allocs)
	}
}

// TestEventSchedulingAllocBudget: scheduling and running a pooled simulator
// event allocates nothing once the free list is warm.
func TestEventSchedulingAllocBudget(t *testing.T) {
	eng := sim.NewEngine(1)
	fn := func() {}
	eng.ScheduleAfter(1, fn)
	eng.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		eng.ScheduleAfter(1, fn)
		eng.Run()
	})
	if allocs != 0 {
		t.Fatalf("event scheduling allocates %v per op, want 0", allocs)
	}
}

// TestSROLocalReadAllocBudget: a clean-key local read allocates nothing.
func TestSROLocalReadAllocBudget(t *testing.T) {
	c, _ := swishmem.New(swishmem.Config{Switches: 3, Seed: 1})
	regs, err := c.DeclareStrong("b", swishmem.StrongOptions{Capacity: 1024, ValueWidth: 8})
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * time.Millisecond)
	regs[0].Write(1, []byte("12345678"), nil)
	c.RunFor(10 * time.Millisecond)
	allocs := testing.AllocsPerRun(1000, func() {
		regs[1].Read(1, func(v []byte, ok bool) {})
	})
	if allocs != 0 {
		t.Fatalf("SRO local read allocates %v per op, want 0", allocs)
	}
}

// BenchmarkE13_ReadPathAblation regenerates the local-read ablation.
func BenchmarkE13_ReadPathAblation(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkE14_GroupSharing regenerates the §7 group-sharing ablation.
func BenchmarkE14_GroupSharing(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkE15_LossAnomaly regenerates the §9 anomaly-window measurement.
func BenchmarkE15_LossAnomaly(b *testing.B) { benchExperiment(b, "E15") }

// BenchmarkE18_NthLossAnomaly compares the anomaly rate under deterministic
// every-Nth loss vs random loss at matched long-run rates.
func BenchmarkE18_NthLossAnomaly(b *testing.B) { benchExperiment(b, "E18") }
