// Benchmarks regenerating the paper's tables and claims: one benchmark per
// experiment in the DESIGN.md index (E1–E15), plus microbenchmarks of the
// protocol hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// Each experiment benchmark reports the wall time of one full experiment
// run; the regenerated rows themselves are printed by cmd/benchtab.
package swishmem_test

import (
	"strings"
	"testing"
	"time"

	"swishmem"
	"swishmem/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := e.Run(int64(i + 1))
		for _, n := range res.Notes {
			if strings.Contains(n, "SHAPE VIOLATION") || strings.Contains(n, "MISMATCH") {
				b.Fatalf("%s: %s", id, n)
			}
		}
	}
}

// BenchmarkTable1_NFAccessPatterns regenerates Table 1 (E1).
func BenchmarkTable1_NFAccessPatterns(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2_SwitchVsServer regenerates the §3.1 throughput claim.
func BenchmarkE2_SwitchVsServer(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3_SyncBandwidth regenerates the §6.2 bandwidth math.
func BenchmarkE3_SyncBandwidth(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4_SROLatency regenerates the §6.1 latency characterization.
func BenchmarkE4_SROLatency(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5_ProtocolMatrix regenerates the §5 cost matrix.
func BenchmarkE5_ProtocolMatrix(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6_EWOConvergence regenerates the §6.2 convergence-under-loss sweep.
func BenchmarkE6_EWOConvergence(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7_Failover regenerates the §6.3 failover/recovery measurements.
func BenchmarkE7_Failover(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8_LWWvsCRDT regenerates the §6.2 merge comparison.
func BenchmarkE8_LWWvsCRDT(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9_PCCViolations regenerates the §3.2 sharded-vs-replicated LB comparison.
func BenchmarkE9_PCCViolations(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10_Memory regenerates the §7 SRAM overhead tables.
func BenchmarkE10_Memory(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11_Batching regenerates the §7 batching trade-off.
func BenchmarkE11_Batching(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12_DataVsControlPlane regenerates the §3.3 comparison.
func BenchmarkE12_DataVsControlPlane(b *testing.B) { benchExperiment(b, "E12") }

// --- protocol hot-path microbenchmarks ---

// BenchmarkSROWriteCommit measures end-to-end replicated write throughput
// on a 3-switch chain (virtual network; wall time is simulator overhead).
func BenchmarkSROWriteCommit(b *testing.B) {
	c, _ := swishmem.New(swishmem.Config{Switches: 3, Seed: 1})
	regs, err := c.DeclareStrong("b", swishmem.StrongOptions{Capacity: 1 << 16, ValueWidth: 8})
	if err != nil {
		b.Fatal(err)
	}
	c.RunFor(2 * time.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	committed := 0
	for i := 0; i < b.N; i++ {
		regs[0].Write(uint64(i%(1<<15)), []byte("12345678"), func(ok bool) {
			if ok {
				committed++
			}
		})
		if i%256 == 255 {
			c.RunFor(50 * time.Millisecond)
		}
	}
	c.RunFor(time.Second)
	b.StopTimer()
	if committed == 0 {
		b.Fatal("no writes committed")
	}
}

// BenchmarkEWOCounterAdd measures the EWO fast path: local apply plus
// multicast enqueue.
func BenchmarkEWOCounterAdd(b *testing.B) {
	c, _ := swishmem.New(swishmem.Config{Switches: 3, Seed: 1})
	regs, err := c.DeclareCounter("b", swishmem.EventualOptions{Capacity: 1 << 16, DisableSync: true})
	if err != nil {
		b.Fatal(err)
	}
	c.RunFor(2 * time.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		regs[0].Add(uint64(i%(1<<15)), 1)
		if i%1024 == 1023 {
			c.RunFor(time.Millisecond)
		}
	}
}

// BenchmarkSROLocalRead measures the clean-key local read path.
func BenchmarkSROLocalRead(b *testing.B) {
	c, _ := swishmem.New(swishmem.Config{Switches: 3, Seed: 1})
	regs, err := c.DeclareStrong("b", swishmem.StrongOptions{Capacity: 1024, ValueWidth: 8})
	if err != nil {
		b.Fatal(err)
	}
	c.RunFor(2 * time.Millisecond)
	regs[0].Write(1, []byte("12345678"), nil)
	c.RunFor(10 * time.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		regs[1].Read(1, func(v []byte, ok bool) {})
	}
}

// BenchmarkE13_ReadPathAblation regenerates the local-read ablation.
func BenchmarkE13_ReadPathAblation(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkE14_GroupSharing regenerates the §7 group-sharing ablation.
func BenchmarkE14_GroupSharing(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkE15_LossAnomaly regenerates the §9 anomaly-window measurement.
func BenchmarkE15_LossAnomaly(b *testing.B) { benchExperiment(b, "E15") }
