package swishmem

import (
	"encoding/binary"
	"testing"
	"time"
)

// Direct coverage of the cluster fault-injection surface used by the
// randomized explorer (internal/explore): Partition/HealPartition semantics
// and EWO spare recovery via JoinCounterGroup, including its error paths.

func newFaultCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestPartitionDropsCrossGroupTraffic checks the partition model end to end:
// while partitioned, EWO counter state diverges exactly along group lines
// (cross-group multicasts and syncs are dropped on the fabric), and after
// HealPartition the periodic synchronization reconverges every replica to
// the exact global total.
func TestPartitionDropsCrossGroupTraffic(t *testing.T) {
	c := newFaultCluster(t, Config{Switches: 4, Seed: 1})
	ctr, err := c.DeclareCounter("c", EventualOptions{
		Capacity: 64, SyncPeriod: 500 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * time.Millisecond)

	c.Partition([]int{0, 1}, []int{2, 3})
	before := c.NetworkTotals()

	ctr[0].Add(7, 10) // side A
	ctr[2].Add(7, 5)  // side B
	c.RunFor(5 * time.Millisecond)

	for i, want := range map[int]uint64{0: 10, 1: 10, 2: 5, 3: 5} {
		if got := ctr[i].Sum(7); got != want {
			t.Errorf("during partition: node %d sum = %d, want only its side's %d", i, got, want)
		}
	}
	if d := c.NetworkTotals().MsgsDropped - before.MsgsDropped; d == 0 {
		t.Error("no messages were dropped while partitioned")
	}

	c.HealPartition()
	c.RunFor(5 * time.Millisecond)
	for i := 0; i < 4; i++ {
		if got := ctr[i].Sum(7); got != 15 {
			t.Errorf("after heal: node %d sum = %d, want exact total 15", i, got)
		}
	}
}

// TestPartitionMinorityWriteCommitsAfterHeal checks SRO behavior across a
// partition: a write issued on the minority side cannot commit while the
// chain is severed (the chain spans both sides), the protocol keeps
// retrying, and once the partition heals within the retry budget the write
// commits and is readable from the other side.
func TestPartitionMinorityWriteCommitsAfterHeal(t *testing.T) {
	c := newFaultCluster(t, Config{Switches: 3, Seed: 1})
	strong, err := c.DeclareStrong("s", StrongOptions{
		Capacity: 64, ValueWidth: 8, RetryTimeout: 500 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * time.Millisecond)

	c.Partition([]int{0}, []int{1, 2})
	val := make([]byte, 8)
	binary.BigEndian.PutUint64(val, 0xfeedface)
	resolved, committed := false, false
	strong[0].Write(3, val, func(ok bool) { resolved, committed = true, ok })

	c.RunFor(3 * time.Millisecond)
	if resolved {
		t.Fatalf("write resolved (ok=%v) while the chain was partitioned", committed)
	}

	c.HealPartition()
	c.RunFor(30 * time.Millisecond)
	if !resolved || !committed {
		t.Fatalf("write did not commit after heal (resolved=%v ok=%v)", resolved, committed)
	}
	var got []byte
	var ok bool
	strong[2].Read(3, func(v []byte, o bool) { got, ok = v, o })
	c.RunFor(5 * time.Millisecond)
	if !ok || binary.BigEndian.Uint64(got) != 0xfeedface {
		t.Fatalf("read from far side after heal: ok=%v val=%x", ok, got)
	}
}

// TestOneWayHeartbeatLossEvictsThenRevives covers the asymmetric-partition
// trap for the failure detector: the victim->controller direction dies (its
// heartbeats vanish) while controller->victim stays healthy. The controller
// must evict the — actually healthy — switch, and because the config path
// still works the victim immediately learns it is out: no split-brain, and
// the surviving chain keeps committing. Healing the direction lets the
// heartbeats flow again and the revival path walks the victim back in.
func TestOneWayHeartbeatLossEvictsThenRevives(t *testing.T) {
	c := newFaultCluster(t, Config{Switches: 3, Seed: 3,
		HeartbeatPeriod: 500 * time.Microsecond})
	strong, err := c.DeclareStrong("s", StrongOptions{
		Capacity: 64, ValueWidth: 8, RetryTimeout: 500 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	ctr, err := c.DeclareCounter("c", EventualOptions{
		Capacity: 64, SyncPeriod: 500 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * time.Millisecond)
	ctr[0].Add(1, 10)
	c.RunFor(2 * time.Millisecond)

	const victim = 1
	vAddr := c.Switch(victim).Addr()
	def := c.Link(0, 1) // the cluster-wide default profile
	dead := def
	dead.Deny = DenyBlackhole
	c.SetControllerLink(victim, dead, def)
	c.RunFor(10 * time.Millisecond)

	ctrl := c.Controller()
	if !ctrl.Dead(vAddr) {
		t.Fatal("one-way heartbeat loss not detected: silence must mean dead")
	}
	if ctrl.Stats.FailuresSeen.Value() == 0 {
		t.Fatal("no failure recorded for the muted switch")
	}
	// The reconfigured chain (victim excluded) still serves writes, and
	// counter traffic keeps flowing among the survivors.
	committed := false
	val := make([]byte, 8)
	binary.BigEndian.PutUint64(val, 0xabcd)
	strong[0].Write(5, val, func(ok bool) { committed = ok })
	ctr[2].Add(1, 3)
	c.RunFor(10 * time.Millisecond)
	if !committed {
		t.Fatal("write did not commit while the healthy-but-muted switch was evicted")
	}

	// Heal the heartbeat direction: the very next beat revives the victim and
	// the controller walks it back into its chain (spare path) and group.
	c.SetControllerLink(victim, def, def)
	c.RunFor(30 * time.Millisecond)
	if ctrl.Dead(vAddr) {
		t.Fatal("victim still dead after the heartbeat path healed")
	}
	if ctrl.Stats.Revivals.Value() == 0 {
		t.Fatal("no revival recorded after heal")
	}
	// Group rejoin reconciles both ways: every replica — including the one
	// that missed the mid-outage increments — converges to the exact total.
	for i := 0; i < 3; i++ {
		if got := ctr[i].Sum(1); got != 13 {
			t.Errorf("node %d sum = %d, want exact total 13", i, got)
		}
	}
	// And the re-formed chain commits with the victim back in the loop.
	committed = false
	strong[victim].Write(6, val, func(ok bool) { committed = ok })
	c.RunFor(10 * time.Millisecond)
	if !committed {
		t.Error("write via revived switch did not commit")
	}
}

// TestJoinCounterGroupUnderConcurrentWrites exercises §6.3 EWO recovery with
// traffic in flight: a spare joins the counter group mid-workload and must
// converge to the exact total, including increments issued both before and
// after the join.
func TestJoinCounterGroupUnderConcurrentWrites(t *testing.T) {
	c := newFaultCluster(t, Config{Switches: 3, Spares: 1, Seed: 1})
	ctr, err := c.DeclareCounter("c", EventualOptions{
		Capacity: 64, SyncPeriod: 500 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * time.Millisecond)

	var total uint64
	add := func(node int, delta uint64) {
		ctr[node].Add(1, delta)
		total += delta
		c.RunFor(100 * time.Microsecond)
	}

	for i := 0; i < 30; i++ {
		add(i%3, uint64(i%5+1))
		if i == 15 {
			if err := c.JoinCounterGroup("c", 3); err != nil {
				t.Fatalf("join: %v", err)
			}
		}
	}
	c.RunFor(5 * time.Millisecond) // a few sync periods to converge

	id, okID := c.RegisterID("c")
	if !okID {
		t.Fatal("register \"c\" missing")
	}
	spare, err := c.Instance(3).CounterHandle(id)
	if err != nil {
		t.Fatalf("spare has no counter handle after join: %v", err)
	}
	if got := spare.Sum(1); got != total {
		t.Errorf("spare sum = %d, want exact total %d", got, total)
	}
	for i := 0; i < 3; i++ {
		if got := ctr[i].Sum(1); got != total {
			t.Errorf("replica %d sum = %d, want %d", i, got, total)
		}
	}
}

func TestJoinCounterGroupErrors(t *testing.T) {
	c := newFaultCluster(t, Config{Switches: 2, Spares: 1, Seed: 1})
	if _, err := c.DeclareCounter("c", EventualOptions{Capacity: 8}); err != nil {
		t.Fatal(err)
	}
	if err := c.JoinCounterGroup("nope", 2); err == nil {
		t.Error("unknown register name accepted")
	}
	if err := c.JoinCounterGroup("c", 0); err == nil {
		t.Error("replica index accepted as a spare")
	}
	if err := c.JoinCounterGroup("c", 3); err == nil {
		t.Error("out-of-range spare index accepted")
	}

	// With the controller disabled there is no group membership to amend.
	nc := newFaultCluster(t, Config{Switches: 2, Spares: 1, Seed: 1, DisableController: true})
	if _, err := nc.DeclareCounter("c", EventualOptions{Capacity: 8}); err != nil {
		t.Fatal(err)
	}
	if err := nc.JoinCounterGroup("c", 2); err == nil {
		t.Error("join accepted with controller disabled")
	}
}
