// benchdiff is the benchmark regression guard: it compares a freshly
// generated benchtab snapshot (see cmd/benchtab -json) against a committed
// baseline and fails when the hot paths got slower or started allocating.
//
// Usage:
//
//	benchdiff -base BENCH_3.json -new BENCH_new.json
//	benchdiff -base BENCH_3.json -new BENCH_new.json -tolerance 0.15
//
// Checks, in order:
//
//  1. Every microbenchmark present in the baseline must be present in the
//     new snapshot (a vanished benchmark hides a regression).
//  2. ns/op must not regress by more than -tolerance (default 10%).
//  3. allocs/op must not increase at all — the pooled hot paths are
//     zero-alloc by design, and a single new allocation per op is a real
//     regression, not noise.
//  4. When the generating machine can overlap shards (cpus >= 4 in the new
//     snapshot), the parallel-scaling experiment must report a speedup of
//     at least -minspeedup (default 1.8) at 4 shards. On smaller hosts the
//     check is skipped: conservative windows still run correctly on one
//     core, they just cannot overlap, so wall-clock speedup is meaningless
//     there.
//  5. Every -pps macro present in both snapshots must keep at least
//     (1 - -ppstolerance) of its baseline packets/sec, and on cpus >= 4
//     both sharded live pumps — multicore decode and sharded egress — must
//     hold -minppsscale of the single-pump rate (self-disabling on smaller
//     hosts, mirroring check 4).
//  6. A macro carrying allocs_per_datagram meta in both snapshots must not
//     grow it by more than 0.5: the batched receive path decodes into
//     pooled view sets and is zero-alloc by design.
//
// Wall times of whole experiments are reported but never gated — they vary
// with machine load far more than the testing.Benchmark micros do.
//
// Exit status: 0 clean, 1 regression, 2 usage or unreadable snapshot.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// micro mirrors cmd/benchtab's microResult.
type micro struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// experiment mirrors cmd/benchtab's expResult.
type experiment struct {
	ID      string             `json:"id"`
	WallMs  float64            `json:"wall_ms"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// macro mirrors cmd/benchtab's MacroResult (schema 4 packets/sec rows;
// schema 5 adds per-row meta like allocs_per_datagram).
type macro struct {
	Name string             `json:"name"`
	PPS  float64            `json:"pps"`
	Ops  uint64             `json:"ops"`
	Meta map[string]float64 `json:"meta,omitempty"`
}

// snapshot mirrors cmd/benchtab's snapshot. Schema 2 baselines (no shards/
// cpus fields) load with zero values, which only disables the speedup gate;
// schema 3 baselines have no macro rows, which only disables the pps floor.
type snapshot struct {
	Schema      int          `json:"schema"`
	Seed        int64        `json:"seed"`
	CPUs        int          `json:"cpus"`
	Micro       []micro      `json:"micro"`
	Experiments []experiment `json:"experiments"`
	Macro       []macro      `json:"macro,omitempty"`
}

// load reads a snapshot leniently: the document itself must be JSON, but a
// section or row that no longer matches this binary's schema is skipped with
// a printed note instead of aborting the diff, so benchdiff keeps working
// against snapshots from an older or newer benchtab. A skipped row only
// relaxes the specific gate that needed it; everything parseable is still
// checked.
func load(path string) (*snapshot, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sections map[string]json.RawMessage
	if err := json.Unmarshal(buf, &sections); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	s := &snapshot{}
	scalarField(path, sections, "schema", &s.Schema)
	scalarField(path, sections, "seed", &s.Seed)
	scalarField(path, sections, "cpus", &s.CPUs)
	s.Micro = sectionRows[micro](path, sections, "micro")
	s.Experiments = sectionRows[experiment](path, sections, "experiments")
	s.Macro = sectionRows[macro](path, sections, "macro")
	return s, nil
}

func scalarField[T any](path string, sections map[string]json.RawMessage, name string, dst *T) {
	raw, ok := sections[name]
	if !ok {
		return
	}
	if err := json.Unmarshal(raw, dst); err != nil {
		fmt.Printf("note  %s: ignoring %q field with unknown shape\n", path, name)
	}
}

func sectionRows[T any](path string, sections map[string]json.RawMessage, name string) []T {
	raw, ok := sections[name]
	if !ok {
		return nil
	}
	var items []json.RawMessage
	if err := json.Unmarshal(raw, &items); err != nil {
		fmt.Printf("note  %s: ignoring %q section with unknown shape\n", path, name)
		return nil
	}
	out := make([]T, 0, len(items))
	skipped := 0
	for _, item := range items {
		var v T
		if err := json.Unmarshal(item, &v); err != nil {
			skipped++
			continue
		}
		out = append(out, v)
	}
	if skipped > 0 {
		fmt.Printf("note  %s: skipped %d %q row(s) with unknown shape\n", path, skipped, name)
	}
	return out
}

func main() {
	var (
		basePath   = flag.String("base", "", "committed baseline snapshot (required)")
		newPath    = flag.String("new", "", "freshly generated snapshot (required)")
		tolerance  = flag.Float64("tolerance", 0.10, "allowed fractional ns/op regression per microbenchmark")
		minSpeedup = flag.Float64("minspeedup", 1.8, "required parallel speedup at 4 shards (checked only when cpus >= 4)")
		ppsTol     = flag.Float64("ppstolerance", 0.10, "allowed fractional packets/sec drop per -pps macro")
		minPPS     = flag.Float64("minppsscale", 0.9, "required multicore/single pps ratio for the sharded pump (checked only when cpus >= 4)")
	)
	flag.Parse()
	if *basePath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -base and -new are required")
		flag.Usage()
		os.Exit(2)
	}
	base, err := load(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	fresh, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	failures := 0
	fail := func(format string, args ...any) {
		failures++
		fmt.Printf("FAIL  "+format+"\n", args...)
	}

	newMicros := make(map[string]micro, len(fresh.Micro))
	for _, m := range fresh.Micro {
		newMicros[m.Name] = m
	}
	for _, b := range base.Micro {
		n, ok := newMicros[b.Name]
		if !ok {
			fail("%s: present in %s but missing from %s", b.Name, *basePath, *newPath)
			continue
		}
		ratio := 0.0
		if b.NsPerOp > 0 {
			ratio = n.NsPerOp/b.NsPerOp - 1
		}
		switch {
		case ratio > *tolerance:
			fail("%s: %.1f ns/op -> %.1f ns/op (%+.1f%%, tolerance %.0f%%)",
				b.Name, b.NsPerOp, n.NsPerOp, 100*ratio, 100**tolerance)
		case n.AllocsPerOp > b.AllocsPerOp:
			fail("%s: allocs/op grew %d -> %d (hot paths must not add allocations)",
				b.Name, b.AllocsPerOp, n.AllocsPerOp)
		default:
			fmt.Printf("ok    %s: %.1f ns/op (%+.1f%%), %d allocs/op\n",
				b.Name, n.NsPerOp, 100*ratio, n.AllocsPerOp)
		}
	}

	checkSpeedup(fresh, *minSpeedup, fail)
	checkPPS(base, fresh, *ppsTol, *minPPS, fail)

	var baseWall, newWall float64
	for _, e := range base.Experiments {
		baseWall += e.WallMs
	}
	for _, e := range fresh.Experiments {
		newWall += e.WallMs
	}
	fmt.Printf("info  experiment batch wall time: %.0f ms -> %.0f ms (informational, not gated)\n",
		baseWall, newWall)

	if failures > 0 {
		fmt.Printf("benchdiff: %d regression(s) vs %s\n", failures, *basePath)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: no regressions vs %s\n", *basePath)
}

// checkSpeedup gates the parallel-simulation speedup claim on hosts with
// enough cores to overlap 4 shards.
func checkSpeedup(fresh *snapshot, min float64, fail func(string, ...any)) {
	if fresh.CPUs < 4 {
		fmt.Printf("skip  parallel speedup: host has %d cpu(s), shards cannot overlap\n", fresh.CPUs)
		return
	}
	for _, e := range fresh.Experiments {
		if e.ID != "E16" {
			continue
		}
		sp, ok := e.Metrics["parallel.speedup/shards=4"]
		if !ok {
			fail("E16 ran but recorded no parallel.speedup/shards=4 metric")
			return
		}
		if sp < min {
			fail("parallel speedup at 4 shards is %.2fx, want >= %.2fx (cpus=%d)", sp, min, fresh.CPUs)
		} else {
			fmt.Printf("ok    parallel speedup at 4 shards: %.2fx (cpus=%d)\n", sp, fresh.CPUs)
		}
		return
	}
	fmt.Printf("skip  parallel speedup: snapshot does not include E16\n")
}

// checkPPS holds the packets/sec floor: every macro present in BOTH
// snapshots must not drop by more than tol, and on hosts with the cores to
// overlap decode shards the multicore pump must keep at least minScale of
// the single-pump rate (on smaller hosts the scale gate self-disables — the
// sharded pump still merges correctly there, it just cannot run faster).
func checkPPS(base, fresh *snapshot, tol, minScale float64, fail func(string, ...any)) {
	if len(fresh.Macro) == 0 {
		if len(base.Macro) > 0 {
			fail("baseline has %d pps macro(s) but the new snapshot has none (run benchtab with -pps)", len(base.Macro))
		}
		return
	}
	freshPPS := make(map[string]macro, len(fresh.Macro))
	for _, m := range fresh.Macro {
		freshPPS[m.Name] = m
	}
	for _, b := range base.Macro {
		n, ok := freshPPS[b.Name]
		if !ok {
			fail("pps %s: present in baseline but missing from new snapshot", b.Name)
			continue
		}
		drop := 0.0
		if b.PPS > 0 {
			drop = 1 - n.PPS/b.PPS
		}
		if drop > tol {
			fail("pps %s: %.0f -> %.0f pkts/s (-%.1f%%, tolerance %.0f%%)",
				b.Name, b.PPS, n.PPS, 100*drop, 100*tol)
		} else {
			fmt.Printf("ok    pps %s: %.0f pkts/s (%+.1f%%)\n", b.Name, n.PPS, -100*drop)
		}
		checkAllocs(b, n, fail)
	}
	single, okS := freshPPS["live.pps/pump=1"]
	if !okS {
		return
	}
	if fresh.CPUs < 4 {
		fmt.Printf("skip  pump scale gates: host has %d cpu(s), decode/egress workers cannot overlap\n", fresh.CPUs)
		return
	}
	// On hosts that can overlap the workers, neither sharded variant may fall
	// meaningfully behind the single pump: decode shards on the receive side,
	// egress workers on the send side.
	for _, name := range []string{"live.pps/multicore", "live.pps/egress"} {
		m, ok := freshPPS[name]
		if !ok {
			continue
		}
		if single.PPS > 0 && m.PPS < minScale*single.PPS {
			fail("%s is %.2fx the single pump (%.0f vs %.0f pkts/s), want >= %.2fx (cpus=%d)",
				name, m.PPS/single.PPS, m.PPS, single.PPS, minScale, fresh.CPUs)
		} else if single.PPS > 0 {
			fmt.Printf("ok    %s scale: %.2fx single (cpus=%d)\n", name, m.PPS/single.PPS, fresh.CPUs)
		}
	}
}

// allocsSlack is how far a macro's allocs_per_datagram may drift above the
// baseline before it counts as a regression: the measurement attributes the
// whole process's mallocs to received datagrams, so sub-one jitter from
// timers and runtime bookkeeping is expected; a sustained climb is not.
const allocsSlack = 0.5

// checkAllocs gates the per-datagram allocation meta on macros that carry it
// in both snapshots (schema 4 baselines have no meta — the gate self-arms on
// the first schema 5 baseline).
func checkAllocs(b, n macro, fail func(string, ...any)) {
	bAllocs, bOK := b.Meta["allocs_per_datagram"]
	nAllocs, nOK := n.Meta["allocs_per_datagram"]
	if !bOK || !nOK {
		return
	}
	if nAllocs > bAllocs+allocsSlack {
		fail("pps %s: allocs/datagram grew %.2f -> %.2f (the batched receive path is pooled; it must not start allocating)",
			b.Name, bAllocs, nAllocs)
	} else {
		fmt.Printf("ok    pps %s: %.2f allocs/datagram (base %.2f)\n", b.Name, nAllocs, bAllocs)
	}
}
