package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestLoadForwardCompat feeds load() a snapshot from a hypothetical future
// benchtab: the metrics and pps sections use shapes this binary does not
// know. The loader must keep every parseable row, skip the rest, and never
// error — schema drift relaxes gates, it does not break the diff.
func TestLoadForwardCompat(t *testing.T) {
	doc := `{
		"schema": 7,
		"seed": 1,
		"cpus": 8,
		"fleet": {"hosts": ["a", "b"]},
		"micro": [
			{"name": "old/ok", "ns_per_op": 10.0, "allocs_per_op": 0},
			{"name": "new/row", "ns_per_op": {"p50": 9.0, "p99": 14.0}}
		],
		"experiments": [
			{"id": "E16", "wall_ms": 5.0, "metrics": {"parallel.speedup/shards=4": 3.1}},
			{"id": "E99", "wall_ms": 1.0, "metrics": {"verdict": "pass"}}
		],
		"macro": {"rows": [{"name": "live.pps/pump=1", "pps": 1e6}]}
	}`
	path := filepath.Join(t.TempDir(), "future.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := load(path)
	if err != nil {
		t.Fatalf("future-schema snapshot must load leniently, got: %v", err)
	}
	if s.Schema != 7 || s.CPUs != 8 {
		t.Errorf("scalar fields lost: schema=%d cpus=%d", s.Schema, s.CPUs)
	}
	if len(s.Micro) != 1 || s.Micro[0].Name != "old/ok" {
		t.Errorf("want the one parseable micro row, got %+v", s.Micro)
	}
	// E99's metrics map holds a string value; that row is skipped, E16 stays.
	if len(s.Experiments) != 1 || s.Experiments[0].ID != "E16" {
		t.Errorf("want only the parseable experiment row, got %+v", s.Experiments)
	}
	// The whole macro section changed from an array to an object: dropped,
	// which just disables the pps floor.
	if len(s.Macro) != 0 {
		t.Errorf("unknown-shape macro section must be dropped, got %+v", s.Macro)
	}
}

// TestLoadCurrentSchema pins the lenient loader against a well-formed
// schema-4 snapshot: nothing may be skipped.
func TestLoadCurrentSchema(t *testing.T) {
	doc := `{
		"schema": 4, "seed": 1, "cpus": 4,
		"micro": [{"name": "m", "ns_per_op": 5.0, "bytes_per_op": 0, "allocs_per_op": 0}],
		"experiments": [{"id": "E16", "wall_ms": 2.0, "metrics": {"parallel.speedup/shards=4": 2.0}}],
		"macro": [{"name": "live.pps/pump=1", "pps": 2e6, "ops": 100}]
	}`
	path := filepath.Join(t.TempDir(), "current.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Micro) != 1 || len(s.Experiments) != 1 || len(s.Macro) != 1 {
		t.Errorf("current-schema rows lost: %+v", s)
	}
	if s.Macro[0].PPS != 2e6 || s.Micro[0].NsPerOp != 5.0 {
		t.Errorf("row values corrupted: %+v", s)
	}
}

// TestLoadTopLevelGarbage keeps the hard failure: an unreadable document is
// still an error (exit 2 in main), leniency is per-section only.
func TestLoadTopLevelGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := load(path); err == nil {
		t.Fatal("top-level garbage must still fail to load")
	}
}
