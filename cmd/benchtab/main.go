// benchtab regenerates the paper's tables and quantitative claims (the
// experiment index E1–E15 in DESIGN.md) and prints paper-style rows.
//
// Usage:
//
//	benchtab               # run every experiment
//	benchtab -e E3         # one experiment by ID
//	benchtab -e table1     # or by name
//	benchtab -list         # list experiments
//	benchtab -seed 7       # change the deterministic seed
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"swishmem/internal/experiments"
)

func main() {
	var (
		exp  = flag.String("e", "", "experiment ID (E1..E15) or name; empty = all")
		seed = flag.Int64("seed", 1, "deterministic seed")
		list = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("ID    NAME                PAPER CONTENT")
		for _, e := range experiments.All() {
			fmt.Printf("%-5s %-19s %s\n", e.ID, e.Name, e.Paper)
		}
		return
	}

	run := experiments.All()
	if *exp != "" {
		e, ok := experiments.Find(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		run = []experiments.Experiment{e}
	}

	for _, e := range run {
		start := time.Now()
		res := e.Run(*seed)
		fmt.Print(res.String())
		fmt.Printf("  (%s finished in %v wall time)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
