// benchtab regenerates the paper's tables and quantitative claims (the
// experiment index E1–E15 in DESIGN.md) and prints paper-style rows.
//
// Usage:
//
//	benchtab                  # run every experiment
//	benchtab -e E3            # one experiment by ID
//	benchtab -e table1        # or by name
//	benchtab -list            # list experiments
//	benchtab -seed 7          # change the deterministic seed
//	benchtab -parallel 4      # run experiments on 4 workers
//	benchtab -json BENCH.json # also write a benchmark regression snapshot
//
// Regenerated rows go to stdout; wall-time diagnostics go to stderr. Every
// experiment builds its own deterministic simulation, so the stdout rows are
// byte-identical whatever -parallel is — parallelism only changes how long
// the run takes.
//
// The -json snapshot records the hot-path microbenchmarks (ns/op, B/op,
// allocs/op via testing.Benchmark over the shared bodies in
// internal/experiments/micro.go) plus per-experiment wall times. Committing
// one snapshot per performance-relevant change (BENCH_1.json, BENCH_2.json,
// ...) gives a regression trail reviewers can diff.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"swishmem/internal/experiments"
)

// microResult is one microbenchmark row in the snapshot.
type microResult struct {
	Name        string  `json:"name"`
	About       string  `json:"about"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// expResult is one experiment row in the snapshot.
type expResult struct {
	ID     string  `json:"id"`
	Name   string  `json:"name"`
	WallMs float64 `json:"wall_ms"`
}

// snapshot is the -json output: a benchmark regression record.
type snapshot struct {
	Schema      int           `json:"schema"`
	Seed        int64         `json:"seed"`
	Parallel    int           `json:"parallel"`
	Micro       []microResult `json:"micro"`
	Experiments []expResult   `json:"experiments"`
}

func main() {
	var (
		exp      = flag.String("e", "", "experiment ID (E1..E15) or name; empty = all")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		list     = flag.Bool("list", false, "list experiments and exit")
		parallel = flag.Int("parallel", 1, "number of concurrent experiment workers")
		jsonOut  = flag.String("json", "", "write a benchmark snapshot (micros + wall times) to this file")
	)
	flag.Parse()

	if *list {
		fmt.Println("ID    NAME                PAPER CONTENT")
		for _, e := range experiments.All() {
			fmt.Printf("%-5s %-19s %s\n", e.ID, e.Name, e.Paper)
		}
		return
	}

	run := experiments.All()
	if *exp != "" {
		e, ok := experiments.Find(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		run = []experiments.Experiment{e}
	}

	start := time.Now()
	reports := experiments.Run(run, *seed, *parallel)
	batchWall := time.Since(start)

	snap := snapshot{Schema: 1, Seed: *seed, Parallel: *parallel}
	for _, r := range reports {
		fmt.Print(r.Result.String())
		fmt.Println()
		fmt.Fprintf(os.Stderr, "%s finished in %v wall time\n",
			r.Experiment.ID, r.Wall.Round(time.Millisecond))
		snap.Experiments = append(snap.Experiments, expResult{
			ID:     r.Experiment.ID,
			Name:   r.Experiment.Name,
			WallMs: float64(r.Wall.Microseconds()) / 1000,
		})
	}
	fmt.Fprintf(os.Stderr, "batch: %d experiments, %d workers, %v wall time\n",
		len(reports), *parallel, batchWall.Round(time.Millisecond))

	if *jsonOut == "" {
		return
	}
	for _, m := range experiments.Micros() {
		fmt.Fprintf(os.Stderr, "bench %s...\n", m.Name)
		br := testing.Benchmark(m.Bench)
		snap.Micro = append(snap.Micro, microResult{
			Name:        m.Name,
			About:       m.About,
			Iterations:  br.N,
			NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
			BytesPerOp:  br.AllocedBytesPerOp(),
			AllocsPerOp: br.AllocsPerOp(),
		})
		fmt.Fprintf(os.Stderr, "bench %s: %.1f ns/op, %d B/op, %d allocs/op (%d iters)\n",
			m.Name, snap.Micro[len(snap.Micro)-1].NsPerOp,
			br.AllocedBytesPerOp(), br.AllocsPerOp(), br.N)
	}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "marshal snapshot: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonOut, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
}
