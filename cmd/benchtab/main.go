// benchtab regenerates the paper's tables and quantitative claims (the
// experiment index E1–E19 in DESIGN.md) and prints paper-style rows.
//
// Usage:
//
//	benchtab                  # run every experiment
//	benchtab -e E3            # one experiment by ID
//	benchtab -e table1        # or by name
//	benchtab -list            # list experiments
//	benchtab -seed 7          # change the deterministic seed
//	benchtab -parallel 4      # run experiments on 4 workers
//	benchtab -shards 4        # shard every cluster's simulation across 4 engines
//	benchtab -json BENCH.json # also write a benchmark regression snapshot
//	benchtab -pps             # run the packets/sec macro benchmarks too
//	benchtab -e E4 -trace out.json   # virtual-time trace, loadable at ui.perfetto.dev
//	benchtab -metrics metrics.txt    # batch counters + per-experiment metric sections
//	benchtab -cpuprofile cpu.pb.gz -memprofile mem.pb.gz -mutexprofile mtx.pb.gz
//
// -parallel and -shards are orthogonal: -parallel runs whole experiments on
// concurrent workers, -shards splits each experiment's simulated switches
// across engines (deterministically — sharded rows are byte-identical to
// sequential ones). The profile flags cover the experiment batch, not the
// -json microbenchmarks; use `go test -bench -cpuprofile` for those.
//
// Regenerated rows go to stdout; wall-time diagnostics go to stderr. Every
// experiment builds its own deterministic simulation, so the stdout rows are
// byte-identical whatever -parallel is — parallelism only changes how long
// the run takes.
//
// The -json snapshot records the hot-path microbenchmarks (ns/op, B/op,
// allocs/op via testing.Benchmark over the shared bodies in
// internal/experiments/micro.go) plus per-experiment wall times. Committing
// one snapshot per performance-relevant change (BENCH_1.json, BENCH_2.json,
// ...) gives a regression trail reviewers can diff.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"testing"
	"time"

	"swishmem/internal/experiments"
	"swishmem/internal/obs"
)

// microResult is one microbenchmark row in the snapshot.
type microResult struct {
	Name        string  `json:"name"`
	About       string  `json:"about"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// expResult is one experiment row in the snapshot.
type expResult struct {
	ID     string  `json:"id"`
	Name   string  `json:"name"`
	WallMs float64 `json:"wall_ms"`
	// Metrics is the experiment's aggregated cluster-metrics section
	// (counter sums and histogram count/mean pairs); empty for experiments
	// that do not snapshot their clusters.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// snapshot is the -json output: a benchmark regression record.
type snapshot struct {
	Schema   int   `json:"schema"`
	Seed     int64 `json:"seed"`
	Parallel int   `json:"parallel"`
	// Shards is the per-cluster shard count the batch ran with (0 =
	// sequential engines). Rows are identical either way; wall times are not.
	Shards int `json:"shards"`
	// CPUs records runtime.NumCPU() on the generating machine. cmd/benchdiff
	// gates its parallel-speedup assertion on it: a single-core host runs
	// the same windows with no overlap, so speedups are only checked when
	// the host can actually overlap shards.
	CPUs        int           `json:"cpus"`
	Micro       []microResult `json:"micro"`
	Experiments []expResult   `json:"experiments"`
	// Macro holds the -pps packets/sec macro rows (schema 4). cmd/benchdiff
	// floors every macro shared with the baseline and gates the multicore
	// pump scale when the host has the cores for it.
	// Schema 5 adds the live.pps/egress macro (sharded-egress sender) and
	// per-row meta like allocs_per_datagram, which benchdiff also gates.
	Macro []experiments.MacroResult `json:"macro,omitempty"`
}

func main() {
	var (
		exp      = flag.String("e", "", "experiment ID (E1..E19) or name; empty = all")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		list     = flag.Bool("list", false, "list experiments and exit")
		parallel = flag.Int("parallel", 1, "number of concurrent experiment workers")
		jsonOut  = flag.String("json", "", "write a benchmark snapshot (micros + wall times) to this file")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file (requires -e; forces -parallel 1)")
		metout   = flag.String("metrics", "", "write a plain-text metrics dump (batch counters + per-experiment sections) to this file")
		shards   = flag.Int("shards", 0, "shard every experiment cluster across N engines (0 = sequential; rows are byte-identical either way)")
		ppsMode  = flag.Bool("pps", false, "also run the packets/sec macro benchmarks (recorded in the -json snapshot)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the experiment batch to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile (after the batch) to this file")
		mtxProf  = flag.String("mutexprofile", "", "write a mutex-contention profile of the batch to this file")
	)
	flag.Parse()

	var tracers []*obs.Tracer
	if *traceOut != "" {
		if *exp == "" {
			fmt.Fprintln(os.Stderr, "-trace requires -e (trace one experiment, not the whole batch)")
			os.Exit(2)
		}
		// The tracer sink appends without locking; tracing forces a
		// sequential run. It also forces sequential simulation: the sink
		// receives one tracer per cluster, which in sharded mode would be
		// shard 0's ring only.
		*parallel = 1
		*shards = 0
		experiments.SetTracing(1<<18, func(tr *obs.Tracer) { tracers = append(tracers, tr) })
	}

	if *list {
		fmt.Println("ID    NAME                PAPER CONTENT")
		for _, e := range experiments.All() {
			fmt.Printf("%-5s %-19s %s\n", e.ID, e.Name, e.Paper)
		}
		return
	}

	run := experiments.All()
	if *exp != "" {
		e, ok := experiments.Find(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		run = []experiments.Experiment{e}
	}

	if *shards != 0 {
		experiments.SetShards(*shards)
		defer experiments.SetShards(0)
	}
	if *mtxProf != "" {
		runtime.SetMutexProfileFraction(5)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "create %s: %v\n", *cpuProf, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "start cpu profile: %v\n", err)
			os.Exit(1)
		}
	}

	start := time.Now()
	var bm experiments.BatchMetrics
	reports := experiments.RunMetered(run, *seed, *parallel, &bm)
	batchWall := time.Since(start)

	if *cpuProf != "" {
		pprof.StopCPUProfile()
		fmt.Fprintf(os.Stderr, "wrote %s\n", *cpuProf)
	}
	if *memProf != "" {
		if err := writeProfile(*memProf, "allocs"); err != nil {
			fmt.Fprintf(os.Stderr, "write heap profile: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *memProf)
	}
	if *mtxProf != "" {
		if err := writeProfile(*mtxProf, "mutex"); err != nil {
			fmt.Fprintf(os.Stderr, "write mutex profile: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *mtxProf)
	}

	snap := snapshot{Schema: 5, Seed: *seed, Parallel: *parallel, Shards: *shards, CPUs: runtime.NumCPU()}
	for _, r := range reports {
		fmt.Print(r.Result.String())
		fmt.Println()
		fmt.Fprintf(os.Stderr, "%s finished in %v wall time\n",
			r.Experiment.ID, r.Wall.Round(time.Millisecond))
		snap.Experiments = append(snap.Experiments, expResult{
			ID:      r.Experiment.ID,
			Name:    r.Experiment.Name,
			WallMs:  float64(r.Wall.Microseconds()) / 1000,
			Metrics: r.Result.Metrics,
		})
	}
	fmt.Fprintf(os.Stderr, "batch: %d experiments, %d workers, %v wall time\n",
		len(reports), *parallel, batchWall.Round(time.Millisecond))

	if *traceOut != "" {
		if err := writeTrace(*traceOut, tracers); err != nil {
			fmt.Fprintf(os.Stderr, "write trace: %v\n", err)
			os.Exit(1)
		}
		total := 0
		for _, tr := range tracers {
			total += tr.Len()
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d events from %d cluster(s); open at ui.perfetto.dev)\n",
			*traceOut, total, len(tracers))
	}
	if *metout != "" {
		if err := writeMetrics(*metout, &bm, reports); err != nil {
			fmt.Fprintf(os.Stderr, "write metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *metout)
	}

	if *ppsMode {
		for _, m := range experiments.Macros(*seed) {
			fmt.Printf("pps   %-22s %12.0f pkts/s  (%d ops in %.0f ms)\n", m.Name, m.PPS, m.Ops, m.WallMs)
			snap.Macro = append(snap.Macro, m)
		}
	}

	if *jsonOut == "" {
		return
	}
	for _, m := range experiments.Micros() {
		fmt.Fprintf(os.Stderr, "bench %s...\n", m.Name)
		br := testing.Benchmark(m.Bench)
		snap.Micro = append(snap.Micro, microResult{
			Name:        m.Name,
			About:       m.About,
			Iterations:  br.N,
			NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
			BytesPerOp:  br.AllocedBytesPerOp(),
			AllocsPerOp: br.AllocsPerOp(),
		})
		fmt.Fprintf(os.Stderr, "bench %s: %.1f ns/op, %d B/op, %d allocs/op (%d iters)\n",
			m.Name, snap.Micro[len(snap.Micro)-1].NsPerOp,
			br.AllocedBytesPerOp(), br.AllocsPerOp(), br.N)
	}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "marshal snapshot: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonOut, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
}

// writeProfile dumps the named runtime profile (heap/allocs after a GC,
// mutex, ...) to path in pprof format.
func writeProfile(path, name string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	p := pprof.Lookup(name)
	if p == nil {
		f.Close()
		return fmt.Errorf("unknown profile %q", name)
	}
	if err := p.WriteTo(f, 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTrace merges the tracers of every cluster the experiment built into
// one Chrome trace-event file (each cluster gets its own pid lane block).
func writeTrace(path string, tracers []*obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, tracers...); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeMetrics dumps the batch counters plus each experiment's aggregated
// metric section as aligned plain text.
func writeMetrics(path string, bm *experiments.BatchMetrics, reports []experiments.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(f, "== batch ==\n")
	fmt.Fprintf(f, "experiments %d\n", bm.Experiments.Value())
	fmt.Fprintf(f, "tables      %d\n", bm.Tables.Value())
	fmt.Fprintf(f, "notes       %d\n", bm.Notes.Value())
	fmt.Fprintf(f, "violations  %d\n", bm.Violations.Value())
	for _, r := range reports {
		if len(r.Result.Metrics) == 0 {
			continue
		}
		fmt.Fprintf(f, "\n== %s (%s) ==\n", r.Experiment.ID, r.Experiment.Name)
		names := make([]string, 0, len(r.Result.Metrics))
		width := 0
		for name := range r.Result.Metrics {
			names = append(names, name)
			if len(name) > width {
				width = len(name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(f, "%-*s %g\n", width, name, r.Result.Metrics[name])
		}
	}
	return f.Close()
}
