package main

// swishd -live: the cross-process deployment mode. Instead of the simulated
// cluster, each process runs one node over the live UDP transport
// (internal/netem/live): a controller process is the discovery/config point,
// member processes run one switch each with the chain + EWO protocols
// unchanged, and the soak role runs a whole loopback cluster in-process for
// validation.
//
//	swishd -live controller -live.listen 127.0.0.1:7000 -live.members 3
//	swishd -live member -live.addr 1 -live.controller 127.0.0.1:7000
//	swishd -live soak -live.budget 2s -live.loss 0.05 -live.replay trace.bin

import (
	"flag"
	"fmt"
	"log"
	"net/netip"
	"os"
	"os/signal"
	"syscall"
	"time"

	"swishmem/internal/controller"
	"swishmem/internal/livecluster"
	"swishmem/internal/netem"
	"swishmem/internal/workload"
)

var (
	liveListen  = flag.String("live.listen", "127.0.0.1:0", "UDP bind address (controller/member)")
	liveAddr    = flag.Int("live.addr", 1, "member SwiShmem address (member role)")
	liveCtrl    = flag.String("live.controller", "", "controller UDP endpoint (member role)")
	liveMembers = flag.Int("live.members", 3, "expected cluster size")
	liveLoss    = flag.Float64("live.loss", 0.05, "injected outbound loss (member/soak)")
	liveBudget  = flag.Duration("live.budget", 2*time.Second, "soak workload budget")
	liveReplay  = flag.String("live.replay", "", "trafficgen binary trace driving the soak workload")
	liveMetrics = flag.String("live.metrics", "", "write transport metrics to this file (soak)")
)

func runLive(role string) {
	switch role {
	case "controller":
		runLiveController()
	case "member":
		runLiveMember()
	case "soak":
		runLiveSoak()
	default:
		log.Fatalf("swishd: unknown -live role %q (want controller | member | soak)", role)
	}
}

func runLiveController() {
	addrs := make([]netem.Addr, *liveMembers)
	for i := range addrs {
		addrs[i] = netem.Addr(i + 1)
	}
	fab, ctl, err := livecluster.NewLiveController(1, *liveListen, addrs, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer fab.Stop()
	fab.Start()
	fmt.Printf("swishd: live controller on %s, expecting %d members\n", fab.AddrPort(), *liveMembers)
	tick := time.NewTicker(2 * time.Second)
	defer tick.Stop()
	sig := sigChan()
	for {
		select {
		case <-sig:
			fmt.Println("swishd: controller shutting down")
			return
		case <-tick.C:
			var stats controller.LiveStats
			var members []netem.Addr
			fab.Call(func() {
				stats = ctl.Stats
				members = ctl.AliveMembers()
			})
			fmt.Printf("[ctrl] alive=%v hellos=%d heartbeats=%d failures=%d\n",
				members, stats.Hellos, stats.Heartbeats, stats.FailuresSeen)
		}
	}
}

func runLiveMember() {
	if *liveCtrl == "" {
		log.Fatal("swishd: -live member needs -live.controller host:port")
	}
	ep, err := netip.ParseAddrPort(*liveCtrl)
	if err != nil {
		log.Fatalf("swishd: bad -live.controller: %v", err)
	}
	m, err := livecluster.NewMember(livecluster.MemberConfig{
		Addr:         netem.Addr(*liveAddr),
		Seed:         int64(*liveAddr),
		ControllerEP: ep,
		Listen:       *liveListen,
		Profile:      netem.LinkProfile{LossRate: *liveLoss},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Stop()
	m.Start()
	fmt.Printf("swishd: live member %d on %s -> controller %s (loss=%.1f%%)\n",
		*liveAddr, m.Fabric.AddrPort(), ep, *liveLoss*100)
	tick := time.NewTicker(2 * time.Second)
	defer tick.Stop()
	sig := sigChan()
	for {
		select {
		case <-sig:
			fmt.Println("swishd: member shutting down")
			return
		case <-tick.C:
			var epoch uint32
			var group int
			m.Fabric.Call(func() {
				epoch = m.Strong.Node().Chain().Epoch
				group = len(m.Counter.Node().Group())
			})
			st := m.Fabric.Node().Stats()
			fmt.Printf("[member %d] chain epoch=%d group=%d tx=%d rx=%d txdrop=%d\n",
				*liveAddr, epoch, group, st.Sent, st.Received, st.TxDropped)
		}
	}
}

func runLiveSoak() {
	cfg := livecluster.SoakConfig{
		Members: *liveMembers,
		Seed:    1,
		Budget:  *liveBudget,
		Loss:    *liveLoss,
	}
	if *liveReplay != "" {
		tr, err := workload.ReadBinaryFile(*liveReplay)
		if err != nil {
			log.Fatalf("swishd: replay trace: %v", err)
		}
		cfg.Trace = tr
		fmt.Printf("swishd: soak driven by %d-packet trace %s\n", len(tr), *liveReplay)
	}
	fmt.Printf("swishd: live soak: %d members, budget %v, loss %.1f%%\n",
		cfg.Members, *liveBudget, *liveLoss*100)
	rep, err := livecluster.Soak(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("soak: %d strong writes (%d committed), %d counter adds, %d lww writes\n",
		rep.StrongWrites, rep.Committed, rep.CounterAdds, rep.LWWWrites)
	if *liveMetrics != "" {
		check(os.WriteFile(*liveMetrics, []byte(rep.Metrics), 0o644))
		fmt.Printf("wrote metrics to %s\n", *liveMetrics)
	}
	if rep.Failed() {
		for _, f := range rep.Failures {
			fmt.Fprintf(os.Stderr, "FAIL %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Println("ok all oracles")
}

func sigChan() chan os.Signal {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	return ch
}
