package main

// swishd -live: the cross-process deployment mode. Instead of the simulated
// cluster, each process runs one node over the live UDP transport
// (internal/netem/live): a controller process is the discovery/config point,
// member processes run one switch each with the chain + EWO protocols
// unchanged, and the soak role runs a whole loopback cluster in-process for
// validation.
//
//	swishd -live controller -live.listen 127.0.0.1:7000 -live.members 3
//	swishd -live member -live.addr 1 -live.controller 127.0.0.1:7000
//	swishd -live soak -live.budget 2s -live.loss 0.05 -live.replay trace.bin
//	swishd -live soak -live.corrupt 0.08 -live.nthloss 7 -live.asym 0.15 -live.pause 100ms

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/netip"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"swishmem/internal/controller"
	"swishmem/internal/livecluster"
	"swishmem/internal/netem"
	"swishmem/internal/netem/live"
	"swishmem/internal/obs"
	"swishmem/internal/workload"
)

var (
	liveListen  = flag.String("live.listen", "127.0.0.1:0", "UDP bind address (controller/member)")
	liveAddr    = flag.Int("live.addr", 1, "member SwiShmem address (member role)")
	liveCtrl    = flag.String("live.controller", "", "controller UDP endpoint (member role)")
	liveMembers = flag.Int("live.members", 3, "expected cluster size")
	liveLoss    = flag.Float64("live.loss", 0.05, "injected outbound loss (member/soak)")
	liveCorrupt = flag.Float64("live.corrupt", 0,
		"injected payload bit-corruption rate; flipped frames must die at the receiver's CRC (member/soak)")
	liveNthLoss = flag.Int("live.nthloss", 0,
		"deterministically drop every Nth outbound datagram, 0 = off (member/soak)")
	liveAsym = flag.Float64("live.asym", 0,
		"extra one-way loss member 0 -> last member, 0 = off (soak; per-direction profile)")
	livePause = flag.Duration("live.pause", 0,
		"freeze one member mid-soak for this long, 0 = off; keep under the 200ms failure timeout (soak)")
	liveBudget  = flag.Duration("live.budget", 2*time.Second, "soak workload budget")
	liveReplay  = flag.String("live.replay", "", "trafficgen binary trace driving the soak workload")
	liveMetrics = flag.String("live.metrics", "", "write transport metrics to this file (soak)")
	httpAddr    = flag.String("http", "",
		"serve /metrics (Prometheus) and /timeline (JSONL) over HTTP on this address (live controller/member)")
	liveTimelineF = flag.String("live.timeline", "",
		"append the JSONL metrics timeline to this file (all live roles)")
)

// liveTelemetry is the continuous observability of one live node: a metrics
// timeline sampled every second under the node's pump lock, plus an optional
// HTTP endpoint serving /metrics and /timeline. Every registry read — scrape
// snapshots, stream ticks, tail reads — runs under Fabric.Call, so scrapes
// serialize with the pump instead of racing it.
type liveTelemetry struct {
	fab    *live.Fabric
	reg    *obs.Registry
	stream *obs.Stream
	srv    *obs.TelemetryServer
	out    *os.File
	stop   chan struct{}
	done   chan struct{}
}

// startLiveTelemetry wires the node's timeline (to -live.timeline, or
// discarded when unset, with the tail ring kept either way) and, with
// -http set, the scrape endpoint.
func startLiveTelemetry(fab *live.Fabric, reg *obs.Registry, node string) (*liveTelemetry, error) {
	lt := &liveTelemetry{fab: fab, reg: reg, stop: make(chan struct{}), done: make(chan struct{})}
	var w io.Writer = io.Discard
	if *liveTimelineF != "" {
		f, err := os.Create(*liveTimelineF)
		if err != nil {
			return nil, err
		}
		lt.out, w = f, f
	}
	lt.stream = obs.NewStream(reg, w, obs.StreamConfig{
		Interval: time.Second, Node: node, Tail: 120,
	})
	start := time.Now()
	go func() {
		defer close(lt.done)
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for {
			select {
			case <-lt.stop:
				return
			case <-tick.C:
				ts := time.Since(start).Nanoseconds()
				fab.Call(func() { lt.stream.Tick(ts) })
			}
		}
	}()
	if *httpAddr != "" {
		srv, err := obs.StartTelemetry(*httpAddr,
			func() (obs.Snapshot, error) {
				var s obs.Snapshot
				fab.Call(func() { s = reg.Snapshot() })
				return s, nil
			},
			func() []string {
				var rows []string
				fab.Call(func() { rows = lt.stream.Tail() })
				return rows
			})
		if err != nil {
			lt.Close()
			return nil, err
		}
		lt.srv = srv
		fmt.Printf("swishd: serving /metrics and /timeline on http://%s\n", srv.Addr())
	}
	return lt, nil
}

// Close flushes the final snapshot to stdout, closes the timeline file
// cleanly, and stops the scrape endpoint — the SIGINT/SIGTERM path.
func (lt *liveTelemetry) Close() {
	close(lt.stop)
	<-lt.done
	if lt.srv != nil {
		lt.srv.Close()
	}
	var snap obs.Snapshot
	lt.fab.Call(func() {
		snap = lt.reg.Snapshot()
		lt.stream.Close()
	})
	if lt.out != nil {
		if err := lt.out.Close(); err == nil {
			fmt.Printf("swishd: timeline closed (%d rows)\n", lt.stream.Rows())
		}
	}
	fmt.Println("swishd: final metrics snapshot:")
	snap.WriteText(os.Stdout)
}

func runLive(role string) {
	switch role {
	case "controller":
		runLiveController()
	case "member":
		runLiveMember()
	case "soak":
		runLiveSoak()
	default:
		log.Fatalf("swishd: unknown -live role %q (want controller | member | soak)", role)
	}
}

func runLiveController() {
	addrs := make([]netem.Addr, *liveMembers)
	for i := range addrs {
		addrs[i] = netem.Addr(i + 1)
	}
	fab, ctl, err := livecluster.NewLiveController(1, *liveListen, addrs, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer fab.Stop()
	fab.Start()
	fmt.Printf("swishd: live controller on %s, expecting %d members\n", fab.AddrPort(), *liveMembers)
	reg := obs.NewRegistry()
	fab.RegisterMetrics(reg, "node=ctrl")
	reg.AddGaugeFunc("live.members_alive", "node=ctrl", func() float64 {
		return float64(len(ctl.AliveMembers())) // gauge funcs run under fab.Call
	})
	lt, err := startLiveTelemetry(fab, reg, "ctrl")
	if err != nil {
		log.Fatalf("swishd: telemetry: %v", err)
	}
	tick := time.NewTicker(2 * time.Second)
	defer tick.Stop()
	sig := sigChan()
	for {
		select {
		case <-sig:
			fmt.Println("swishd: controller shutting down")
			lt.Close()
			return
		case <-tick.C:
			var stats controller.LiveStats
			var members []netem.Addr
			fab.Call(func() {
				stats = ctl.Stats
				members = ctl.AliveMembers()
			})
			fmt.Printf("[ctrl] alive=%v hellos=%d heartbeats=%d failures=%d\n",
				members, stats.Hellos, stats.Heartbeats, stats.FailuresSeen)
		}
	}
}

func runLiveMember() {
	if *liveCtrl == "" {
		log.Fatal("swishd: -live member needs -live.controller host:port")
	}
	ep, err := netip.ParseAddrPort(*liveCtrl)
	if err != nil {
		log.Fatalf("swishd: bad -live.controller: %v", err)
	}
	m, err := livecluster.NewMember(livecluster.MemberConfig{
		Addr:         netem.Addr(*liveAddr),
		Seed:         int64(*liveAddr),
		ControllerEP: ep,
		Listen:       *liveListen,
		Profile: netem.LinkProfile{LossRate: *liveLoss,
			CorruptRate: *liveCorrupt, LossEveryN: *liveNthLoss},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Stop()
	m.Start()
	fmt.Printf("swishd: live member %d on %s -> controller %s (loss=%.1f%%)\n",
		*liveAddr, m.Fabric.AddrPort(), ep, *liveLoss*100)
	node := strconv.Itoa(*liveAddr)
	reg := obs.NewRegistry()
	m.RegisterMetrics(reg, "node="+node)
	lt, err := startLiveTelemetry(m.Fabric, reg, node)
	if err != nil {
		log.Fatalf("swishd: telemetry: %v", err)
	}
	tick := time.NewTicker(2 * time.Second)
	defer tick.Stop()
	sig := sigChan()
	for {
		select {
		case <-sig:
			fmt.Println("swishd: member shutting down")
			lt.Close()
			return
		case <-tick.C:
			var epoch uint32
			var group int
			m.Fabric.Call(func() {
				epoch = m.Strong.Node().Chain().Epoch
				group = len(m.Counter.Node().Group())
			})
			st := m.Fabric.Node().Stats()
			fmt.Printf("[member %d] chain epoch=%d group=%d tx=%d rx=%d txdrop=%d\n",
				*liveAddr, epoch, group, st.Sent, st.Received, st.TxDropped)
		}
	}
}

func runLiveSoak() {
	cfg := livecluster.SoakConfig{
		Members:     *liveMembers,
		Seed:        1,
		Budget:      *liveBudget,
		Loss:        *liveLoss,
		CorruptRate: *liveCorrupt,
		LossEveryN:  *liveNthLoss,
		AsymLoss:    *liveAsym,
		PauseFor:    *livePause,
	}
	// SIGINT/SIGTERM ends the workload early but still runs the oracles and
	// renders the telemetry artifacts.
	stop := make(chan struct{})
	go func() {
		<-sigChan()
		fmt.Println("swishd: soak interrupted, finishing up")
		close(stop)
	}()
	cfg.Stop = stop
	var timelineFile *os.File
	if *liveTimelineF != "" {
		f, err := os.Create(*liveTimelineF)
		if err != nil {
			log.Fatalf("swishd: timeline: %v", err)
		}
		timelineFile, cfg.Timeline = f, f
	}
	if *liveReplay != "" {
		tr, err := workload.ReadBinaryFile(*liveReplay)
		if err != nil {
			log.Fatalf("swishd: replay trace: %v", err)
		}
		cfg.Trace = tr
		fmt.Printf("swishd: soak driven by %d-packet trace %s\n", len(tr), *liveReplay)
	}
	fmt.Printf("swishd: live soak: %d members, budget %v, loss %.1f%% corrupt %.1f%% nthloss %d asym %.1f%% pause %v\n",
		cfg.Members, *liveBudget, *liveLoss*100, *liveCorrupt*100, *liveNthLoss, *liveAsym*100, *livePause)
	rep, err := livecluster.Soak(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("soak: %d strong writes (%d committed), %d counter adds, %d lww writes\n",
		rep.StrongWrites, rep.Committed, rep.CounterAdds, rep.LWWWrites)
	if rep.TxCorrupted > 0 || rep.PauseRounds > 0 {
		fmt.Printf("soak: chaos: %d corrupted tx, %d CRC/decode rejects, %d pause rounds\n",
			rep.TxCorrupted, rep.RxDecodeErr, rep.PauseRounds)
	}
	if timelineFile != nil {
		check(timelineFile.Close())
		fmt.Printf("wrote %d timeline rows to %s\n", rep.TimelineRows, *liveTimelineF)
	}
	if *liveMetrics != "" {
		check(os.WriteFile(*liveMetrics, []byte(rep.Metrics), 0o644))
		fmt.Printf("wrote metrics to %s\n", *liveMetrics)
	}
	if rep.Failed() {
		for _, f := range rep.Failures {
			fmt.Fprintf(os.Stderr, "FAIL %s\n", f)
		}
		if rep.FlightRecord != "" {
			fmt.Fprintf(os.Stderr, "%s", rep.FlightRecord)
		}
		os.Exit(1)
	}
	fmt.Println("ok all oracles")
}

func sigChan() chan os.Signal {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	return ch
}
