// swishd runs an emulated SwiShmem switch cluster with one of the paper's
// network functions deployed, drives a synthetic workload through it, and
// prints periodic and final metrics.
//
// Usage:
//
//	swishd -nf lb -switches 4 -duration 200ms
//	swishd -nf ddos -loss 0.05
//	swishd -nf nat -fail 2 -failafter 50ms    # fail switch #2 mid-run
//	swishd -nf lb -trace out.json             # virtual-time trace (ui.perfetto.dev)
//	swishd -nf lb -metrics metrics.txt        # full cluster metrics dump
//
// Live (cross-process UDP) mode — see live.go:
//
//	swishd -live controller -live.listen 127.0.0.1:7000 -live.members 3
//	swishd -live member -live.addr 1 -live.controller 127.0.0.1:7000
//	swishd -live soak -live.budget 2s -live.loss 0.05
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"swishmem"
	"swishmem/internal/packet"
	"swishmem/internal/workload"
)

func main() {
	var (
		nfName    = flag.String("nf", "lb", "network function: nat | firewall | ips | lb | ddos | ratelimit")
		switches  = flag.Int("switches", 3, "number of replica switches")
		spares    = flag.Int("spares", 1, "spare switches for recovery")
		duration  = flag.Duration("duration", 100*time.Millisecond, "virtual run time")
		seed      = flag.Int64("seed", 1, "deterministic seed")
		loss      = flag.Float64("loss", 0, "inter-switch link loss rate")
		failIdx   = flag.Int("fail", -1, "switch index to fail mid-run (-1: none)")
		failAfter = flag.Duration("failafter", 50*time.Millisecond, "virtual time of the failure")
		flowRate  = flag.Float64("flows", 20000, "new flows per second (connection NFs)")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file")
		metout    = flag.String("metrics", "", "write a plain-text dump of every cluster metric to this file")
		liveMode  = flag.String("live", "", "live UDP mode: controller | member | soak (see live.go)")
		timelineOut = flag.String("timeline", "",
			"stream a JSONL metrics timeline (virtual-time sampled) to this file")
		timelineIvl = flag.Duration("timeline.interval", time.Millisecond,
			"virtual-time sampling interval for -timeline")
	)
	flag.Parse()

	if *liveMode != "" {
		runLive(*liveMode)
		return
	}

	link := swishmem.LinkProfile{Latency: 10_000, BandwidthBps: 100e9, LossRate: *loss}
	cluster, err := swishmem.New(swishmem.Config{
		Switches: *switches, Spares: *spares, Seed: *seed, Link: &link,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *traceOut != "" {
		cluster.EnableTracing(1 << 18)
	}

	summary, err := deploy(cluster, *nfName)
	if err != nil {
		log.Fatal(err)
	}

	// The timeline starts after deploy so the NF's registers are in the
	// stream's registry (StreamMetrics binds the metric set at call time).
	var timelineFile *os.File
	var timeline *swishmem.MetricsStream
	if *timelineOut != "" {
		timelineFile, err = os.Create(*timelineOut)
		check(err)
		timeline, err = cluster.StreamMetrics(timelineFile, *timelineIvl, swishmem.StreamOptions{})
		check(err)
	}

	cluster.RunFor(2 * time.Millisecond)

	rng := rand.New(rand.NewSource(*seed))
	trace := buildTrace(rng, *nfName, *duration, *flowRate)
	fmt.Printf("swishd: %s on %d switches (+%d spares), %d packets over %v virtual time, loss=%.1f%%\n",
		*nfName, *switches, *spares, len(trace), *duration, *loss*100)

	i := 0
	workload.Replay(cluster.Engine(), trace, func(p *packet.Packet) {
		cluster.Switch(i % *switches).InjectPacket(p)
		i++
	})

	if *failIdx >= 0 && *failIdx < *switches {
		idx := *failIdx
		at := *failAfter
		cluster.Engine().After(durationToSim(at), func() {
			fmt.Printf("[%v] switch %d fails\n", at, idx+1)
			cluster.FailSwitch(idx)
		})
	}

	// Periodic progress line every 10% of the run.
	step := *duration / 10
	if step <= 0 {
		step = 10 * time.Millisecond
	}
	for t := step; t <= *duration+step; t += step {
		cluster.RunFor(step)
		tot := cluster.NetworkTotals()
		fmt.Printf("[%8v] fabric: %8d msgs %10d bytes (%d dropped)\n",
			cluster.Now(), tot.MsgsSent, tot.BytesSent, tot.MsgsDropped)
	}
	cluster.RunFor(200 * time.Millisecond) // drain

	fmt.Println()
	summary()
	if ctrl := cluster.Controller(); ctrl != nil {
		fmt.Printf("controller: %d heartbeats, %d failures, %d chain reconfigs, %d recoveries\n",
			ctrl.Stats.Heartbeats.Value(), ctrl.Stats.FailuresSeen.Value(),
			ctrl.Stats.ChainReconfig.Value(), ctrl.Stats.Recoveries.Value())
	}
	for s := 0; s < *switches; s++ {
		fmt.Printf("switch %d SRAM: %d bytes\n", s+1, cluster.MemoryUsed(s))
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		check(err)
		check(cluster.WriteTrace(f))
		check(f.Close())
		fmt.Printf("wrote trace to %s (%d events retained; open at ui.perfetto.dev)\n",
			*traceOut, cluster.Tracer().Len())
	}
	if *metout != "" {
		f, err := os.Create(*metout)
		check(err)
		check(cluster.Metrics().Snapshot().WriteText(f))
		check(f.Close())
		fmt.Printf("wrote metrics to %s\n", *metout)
	}
	if timelineFile != nil {
		check(cluster.StopStreaming())
		check(timelineFile.Close())
		fmt.Printf("wrote %d timeline rows to %s\n", timeline.Rows(), *timelineOut)
	}
}

func durationToSim(d time.Duration) time.Duration { return d }

// deploy installs the chosen NF and returns a final summary printer.
func deploy(c *swishmem.Cluster, name string) (func(), error) {
	switch name {
	case "nat":
		nats, err := c.DeployNAT("nat", swishmem.NATOptions{
			Capacity: 1 << 16, ExternalIP: swishmem.Addr4(203, 0, 113, 1)})
		if err != nil {
			return nil, err
		}
		return func() {
			var conns, fwd uint64
			for _, n := range nats {
				conns += n.Stats.NewConns.Value()
				fwd += n.Stats.Translated.Value() + n.Stats.Reversed.Value()
			}
			fmt.Printf("nat: %d translations created, %d packets translated\n", conns, fwd)
		}, nil
	case "firewall":
		fws, err := c.DeployFirewall("fw", swishmem.FirewallOptions{Capacity: 1 << 16})
		if err != nil {
			return nil, err
		}
		return func() {
			var out, in, blocked uint64
			for _, f := range fws {
				out += f.Stats.AllowedOut.Value()
				in += f.Stats.AllowedIn.Value()
				blocked += f.Stats.BlockedIn.Value()
			}
			fmt.Printf("firewall: %d outbound allowed, %d inbound allowed, %d blocked\n", out, in, blocked)
		}, nil
	case "ips":
		ipss, err := c.DeployIPS("ips", swishmem.IPSOptions{Capacity: 1 << 12})
		if err != nil {
			return nil, err
		}
		ipss[0].AddSignature([]byte("EVILBYTE"), nil)
		return func() {
			var scanned, matched uint64
			for _, s := range ipss {
				scanned += s.Stats.Scanned.Value()
				matched += s.Stats.Matched.Value()
			}
			fmt.Printf("ips: %d scanned, %d dropped on signature match\n", scanned, matched)
		}, nil
	case "lb":
		lbs, err := c.DeployLoadBalancer("lb", swishmem.LBOptions{
			Capacity: 1 << 16,
			DIPs: []swishmem.Addr{
				swishmem.Addr4(192, 168, 1, 1), swishmem.Addr4(192, 168, 1, 2),
				swishmem.Addr4(192, 168, 1, 3)},
		})
		if err != nil {
			return nil, err
		}
		return func() {
			var asg, fwd uint64
			for _, l := range lbs {
				asg += l.Stats.Assigned.Value()
				fwd += l.Stats.Forwarded.Value()
			}
			fmt.Printf("lb: %d connections assigned, %d packets forwarded\n", asg, fwd)
		}, nil
	case "ddos":
		dets, err := c.DeployDDoS("ddos", swishmem.DDoSOptions{
			Threshold: 2000, Window: 50 * time.Millisecond})
		if err != nil {
			return nil, err
		}
		for _, d := range dets {
			d := d
			d.OnAlarm = func(victim swishmem.FlowKey, est uint64) {
				fmt.Printf("[%8v] ALARM on switch %d: victim %v estimate %d\n",
					c.Now(), d.Switch().Addr(), victim.Dst, est)
			}
		}
		return func() {
			var upd, dropped uint64
			for _, d := range dets {
				upd += d.Stats.Updated.Value()
				dropped += d.Stats.Dropped.Value()
			}
			fmt.Printf("ddos: %d packets accounted, %d shed during attack\n", upd, dropped)
		}, nil
	case "ratelimit":
		lims, err := c.DeployRateLimiter("rl", swishmem.RateLimitOptions{
			Capacity: 1 << 12, BytesPerWindow: 1 << 16, Window: 10 * time.Millisecond})
		if err != nil {
			return nil, err
		}
		return func() {
			var passed, dropped, blocked uint64
			for _, l := range lims {
				passed += l.Stats.Passed.Value()
				dropped += l.Stats.Dropped.Value()
				blocked += l.Stats.Blocked.Value()
			}
			fmt.Printf("ratelimit: %d passed, %d dropped, %d user-block events\n", passed, dropped, blocked)
		}, nil
	default:
		return nil, fmt.Errorf("unknown NF %q", name)
	}
}

// buildTrace synthesizes the right workload shape for the NF.
func buildTrace(rng *rand.Rand, nf string, d time.Duration, flowRate float64) workload.Trace {
	switch nf {
	case "ddos":
		bg, err := workload.GenTrace(rng, workload.TraceConfig{
			Duration: d, FlowsPerSec: flowRate / 2, Servers: 64})
		check(err)
		atk, err := workload.GenAttack(rng, workload.AttackConfig{
			Duration: d, PacketsPerSec: 120_000, Sources: 4000, Victim: 3})
		check(err)
		return workload.Merge(bg, atk)
	case "ratelimit":
		tr, err := workload.GenUserStreams(rng, workload.UserStreamConfig{
			Duration: d, Users: 64, PacketsPerSecPerUser: 2000, HogFactor: 20})
		check(err)
		return tr
	default:
		tr, err := workload.GenTrace(rng, workload.TraceConfig{
			Duration: d, FlowsPerSec: flowRate, Servers: 16})
		check(err)
		return tr
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
