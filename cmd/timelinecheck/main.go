// timelinecheck validates a JSONL metrics timeline (the artifact emitted by
// swishd -timeline, the live soak, and Cluster.StreamMetrics) against the
// stream schema, so CI fails fast on a malformed document instead of
// uploading garbage.
//
// Usage:
//
//	timelinecheck timeline.jsonl [more.jsonl ...]
//	timelinecheck < timeline.jsonl
//
// Checks:
//
//   - every line is a JSON object: a schema header (nonzero "timeline"
//     field) or a sample row
//   - headers carry the schema version this binary understands and a
//     positive interval
//   - every node's rows are preceded by a header for that node
//   - rows have a positive timestamp, strictly monotone per node, and every
//     sample has a name
//
// Exit status: 0 valid, 1 schema violation, 2 usage or unreadable input.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"swishmem/internal/obs"
)

type header struct {
	Timeline   int    `json:"timeline"`
	IntervalNs int64  `json:"interval_ns"`
	Node       string `json:"node"`
}

type row struct {
	TS      int64  `json:"ts"`
	Node    string `json:"node"`
	Samples []struct {
		Name string `json:"name"`
	} `json:"samples"`
}

func main() {
	if len(os.Args) > 1 {
		bad := false
		for _, path := range os.Args[1:] {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "timelinecheck: %v\n", err)
				os.Exit(2)
			}
			if !checkDoc(path, f) {
				bad = true
			}
			f.Close()
		}
		if bad {
			os.Exit(1)
		}
		return
	}
	if !checkDoc("<stdin>", os.Stdin) {
		os.Exit(1)
	}
}

// checkDoc validates one JSONL document and prints a one-line summary.
func checkDoc(name string, r io.Reader) bool {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lastTS := map[string]int64{}
	headed := map[string]bool{}
	headers, rows, violations := 0, 0, 0
	bad := func(line int, format string, args ...any) {
		violations++
		fmt.Fprintf(os.Stderr, "timelinecheck: %s:%d: %s\n", name, line, fmt.Sprintf(format, args...))
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			bad(lineNo, "empty line")
			continue
		}
		var h header
		if err := json.Unmarshal(line, &h); err != nil {
			bad(lineNo, "not a JSON object: %v", err)
			continue
		}
		if h.Timeline != 0 {
			headers++
			if h.Timeline != obs.TimelineSchema {
				bad(lineNo, "schema %d, this binary understands %d", h.Timeline, obs.TimelineSchema)
			}
			if h.IntervalNs <= 0 {
				bad(lineNo, "header has no positive interval_ns")
			}
			headed[h.Node] = true
			continue
		}
		var rw row
		if err := json.Unmarshal(line, &rw); err != nil {
			bad(lineNo, "row does not parse: %v", err)
			continue
		}
		rows++
		if !headed[rw.Node] {
			bad(lineNo, "row for node %q precedes its schema header", rw.Node)
			headed[rw.Node] = true // report once per node
		}
		if rw.TS <= 0 {
			bad(lineNo, "row has no positive ts")
		} else if rw.TS <= lastTS[rw.Node] {
			bad(lineNo, "node %q ts %d not strictly monotone (prev %d)", rw.Node, rw.TS, lastTS[rw.Node])
		}
		lastTS[rw.Node] = rw.TS
		for i, s := range rw.Samples {
			if s.Name == "" {
				bad(lineNo, "sample %d has no name", i)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "timelinecheck: %s: %v\n", name, err)
		os.Exit(2)
	}
	if headers == 0 && violations == 0 {
		bad(lineNo, "document has no schema header")
	}
	fmt.Printf("%s: %d header(s), %d row(s), %d node(s), %d violation(s)\n",
		name, headers, rows, len(lastTS), violations)
	return violations == 0
}
