package main

import (
	"strings"
	"testing"
)

func TestCheckDocValid(t *testing.T) {
	doc := `{"timeline":1,"interval_ns":1000000,"windows":8}
{"ts":1000000,"samples":[{"name":"a","delta":1}]}
{"ts":2000000,"samples":[{"name":"a","delta":2},{"name":"b","value":3}]}
{"timeline":1,"interval_ns":1000000,"windows":8,"node":"ctrl"}
{"ts":1000000,"node":"ctrl","samples":[]}
`
	if !checkDoc("valid", strings.NewReader(doc)) {
		t.Fatal("valid document rejected")
	}
}

func TestCheckDocViolations(t *testing.T) {
	cases := map[string]string{
		"no header":       `{"ts":1,"samples":[]}` + "\n",
		"bad schema":      `{"timeline":99,"interval_ns":1}` + "\n",
		"zero interval":   `{"timeline":1,"interval_ns":0}` + "\n",
		"non-monotone ts": "{\"timeline\":1,\"interval_ns\":1}\n{\"ts\":5,\"samples\":[]}\n{\"ts\":5,\"samples\":[]}\n",
		"nameless sample": "{\"timeline\":1,\"interval_ns\":1}\n{\"ts\":1,\"samples\":[{\"delta\":1}]}\n",
		"not json":        "{\"timeline\":1,\"interval_ns\":1}\nnope\n",
		"unheaded node":   "{\"timeline\":1,\"interval_ns\":1}\n{\"ts\":1,\"node\":\"x\",\"samples\":[]}\n",
	}
	for name, doc := range cases {
		if checkDoc(name, strings.NewReader(doc)) {
			t.Errorf("%s: document accepted", name)
		}
	}
}
