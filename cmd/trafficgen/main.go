// trafficgen synthesizes workload traces (connection churn, DDoS attack
// mixes, per-user streams) and writes them in the workload binary trace
// format ([8B arrival offset ns][1B flow flags][4B length][serialized
// packet]; see workload.WriteBinary) — the format the live soak harness and
// swishd -live replay consume — or prints a summary.
//
// Usage:
//
//	trafficgen -kind churn -duration 100ms -flows 20000 -o trace.bin
//	trafficgen -kind attack -pps 1e6 -o attack.bin
//	trafficgen -kind users -users 64 -summary
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"swishmem/internal/packet"
	"swishmem/internal/workload"
)

func main() {
	var (
		kind     = flag.String("kind", "churn", "trace kind: churn | attack | users | mixed")
		duration = flag.Duration("duration", 100*time.Millisecond, "trace duration")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		flows    = flag.Float64("flows", 20000, "new flows per second (churn)")
		pps      = flag.Float64("pps", 1e6, "attack packets per second")
		users    = flag.Int("users", 64, "users (users kind)")
		out      = flag.String("o", "", "output file (empty: summary only)")
		summary  = flag.Bool("summary", false, "print a summary")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var tr workload.Trace
	var err error
	switch *kind {
	case "churn":
		tr, err = workload.GenTrace(rng, workload.TraceConfig{
			Duration: *duration, FlowsPerSec: *flows})
	case "attack":
		tr, err = workload.GenAttack(rng, workload.AttackConfig{
			Duration: *duration, PacketsPerSec: *pps, Sources: 4000})
	case "users":
		tr, err = workload.GenUserStreams(rng, workload.UserStreamConfig{
			Duration: *duration, Users: *users, PacketsPerSecPerUser: 2000, HogFactor: 10})
	case "mixed":
		var bg, atk workload.Trace
		bg, err = workload.GenTrace(rng, workload.TraceConfig{Duration: *duration, FlowsPerSec: *flows})
		if err == nil {
			atk, err = workload.GenAttack(rng, workload.AttackConfig{
				Duration: *duration, PacketsPerSec: *pps, Sources: 4000})
		}
		tr = workload.Merge(bg, atk)
	default:
		log.Fatalf("unknown kind %q", *kind)
	}
	if err != nil {
		log.Fatal(err)
	}

	if *out != "" {
		if err := workload.WriteBinaryFile(*out, tr); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d packets to %s\n", len(tr), *out)
	}
	if *summary || *out == "" {
		printSummary(tr)
	}
}

func printSummary(tr workload.Trace) {
	if len(tr) == 0 {
		fmt.Println("empty trace")
		return
	}
	srcs := map[uint32]bool{}
	dsts := map[uint32]bool{}
	var bytes int
	for i := range tr {
		k, ok := tr[i].Pkt.Flow()
		if !ok {
			continue
		}
		srcs[packet.U32Addr(k.Src)] = true
		dsts[packet.U32Addr(k.Dst)] = true
		bytes += tr[i].Pkt.Len()
	}
	span := time.Duration(tr[len(tr)-1].At - tr[0].At)
	fmt.Printf("packets:  %d (%d flows)\n", len(tr), tr.Flows())
	fmt.Printf("bytes:    %d\n", bytes)
	fmt.Printf("span:     %v (%.0f pps)\n", span, float64(len(tr))/span.Seconds())
	fmt.Printf("sources:  %d distinct\n", len(srcs))
	fmt.Printf("dests:    %d distinct\n", len(dsts))
}
