// Coalescing A/B identity: the fabric's batched same-tick delivery (one
// scheduled event per same-timestamp burst on a link, with per-member event
// crediting) must be byte-identical to the one-event-per-message path — same
// commit log, same fabric accounting, same event counts, same canonical
// trace — sequentially and under every shard layout. This is the contract
// that lets the hot path coalesce without anybody downstream noticing.
package swishmem_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"swishmem"
)

func coalesceOff(c *swishmem.Config) { c.DisableCoalescing = true }

// TestCoalesceIdenticalRunLog pins the full workload output (commit
// callbacks, reads, counter sums, network totals, processed-event counts)
// across coalescing on/off and shard layouts.
func TestCoalesceIdenticalRunLog(t *testing.T) {
	for _, seed := range []int64{1, 42} {
		want := identityWorkload(t, 1, seed)
		if !strings.Contains(want, "ok=true") {
			t.Fatalf("seed %d: baseline run committed nothing:\n%s", seed, want)
		}
		if got := identityWorkload(t, 1, seed, coalesceOff); got != want {
			t.Fatalf("seed %d: uncoalesced sequential run diverged:\n%s",
				seed, firstDiff(want, got))
		}
		for _, shards := range []int{2, 6} {
			if got := identityWorkload(t, shards, seed, coalesceOff); got != want {
				t.Fatalf("seed %d shards=%d uncoalesced diverged from coalesced sequential:\n%s",
					seed, shards, firstDiff(want, got))
			}
		}
	}
}

// TestCoalesceIdenticalTrace pins the canonical Chrome trace export: the
// coalesced scheduler must emit the same per-message instants at the same
// virtual times as the uncoalesced one.
func TestCoalesceIdenticalTrace(t *testing.T) {
	runTraced := func(shards int, mut ...func(*swishmem.Config)) []byte {
		cfg := swishmem.Config{Switches: 4, Seed: 9, Shards: shards}
		for _, m := range mut {
			m(&cfg)
		}
		c, err := swishmem.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.EnableTracing(1 << 20)
		regs, err := c.DeclareStrong("t", swishmem.StrongOptions{Capacity: 64, ValueWidth: 8})
		if err != nil {
			t.Fatal(err)
		}
		cnt, err := c.DeclareCounter("c", swishmem.EventualOptions{Capacity: 16})
		if err != nil {
			t.Fatal(err)
		}
		c.RunFor(2 * time.Millisecond)
		for i := 0; i < 12; i++ {
			regs[i%4].Write(uint64(i), []byte("12345678"), func(bool) {})
			cnt[(i+1)%4].Add(uint64(i%5), 2)
			c.RunFor(time.Millisecond)
		}
		c.RunFor(5 * time.Millisecond)
		var buf bytes.Buffer
		if err := c.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := runTraced(1)
	if got := runTraced(1, coalesceOff); !bytes.Equal(got, want) {
		t.Fatalf("uncoalesced trace diverged from coalesced:\n%s",
			firstDiff(string(want), string(got)))
	}
	if got := runTraced(2, coalesceOff); !bytes.Equal(got, want) {
		t.Fatalf("sharded uncoalesced trace diverged from coalesced sequential:\n%s",
			firstDiff(string(want), string(got)))
	}
}
