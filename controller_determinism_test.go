package swishmem

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"
)

// TestSimultaneousFailureDeterminism fails two chain members at the same
// virtual instant — both become silent inside one FailureTimeout window, so
// a single controller scan tick sees two dead switches at once. The
// controller's scan and per-register reconfiguration walks iterate Go maps;
// without sorted iteration the victim ordering (and hence the emitted
// configuration epochs and trace) differs between runs. The whole
// reconfiguration trace must be byte-identical across repeated runs of the
// same seed.
func TestSimultaneousFailureDeterminism(t *testing.T) {
	run := func() []byte {
		c, err := New(Config{Switches: 5, Spares: 1, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		c.EnableTracing(1 << 16)
		strong, err := c.DeclareStrong("s", StrongOptions{
			Capacity: 64, ValueWidth: 8, RetryTimeout: 500 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		ctr, err := c.DeclareCounter("c", EventualOptions{
			Capacity: 64, SyncPeriod: 500 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		c.RunFor(2 * time.Millisecond)

		val := make([]byte, 8)
		for k := uint64(0); k < 8; k++ {
			binary.BigEndian.PutUint64(val, k)
			strong[0].Write(k, val, nil)
			ctr[int(k)%5].Add(k, 1)
		}
		c.RunFor(3 * time.Millisecond)

		// Both failures land at the exact same virtual time: one scan tick
		// later the controller sees two silent members in the same pass.
		c.Engine().After(0, func() {
			c.FailSwitch(1)
			c.FailSwitch(2)
		})
		c.RunFor(20 * time.Millisecond)

		// Traffic on the survivors exercises the post-reconfiguration chain.
		for k := uint64(8); k < 12; k++ {
			binary.BigEndian.PutUint64(val, k)
			strong[3].Write(k, val, nil)
			ctr[4].Add(k, 1)
		}
		c.RunFor(10 * time.Millisecond)

		var buf bytes.Buffer
		if err := c.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		if c.Controller().Stats.FailuresSeen.Value() != 2 {
			t.Fatalf("controller saw %d failures, want 2",
				c.Controller().Stats.FailuresSeen.Value())
		}
		return buf.Bytes()
	}

	first := run()
	for i := 1; i < 3; i++ {
		if got := run(); !bytes.Equal(first, got) {
			t.Fatalf("run %d produced a different trace (%d vs %d bytes): "+
				"reconfiguration after simultaneous failures is nondeterministic",
				i, len(got), len(first))
		}
	}
}
