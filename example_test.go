package swishmem_test

import (
	"fmt"
	"time"

	"swishmem"
)

// Example builds a three-switch cluster, commits a linearizable write
// through the chain, and reads it back at a different switch.
func Example() {
	cluster, err := swishmem.New(swishmem.Config{Switches: 3, Seed: 7})
	if err != nil {
		panic(err)
	}
	regs, err := cluster.DeclareStrong("table", swishmem.StrongOptions{
		Capacity: 1024, ValueWidth: 16,
	})
	if err != nil {
		panic(err)
	}
	cluster.RunFor(2 * time.Millisecond) // controller pushes the chain config

	regs[0].Write(42, []byte("hello"), func(committed bool) {
		fmt.Println("committed:", committed)
	})
	cluster.RunFor(10 * time.Millisecond)

	regs[2].Read(42, func(v []byte, ok bool) {
		fmt.Println("read at switch 3:", string(v))
	})
	// Output:
	// committed: true
	// read at switch 3: hello
}

// ExampleCluster_DeclareCounter shows the EWO counter CRDT: concurrent
// increments from every switch merge to an exact cluster-wide sum.
func ExampleCluster_DeclareCounter() {
	cluster, _ := swishmem.New(swishmem.Config{Switches: 3, Seed: 7})
	counters, _ := cluster.DeclareCounter("hits", swishmem.EventualOptions{Capacity: 64})
	cluster.RunFor(2 * time.Millisecond)

	counters[0].Add(1, 10)
	counters[1].Add(1, 20)
	counters[2].Add(1, 12)
	cluster.RunFor(5 * time.Millisecond)

	fmt.Println("sum everywhere:", counters[0].Sum(1), counters[1].Sum(1), counters[2].Sum(1))
	// Output:
	// sum everywhere: 42 42 42
}

// ExampleCluster_FailSwitch demonstrates automatic failover: after a chain
// member fail-stops, the controller detects it by heartbeat timeout,
// shortens the chain, and the retried write commits.
func ExampleCluster_FailSwitch() {
	cluster, _ := swishmem.New(swishmem.Config{
		Switches: 3, Spares: 1, Seed: 7, HeartbeatPeriod: 500 * time.Microsecond,
	})
	regs, _ := cluster.DeclareStrong("t", swishmem.StrongOptions{
		Capacity: 64, ValueWidth: 8, RetryTimeout: 500 * time.Microsecond,
	})
	cluster.RunFor(2 * time.Millisecond)

	cluster.FailSwitch(1) // mid-chain fail-stop
	regs[0].Write(1, []byte("alive"), func(ok bool) {
		fmt.Println("write committed after failover:", ok)
	})
	cluster.RunFor(100 * time.Millisecond)
	fmt.Println("recoveries:", cluster.Controller().Stats.Recoveries.Value())
	// Output:
	// write committed after failover: true
	// recoveries: 1
}
