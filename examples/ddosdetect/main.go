// DDoS detection example (§4.2): an attack whose per-switch volume stays
// below the detection threshold is invisible to any single switch — only
// the cluster-wide, CRDT-merged sketch crosses it. This is data-plane
// replication doing something a sharded deployment cannot.
//
//	go run ./examples/ddosdetect
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"swishmem"
	"swishmem/internal/workload"
)

func main() {
	const (
		switches  = 4
		threshold = 2000 // packets per window, cluster-wide
	)
	cluster, err := swishmem.New(swishmem.Config{Switches: switches, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	dets, err := cluster.DeployDDoS("ddos", swishmem.DDoSOptions{
		Width: 2048, Depth: 3,
		Threshold: threshold,
		Window:    50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster.RunFor(2 * time.Millisecond)

	detectedAt := time.Duration(0)
	for _, d := range dets {
		d := d
		d.OnAlarm = func(victim swishmem.FlowKey, est uint64) {
			if detectedAt == 0 {
				detectedAt = cluster.Now()
				fmt.Printf("ALARM at %v on switch %d: victim %v, estimate %d pkts\n",
					detectedAt, d.Switch().Addr(), victim.Dst, est)
			}
		}
	}

	rng := rand.New(rand.NewSource(99))
	// Background: benign traffic to many destinations.
	bg, err := workload.GenTrace(rng, workload.TraceConfig{
		Duration: 40 * time.Millisecond, FlowsPerSec: 20000, Servers: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Attack: 120k pps at one victim — 30k pps per switch, i.e. 1500 per
	// 50ms window per switch: BELOW the 2000 threshold at every single
	// switch, but 6000 cluster-wide.
	atk, err := workload.GenAttack(rng, workload.AttackConfig{
		Duration: 40 * time.Millisecond, PacketsPerSec: 120_000, Sources: 4000, Victim: 9,
	})
	if err != nil {
		log.Fatal(err)
	}
	trace := workload.Merge(bg, atk)
	fmt.Printf("replaying %d packets (%d attack) across %d switches...\n",
		len(trace), len(atk), switches)

	i := 0
	workload.Replay(cluster.Engine(), trace, func(p *swishmem.Packet) {
		cluster.Switch(i % switches).InjectPacket(p)
		i++
	})
	cluster.RunFor(60 * time.Millisecond)

	if detectedAt == 0 {
		fmt.Println("attack NOT detected — per-switch volume was below threshold " +
			"(this is what a sharded deployment would report)")
	} else {
		fmt.Printf("attack detected %v after start via the shared EWO sketch\n", detectedAt)
	}
	var dropped uint64
	for _, d := range dets {
		dropped += d.Stats.Dropped.Value()
	}
	fmt.Printf("attack packets shed after detection: %d\n", dropped)
	t := cluster.NetworkTotals()
	fmt.Printf("replication traffic: %d msgs, %d bytes\n", t.MsgsSent, t.BytesSent)
}
