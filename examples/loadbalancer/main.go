// Load balancer example: the paper's motivating scenario (§3.2). An L4 load
// balancer runs on a cluster of switches behind an ECMP ingress. When the
// live switch set changes (a failure) the ECMP hash re-routes most flows to
// different switches. With switch-local (sharded) state, rerouted
// connections get re-assigned — per-connection-consistency violations that
// break TCP. With SwiShmem SRO state, every switch sees the same
// connection-to-DIP table and no connection breaks.
//
//	go run ./examples/loadbalancer
package main

import (
	"fmt"
	"log"
	"time"

	"swishmem"
	"swishmem/internal/netem"
	"swishmem/internal/nf"
	"swishmem/internal/packet"
	"swishmem/internal/topology"
)

const (
	switches = 4
	flows    = 300
)

func main() {
	fmt.Println("L4 load balancer: sharded baseline vs SwiShmem SRO")
	fmt.Println("scenario: ECMP ingress over 4 switches; switch 4 fails mid-run")
	fmt.Println()
	vSharded := run(true)
	vRepl := run(false)
	fmt.Println()
	fmt.Printf("PCC violations (broken connections) out of %d flows:\n", flows)
	fmt.Printf("  sharded baseline: %4d\n", vSharded)
	fmt.Printf("  SwiShmem SRO:     %4d\n", vRepl)
}

// run drives the scenario and returns the number of connections that
// observed more than one DIP (PCC violations).
func run(sharded bool) int {
	cluster, err := swishmem.New(swishmem.Config{Switches: switches, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	lbs, err := cluster.DeployLoadBalancer("lb", swishmem.LBOptions{
		Capacity: 1 << 14,
		DIPs: []swishmem.Addr{
			swishmem.Addr4(192, 168, 1, 1),
			swishmem.Addr4(192, 168, 1, 2),
			swishmem.Addr4(192, 168, 1, 3),
		},
		Sharded: sharded,
	})
	if err != nil {
		log.Fatal(err)
	}

	// PCC auditor: DIPs observed per connection.
	seen := make(map[uint64]map[swishmem.Addr]bool)
	for i, l := range lbs {
		l := l
		l.Egress = func(p *swishmem.Packet) {
			k, _ := p.Flow()
			// Reconstruct the original key (Dst was rewritten to the DIP).
			orig := k
			orig.Dst = packet.Addr4(203, 0, 113, 80)
			id := nf.FlowID(orig)
			if seen[id] == nil {
				seen[id] = make(map[swishmem.Addr]bool)
			}
			seen[id][p.IP.Dst] = true
		}
		lbs[i].Install()
	}
	cluster.RunFor(2 * time.Millisecond)

	// ECMP ingress over the four switches.
	var addrs []netem.Addr
	for i := 0; i < switches; i++ {
		addrs = append(addrs, cluster.Switch(i).Addr())
	}
	ing := topology.NewIngress(topology.ECMPMod, addrs, cluster.Engine().Rand().Intn)
	deliver := func(p *swishmem.Packet) {
		k, _ := p.Flow()
		if a, ok := ing.Route(k); ok {
			cluster.Switch(int(a - 1)).InjectPacket(p)
		}
	}

	// Phase 1: open all connections (SYN + one data packet each).
	keys := make([]packet.FlowKey, flows)
	for i := range keys {
		keys[i] = packet.FlowKey{
			Src:     packet.AddrU32(0x0b000000 + uint32(i)),
			Dst:     packet.Addr4(203, 0, 113, 80),
			SrcPort: uint16(1024 + i), DstPort: 80, Proto: packet.ProtoTCP,
		}
		deliver(packet.ForFlow(keys[i], packet.FlagSYN, 0))
	}
	cluster.RunFor(200 * time.Millisecond)
	for _, k := range keys {
		deliver(packet.ForFlow(k, packet.FlagACK, 64))
	}
	cluster.RunFor(50 * time.Millisecond)

	// Phase 2: switch 4 fails; ECMP rehashes; connections continue.
	cluster.FailSwitch(switches - 1)
	ing.Fail(cluster.Switch(switches - 1).Addr())
	cluster.RunFor(50 * time.Millisecond)
	for _, k := range keys {
		deliver(packet.ForFlow(k, packet.FlagACK, 64))
	}
	cluster.RunFor(200 * time.Millisecond)

	violations := 0
	for _, dips := range seen {
		if len(dips) > 1 {
			violations++
		}
	}
	mode := "SwiShmem SRO"
	if sharded {
		mode = "sharded"
	}
	fmt.Printf("  [%s] %d flows tracked, %d PCC violations\n", mode, len(seen), violations)
	return violations
}
