// Locality example (§9): "If there is locality, i.e., some state is
// normally used only by a subset of switches, it would not need to be
// replicated to all switches." A register's replicas are placed on two of
// four switches; the other two get zero-SRAM proxy handles that read at the
// chain tail and write via the head, with the controller's directory
// tracking placement. The proxies keep working across a failover because
// they listen to chain reconfigurations.
//
//	go run ./examples/locality
package main

import (
	"fmt"
	"log"
	"time"

	"swishmem"
)

func main() {
	cluster, err := swishmem.New(swishmem.Config{
		Switches: 4, Seed: 11, HeartbeatPeriod: 500 * time.Microsecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Replicas only on switches 0 and 1 — say, the two switches that serve
	// the rack whose flows this register describes.
	regs, err := cluster.DeclareStrong("rack-state", swishmem.StrongOptions{
		Capacity: 4096, ValueWidth: 16,
		ReplicaOn:    []int{0, 1},
		RetryTimeout: 500 * time.Microsecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster.RunFor(2 * time.Millisecond)

	for i := 0; i < 4; i++ {
		fmt.Printf("switch %d SRAM for this register: %6d bytes\n",
			i+1, regs[i].MemoryBytes())
	}
	id, _ := cluster.RegisterID("rack-state")
	fmt.Printf("directory: register %d replicated on switches %v\n\n", id, cluster.Directory().Lookup(id))

	// A write from a proxy switch (3) commits through the remote chain.
	start := cluster.Now()
	regs[3].Write(7, []byte("remote-write"), func(ok bool) {
		fmt.Printf("proxy write committed=%v in %v\n", ok, cluster.Now()-start)
	})
	cluster.RunFor(10 * time.Millisecond)

	// A read from the other proxy (2) is served by the tail.
	start = cluster.Now()
	regs[2].Read(7, func(v []byte, ok bool) {
		fmt.Printf("proxy read %q in %v (remote, zero local SRAM)\n", v, cluster.Now()-start)
	})
	cluster.RunFor(10 * time.Millisecond)

	// Reads at a replica are local and free.
	start = cluster.Now()
	regs[0].Read(7, func(v []byte, ok bool) {
		fmt.Printf("replica read %q in %v (local)\n", v, cluster.Now()-start)
	})

	// Failover: the tail replica dies; proxies learn the new chain from the
	// controller and keep working.
	fmt.Println("\nfailing replica switch 2 (the tail)...")
	cluster.FailSwitch(1)
	cluster.RunFor(50 * time.Millisecond)
	start = cluster.Now()
	regs[2].Read(7, func(v []byte, ok bool) {
		fmt.Printf("proxy read after failover: %q in %v\n", v, cluster.Now()-start)
	})
	cluster.RunFor(10 * time.Millisecond)
}
