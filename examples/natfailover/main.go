// NAT failover example (§6.3): a NAT cluster loses a chain member mid-run.
// The controller detects the failure by heartbeat timeout, shortens the
// chain (restoring write availability), and recovers full replication by
// snapshot-transferring state to a spare switch, which is then promoted to
// tail. Existing translations keep working throughout — including on the
// switches that never saw the original connection.
//
//	go run ./examples/natfailover
package main

import (
	"fmt"
	"log"
	"time"

	"swishmem"
	"swishmem/internal/packet"
)

func main() {
	cluster, err := swishmem.New(swishmem.Config{
		Switches: 3, Spares: 1, Seed: 5,
		HeartbeatPeriod: 500 * time.Microsecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	nats, err := cluster.DeployNAT("nat", swishmem.NATOptions{
		Capacity:   1 << 14,
		ExternalIP: swishmem.Addr4(203, 0, 113, 1),
	})
	if err != nil {
		log.Fatal(err)
	}
	out := make([][]*swishmem.Packet, len(nats))
	for i := range nats {
		i := i
		nats[i].Egress = func(p *swishmem.Packet) { out[i] = append(out[i], p) }
		nats[i].Install()
	}
	cluster.RunFor(2 * time.Millisecond)

	// Open 200 connections through switch 1.
	fmt.Println("opening 200 connections through switch 1...")
	for i := 0; i < 200; i++ {
		syn := packet.NewBuilder().
			Src(packet.Addr4(10, 0, byte(i/250), byte(i%250+1))).
			Dst(packet.Addr4(198, 51, 100, 7)).
			TCP(uint16(2000+i), 80, packet.FlagSYN).Build()
		nats[0].Switch().InjectPacket(syn)
	}
	cluster.RunFor(300 * time.Millisecond)
	fmt.Printf("  translations created: %d, forwarded: %d\n",
		nats[0].Stats.NewConns.Value(), len(out[0]))

	// Kill switch 2 (mid-chain).
	fmt.Println("switch 2 fails (fail-stop)...")
	failAt := cluster.Now()
	cluster.FailSwitch(1)
	cluster.RunFor(100 * time.Millisecond)
	ctrl := cluster.Controller()
	fmt.Printf("  controller detected failure: %v; chain reconfigs: %d; recoveries: %d\n",
		ctrl.Dead(cluster.Switch(1).Addr()),
		ctrl.Stats.ChainReconfig.Value(), ctrl.Stats.Recoveries.Value())
	fmt.Printf("  (failover + spare recovery completed %v after failure)\n",
		cluster.Now()-failAt)

	// Existing connections still translate at switch 3 (which never saw
	// them arrive) and NEW connections commit on the repaired chain.
	before := len(out[2])
	for i := 0; i < 200; i++ {
		ack := packet.NewBuilder().
			Src(packet.Addr4(10, 0, byte(i/250), byte(i%250+1))).
			Dst(packet.Addr4(198, 51, 100, 7)).
			TCP(uint16(2000+i), 80, packet.FlagACK).Build()
		nats[2].Switch().InjectPacket(ack)
	}
	cluster.RunFor(50 * time.Millisecond)
	fmt.Printf("existing connections via switch 3 after failover: %d/200 translated\n",
		len(out[2])-before)

	newSyn := packet.NewBuilder().Src(packet.Addr4(10, 9, 9, 9)).
		Dst(packet.Addr4(198, 51, 100, 7)).TCP(7777, 80, packet.FlagSYN).Build()
	nats[2].Switch().InjectPacket(newSyn)
	cluster.RunFor(100 * time.Millisecond)
	fmt.Printf("new connection after recovery: %d translation(s) at switch 3\n",
		nats[2].Stats.NewConns.Value())
}
