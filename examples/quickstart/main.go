// Quickstart: build a 3-switch SwiShmem cluster, declare one register of
// each consistency class (§5), and watch the protocols at work.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"swishmem"
)

func main() {
	// Three replica switches on an emulated 100 Gbps fabric with 10µs
	// links, plus a central controller doing heartbeat failure detection.
	cluster, err := swishmem.New(swishmem.Config{Switches: 3, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// SRO: linearizable chain-replicated register (e.g. a NAT table).
	strong, err := cluster.DeclareStrong("conn-table", swishmem.StrongOptions{
		Capacity: 4096, ValueWidth: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	// EWO counter: CRDT vector, exact under concurrency (e.g. a sketch cell).
	counters, err := cluster.DeclareCounter("pkt-counts", swishmem.EventualOptions{
		Capacity: 4096,
	})
	if err != nil {
		log.Fatal(err)
	}
	// EWO LWW register: cheap reads and writes, last-writer-wins.
	lww, err := cluster.DeclareEventual("flags", swishmem.EventualOptions{
		Capacity: 64, ValueWidth: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster.RunFor(2 * time.Millisecond) // let the controller push configs

	// --- SRO: write at switch 0, read at switch 2 ---
	const key = 0xbeef
	commitAt := time.Duration(0)
	start := cluster.Now()
	strong[0].Write(key, []byte("dip=10.0.0.7"), func(committed bool) {
		commitAt = cluster.Now()
		fmt.Printf("SRO   write committed=%v after %v (chain head->tail + ack)\n",
			committed, commitAt-start)
	})
	cluster.RunFor(5 * time.Millisecond)
	strong[2].Read(key, func(v []byte, ok bool) {
		fmt.Printf("SRO   read at switch 2: %q (local, linearizable)\n", v)
	})

	// --- EWO counter: concurrent increments from all switches ---
	for i, ctr := range counters {
		ctr.Add(7, uint64(10*(i+1))) // 10+20+30
	}
	cluster.RunFor(5 * time.Millisecond)
	fmt.Printf("EWO   counter sum at every switch: %d %d %d (CRDT: exact)\n",
		counters[0].Sum(7), counters[1].Sum(7), counters[2].Sum(7))

	// --- EWO LWW: concurrent writes converge by stamp ---
	lww[0].Write(1, []byte("from-sw0"))
	lww[2].Write(1, []byte("from-sw2"))
	cluster.RunFor(5 * time.Millisecond)
	v0, _ := lww[0].Read(1)
	v2, _ := lww[2].Read(1)
	fmt.Printf("EWO   LWW converged: switch0=%q switch2=%q\n", v0, v2)

	// --- fabric cost of all of the above ---
	t := cluster.NetworkTotals()
	fmt.Printf("fabric: %d protocol messages, %d bytes (%d dropped)\n",
		t.MsgsSent, t.BytesSent, t.MsgsDropped)
	fmt.Printf("switch 0 SRAM in use: %d bytes of 10 MB\n", cluster.MemoryUsed(0))
}
