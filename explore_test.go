// Root-package wiring for the deterministic fault-schedule explorer
// (internal/explore). Three entry points:
//
//   - TestExploreQuick: tier-1. Sweeps a fixed batch of generated scenarios
//     on every `go test` run, plus a byte-identical-log determinism spot
//     check. Runs in seconds.
//   - TestExplore: flagged long/replay mode, skipped by default.
//     `-explore.n=5000` sweeps seeds `-explore.base..base+n-1` (the nightly
//     CI job), `-explore.seed=N` replays one seed verbosely — this is the
//     command printed by every failure report. `-explore.inject=K` re-arms
//     the injected chain bug for replaying injected-bug failures,
//     `-explore.faults=extended` generates from the extended fault set
//     (nth-loss, corruption, one-way outages, pause/resume),
//     `-explore.backend=retransmit` runs the strong register on the
//     hop-to-hop retransmit backend (with `-explore.inject-disable-retransmit`
//     re-arming its verification bug), and `-explore.artifacts=DIR` writes
//     one report file per failing seed.
//   - TestExploreCatchesInjectedBug: end-to-end self-test of the checker.
//     Arms a real protocol bug (chain head skips forwarding), requires the
//     sweep to catch it, shrink it, and print a replay command that
//     reproduces the identical failure.
//
// See TESTING.md for the full workflow.
package swishmem_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"swishmem/internal/explore"
)

var (
	exploreN      = flag.Int("explore.n", 0, "sweep this many seeds in TestExplore (0 = skip long mode)")
	exploreBase   = flag.Int64("explore.base", 1, "first seed of the TestExplore sweep")
	exploreSeed   = flag.Int64("explore.seed", 0, "replay this single seed in TestExplore (0 = off)")
	exploreInject = flag.Int("explore.inject", 0,
		"arm the injected skip-forward chain bug for this many writes (replaying injected failures)")
	exploreArtifacts = flag.String("explore.artifacts", "", "directory for per-failure report files")
	exploreFaults    = flag.String("explore.faults", "classic",
		"fault set for generated scenarios: classic (crash/partition/loss/join) or extended (+ nth-loss, corruption, one-way outage, pause/resume)")
	exploreBackend = flag.String("explore.backend", "chain",
		"replication backend for the strong register: chain (writer retry) or retransmit (hop-to-hop NACK/retransmit)")
	exploreInjectDisableRtx = flag.Bool("explore.inject-disable-retransmit", false,
		"arm the disabled-retransmit-buffer bug on every replica (replaying rtx-oracle failures)")
)

// faultSet parses -explore.faults. The flag travels in replay commands, so
// an unknown value is a hard error rather than a silent classic fallback.
func faultSet(t *testing.T) explore.FaultSet {
	switch *exploreFaults {
	case "classic":
		return explore.FaultsClassic
	case "extended":
		return explore.FaultsExtended
	default:
		t.Fatalf("unknown -explore.faults=%q (want classic or extended)", *exploreFaults)
		return explore.FaultsClassic
	}
}

// backend parses -explore.backend, with the same hard-error policy.
func backend(t *testing.T) bool {
	switch *exploreBackend {
	case "chain":
		return false
	case "retransmit":
		return true
	default:
		t.Fatalf("unknown -explore.backend=%q (want chain or retransmit)", *exploreBackend)
		return false
	}
}

// TestExploreQuick is the tier-1 face of the explorer: a few dozen generated
// scenarios — crashes, partitions, loss bursts, spare joins — each checked
// against every oracle, on every `go test` run.
func TestExploreQuick(t *testing.T) {
	const n = 30 // >= 25 scenarios, ~2s sequential, less parallel
	start := time.Now()
	sr := explore.Sweep(1, n, runtime.NumCPU(), explore.RunOptions{})
	for _, f := range sr.Failures {
		t.Errorf("%s", f.Report())
	}
	// A smaller extended batch keeps the chaos-parity kinds — nth-loss,
	// corruption, one-way outages, pause/resume — exercised on every run.
	ext := explore.Sweep(1, 20, runtime.NumCPU(), explore.RunOptions{Faults: explore.FaultsExtended})
	for _, f := range ext.Failures {
		t.Errorf("%s", f.Report())
	}
	// The retransmit backend gets its own leg so the rtx oracle and the
	// NACK/retransmit machinery run under generated faults on every `go
	// test`, not just nightly.
	rtx := explore.Sweep(1, 20, runtime.NumCPU(), explore.RunOptions{Retransmit: true})
	for _, f := range rtx.Failures {
		t.Errorf("%s", f.Report())
	}
	// Determinism contract: same seed, byte-identical run log. One strict and
	// one lossy shape.
	for _, seed := range []int64{3, 14} {
		sc := explore.Generate(seed)
		a := explore.Run(sc, explore.RunOptions{})
		b := explore.Run(sc, explore.RunOptions{})
		if a.Log != b.Log {
			t.Errorf("seed %d: two runs of one scenario produced different logs:\n%s\nvs\n%s",
				seed, a.Log, b.Log)
		}
	}
	t.Logf("swept %d scenarios (%d failures) in %s", n, len(sr.Failures), time.Since(start))
}

// TestExplore is the long/replay mode. With no explore flags it skips; the
// nightly CI job passes -explore.n, and failure reports print a
// -explore.seed replay command that lands here.
func TestExplore(t *testing.T) {
	opt := explore.RunOptions{
		InjectSkipForward:       *exploreInject,
		Faults:                  faultSet(t),
		Retransmit:              backend(t),
		InjectDisableRetransmit: *exploreInjectDisableRtx,
	}

	if *exploreSeed != 0 {
		sc := explore.GenerateWith(*exploreSeed, opt.Faults)
		t.Logf("replaying seed %d\n%s", *exploreSeed, sc.Log())
		r := explore.Run(sc, opt)
		t.Logf("run log:\n%s", r.Log)
		if !r.Failed() {
			t.Logf("seed %d passes all oracles", *exploreSeed)
			return
		}
		shrunk, minned := explore.Shrink(sc, opt, r)
		f := &explore.Failure{Seed: *exploreSeed, Opt: opt, Result: r, Shrunk: shrunk, Minned: minned}
		bopt := opt
		bopt.BlackBox = true
		if rerun := explore.Run(sc, bopt); rerun.Log == r.Log {
			f.BlackBox = rerun.BlackBox
		}
		t.Fatalf("%s", f.Report())
	}

	if *exploreN <= 0 {
		t.Skip("long mode off: pass -explore.n=COUNT to sweep seeds or -explore.seed=N to replay one")
	}

	start := time.Now()
	sr := explore.Sweep(*exploreBase, *exploreN, runtime.NumCPU(), opt)
	writeArtifacts(t, sr)
	for _, f := range sr.Failures {
		t.Errorf("%s", f.Report())
	}
	t.Logf("swept seeds %d..%d in %s: %d failure(s)",
		*exploreBase, *exploreBase+int64(*exploreN)-1, time.Since(start), len(sr.Failures))
}

// TestExploreCatchesInjectedBug proves the oracles have teeth: with a real
// protocol bug armed (the chain head applies and acks a write without
// forwarding it down the chain), the sweep must catch it, shrink it to a
// counterexample failing the same oracle, and print a replay command that
// reproduces the identical run log from nothing but the seed.
func TestExploreCatchesInjectedBug(t *testing.T) {
	opt := explore.RunOptions{InjectSkipForward: 1}
	sr := explore.Sweep(1, 20, runtime.NumCPU(), opt)
	if len(sr.Failures) == 0 {
		t.Fatal("injected skip-forward bug escaped a 20-seed sweep")
	}
	f := sr.Failures[0]
	if !f.Minned.Failed() || f.Minned.FirstOracle() != f.Result.FirstOracle() {
		t.Fatalf("shrunk counterexample fails %q, original failed %q",
			f.Minned.FirstOracle(), f.Result.FirstOracle())
	}
	replay := explore.Run(explore.Generate(f.Seed), opt)
	if !replay.Failed() || replay.Log != f.Result.Log {
		t.Fatalf("replay command %q does not reproduce the original failure", f.ReplayCommand())
	}
	// The failure carries its flight record: last trace events, a final
	// metrics snapshot, and the timeline tail, all of which reach the
	// counterexample artifact through Report().
	report := f.Report()
	for _, want := range []string{
		"flight recorder: last",
		"final metrics snapshot",
		"chain.writes_committed",
		"timeline tail",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("failure report missing flight-record section %q:\n%s", want, report)
		}
	}
	if !strings.Contains(f.BlackBox, "t=") {
		t.Errorf("flight record has no trace events:\n%s", f.BlackBox)
	}
	t.Logf("caught at seed %d, first oracle %q\nreplay: %s",
		f.Seed, f.Result.FirstOracle(), f.ReplayCommand())
}

// TestExploreCatchesDisabledRetransmit is the rtx oracle's teeth check:
// with every replica's retransmit buffer silently disabled, any scenario
// lossy enough to provoke a NACK must fail the rtx oracle (a node answered
// NACKs it could not serve), and the replay command must carry both the
// backend and the injection flag.
func TestExploreCatchesDisabledRetransmit(t *testing.T) {
	opt := explore.RunOptions{Retransmit: true, InjectDisableRetransmit: true}
	sr := explore.Sweep(1, 30, runtime.NumCPU(), opt)
	if len(sr.Failures) == 0 {
		t.Fatal("disabled-retransmit bug escaped a 30-seed sweep")
	}
	var rtxFail *explore.Failure
	for _, f := range sr.Failures {
		if f.Result.FirstOracle() == "rtx" {
			rtxFail = f
			break
		}
	}
	if rtxFail == nil {
		t.Fatalf("no failure blamed the rtx oracle; first failure: %s", sr.Failures[0].Result.Failures[0])
	}
	for _, want := range []string{"-explore.backend=retransmit", "-explore.inject-disable-retransmit"} {
		if cmd := rtxFail.ReplayCommand(); !strings.Contains(cmd, want) {
			t.Errorf("replay command %q missing %q", cmd, want)
		}
	}
	replay := explore.Run(explore.Generate(rtxFail.Seed), opt)
	if !replay.Failed() || replay.Log != rtxFail.Result.Log {
		t.Fatalf("replay command %q does not reproduce the original failure", rtxFail.ReplayCommand())
	}
	t.Logf("caught at seed %d: %s\nreplay: %s",
		rtxFail.Seed, rtxFail.Result.Failures[0], rtxFail.ReplayCommand())
}

// writeArtifacts dumps one report per failing seed (plus a summary) into
// -explore.artifacts, for CI upload.
func writeArtifacts(t *testing.T, sr explore.SweepResult) {
	dir := *exploreArtifacts
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatalf("artifacts dir: %v", err)
	}
	summary := fmt.Sprintf("sweep base=%d n=%d failures=%d\n", sr.Base, sr.N, len(sr.Failures))
	for _, f := range sr.Failures {
		summary += fmt.Sprintf("seed %d: %s\n", f.Seed, f.Result.Failures[0])
		body := f.Report() + "\noriginal run log:\n" + f.Result.Log
		name := filepath.Join(dir, fmt.Sprintf("seed-%d.txt", f.Seed))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatalf("write %s: %v", name, err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "summary.txt"), []byte(summary), 0o644); err != nil {
		t.Fatalf("write summary: %v", err)
	}
}
