module swishmem

go 1.22
