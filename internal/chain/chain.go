// Package chain implements SwiShmem's read-optimized replication protocols
// (§6.1): SRO (Strong Read Optimized, linearizable) and ERO (Eventual Read
// Optimized), both based on chain replication adapted to the programmable
// switch environment.
//
// Protocol summary (SRO):
//
//   - A write at switch W is handled by W's control plane, which buffers the
//     output packet, sends the write request to the chain head, and retries
//     on timeout (switches are the "clients" of the chain; they have DRAM to
//     buffer and retry, which the data plane does not — §6.1 footnote 2).
//   - The head assigns a per-key-group sequence number, applies the write,
//     sets the group's pending bit, and forwards down the chain.
//   - Each member applies writes with increasing sequence numbers, sets the
//     pending bit, and forwards to its successor.
//   - The tail applies the write and sends an acknowledgement to the writer
//     (which releases its buffered output packet) and to the other chain
//     members (which clear their pending bits).
//   - Reads are local unless the key's pending bit is set, in which case the
//     read is forwarded to the tail — the CRAQ-derived optimization that
//     gives linearizability without buffering reads.
//
// ERO is identical except reads are always local and no pending bits are
// maintained, trading bounded read latency (and less SRAM) for windows of
// staleness during writes.
//
// Departure from textbook chain replication, forced by the environment: the
// inter-switch fabric is unreliable datagram delivery, so hop-by-hop
// reliable in-order channels do not exist. The package offers two recovery
// disciplines behind the Replicator interface (see replicator.go):
//
//   - ChainReplication (this file): members apply any write whose sequence
//     number exceeds the last applied for its group ("monotone apply") rather
//     than requiring exact succession; end-to-end recovery is the writer's
//     control-plane retry, which re-enters at the head and receives a fresh
//     sequence number. Under loss on chain hops this admits a bounded anomaly
//     window in which a not-yet-committed write is readable at upstream
//     switches after a later write to the same group commits (E15 measures
//     it: 2/40 seeds at 20% loss with a shared sequence group). With lossless
//     chain hops SRO is linearizable, which the tests verify with a history
//     checker.
//
//   - RetransmitReplication (retransmit.go): the data-plane buffering /
//     retransmission mode the paper leaves open in §9. Every hop applies in
//     exact sequence order; out-of-order arrivals wait in a bounded hold-back
//     buffer while a NACK asks the predecessor to retransmit the missing
//     writes from its own bounded buffer of forwarded writes. Because a tail
//     commit of sequence S then implies every member applied every write
//     through S, the ack-driven pending-bit clear can never expose an
//     uncommitted value: the anomaly window is closed (E15/E18 re-measured:
//     0/40 seeds at 20% loss), at a bounded SRAM and retransmission
//     bandwidth cost E19 quantifies.
package chain

import (
	"fmt"
	"time"

	"swishmem/internal/netem"
	"swishmem/internal/obs"
	"swishmem/internal/pisa"
	"swishmem/internal/sim"
	"swishmem/internal/stats"
	"swishmem/internal/wire"
)

// Mode selects the consistency variant.
type Mode int

// Protocol modes.
const (
	// SRO is linearizable: pending keys read at the tail.
	SRO Mode = iota
	// ERO always reads locally: eventual consistency, bounded read latency,
	// no pending-bit SRAM.
	ERO
)

func (m Mode) String() string {
	if m == ERO {
		return "ERO"
	}
	return "SRO"
}

// Backing selects where write propagation is processed on each switch (§6.1:
// register writes run entirely in the data plane; table state requires each
// hop's control plane).
type Backing int

// Backing options.
const (
	// DataPlane processes chain messages at line rate.
	DataPlane Backing = iota
	// ControlPlane punts every chain message through the switch's
	// co-processor (table-backed state), at control-plane cost.
	ControlPlane
)

// Config describes one replicated register (array) managed by the protocol.
type Config struct {
	// Reg is the register identifier carried in protocol messages.
	Reg uint16
	// Capacity is the number of keys the register can hold.
	Capacity int
	// ValueWidth is the value size in bytes.
	ValueWidth int
	// Groups is the number of sequence/pending groups keys hash into (§7:
	// "multiple keys can share the same sequence number and in-progress
	// bit"). 0 means one group per key slot (no sharing).
	Groups int
	// Mode is SRO or ERO.
	Mode Mode
	// Backing selects data-plane or control-plane processing.
	Backing Backing
	// RetryTimeout is the writer's control-plane retransmission timeout.
	// Default 1ms.
	RetryTimeout sim.Duration
	// MaxRetries bounds writer retransmissions before reporting failure.
	// Default 100.
	MaxRetries int
	// AlwaysTailReads disables the CRAQ-derived local-read optimization:
	// every read is forwarded to the tail, as in classic chain replication
	// and NetChain. Exists for the ablation experiment that quantifies what
	// the pending-bit optimization buys; no NF should enable it.
	AlwaysTailReads bool
	// Proxy declares a non-replica access point (the §9 locality
	// extension): the node allocates no replica SRAM, never joins the
	// chain, forwards every read to the tail, and submits writes to the
	// head like any other writer. Use it on switches that only rarely touch
	// a register whose replicas live elsewhere.
	Proxy bool
	// Replication selects the recovery discipline: ChainReplication
	// (default, writer-retry + monotone apply) or RetransmitReplication
	// (hop-level hold-back/retransmit buffers). See replicator.go.
	Replication Replication
	// RetransmitDepth bounds the per-sequence-group hold-back and
	// retransmit buffers of the retransmit backend, in writes. Both buffers
	// are charged to data-plane SRAM. Default 16. Ignored by the chain
	// backend.
	RetransmitDepth int
}

func (c Config) withDefaults() Config {
	if c.Groups <= 0 {
		c.Groups = c.Capacity
	}
	if c.RetryTimeout == 0 {
		c.RetryTimeout = time.Millisecond
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 100
	}
	if c.RetransmitDepth <= 0 {
		c.RetransmitDepth = 16
	}
	return c
}

// Stats counts protocol events on one node.
type Stats struct {
	WritesSubmitted stats.Counter // local NF write submissions
	WritesCommitted stats.Counter // acks received for local submissions
	WritesFailed    stats.Counter // retries exhausted
	Retries         stats.Counter
	Applied         stats.Counter // writes applied from the chain
	StaleDropped    stats.Counter // writes with stale seq (not applied)
	ReadsLocal      stats.Counter
	ReadsForwarded  stats.Counter // SRO pending-bit forwards to tail
	TailReads       stats.Counter // ReadFwd served as tail
	AcksSent        stats.Counter

	// Retransmit-backend counters (zero on the chain backend).
	HeldBack      stats.Counter // out-of-order writes parked in hold-back
	NacksSent     stats.Counter // gap-repair requests sent to the predecessor
	NacksReceived stats.Counter // epoch-valid NACKs received from a successor
	Retransmits   stats.Counter // writes re-sent from the retransmit buffer
	RtxStored     stats.Counter // forwarded writes recorded for retransmission
	RtxAbandoned  stats.Counter // gaps abandoned via skip cursor (degraded to monotone apply)
}

// outstanding is one buffered write at the writer's control plane. This is
// the "buffer P' until the write is completed" state of §6.1; it lives in
// control-plane DRAM, not data-plane SRAM. Records are pooled per node with
// their submit/retry closures bound once and their value backing reused, so
// a steady-state write cycle costs no per-record allocations.
type outstanding struct {
	n        *Node
	id       uint64
	key      uint64
	val      []byte
	done     func(committed bool)
	timer    sim.Timer
	retries  int
	submitAt sim.Time // when submit ran; start of the write.commit span
	run      func()   // o.submit, bound once
	fire     func()   // o.retryFire, bound once
	fireCtrl func()   // schedules fire on the control plane, bound once
}

func (n *Node) getOutstanding() *outstanding {
	var o *outstanding
	if ln := len(n.ofree); ln > 0 {
		o = n.ofree[ln-1]
		n.ofree[ln-1] = nil
		n.ofree = n.ofree[:ln-1]
	} else {
		o = &outstanding{n: n}
		o.run = o.submit
		o.fire = o.retryFire
		o.fireCtrl = func() { o.n.sw.CtrlDo(o.fire) }
	}
	o.retries = 0
	return o
}

// finish completes an outstanding write after it has been removed from the
// pending map. The record returns to the pool only when its retry timer was
// still pending (Stop succeeded) — a fired timer may have a retry queued on
// the control plane that still references the record — and when no attempt
// was ever retried: every attempt's wire.Write aliases o.val, so a retried
// record may have an earlier attempt still in flight (delayed or duplicated
// by the fabric) whose payload would be corrupted if the backing were
// recycled into a new write. A delayed attempt of an unretried record is
// only ever a duplicate delivery of the frame the tail already committed,
// which carries its assigned Seq and is stale-dropped before its value is
// read.
func (n *Node) finish(o *outstanding, committed bool) {
	canPool := o.timer.Stop() && o.retries == 0
	done := o.done
	if canPool {
		o.done = nil
		o.val = o.val[:0]
		n.ofree = append(n.ofree, o)
	}
	if done != nil {
		done(committed)
	}
}

// Node is the per-switch protocol instance for one replicated register.
type Node struct {
	sw  *pisa.Switch
	cfg Config

	chain wire.ChainConfig // current membership, epoch

	store *pisa.KVStore // replicated values

	// seqPend holds per-group protocol state: 8 bytes applied sequence
	// number + 1 byte pending bit (§7's "sequence number and an in-progress
	// bit per entry"). ERO allocates 8-byte entries (no pending bit).
	seqPend *pisa.RegisterArray

	nextWriteID uint64
	pending     map[uint64]*outstanding // by WriteID
	ofree       []*outstanding          // recycled records (see getOutstanding)
	nextReqID   uint64
	reads       map[uint64]func([]byte, bool) // forwarded reads by ReqID

	// onCommitApplied, if set, is invoked whenever a write is applied on
	// this node (used by recovery to track snapshot completion).
	onApply func(w *wire.Write)

	// Recovery state (§6.3): joinSeen is the joining switch's control-plane
	// record of keys written live since the join began; snap is the donor's
	// in-progress snapshot transfer.
	joinSeen map[uint64]struct{}
	snap     *snapshotXfer

	// lat records submit-to-commit latency of locally submitted writes, in
	// nanoseconds of virtual time.
	lat *stats.Histogram

	// injectSkipForward, while positive, makes this node — as head — apply
	// and acknowledge fresh writes without forwarding them down the chain: a
	// deliberately planted replication bug (see InjectSkipForward).
	injectSkipForward int

	// hop, when non-nil, replaces the monotone-apply hop discipline with the
	// retransmit backend's in-order apply (see retransmit.go). Classic chain
	// nodes leave it nil.
	hop *rtxState

	Stats Stats
}

// WriteLatency returns the submit-to-commit latency distribution of writes
// submitted at this node (nanoseconds of virtual time).
func (n *Node) WriteLatency() *stats.Histogram { return n.lat }

// tracer returns the cluster tracer (nil when tracing is off).
func (n *Node) tracer() *obs.Tracer { return n.sw.Engine().Tracer() }

// pid is this node's trace lane: the switch address.
func (n *Node) pid() int32 { return int32(n.sw.Addr()) }

// NewNode creates the protocol instance and allocates its SRAM.
func NewNode(sw *pisa.Switch, cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Capacity <= 0 || cfg.ValueWidth <= 0 {
		return nil, fmt.Errorf("chain: register %d needs positive capacity and value width", cfg.Reg)
	}
	if cfg.Proxy {
		// No replica state at all: reads forward, writes buffer at the
		// control plane like any writer's.
		return &Node{
			sw:      sw,
			cfg:     cfg,
			pending: make(map[uint64]*outstanding),
			reads:   make(map[uint64]func([]byte, bool)),
			lat:     stats.NewHistogram(),
		}, nil
	}
	store, err := sw.NewKVStore(fmt.Sprintf("chain-reg%d", cfg.Reg), cfg.Capacity, 8, cfg.ValueWidth)
	if err != nil {
		return nil, err
	}
	width := 9 // seq + pending bit
	if cfg.Mode == ERO {
		width = 8 // ERO needs no pending bit (§6.1: "saves space")
	}
	seqPend, err := sw.NewRegisterArray(fmt.Sprintf("chain-seq%d", cfg.Reg), cfg.Groups, width)
	if err != nil {
		store.Free()
		return nil, err
	}
	return &Node{
		sw:      sw,
		cfg:     cfg,
		store:   store,
		seqPend: seqPend,
		pending: make(map[uint64]*outstanding),
		reads:   make(map[uint64]func([]byte, bool)),
		lat:     stats.NewHistogram(),
	}, nil
}

// Switch returns the owning switch.
func (n *Node) Switch() *pisa.Switch { return n.sw }

// Config returns the node's configuration (with defaults applied).
func (n *Node) Config() Config { return n.cfg }

// MemoryBytes returns the data-plane SRAM this register consumes on this
// switch (store + sequence/pending array) — the quantity E10 sweeps.
// Proxies consume nothing.
func (n *Node) MemoryBytes() int {
	if n.cfg.Proxy {
		return 0
	}
	return n.store.Bytes() + n.seqPend.Bytes()
}

// SetChain installs a chain configuration (from the controller). Stale
// epochs are ignored. A node that was joining leaves joining mode when a
// configuration no longer names it as Joining (promotion complete).
func (n *Node) SetChain(cc wire.ChainConfig) {
	if cc.Epoch < n.chain.Epoch {
		return
	}
	epochChanged := cc.Epoch > n.chain.Epoch
	n.chain = cc
	if n.joinSeen != nil && netem.Addr(cc.Joining) != n.sw.Addr() {
		n.FinishJoin()
	}
	if epochChanged && n.hop != nil {
		n.hop.epochChanged()
	}
}

// Chain returns the current configuration.
func (n *Node) Chain() wire.ChainConfig { return n.chain }

// SetOnApply registers a hook invoked after every applied write.
func (n *Node) SetOnApply(fn func(w *wire.Write)) { n.onApply = fn }

func (n *Node) group(key uint64) int {
	if n.cfg.Groups >= n.cfg.Capacity {
		return int(key % uint64(n.cfg.Groups))
	}
	return pisa.HashIndex(key, n.cfg.Groups)
}

func (n *Node) appliedSeq(g int) uint64 { return n.seqPend.U64Get(g) }

func (n *Node) setApplied(g int, seq uint64, pend bool) {
	n.seqPend.U64Set(g, seq)
	if n.cfg.Mode == SRO {
		b := byte(0)
		if pend {
			b = 1
		}
		n.seqPend.View(g)[8] = b
	}
}

func (n *Node) isPending(g int) bool {
	return n.cfg.Mode == SRO && n.seqPend.View(g)[8] == 1
}

func (n *Node) clearPending(g int) {
	if n.cfg.Mode == SRO {
		n.seqPend.View(g)[8] = 0
	}
}

// Role helpers.

func (n *Node) head() netem.Addr {
	if len(n.chain.Members) == 0 {
		return 0
	}
	return netem.Addr(n.chain.Members[0])
}

func (n *Node) tail() netem.Addr {
	if len(n.chain.Members) == 0 {
		return 0
	}
	return netem.Addr(n.chain.Members[len(n.chain.Members)-1])
}

// IsHead reports whether this switch heads the chain.
func (n *Node) IsHead() bool { return n.head() == n.sw.Addr() && len(n.chain.Members) > 0 }

// IsTail reports whether this switch is the chain tail.
func (n *Node) IsTail() bool { return n.tail() == n.sw.Addr() && len(n.chain.Members) > 0 }

// successor returns the next hop after this switch, or 0 if none/tail.
func (n *Node) successor() netem.Addr {
	for i, m := range n.chain.Members {
		if netem.Addr(m) == n.sw.Addr() {
			if i+1 < len(n.chain.Members) {
				return netem.Addr(n.chain.Members[i+1])
			}
			return 0
		}
	}
	return 0
}

// Write submits a write from this switch's NF: the control plane buffers the
// completion callback (standing in for the output packet P'), sends the
// write to the head, and retries until acknowledged (§6.1). done is invoked
// with committed=true when the tail acknowledgement arrives, or false when
// retries are exhausted.
func (n *Node) Write(key uint64, val []byte, done func(committed bool)) {
	n.Stats.WritesSubmitted.Inc()
	o := n.getOutstanding()
	o.key = key
	o.val = append(o.val[:0], val...)
	o.done = done
	n.sw.CtrlDo(o.run)
}

// submit registers the write and starts its first attempt (control plane).
func (o *outstanding) submit() {
	n := o.n
	n.nextWriteID++
	o.id = n.nextWriteID
	o.submitAt = n.sw.Engine().Now()
	n.pending[o.id] = o
	if tr := n.tracer(); tr.Enabled() {
		rec := tr.Emit(obs.PhaseInstant, int64(o.submitAt), 0, n.pid(), "chain", "write.submit")
		rec.K1, rec.V1 = "id", int64(o.id)
		rec.K2, rec.V2 = "key", int64(o.key)
		rec.K3, rec.V3 = "reg", int64(n.cfg.Reg)
	}
	n.sendWrite(o)
}

func (n *Node) sendWrite(o *outstanding) {
	// Arm the retry before sending: when the writer is also head and tail,
	// the attempt below commits synchronously, and finish must find a
	// pending timer to stop.
	n.scheduleRetry(o)
	head := n.head()
	if head == 0 {
		// No chain installed yet; retry until the controller provides one.
		return
	}
	w := &wire.Write{
		Reg:     n.cfg.Reg,
		Key:     o.key,
		Seq:     0, // head assigns
		WriteID: o.id,
		Writer:  uint16(n.sw.Addr()),
		Epoch:   n.chain.Epoch,
		Value:   o.val,
	}
	if head == n.sw.Addr() {
		// Writer is the head: inject locally at the same processing cost
		// path a remote write would take.
		n.process(n.sw.Addr(), w)
	} else {
		n.sw.Send(head, w)
	}
}

func (n *Node) scheduleRetry(o *outstanding) {
	// Equivalent to sw.CtrlAfter, but with the callback chain bound once on
	// the pooled record and a value Timer handle: arming and stopping the
	// retry allocates nothing.
	o.timer = n.sw.Engine().AfterVal(n.cfg.RetryTimeout, o.fireCtrl)
}

// retryFire is the retry timer body (bound once per record).
func (o *outstanding) retryFire() {
	n := o.n
	if n.pending[o.id] != o {
		return // completed (or superseded) while the retry was queued
	}
	if o.retries >= n.cfg.MaxRetries {
		delete(n.pending, o.id)
		n.Stats.WritesFailed.Inc()
		n.finish(o, false)
		return
	}
	o.retries++
	n.Stats.Retries.Inc()
	if tr := n.tracer(); tr.Enabled() {
		rec := tr.Emit(obs.PhaseInstant, int64(n.sw.Engine().Now()), 0, n.pid(), "chain", "write.retry")
		rec.K1, rec.V1 = "id", int64(o.id)
		rec.K2, rec.V2 = "retries", int64(o.retries)
	}
	n.sendWrite(o)
}

// Read performs an NF read of key. In SRO mode a read of a pending group is
// forwarded to the tail (§6.1); otherwise it completes synchronously from
// the local replica. fn receives the value (nil, false on miss).
func (n *Node) Read(key uint64, fn func(val []byte, ok bool)) {
	if n.cfg.Proxy {
		n.forwardRead(key, fn)
		return
	}
	g := n.group(key)
	if n.cfg.AlwaysTailReads && !n.IsTail() {
		n.forwardRead(key, fn)
		return
	}
	if n.cfg.Mode == SRO && n.isPending(g) && !n.IsTail() {
		n.forwardRead(key, fn)
		return
	}
	n.Stats.ReadsLocal.Inc()
	v, ok := n.store.Get(key)
	fn(v, ok)
}

// forwardRead sends the read to the tail (§6.1) and registers the reply
// continuation.
func (n *Node) forwardRead(key uint64, fn func(val []byte, ok bool)) {
	n.Stats.ReadsForwarded.Inc()
	n.nextReqID++
	id := n.nextReqID
	n.reads[id] = fn
	n.sw.Send(n.tail(), &wire.ReadFwd{Reg: n.cfg.Reg, Key: key, ReqID: id, Origin: uint16(n.sw.Addr())})
}

// Get returns the local replica value without protocol involvement (for
// audits and tests). Proxies hold no state.
func (n *Node) Get(key uint64) ([]byte, bool) {
	if n.cfg.Proxy {
		return nil, false
	}
	return n.store.Get(key)
}

// Handle routes a protocol message to this node. It returns false if the
// message is not for this register.
func (n *Node) Handle(from netem.Addr, msg wire.Msg) bool {
	switch m := msg.(type) {
	case *wire.Write:
		if m.Reg != n.cfg.Reg {
			return false
		}
		n.dispatch(m, func() { n.process(from, m) })
	case *wire.WriteAck:
		if m.Reg != n.cfg.Reg {
			return false
		}
		n.dispatch(m, func() { n.processAck(m) })
	case *wire.ReadFwd:
		if m.Reg != n.cfg.Reg {
			return false
		}
		n.dispatch(m, func() { n.processReadFwd(m) })
	case *wire.ReadReply:
		if m.Reg != n.cfg.Reg {
			return false
		}
		n.dispatch(m, func() { n.processReadReply(m) })
	case *wire.ChainConfig:
		n.SetChain(*m)
	default:
		return false
	}
	return true
}

// dispatch runs fn at the configured backing cost: inline for data-plane
// registers (the caller is already in a data-plane slot), via the
// co-processor for control-plane tables. The deferred control-plane path
// holds a reference on pooled messages (the live fabric's zero-copy views)
// for the lifetime of the closure — without it, the receive path would
// recycle the message (and the datagram buffer backing its value) before
// the co-processor slot runs.
func (n *Node) dispatch(msg wire.Msg, fn func()) {
	if n.cfg.Backing == ControlPlane {
		if r, ok := msg.(netem.Releasable); ok {
			r.Ref()
			n.sw.CtrlDo(func() {
				fn()
				r.Release()
			})
			return
		}
		n.sw.CtrlDo(fn)
		return
	}
	fn()
}

// process handles a Write at any chain position.
func (n *Node) process(from netem.Addr, w *wire.Write) {
	if n.cfg.Proxy {
		return // proxies never participate in propagation
	}
	if w.Snapshot {
		n.processSnapshotWrite(w)
		return
	}
	if w.Epoch != n.chain.Epoch {
		return // stale or future configuration; writer will retry
	}
	if w.Seq == 0 {
		if !n.IsHead() {
			return // misrouted fresh write
		}
		// Assign the sequence number in place: every attempt arrives as its
		// own Write (sendWrite builds one per attempt), so nothing else reads
		// the zero Seq again. A duplicate delivery of the same object then
		// carries the assigned Seq and is dropped as stale instead of being
		// double-sequenced.
		w.Seq = n.appliedSeq(n.group(w.Key)) + 1
		if n.injectSkipForward > 0 {
			n.injectSkipForward--
			applied := n.apply(w)
			n.commitAtTail(w, applied)
			return
		}
	}
	if n.hop != nil && n.joinSeen == nil {
		// Retransmit backend: in-order apply with hold-back/NACK recovery.
		// A joining switch stays on monotone apply — the live writes the
		// tail forwards to it are committed and arbitrarily sparse, so gaps
		// there are expected, not losses (§6.3 recovery).
		n.hop.deliver(from, w)
		return
	}
	applied := n.apply(w)
	if n.IsTail() {
		n.commitAtTail(w, applied)
		return
	}
	if succ := n.successor(); succ != 0 {
		if tr := n.tracer(); tr.Enabled() {
			rec := tr.Emit(obs.PhaseInstant, int64(n.sw.Engine().Now()), 0, n.pid(), "chain", "write.forward")
			rec.K1, rec.V1 = "id", int64(w.WriteID)
			rec.K2, rec.V2 = "seq", int64(w.Seq)
			rec.K3, rec.V3 = "succ", int64(succ)
		}
		n.sw.Send(succ, w)
	}
}

// apply installs the write if its sequence number advances the group,
// reporting whether it did.
func (n *Node) apply(w *wire.Write) bool {
	g := n.group(w.Key)
	if w.Seq <= n.appliedSeq(g) {
		n.Stats.StaleDropped.Inc()
		return false
	}
	if err := n.store.Set(w.Key, w.Value); err != nil {
		// Register capacity exhausted: drop; the writer's retries will fail
		// and surface the error to the NF.
		n.Stats.StaleDropped.Inc()
		return false
	}
	n.setApplied(g, w.Seq, true)
	n.Stats.Applied.Inc()
	if n.joinSeen != nil {
		n.joinSeen[w.Key] = struct{}{}
	}
	if n.onApply != nil {
		n.onApply(w)
	}
	return true
}

// commitAtTail acknowledges a write: to the writer (releasing its buffered
// output packet) and to the rest of the chain (clearing pending bits). The
// tail's own pending bit is never set — its local value is by definition
// committed. applied reports whether this tail freshly applied w: only such
// writes are forwarded to a joining switch, because a stale duplicate's
// Value may alias a writer buffer that has since been recycled (its original
// delivery was committed, acked, and — if join-relevant — forwarded then).
func (n *Node) commitAtTail(w *wire.Write, applied bool) {
	n.clearPending(n.group(w.Key))
	ack := &wire.WriteAck{Reg: n.cfg.Reg, Key: w.Key, Seq: w.Seq,
		WriteID: w.WriteID, Writer: w.Writer, Epoch: w.Epoch}
	n.Stats.AcksSent.Inc()
	if tr := n.tracer(); tr.Enabled() {
		rec := tr.Emit(obs.PhaseInstant, int64(n.sw.Engine().Now()), 0, n.pid(), "chain", "write.ack")
		rec.K1, rec.V1 = "id", int64(w.WriteID)
		rec.K2, rec.V2 = "seq", int64(w.Seq)
		rec.K3, rec.V3 = "writer", int64(w.Writer)
	}
	// Ack to the writer (even if it is also a chain member).
	if netem.Addr(w.Writer) == n.sw.Addr() {
		n.processAck(ack)
	} else {
		n.sw.Send(netem.Addr(w.Writer), ack)
	}
	// Acks to chain members to clear pending bits (§6.1). The multicast
	// engine sends one copy per member; the writer address is skipped if it
	// already got one above.
	for _, m := range n.chain.Members {
		a := netem.Addr(m)
		if a == n.sw.Addr() || a == netem.Addr(w.Writer) {
			continue
		}
		n.sw.Send(a, ack)
	}
	// Forward committed writes to a joining switch so it converges while
	// the snapshot transfer runs (§6.3 recovery).
	if applied && n.chain.Joining != 0 && netem.Addr(n.chain.Joining) != n.sw.Addr() {
		// Copy the value: this message is in flight after the writer's ack,
		// so it must not alias the writer's reusable buffer.
		n.sw.Send(netem.Addr(n.chain.Joining), &wire.Write{Reg: w.Reg, Key: w.Key, Seq: w.Seq,
			WriteID: w.WriteID, Writer: w.Writer, Epoch: w.Epoch,
			Value: append([]byte(nil), w.Value...)})
	}
}

// processAck clears pending state at members and completes the writer's
// outstanding write.
func (n *Node) processAck(a *wire.WriteAck) {
	if a.WriteID&snapIDBit != 0 {
		n.processSnapshotAck(a)
		return
	}
	if a.Epoch == n.chain.Epoch && !n.cfg.Proxy {
		g := n.group(a.Key)
		// The ack means the tail applied a.Seq. Clear the pending bit only
		// if we have not applied anything newer in this group.
		if a.Seq >= n.appliedSeq(g) {
			n.clearPending(g)
		}
		if n.hop != nil {
			// The tail ack is the retransmit backend's cumulative ack: a
			// commit of a.Seq means every member applied everything through
			// it (in-order apply), so buffered copies at or below are free.
			n.hop.freeThrough(g, a.Seq)
		}
	}
	if netem.Addr(a.Writer) != n.sw.Addr() {
		return
	}
	if o, ok := n.pending[a.WriteID]; ok {
		delete(n.pending, a.WriteID)
		n.Stats.WritesCommitted.Inc()
		now := n.sw.Engine().Now()
		n.lat.ObserveDuration(now.Sub(o.submitAt))
		if tr := n.tracer(); tr.Enabled() {
			// The whole write lifetime as one span at the writer: submit ->
			// head -> chain hops -> tail ack -> commit.
			rec := tr.Emit(obs.PhaseSpan, int64(o.submitAt), int64(now-o.submitAt), n.pid(), "chain", "write.commit")
			rec.K1, rec.V1 = "id", int64(o.id)
			rec.K2, rec.V2 = "retries", int64(o.retries)
			rec.K3, rec.V3 = "reg", int64(n.cfg.Reg)
		}
		n.finish(o, true)
	}
}

// processReadFwd serves a forwarded read at the tail.
func (n *Node) processReadFwd(r *wire.ReadFwd) {
	if n.cfg.Proxy {
		return
	}
	n.Stats.TailReads.Inc()
	v, ok := n.store.Get(r.Key)
	reply := &wire.ReadReply{Reg: n.cfg.Reg, Key: r.Key, ReqID: r.ReqID}
	if ok {
		// Copy: the store entry's backing is reused by later Sets, and this
		// reply is in flight across the fabric's delivery delay.
		reply.Value = append([]byte(nil), v...)
	}
	n.sw.Send(netem.Addr(r.Origin), reply)
}

// processReadReply completes a forwarded read at the origin.
func (n *Node) processReadReply(r *wire.ReadReply) {
	fn, ok := n.reads[r.ReqID]
	if !ok {
		return
	}
	delete(n.reads, r.ReqID)
	fn(r.Value, len(r.Value) > 0)
}

// OutstandingWrites returns the number of buffered, unacknowledged writes at
// this writer's control plane.
func (n *Node) OutstandingWrites() int { return len(n.pending) }

// InjectSkipForward plants a verification-only bug: the next count fresh
// writes sequenced at this node while it is head are applied locally and
// acknowledged as committed without being forwarded to the rest of the
// chain — an acked-but-unreplicated write, the classic chain-replication
// violation. internal/explore uses it to prove its oracles catch and
// shrink real protocol bugs; no production path sets it.
func (n *Node) InjectSkipForward(count int) { n.injectSkipForward += count }
