package chain

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"swishmem/internal/netem"
	"swishmem/internal/pisa"
	"swishmem/internal/sim"
	"swishmem/internal/wire"
)

// rig is a chain test cluster: n switches each running one Node.
type rig struct {
	eng   *sim.Engine
	net   *netem.Network
	sws   []*pisa.Switch
	nodes []*Node
	epoch uint32
}

func newRig(t testing.TB, seed int64, n int, cfg Config, profile netem.LinkProfile) *rig {
	t.Helper()
	eng := sim.NewEngine(seed)
	nw := netem.New(eng, profile)
	r := &rig{eng: eng, net: nw}
	for i := 0; i < n; i++ {
		sw := pisa.New(eng, nw, pisa.Config{Addr: netem.Addr(i + 1), PipelinePPS: 1e9})
		node, err := NewNode(sw, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sw.SetMsgHandler(func(s *pisa.Switch, from netem.Addr, msg wire.Msg) {
			node.Handle(from, msg)
		})
		r.sws = append(r.sws, sw)
		r.nodes = append(r.nodes, node)
	}
	r.installChain(r.allAddrs(), 0)
	return r
}

func (r *rig) allAddrs() []uint16 {
	out := make([]uint16, len(r.sws))
	for i, sw := range r.sws {
		out[i] = uint16(sw.Addr())
	}
	return out
}

func (r *rig) installChain(members []uint16, joining uint16) {
	r.epoch++
	cc := wire.ChainConfig{Epoch: r.epoch, Members: members, Joining: joining}
	for _, n := range r.nodes {
		n.SetChain(cc)
	}
}

func val(s string) []byte { return []byte(s) }

func u64val(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

func defCfg() Config {
	return Config{Reg: 1, Capacity: 1024, ValueWidth: 16, Mode: SRO}
}

func TestWriteCommitsAndReplicates(t *testing.T) {
	r := newRig(t, 1, 3, defCfg(), netem.LinkProfile{Latency: 10_000})
	committed := false
	r.nodes[1].Write(42, val("hello"), func(ok bool) { committed = ok })
	r.eng.Run()
	if !committed {
		t.Fatal("write not committed")
	}
	for i, n := range r.nodes {
		v, ok := n.Get(42)
		if !ok || string(v) != "hello" {
			t.Fatalf("replica %d: %q %v", i, v, ok)
		}
	}
	if r.nodes[1].OutstandingWrites() != 0 {
		t.Fatal("outstanding writes remain")
	}
	if r.nodes[1].Stats.WritesCommitted.Value() != 1 {
		t.Fatal("commit counter")
	}
}

func TestWriteByHeadAndTail(t *testing.T) {
	// Writers at every chain position must work, including head and tail.
	for writer := 0; writer < 3; writer++ {
		r := newRig(t, 1, 3, defCfg(), netem.LinkProfile{Latency: 10_000})
		done := false
		r.nodes[writer].Write(7, val("x"), func(ok bool) { done = ok })
		r.eng.Run()
		if !done {
			t.Fatalf("writer at position %d did not commit", writer)
		}
		for i, n := range r.nodes {
			if v, ok := n.Get(7); !ok || string(v) != "x" {
				t.Fatalf("writer %d replica %d missing", writer, i)
			}
		}
	}
}

func TestReadLocalWhenClean(t *testing.T) {
	r := newRig(t, 1, 3, defCfg(), netem.LinkProfile{Latency: 10_000})
	r.nodes[0].Write(1, val("v"), nil)
	r.eng.Run()
	got := ""
	r.nodes[1].Read(1, func(v []byte, ok bool) { got = string(v) })
	// Local read completes synchronously.
	if got != "v" {
		t.Fatalf("read = %q", got)
	}
	if r.nodes[1].Stats.ReadsLocal.Value() != 1 || r.nodes[1].Stats.ReadsForwarded.Value() != 0 {
		t.Fatal("read accounting")
	}
}

func TestReadMiss(t *testing.T) {
	r := newRig(t, 1, 2, defCfg(), netem.LinkProfile{Latency: 10_000})
	called := false
	r.nodes[0].Read(999, func(v []byte, ok bool) {
		called = true
		if ok || v != nil {
			t.Errorf("miss returned %q %v", v, ok)
		}
	})
	if !called {
		t.Fatal("callback not invoked")
	}
}

func TestSROPendingReadForwardsToTail(t *testing.T) {
	// Write in flight: head has applied (pending set) but tail has not.
	// A read at the head must be served by the tail's committed state.
	r := newRig(t, 1, 3, defCfg(), netem.LinkProfile{Latency: 1 * 1000 * 1000}) // 1ms hops
	r.nodes[0].Write(5, val("old"), nil)
	r.eng.Run()

	// Second write: pause after it reaches the head but before the tail.
	r.nodes[0].Write(5, val("new"), nil)
	// Run just far enough for the head to apply (control latency + hop).
	r.eng.RunFor(1200 * time.Microsecond)
	headApplied := false
	if v, ok := r.nodes[0].Get(5); ok && string(v) == "new" {
		headApplied = true
	}
	if !headApplied {
		t.Skip("timing: head has not applied yet; adjust windows")
	}
	var got string
	gotAt := sim.Time(0)
	r.nodes[0].Read(5, func(v []byte, ok bool) { got, gotAt = string(v), r.eng.Now() })
	if got != "" && got != "old" {
		t.Fatalf("pending read served locally with %q", got)
	}
	r.eng.Run()
	if got != "old" && got != "new" {
		t.Fatalf("forwarded read = %q", got)
	}
	if gotAt == 0 {
		t.Fatal("forwarded read never completed")
	}
	if r.nodes[0].Stats.ReadsForwarded.Value() != 1 {
		t.Fatalf("forward count = %d", r.nodes[0].Stats.ReadsForwarded.Value())
	}
	if r.nodes[2].Stats.TailReads.Value() != 1 {
		t.Fatal("tail did not serve the read")
	}
}

func TestPendingBitClearedAfterAck(t *testing.T) {
	r := newRig(t, 1, 3, defCfg(), netem.LinkProfile{Latency: 10_000})
	r.nodes[1].Write(9, val("z"), nil)
	r.eng.Run()
	// After commit+acks, reads everywhere are local.
	for i, n := range r.nodes {
		before := n.Stats.ReadsForwarded.Value()
		n.Read(9, func(v []byte, ok bool) {})
		if n.Stats.ReadsForwarded.Value() != before {
			t.Fatalf("node %d still forwarding after ack", i)
		}
	}
}

func TestEROAlwaysLocal(t *testing.T) {
	cfg := defCfg()
	cfg.Mode = ERO
	r := newRig(t, 1, 3, cfg, netem.LinkProfile{Latency: 1000 * 1000})
	r.nodes[0].Write(5, val("v1"), nil)
	r.eng.RunFor(1100 * time.Microsecond) // head applied, tail not yet
	done := false
	r.nodes[0].Read(5, func(v []byte, ok bool) { done = true })
	if !done {
		t.Fatal("ERO read was not synchronous")
	}
	if r.nodes[0].Stats.ReadsForwarded.Value() != 0 {
		t.Fatal("ERO forwarded a read")
	}
	r.eng.Run()
}

func TestEROUsesLessMemory(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := netem.New(eng, netem.LinkProfile{})
	swS := pisa.New(eng, nw, pisa.Config{Addr: 1})
	swE := pisa.New(eng, nw, pisa.Config{Addr: 2})
	cfgS := defCfg()
	nS, err := NewNode(swS, cfgS)
	if err != nil {
		t.Fatal(err)
	}
	cfgE := defCfg()
	cfgE.Mode = ERO
	nE, err := NewNode(swE, cfgE)
	if err != nil {
		t.Fatal(err)
	}
	if nE.MemoryBytes() >= nS.MemoryBytes() {
		t.Fatalf("ERO (%d) should use less SRAM than SRO (%d): pending bits eliminated",
			nE.MemoryBytes(), nS.MemoryBytes())
	}
}

func TestGroupSharingReducesMemory(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := netem.New(eng, netem.LinkProfile{})
	sw1 := pisa.New(eng, nw, pisa.Config{Addr: 1})
	sw2 := pisa.New(eng, nw, pisa.Config{Addr: 2})
	full := defCfg()
	n1, _ := NewNode(sw1, full)
	shared := defCfg()
	shared.Groups = 64
	n2, _ := NewNode(sw2, shared)
	if n2.MemoryBytes() >= n1.MemoryBytes() {
		t.Fatalf("group sharing did not reduce memory: %d vs %d", n2.MemoryBytes(), n1.MemoryBytes())
	}
}

func TestRetryOnWriterToHeadLoss(t *testing.T) {
	cfg := defCfg()
	cfg.RetryTimeout = 200 * time.Microsecond
	r := newRig(t, 3, 3, cfg, netem.LinkProfile{Latency: 10_000})
	// Lossy path only from writer (node 1, addr 2) to head (addr 1).
	r.net.SetOneWayLink(2, 1, netem.LinkProfile{Latency: 10_000, LossRate: 0.8})
	committed := 0
	const writes = 50
	for i := 0; i < writes; i++ {
		r.nodes[1].Write(uint64(i), u64val(uint64(i)), func(ok bool) {
			if ok {
				committed++
			}
		})
	}
	r.eng.Run()
	if committed != writes {
		t.Fatalf("committed %d/%d despite retries", committed, writes)
	}
	if r.nodes[1].Stats.Retries.Value() == 0 {
		t.Fatal("no retries recorded at 80% loss")
	}
	// All replicas converged.
	for i := 0; i < writes; i++ {
		for j, n := range r.nodes {
			if v, ok := n.Get(uint64(i)); !ok || binary.BigEndian.Uint64(v) != uint64(i) {
				t.Fatalf("replica %d key %d missing", j, i)
			}
		}
	}
}

func TestRetryOnAckLoss(t *testing.T) {
	cfg := defCfg()
	cfg.RetryTimeout = 200 * time.Microsecond
	r := newRig(t, 5, 3, cfg, netem.LinkProfile{Latency: 10_000})
	// Acks tail(3)->writer(2) lossy.
	r.net.SetOneWayLink(3, 2, netem.LinkProfile{Latency: 10_000, LossRate: 0.7})
	committed := 0
	for i := 0; i < 30; i++ {
		r.nodes[1].Write(uint64(i), u64val(1), func(ok bool) {
			if ok {
				committed++
			}
		})
	}
	r.eng.Run()
	if committed != 30 {
		t.Fatalf("committed %d/30", committed)
	}
}

func TestWriteFailsAfterMaxRetries(t *testing.T) {
	cfg := defCfg()
	cfg.RetryTimeout = 100 * time.Microsecond
	cfg.MaxRetries = 3
	r := newRig(t, 1, 3, cfg, netem.LinkProfile{Latency: 10_000})
	// Kill the head; no failover: writes must eventually fail.
	r.sws[0].Fail()
	var failed bool
	r.nodes[1].Write(1, val("x"), func(ok bool) { failed = !ok })
	r.eng.Run()
	if !failed {
		t.Fatal("write did not report failure after retries exhausted")
	}
	if r.nodes[1].Stats.WritesFailed.Value() != 1 {
		t.Fatal("failure counter")
	}
}

func TestConcurrentWritersSameKeyConverge(t *testing.T) {
	r := newRig(t, 9, 4, defCfg(), netem.LinkProfile{Latency: 10_000, Jitter: 5_000})
	// All four switches write the same key concurrently, many times.
	for round := 0; round < 20; round++ {
		for w := 0; w < 4; w++ {
			v := fmt.Sprintf("w%d-r%d", w, round)
			r.nodes[w].Write(77, val(v), nil)
		}
	}
	r.eng.Run()
	// All replicas hold the same final value (head sequencing gives a total
	// order; the last sequence number wins everywhere).
	want, ok := r.nodes[0].Get(77)
	if !ok {
		t.Fatal("key missing")
	}
	for i, n := range r.nodes {
		got, _ := n.Get(77)
		if string(got) != string(want) {
			t.Fatalf("replica %d = %q, want %q", i, got, want)
		}
	}
}

func TestEpochFiltering(t *testing.T) {
	r := newRig(t, 1, 3, defCfg(), netem.LinkProfile{Latency: 10_000})
	// A write from a stale epoch must be ignored by members.
	stale := &wire.Write{Reg: 1, Key: 5, Seq: 0, WriteID: 1, Writer: 2, Epoch: 0, Value: val("stale")}
	r.nodes[0].Handle(2, stale)
	r.eng.Run()
	if _, ok := r.nodes[0].Get(5); ok {
		t.Fatal("stale-epoch write applied")
	}
}

func TestStaleChainConfigIgnored(t *testing.T) {
	r := newRig(t, 1, 3, defCfg(), netem.LinkProfile{Latency: 10_000})
	cur := r.nodes[0].Chain()
	r.nodes[0].SetChain(wire.ChainConfig{Epoch: 0, Members: []uint16{9}})
	if got := r.nodes[0].Chain(); got.Epoch != cur.Epoch || len(got.Members) != len(cur.Members) {
		t.Fatal("stale config applied")
	}
}

func TestHandleRejectsOtherRegisters(t *testing.T) {
	r := newRig(t, 1, 2, defCfg(), netem.LinkProfile{Latency: 10_000})
	msgs := []wire.Msg{
		&wire.Write{Reg: 99},
		&wire.WriteAck{Reg: 99},
		&wire.ReadFwd{Reg: 99},
		&wire.ReadReply{Reg: 99},
		&wire.Heartbeat{},
	}
	for _, m := range msgs {
		if r.nodes[0].Handle(2, m) {
			t.Errorf("%T for other register handled", m)
		}
	}
}

func TestFailoverMidChain(t *testing.T) {
	// §6.3(a): mid-chain failure partitions the chain; after the controller
	// installs a shortened chain, retried writes commit.
	cfg := defCfg()
	cfg.RetryTimeout = 300 * time.Microsecond
	r := newRig(t, 1, 3, cfg, netem.LinkProfile{Latency: 10_000})
	r.nodes[0].Write(1, val("pre"), nil)
	r.eng.Run()

	r.sws[1].Fail()
	committed := false
	r.nodes[0].Write(2, val("during"), func(ok bool) { committed = ok })
	// Let a few retries fail against the broken chain.
	r.eng.RunFor(1 * time.Millisecond)
	if committed {
		t.Fatal("write committed through a broken chain")
	}
	// Controller reconfigures: chain = {1, 3}.
	r.installChain([]uint16{1, 3}, 0)
	r.eng.Run()
	if !committed {
		t.Fatal("write did not commit after failover")
	}
	if v, ok := r.nodes[2].Get(2); !ok || string(v) != "during" {
		t.Fatalf("tail replica = %q %v", v, ok)
	}
}

func TestTailFailureFailover(t *testing.T) {
	cfg := defCfg()
	cfg.RetryTimeout = 300 * time.Microsecond
	r := newRig(t, 2, 3, cfg, netem.LinkProfile{Latency: 10_000})
	r.sws[2].Fail()
	committed := false
	r.nodes[0].Write(3, val("x"), func(ok bool) { committed = ok })
	r.eng.RunFor(1 * time.Millisecond)
	r.installChain([]uint16{1, 2}, 0)
	r.eng.Run()
	if !committed {
		t.Fatal("no commit after tail failover")
	}
	// New tail (node 1) serves forwarded reads now.
	if !r.nodes[1].IsTail() {
		t.Fatal("node 1 should be tail")
	}
}

func TestRecoveryJoinFullFlow(t *testing.T) {
	// §6.3(b): add a fresh switch, snapshot-transfer state, promote to tail.
	cfg := defCfg()
	cfg.RetryTimeout = 300 * time.Microsecond
	r := newRig(t, 3, 4, cfg, netem.LinkProfile{Latency: 10_000})
	// Start with chain {1,2,3}; switch 4 is idle.
	r.installChain([]uint16{1, 2, 3}, 0)
	const keys = 200
	for i := 0; i < keys; i++ {
		r.nodes[0].Write(uint64(i), u64val(uint64(i*7)), nil)
	}
	r.eng.Run()

	// Begin join of switch 4: config with Joining=4, then snapshot from 1.
	r.nodes[3].BeginJoin()
	r.installChain([]uint16{1, 2, 3}, 4)
	doneAt := sim.Time(0)
	r.nodes[0].StartSnapshotTransfer(4, func() { doneAt = r.eng.Now() })

	// Live writes continue during the transfer.
	for i := 0; i < 50; i++ {
		r.nodes[1].Write(uint64(i), u64val(uint64(i*1000)), nil)
	}
	r.eng.Run()
	if doneAt == 0 {
		t.Fatal("snapshot transfer never completed")
	}
	if r.nodes[0].SnapshotOutstanding() != 0 {
		t.Fatal("outstanding snapshot writes remain")
	}

	// Promote: chain {1,2,3,4}.
	r.installChain([]uint16{1, 2, 3, 4}, 0)
	if r.nodes[3].Joining() {
		t.Fatal("joining mode not cleared on promotion")
	}
	r.eng.Run()

	// Node 4 must hold the latest value for every key: live-write values for
	// keys 0..49, snapshot values for the rest.
	for i := 0; i < keys; i++ {
		v, ok := r.nodes[3].Get(uint64(i))
		if !ok {
			t.Fatalf("key %d missing on joined switch", i)
		}
		want := uint64(i * 7)
		if i < 50 {
			want = uint64(i * 1000)
		}
		if binary.BigEndian.Uint64(v) != want {
			t.Fatalf("key %d = %d, want %d (snapshot overwrote live write?)",
				i, binary.BigEndian.Uint64(v), want)
		}
	}
	// And now acts as tail.
	if !r.nodes[3].IsTail() {
		t.Fatal("promoted switch is not tail")
	}
}

func TestSnapshotTransferLossyLink(t *testing.T) {
	cfg := defCfg()
	cfg.RetryTimeout = 200 * time.Microsecond
	r := newRig(t, 5, 4, cfg, netem.LinkProfile{Latency: 10_000})
	r.installChain([]uint16{1, 2, 3}, 0)
	for i := 0; i < 100; i++ {
		r.nodes[0].Write(uint64(i), u64val(uint64(i)), nil)
	}
	r.eng.Run()
	// Lossy donor->joining link: retries must still complete the transfer.
	r.net.SetOneWayLink(1, 4, netem.LinkProfile{Latency: 10_000, LossRate: 0.5})
	r.nodes[3].BeginJoin()
	r.installChain([]uint16{1, 2, 3}, 4)
	done := false
	r.nodes[0].StartSnapshotTransfer(4, func() { done = true })
	r.eng.Run()
	if !done {
		t.Fatal("transfer did not survive loss")
	}
	for i := 0; i < 100; i++ {
		if _, ok := r.nodes[3].Get(uint64(i)); !ok {
			t.Fatalf("key %d missing after lossy transfer", i)
		}
	}
}

func TestEmptySnapshotCompletesImmediately(t *testing.T) {
	r := newRig(t, 1, 2, defCfg(), netem.LinkProfile{Latency: 10_000})
	done := false
	r.nodes[0].StartSnapshotTransfer(2, func() { done = true })
	r.eng.Run()
	if !done {
		t.Fatal("empty snapshot did not complete")
	}
}

func TestControlPlaneBackingSlower(t *testing.T) {
	// Table-backed registers process chain hops through each control plane:
	// commit latency must exceed the data-plane-backed case substantially.
	mkRig := func(b Backing) sim.Duration {
		cfg := defCfg()
		cfg.Backing = b
		r := newRig(t, 1, 3, cfg, netem.LinkProfile{Latency: 10_000})
		var commitAt sim.Time
		r.nodes[0].Write(1, val("x"), func(ok bool) { commitAt = r.eng.Now() })
		r.eng.Run()
		return sim.Duration(commitAt)
	}
	dp := mkRig(DataPlane)
	cp := mkRig(ControlPlane)
	if cp < dp+100*time.Microsecond {
		t.Fatalf("control-plane backing (%v) not sufficiently slower than data-plane (%v)", cp, dp)
	}
}

func TestWriteBeforeChainInstalledRetriesThenCommits(t *testing.T) {
	cfg := defCfg()
	cfg.RetryTimeout = 200 * time.Microsecond
	eng := sim.NewEngine(1)
	nw := netem.New(eng, netem.LinkProfile{Latency: 10_000})
	r := &rig{eng: eng, net: nw}
	for i := 0; i < 3; i++ {
		sw := pisa.New(eng, nw, pisa.Config{Addr: netem.Addr(i + 1)})
		node, _ := NewNode(sw, cfg)
		sw.SetMsgHandler(func(s *pisa.Switch, from netem.Addr, msg wire.Msg) { node.Handle(from, msg) })
		r.sws = append(r.sws, sw)
		r.nodes = append(r.nodes, node)
	}
	committed := false
	r.nodes[1].Write(1, val("early"), func(ok bool) { committed = ok })
	eng.RunFor(500 * time.Microsecond)
	if committed {
		t.Fatal("committed without a chain")
	}
	r.installChain([]uint16{1, 2, 3}, 0)
	eng.Run()
	if !committed {
		t.Fatal("write never committed after chain install")
	}
}

func TestInvalidConfig(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := netem.New(eng, netem.LinkProfile{})
	sw := pisa.New(eng, nw, pisa.Config{Addr: 1})
	if _, err := NewNode(sw, Config{Reg: 1, Capacity: 0, ValueWidth: 8}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewNode(sw, Config{Reg: 1, Capacity: 10, ValueWidth: 0}); err == nil {
		t.Error("zero value width accepted")
	}
	// Exceeding switch SRAM fails cleanly.
	small := pisa.New(eng, nw, pisa.Config{Addr: 2, MemoryBytes: 100})
	if _, err := NewNode(small, defCfg()); err == nil {
		t.Error("over-budget register accepted")
	}
}

func TestModeString(t *testing.T) {
	if SRO.String() != "SRO" || ERO.String() != "ERO" {
		t.Fatal("mode strings")
	}
}

func TestReplicaConvergencePropertyUnderLoss(t *testing.T) {
	// Property: after quiescence, every chain member holds identical state
	// for every key, regardless of loss on writer->head and ack paths and
	// random interleavings. (Chain hops stay lossless: see the package
	// comment for the documented caveat, measured by experiment E15.)
	for seed := int64(1); seed <= 8; seed++ {
		cfg := defCfg()
		cfg.RetryTimeout = 200 * time.Microsecond
		r := newRig(t, seed, 4, cfg, netem.LinkProfile{Latency: 10_000, Jitter: 10_000})
		// Lossy writer->head and tail->writer paths (retries cover them).
		r.net.SetOneWayLink(2, 1, netem.LinkProfile{Latency: 10_000, LossRate: 0.4})
		r.net.SetOneWayLink(4, 2, netem.LinkProfile{Latency: 10_000, LossRate: 0.4})
		rng := r.eng.Rand()
		for op := 0; op < 120; op++ {
			w := rng.Intn(4)
			key := uint64(rng.Intn(24))
			r.nodes[w].Write(key, []byte(fmt.Sprintf("s%d-o%d", seed, op)), nil)
			r.eng.RunFor(sim.Duration(rng.Int63n(int64(100 * time.Microsecond))))
		}
		r.eng.Run() // quiesce: all retries resolve
		for key := uint64(0); key < 24; key++ {
			want, okWant := r.nodes[0].Get(key)
			for i := 1; i < 4; i++ {
				got, ok := r.nodes[i].Get(key)
				if ok != okWant || string(got) != string(want) {
					t.Fatalf("seed %d key %d: replica %d = %q(%v), replica 0 = %q(%v)",
						seed, key, i, got, ok, want, okWant)
				}
			}
		}
	}
}
