// Package ctrlplane implements the baseline SwiShmem argues against (§3.3):
// replicating data-plane state through the switch control plane. Writes are
// applied locally at line rate, but their replication to peers is pumped
// through the control-plane co-processor, whose service rate is orders of
// magnitude below the data plane. Under write-intensive load the replication
// queue grows and replicas lag far behind — the "significant gaps between
// replicas" the paper predicts, which experiment E12 measures against EWO's
// data-plane replication.
//
// The state model matches EWO's G-counter (per-switch slots, max-merge) so
// the two mechanisms are directly comparable on the same workload.
package ctrlplane

import (
	"fmt"

	"swishmem/internal/netem"
	"swishmem/internal/pisa"
	"swishmem/internal/sim"
	"swishmem/internal/stats"
	"swishmem/internal/timesync"
	"swishmem/internal/wire"
)

// Config describes one control-plane-replicated counter register.
type Config struct {
	// Reg is the register identifier.
	Reg uint16
	// Capacity is the number of keys (SRAM accounting).
	Capacity int
	// MaxGroup bounds replica group size (slot vector reservation).
	MaxGroup int
}

func (c Config) withDefaults() Config {
	if c.MaxGroup == 0 {
		c.MaxGroup = 8
	}
	return c
}

// Stats counts baseline protocol events.
type Stats struct {
	Writes       stats.Counter
	Reads        stats.Counter
	UpdatesSent  stats.Counter // control-plane replication messages emitted
	UpdatesRecv  stats.Counter
	QueueHighWat stats.Gauge // max observed replication backlog
}

// Node is the per-switch baseline instance.
type Node struct {
	sw  *pisa.Switch
	cfg Config

	epoch uint32
	group []netem.Addr

	inc map[uint64]map[uint16]uint64
	mem *pisa.RegisterArray

	queue   []wire.EWOEntry // replication backlog (control-plane DRAM)
	pumping bool

	Stats Stats
}

// NewNode allocates the baseline register on sw.
func NewNode(sw *pisa.Switch, cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("ctrlplane: register %d needs positive capacity", cfg.Reg)
	}
	mem, err := sw.NewRegisterArray(fmt.Sprintf("cp-ctr%d", cfg.Reg), cfg.Capacity*cfg.MaxGroup, 16)
	if err != nil {
		return nil, err
	}
	return &Node{sw: sw, cfg: cfg, mem: mem, inc: make(map[uint64]map[uint16]uint64)}, nil
}

// Switch returns the owning switch.
func (n *Node) Switch() *pisa.Switch { return n.sw }

// SetGroup installs the replica group.
func (n *Node) SetGroup(gc wire.GroupConfig) error {
	if gc.Epoch < n.epoch {
		return nil
	}
	if len(gc.Members) > n.cfg.MaxGroup {
		return fmt.Errorf("ctrlplane: group of %d exceeds MaxGroup %d", len(gc.Members), n.cfg.MaxGroup)
	}
	n.epoch = gc.Epoch
	n.group = n.group[:0]
	for _, m := range gc.Members {
		n.group = append(n.group, netem.Addr(m))
	}
	return nil
}

func slot(m map[uint64]map[uint16]uint64, key uint64) map[uint16]uint64 {
	s, ok := m[key]
	if !ok {
		s = make(map[uint16]uint64)
		m[key] = s
	}
	return s
}

// Add increments the counter locally (data plane) and queues the update for
// control-plane replication.
func (n *Node) Add(key uint64, delta uint64) {
	n.Stats.Writes.Inc()
	self := uint16(n.sw.Addr())
	s := slot(n.inc, key)
	s[self] += delta
	n.queue = append(n.queue, wire.EWOEntry{
		Key:   key,
		Stamp: timesync.Stamp{Time: sim.Time(s[self]), Node: timesync.NodeID(self)},
	})
	if float64(len(n.queue)) > n.Stats.QueueHighWat.Value() {
		n.Stats.QueueHighWat.Set(float64(len(n.queue)))
	}
	n.pump()
}

// pump drains the replication queue at control-plane speed: one update per
// co-processor slot.
func (n *Node) pump() {
	if n.pumping {
		return
	}
	n.pumping = true
	n.sw.CtrlDo(n.pumpOne)
}

func (n *Node) pumpOne() {
	if len(n.queue) == 0 {
		n.pumping = false
		return
	}
	e := n.queue[0]
	n.queue = n.queue[1:]
	u := &wire.EWOUpdate{Reg: n.cfg.Reg, From: uint16(n.sw.Addr()), Entries: []wire.EWOEntry{e}}
	n.sw.Multicast(n.group, u)
	n.Stats.UpdatesSent.Inc()
	n.sw.CtrlDo(n.pumpOne)
}

// Backlog returns the current replication queue length.
func (n *Node) Backlog() int { return len(n.queue) }

// Sum reads the counter from the local replica.
func (n *Node) Sum(key uint64) uint64 {
	n.Stats.Reads.Inc()
	var total uint64
	for _, v := range n.inc[key] {
		total += v
	}
	return total
}

// HandleCtrl processes a replication message on the receiving switch's
// control plane. Wire it via pisa.Switch.SetCtrlMsgHandler (or a router that
// punts to the control plane); the data plane never touches these updates in
// the baseline.
func (n *Node) HandleCtrl(from netem.Addr, msg wire.Msg) bool {
	u, ok := msg.(*wire.EWOUpdate)
	if !ok || u.Reg != n.cfg.Reg {
		return false
	}
	n.Stats.UpdatesRecv.Inc()
	for i := range u.Entries {
		e := &u.Entries[i]
		owner := uint16(e.Stamp.Node)
		v := uint64(e.Stamp.Time)
		s := slot(n.inc, e.Key)
		if v > s[owner] {
			s[owner] = v
		}
	}
	return true
}
