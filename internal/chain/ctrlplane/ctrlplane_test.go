package ctrlplane

import (
	"testing"
	"time"

	"swishmem/internal/netem"
	"swishmem/internal/pisa"
	"swishmem/internal/sim"
	"swishmem/internal/timesync"
	"swishmem/internal/wire"
)

func newRig(t testing.TB, n int, ctrlOps float64) (*sim.Engine, []*Node) {
	t.Helper()
	eng := sim.NewEngine(1)
	nw := netem.New(eng, netem.LinkProfile{Latency: 10_000})
	nodes := make([]*Node, n)
	members := make([]uint16, n)
	for i := 0; i < n; i++ {
		sw := pisa.New(eng, nw, pisa.Config{Addr: netem.Addr(i + 1), CtrlOpsPerSec: ctrlOps})
		node, err := NewNode(sw, Config{Reg: 1, Capacity: 1024})
		if err != nil {
			t.Fatal(err)
		}
		sw.SetCtrlMsgHandler(func(from netem.Addr, msg wire.Msg) {
			node.HandleCtrl(from, msg)
		})
		nodes[i] = node
		members[i] = uint16(i + 1)
	}
	gc := wire.GroupConfig{Epoch: 1, Members: members}
	for _, node := range nodes {
		if err := node.SetGroup(gc); err != nil {
			t.Fatal(err)
		}
	}
	return eng, nodes
}

func TestReplicationEventuallyCompletes(t *testing.T) {
	eng, nodes := newRig(t, 3, 100_000)
	nodes[0].Add(1, 5)
	nodes[1].Add(1, 7)
	eng.Run()
	for i, n := range nodes {
		if got := n.Sum(1); got != 12 {
			t.Fatalf("node %d = %d, want 12", i, got)
		}
	}
}

func TestBacklogGrowsUnderWriteIntensity(t *testing.T) {
	// 1000 ctrl ops/s: 500 rapid writes cannot be replicated promptly; the
	// backlog must reach hundreds — the §3.3 scalability failure.
	eng, nodes := newRig(t, 2, 1000)
	for i := 0; i < 500; i++ {
		nodes[0].Add(uint64(i%16), 1)
	}
	if nodes[0].Backlog() < 400 {
		t.Fatalf("backlog = %d, expected large queue", nodes[0].Backlog())
	}
	// Replica lags while the queue drains.
	eng.RunFor(10 * time.Millisecond)
	var replicated uint64
	for k := uint64(0); k < 16; k++ {
		replicated += nodes[1].Sum(k)
	}
	if replicated >= 100 {
		t.Fatalf("replica already has %d/500 after 10ms at 1k ops/s", replicated)
	}
	eng.Run()
	var final uint64
	for k := uint64(0); k < 16; k++ {
		final += nodes[1].Sum(k)
	}
	if final != 500 {
		t.Fatalf("final = %d, want 500", final)
	}
	if nodes[0].Stats.QueueHighWat.Value() < 400 {
		t.Fatal("high watermark not recorded")
	}
}

func TestDuplicateSafeMerge(t *testing.T) {
	eng, nodes := newRig(t, 2, 100_000)
	nodes[0].Add(1, 3)
	eng.Run()
	// Re-deliver the same announcement.
	u := &wire.EWOUpdate{Reg: 1, From: 1, Entries: []wire.EWOEntry{{
		Key: 1, Stamp: timesync.Stamp{Time: 3, Node: 1}}}}
	nodes[1].HandleCtrl(1, u)
	if nodes[1].Sum(1) != 3 {
		t.Fatalf("duplicate inflated count: %d", nodes[1].Sum(1))
	}
}

func TestHandleCtrlIgnoresForeign(t *testing.T) {
	_, nodes := newRig(t, 2, 100_000)
	if nodes[0].HandleCtrl(2, &wire.EWOUpdate{Reg: 99}) {
		t.Fatal("foreign register consumed")
	}
	if nodes[0].HandleCtrl(2, &wire.Heartbeat{}) {
		t.Fatal("heartbeat consumed")
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := netem.New(eng, netem.LinkProfile{})
	sw := pisa.New(eng, nw, pisa.Config{Addr: 1})
	if _, err := NewNode(sw, Config{Reg: 1, Capacity: 0}); err == nil {
		t.Error("zero capacity accepted")
	}
	n, err := NewNode(sw, Config{Reg: 2, Capacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	big := make([]uint16, 99)
	if err := n.SetGroup(wire.GroupConfig{Epoch: 1, Members: big}); err == nil {
		t.Error("oversized group accepted")
	}
}
