package chain

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"swishmem/internal/lincheck"
	"swishmem/internal/netem"
	"swishmem/internal/sim"
)

// TestDebugHistory is a development aid: reproduce a failing SRO history and
// print it sorted by start time.
func TestDebugHistory(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("debug helper; run with -v -run TestDebugHistory")
	}
	r := newRig(t, 1, 3, defCfg(), netem.LinkProfile{Latency: 20_000, Jitter: 30_000})
	rng := r.eng.Rand()
	type rec struct {
		op   lincheck.Op
		key  uint64
		node int
	}
	var recs []rec
	const keys = 3
	const opsPerKey = 18
	opCount := make(map[uint64]int)
	var issue func()
	issue = func() {
		var key uint64
		found := false
		for try := 0; try < 10; try++ {
			key = uint64(rng.Intn(keys))
			if opCount[key] < opsPerKey {
				found = true
				break
			}
		}
		if !found {
			return
		}
		opCount[key]++
		ni := rng.Intn(len(r.nodes))
		node := r.nodes[ni]
		start := int64(r.eng.Now())
		k := key
		if rng.Intn(2) == 0 {
			v := fmt.Sprintf("v%x", rng.Int31())
			node.Write(k, []byte(v), func(ok bool) {
				recs = append(recs, rec{lincheck.Op{Start: start, End: int64(r.eng.Now()), Write: true, Value: v}, k, ni})
			})
		} else {
			node.Read(k, func(val []byte, ok bool) {
				recs = append(recs, rec{lincheck.Op{Start: start, End: int64(r.eng.Now()), Write: false, Value: string(val)}, k, ni})
			})
		}
		r.eng.After(sim.Duration(rng.Int63n(int64(300*time.Microsecond))), issue)
	}
	for i := 0; i < 4; i++ {
		r.eng.After(sim.Duration(i+1), issue)
	}
	r.eng.Run()
	sort.Slice(recs, func(i, j int) bool { return recs[i].op.Start < recs[j].op.Start })
	perKey := map[uint64][]lincheck.Op{}
	for _, rc := range recs {
		perKey[rc.key] = append(perKey[rc.key], rc.op)
	}
	for key, ops := range perKey {
		ok := lincheck.Check(ops)
		t.Logf("key %d linearizable: %v", key, ok)
		if !ok {
			for _, rc := range recs {
				if rc.key == key {
					t.Logf("  node=%d %v", rc.node, rc.op)
				}
			}
		}
	}
}
