package chain

import (
	"fmt"
	"testing"
	"time"

	"swishmem/internal/lincheck"
	"swishmem/internal/netem"
	"swishmem/internal/sim"
)

// TestSROLinearizable drives randomized concurrent reads and writes from
// every switch in the chain over a jittery (but lossless on chain hops)
// fabric and checks every per-key history with the Wing-Gong checker. This
// is the §6.1 claim: "SRO provides per-register linearizability".
func TestSROLinearizable(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := newRig(t, seed, 3, defCfg(), netem.LinkProfile{Latency: 20_000, Jitter: 30_000})
			rec := &lincheck.Recorder{}
			rng := r.eng.Rand()

			const keys = 3
			const opsPerKey = 18 // keep per-key histories well under 64
			opCount := make(map[uint64]int)

			var issue func()
			issue = func() {
				// Pick a key that still has budget.
				var key uint64
				found := false
				for try := 0; try < 10; try++ {
					key = uint64(rng.Intn(keys))
					if opCount[key] < opsPerKey {
						found = true
						break
					}
				}
				if !found {
					return
				}
				opCount[key]++
				node := r.nodes[rng.Intn(len(r.nodes))]
				start := int64(r.eng.Now())
				k := key
				if rng.Intn(2) == 0 {
					v := fmt.Sprintf("v%x", rng.Int31())
					node.Write(k, []byte(v), func(ok bool) {
						if !ok {
							t.Errorf("write failed on lossless fabric")
							return
						}
						rec.Add(k, lincheck.Op{Start: start, End: int64(r.eng.Now()), Write: true, Value: v})
					})
				} else {
					node.Read(k, func(val []byte, ok bool) {
						rec.Add(k, lincheck.Op{Start: start, End: int64(r.eng.Now()), Write: false, Value: string(val)})
					})
				}
				// Schedule the next op with random spacing, sometimes dense
				// enough to overlap in-flight writes.
				r.eng.After(sim.Duration(rng.Int63n(int64(300*time.Microsecond))), issue)
			}
			// Several concurrent op streams.
			for i := 0; i < 4; i++ {
				r.eng.After(sim.Duration(i+1), issue)
			}
			r.eng.Run()

			if rec.Len() < keys*opsPerKey/2 {
				t.Fatalf("only %d ops recorded", rec.Len())
			}
			if badKey, ok := rec.CheckAll(); !ok {
				t.Fatalf("history for key %d is not linearizable", badKey)
			}
		})
	}
}

// TestEROStalenessObservable documents the SRO/ERO gap: under the same
// concurrent workload, ERO histories may be non-linearizable (stale local
// reads during write propagation). We assert only that ERO eventually
// converges — and that at least one seed shows a linearizability violation,
// demonstrating the consistency/latency trade §5 describes.
func TestEROStalenessObservable(t *testing.T) {
	violations := 0
	for seed := int64(1); seed <= 8; seed++ {
		cfg := defCfg()
		cfg.Mode = ERO
		r := newRig(t, seed, 3, cfg, netem.LinkProfile{Latency: 500_000, Jitter: 100_000})
		rec := &lincheck.Recorder{}
		rng := r.eng.Rand()
		n := 0
		var issue func()
		issue = func() {
			if n >= 22 {
				return
			}
			n++
			node := r.nodes[rng.Intn(len(r.nodes))]
			start := int64(r.eng.Now())
			if rng.Intn(2) == 0 {
				v := fmt.Sprintf("v%x", rng.Int31())
				node.Write(1, []byte(v), func(ok bool) {
					if ok {
						rec.Add(1, lincheck.Op{Start: start, End: int64(r.eng.Now()), Write: true, Value: v})
					}
				})
			} else {
				node.Read(1, func(val []byte, ok bool) {
					rec.Add(1, lincheck.Op{Start: start, End: int64(r.eng.Now()), Write: false, Value: string(val)})
				})
			}
			r.eng.After(sim.Duration(rng.Int63n(int64(200*time.Microsecond))), issue)
		}
		for i := 0; i < 3; i++ {
			r.eng.After(sim.Duration(i+1), issue)
		}
		r.eng.Run()
		if _, ok := rec.CheckAll(); !ok {
			violations++
		}
		// Convergence: all replicas agree at quiescence.
		want, _ := r.nodes[0].Get(1)
		for i, nd := range r.nodes {
			if got, _ := nd.Get(1); string(got) != string(want) {
				t.Fatalf("seed %d: replica %d diverged at quiescence", seed, i)
			}
		}
	}
	if violations == 0 {
		t.Log("note: no ERO staleness observed in 20 seeds (expected some); " +
			"the trade-off demonstration is probabilistic")
	}
}
