package chain

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"swishmem/internal/netem"
	"swishmem/internal/sim"
	"swishmem/internal/wire"
)

func eachBackend(t *testing.T, fn func(t *testing.T, mode Replication)) {
	for _, mode := range []Replication{ChainReplication, RetransmitReplication} {
		t.Run(mode.String(), func(t *testing.T) { fn(t, mode) })
	}
}

// TestDuplicateDeliveryAppliesOnce pins the duplicate-delivery hardening: the
// fabric delivering every frame twice (DupRate 1) must neither double-apply a
// write nor double-fire its completion. The head assigns sequence numbers in
// place on the frame object, so a duplicate of the same object arrives
// already-sequenced and is dropped as stale at every position.
func TestDuplicateDeliveryAppliesOnce(t *testing.T) {
	eachBackend(t, func(t *testing.T, mode Replication) {
		cfg := defCfg()
		cfg.Replication = mode
		cfg.RetryTimeout = 5 * time.Millisecond // out of the dup window
		r := newBackendRig(t, 1, 3, cfg, netem.LinkProfile{Latency: 10_000, DupRate: 1})
		const writes = 20
		doneCount := make([]int, writes)
		for i := 0; i < writes; i++ {
			i := i
			r.nodes[1].Write(uint64(i), u64val(uint64(i*3)), func(ok bool) {
				if !ok {
					t.Errorf("write %d failed", i)
				}
				doneCount[i]++
			})
		}
		r.run()
		for i, c := range doneCount {
			if c != 1 {
				t.Fatalf("write %d: done fired %d times", i, c)
			}
		}
		for i := 0; i < 3; i++ {
			n := r.base(i)
			// Exactly one application per write per node: the duplicate of
			// every frame must be stale-dropped, not re-applied.
			if got := n.Stats.Applied.Value(); got != writes {
				t.Fatalf("node %d applied %d times, want %d", i, got, writes)
			}
			if n.Stats.StaleDropped.Value() == 0 {
				t.Fatalf("node %d dropped no duplicates at DupRate 1", i)
			}
		}
		for i := 0; i < writes; i++ {
			want, _ := r.nodes[0].Get(uint64(i))
			for j := 1; j < 3; j++ {
				if got, _ := r.nodes[j].Get(uint64(i)); string(got) != string(want) {
					t.Fatalf("key %d: replica %d diverged", i, j)
				}
			}
		}
	})
}

// TestStaleDuplicateDoesNotClearPendingOrReapply is the precise E-series
// hazard from the issue: a stale duplicate (seq <= applied) arriving at a
// member whose group has the pending bit set (a newer write in flight) must
// not apply, must not clear the pending bit, and must not complete anything
// at the writer.
func TestStaleDuplicateDoesNotClearPendingOrReapply(t *testing.T) {
	eachBackend(t, func(t *testing.T, mode Replication) {
		cfg := defCfg()
		cfg.Replication = mode
		cfg.Groups = 1                                                            // shared group: the dup's group is pending
		r := newBackendRig(t, 1, 3, cfg, netem.LinkProfile{Latency: 1000 * 1000}) // 1ms hops
		r.nodes[0].Write(5, val("committed"), nil)
		r.run()

		// Second write in flight: head applied (pending set), tail has not.
		r.nodes[0].Write(5, val("inflight"), nil)
		r.runFor(1200 * time.Microsecond)
		head := r.base(0)
		if !head.isPending(0) {
			t.Skip("timing: head has not applied the in-flight write yet")
		}
		appliedBefore := head.Stats.Applied.Value()

		// Replay the committed write's frame at the head: seq 1 <= applied 2,
		// pending set — the stale-duplicate shape.
		dup := &wire.Write{Reg: cfg.Reg, Key: 5, Seq: 1, WriteID: 1,
			Writer: uint16(head.sw.Addr()), Epoch: head.chain.Epoch, Value: val("committed")}
		r.nodes[0].Handle(head.sw.Addr(), dup)
		if got := head.Stats.Applied.Value(); got != appliedBefore {
			t.Fatal("stale duplicate was re-applied")
		}
		if !head.isPending(0) {
			t.Fatal("stale duplicate cleared the pending bit")
		}
		if v, _ := head.Get(5); string(v) != "inflight" {
			t.Fatalf("stale duplicate overwrote the newer value: %q", v)
		}
		r.run()
	})
}

// TestFinishDoesNotPoolRetriedRecords pins the outstanding-pool aliasing fix:
// every attempt's wire frame aliases the record's value backing, so a record
// that was ever retried may have an earlier attempt still in flight and must
// not be recycled on completion. An unretried record is pooled.
func TestFinishDoesNotPoolRetriedRecords(t *testing.T) {
	cfg := defCfg()
	cfg.RetryTimeout = 300 * time.Microsecond
	r := newRig(t, 1, 3, cfg, netem.LinkProfile{Latency: 10_000})
	r.nodes[1].Write(1, val("clean"), nil)
	r.eng.Run()
	if got := len(r.nodes[1].ofree); got != 1 {
		t.Fatalf("unretried record not pooled: free list = %d", got)
	}

	// Force one retry: drop the first attempt on the writer->head link, then
	// heal the link so the retry commits.
	r.net.SetOneWayLink(2, 1, netem.LinkProfile{Latency: 10_000, LossRate: 1})
	committed := false
	r.nodes[1].Write(2, val("retried"), func(ok bool) { committed = ok })
	r.eng.RunFor(400 * time.Microsecond)
	r.net.SetOneWayLink(2, 1, netem.LinkProfile{Latency: 10_000})
	r.eng.Run()
	if !committed {
		t.Fatal("retried write did not commit")
	}
	if r.nodes[1].Stats.Retries.Value() == 0 {
		t.Fatal("fault shape produced no retry")
	}
	// The second write took the pooled record (free list went to 0); having
	// been retried, it must not come back.
	if got := len(r.nodes[1].ofree); got != 0 {
		t.Fatalf("retried record returned to the pool: free list = %d", got)
	}
}

// TestOutstandingRetryReconfigRace drives the writer's retry machinery
// through the fault shapes that historically race completion against
// recycling: heavy loss on each protocol leg, duplication+reordering, and
// epoch churn crossing in-flight retries. Every write must complete exactly
// once, the pending map must drain, and no committed value may bleed across
// records (values embed their key; a recycled backing read by a stale
// in-flight frame would break the tag).
func TestOutstandingRetryReconfigRace(t *testing.T) {
	cases := []struct {
		name     string
		fault    func(r *rig)
		reconfig bool
	}{
		{"head-loss", func(r *rig) {
			r.net.SetOneWayLink(2, 1, netem.LinkProfile{Latency: 10_000, LossRate: 0.7})
		}, false},
		{"ack-loss", func(r *rig) {
			r.net.SetOneWayLink(3, 2, netem.LinkProfile{Latency: 10_000, LossRate: 0.7})
		}, false},
		{"dup-reorder", func(r *rig) {
			p := netem.LinkProfile{Latency: 10_000, DupRate: 0.5, ReorderRate: 0.5}
			r.net.SetOneWayLink(2, 1, p)
			r.net.SetOneWayLink(1, 2, p)
		}, false},
		{"reconfig-mid-retry", func(r *rig) {
			r.net.SetOneWayLink(2, 1, netem.LinkProfile{Latency: 10_000, LossRate: 0.5})
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := defCfg()
			cfg.RetryTimeout = 150 * time.Microsecond
			r := newRig(t, 7, 3, cfg, netem.LinkProfile{Latency: 10_000})
			tc.fault(r)
			const writes = 40
			doneCount := make([]int, writes)
			for i := 0; i < writes; i++ {
				i := i
				v := make([]byte, 16)
				binary.BigEndian.PutUint64(v, uint64(i%8))   // key tag
				binary.BigEndian.PutUint64(v[8:], uint64(i)) // op tag
				r.nodes[1].Write(uint64(i%8), v, func(ok bool) { doneCount[i]++ })
				if tc.reconfig && i%5 == 4 {
					// Epoch bump with identical membership: in-flight retries
					// cross the configuration change.
					r.installChain(r.allAddrs(), 0)
				}
				r.eng.RunFor(30 * time.Microsecond)
			}
			r.eng.Run()
			for i, c := range doneCount {
				if c != 1 {
					t.Fatalf("write %d: done fired %d times", i, c)
				}
			}
			if got := r.nodes[1].OutstandingWrites(); got != 0 {
				t.Fatalf("%d writes still outstanding after quiesce", got)
			}
			// No cross-record corruption: every stored value's key tag must
			// match the key it is stored under, on every replica.
			for key := uint64(0); key < 8; key++ {
				for j, n := range r.nodes {
					v, ok := n.Get(key)
					if !ok {
						continue // every write to this key may have failed
					}
					if len(v) != 16 || binary.BigEndian.Uint64(v) != key {
						t.Fatalf("replica %d key %d holds foreign bytes %x", j, key, v)
					}
				}
			}
		})
	}
}

// --- tail-forwarded reads racing reconfiguration (readpath_test.go covers
// --- only the steady state) ---

// TestForwardedReadCompletesAcrossReconfig: a read forwarded to the tail,
// with the reply still in flight when a new chain epoch lands at the origin,
// must still complete its continuation exactly once and drain the origin's
// outstanding-read table.
func TestForwardedReadCompletesAcrossReconfig(t *testing.T) {
	cfg := defCfg()
	cfg.AlwaysTailReads = true
	r := newRig(t, 1, 3, cfg, netem.LinkProfile{Latency: 1000 * 1000}) // 1ms hops
	r.nodes[0].Write(7, val("v"), nil)
	r.eng.Run()
	got := 0
	r.nodes[0].Read(7, func(v []byte, ok bool) {
		got++
		if !ok || string(v) != "v" {
			t.Errorf("forwarded read = %q %v", v, ok)
		}
	})
	if r.nodes[0].OutstandingReads() != 1 {
		t.Fatal("read not registered as outstanding")
	}
	// Reconfigure while the reply is in flight: drop the old tail.
	r.installChain([]uint16{1, 2}, 0)
	r.eng.Run()
	if got != 1 {
		t.Fatalf("read continuation fired %d times", got)
	}
	if r.nodes[0].OutstandingReads() != 0 {
		t.Fatal("outstanding read leaked across reconfiguration")
	}
}

// TestForwardedReadToCrashedTailThenReconfig pins the current liveness
// contract: a read forwarded to a tail that dies before serving it is lost
// (reads carry no retry machinery — the NF re-issues), and reads issued
// after the failover use the new tail and complete normally.
func TestForwardedReadToCrashedTailThenReconfig(t *testing.T) {
	cfg := defCfg()
	cfg.AlwaysTailReads = true
	r := newRig(t, 1, 3, cfg, netem.LinkProfile{Latency: 1000 * 1000})
	r.nodes[0].Write(7, val("v"), nil)
	r.eng.Run()
	r.sws[2].Fail()
	fired := false
	r.nodes[0].Read(7, func([]byte, bool) { fired = true })
	r.eng.Run()
	if fired {
		t.Fatal("read against a dead tail completed")
	}
	if r.nodes[0].OutstandingReads() != 1 {
		t.Fatal("lost read not accounted as outstanding")
	}
	// Failover; a fresh read must be served by the new tail (node 1).
	r.installChain([]uint16{1, 2}, 0)
	got := ""
	r.nodes[0].Read(7, func(v []byte, ok bool) { got = string(v) })
	r.eng.Run()
	if got != "v" {
		t.Fatalf("post-failover read = %q", got)
	}
	if r.nodes[1].Stats.TailReads.Value() == 0 {
		t.Fatal("new tail served no reads")
	}
}

// TestDuplicateReadReplyIgnored: the fabric may duplicate a ReadReply; the
// second delivery finds its ReqID already completed and must be a no-op.
func TestDuplicateReadReplyIgnored(t *testing.T) {
	cfg := defCfg()
	cfg.AlwaysTailReads = true
	r := newRig(t, 1, 2, cfg, netem.LinkProfile{Latency: 10_000})
	r.nodes[0].Write(3, val("x"), nil)
	r.eng.Run()
	fired := 0
	r.nodes[0].Read(3, func([]byte, bool) { fired++ })
	r.eng.Run()
	if fired != 1 {
		t.Fatalf("read fired %d times", fired)
	}
	// Replay the reply (ReqID 1 was the first forwarded read).
	r.nodes[0].Handle(2, &wire.ReadReply{Reg: cfg.Reg, Key: 3, ReqID: 1, Value: val("x")})
	if fired != 1 {
		t.Fatalf("duplicate reply re-fired the continuation: %d", fired)
	}
}

// --- backend-generic rig ---

// backendRig runs n switches on whichever replication backend cfg selects,
// so the race regressions above cover both.
type backendRig struct {
	eng interface {
		Run() uint64
		RunFor(d sim.Duration) uint64
	}
	nodes []Replicator
	epoch uint32
}

func newBackendRig(t testing.TB, seed int64, n int, cfg Config, profile netem.LinkProfile) *backendRig {
	t.Helper()
	if cfg.Replication == ChainReplication {
		r := newRig(t, seed, n, cfg, profile)
		b := &backendRig{eng: r.eng}
		for _, nd := range r.nodes {
			b.nodes = append(b.nodes, nd)
		}
		b.epoch = r.epoch
		return b
	}
	r := newRtxRig(t, seed, n, cfg, profile)
	b := &backendRig{eng: r.eng}
	for _, nd := range r.nodes {
		b.nodes = append(b.nodes, nd)
	}
	b.epoch = r.epoch
	return b
}

func (b *backendRig) run()                   { b.eng.Run() }
func (b *backendRig) runFor(d time.Duration) { b.eng.RunFor(d) }
func (b *backendRig) base(i int) *Node {
	switch n := b.nodes[i].(type) {
	case *Node:
		return n
	case *RetransmitNode:
		return n.Node
	}
	panic(fmt.Sprintf("unknown replicator %T", b.nodes[i]))
}
