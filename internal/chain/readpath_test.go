package chain

import (
	"testing"

	"swishmem/internal/netem"
)

func TestAlwaysTailReadsForwardEverything(t *testing.T) {
	cfg := defCfg()
	cfg.AlwaysTailReads = true
	r := newRig(t, 1, 3, cfg, netem.LinkProfile{Latency: 10_000})
	r.nodes[0].Write(1, val("v"), nil)
	r.eng.Run()
	// Clean key, but every non-tail read must still go to the tail.
	got := ""
	r.nodes[0].Read(1, func(v []byte, ok bool) { got = string(v) })
	if got != "" {
		t.Fatal("read served locally in always-tail mode")
	}
	r.eng.Run()
	if got != "v" {
		t.Fatalf("forwarded read = %q", got)
	}
	if r.nodes[0].Stats.ReadsForwarded.Value() != 1 || r.nodes[0].Stats.ReadsLocal.Value() != 0 {
		t.Fatal("read accounting")
	}
	if r.nodes[2].Stats.TailReads.Value() != 1 {
		t.Fatal("tail did not serve")
	}
	// The tail itself still reads locally.
	tailGot := ""
	r.nodes[2].Read(1, func(v []byte, ok bool) { tailGot = string(v) })
	if tailGot != "v" {
		t.Fatal("tail read not local")
	}
}

func TestAlwaysTailReadsStillLinearizableValues(t *testing.T) {
	cfg := defCfg()
	cfg.AlwaysTailReads = true
	r := newRig(t, 2, 3, cfg, netem.LinkProfile{Latency: 10_000})
	r.nodes[1].Write(5, val("committed"), nil)
	r.eng.Run()
	// Reads at every position agree with the tail.
	for i := range r.nodes {
		got := ""
		r.nodes[i].Read(5, func(v []byte, ok bool) { got = string(v) })
		r.eng.Run()
		if got != "committed" {
			t.Fatalf("node %d read %q", i, got)
		}
	}
}
