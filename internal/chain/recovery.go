package chain

import (
	"sort"

	"swishmem/internal/netem"
	"swishmem/internal/wire"
)

// This file implements the §6.3 recovery phase for SRO/ERO chains.
//
// Failover (restoring write availability after a member fails) is purely a
// reconfiguration: the controller installs a new ChainConfig that routes
// around the failed switch; in-flight writes that were lost time out at the
// writer's control plane and are retried against the new configuration.
// Nothing in this file is needed for failover.
//
// Recovery (re-arming full replication) adds a fresh switch at the end of
// the chain: the controller installs a config whose Joining field names the
// new switch, the tail forwards newly committed writes to it, and a donor
// switch's control plane snapshots its replica and replays it as snapshot
// writes "through the normal data plane protocol ... contain[ing] the
// sequence number at the time of the snapshot, to prevent overwriting new
// values with old ones" (§6.3). Because sequence numbers may be shared by a
// group of keys (§7), the seq alone cannot arbitrate per-key freshness at
// the joining switch; the joining switch's control plane therefore also
// tracks, in DRAM, the set of keys that have received live writes since the
// join began, and snapshot writes for those keys are discarded. Once the
// joining switch has acknowledged every snapshot write, the donor reports
// completion and the controller promotes the new switch to tail.

// snapIDBit marks donor snapshot write IDs so they never collide with the
// donor's own NF write IDs.
const snapIDBit = uint64(1) << 63

// snapshotXfer tracks one in-progress snapshot transfer at the donor.
type snapshotXfer struct {
	to          netem.Addr
	outstanding map[uint64]*wire.Write // by WriteID
	onComplete  func()
}

// BeginJoin puts this node in joining mode: it starts recording live writes
// so stale snapshot writes cannot clobber them. The controller calls this on
// the fresh switch before starting the snapshot transfer.
func (n *Node) BeginJoin() {
	n.joinSeen = make(map[uint64]struct{})
}

// Joining reports whether the node is in joining mode.
func (n *Node) Joining() bool { return n.joinSeen != nil }

// FinishJoin leaves joining mode (invoked implicitly when a ChainConfig
// without this switch as Joining arrives, i.e. after promotion).
func (n *Node) FinishJoin() { n.joinSeen = nil }

// StartSnapshotTransfer runs on the donor: its control plane snapshots the
// local replica and replays every entry to the joining switch as snapshot
// writes, retrying unacknowledged entries every RetryTimeout. onComplete
// fires once the joining switch has acknowledged every snapshot write.
//
// The snapshot itself is taken atomically with respect to packet processing
// (a control-plane read between packets); its writes are then delivered
// asynchronously.
func (n *Node) StartSnapshotTransfer(to netem.Addr, onComplete func()) {
	if n.cfg.Proxy {
		// Proxies hold no state to transfer.
		if onComplete != nil {
			n.sw.CtrlDo(onComplete)
		}
		return
	}
	n.sw.CtrlDo(func() {
		xfer := &snapshotXfer{to: to, outstanding: make(map[uint64]*wire.Write), onComplete: onComplete}
		n.snap = xfer
		id := snapIDBit
		n.store.Range(func(key uint64, val []byte) bool {
			g := n.group(key)
			w := &wire.Write{
				Reg:      n.cfg.Reg,
				Key:      key,
				Seq:      n.appliedSeq(g),
				WriteID:  id,
				Writer:   uint16(n.sw.Addr()),
				Epoch:    n.chain.Epoch,
				Snapshot: true,
				Value:    append([]byte(nil), val...),
			}
			xfer.outstanding[id] = w
			id++
			return true
		})
		if len(xfer.outstanding) == 0 {
			n.snap = nil
			if onComplete != nil {
				onComplete()
			}
			return
		}
		n.sendSnapshotBatch()
	})
}

// snapshotChunk is how many snapshot entries the donor's control plane
// reads and emits per co-processor operation. Reading data-plane state from
// the control plane is the §6.3 "control plane support ... for the initial
// data transfer", and it is what makes recovery time scale with state size.
const snapshotChunk = 64

// sendSnapshotBatch (re)sends all unacknowledged snapshot writes, chunked
// at control-plane cost, then arms the retry timer.
func (n *Node) sendSnapshotBatch() {
	xfer := n.snap
	if xfer == nil {
		return
	}
	// Deterministic order: snapshot IDs are sequential.
	ids := make([]uint64, 0, len(xfer.outstanding))
	for id := range xfer.outstanding {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var sendChunk func(start int)
	sendChunk = func(start int) {
		if n.snap != xfer {
			return
		}
		end := start + snapshotChunk
		if end > len(ids) {
			end = len(ids)
		}
		for _, id := range ids[start:end] {
			if w, ok := xfer.outstanding[id]; ok {
				n.sw.Send(xfer.to, w)
			}
		}
		if end < len(ids) {
			n.sw.CtrlDo(func() { sendChunk(end) })
			return
		}
		// Whole pass emitted: arm the retry for whatever stays unacked.
		n.sw.CtrlAfter(n.cfg.RetryTimeout, func() {
			if n.snap != xfer {
				return
			}
			if len(xfer.outstanding) == 0 {
				n.snap = nil
				if xfer.onComplete != nil {
					xfer.onComplete()
				}
				return
			}
			n.sendSnapshotBatch()
		})
	}
	sendChunk(0)
}

// SnapshotOutstanding returns the number of unacknowledged snapshot writes
// at the donor (0 when no transfer is active).
func (n *Node) SnapshotOutstanding() int {
	if n.snap == nil {
		return 0
	}
	return len(n.snap.outstanding)
}

// processSnapshotWrite handles a snapshot write at the joining switch.
func (n *Node) processSnapshotWrite(w *wire.Write) {
	if w.Epoch != n.chain.Epoch {
		return
	}
	// Ack unconditionally: even if discarded, the donor must stop resending.
	ack := &wire.WriteAck{Reg: n.cfg.Reg, Key: w.Key, Seq: w.Seq,
		WriteID: w.WriteID, Writer: w.Writer, Epoch: w.Epoch}
	n.sw.Send(netem.Addr(w.Writer), ack)

	if n.joinSeen != nil {
		if _, live := n.joinSeen[w.Key]; live {
			n.Stats.StaleDropped.Inc()
			return // a live write since join start is fresher than the snapshot
		}
	}
	g := n.group(w.Key)
	if err := n.store.Set(w.Key, w.Value); err != nil {
		n.Stats.StaleDropped.Inc()
		return
	}
	if w.Seq > n.appliedSeq(g) {
		n.setApplied(g, w.Seq, false)
	}
	n.Stats.Applied.Inc()
}

// processSnapshotAck handles a joining switch's acknowledgement at the donor.
func (n *Node) processSnapshotAck(a *wire.WriteAck) {
	if n.snap == nil {
		return
	}
	delete(n.snap.outstanding, a.WriteID)
	if len(n.snap.outstanding) == 0 {
		xfer := n.snap
		n.snap = nil
		if xfer.onComplete != nil {
			xfer.onComplete()
		}
	}
}
