// Replicator abstracts the replication backend behind the strong-register
// API. ROADMAP open item 3: chain replication (the paper's §6.1 protocol,
// writer-retry recovery, monotone apply) is one implementation; the
// retransmit backend (hop-level hold-back/retransmit buffers that close the
// §9 anomaly window E15 measured) is the second. Future backends — e.g. an
// in-switch Paxos per "Paxos Made Switch-y" — are one implementation each.
package chain

import (
	"fmt"

	"swishmem/internal/netem"
	"swishmem/internal/pisa"
	"swishmem/internal/stats"
	"swishmem/internal/wire"
)

// Replication selects the replication backend for a strong register.
type Replication int

// Replication backends.
const (
	// ChainReplication is the paper's §6.1 protocol: monotone apply at each
	// hop, end-to-end recovery by the writer's control-plane retry. Under
	// chain-hop loss with shared sequence groups it admits the bounded
	// non-linearizable anomaly window E15 measures.
	ChainReplication Replication = iota
	// RetransmitReplication closes that window: every hop applies writes in
	// exact sequence order, holding back out-of-order arrivals in a bounded
	// per-group buffer and recovering lost hop-to-hop frames with a NACK to
	// the predecessor, which retransmits from its own bounded buffer of
	// forwarded writes (both buffers charged to data-plane SRAM). The
	// cumulative ack freeing predecessor buffers is the tail's existing
	// WriteAck broadcast.
	RetransmitReplication
)

func (r Replication) String() string {
	if r == RetransmitReplication {
		return "retransmit"
	}
	return "chain"
}

// Replicator is the replication-backend interface: everything the core
// instance, the controller, the cluster facade, and the test oracles need
// from a per-switch strong-register protocol instance. *Node (chain
// backend) and *RetransmitNode implement it.
type Replicator interface {
	// Write submits a write from this switch's NF; done is invoked with
	// committed=true on the tail acknowledgement, false when retries are
	// exhausted.
	Write(key uint64, val []byte, done func(committed bool))
	// Read performs an NF read; fn receives the value (nil, false on miss).
	Read(key uint64, fn func(val []byte, ok bool))
	// Get returns the local replica value without protocol involvement.
	Get(key uint64) ([]byte, bool)
	// Handle routes a protocol message to this node; false if the message is
	// not for this register.
	Handle(from netem.Addr, msg wire.Msg) bool
	// SetChain installs a chain configuration (from the controller).
	SetChain(cc wire.ChainConfig)
	// Chain returns the current configuration.
	Chain() wire.ChainConfig
	// Config returns the node's configuration (with defaults applied).
	Config() Config
	// Switch returns the owning switch.
	Switch() *pisa.Switch
	// MemoryBytes returns the data-plane SRAM this register consumes here.
	MemoryBytes() int
	// Counters exposes the node's protocol counters.
	Counters() *Stats
	// WriteLatency returns the submit-to-commit latency distribution of
	// locally submitted writes.
	WriteLatency() *stats.Histogram
	// OutstandingWrites returns the number of buffered, unacknowledged
	// writes at this writer's control plane.
	OutstandingWrites() int
	// HeldFrames returns the number of out-of-order writes currently parked
	// in hold-back buffers (always 0 for the chain backend).
	HeldFrames() int
	// BeginJoin enters joining mode (§6.3 recovery).
	BeginJoin()
	// StartSnapshotTransfer streams this node's state to a joining switch.
	StartSnapshotTransfer(to netem.Addr, onComplete func())
	// InjectSkipForward plants the acked-but-unreplicated verification bug.
	InjectSkipForward(count int)
	// InjectDisableRetransmit plants a verification-only bug on the
	// retransmit backend: the hold-back/retransmit buffer silently stores
	// nothing, so every NACK is unserviceable. No-op on the chain backend.
	InjectDisableRetransmit()
}

var (
	_ Replicator = (*Node)(nil)
	_ Replicator = (*RetransmitNode)(nil)
)

// New creates the protocol instance for cfg's selected replication backend
// and allocates its SRAM.
func New(sw *pisa.Switch, cfg Config) (Replicator, error) {
	switch cfg.Replication {
	case ChainReplication:
		return NewNode(sw, cfg)
	case RetransmitReplication:
		return NewRetransmitNode(sw, cfg)
	default:
		return nil, fmt.Errorf("chain: register %d: unknown replication backend %d", cfg.Reg, cfg.Replication)
	}
}

// Counters implements Replicator (the Stats field itself keeps its name for
// struct-literal consumers inside the package).
func (n *Node) Counters() *Stats { return &n.Stats }

// HeldFrames implements Replicator: the chain backend never holds back
// frames.
func (n *Node) HeldFrames() int { return 0 }

// InjectDisableRetransmit implements Replicator: no-op — the chain backend
// has no retransmit buffer.
func (n *Node) InjectDisableRetransmit() {}

// OutstandingReads returns the number of forwarded reads awaiting a tail
// reply at this node (for the read-path reconfiguration tests).
func (n *Node) OutstandingReads() int { return len(n.reads) }
