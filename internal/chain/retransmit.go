package chain

import (
	"fmt"
	"sort"

	"swishmem/internal/netem"
	"swishmem/internal/pisa"
	"swishmem/internal/wire"
)

// RetransmitNode is the RetransmitReplication backend: the writer, read, and
// recovery machinery is the chain Node's, but the hop discipline is in-order
// apply with data-plane hold-back/retransmit buffers instead of monotone
// apply (the §9 buffering/retransmission mode the paper leaves open).
//
// Protocol, per sequence group:
//
//   - A member applies a write only when its sequence number is exactly
//     appliedSeq+1. Later arrivals wait in a bounded hold-back buffer; the
//     member NACKs its predecessor for the missing range and re-NACKs on a
//     retry timer while the gap persists.
//   - A member that forwards a write keeps a copy in a bounded per-group
//     retransmit ring and answers NACKs from it. The tail's WriteAck
//     broadcast doubles as the cumulative ack: a commit of sequence S means
//     every member applied everything through S (in-order apply), so ring
//     entries at or below S are freed. A member that repairs a gap also
//     sends an explicit cumulative ChainCursor upstream.
//   - If a NACKed write is no longer buffered (ring overflow), the
//     predecessor answers with a skip ChainCursor and the successor abandons
//     the gap — a counted (Stats.RtxAbandoned) degradation back to monotone
//     apply, which reopens the anomaly window for that gap. With a depth
//     matched to the per-group in-flight window it never fires.
//
// Correctness: the tail committing sequence S in order implies every member
// applied every write through S, so the ack-driven pending-bit clear can
// never expose an uncommitted value — the E15 anomaly cannot occur while no
// gap has been abandoned.
//
// On an epoch change the hold-back buffers are discarded (a new head may
// reassign their sequence numbers) but the retransmit rings are kept: chain
// reconfiguration preserves member order, so the surviving prefix of every
// group's sequence history is consistent across members and old entries
// remain valid answers to new-epoch NACKs.
type RetransmitNode struct {
	*Node
}

// bufWrite is one buffered write copy (hold-back or retransmit ring). Values
// are copied: a frame in flight may alias a writer's reusable buffer.
type bufWrite struct {
	seq     uint64
	key     uint64
	writeID uint64
	writer  uint16
	val     []byte
}

// rtxRing is one group's bounded buffer of forwarded writes, indexed
// seq%depth. Sequences are forwarded in order, so retained entries are the
// contiguous window (freed, hi].
type rtxRing struct {
	hi      uint64
	freed   uint64
	entries []bufWrite
}

// rtxState carries the retransmit backend's hop state, referenced from the
// embedded Node via its hop field so the shared write path reaches it.
type rtxState struct {
	n     *Node
	depth int

	rings map[int]*rtxRing   // by group; never ranged (determinism)
	holds map[int][]bufWrite // by group, sorted by seq; never ranged

	// gapped lists groups with held frames, sorted, for the repair scan.
	gapped    []int
	heldTotal int

	// disabled is the InjectDisableRetransmit verification bug: buffer
	// nothing, so every NACK is unserviceable.
	disabled bool

	// SRAM charges for the two buffers (E10-style accounting).
	rtxArr  *pisa.RegisterArray
	holdArr *pisa.RegisterArray

	repairArmed bool
	repairCtrl  func() // schedules repair on the control plane, bound once
}

// NewRetransmitNode creates the retransmit-backend instance and allocates
// its SRAM: the chain Node's store and sequence/pending array plus the two
// per-group buffers (Groups x RetransmitDepth entries of
// seq+key+writeID+writer+value bytes each).
func NewRetransmitNode(sw *pisa.Switch, cfg Config) (*RetransmitNode, error) {
	cfg.Replication = RetransmitReplication
	n, err := NewNode(sw, cfg)
	if err != nil {
		return nil, err
	}
	rn := &RetransmitNode{Node: n}
	if n.cfg.Proxy {
		return rn, nil // proxies never participate in propagation
	}
	c := n.cfg
	width := 26 + c.ValueWidth // 8 seq + 8 key + 8 writeID + 2 writer + value
	rtxArr, err := sw.NewRegisterArray(fmt.Sprintf("chain-rtx%d", c.Reg), c.Groups*c.RetransmitDepth, width)
	if err != nil {
		n.store.Free()
		n.seqPend.Free()
		return nil, err
	}
	holdArr, err := sw.NewRegisterArray(fmt.Sprintf("chain-hold%d", c.Reg), c.Groups*c.RetransmitDepth, width)
	if err != nil {
		rtxArr.Free()
		n.store.Free()
		n.seqPend.Free()
		return nil, err
	}
	st := &rtxState{
		n:       n,
		depth:   c.RetransmitDepth,
		rings:   make(map[int]*rtxRing),
		holds:   make(map[int][]bufWrite),
		rtxArr:  rtxArr,
		holdArr: holdArr,
	}
	st.repairCtrl = func() { sw.CtrlDo(st.repair) }
	n.hop = st
	return rn, nil
}

// MemoryBytes adds the hold-back and retransmit buffers to the chain node's
// SRAM footprint.
func (rn *RetransmitNode) MemoryBytes() int {
	if rn.hop == nil {
		return 0 // proxy
	}
	return rn.Node.MemoryBytes() + rn.hop.rtxArr.Bytes() + rn.hop.holdArr.Bytes()
}

// HeldFrames implements Replicator.
func (rn *RetransmitNode) HeldFrames() int {
	if rn.hop == nil {
		return 0
	}
	return rn.hop.heldTotal
}

// InjectDisableRetransmit implements Replicator: see rtxState.disabled.
func (rn *RetransmitNode) InjectDisableRetransmit() {
	if rn.hop != nil {
		rn.hop.disabled = true
	}
}

// Handle routes the retransmit-backend control frames, deferring everything
// else to the chain node.
func (rn *RetransmitNode) Handle(from netem.Addr, msg wire.Msg) bool {
	switch m := msg.(type) {
	case *wire.ChainNack:
		if m.Reg != rn.cfg.Reg {
			return false
		}
		if rn.hop != nil {
			rn.dispatch(m, func() { rn.hop.processNack(from, m) })
		}
		return true
	case *wire.ChainCursor:
		if m.Reg != rn.cfg.Reg {
			return false
		}
		if rn.hop != nil {
			rn.dispatch(m, func() { rn.hop.processCursor(m) })
		}
		return true
	}
	return rn.Node.Handle(from, msg)
}

// predecessor returns the previous hop before this switch, or 0 if none.
func (n *Node) predecessor() netem.Addr {
	for i, m := range n.chain.Members {
		if netem.Addr(m) == n.sw.Addr() {
			if i > 0 {
				return netem.Addr(n.chain.Members[i-1])
			}
			return 0
		}
	}
	return 0
}

// deliver is the in-order hop discipline (called from Node.process after the
// head assigned fresh sequence numbers and the epoch was checked).
func (s *rtxState) deliver(from netem.Addr, w *wire.Write) {
	n := s.n
	g := n.group(w.Key)
	next := n.appliedSeq(g) + 1
	switch {
	case w.Seq < next:
		// Duplicate or already-recovered retransmission.
		n.Stats.StaleDropped.Inc()
		if n.IsTail() {
			n.commitAtTail(w, false)
		}
	case w.Seq == next:
		s.applyForward(w)
		if s.drainHold(g) > 0 {
			// A gap was just repaired: cumulative cursor upstream so the
			// predecessor can free its ring before the tail ack arrives.
			s.sendCursor(g)
		}
	default:
		s.holdBack(g, w)
		s.sendNack(g, next, w.Seq-1)
	}
}

// applyForward applies an in-sequence write and passes it on: commit at the
// tail, else record a copy for retransmission and forward.
func (s *rtxState) applyForward(w *wire.Write) {
	n := s.n
	g := n.group(w.Key)
	applied := n.apply(w)
	if !applied && w.Seq > n.appliedSeq(g) {
		// Store capacity exhausted: advance the sequence floor anyway so the
		// group is not wedged; the writer's retries surface the failure
		// (parity with the chain backend, where later sequences also
		// proceed past the failed write).
		n.setApplied(g, w.Seq, false)
	}
	if n.IsTail() {
		n.commitAtTail(w, applied)
		return
	}
	succ := n.successor()
	if succ == 0 {
		return
	}
	s.store(g, w)
	n.sw.Send(succ, w)
}

// store records a forwarded write in the group's retransmit ring.
func (s *rtxState) store(g int, w *wire.Write) {
	if s.disabled {
		return
	}
	r := s.rings[g]
	if r == nil {
		r = &rtxRing{entries: make([]bufWrite, s.depth)}
		s.rings[g] = r
	}
	e := &r.entries[w.Seq%uint64(s.depth)]
	e.seq, e.key, e.writeID, e.writer = w.Seq, w.Key, w.WriteID, w.Writer
	e.val = append(e.val[:0], w.Value...)
	if w.Seq > r.hi {
		r.hi = w.Seq
	}
	s.n.Stats.RtxStored.Inc()
}

// lookup returns the buffered write for (group, seq) if still retained.
func (s *rtxState) lookup(g int, seq uint64) (*bufWrite, bool) {
	r := s.rings[g]
	if r == nil {
		return nil, false
	}
	e := &r.entries[seq%uint64(s.depth)]
	if e.seq != seq {
		return nil, false
	}
	return e, true
}

// freeThrough releases ring entries at or below seq (cumulative ack).
func (s *rtxState) freeThrough(g int, seq uint64) {
	r := s.rings[g]
	if r == nil || seq <= r.freed {
		return
	}
	lo := r.freed + 1
	if seq >= uint64(s.depth) && lo < seq-uint64(s.depth)+1 {
		lo = seq - uint64(s.depth) + 1
	}
	for q := lo; q <= seq; q++ {
		e := &r.entries[q%uint64(s.depth)]
		if e.seq == q {
			e.seq = 0
			e.val = e.val[:0]
		}
	}
	r.freed = seq
}

// holdBack parks an out-of-order write (copied — the frame may alias a
// writer's reusable buffer) in the group's bounded hold buffer. When full,
// the highest sequence is dropped: the lowest are the next to apply, and a
// dropped one is recoverable from the predecessor's ring via a later NACK.
func (s *rtxState) holdBack(g int, w *wire.Write) {
	h := s.holds[g]
	i := sort.Search(len(h), func(i int) bool { return h[i].seq >= w.Seq })
	if i < len(h) && h[i].seq == w.Seq {
		return // duplicate arrival of a held sequence
	}
	if len(h) >= s.depth {
		if w.Seq >= h[len(h)-1].seq {
			return
		}
		h = h[:len(h)-1]
		s.heldTotal--
	}
	h = append(h, bufWrite{})
	copy(h[i+1:], h[i:])
	h[i] = bufWrite{seq: w.Seq, key: w.Key, writeID: w.WriteID, writer: w.Writer,
		val: append([]byte(nil), w.Value...)}
	s.holds[g] = h
	s.heldTotal++
	s.addGapped(g)
	s.n.Stats.HeldBack.Inc()
}

// drainHold applies consecutively held writes after the floor advanced,
// returning how many were applied. Held sequences the floor has passed
// (skip cursor, retransmission overtake) are discarded.
func (s *rtxState) drainHold(g int) int {
	h := s.holds[g]
	if len(h) == 0 {
		return 0
	}
	n := s.n
	applied := 0
	for len(h) > 0 {
		next := n.appliedSeq(g) + 1
		if h[0].seq < next {
			h = h[1:]
			s.heldTotal--
			continue
		}
		if h[0].seq > next {
			break
		}
		bw := h[0]
		h = h[1:]
		s.heldTotal--
		w := &wire.Write{Reg: n.cfg.Reg, Key: bw.key, Seq: bw.seq, WriteID: bw.writeID,
			Writer: bw.writer, Epoch: n.chain.Epoch, Value: bw.val}
		s.applyForward(w)
		applied++
	}
	s.holds[g] = h
	if len(h) == 0 {
		s.removeGapped(g)
	}
	return applied
}

// sendNack asks the predecessor for the missing range and arms the repair
// timer for re-request if the gap persists.
func (s *rtxState) sendNack(g int, from, to uint64) {
	n := s.n
	if to < from {
		return
	}
	if pred := n.predecessor(); pred != 0 {
		n.Stats.NacksSent.Inc()
		n.sw.Send(pred, &wire.ChainNack{Reg: n.cfg.Reg, Epoch: n.chain.Epoch,
			Group: uint32(g), From: from, To: to})
	}
	s.armRepair()
}

// sendCursor reports the cumulative applied floor upstream.
func (s *rtxState) sendCursor(g int) {
	n := s.n
	if pred := n.predecessor(); pred != 0 {
		n.sw.Send(pred, &wire.ChainCursor{Reg: n.cfg.Reg, Epoch: n.chain.Epoch,
			Group: uint32(g), Seq: n.appliedSeq(g)})
	}
}

// processNack serves a successor's retransmission request from the ring.
// Sequences no longer retained are answered with a skip cursor carrying the
// highest unavailable sequence: retained entries are a contiguous recent
// window, so everything below it is equally gone.
func (s *rtxState) processNack(from netem.Addr, nk *wire.ChainNack) {
	n := s.n
	if nk.Epoch != n.chain.Epoch || nk.From == 0 || nk.To < nk.From {
		return
	}
	n.Stats.NacksReceived.Inc()
	g := int(nk.Group)
	lo := nk.From
	missing := uint64(0)
	if span := uint64(s.depth); nk.To-nk.From+1 > span {
		lo = nk.To - span + 1 // older sequences cannot be retained
		missing = lo - 1
	}
	for q := lo; q <= nk.To; q++ {
		e, ok := s.lookup(g, q)
		if !ok {
			missing = q
			continue
		}
		n.Stats.Retransmits.Inc()
		// Re-stamp with the current epoch: ring entries survive epoch
		// changes (member order is preserved, so the retained sequence
		// prefix stays consistent across members).
		n.sw.Send(from, &wire.Write{Reg: n.cfg.Reg, Key: e.key, Seq: q,
			WriteID: e.writeID, Writer: e.writer, Epoch: n.chain.Epoch,
			Value: append([]byte(nil), e.val...)})
	}
	if missing > 0 {
		n.sw.Send(from, &wire.ChainCursor{Reg: n.cfg.Reg, Epoch: n.chain.Epoch,
			Group: nk.Group, Seq: missing, Skip: true})
	}
}

// processCursor handles both cursor directions: a skip cursor abandons an
// unfillable gap (the counted degradation back to monotone apply); a plain
// cursor frees ring entries the successor has applied.
func (s *rtxState) processCursor(c *wire.ChainCursor) {
	n := s.n
	if c.Epoch != n.chain.Epoch {
		return
	}
	g := int(c.Group)
	if !c.Skip {
		s.freeThrough(g, c.Seq)
		return
	}
	if c.Seq <= n.appliedSeq(g) {
		return // the gap closed while the skip was in flight
	}
	n.Stats.RtxAbandoned.Inc()
	// Unknown commit state for the skipped range: set the pending bit so
	// SRO reads forward to the tail until the next commit clears it.
	n.setApplied(g, c.Seq, true)
	s.drainHold(g)
}

// armRepair schedules a control-plane re-NACK pass while gaps persist.
func (s *rtxState) armRepair() {
	if s.repairArmed || s.heldTotal == 0 {
		return
	}
	s.repairArmed = true
	s.n.sw.Engine().AfterVal(s.n.cfg.RetryTimeout, s.repairCtrl)
}

// repair re-NACKs every gapped group (the original NACK or its
// retransmissions may have been lost) and re-arms while gaps remain.
func (s *rtxState) repair() {
	s.repairArmed = false
	n := s.n
	// drainHold/sendNack mutate gapped; walk a copy.
	groups := append([]int(nil), s.gapped...)
	for _, g := range groups {
		s.drainHold(g)
		h := s.holds[g]
		if len(h) == 0 {
			continue
		}
		next := n.appliedSeq(g) + 1
		if h[0].seq > next {
			s.sendNack(g, next, h[0].seq-1)
		}
	}
	s.armRepair()
}

// epochChanged discards held frames: they carry the old epoch, and a new
// head may reassign their sequence numbers. Their writes are recoverable —
// the applied floor is unchanged, so the next arrival re-detects the gap and
// the NACK path refetches from the predecessor's retained ring.
func (s *rtxState) epochChanged() {
	for _, g := range s.gapped {
		s.holds[g] = s.holds[g][:0]
	}
	s.gapped = s.gapped[:0]
	s.heldTotal = 0
}

// addGapped/removeGapped maintain the sorted gapped-group list.
func (s *rtxState) addGapped(g int) {
	i := sort.SearchInts(s.gapped, g)
	if i < len(s.gapped) && s.gapped[i] == g {
		return
	}
	s.gapped = append(s.gapped, 0)
	copy(s.gapped[i+1:], s.gapped[i:])
	s.gapped[i] = g
}

func (s *rtxState) removeGapped(g int) {
	i := sort.SearchInts(s.gapped, g)
	if i < len(s.gapped) && s.gapped[i] == g {
		s.gapped = append(s.gapped[:i], s.gapped[i+1:]...)
	}
}
