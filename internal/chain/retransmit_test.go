package chain

import (
	"encoding/binary"
	"testing"
	"time"

	"swishmem/internal/netem"
	"swishmem/internal/pisa"
	"swishmem/internal/sim"
	"swishmem/internal/wire"
)

// rtxRig is a chain test cluster running the retransmit backend.
type rtxRig struct {
	eng   *sim.Engine
	net   *netem.Network
	sws   []*pisa.Switch
	nodes []*RetransmitNode
	epoch uint32
}

func newRtxRig(t testing.TB, seed int64, n int, cfg Config, profile netem.LinkProfile) *rtxRig {
	t.Helper()
	eng := sim.NewEngine(seed)
	nw := netem.New(eng, profile)
	r := &rtxRig{eng: eng, net: nw}
	for i := 0; i < n; i++ {
		sw := pisa.New(eng, nw, pisa.Config{Addr: netem.Addr(i + 1), PipelinePPS: 1e9})
		node, err := NewRetransmitNode(sw, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sw.SetMsgHandler(func(s *pisa.Switch, from netem.Addr, msg wire.Msg) {
			node.Handle(from, msg)
		})
		r.sws = append(r.sws, sw)
		r.nodes = append(r.nodes, node)
	}
	r.installChain(r.allAddrs(), 0)
	return r
}

func (r *rtxRig) allAddrs() []uint16 {
	out := make([]uint16, len(r.sws))
	for i, sw := range r.sws {
		out[i] = uint16(sw.Addr())
	}
	return out
}

func (r *rtxRig) installChain(members []uint16, joining uint16) {
	r.epoch++
	cc := wire.ChainConfig{Epoch: r.epoch, Members: members, Joining: joining}
	for _, n := range r.nodes {
		n.SetChain(cc)
	}
}

// rtxCfg is the E15 anomaly configuration: one shared sequence group, so a
// lost chain-hop frame plus a commit of a later write in the same group is
// exactly the monotone-apply anomaly the retransmit backend closes.
func rtxCfg() Config {
	return Config{Reg: 1, Capacity: 64, ValueWidth: 16, Mode: SRO, Groups: 1,
		RetryTimeout: 2 * time.Millisecond}
}

func TestRetransmitWriteCommitsAndReplicates(t *testing.T) {
	r := newRtxRig(t, 1, 3, rtxCfg(), netem.LinkProfile{Latency: 10_000})
	committed := false
	r.nodes[1].Write(42, val("hello"), func(ok bool) { committed = ok })
	r.eng.Run()
	if !committed {
		t.Fatal("write not committed")
	}
	for i, n := range r.nodes {
		if v, ok := n.Get(42); !ok || string(v) != "hello" {
			t.Fatalf("replica %d: %q %v", i, v, ok)
		}
	}
	if r.nodes[0].HeldFrames() != 0 {
		t.Fatal("held frames on a lossless run")
	}
}

func TestRetransmitRecoversDeterministicHopLoss(t *testing.T) {
	// Every 3rd frame on the head->middle hop is dropped: each loss opens a
	// sequence gap at the middle member that only NACK+retransmit can close
	// (the writer's end-to-end retry re-sequences, it does not fill gaps).
	r := newRtxRig(t, 1, 3, rtxCfg(), netem.LinkProfile{Latency: 10_000})
	r.net.SetOneWayLink(1, 2, netem.LinkProfile{Latency: 10_000, LossEveryN: 3})
	committed := 0
	const writes = 30
	for i := 0; i < writes; i++ {
		r.nodes[0].Write(uint64(i%8), u64val(uint64(i)), func(ok bool) {
			if ok {
				committed++
			}
		})
	}
	r.eng.Run()
	if committed != writes {
		t.Fatalf("committed %d/%d", committed, writes)
	}
	mid := r.nodes[1]
	if mid.Counters().NacksSent.Value() == 0 {
		t.Fatal("no NACKs under deterministic hop loss")
	}
	if r.nodes[0].Counters().Retransmits.Value() == 0 {
		t.Fatal("head never retransmitted")
	}
	for i, n := range r.nodes {
		if n.Counters().RtxAbandoned.Value() != 0 {
			t.Fatalf("node %d abandoned a gap", i)
		}
		if n.HeldFrames() != 0 {
			t.Fatalf("node %d still holds frames after quiesce", i)
		}
	}
	// All replicas converged on every key.
	for key := uint64(0); key < 8; key++ {
		want, _ := r.nodes[0].Get(key)
		for i := 1; i < 3; i++ {
			if got, _ := r.nodes[i].Get(key); string(got) != string(want) {
				t.Fatalf("key %d: replica %d = %q, head = %q", key, i, got, want)
			}
		}
	}
}

func TestRetransmitRecoversRandomHopLossAllSeeds(t *testing.T) {
	// The E15 fault shape: 20% random loss on both chain hops, shared group.
	// Every write must commit, replicas must converge, and no gap may be
	// abandoned — the data-plane recovery alone closes every hole.
	for seed := int64(1); seed <= 8; seed++ {
		r := newRtxRig(t, seed, 3, rtxCfg(), netem.LinkProfile{Latency: 10_000})
		r.net.SetOneWayLink(1, 2, netem.LinkProfile{Latency: 10_000, LossRate: 0.2})
		r.net.SetOneWayLink(2, 3, netem.LinkProfile{Latency: 10_000, LossRate: 0.2})
		committed := 0
		const writes = 40
		for i := 0; i < writes; i++ {
			r.nodes[0].Write(uint64(i%8), u64val(uint64(i)), func(ok bool) {
				if ok {
					committed++
				}
			})
			r.eng.RunFor(50 * time.Microsecond)
		}
		r.eng.Run()
		if committed != writes {
			t.Fatalf("seed %d: committed %d/%d", seed, committed, writes)
		}
		for i, n := range r.nodes {
			if n.Counters().RtxAbandoned.Value() != 0 {
				t.Fatalf("seed %d: node %d abandoned a gap", seed, i)
			}
			if n.HeldFrames() != 0 {
				t.Fatalf("seed %d: node %d holds frames after quiesce", seed, i)
			}
		}
		for key := uint64(0); key < 8; key++ {
			want, okWant := r.nodes[0].Get(key)
			for i := 1; i < 3; i++ {
				got, ok := r.nodes[i].Get(key)
				if ok != okWant || string(got) != string(want) {
					t.Fatalf("seed %d key %d: replica %d = %q(%v), head = %q(%v)",
						seed, key, i, got, ok, want, okWant)
				}
			}
		}
	}
}

func TestRetransmitDisabledBufferDegradesAndIsVisible(t *testing.T) {
	// InjectDisableRetransmit is the planted verification bug the explore
	// oracle must catch: the head buffers nothing, so every NACK it receives
	// is unserviceable and answered with a skip cursor. Liveness survives
	// (the successor abandons the gap and falls back to monotone apply) but
	// the degradation is visible in exactly the counters the oracle checks:
	// NACKs received with nothing ever stored, and abandoned gaps.
	r := newRtxRig(t, 1, 3, rtxCfg(), netem.LinkProfile{Latency: 10_000})
	r.nodes[0].InjectDisableRetransmit()
	r.net.SetOneWayLink(1, 2, netem.LinkProfile{Latency: 10_000, LossEveryN: 3})
	committed := 0
	const writes = 30
	for i := 0; i < writes; i++ {
		r.nodes[0].Write(uint64(i%8), u64val(uint64(i)), func(ok bool) {
			if ok {
				committed++
			}
		})
	}
	r.eng.Run()
	if committed != writes {
		t.Fatalf("committed %d/%d: skip fallback must preserve liveness", committed, writes)
	}
	head := r.nodes[0].Counters()
	if head.NacksReceived.Value() == 0 {
		t.Fatal("head received no NACKs")
	}
	if head.RtxStored.Value() != 0 {
		t.Fatal("disabled buffer stored frames")
	}
	if r.nodes[1].Counters().RtxAbandoned.Value() == 0 {
		t.Fatal("middle member abandoned no gaps despite an empty predecessor buffer")
	}
	for i, n := range r.nodes {
		if n.HeldFrames() != 0 {
			t.Fatalf("node %d holds frames after quiesce", i)
		}
	}
}

func TestRetransmitEpochChangeDropsHeldFrames(t *testing.T) {
	// Held-back frames carry the old epoch and their sequence numbers may be
	// reassigned by a new head; a reconfiguration must discard them.
	cfg := rtxCfg()
	cfg.RetryTimeout = time.Second // keep writer retries and repair out of the window
	r := newRtxRig(t, 1, 3, cfg, netem.LinkProfile{Latency: 10_000})
	// Drop every 2nd head->middle frame and every NACK going back, so gaps
	// stay open and frames stay held.
	r.net.SetOneWayLink(1, 2, netem.LinkProfile{Latency: 10_000, LossEveryN: 2})
	r.net.SetOneWayLink(2, 1, netem.LinkProfile{Latency: 10_000, LossRate: 1})
	for i := 0; i < 6; i++ {
		r.nodes[0].Write(uint64(i), u64val(uint64(i)), nil)
	}
	r.eng.RunFor(2 * time.Millisecond)
	if r.nodes[1].HeldFrames() == 0 {
		t.Fatal("middle member held nothing; fault shape did not open a gap")
	}
	r.installChain(r.allAddrs(), 0) // epoch bump, same membership
	if r.nodes[1].HeldFrames() != 0 {
		t.Fatal("held frames survived the epoch change")
	}
}

func TestRetransmitBuffersChargedToSRAM(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := netem.New(eng, netem.LinkProfile{})
	mk := func(addr netem.Addr, cfg Config) Replicator {
		sw := pisa.New(eng, nw, pisa.Config{Addr: addr})
		rep, err := New(sw, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base := mk(1, rtxCfg())
	cfg := rtxCfg()
	cfg.Replication = RetransmitReplication
	rtx := mk(2, cfg)
	if rtx.MemoryBytes() <= base.MemoryBytes() {
		t.Fatalf("retransmit backend (%d) must charge more SRAM than chain (%d)",
			rtx.MemoryBytes(), base.MemoryBytes())
	}
	deep := cfg
	deep.RetransmitDepth = 64
	deeper := mk(3, deep)
	if deeper.MemoryBytes() <= rtx.MemoryBytes() {
		t.Fatalf("deeper buffers (%d) must charge more SRAM (%d at depth 16)",
			deeper.MemoryBytes(), rtx.MemoryBytes())
	}
	// The two buffer arrays account for exactly the extra charge:
	// 2 x Groups x Depth x (26 + ValueWidth).
	want := 2 * 1 * 16 * (26 + 16)
	if got := rtx.MemoryBytes() - base.MemoryBytes(); got != want {
		t.Fatalf("buffer charge = %d bytes, want %d", got, want)
	}
}

func TestReplicationFactory(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := netem.New(eng, netem.LinkProfile{})
	sw := pisa.New(eng, nw, pisa.Config{Addr: 1})
	rep, err := New(sw, rtxCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rep.(*Node); !ok {
		t.Fatalf("default backend = %T, want *Node", rep)
	}
	cfg := rtxCfg()
	cfg.Reg = 2
	cfg.Replication = RetransmitReplication
	rep, err = New(sw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rep.(*RetransmitNode); !ok {
		t.Fatalf("retransmit backend = %T, want *RetransmitNode", rep)
	}
	cfg.Reg = 3
	cfg.Replication = Replication(99)
	if _, err := New(sw, cfg); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if ChainReplication.String() != "chain" || RetransmitReplication.String() != "retransmit" {
		t.Fatal("replication strings")
	}
}

func TestRetransmitProxyHasNoBuffers(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := netem.New(eng, netem.LinkProfile{})
	sw := pisa.New(eng, nw, pisa.Config{Addr: 1})
	cfg := rtxCfg()
	cfg.Proxy = true
	cfg.Replication = RetransmitReplication
	rep, err := New(sw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MemoryBytes() != 0 {
		t.Fatal("proxy charged SRAM")
	}
	// Protocol frames for this register are consumed without a hop state.
	if !rep.Handle(2, &wire.ChainNack{Reg: 1, From: 1, To: 2}) {
		t.Fatal("proxy did not claim its register's NACK")
	}
	if rep.Handle(2, &wire.ChainCursor{Reg: 99}) {
		t.Fatal("proxy claimed another register's cursor")
	}
	rep.InjectDisableRetransmit() // must not panic without hop state
	if rep.HeldFrames() != 0 {
		t.Fatal("proxy holds frames")
	}
}

func TestRetransmitFailoverMidChain(t *testing.T) {
	// The retransmit backend must survive the chain backend's failover flow:
	// member order is preserved, retained ring prefixes stay valid.
	cfg := rtxCfg()
	cfg.RetryTimeout = 300 * time.Microsecond
	r := newRtxRig(t, 1, 3, cfg, netem.LinkProfile{Latency: 10_000})
	r.nodes[0].Write(1, val("pre"), nil)
	r.eng.Run()
	r.sws[1].Fail()
	committed := false
	r.nodes[0].Write(2, val("during"), func(ok bool) { committed = ok })
	r.eng.RunFor(1 * time.Millisecond)
	if committed {
		t.Fatal("write committed through a broken chain")
	}
	r.installChain([]uint16{1, 3}, 0)
	r.eng.Run()
	if !committed {
		t.Fatal("write did not commit after failover")
	}
	if v, ok := r.nodes[2].Get(2); !ok || string(v) != "during" {
		t.Fatalf("tail replica = %q %v", v, ok)
	}
}

func TestRetransmitRecoveryJoinFullFlow(t *testing.T) {
	// §6.3 recovery on the retransmit backend: the joining switch receives
	// committed writes from the tail — arbitrarily sparse sequences — and
	// must stay on monotone apply instead of NACKing expected gaps.
	cfg := rtxCfg()
	cfg.RetryTimeout = 300 * time.Microsecond
	r := newRtxRig(t, 3, 4, cfg, netem.LinkProfile{Latency: 10_000})
	r.installChain([]uint16{1, 2, 3}, 0)
	const keys = 40
	for i := 0; i < keys; i++ {
		r.nodes[0].Write(uint64(i), u64val(uint64(i*7)), nil)
	}
	r.eng.Run()
	r.nodes[3].BeginJoin()
	r.installChain([]uint16{1, 2, 3}, 4)
	done := false
	r.nodes[0].StartSnapshotTransfer(4, func() { done = true })
	for i := 0; i < 10; i++ {
		r.nodes[1].Write(uint64(i), u64val(uint64(i*1000)), nil)
	}
	r.eng.Run()
	if !done {
		t.Fatal("snapshot transfer never completed")
	}
	if got := r.nodes[3].Counters().NacksSent.Value(); got != 0 {
		t.Fatalf("joining switch sent %d NACKs for expected gaps", got)
	}
	r.installChain([]uint16{1, 2, 3, 4}, 0)
	r.eng.Run()
	for i := 0; i < keys; i++ {
		v, ok := r.nodes[3].Get(uint64(i))
		if !ok {
			t.Fatalf("key %d missing on joined switch", i)
		}
		want := uint64(i * 7)
		if i < 10 {
			want = uint64(i * 1000)
		}
		if binary.BigEndian.Uint64(v) != want {
			t.Fatalf("key %d = %d, want %d", i, binary.BigEndian.Uint64(v), want)
		}
	}
}
