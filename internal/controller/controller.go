// Package controller implements the central controller SwiShmem assumes for
// failure handling (§6.3: "We assume that a central controller can detect
// which switches have failed") plus the directory-service extension sketched
// in §9.
//
// Detection is data-plane heartbeats over the unreliable fabric with a
// timeout. Configuration delivery, by contrast, uses the controller's
// reliable control channel to each switch's control plane (out-of-band TCP
// in a real deployment — the control plane, unlike the data plane, can run
// TCP), modeled as a direct call executed at control-plane cost.
//
// On a chain member failure the controller:
//  1. installs a shortened chain (restoring write availability — failover);
//  2. if a spare switch is registered, starts recovery: the spare joins
//     (snapshot transfer from a donor, live writes forwarded by the tail)
//     and is promoted to tail when the transfer completes.
//
// On an EWO group member failure the controller simply removes the switch
// from the multicast group; recovery is adding a switch back and waiting a
// sync period (§6.3).
package controller

import (
	"fmt"
	"slices"
	"time"

	"swishmem/internal/netem"
	"swishmem/internal/obs"
	"swishmem/internal/pisa"
	"swishmem/internal/sim"
	"swishmem/internal/stats"
	"swishmem/internal/wire"
)

// ChainMember is the controller's view of a chain protocol instance.
// *chain.Node satisfies it.
type ChainMember interface {
	SetChain(cc wire.ChainConfig)
	BeginJoin()
	StartSnapshotTransfer(to netem.Addr, onComplete func())
	Switch() *pisa.Switch
}

// GroupMember is the controller's view of an EWO protocol instance.
// *ewo.Node satisfies it.
type GroupMember interface {
	SetGroup(gc wire.GroupConfig) error
	Switch() *pisa.Switch
}

// Config holds controller parameters.
type Config struct {
	// Addr is the controller's network address. Required.
	Addr netem.Addr
	// HeartbeatPeriod is how often monitored switches beat. Default 1ms.
	HeartbeatPeriod sim.Duration
	// FailureTimeout is the silence threshold declaring a switch dead.
	// Default 4x the heartbeat period.
	FailureTimeout sim.Duration
	// ConfigDelay is the one-way latency of the reliable control channel
	// (out-of-band TCP in a real deployment): every configuration push and
	// every completion notification back to the controller arrives this
	// long after it was issued. Default 50us. In a sharded simulation it
	// must be at least the group lookahead — the cluster folds it into the
	// lookahead computation, so the default is always safe.
	ConfigDelay sim.Duration
}

func (c Config) withDefaults() Config {
	if c.HeartbeatPeriod == 0 {
		c.HeartbeatPeriod = time.Millisecond
	}
	if c.FailureTimeout == 0 {
		c.FailureTimeout = 4 * c.HeartbeatPeriod
	}
	if c.ConfigDelay == 0 {
		c.ConfigDelay = 50 * time.Microsecond
	}
	return c
}

// Stats counts controller events.
type Stats struct {
	Heartbeats    stats.Counter
	FailuresSeen  stats.Counter
	ChainReconfig stats.Counter
	GroupReconfig stats.Counter
	Recoveries    stats.Counter // completed chain recoveries (spare promoted)
	Revivals      stats.Counter // evicted switches that resumed beating and rejoined
}

type chainState struct {
	epoch     uint32
	target    int           // membership size to restore toward (set at ManageChain)
	members   []ChainMember // in chain order
	spares    []ChainMember
	joining   ChainMember
	listeners []ChainMember // non-member config receivers (§9 proxies)
	// evicted holds members and spares removed by failure detection, so a
	// switch that was merely frozen (GC pause) and resumes beating can be
	// revived: it re-enters as a spare and rejoins through the normal
	// snapshot-transfer path when the chain is below target strength.
	evicted []ChainMember
}

type groupState struct {
	epoch   uint32
	members []GroupMember
	// evicted mirrors chainState.evicted for EWO groups: revival re-adds
	// the member and a sync period brings both sides back in step (§6.3).
	evicted []GroupMember
}

// Controller is the central controller.
type Controller struct {
	eng *sim.Engine
	net *netem.Network
	cfg Config

	lastBeat map[netem.Addr]sim.Time
	dead     map[netem.Addr]bool

	chains map[uint16]*chainState
	groups map[uint16]*groupState

	// OnFailure, if set, is invoked when a switch is declared dead.
	OnFailure func(addr netem.Addr)

	// noRevive disables the revival path (see DisableRevival).
	noRevive bool

	// mail keys the controller's outgoing control-channel posts. Every
	// config push travels as a posted message arriving ConfigDelay later on
	// the target's engine, identically in sequential and sharded runs.
	mail *sim.Mailbox

	// Iteration scratch, reused so the periodic scan allocates nothing in
	// steady state. Go map ranges are deliberately randomized, so every walk
	// that can trigger reconfiguration sorts first: with two switches silent
	// in the same scan tick, failover order (and thus spare selection and the
	// wire-visible config sequence) must not shift run to run.
	scanScratch []netem.Addr
	regScratch  []uint16

	Stats Stats
}

// New creates a controller, attaches it to the network, and starts the
// failure detection scan.
func New(eng *sim.Engine, nw *netem.Network, cfg Config) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{
		eng:      eng,
		net:      nw,
		cfg:      cfg,
		lastBeat: make(map[netem.Addr]sim.Time),
		dead:     make(map[netem.Addr]bool),
		chains:   make(map[uint16]*chainState),
		groups:   make(map[uint16]*groupState),
		mail:     sim.NewMailbox(uint64(cfg.Addr)),
	}
	nw.Attach(cfg.Addr, c.receive)
	eng.Every(cfg.HeartbeatPeriod, c.scan)
	return c
}

// ctrlCall delivers fn to sw's control plane over the reliable control
// channel: it arrives ConfigDelay later on sw's engine and is charged as a
// control-plane op there. Replaces the old direct CtrlDo call, which would
// mutate a foreign shard's queue from the controller's goroutine.
func (c *Controller) ctrlCall(sw *pisa.Switch, fn func()) {
	c.mail.Post(c.eng, sw.Engine(), c.cfg.ConfigDelay, func() { sw.CtrlDo(fn) })
}

// post delivers fn to sw's engine after ConfigDelay without the CtrlDo
// wrapper, for operations that manage their own control-plane charging
// (StartSnapshotTransfer runs its body under the donor's CtrlDo already).
func (c *Controller) post(sw *pisa.Switch, fn func()) {
	c.mail.Post(c.eng, sw.Engine(), c.cfg.ConfigDelay, fn)
}

// Addr returns the controller's network address.
func (c *Controller) Addr() netem.Addr { return c.cfg.Addr }

// ConfigDelay returns the effective control-channel one-way latency. The
// cluster folds it into the group lookahead in sharded runs (posts must
// never undercut the conservative window).
func (c *Controller) ConfigDelay() sim.Duration { return c.cfg.ConfigDelay }

// traceInstant emits a controller-lane instant with up to two int args.
func (c *Controller) traceInstant(name, k1 string, v1 int64, k2 string, v2 int64) {
	tr := c.eng.Tracer()
	if !tr.Enabled() {
		return
	}
	rec := tr.Emit(obs.PhaseInstant, int64(c.eng.Now()), 0, obs.PidCtrl, "ctrl", name)
	rec.K1, rec.V1 = k1, v1
	rec.K2, rec.V2 = k2, v2
}

func (c *Controller) receive(from netem.Addr, payload any, size int) {
	hb, ok := payload.(*wire.Heartbeat)
	if !ok {
		// The delivery's payload reference passed to us; drop it even for
		// messages we ignore (no-op for non-pooled payloads).
		if r, ok := payload.(netem.Releasable); ok {
			r.Release()
		}
		return
	}
	c.Stats.Heartbeats.Inc()
	if tr := c.eng.Tracer(); tr.Enabled() {
		rec := tr.Emit(obs.PhaseInstant, int64(c.eng.Now()), 0, obs.PidCtrl, "ctrl", "heartbeat")
		rec.K1, rec.V1 = "from", int64(from)
		rec.K2, rec.V2 = "seq", int64(hb.Seq)
	}
	c.lastBeat[from] = c.eng.Now()
	if c.dead[from] {
		// A declared-dead switch beating again was not dead at all — it was
		// frozen (a GC pause, a SIGSTOP) and has resumed. The failure
		// detector cannot distinguish the two in advance; what it CAN do is
		// repair its mistake now: revive the switch by walking it back into
		// every chain (as a spare, rejoining via snapshot transfer when the
		// chain is short) and every group it was evicted from. The epoch
		// guards make this split-brain-safe — the revived switch's stale
		// configuration is superseded before it serves for the chain again.
		delete(c.dead, from)
		if !c.noRevive {
			c.Stats.Revivals.Inc()
			c.traceInstant("revival", "addr", int64(from), "", 0)
			c.handleRevival(from)
		}
	}
	hb.Release()
}

// DisableRevival turns off the eviction-repair path: a switch declared dead
// stays out of its chains and groups even if it resumes beating. This is the
// pre-revival behaviour, kept as an injectable bug — a paused-then-resumed
// switch that is never walked back in misses every update its groups made
// after the eviction, which the explorer's counter-total and convergence
// oracles catch deterministically (see TESTING.md).
func (c *Controller) DisableRevival() { c.noRevive = true }

// Monitor starts heartbeats from sw to the controller (a data-plane
// packet-generator task) and registers it for failure detection.
// Heartbeats are pooled (see wire.Heartbeat): the network holds a reference
// per in-flight delivery and the controller's receive path releases it, so
// steady-state monitoring allocates nothing.
func (c *Controller) Monitor(sw *pisa.Switch) {
	c.lastBeat[sw.Addr()] = c.eng.Now()
	seq := uint64(0)
	var free []*wire.Heartbeat
	freeFn := func(h *wire.Heartbeat) { free = append(free, h) }
	sw.PacketGen(c.cfg.HeartbeatPeriod, func() {
		seq++
		var hb *wire.Heartbeat
		if n := len(free); n > 0 {
			hb = free[n-1]
			free[n-1] = nil
			free = free[:n-1]
		} else {
			hb = &wire.Heartbeat{}
			hb.EnablePool(freeFn)
		}
		hb.From, hb.Seq = uint16(sw.Addr()), seq
		hb.Ref()
		sw.Send(c.cfg.Addr, hb)
		hb.Release()
	})
}

// scan declares switches dead after FailureTimeout of silence and triggers
// reconfiguration.
func (c *Controller) scan() {
	now := c.eng.Now()
	addrs := c.scanScratch[:0]
	for addr := range c.lastBeat {
		addrs = append(addrs, addr)
	}
	slices.Sort(addrs)
	c.scanScratch = addrs
	for _, addr := range addrs {
		if c.dead[addr] || now.Sub(c.lastBeat[addr]) < c.cfg.FailureTimeout {
			continue
		}
		c.dead[addr] = true
		c.Stats.FailuresSeen.Inc()
		c.traceInstant("failure", "addr", int64(addr), "silence_ns", int64(now.Sub(c.lastBeat[addr])))
		c.handleFailure(addr)
		if c.OnFailure != nil {
			c.OnFailure(addr)
		}
	}
}

// Dead reports whether the controller has declared addr failed.
func (c *Controller) Dead(addr netem.Addr) bool { return c.dead[addr] }

// --- chain management ---

// ManageChain registers a chain for register reg: members in chain order,
// plus spare switches available for recovery. The initial configuration is
// pushed immediately.
func (c *Controller) ManageChain(reg uint16, members, spares []ChainMember) {
	cs := &chainState{members: members, spares: spares, target: len(members)}
	c.chains[reg] = cs
	c.pushChain(cs)
}

// AttachChainListener registers a non-member configuration receiver for
// reg's chain: it gets every ChainConfig push (including future failover
// reconfigurations) without ever being part of the chain. Used by the §9
// locality extension's proxy handles, which must know the current head and
// tail to route their remote operations.
func (c *Controller) AttachChainListener(reg uint16, m ChainMember) {
	cs, ok := c.chains[reg]
	if !ok {
		return
	}
	cs.listeners = append(cs.listeners, m)
	// Deliver the current configuration immediately.
	cc := wire.ChainConfig{Epoch: cs.epoch}
	for _, mem := range cs.members {
		cc.Members = append(cc.Members, uint16(mem.Switch().Addr()))
	}
	if cs.joining != nil {
		cc.Joining = uint16(cs.joining.Switch().Addr())
	}
	c.ctrlCall(m.Switch(), func() { m.SetChain(cc) })
}

// ChainEpoch returns the chain's current epoch (for tests/metrics).
func (c *Controller) ChainEpoch(reg uint16) uint32 {
	if cs, ok := c.chains[reg]; ok {
		return cs.epoch
	}
	return 0
}

// pushChain bumps the epoch and delivers the configuration to every member
// (and joining switch) over the reliable control channel.
func (c *Controller) pushChain(cs *chainState) {
	cs.epoch++
	c.Stats.ChainReconfig.Inc()
	c.traceInstant("chain.config", "epoch", int64(cs.epoch), "members", int64(len(cs.members)))
	cc := wire.ChainConfig{Epoch: cs.epoch}
	for _, m := range cs.members {
		cc.Members = append(cc.Members, uint16(m.Switch().Addr()))
	}
	if cs.joining != nil {
		cc.Joining = uint16(cs.joining.Switch().Addr())
	}
	targets := append([]ChainMember(nil), cs.members...)
	if cs.joining != nil {
		targets = append(targets, cs.joining)
	}
	targets = append(targets, cs.listeners...)
	for _, m := range targets {
		cfg := cc
		node := m
		c.ctrlCall(node.Switch(), func() { node.SetChain(cfg) })
	}
}

// handleFailure routes around addr in every chain and group, visiting
// registers in sorted order so the reconfiguration sequence is deterministic.
func (c *Controller) handleFailure(addr netem.Addr) {
	regs := c.regScratch[:0]
	for reg := range c.chains {
		regs = append(regs, reg)
	}
	slices.Sort(regs)
	for _, reg := range regs {
		c.failChainMember(c.chains[reg], addr)
	}
	regs = regs[:0]
	for reg := range c.groups {
		regs = append(regs, reg)
	}
	slices.Sort(regs)
	c.regScratch = regs
	for _, reg := range regs {
		c.failGroupMember(c.groups[reg], addr)
	}
}

func (c *Controller) failChainMember(cs *chainState, addr netem.Addr) {
	idx := -1
	for i, m := range cs.members {
		if m.Switch().Addr() == addr {
			idx = i
			break
		}
	}
	if idx < 0 {
		// A failed spare or joining switch just drops out (but stays
		// revivable: a frozen spare that resumes is still a useful spare).
		for _, m := range cs.spares {
			if m.Switch().Addr() == addr {
				cs.evicted = append(cs.evicted, m)
			}
		}
		cs.spares = removeMember(cs.spares, addr)
		if cs.joining != nil && cs.joining.Switch().Addr() == addr {
			cs.evicted = append(cs.evicted, cs.joining)
			cs.joining = nil
			c.pushChain(cs)
		}
		return
	}
	// Failover: shorten the chain (restores write availability; writers'
	// control planes re-send in-flight writes against the new epoch).
	cs.evicted = append(cs.evicted, cs.members[idx])
	cs.members = append(cs.members[:idx:idx], cs.members[idx+1:]...)
	c.pushChain(cs)
	if len(cs.members) == 0 {
		return
	}
	if cs.joining != nil {
		// A snapshot transfer was interrupted by the reconfiguration: its
		// writes carry the old epoch and the joining switch rejects them,
		// so restart the transfer under the new epoch.
		c.beginTransfer(cs)
		return
	}
	// Recovery: bring in a spare if one is available.
	if len(cs.spares) > 0 {
		c.startRecovery(cs)
	}
}

func removeMember(ms []ChainMember, addr netem.Addr) []ChainMember {
	out := ms[:0]
	for _, m := range ms {
		if m.Switch().Addr() != addr {
			out = append(out, m)
		}
	}
	return out
}

// startRecovery begins the §6.3 recovery flow with the first spare.
func (c *Controller) startRecovery(cs *chainState) {
	spare := cs.spares[0]
	cs.spares = cs.spares[1:]
	cs.joining = spare
	c.traceInstant("recovery.start", "spare", int64(spare.Switch().Addr()), "epoch", int64(cs.epoch))
	c.ctrlCall(spare.Switch(), spare.BeginJoin)
	c.pushChain(cs) // config with Joining set: tail starts forwarding commits
	c.beginTransfer(cs)
}

// beginTransfer (re)starts the snapshot transfer for the current joining
// switch and promotes it to tail on completion. The epoch guard abandons
// the promotion if the chain reconfigures mid-transfer; the reconfiguration
// path calls beginTransfer again under the new epoch.
func (c *Controller) beginTransfer(cs *chainState) {
	spare := cs.joining
	donor := cs.members[0]
	donorSw := donor.Switch()
	epochAtStart := cs.epoch
	// The promotion body mutates controller state, so it must run on the
	// controller's engine; the donor reports completion with a post from
	// its own shard (donorSw.PostTo), mirroring the notification's trip
	// back over the control channel.
	promote := func() {
		// Promote unless the world changed underneath the transfer.
		if cs.joining != spare || cs.epoch != epochAtStart {
			return
		}
		cs.members = append(cs.members, spare)
		cs.joining = nil
		c.pushChain(cs)
		c.Stats.Recoveries.Inc()
		c.traceInstant("recovery.done", "promoted", int64(spare.Switch().Addr()), "epoch", int64(cs.epoch))
	}
	to := spare.Switch().Addr()
	delay := c.cfg.ConfigDelay
	c.post(donorSw, func() {
		donor.StartSnapshotTransfer(to, func() {
			donorSw.PostTo(c.eng, delay, promote)
		})
	})
}

// ReplaceChainMember performs a planned migration (§9: "migrating data as
// needed"): newM joins the chain of register reg exactly like a recovery
// spare (snapshot transfer + live-write forwarding), and once promoted the
// old member is removed from the chain. Unlike failure recovery, the old
// switch keeps serving throughout, so there is no availability gap. The
// returned error reports an unknown register, a busy chain (a join already
// in progress), or an old member that is not in the chain.
func (c *Controller) ReplaceChainMember(reg uint16, old netem.Addr, newM ChainMember) error {
	cs, ok := c.chains[reg]
	if !ok {
		return fmt.Errorf("controller: no chain for register %d", reg)
	}
	if cs.joining != nil {
		return fmt.Errorf("controller: chain %d already has a join in progress", reg)
	}
	idx := -1
	for i, m := range cs.members {
		if m.Switch().Addr() == old {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("controller: switch %d is not a member of chain %d", old, reg)
	}
	cs.joining = newM
	c.ctrlCall(newM.Switch(), newM.BeginJoin)
	c.pushChain(cs) // Joining set: tail forwards fresh commits
	donor := cs.members[0]
	if donor.Switch().Addr() == old && len(cs.members) > 1 {
		donor = cs.members[1] // do not snapshot from the switch being retired
	}
	donorSw := donor.Switch()
	epochAtStart := cs.epoch
	promote := func() {
		if cs.joining != newM || cs.epoch != epochAtStart {
			return
		}
		// Promote the new member to tail and retire the old one.
		cs.members = append(cs.members, newM)
		cs.joining = nil
		out := cs.members[:0]
		for _, m := range cs.members {
			if m.Switch().Addr() != old {
				out = append(out, m)
			}
		}
		cs.members = out
		c.pushChain(cs)
		c.Stats.Recoveries.Inc()
	}
	to := newM.Switch().Addr()
	delay := c.cfg.ConfigDelay
	c.post(donorSw, func() {
		donor.StartSnapshotTransfer(to, func() {
			donorSw.PostTo(c.eng, delay, promote)
		})
	})
	return nil
}

// --- group management ---

// ManageGroup registers an EWO replica group for register reg and pushes
// the initial membership.
func (c *Controller) ManageGroup(reg uint16, members []GroupMember) {
	gs := &groupState{members: members}
	c.groups[reg] = gs
	c.pushGroup(gs)
}

// AddGroupMember performs EWO recovery: add the switch to the multicast
// group; the periodic synchronization brings it up to date (§6.3).
func (c *Controller) AddGroupMember(reg uint16, m GroupMember) {
	gs, ok := c.groups[reg]
	if !ok {
		return
	}
	gs.members = append(gs.members, m)
	c.pushGroup(gs)
}

func (c *Controller) pushGroup(gs *groupState) {
	gs.epoch++
	c.Stats.GroupReconfig.Inc()
	c.traceInstant("group.config", "epoch", int64(gs.epoch), "members", int64(len(gs.members)))
	gc := wire.GroupConfig{Epoch: gs.epoch}
	for _, m := range gs.members {
		gc.Members = append(gc.Members, uint16(m.Switch().Addr()))
	}
	for _, m := range gs.members {
		cfg := gc
		node := m
		c.ctrlCall(node.Switch(), func() { _ = node.SetGroup(cfg) })
	}
}

func (c *Controller) failGroupMember(gs *groupState, addr netem.Addr) {
	out := gs.members[:0]
	removed := false
	for _, m := range gs.members {
		if m.Switch().Addr() == addr {
			gs.evicted = append(gs.evicted, m)
			removed = true
			continue
		}
		out = append(out, m)
	}
	gs.members = out
	if removed {
		c.pushGroup(gs)
	}
}

// --- revival ---

// handleRevival walks a resumed switch back into every chain and group it
// was evicted from, visiting registers in sorted order (deterministic
// reconfiguration sequence, like handleFailure). Chains take it back as a
// spare and start a recovery when below target strength; groups re-add it
// directly — the next sync period reconciles state both ways (§6.3).
func (c *Controller) handleRevival(addr netem.Addr) {
	regs := c.regScratch[:0]
	for reg := range c.chains {
		regs = append(regs, reg)
	}
	slices.Sort(regs)
	for _, reg := range regs {
		c.reviveChainMember(c.chains[reg], addr)
	}
	regs = regs[:0]
	for reg := range c.groups {
		regs = append(regs, reg)
	}
	slices.Sort(regs)
	c.regScratch = regs
	for _, reg := range regs {
		c.reviveGroupMember(c.groups[reg], addr)
	}
}

func (c *Controller) reviveChainMember(cs *chainState, addr netem.Addr) {
	var revived ChainMember
	out := cs.evicted[:0]
	for _, m := range cs.evicted {
		if revived == nil && m.Switch().Addr() == addr {
			revived = m
			continue
		}
		out = append(out, m)
	}
	cs.evicted = out
	if revived == nil {
		return
	}
	cs.spares = append(cs.spares, revived)
	if cs.joining == nil && len(cs.members) > 0 && len(cs.members) < cs.target {
		// The chain is below strength and idle: rejoin through the normal
		// spare path (BeginJoin + snapshot transfer + tail promotion), which
		// also pushes fresh configs everywhere.
		c.startRecovery(cs)
		return
	}
	// The chain is whole (or busy joining): the revived switch stays a
	// spare. Send it the current configuration so it learns its stale view
	// — in which it may still believe itself a member — is superseded.
	cc := wire.ChainConfig{Epoch: cs.epoch}
	for _, m := range cs.members {
		cc.Members = append(cc.Members, uint16(m.Switch().Addr()))
	}
	if cs.joining != nil {
		cc.Joining = uint16(cs.joining.Switch().Addr())
	}
	node := revived
	c.ctrlCall(node.Switch(), func() { node.SetChain(cc) })
}

func (c *Controller) reviveGroupMember(gs *groupState, addr netem.Addr) {
	var revived GroupMember
	out := gs.evicted[:0]
	for _, m := range gs.evicted {
		if revived == nil && m.Switch().Addr() == addr {
			revived = m
			continue
		}
		out = append(out, m)
	}
	gs.evicted = out
	if revived == nil {
		return
	}
	gs.members = append(gs.members, revived)
	c.pushGroup(gs)
}

// GroupSize returns the current membership size of reg's group.
func (c *Controller) GroupSize(reg uint16) int {
	if gs, ok := c.groups[reg]; ok {
		return len(gs.members)
	}
	return 0
}
