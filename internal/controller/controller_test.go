package controller

import (
	"encoding/binary"
	"testing"
	"time"

	"swishmem/internal/chain"
	"swishmem/internal/ewo"
	"swishmem/internal/netem"
	"swishmem/internal/pisa"
	"swishmem/internal/sim"
	"swishmem/internal/wire"
)

const ctrlAddr netem.Addr = 1000

type rig struct {
	eng   *sim.Engine
	net   *netem.Network
	ctrl  *Controller
	sws   []*pisa.Switch
	cNode []*chain.Node
	eNode []*ewo.Node
}

func newRig(t testing.TB, seed int64, n int) *rig {
	t.Helper()
	eng := sim.NewEngine(seed)
	nw := netem.New(eng, netem.LinkProfile{Latency: 10_000})
	r := &rig{eng: eng, net: nw}
	r.ctrl = New(eng, nw, Config{Addr: ctrlAddr, HeartbeatPeriod: 200 * time.Microsecond})
	for i := 0; i < n; i++ {
		sw := pisa.New(eng, nw, pisa.Config{Addr: netem.Addr(i + 1), PipelinePPS: 1e9})
		cn, err := chain.NewNode(sw, chain.Config{Reg: 1, Capacity: 1024, ValueWidth: 8,
			RetryTimeout: 300 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		en, err := ewo.NewNode(sw, ewo.Config{Reg: 2, Capacity: 1024, Kind: ewo.Counter,
			SyncPeriod: 500 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		sw.SetMsgHandler(func(s *pisa.Switch, from netem.Addr, msg wire.Msg) {
			if cn.Handle(from, msg) {
				return
			}
			en.Handle(from, msg)
		})
		r.ctrl.Monitor(sw)
		r.sws = append(r.sws, sw)
		r.cNode = append(r.cNode, cn)
		r.eNode = append(r.eNode, en)
	}
	return r
}

func (r *rig) chainMembers(idx ...int) []ChainMember {
	out := make([]ChainMember, len(idx))
	for i, j := range idx {
		out[i] = r.cNode[j]
	}
	return out
}

func (r *rig) groupMembers(idx ...int) []GroupMember {
	out := make([]GroupMember, len(idx))
	for i, j := range idx {
		out[i] = r.eNode[j]
	}
	return out
}

func TestConfigDelivery(t *testing.T) {
	r := newRig(t, 1, 3)
	r.ctrl.ManageChain(1, r.chainMembers(0, 1, 2), nil)
	r.ctrl.ManageGroup(2, r.groupMembers(0, 1, 2))
	r.eng.RunFor(time.Millisecond)
	for i, cn := range r.cNode {
		if got := len(cn.Chain().Members); got != 3 {
			t.Fatalf("node %d chain members = %d", i, got)
		}
	}
	for i, en := range r.eNode {
		if got := len(en.Group()); got != 3 {
			t.Fatalf("node %d group = %d", i, got)
		}
	}
	if !r.cNode[0].IsHead() || !r.cNode[2].IsTail() {
		t.Fatal("chain roles wrong")
	}
}

func TestHeartbeatLiveness(t *testing.T) {
	r := newRig(t, 1, 2)
	r.eng.RunFor(5 * time.Millisecond)
	if r.ctrl.Stats.Heartbeats.Value() == 0 {
		t.Fatal("no heartbeats received")
	}
	if r.ctrl.Dead(1) || r.ctrl.Dead(2) {
		t.Fatal("live switch declared dead")
	}
}

func TestFailureDetection(t *testing.T) {
	r := newRig(t, 1, 3)
	var failedAddr netem.Addr
	r.ctrl.OnFailure = func(a netem.Addr) { failedAddr = a }
	r.eng.RunFor(2 * time.Millisecond)
	r.sws[1].Fail()
	r.eng.RunFor(5 * time.Millisecond)
	if !r.ctrl.Dead(2) {
		t.Fatal("failed switch not detected")
	}
	if failedAddr != 2 {
		t.Fatalf("OnFailure got %d", failedAddr)
	}
	if r.ctrl.Dead(1) || r.ctrl.Dead(3) {
		t.Fatal("healthy switch declared dead")
	}
}

func TestChainFailoverEndToEnd(t *testing.T) {
	// Full loop: failure detected by heartbeat timeout, chain shortened,
	// stuck write retried and committed.
	r := newRig(t, 2, 3)
	r.ctrl.ManageChain(1, r.chainMembers(0, 1, 2), nil)
	r.eng.RunFor(time.Millisecond)

	r.sws[1].Fail()
	committedAt := sim.Time(0)
	failedAt := r.eng.Now()
	r.cNode[0].Write(7, []byte("x"), func(ok bool) {
		if ok {
			committedAt = r.eng.Now()
		}
	})
	r.eng.RunFor(50 * time.Millisecond)
	if committedAt == 0 {
		t.Fatal("write never committed after automatic failover")
	}
	if len(r.cNode[0].Chain().Members) != 2 {
		t.Fatalf("chain not shortened: %v", r.cNode[0].Chain().Members)
	}
	t.Logf("write availability restored %v after failure", committedAt.Sub(failedAt))
}

func TestChainRecoveryWithSpare(t *testing.T) {
	r := newRig(t, 3, 4)
	// Chain {1,2,3}, spare {4}.
	r.ctrl.ManageChain(1, r.chainMembers(0, 1, 2), r.chainMembers(3))
	r.eng.RunFor(time.Millisecond)
	// Populate state.
	for i := 0; i < 100; i++ {
		v := make([]byte, 8)
		binary.BigEndian.PutUint64(v, uint64(i))
		r.cNode[0].Write(uint64(i), v, nil)
	}
	r.eng.RunFor(5 * time.Millisecond)

	r.sws[1].Fail()
	r.eng.RunFor(100 * time.Millisecond)

	if r.ctrl.Stats.Recoveries.Value() != 1 {
		t.Fatalf("recoveries = %d", r.ctrl.Stats.Recoveries.Value())
	}
	// Final chain: {1, 3, 4} with 4 as tail.
	cc := r.cNode[0].Chain()
	if len(cc.Members) != 3 || cc.Members[len(cc.Members)-1] != 4 {
		t.Fatalf("final chain = %v", cc.Members)
	}
	if !r.cNode[3].IsTail() {
		t.Fatal("spare not promoted to tail")
	}
	// The spare holds all state.
	for i := 0; i < 100; i++ {
		v, ok := r.cNode[3].Get(uint64(i))
		if !ok || binary.BigEndian.Uint64(v) != uint64(i) {
			t.Fatalf("key %d missing/wrong on recovered tail", i)
		}
	}
	// And the recovered chain still serves writes.
	done := false
	r.cNode[2].Write(999, []byte("post"), func(ok bool) { done = ok })
	r.eng.RunFor(20 * time.Millisecond)
	if !done {
		t.Fatal("write after recovery failed")
	}
}

func TestGroupFailover(t *testing.T) {
	r := newRig(t, 4, 3)
	r.ctrl.ManageGroup(2, r.groupMembers(0, 1, 2))
	r.eng.RunFor(time.Millisecond)
	r.sws[2].Fail()
	r.eng.RunFor(10 * time.Millisecond)
	if r.ctrl.GroupSize(2) != 2 {
		t.Fatalf("group size = %d after failure", r.ctrl.GroupSize(2))
	}
	for _, i := range []int{0, 1} {
		if len(r.eNode[i].Group()) != 2 {
			t.Fatalf("node %d group not updated: %v", i, r.eNode[i].Group())
		}
	}
}

func TestGroupRecoveryJoinBySync(t *testing.T) {
	r := newRig(t, 5, 4)
	r.ctrl.ManageGroup(2, r.groupMembers(0, 1, 2))
	r.eng.RunFor(time.Millisecond)
	for i := 0; i < 60; i++ {
		r.eNode[i%3].Add(uint64(i%6), 1)
	}
	r.eng.RunFor(2 * time.Millisecond)
	// EWO recovery: just add to the group and wait for sync (§6.3).
	r.ctrl.AddGroupMember(2, r.eNode[3])
	r.eng.RunFor(100 * time.Millisecond)
	for k := uint64(0); k < 6; k++ {
		if got := r.eNode[3].Sum(k); got != 10 {
			t.Fatalf("joined switch key %d = %d, want 10", k, got)
		}
	}
}

func TestSpareFailureDuringIdle(t *testing.T) {
	r := newRig(t, 6, 4)
	r.ctrl.ManageChain(1, r.chainMembers(0, 1), r.chainMembers(3))
	r.eng.RunFor(time.Millisecond)
	// The spare dies before ever being needed.
	r.sws[3].Fail()
	r.eng.RunFor(10 * time.Millisecond)
	// Now a member dies: failover must proceed without recovery.
	r.sws[1].Fail()
	r.eng.RunFor(20 * time.Millisecond)
	if got := len(r.cNode[0].Chain().Members); got != 1 {
		t.Fatalf("chain = %v", r.cNode[0].Chain().Members)
	}
	if r.ctrl.Stats.Recoveries.Value() != 0 {
		t.Fatal("recovery ran with a dead spare")
	}
}

func TestChainEpochMonotone(t *testing.T) {
	r := newRig(t, 7, 3)
	r.ctrl.ManageChain(1, r.chainMembers(0, 1, 2), nil)
	e1 := r.ctrl.ChainEpoch(1)
	r.sws[2].Fail()
	r.eng.RunFor(10 * time.Millisecond)
	if e2 := r.ctrl.ChainEpoch(1); e2 <= e1 {
		t.Fatalf("epoch did not advance: %d -> %d", e1, e2)
	}
	if r.ctrl.ChainEpoch(99) != 0 {
		t.Fatal("unknown chain epoch")
	}
}

func TestDirectory(t *testing.T) {
	d := NewDirectory()
	d.Register(1, 10, 11, 12)
	d.Register(2, 10)
	if got := d.Lookup(1); len(got) != 3 || got[0] != 10 {
		t.Fatalf("lookup = %v", got)
	}
	if !d.Holds(1, 11) || d.Holds(1, 99) {
		t.Fatal("holds")
	}
	if err := d.Migrate(1, 12, 20); err != nil {
		t.Fatal(err)
	}
	if d.Holds(1, 12) || !d.Holds(1, 20) {
		t.Fatal("migrate did not move replica")
	}
	if err := d.Migrate(1, 12, 21); err == nil {
		t.Fatal("migrate from non-holder accepted")
	}
	if err := d.Migrate(1, 10, 11); err == nil {
		t.Fatal("migrate to existing holder accepted")
	}
	d.RemoveReplica(2, 10)
	if len(d.Lookup(2)) != 0 {
		t.Fatal("remove failed")
	}
	if regs := d.Registers(); len(regs) != 2 || regs[0] != 1 {
		t.Fatalf("registers = %v", regs)
	}
}

func TestHeartbeatAfterDeadIsRecorded(t *testing.T) {
	r := newRig(t, 8, 2)
	r.eng.RunFor(2 * time.Millisecond)
	r.sws[1].Fail()
	r.eng.RunFor(5 * time.Millisecond)
	if !r.ctrl.Dead(2) {
		t.Fatal("not detected")
	}
	// A heartbeat from a "dead" switch clears the flag (operator re-adds it
	// to chains/groups explicitly).
	r.ctrl.receive(2, &wire.Heartbeat{From: 2, Seq: 1}, 11)
	if r.ctrl.Dead(2) {
		t.Fatal("revived switch still dead")
	}
}

func TestPlannedMigration(t *testing.T) {
	// §9 extension: replace a chain member without a failure. Writes keep
	// committing throughout, and the retired switch ends up out of the chain
	// while the new one holds the full state as tail.
	r := newRig(t, 9, 4)
	r.ctrl.ManageChain(1, r.chainMembers(0, 1, 2), nil)
	r.eng.RunFor(time.Millisecond)
	for i := 0; i < 80; i++ {
		v := make([]byte, 8)
		binary.BigEndian.PutUint64(v, uint64(i))
		r.cNode[0].Write(uint64(i), v, nil)
	}
	r.eng.RunFor(10 * time.Millisecond)

	// Migrate: retire switch 2 (addr 2), bring in switch 4.
	if err := r.ctrl.ReplaceChainMember(1, 2, r.cNode[3]); err != nil {
		t.Fatal(err)
	}
	// Writes continue during the migration.
	committed := 0
	for i := 80; i < 120; i++ {
		v := make([]byte, 8)
		binary.BigEndian.PutUint64(v, uint64(i))
		r.cNode[0].Write(uint64(i), v, func(ok bool) {
			if ok {
				committed++
			}
		})
		r.eng.RunFor(200 * time.Microsecond)
	}
	r.eng.RunFor(100 * time.Millisecond)
	if committed != 40 {
		t.Fatalf("only %d/40 writes committed during migration", committed)
	}
	cc := r.cNode[0].Chain()
	for _, m := range cc.Members {
		if m == 2 {
			t.Fatalf("retired switch still in chain %v", cc.Members)
		}
	}
	if cc.Members[len(cc.Members)-1] != 4 {
		t.Fatalf("new member not tail: %v", cc.Members)
	}
	// The new member holds everything.
	for i := 0; i < 120; i++ {
		if _, ok := r.cNode[3].Get(uint64(i)); !ok {
			t.Fatalf("key %d missing on migrated-in switch", i)
		}
	}
}

func TestMigrationErrors(t *testing.T) {
	r := newRig(t, 10, 4)
	r.ctrl.ManageChain(1, r.chainMembers(0, 1), nil)
	r.eng.RunFor(time.Millisecond)
	if err := r.ctrl.ReplaceChainMember(99, 1, r.cNode[3]); err == nil {
		t.Fatal("unknown register accepted")
	}
	if err := r.ctrl.ReplaceChainMember(1, 77, r.cNode[3]); err == nil {
		t.Fatal("non-member old switch accepted")
	}
	if err := r.ctrl.ReplaceChainMember(1, 2, r.cNode[3]); err != nil {
		t.Fatal(err)
	}
	// Second concurrent migration must be refused.
	if err := r.ctrl.ReplaceChainMember(1, 1, r.cNode[2]); err == nil {
		t.Fatal("concurrent migration accepted")
	}
}

func TestFailureDuringRecoveryRestartsTransfer(t *testing.T) {
	// A second member dies while the spare's snapshot transfer is running:
	// the old-epoch transfer is abandoned and restarted under the new
	// configuration, so the join still completes.
	r := newRig(t, 11, 4)
	r.ctrl.ManageChain(1, r.chainMembers(0, 1, 2), r.chainMembers(3))
	r.eng.RunFor(time.Millisecond)
	for i := 0; i < 400; i++ {
		v := make([]byte, 8)
		binary.BigEndian.PutUint64(v, uint64(i))
		r.cNode[0].Write(uint64(i), v, nil)
	}
	r.eng.RunFor(50 * time.Millisecond)

	r.sws[1].Fail() // triggers recovery: spare 4 starts joining
	// Let detection fire and the transfer start, then kill another member.
	r.eng.RunFor(3 * time.Millisecond)
	r.sws[2].Fail()
	r.eng.RunFor(300 * time.Millisecond)

	if r.ctrl.Stats.Recoveries.Value() != 1 {
		t.Fatalf("recoveries = %d; interrupted transfer never restarted", r.ctrl.Stats.Recoveries.Value())
	}
	cc := r.cNode[0].Chain()
	if cc.Joining != 0 {
		t.Fatalf("join still pending: %+v", cc)
	}
	if len(cc.Members) != 2 || cc.Members[1] != 4 {
		t.Fatalf("final chain = %v, want [1 4]", cc.Members)
	}
	for i := 0; i < 400; i++ {
		if _, ok := r.cNode[3].Get(uint64(i)); !ok {
			t.Fatalf("key %d missing on recovered tail", i)
		}
	}
}
