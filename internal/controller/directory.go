package controller

import (
	"fmt"
	"sort"

	"swishmem/internal/netem"
)

// Directory implements the §9 extension: a controller-side directory service
// (in the vein of cache-coherence directories) tracking which switches
// replicate which registers, so state with locality need not be replicated
// everywhere. Lookups answer "who holds register R"; migrations move a
// replica between switches.
//
// The directory is deliberately control-plane-only metadata: the data-plane
// protocols never consult it on the packet path.
type Directory struct {
	replicas map[uint16]map[netem.Addr]bool
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{replicas: make(map[uint16]map[netem.Addr]bool)}
}

// Register records that reg is replicated on addrs.
func (d *Directory) Register(reg uint16, addrs ...netem.Addr) {
	m, ok := d.replicas[reg]
	if !ok {
		m = make(map[netem.Addr]bool)
		d.replicas[reg] = m
	}
	for _, a := range addrs {
		m[a] = true
	}
}

// Lookup returns the sorted replica set for reg.
func (d *Directory) Lookup(reg uint16) []netem.Addr {
	m := d.replicas[reg]
	out := make([]netem.Addr, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Holds reports whether addr replicates reg.
func (d *Directory) Holds(reg uint16, addr netem.Addr) bool {
	return d.replicas[reg][addr]
}

// RemoveReplica forgets one replica of reg.
func (d *Directory) RemoveReplica(reg uint16, addr netem.Addr) {
	delete(d.replicas[reg], addr)
}

// Migrate atomically moves reg's replica record from one switch to another.
// It fails if the source does not hold the register or the destination
// already does — callers drive the actual state transfer (snapshot) first
// and then update the directory.
func (d *Directory) Migrate(reg uint16, from, to netem.Addr) error {
	m := d.replicas[reg]
	if !m[from] {
		return fmt.Errorf("directory: switch %d does not hold register %d", from, reg)
	}
	if m[to] {
		return fmt.Errorf("directory: switch %d already holds register %d", to, reg)
	}
	delete(m, from)
	m[to] = true
	return nil
}

// Registers returns all registered register IDs, sorted.
func (d *Directory) Registers() []uint16 {
	out := make([]uint16, 0, len(d.replicas))
	for r := range d.replicas {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
