// Live is the cross-process variant of the controller. The simulated
// Controller delivers configuration by direct control-plane calls into
// co-resident switch objects — impossible across processes — so Live speaks
// the wire protocol end to end: members announce themselves with Hello, the
// controller answers with the PeerList directory (§9's directory service),
// heartbeats arrive as ordinary wire messages, and chain/group configuration
// is broadcast as ChainConfig/GroupConfig datagrams.
//
// Two deliberate restrictions versus the simulated controller:
//
//   - Configuration messages carry no register id on the wire, so a Live
//     deployment uses uniform membership: every chain register shares one
//     chain, every EWO register shares one group (core.Instance fans a
//     received config out to all registers of the matching kind).
//   - Configuration travels over the same lossy UDP as everything else, so
//     delivery is eventual, not reliable: the controller re-broadcasts the
//     current configs every ResendPeriod and receivers apply equal-epoch
//     configs idempotently.
//
// There is no cross-process snapshot recovery (spare promotion): a dead
// member is routed around (chain shortened, group membership trimmed), which
// is the §6.3 failover half; EWO recovery by re-sync works unchanged since
// it needs only membership.
package controller

import (
	"slices"
	"time"

	"swishmem/internal/netem"
	"swishmem/internal/netem/live"
	"swishmem/internal/sim"
	"swishmem/internal/wire"
)

// LiveConfig holds live-controller parameters.
type LiveConfig struct {
	// Fabric is the controller's own fabric (not started yet). Required.
	Fabric *live.Fabric
	// Members lists the expected cluster, in chain order. Required.
	Members []netem.Addr
	// HeartbeatPeriod is the expected member heartbeat interval. Default 20ms
	// (wall clock — live deployments beat much slower than the simulated
	// microsecond-scale fabric).
	HeartbeatPeriod sim.Duration
	// FailureTimeout declares a member dead after this much silence.
	// Default 10x the heartbeat period: over real sockets a tight timeout
	// converts scheduler hiccups into spurious failovers.
	FailureTimeout sim.Duration
	// ResendPeriod is the config/PeerList re-broadcast interval (UDP makes
	// config delivery eventual, not reliable). Default 100ms.
	ResendPeriod sim.Duration
}

func (c LiveConfig) withDefaults() LiveConfig {
	if c.HeartbeatPeriod == 0 {
		c.HeartbeatPeriod = 20 * time.Millisecond
	}
	if c.FailureTimeout == 0 {
		c.FailureTimeout = 10 * c.HeartbeatPeriod
	}
	if c.ResendPeriod == 0 {
		c.ResendPeriod = 100 * time.Millisecond
	}
	return c
}

// LiveStats counts live-controller events.
type LiveStats struct {
	Hellos        uint64
	Heartbeats    uint64
	FailuresSeen  uint64
	PeerListSends uint64
	ConfigSends   uint64
}

// Live is the cross-process controller. All state lives on the fabric's pump
// goroutine (system handler + engine timers); external readers go through
// Fabric.Call.
type Live struct {
	f   *live.Fabric
	eng *sim.Engine
	cfg LiveConfig

	present  map[netem.Addr]bool
	lastBeat map[netem.Addr]sim.Time
	dead     map[netem.Addr]bool

	peersEpoch uint32
	chainEpoch uint32
	groupEpoch uint32
	members    []netem.Addr // alive members, chain order
	configured bool

	scratch []netem.Addr

	Stats LiveStats
}

// NewLive wires a live controller onto its fabric (system handler plus scan
// and resend timers). Call before Fabric.Start.
func NewLive(cfg LiveConfig) *Live {
	cfg = cfg.withDefaults()
	l := &Live{
		f:        cfg.Fabric,
		eng:      cfg.Fabric.Engine(),
		cfg:      cfg,
		present:  make(map[netem.Addr]bool),
		lastBeat: make(map[netem.Addr]sim.Time),
		dead:     make(map[netem.Addr]bool),
	}
	l.f.SetSystemHandler(l.handle)
	l.eng.Every(cfg.HeartbeatPeriod, l.scan)
	l.eng.Every(cfg.ResendPeriod, l.resend)
	return l
}

// handle consumes the control-plane message types; everything else would be
// a protocol message, which the controller has no switch to deliver to.
func (l *Live) handle(from netem.Addr, msg wire.Msg) bool {
	switch m := msg.(type) {
	case *wire.Hello:
		l.Stats.Hellos++
		addr := netem.Addr(m.From)
		if !l.present[addr] {
			l.present[addr] = true
			l.lastBeat[addr] = l.eng.Now()
			l.peersEpoch++
			l.broadcastPeers()
		} else {
			// The member repeats Hello until it sees a PeerList; the earlier
			// one was lost, so answer directly.
			l.sendPeers(addr)
		}
		l.maybeConfigure()
		return true
	case *wire.Heartbeat:
		l.Stats.Heartbeats++
		l.lastBeat[netem.Addr(m.From)] = l.eng.Now()
		return true
	}
	return true // nothing else is meaningful at the controller; drop it
}

// peerList builds the current directory from the transport's learned
// endpoints.
func (l *Live) peerList() *wire.PeerList {
	pl := &wire.PeerList{Epoch: l.peersEpoch}
	addrs := l.sortedPresent()
	for _, a := range addrs {
		ap, ok := l.f.Node().Peer(a)
		if !ok {
			continue
		}
		ip := ap.Addr().Unmap().As4()
		pl.Peers = append(pl.Peers, wire.PeerEntry{Addr: uint16(a), IP: ip, Port: ap.Port()})
	}
	return pl
}

func (l *Live) sortedPresent() []netem.Addr {
	addrs := l.scratch[:0]
	for a := range l.present {
		addrs = append(addrs, a)
	}
	slices.Sort(addrs)
	l.scratch = addrs
	return addrs
}

func (l *Live) broadcastPeers() {
	pl := l.peerList()
	for _, a := range l.sortedPresent() {
		if l.dead[a] {
			continue
		}
		l.Stats.PeerListSends++
		_ = l.f.Node().Send(a, pl)
	}
}

func (l *Live) sendPeers(addr netem.Addr) {
	l.Stats.PeerListSends++
	_ = l.f.Node().Send(addr, l.peerList())
}

// maybeConfigure pushes the initial chain/group configuration once every
// expected member has announced itself.
func (l *Live) maybeConfigure() {
	if l.configured {
		return
	}
	for _, a := range l.cfg.Members {
		if !l.present[a] {
			return
		}
	}
	l.configured = true
	l.members = append([]netem.Addr(nil), l.cfg.Members...)
	l.chainEpoch++
	l.groupEpoch++
	l.pushConfigs()
}

// pushConfigs broadcasts the current chain and group configuration to every
// alive member.
func (l *Live) pushConfigs() {
	cc := &wire.ChainConfig{Epoch: l.chainEpoch}
	gc := &wire.GroupConfig{Epoch: l.groupEpoch}
	for _, a := range l.members {
		cc.Members = append(cc.Members, uint16(a))
		gc.Members = append(gc.Members, uint16(a))
	}
	for _, a := range l.members {
		l.Stats.ConfigSends += 2
		_ = l.f.Node().Send(a, cc)
		_ = l.f.Node().Send(a, gc)
	}
}

// scan declares members dead after FailureTimeout of silence and shrinks the
// chain and group around them. Addresses are visited in sorted order so
// simultaneous failures reconfigure deterministically.
func (l *Live) scan() {
	if !l.configured {
		return
	}
	now := l.eng.Now()
	addrs := l.scratch[:0]
	for a := range l.lastBeat {
		addrs = append(addrs, a)
	}
	slices.Sort(addrs)
	l.scratch = addrs
	changed := false
	for _, a := range addrs {
		if l.dead[a] || now.Sub(l.lastBeat[a]) < l.cfg.FailureTimeout {
			continue
		}
		l.dead[a] = true
		l.Stats.FailuresSeen++
		out := l.members[:0]
		for _, m := range l.members {
			if m != a {
				out = append(out, m)
			}
		}
		l.members = out
		changed = true
	}
	if changed {
		l.chainEpoch++
		l.groupEpoch++
		l.pushConfigs()
	}
}

// resend re-broadcasts the directory and current configs (lossy transport:
// receivers apply equal epochs idempotently, so this converges).
func (l *Live) resend() {
	if len(l.present) > 0 {
		l.broadcastPeers()
	}
	if l.configured {
		l.pushConfigs()
	}
}

// Present reports whether addr has announced itself. Pump goroutine only
// (use Fabric.Call from outside).
func (l *Live) Present(addr netem.Addr) bool { return l.present[addr] }

// Configured reports whether the initial configuration has been pushed.
// Pump goroutine only.
func (l *Live) Configured() bool { return l.configured }

// ChainEpoch returns the current chain epoch. Pump goroutine only.
func (l *Live) ChainEpoch() uint32 { return l.chainEpoch }

// AliveMembers returns the current membership. Pump goroutine only.
func (l *Live) AliveMembers() []netem.Addr {
	return append([]netem.Addr(nil), l.members...)
}

// Dead reports whether addr has been declared failed. Pump goroutine only.
func (l *Live) Dead(addr netem.Addr) bool { return l.dead[addr] }
