package controller

import (
	"slices"
	"testing"
	"time"

	"swishmem/internal/wire"
)

// TestPauseResumeFailureDetector is the table-driven face of the GC-pause
// trap: a switch that freezes and later resumes (stop-the-world pause,
// scheduler stall, control-plane hiccup) must land in exactly one of two
// clean outcomes. Either the pause is shorter than the failure timeout and
// the detector rides it out — no eviction, no reconfiguration, no spurious
// epoch bump — or it is longer, the switch is cleanly evicted, and on resume
// its heartbeats walk it back in via the spare path. What is never allowed
// is the in-between: a revived switch serving an old-epoch chain alongside
// the reconfigured one (split-brain membership).
func TestPauseResumeFailureDetector(t *testing.T) {
	// Rig constants: HeartbeatPeriod 200µs → FailureTimeout 800µs (4×).
	cases := []struct {
		name      string
		pause     time.Duration
		wantEvict bool
	}{
		// Max observed silence ≈ pause + one heartbeat period + link latency
		// ≈ 610µs < 800µs: the detector must ride this out.
		{"short-pause-rides-out", 400 * time.Microsecond, false},
		// 5ms of silence blows the timeout several times over: clean
		// eviction mid-pause, then rejoin through recovery after resume.
		{"long-pause-evicts-then-rejoins", 5 * time.Millisecond, true},
		// Pause straddling the threshold boundary region from above: barely
		// past the timeout still means a full, clean evict/rejoin cycle —
		// not a half-applied reconfiguration.
		{"marginal-pause-evicts-cleanly", 1200 * time.Microsecond, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(t, 21, 3)
			r.ctrl.ManageChain(1, r.chainMembers(0, 1, 2), nil)
			r.ctrl.ManageGroup(2, r.groupMembers(0, 1, 2))
			r.eng.RunFor(2 * time.Millisecond)
			const victim = 1 // switch addr 2, chain middle
			epoch0 := r.ctrl.ChainEpoch(1)

			r.sws[victim].Pause()
			r.eng.RunFor(tc.pause)
			if got := r.ctrl.Dead(2); got != tc.wantEvict {
				t.Fatalf("mid-pause Dead(2) = %v, want %v", got, tc.wantEvict)
			}
			r.sws[victim].Resume()
			r.eng.RunFor(50 * time.Millisecond)

			// Whichever branch was taken, the detector must settle with the
			// victim alive again.
			if r.ctrl.Dead(2) {
				t.Fatal("resumed switch still marked dead")
			}
			if tc.wantEvict {
				if got := r.ctrl.Stats.Revivals.Value(); got != 1 {
					t.Fatalf("revivals = %d, want 1", got)
				}
				if got := r.ctrl.Stats.Recoveries.Value(); got != 1 {
					t.Fatalf("recoveries = %d, want 1 (rejoin must use the spare path)", got)
				}
				if e := r.ctrl.ChainEpoch(1); e <= epoch0 {
					t.Fatalf("epoch not advanced by evict/rejoin: %d -> %d", epoch0, e)
				}
			} else {
				if got := r.ctrl.Stats.FailuresSeen.Value(); got != 0 {
					t.Fatalf("short pause declared %d failures", got)
				}
				if got := r.ctrl.Stats.Revivals.Value(); got != 0 {
					t.Fatalf("revivals = %d without an eviction", got)
				}
				if e := r.ctrl.ChainEpoch(1); e != epoch0 {
					t.Fatalf("spurious reconfiguration: epoch %d -> %d", epoch0, e)
				}
			}

			// No split-brain: the highest epoch any node holds is the one true
			// configuration. Every node on that epoch must agree on membership
			// exactly, and no node the current chain lists as a member may
			// still be serving a stale epoch.
			var cur wire.ChainConfig
			for _, cn := range r.cNode {
				if cc := cn.Chain(); cc.Epoch > cur.Epoch {
					cur = cc
				}
			}
			for i, cn := range r.cNode {
				cc := cn.Chain()
				if cc.Epoch == cur.Epoch && !slices.Equal(cc.Members, cur.Members) {
					t.Fatalf("split-brain: node %d holds members %v, node(s) at epoch %d hold %v",
						i+1, cc.Members, cur.Epoch, cur.Members)
				}
				if cc.Epoch < cur.Epoch && slices.Contains(cur.Members, uint16(i+1)) {
					t.Fatalf("member %d of the epoch-%d chain still serves stale epoch %d",
						i+1, cur.Epoch, cc.Epoch)
				}
			}
			if len(cur.Members) != 3 {
				t.Fatalf("chain not back to full strength: %v", cur.Members)
			}

			// Functionally no split-brain either: a write threads the whole
			// (possibly re-formed) chain, and a counter delta reaches the
			// revived switch through the re-joined group.
			committed := false
			head := int(cur.Members[0]) - 1
			r.cNode[head].Write(7, []byte("postpause"), func(ok bool) { committed = ok })
			r.eNode[0].Add(42, 5)
			r.eng.RunFor(20 * time.Millisecond)
			if !committed {
				t.Fatal("write did not commit after pause/resume settled")
			}
			if got := r.eNode[victim].Sum(42); got != 5 {
				t.Fatalf("revived switch counter sum = %d, want 5 (group rejoin broken)", got)
			}
		})
	}
}
