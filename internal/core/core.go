// Package core is the SwiShmem layer proper: it binds the replication
// protocols (chain for SRO/ERO, ewo for EWO) to a switch and exposes the
// three register abstractions of §5 as typed handles. One Instance runs per
// switch; it owns the switch's protocol message routing (demultiplexing by
// register ID, standing in for the compiler of §5 that "could be used to
// translate regular P4 register accesses into SwiShmem operations").
package core

import (
	"fmt"
	"slices"

	"swishmem/internal/chain"
	"swishmem/internal/chain/ctrlplane"
	"swishmem/internal/ewo"
	"swishmem/internal/netem"
	"swishmem/internal/pisa"
	"swishmem/internal/wire"
)

// Consistency selects the register class (§5).
type Consistency int

// Register classes.
const (
	// Strong is SRO: linearizable, reads local unless pending.
	Strong Consistency = iota
	// EventualRead is ERO: bounded-latency local reads, eventual.
	EventualRead
	// EventualWrite is EWO: cheap reads and writes, eventual.
	EventualWrite
)

func (c Consistency) String() string {
	switch c {
	case EventualRead:
		return "ERO"
	case EventualWrite:
		return "EWO"
	default:
		return "SRO"
	}
}

// Instance is the per-switch SwiShmem runtime: protocol nodes keyed by
// register ID plus the message router.
type Instance struct {
	sw     *pisa.Switch
	chains map[uint16]chain.Replicator
	ewos   map[uint16]*ewo.Node
	cps    map[uint16]*ctrlplane.Node
}

// NewInstance creates the runtime and installs itself as the switch's
// protocol message handler (data and control plane).
func NewInstance(sw *pisa.Switch) *Instance {
	in := &Instance{
		sw:     sw,
		chains: make(map[uint16]chain.Replicator),
		ewos:   make(map[uint16]*ewo.Node),
		cps:    make(map[uint16]*ctrlplane.Node),
	}
	sw.SetMsgHandler(func(s *pisa.Switch, from netem.Addr, msg wire.Msg) {
		in.route(from, msg)
	})
	sw.SetCtrlMsgHandler(func(from netem.Addr, msg wire.Msg) {
		in.routeCtrl(from, msg)
	})
	return in
}

// Switch returns the underlying switch.
func (in *Instance) Switch() *pisa.Switch { return in.sw }

// route dispatches a data-plane protocol message by register ID.
func (in *Instance) route(from netem.Addr, msg wire.Msg) {
	switch m := msg.(type) {
	case *wire.Write:
		if n, ok := in.chains[m.Reg]; ok {
			n.Handle(from, m)
		}
	case *wire.WriteAck:
		if n, ok := in.chains[m.Reg]; ok {
			n.Handle(from, m)
		}
	case *wire.ReadFwd:
		if n, ok := in.chains[m.Reg]; ok {
			n.Handle(from, m)
		}
	case *wire.ReadReply:
		if n, ok := in.chains[m.Reg]; ok {
			n.Handle(from, m)
		}
	case *wire.ChainNack:
		if n, ok := in.chains[m.Reg]; ok {
			n.Handle(from, m)
		}
	case *wire.ChainCursor:
		if n, ok := in.chains[m.Reg]; ok {
			n.Handle(from, m)
		}
	case *wire.EWOUpdate:
		if n, ok := in.ewos[m.Reg]; ok {
			n.Handle(from, m)
			return
		}
		// Control-plane baseline registers handle their updates on the
		// co-processor. The callback outlives this handler, so hold a
		// reference: pooled cross-shard clones are recycled once the
		// data-plane dispatch releases them.
		if n, ok := in.cps[m.Reg]; ok {
			m.Ref()
			in.sw.CtrlDo(func() {
				n.HandleCtrl(from, m)
				m.Release()
			})
		}
	case *wire.ChainConfig:
		// Sorted fan-out: config application order must not depend on map
		// iteration (per-register side effects like retries are scheduled as
		// the config lands).
		in.EachChain(func(_ uint16, n chain.Replicator) { n.SetChain(*m) })
	case *wire.GroupConfig:
		in.EachEWO(func(_ uint16, n *ewo.Node) { _ = n.SetGroup(*m) })
	}
}

// routeCtrl dispatches messages that arrived directly at the control plane.
func (in *Instance) routeCtrl(from netem.Addr, msg wire.Msg) {
	if m, ok := msg.(*wire.EWOUpdate); ok {
		if n, ok := in.cps[m.Reg]; ok {
			n.HandleCtrl(from, m)
			return
		}
	}
	in.route(from, msg)
}

// StrongRegister is the SRO/ERO handle NFs program against. The replication
// backend behind it (chain or retransmit) is selected by cfg.Replication.
type StrongRegister struct {
	node chain.Replicator
}

// NewStrongRegister declares an SRO (Strong) or ERO (EventualRead) register
// on this switch.
func (in *Instance) NewStrongRegister(cons Consistency, cfg chain.Config) (*StrongRegister, error) {
	switch cons {
	case Strong:
		cfg.Mode = chain.SRO
	case EventualRead:
		cfg.Mode = chain.ERO
	default:
		return nil, fmt.Errorf("core: %v is not a chain-replicated class", cons)
	}
	if _, dup := in.chains[cfg.Reg]; dup {
		return nil, fmt.Errorf("core: register %d already declared", cfg.Reg)
	}
	n, err := chain.New(in.sw, cfg)
	if err != nil {
		return nil, err
	}
	in.chains[cfg.Reg] = n
	return &StrongRegister{node: n}, nil
}

// Node exposes the protocol node (controller registration, tests).
func (r *StrongRegister) Node() chain.Replicator { return r.node }

// Write submits a replicated write; done fires on commit (or failure).
func (r *StrongRegister) Write(key uint64, val []byte, done func(committed bool)) {
	r.node.Write(key, val, done)
}

// Read reads the register under the declared consistency.
func (r *StrongRegister) Read(key uint64, fn func(val []byte, ok bool)) {
	r.node.Read(key, fn)
}

// MemoryBytes returns this register's SRAM cost on this switch.
func (r *StrongRegister) MemoryBytes() int { return r.node.MemoryBytes() }

// EventualRegister is the EWO LWW handle.
type EventualRegister struct {
	node *ewo.Node
}

// NewEventualRegister declares an EWO last-writer-wins register.
func (in *Instance) NewEventualRegister(cfg ewo.Config) (*EventualRegister, error) {
	cfg.Kind = ewo.LWW
	if _, dup := in.ewos[cfg.Reg]; dup {
		return nil, fmt.Errorf("core: register %d already declared", cfg.Reg)
	}
	n, err := ewo.NewNode(in.sw, cfg)
	if err != nil {
		return nil, err
	}
	in.ewos[cfg.Reg] = n
	return &EventualRegister{node: n}, nil
}

// Node exposes the protocol node.
func (r *EventualRegister) Node() *ewo.Node { return r.node }

// Write applies locally and replicates asynchronously (never blocks).
func (r *EventualRegister) Write(key uint64, val []byte) { r.node.Write(key, val) }

// Read returns the local replica value.
func (r *EventualRegister) Read(key uint64) ([]byte, bool) { return r.node.Read(key) }

// MemoryBytes returns this register's SRAM cost on this switch.
func (r *EventualRegister) MemoryBytes() int { return r.node.MemoryBytes() }

// CounterRegister is the EWO counter-CRDT handle (§6.2's "natural
// application").
type CounterRegister struct {
	node *ewo.Node
}

// NewCounterRegister declares an EWO G-counter (or PN-counter) register.
func (in *Instance) NewCounterRegister(cfg ewo.Config) (*CounterRegister, error) {
	if cfg.Kind == ewo.LWW {
		cfg.Kind = ewo.Counter
	}
	if _, dup := in.ewos[cfg.Reg]; dup {
		return nil, fmt.Errorf("core: register %d already declared", cfg.Reg)
	}
	n, err := ewo.NewNode(in.sw, cfg)
	if err != nil {
		return nil, err
	}
	in.ewos[cfg.Reg] = n
	return &CounterRegister{node: n}, nil
}

// Node exposes the protocol node.
func (r *CounterRegister) Node() *ewo.Node { return r.node }

// Add increments the counter (local + async replication).
func (r *CounterRegister) Add(key uint64, delta uint64) { r.node.Add(key, delta) }

// Sub decrements (PN-counters only).
func (r *CounterRegister) Sub(key uint64, delta uint64) { r.node.Sub(key, delta) }

// Sum reads the merged counter value.
func (r *CounterRegister) Sum(key uint64) uint64 { return r.node.Sum(key) }

// MemoryBytes returns this register's SRAM cost on this switch.
func (r *CounterRegister) MemoryBytes() int { return r.node.MemoryBytes() }

// BaselineCounter is the §3.3 control-plane-replicated baseline handle.
type BaselineCounter struct {
	node *ctrlplane.Node
}

// NewBaselineCounter declares a control-plane-replicated counter (baseline
// for experiments; not part of the SwiShmem design).
func (in *Instance) NewBaselineCounter(cfg ctrlplane.Config) (*BaselineCounter, error) {
	if _, dup := in.cps[cfg.Reg]; dup {
		return nil, fmt.Errorf("core: register %d already declared", cfg.Reg)
	}
	n, err := ctrlplane.NewNode(in.sw, cfg)
	if err != nil {
		return nil, err
	}
	in.cps[cfg.Reg] = n
	return &BaselineCounter{node: n}, nil
}

// Node exposes the baseline node.
func (r *BaselineCounter) Node() *ctrlplane.Node { return r.node }

// Add increments locally and queues control-plane replication.
func (r *BaselineCounter) Add(key uint64, delta uint64) { r.node.Add(key, delta) }

// Sum reads the local replica.
func (r *BaselineCounter) Sum(key uint64) uint64 { return r.node.Sum(key) }

// Backlog returns the control-plane replication queue length.
func (r *BaselineCounter) Backlog() int { return r.node.Backlog() }

// MemoryTotal returns the switch SRAM consumed by all declared registers.
func (in *Instance) MemoryTotal() int { return in.sw.MemoryUsed() }

// EachChain visits every declared chain register node in ascending register
// order (deterministic for metrics registration and dumps).
func (in *Instance) EachChain(fn func(reg uint16, n chain.Replicator)) {
	for _, reg := range sortedRegs(in.chains) {
		fn(reg, in.chains[reg])
	}
}

// EachEWO visits every declared EWO register node in ascending register
// order.
func (in *Instance) EachEWO(fn func(reg uint16, n *ewo.Node)) {
	for _, reg := range sortedRegs(in.ewos) {
		fn(reg, in.ewos[reg])
	}
}

func sortedRegs[V any](m map[uint16]V) []uint16 {
	regs := make([]uint16, 0, len(m))
	for reg := range m {
		regs = append(regs, reg)
	}
	slices.Sort(regs)
	return regs
}

// StrongHandle returns a handle for an already-declared chain register.
func (in *Instance) StrongHandle(reg uint16) (*StrongRegister, error) {
	n, ok := in.chains[reg]
	if !ok {
		return nil, fmt.Errorf("core: chain register %d not declared", reg)
	}
	return &StrongRegister{node: n}, nil
}

// CounterHandle returns a handle for an already-declared EWO counter.
func (in *Instance) CounterHandle(reg uint16) (*CounterRegister, error) {
	n, ok := in.ewos[reg]
	if !ok {
		return nil, fmt.Errorf("core: ewo register %d not declared", reg)
	}
	if n.Config().Kind == ewo.LWW {
		return nil, fmt.Errorf("core: register %d is LWW, not a counter", reg)
	}
	return &CounterRegister{node: n}, nil
}

// EventualHandle returns a handle for an already-declared EWO LWW register.
func (in *Instance) EventualHandle(reg uint16) (*EventualRegister, error) {
	n, ok := in.ewos[reg]
	if !ok {
		return nil, fmt.Errorf("core: ewo register %d not declared", reg)
	}
	if n.Config().Kind != ewo.LWW {
		return nil, fmt.Errorf("core: register %d is a counter, not LWW", reg)
	}
	return &EventualRegister{node: n}, nil
}
