package core

import (
	"testing"
	"time"

	"swishmem/internal/chain"
	"swishmem/internal/chain/ctrlplane"
	"swishmem/internal/ewo"
	"swishmem/internal/netem"
	"swishmem/internal/pisa"
	"swishmem/internal/sim"
	"swishmem/internal/wire"
)

type rig struct {
	eng  *sim.Engine
	net  *netem.Network
	ins  []*Instance
	regS []*StrongRegister
	regC []*CounterRegister
	regL []*EventualRegister
}

func newRig(t testing.TB, seed int64, n int) *rig {
	t.Helper()
	eng := sim.NewEngine(seed)
	nw := netem.New(eng, netem.LinkProfile{Latency: 10_000})
	r := &rig{eng: eng, net: nw}
	var members []uint16
	for i := 0; i < n; i++ {
		sw := pisa.New(eng, nw, pisa.Config{Addr: netem.Addr(i + 1), PipelinePPS: 1e9})
		in := NewInstance(sw)
		s, err := in.NewStrongRegister(Strong, chain.Config{Reg: 1, Capacity: 256, ValueWidth: 16})
		if err != nil {
			t.Fatal(err)
		}
		c, err := in.NewCounterRegister(ewo.Config{Reg: 2, Capacity: 256})
		if err != nil {
			t.Fatal(err)
		}
		l, err := in.NewEventualRegister(ewo.Config{Reg: 3, Capacity: 256, ValueWidth: 16})
		if err != nil {
			t.Fatal(err)
		}
		r.ins = append(r.ins, in)
		r.regS = append(r.regS, s)
		r.regC = append(r.regC, c)
		r.regL = append(r.regL, l)
		members = append(members, uint16(i+1))
	}
	cc := wire.ChainConfig{Epoch: 1, Members: members}
	gc := wire.GroupConfig{Epoch: 1, Members: members}
	for _, in := range r.ins {
		for _, cn := range in.chains {
			cn.SetChain(cc)
		}
		for _, en := range in.ewos {
			if err := en.SetGroup(gc); err != nil {
				t.Fatal(err)
			}
		}
	}
	return r
}

func TestMultiRegisterRouting(t *testing.T) {
	// Three register types on the same switches, messages demultiplexed by
	// register ID, all protocols working concurrently.
	r := newRig(t, 1, 3)
	committed := false
	r.regS[0].Write(10, []byte("strong"), func(ok bool) { committed = ok })
	r.regC[1].Add(10, 5)
	r.regL[2].Write(10, []byte("lww"))
	r.eng.RunFor(10 * time.Millisecond)

	if !committed {
		t.Fatal("SRO write not committed")
	}
	got := ""
	r.regS[2].Read(10, func(v []byte, ok bool) { got = string(v) })
	if got != "strong" {
		t.Fatalf("SRO read = %q", got)
	}
	for i := 0; i < 3; i++ {
		if r.regC[i].Sum(10) != 5 {
			t.Fatalf("counter at %d = %d", i, r.regC[i].Sum(10))
		}
		if v, ok := r.regL[i].Read(10); !ok || string(v) != "lww" {
			t.Fatalf("lww at %d = %q %v", i, v, ok)
		}
	}
}

func TestDuplicateRegisterIDRejected(t *testing.T) {
	r := newRig(t, 1, 1)
	in := r.ins[0]
	if _, err := in.NewStrongRegister(Strong, chain.Config{Reg: 1, Capacity: 8, ValueWidth: 8}); err == nil {
		t.Fatal("duplicate chain register accepted")
	}
	if _, err := in.NewCounterRegister(ewo.Config{Reg: 2, Capacity: 8}); err == nil {
		t.Fatal("duplicate ewo register accepted")
	}
	if _, err := in.NewEventualRegister(ewo.Config{Reg: 3, Capacity: 8, ValueWidth: 8}); err == nil {
		t.Fatal("duplicate lww register accepted")
	}
}

func TestEventualWriteClassRejectsChain(t *testing.T) {
	r := newRig(t, 1, 1)
	if _, err := r.ins[0].NewStrongRegister(EventualWrite, chain.Config{Reg: 9, Capacity: 8, ValueWidth: 8}); err == nil {
		t.Fatal("EWO class accepted by chain constructor")
	}
}

func TestEROClass(t *testing.T) {
	r := newRig(t, 1, 2)
	reg, err := r.ins[0].NewStrongRegister(EventualRead, chain.Config{Reg: 7, Capacity: 8, ValueWidth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if reg.Node().Config().Mode != chain.ERO {
		t.Fatal("ERO class did not select ERO mode")
	}
}

func TestConfigBroadcastViaWire(t *testing.T) {
	// ChainConfig/GroupConfig arriving as wire messages reach all registers.
	r := newRig(t, 1, 2)
	in := r.ins[0]
	in.route(99, &wire.ChainConfig{Epoch: 9, Members: []uint16{1, 2}})
	in.route(99, &wire.GroupConfig{Epoch: 9, Members: []uint16{1}})
	for _, cn := range in.chains {
		if cn.Chain().Epoch != 9 {
			t.Fatal("chain config not applied")
		}
	}
	for _, en := range in.ewos {
		if len(en.Group()) != 1 {
			t.Fatal("group config not applied")
		}
	}
}

func TestUnknownRegisterMessagesIgnored(t *testing.T) {
	r := newRig(t, 1, 1)
	// Must not panic or misroute.
	r.ins[0].route(2, &wire.Write{Reg: 99})
	r.ins[0].route(2, &wire.EWOUpdate{Reg: 99})
	r.ins[0].routeCtrl(2, &wire.EWOUpdate{Reg: 99})
}

func TestBaselineCounter(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := netem.New(eng, netem.LinkProfile{Latency: 10_000})
	var ins []*Instance
	var regs []*BaselineCounter
	var members []uint16
	for i := 0; i < 2; i++ {
		sw := pisa.New(eng, nw, pisa.Config{Addr: netem.Addr(i + 1)})
		in := NewInstance(sw)
		bc, err := in.NewBaselineCounter(ctrlplane.Config{Reg: 4, Capacity: 64})
		if err != nil {
			t.Fatal(err)
		}
		ins = append(ins, in)
		regs = append(regs, bc)
		members = append(members, uint16(i+1))
	}
	gc := wire.GroupConfig{Epoch: 1, Members: members}
	for _, r := range regs {
		if err := r.Node().SetGroup(gc); err != nil {
			t.Fatal(err)
		}
	}
	regs[0].Add(1, 7)
	if regs[0].Backlog() == 0 {
		t.Fatal("no backlog recorded")
	}
	eng.Run()
	if regs[1].Sum(1) != 7 {
		t.Fatalf("baseline replica = %d", regs[1].Sum(1))
	}
	if _, err := ins[0].NewBaselineCounter(ctrlplane.Config{Reg: 4, Capacity: 8}); err == nil {
		t.Fatal("duplicate baseline register accepted")
	}
}

func TestMemoryTotal(t *testing.T) {
	r := newRig(t, 1, 1)
	if r.ins[0].MemoryTotal() == 0 {
		t.Fatal("memory accounting empty")
	}
	sum := r.regS[0].MemoryBytes() + r.regC[0].MemoryBytes() + r.regL[0].MemoryBytes()
	if r.ins[0].MemoryTotal() != sum {
		t.Fatalf("MemoryTotal %d != register sum %d", r.ins[0].MemoryTotal(), sum)
	}
}

func TestConsistencyStrings(t *testing.T) {
	if Strong.String() != "SRO" || EventualRead.String() != "ERO" || EventualWrite.String() != "EWO" {
		t.Fatal("consistency strings")
	}
}

func TestHandleAccessors(t *testing.T) {
	r := newRig(t, 1, 1)
	in := r.ins[0]
	if h, err := in.StrongHandle(1); err != nil || h == nil {
		t.Fatalf("StrongHandle: %v", err)
	}
	if _, err := in.StrongHandle(99); err == nil {
		t.Fatal("unknown chain handle resolved")
	}
	if h, err := in.CounterHandle(2); err != nil || h == nil {
		t.Fatalf("CounterHandle: %v", err)
	}
	if _, err := in.CounterHandle(99); err == nil {
		t.Fatal("unknown counter handle resolved")
	}
	if _, err := in.CounterHandle(3); err == nil {
		t.Fatal("LWW register resolved as counter")
	}
	if h, err := in.EventualHandle(3); err != nil || h == nil {
		t.Fatalf("EventualHandle: %v", err)
	}
	if _, err := in.EventualHandle(2); err == nil {
		t.Fatal("counter resolved as LWW")
	}
	if _, err := in.EventualHandle(99); err == nil {
		t.Fatal("unknown LWW handle resolved")
	}
}

func TestHandlesShareUnderlyingNode(t *testing.T) {
	r := newRig(t, 1, 2)
	h, err := r.ins[0].CounterHandle(2)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(9, 4)
	if r.regC[0].Sum(9) != 4 {
		t.Fatal("handle does not share state with original")
	}
}

func TestCounterRegisterSubPanicsOnGCounter(t *testing.T) {
	r := newRig(t, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Sub on G-counter did not panic")
		}
	}()
	r.regC[0].Sub(1, 1)
}

func TestBaselineCounterErrors(t *testing.T) {
	eng := sim.NewEngine(2)
	nw := netem.New(eng, netem.LinkProfile{})
	in := NewInstance(pisa.New(eng, nw, pisa.Config{Addr: 1, MemoryBytes: 64}))
	if _, err := in.NewBaselineCounter(ctrlplane.Config{Reg: 1, Capacity: 1 << 20}); err == nil {
		t.Fatal("over-budget baseline accepted")
	}
}

func TestRouteCtrlFallsBackToDataHandlers(t *testing.T) {
	// Control-plane-delivered chain messages still reach chain nodes.
	r := newRig(t, 1, 2)
	r.ins[0].routeCtrl(2, &wire.ChainConfig{Epoch: 9, Members: []uint16{1, 2}})
	for _, cn := range r.ins[0].chains {
		if cn.Chain().Epoch != 9 {
			t.Fatal("ctrl-delivered chain config not applied")
		}
	}
}
