// Package ewo implements SwiShmem's Eventual Write Optimized registers
// (§6.2): low-cost reads and writes with eventual consistency, for the
// write-intensive NFs of §4.2 (DDoS sketches, rate-limiter meters).
//
// Protocol: a write is applied to the local replica and the output packet
// released immediately; the update is then broadcast asynchronously to the
// replica group using egress mirroring + the multicast engine (§7),
// optionally batched (§7 "Bandwidth overhead"). Lost updates (challenge C1)
// are repaired by a periodic data-plane synchronization implemented with the
// switch packet generator: every sync period the switch walks its register
// array and sends its contents to a randomly selected group member,
// trading the switch's abundant bandwidth for buffer memory — the §6.2
// design principle (10 MB/1 ms over 5 Tbps ≈ 1% of switch bandwidth).
//
// Merging (challenge C2) supports the two schemes of §6.2:
//
//   - LWW: each register carries a version stamp (synchronized clock with a
//     switch-ID tie breaker); the merge keeps the larger stamp. Eventually
//     consistent; concurrent increments to the same register can be lost —
//     which experiment E8 measures.
//   - Counter (CRDT): a G-counter vector with one slot per group member;
//     increments touch only the local slot, merges take the element-wise
//     max, reads sum the vector. Strong eventual consistency and
//     monotonicity; PN-counters add a decrement vector.
package ewo

import (
	"fmt"
	"math/rand"
	"slices"
	"time"

	"swishmem/internal/netem"
	"swishmem/internal/obs"
	"swishmem/internal/pisa"
	"swishmem/internal/sim"
	"swishmem/internal/stats"
	"swishmem/internal/timesync"
	"swishmem/internal/wire"
)

// Kind selects the merge discipline.
type Kind int

// Register kinds.
const (
	// LWW is a generic last-writer-wins register.
	LWW Kind = iota
	// Counter is an increment-only G-counter CRDT.
	Counter
	// PNCounter supports increments and decrements (two G-counters).
	PNCounter
)

func (k Kind) String() string {
	switch k {
	case Counter:
		return "Counter"
	case PNCounter:
		return "PNCounter"
	default:
		return "LWW"
	}
}

// Config describes one EWO register array.
type Config struct {
	// Reg is the register identifier in protocol messages.
	Reg uint16
	// Capacity is the number of keys.
	Capacity int
	// ValueWidth is the LWW value size in bytes (ignored for counters).
	ValueWidth int
	// Kind selects LWW or counter semantics.
	Kind Kind
	// MaxGroup is the largest replica group supported; counter vectors
	// reserve SRAM for this many slots per key (§7: "one register array for
	// each switch in the replica group"). Default 8.
	MaxGroup int
	// SyncPeriod is the periodic synchronization interval (0 disables).
	// Default 1ms, the paper's example.
	SyncPeriod sim.Duration
	// SyncDisabled turns off periodic sync (for experiments isolating the
	// per-write multicast path).
	SyncDisabled bool
	// Batch is the number of write updates coalesced into one multicast
	// (§7 batching). Default 1 (send immediately).
	Batch int
	// BatchTimeout bounds how long a partial batch may wait before being
	// flushed anyway, capping the staleness/availability cost §7 attributes
	// to batching. 0 disables the timer (a partial batch waits for the
	// batch to fill or for Flush/periodic sync).
	BatchTimeout sim.Duration
	// SyncEntriesPerPacket bounds entries per periodic-sync packet (an MTU
	// stand-in). Default 64.
	SyncEntriesPerPacket int
	// SyncPacketBytes, when > 0, makes the periodic sync batch-aware: the
	// round's key window is packed into as many updates as needed so that
	// each stays at or under this many wire bytes (one key's entries never
	// split), and all of them go to the same randomly drawn target in the
	// same round. Over the live fabric's coalescing egress the run of
	// updates packs into wire.Batch datagrams subject to the coalesce
	// limit, so setting this just below FabricConfig.CoalesceLimit yields
	// MTU-shaped sync datagrams end to end. 0 (the default) keeps the
	// classic single-update round byte for byte.
	SyncPacketBytes int
	// ClockSkew bounds the synchronized clock offset used for LWW stamps.
	// Default 50ns (the paper cites tens-of-nanoseconds data-plane sync).
	ClockSkew sim.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxGroup == 0 {
		c.MaxGroup = 8
	}
	if c.SyncPeriod == 0 {
		c.SyncPeriod = time.Millisecond
	}
	if c.Batch <= 0 {
		c.Batch = 1
	}
	if c.SyncEntriesPerPacket <= 0 {
		c.SyncEntriesPerPacket = 64
	}
	if c.ClockSkew == 0 {
		c.ClockSkew = 50 * time.Nanosecond
	}
	return c
}

// Stats counts protocol events.
type Stats struct {
	Writes        stats.Counter
	Reads         stats.Counter
	UpdatesSent   stats.Counter // multicast delta packets
	UpdatesRecv   stats.Counter
	EntriesMerged stats.Counter // entries that changed local state
	EntriesStale  stats.Counter // entries discarded by merge
	SyncPackets   stats.Counter // periodic sync packets sent
	UpdateBytes   stats.Counter // wire bytes of multicast deltas (all copies)
	SyncBytes     stats.Counter // wire bytes of periodic sync packets
}

type lwwCell struct {
	val   []byte
	stamp timesync.Stamp
}

// Node is the per-switch protocol instance for one EWO register array.
type Node struct {
	sw    *pisa.Switch
	cfg   Config
	clock *timesync.Synced

	epoch uint32
	group []netem.Addr

	// LWW state.
	lww map[uint64]lwwCell
	// Counter state: key -> owner switch -> slot value. inc for Counter and
	// PNCounter, dec only for PNCounter.
	inc map[uint64]map[uint16]uint64
	dec map[uint64]map[uint16]uint64

	// SRAM accounting vehicles (state layout per §7).
	mem []*pisa.RegisterArray

	// cur is the update being batched: deltas append directly into its
	// entry slice, so filling and flushing a batch is allocation-free once
	// the pool is warm. ufree recycles updates whose deliveries have all
	// completed (see wire.EWOUpdate.EnablePool).
	cur        *wire.EWOUpdate
	ufree      []*wire.EWOUpdate
	ufreeFn    func(*wire.EWOUpdate)
	batchTimer *sim.Timer
	ticker     *sim.Ticker
	// syncCursor walks keys across periodic sync rounds.
	syncKeys   []uint64
	syncCursor int

	// rng drives this node's sync-target sampling. It is a private stream
	// seeded from (engine seed, addr, reg) rather than the engine's shared
	// source, so the node draws the same sequence no matter what other
	// nodes do — required for sharded runs to match sequential ones.
	rng *rand.Rand

	Stats Stats
}

// nodeSeed mixes the engine seed with a node's stable identity (splitmix64
// finalizer) to seed its private random stream.
func nodeSeed(seed int64, addr, reg uint64) int64 {
	z := uint64(seed) ^ 0x9e3779b97f4a7c15 ^ addr<<40 ^ reg<<24
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// NewNode allocates the register array on sw.
func NewNode(sw *pisa.Switch, cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("ewo: register %d needs positive capacity", cfg.Reg)
	}
	if cfg.Kind == LWW && cfg.ValueWidth <= 0 {
		return nil, fmt.Errorf("ewo: LWW register %d needs positive value width", cfg.Reg)
	}
	n := &Node{
		sw:    sw,
		cfg:   cfg,
		clock: timesync.NewSynced(sw.Engine(), timesync.NodeID(sw.Addr()), cfg.ClockSkew),
		rng:   rand.New(rand.NewSource(nodeSeed(sw.Engine().Seed(), uint64(sw.Addr()), uint64(cfg.Reg)))),
	}
	n.ufreeFn = func(u *wire.EWOUpdate) { n.ufree = append(n.ufree, u) }
	// Charge SRAM per the §7 layout.
	switch cfg.Kind {
	case LWW:
		// One (version, value) pair per key: 10-byte stamp + value.
		ra, err := sw.NewRegisterArray(fmt.Sprintf("ewo-lww%d", cfg.Reg), cfg.Capacity, 10+cfg.ValueWidth)
		if err != nil {
			return nil, err
		}
		n.mem = append(n.mem, ra)
		n.lww = make(map[uint64]lwwCell)
	case Counter, PNCounter:
		// One register array per group member, each (version, value) =
		// 16 bytes per key; PN doubles it.
		mult := 1
		if cfg.Kind == PNCounter {
			mult = 2
		}
		ra, err := sw.NewRegisterArray(fmt.Sprintf("ewo-ctr%d", cfg.Reg), cfg.Capacity*cfg.MaxGroup*mult, 16)
		if err != nil {
			return nil, err
		}
		n.mem = append(n.mem, ra)
		n.inc = make(map[uint64]map[uint16]uint64)
		if cfg.Kind == PNCounter {
			n.dec = make(map[uint64]map[uint16]uint64)
		}
	}
	if !cfg.SyncDisabled {
		n.ticker = sw.PacketGen(cfg.SyncPeriod, n.syncRound)
	}
	return n, nil
}

// Switch returns the owning switch.
func (n *Node) Switch() *pisa.Switch { return n.sw }

// Config returns the defaulted configuration.
func (n *Node) Config() Config { return n.cfg }

// MemoryBytes returns the SRAM footprint of this register on this switch.
func (n *Node) MemoryBytes() int {
	total := 0
	for _, ra := range n.mem {
		total += ra.Bytes()
	}
	return total
}

// SetGroup installs the replica group (from the controller). Stale epochs
// are ignored. Group size beyond MaxGroup is rejected loudly: the SRAM
// reservation cannot hold more slots.
func (n *Node) SetGroup(gc wire.GroupConfig) error {
	if gc.Epoch < n.epoch {
		return nil
	}
	if len(gc.Members) > n.cfg.MaxGroup {
		return fmt.Errorf("ewo: group of %d exceeds MaxGroup %d", len(gc.Members), n.cfg.MaxGroup)
	}
	n.epoch = gc.Epoch
	n.group = n.group[:0]
	for _, m := range gc.Members {
		n.group = append(n.group, netem.Addr(m))
	}
	return nil
}

// Group returns the current replica group.
func (n *Node) Group() []netem.Addr { return n.group }

// Stop cancels the periodic synchronization ticker.
func (n *Node) Stop() {
	if n.ticker != nil {
		n.ticker.Stop()
	}
}

// --- LWW operations ---

// Write stores val under key with a fresh stamp and schedules its broadcast.
// It returns immediately ("emits any output packet P' immediately" — §6.2).
func (n *Node) Write(key uint64, val []byte) {
	if n.cfg.Kind != LWW {
		panic("ewo: Write on counter register; use Add")
	}
	n.Stats.Writes.Inc()
	if len(val) > n.cfg.ValueWidth {
		val = val[:n.cfg.ValueWidth]
	}
	st := n.clock.Now()
	n.lww[key] = lwwCell{val: append([]byte(nil), val...), stamp: st}
	n.enqueue(wire.EWOEntry{Key: key, Stamp: st, Value: append([]byte(nil), val...)})
}

// Read returns the local LWW value.
func (n *Node) Read(key uint64) ([]byte, bool) {
	if n.cfg.Kind != LWW {
		panic("ewo: Read on counter register; use Sum")
	}
	n.Stats.Reads.Inc()
	c, ok := n.lww[key]
	return c.val, ok
}

// --- Counter operations ---

func slotMap(m map[uint64]map[uint16]uint64, key uint64) map[uint16]uint64 {
	s, ok := m[key]
	if !ok {
		s = make(map[uint16]uint64)
		m[key] = s
	}
	return s
}

// Add increments key's counter by delta (data-plane cost, non-blocking).
func (n *Node) Add(key uint64, delta uint64) {
	if n.cfg.Kind == LWW {
		panic("ewo: Add on LWW register; use Write")
	}
	n.Stats.Writes.Inc()
	self := uint16(n.sw.Addr())
	s := slotMap(n.inc, key)
	s[self] += delta
	n.enqueue(counterEntry(key, self, s[self], false))
}

// Sub decrements key's counter (PNCounter only).
func (n *Node) Sub(key uint64, delta uint64) {
	if n.cfg.Kind != PNCounter {
		panic("ewo: Sub requires a PNCounter register")
	}
	n.Stats.Writes.Inc()
	self := uint16(n.sw.Addr())
	s := slotMap(n.dec, key)
	s[self] += delta
	n.enqueue(counterEntry(key, self, s[self], true))
}

// incMark and decMark are the shared, read-only Value payloads of counter
// entries — never allocated per write, never mutated (merge and marshal only
// read them).
var (
	incMark = []byte{0}
	decMark = []byte{1}
)

// counterEntry encodes a slot announcement: Stamp.Node carries the slot
// owner, Stamp.Time the slot value (slot values are monotone, so the value
// doubles as the version — the §7 "version number and value" pair collapses
// for counters). Value[0] distinguishes the decrement vector.
func counterEntry(key uint64, owner uint16, slotVal uint64, isDec bool) wire.EWOEntry {
	v := incMark
	if isDec {
		v = decMark
	}
	return wire.EWOEntry{
		Key:   key,
		Stamp: timesync.Stamp{Time: sim.Time(slotVal), Node: timesync.NodeID(owner)},
		Value: v,
	}
}

// Sum reads the counter: sum of increment slots minus decrement slots.
func (n *Node) Sum(key uint64) uint64 {
	if n.cfg.Kind == LWW {
		panic("ewo: Sum on LWW register; use Read")
	}
	n.Stats.Reads.Inc()
	var total uint64
	for _, v := range n.inc[key] {
		total += v
	}
	if n.cfg.Kind == PNCounter {
		for _, v := range n.dec[key] {
			total -= v
		}
	}
	return total
}

// --- replication ---

// getUpdate pops a recycled update (or builds one) and takes the caller's
// reference. The caller must Release after handing it to the network.
func (n *Node) getUpdate() *wire.EWOUpdate {
	var u *wire.EWOUpdate
	if ln := len(n.ufree); ln > 0 {
		u = n.ufree[ln-1]
		n.ufree[ln-1] = nil
		n.ufree = n.ufree[:ln-1]
	} else {
		u = &wire.EWOUpdate{}
		u.EnablePool(n.ufreeFn)
	}
	u.Reg = n.cfg.Reg
	u.From = uint16(n.sw.Addr())
	u.Sync = false
	u.Ref()
	return u
}

// enqueue batches a delta and flushes when the batch is full; a partial
// batch is flushed by the batch timer (if configured). Deltas accumulate
// directly in a pooled update, so the steady-state write path (delta in,
// batch full, multicast out) allocates nothing.
func (n *Node) enqueue(e wire.EWOEntry) {
	if n.cur == nil {
		n.cur = n.getUpdate()
	}
	n.cur.Entries = append(n.cur.Entries, e)
	if len(n.cur.Entries) >= n.cfg.Batch {
		n.Flush()
		return
	}
	if n.cfg.BatchTimeout > 0 && !n.batchTimer.Pending() {
		n.batchTimer = n.sw.Engine().After(n.cfg.BatchTimeout, n.Flush)
	}
}

// Flush multicasts pending deltas to the group via egress mirroring (§7).
func (n *Node) Flush() {
	if n.batchTimer != nil {
		n.batchTimer.Stop()
	}
	u := n.cur
	if u == nil {
		return
	}
	if len(u.Entries) == 0 || len(n.group) == 0 {
		// Nothing to send (or nowhere to send it): drop the deltas but keep
		// the update as the next batch buffer.
		u.Entries = u.Entries[:0]
		return
	}
	n.cur = nil
	if tr := n.sw.Engine().Tracer(); tr.Enabled() {
		rec := tr.Emit(obs.PhaseInstant, int64(n.sw.Engine().Now()), 0, int32(n.sw.Addr()), "ewo", "ewo.flush")
		rec.K1, rec.V1 = "entries", int64(len(u.Entries))
		rec.K2, rec.V2 = "group", int64(len(n.group))
		rec.K3, rec.V3 = "reg", int64(n.cfg.Reg)
	}
	fan := 0
	for _, a := range n.group {
		if a != n.sw.Addr() {
			fan++
		}
	}
	n.Stats.UpdateBytes.Add(uint64(u.Size() * fan))
	n.sw.Multicast(n.group, u)
	n.Stats.UpdatesSent.Inc()
	u.Release()
}

// PendingDeltas returns the number of unflushed batched deltas.
func (n *Node) PendingDeltas() int {
	if n.cur == nil {
		return 0
	}
	return len(n.cur.Entries)
}

// Handle routes a protocol message to this node; it reports whether the
// message was consumed.
func (n *Node) Handle(from netem.Addr, msg wire.Msg) bool {
	switch m := msg.(type) {
	case *wire.EWOUpdate:
		if m.Reg != n.cfg.Reg {
			return false
		}
		n.Stats.UpdatesRecv.Inc()
		if tr := n.sw.Engine().Tracer(); tr.Enabled() {
			// One instant per received batch, not per merged entry: the merge
			// loop is the receive hot path.
			rec := tr.Emit(obs.PhaseInstant, int64(n.sw.Engine().Now()), 0, int32(n.sw.Addr()), "ewo", "ewo.merge")
			rec.K1, rec.V1 = "entries", int64(len(m.Entries))
			rec.K2, rec.V2 = "from", int64(from)
			rec.K3 = "sync"
			if m.Sync {
				rec.V3 = 1
			}
		}
		for i := range m.Entries {
			n.merge(&m.Entries[i])
		}
		return true
	case *wire.GroupConfig:
		n.SetGroup(*m)
		return true
	}
	return false
}

// merge applies one received entry under the register's merge discipline.
func (n *Node) merge(e *wire.EWOEntry) {
	switch n.cfg.Kind {
	case LWW:
		cur, ok := n.lww[e.Key]
		if ok && !cur.stamp.Less(e.Stamp) {
			n.Stats.EntriesStale.Inc()
			return
		}
		n.lww[e.Key] = lwwCell{val: append([]byte(nil), e.Value...), stamp: e.Stamp}
		n.Stats.EntriesMerged.Inc()
	case Counter, PNCounter:
		owner := uint16(e.Stamp.Node)
		slotVal := uint64(e.Stamp.Time)
		m := n.inc
		if len(e.Value) > 0 && e.Value[0] == 1 {
			if n.cfg.Kind != PNCounter {
				n.Stats.EntriesStale.Inc()
				return
			}
			m = n.dec
		}
		s := slotMap(m, e.Key)
		if slotVal > s[owner] {
			s[owner] = slotVal
			n.Stats.EntriesMerged.Inc()
		} else {
			n.Stats.EntriesStale.Inc()
		}
	}
}

// syncRound is the packet-generator task: walk a window of the register
// array and send its contents to a randomly selected group member (§7).
func (n *Node) syncRound() {
	if len(n.group) < 2 {
		return
	}
	// Refresh the key walk when exhausted.
	if n.syncCursor >= len(n.syncKeys) {
		n.syncKeys = n.syncKeys[:0]
		switch n.cfg.Kind {
		case LWW:
			for k := range n.lww {
				n.syncKeys = append(n.syncKeys, k)
			}
		default:
			for k := range n.inc {
				n.syncKeys = append(n.syncKeys, k)
			}
			for k := range n.dec {
				if _, dup := n.inc[k]; !dup {
					n.syncKeys = append(n.syncKeys, k)
				}
			}
		}
		// Map iteration order is runtime-randomized; it must not leak onto
		// the wire (which keys share a sync packet decides how fast a
		// recovering member converges), or runs stop being a pure function
		// of the seed.
		slices.Sort(n.syncKeys)
		n.syncCursor = 0
	}
	if len(n.syncKeys) == 0 {
		return
	}
	end := n.syncCursor + n.cfg.SyncEntriesPerPacket
	if end > len(n.syncKeys) {
		end = len(n.syncKeys)
	}
	u := n.getUpdate()
	u.Sync = true
	for _, k := range n.syncKeys[n.syncCursor:end] {
		u.Entries = n.appendEntriesFor(u.Entries, k)
	}
	n.syncCursor = end
	if len(u.Entries) == 0 {
		u.Release()
		return
	}
	// Random member other than self.
	var target netem.Addr
	for tries := 0; tries < 8; tries++ {
		target = n.group[n.rng.Intn(len(n.group))]
		if target != n.sw.Addr() {
			break
		}
	}
	if target == n.sw.Addr() {
		u.Release()
		return
	}
	limit := n.cfg.SyncPacketBytes
	if limit <= 0 || u.Size() <= limit {
		n.sendSync(u, target)
		return
	}
	// Batch-aware sync: repack the window into updates of at most limit
	// wire bytes each (a single key's entries stay together, so one packet
	// can exceed the limit only when one key alone does) and send the run
	// back to back to the same target — the live fabric's coalescing
	// egress then packs the run into MTU-shaped wire.Batch datagrams.
	ents := u.Entries
	p := n.getUpdate()
	p.Sync = true
	sz := emptyUpdateSize
	for i := 0; i < len(ents); {
		j := i
		run := 0
		for j < len(ents) && ents[j].Key == ents[i].Key {
			run += entryWireSize(&ents[j])
			j++
		}
		if len(p.Entries) > 0 && sz+run > limit {
			n.sendSync(p, target)
			p = n.getUpdate()
			p.Sync = true
			sz = emptyUpdateSize
		}
		p.Entries = append(p.Entries, ents[i:j]...)
		sz += run
		i = j
	}
	if len(p.Entries) > 0 {
		n.sendSync(p, target)
	} else {
		p.Release()
	}
	u.Release()
}

// emptyUpdateSize is wire.EWOUpdate's encoding overhead: type byte + Reg +
// From + Slot + Sync + entry count.
const emptyUpdateSize = 1 + 2 + 2 + 2 + 1 + 2

// entryWireSize mirrors wire.EWOEntry's encoded size: Key + Stamp.Time +
// Stamp.Node + value length prefix + value.
func entryWireSize(e *wire.EWOEntry) int { return 8 + 8 + 2 + 2 + len(e.Value) }

// sendSync emits one periodic-sync packet to target and releases the
// caller's reference.
func (n *Node) sendSync(u *wire.EWOUpdate, target netem.Addr) {
	if tr := n.sw.Engine().Tracer(); tr.Enabled() {
		rec := tr.Emit(obs.PhaseInstant, int64(n.sw.Engine().Now()), 0, int32(n.sw.Addr()), "ewo", "ewo.sync")
		rec.K1, rec.V1 = "entries", int64(len(u.Entries))
		rec.K2, rec.V2 = "target", int64(target)
		rec.K3, rec.V3 = "reg", int64(n.cfg.Reg)
	}
	n.Stats.SyncBytes.Add(uint64(u.Size()))
	n.sw.Send(target, u)
	n.Stats.SyncPackets.Inc()
	u.Release()
}

// appendEntriesFor appends the sync entries describing key's full local
// state — for counters this gossips every known slot, so updates survive
// the failure of their original writer (§6.3: "any switch that did receive
// the update can then synchronize the other switches").
func (n *Node) appendEntriesFor(dst []wire.EWOEntry, key uint64) []wire.EWOEntry {
	switch n.cfg.Kind {
	case LWW:
		c, ok := n.lww[key]
		if !ok {
			return dst
		}
		return append(dst, wire.EWOEntry{Key: key, Stamp: c.stamp, Value: c.val})
	default:
		for owner, v := range n.inc[key] {
			dst = append(dst, counterEntry(key, owner, v, false))
		}
		for owner, v := range n.dec[key] {
			dst = append(dst, counterEntry(key, owner, v, true))
		}
		return dst
	}
}

// Keys returns the number of locally known keys.
func (n *Node) Keys() int {
	if n.cfg.Kind == LWW {
		return len(n.lww)
	}
	keys := len(n.inc)
	for k := range n.dec {
		if _, dup := n.inc[k]; !dup {
			keys++
		}
	}
	return keys
}

// StateDigest summarizes local state for convergence checks: for LWW a map
// of key to stamp; for counters a map of key to summed value.
func (n *Node) StateDigest() map[uint64]string {
	out := make(map[uint64]string)
	switch n.cfg.Kind {
	case LWW:
		for k, c := range n.lww {
			out[k] = fmt.Sprintf("%v:%x", c.stamp, c.val)
		}
	default:
		for k := range n.inc {
			out[k] = fmt.Sprintf("%d", n.sumNoStats(k))
		}
		for k := range n.dec {
			if _, dup := n.inc[k]; !dup {
				out[k] = fmt.Sprintf("%d", n.sumNoStats(k))
			}
		}
	}
	return out
}

func (n *Node) sumNoStats(key uint64) uint64 {
	var total uint64
	for _, v := range n.inc[key] {
		total += v
	}
	if n.cfg.Kind == PNCounter {
		for _, v := range n.dec[key] {
			total -= v
		}
	}
	return total
}
