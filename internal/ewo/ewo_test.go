package ewo

import (
	"fmt"
	"testing"
	"time"

	"swishmem/internal/netem"
	"swishmem/internal/pisa"
	"swishmem/internal/sim"
	"swishmem/internal/wire"
)

type rig struct {
	eng   *sim.Engine
	net   *netem.Network
	sws   []*pisa.Switch
	nodes []*Node
	epoch uint32
}

func newRig(t testing.TB, seed int64, n int, cfg Config, profile netem.LinkProfile) *rig {
	t.Helper()
	eng := sim.NewEngine(seed)
	nw := netem.New(eng, profile)
	r := &rig{eng: eng, net: nw}
	for i := 0; i < n; i++ {
		sw := pisa.New(eng, nw, pisa.Config{Addr: netem.Addr(i + 1), PipelinePPS: 1e9})
		node, err := NewNode(sw, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sw.SetMsgHandler(func(s *pisa.Switch, from netem.Addr, msg wire.Msg) {
			node.Handle(from, msg)
		})
		r.sws = append(r.sws, sw)
		r.nodes = append(r.nodes, node)
	}
	r.installGroup(r.allAddrs())
	return r
}

func (r *rig) allAddrs() []uint16 {
	out := make([]uint16, len(r.sws))
	for i, sw := range r.sws {
		out[i] = uint16(sw.Addr())
	}
	return out
}

func (r *rig) installGroup(members []uint16) {
	r.epoch++
	gc := wire.GroupConfig{Epoch: r.epoch, Members: members}
	for _, n := range r.nodes {
		if err := n.SetGroup(gc); err != nil {
			panic(err)
		}
	}
}

func (r *rig) converged(t *testing.T) {
	t.Helper()
	want := r.nodes[0].StateDigest()
	for i, n := range r.nodes[1:] {
		got := n.StateDigest()
		if len(got) != len(want) {
			t.Fatalf("node %d has %d keys, node 0 has %d", i+1, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("node %d key %d = %q, want %q", i+1, k, got[k], v)
			}
		}
	}
}

func lwwCfg() Config {
	return Config{Reg: 1, Capacity: 1024, ValueWidth: 16, Kind: LWW}
}

func ctrCfg() Config {
	return Config{Reg: 2, Capacity: 1024, Kind: Counter}
}

func TestLWWWriteIsImmediate(t *testing.T) {
	r := newRig(t, 1, 3, lwwCfg(), netem.LinkProfile{Latency: 10_000})
	r.nodes[0].Write(1, []byte("x"))
	// Local read reflects the write with no protocol round trip.
	v, ok := r.nodes[0].Read(1)
	if !ok || string(v) != "x" {
		t.Fatalf("read = %q %v", v, ok)
	}
}

func TestLWWPropagatesToGroup(t *testing.T) {
	r := newRig(t, 1, 3, lwwCfg(), netem.LinkProfile{Latency: 10_000})
	r.nodes[0].Write(1, []byte("hello"))
	r.eng.RunFor(time.Millisecond)
	for i, n := range r.nodes {
		if v, ok := n.Read(1); !ok || string(v) != "hello" {
			t.Fatalf("node %d: %q %v", i, v, ok)
		}
	}
}

func TestLWWConcurrentWritesConverge(t *testing.T) {
	// Writes from different switches at the same instant: the stamp
	// tie-break (switch ID) must make all replicas agree.
	r := newRig(t, 3, 4, lwwCfg(), netem.LinkProfile{Latency: 10_000, Jitter: 5_000})
	for i, n := range r.nodes {
		n.Write(7, []byte(fmt.Sprintf("w%d", i)))
	}
	r.eng.RunFor(5 * time.Millisecond)
	r.converged(t)
}

func TestLWWValueTruncatedToWidth(t *testing.T) {
	r := newRig(t, 1, 2, lwwCfg(), netem.LinkProfile{Latency: 10_000})
	long := make([]byte, 100)
	r.nodes[0].Write(1, long)
	v, _ := r.nodes[0].Read(1)
	if len(v) != 16 {
		t.Fatalf("value not truncated: %d bytes", len(v))
	}
}

func TestCounterLocalAndRemote(t *testing.T) {
	r := newRig(t, 1, 3, ctrCfg(), netem.LinkProfile{Latency: 10_000})
	r.nodes[0].Add(5, 10)
	r.nodes[1].Add(5, 32)
	if got := r.nodes[0].Sum(5); got != 10 {
		t.Fatalf("local sum = %d before propagation", got)
	}
	r.eng.RunFor(time.Millisecond)
	for i, n := range r.nodes {
		if got := n.Sum(5); got != 42 {
			t.Fatalf("node %d sum = %d, want 42", i, got)
		}
	}
}

func TestCounterExactUnderConcurrency(t *testing.T) {
	// The CRDT guarantee: concurrent increments are never lost, regardless
	// of interleaving (strong eventual consistency, §6.2).
	r := newRig(t, 5, 4, ctrCfg(), netem.LinkProfile{Latency: 10_000, Jitter: 10_000})
	var want uint64
	for round := 0; round < 50; round++ {
		for _, n := range r.nodes {
			n.Add(1, 1)
			want++
		}
	}
	r.eng.RunFor(10 * time.Millisecond)
	for i, n := range r.nodes {
		if got := n.Sum(1); got != want {
			t.Fatalf("node %d sum = %d, want %d", i, got, want)
		}
	}
}

func TestCounterMonotonicReads(t *testing.T) {
	// §6.2: CRDT counters avoid "counter-intuitive scenarios such as a
	// counter decreasing". Sample reads during heavy mixing.
	cfg := ctrCfg()
	r := newRig(t, 7, 3, cfg, netem.LinkProfile{Latency: 50_000, Jitter: 30_000, DupRate: 0.2, ReorderRate: 0.3})
	var last [3]uint64
	violations := 0
	for round := 0; round < 100; round++ {
		for i, n := range r.nodes {
			n.Add(2, uint64(i+1))
			got := n.Sum(2)
			if got < last[i] {
				violations++
			}
			last[i] = got
		}
		r.eng.RunFor(100 * time.Microsecond)
	}
	if violations != 0 {
		t.Fatalf("%d monotonicity violations", violations)
	}
}

func TestDuplicatedDeliveryIdempotent(t *testing.T) {
	// Duplicate update packets must not double-count (max-merge).
	r := newRig(t, 9, 2, ctrCfg(), netem.LinkProfile{Latency: 10_000, DupRate: 1.0})
	r.nodes[0].Add(1, 5)
	r.nodes[0].Add(1, 5)
	r.eng.RunFor(5 * time.Millisecond)
	if got := r.nodes[1].Sum(1); got != 10 {
		t.Fatalf("sum = %d under 100%% duplication, want 10", got)
	}
}

func TestPNCounter(t *testing.T) {
	cfg := Config{Reg: 3, Capacity: 128, Kind: PNCounter}
	r := newRig(t, 1, 3, cfg, netem.LinkProfile{Latency: 10_000})
	r.nodes[0].Add(1, 100)
	r.nodes[1].Sub(1, 30)
	r.nodes[2].Add(1, 5)
	r.eng.RunFor(2 * time.Millisecond)
	for i, n := range r.nodes {
		if got := n.Sum(1); got != 75 {
			t.Fatalf("node %d = %d, want 75", i, got)
		}
	}
}

func TestSubOnGCounterPanics(t *testing.T) {
	r := newRig(t, 1, 2, ctrCfg(), netem.LinkProfile{})
	defer func() {
		if recover() == nil {
			t.Fatal("Sub on G-counter did not panic")
		}
	}()
	r.nodes[0].Sub(1, 1)
}

func TestKindMismatchPanics(t *testing.T) {
	r := newRig(t, 1, 2, lwwCfg(), netem.LinkProfile{})
	for name, fn := range map[string]func(){
		"Add": func() { r.nodes[0].Add(1, 1) },
		"Sum": func() { r.nodes[0].Sum(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on LWW did not panic", name)
				}
			}()
			fn()
		}()
	}
	c := newRig(t, 1, 2, ctrCfg(), netem.LinkProfile{})
	for name, fn := range map[string]func(){
		"Write": func() { c.nodes[0].Write(1, []byte("x")) },
		"Read":  func() { c.nodes[0].Read(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on counter did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPeriodicSyncRepairsLoss(t *testing.T) {
	// C1: lost multicast updates are repaired by periodic synchronization.
	cfg := ctrCfg()
	cfg.SyncPeriod = 500 * time.Microsecond
	r := newRig(t, 11, 3, cfg, netem.LinkProfile{Latency: 10_000, LossRate: 0.6})
	var want uint64
	for i := 0; i < 200; i++ {
		r.nodes[i%3].Add(uint64(i%10), 1)
	}
	want = 20 // per key
	// Many sync rounds: anti-entropy must converge despite 60% loss.
	r.eng.RunFor(200 * time.Millisecond)
	for i, n := range r.nodes {
		for k := uint64(0); k < 10; k++ {
			if got := n.Sum(k); got != want {
				t.Fatalf("node %d key %d = %d, want %d", i, k, got, want)
			}
		}
	}
}

func TestSyncDisabledDoesNotRepair(t *testing.T) {
	cfg := ctrCfg()
	cfg.SyncDisabled = true
	r := newRig(t, 13, 2, cfg, netem.LinkProfile{Latency: 10_000, LossRate: 1.0})
	r.nodes[0].Add(1, 5)
	r.eng.RunFor(50 * time.Millisecond)
	if got := r.nodes[1].Sum(1); got != 0 {
		t.Fatalf("replica got %d with full loss and no sync", got)
	}
	if r.nodes[0].Stats.SyncPackets.Value() != 0 {
		t.Fatal("sync packets sent while disabled")
	}
}

func TestLWWSyncRepairsLoss(t *testing.T) {
	cfg := lwwCfg()
	cfg.SyncPeriod = 500 * time.Microsecond
	r := newRig(t, 17, 3, cfg, netem.LinkProfile{Latency: 10_000, LossRate: 0.7})
	for i := 0; i < 50; i++ {
		r.nodes[i%3].Write(uint64(i), []byte(fmt.Sprintf("v%d", i)))
	}
	r.eng.RunFor(300 * time.Millisecond)
	r.converged(t)
}

func TestBatchingCoalesces(t *testing.T) {
	cfg := ctrCfg()
	cfg.Batch = 8
	cfg.SyncDisabled = true
	r := newRig(t, 1, 2, cfg, netem.LinkProfile{Latency: 10_000})
	for i := 0; i < 7; i++ {
		r.nodes[0].Add(uint64(i), 1)
	}
	if r.nodes[0].Stats.UpdatesSent.Value() != 0 {
		t.Fatal("batch flushed early")
	}
	if r.nodes[0].PendingDeltas() != 7 {
		t.Fatalf("pending = %d", r.nodes[0].PendingDeltas())
	}
	r.nodes[0].Add(7, 1) // 8th triggers flush
	if r.nodes[0].Stats.UpdatesSent.Value() != 1 {
		t.Fatalf("updates sent = %d", r.nodes[0].Stats.UpdatesSent.Value())
	}
	r.eng.RunFor(time.Millisecond)
	for i := uint64(0); i < 8; i++ {
		if r.nodes[1].Sum(i) != 1 {
			t.Fatalf("key %d not delivered", i)
		}
	}
}

func TestBatchingReducesPackets(t *testing.T) {
	run := func(batch int) uint64 {
		cfg := ctrCfg()
		cfg.Batch = batch
		cfg.SyncDisabled = true
		r := newRig(t, 1, 3, cfg, netem.LinkProfile{Latency: 10_000})
		for i := 0; i < 256; i++ {
			r.nodes[0].Add(uint64(i%16), 1)
		}
		r.nodes[0].Flush()
		r.eng.Run()
		return r.net.Totals().MsgsSent
	}
	unbatched, batched := run(1), run(16)
	if batched*8 > unbatched {
		t.Fatalf("batch=16 sent %d msgs vs %d unbatched; expected ~16x fewer", batched, unbatched)
	}
}

func TestJoinBySyncRecovery(t *testing.T) {
	// §6.3 EWO recovery: add the new switch to the multicast group and wait
	// for periodic synchronization.
	cfg := ctrCfg()
	cfg.SyncPeriod = 500 * time.Microsecond
	r := newRig(t, 19, 4, cfg, netem.LinkProfile{Latency: 10_000})
	// Group of 3 initially; node 4 idle.
	r.installGroup([]uint16{1, 2, 3})
	for i := 0; i < 30; i++ {
		r.nodes[i%3].Add(uint64(i%5), 2)
	}
	r.eng.RunFor(5 * time.Millisecond)
	if r.nodes[3].Keys() != 0 {
		t.Fatal("outside switch received state")
	}
	// Join.
	r.installGroup([]uint16{1, 2, 3, 4})
	r.eng.RunFor(100 * time.Millisecond)
	for k := uint64(0); k < 5; k++ {
		if got := r.nodes[3].Sum(k); got != 12 {
			t.Fatalf("joined switch key %d = %d, want 12", k, got)
		}
	}
}

func TestFailedWriterStateSurvivesViaGossip(t *testing.T) {
	// §6.3: "If a switch fails while broadcasting its updates, any switch
	// that did receive the update can then synchronize the other switches."
	cfg := ctrCfg()
	cfg.SyncPeriod = 500 * time.Microsecond
	r := newRig(t, 23, 3, cfg, netem.LinkProfile{Latency: 10_000})
	// Node 1's update reaches only node 2 (loss on 1->3).
	r.net.SetOneWayLink(1, 3, netem.LinkProfile{Latency: 10_000, LossRate: 1.0})
	r.nodes[0].Add(1, 99)
	r.eng.RunFor(2 * time.Millisecond)
	if r.nodes[1].Sum(1) != 99 {
		t.Fatal("setup: node 2 should have received the direct update")
	}
	// Writer dies; survivors must converge via gossip (node 3 can only get
	// the value from node 2, since its link from node 1 drops everything).
	r.sws[0].Fail()
	r.installGroup([]uint16{2, 3})
	r.eng.RunFor(100 * time.Millisecond)
	if got := r.nodes[2].Sum(1); got != 99 {
		t.Fatalf("node 3 = %d after gossip, want 99", got)
	}
}

func TestGroupValidation(t *testing.T) {
	r := newRig(t, 1, 2, ctrCfg(), netem.LinkProfile{})
	big := make([]uint16, 9)
	for i := range big {
		big[i] = uint16(i + 1)
	}
	if err := r.nodes[0].SetGroup(wire.GroupConfig{Epoch: 99, Members: big}); err == nil {
		t.Fatal("oversized group accepted (MaxGroup=8)")
	}
	// Stale epoch ignored.
	cur := len(r.nodes[0].Group())
	if err := r.nodes[0].SetGroup(wire.GroupConfig{Epoch: 0, Members: []uint16{7}}); err != nil {
		t.Fatal(err)
	}
	if len(r.nodes[0].Group()) != cur {
		t.Fatal("stale group applied")
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := netem.New(eng, netem.LinkProfile{})
	sw := pisa.New(eng, nw, pisa.Config{Addr: 1})
	if _, err := NewNode(sw, Config{Reg: 1, Capacity: 0, Kind: Counter}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewNode(sw, Config{Reg: 1, Capacity: 10, Kind: LWW}); err == nil {
		t.Error("LWW without value width accepted")
	}
	small := pisa.New(eng, nw, pisa.Config{Addr: 2, MemoryBytes: 64})
	if _, err := NewNode(small, Config{Reg: 1, Capacity: 1024, Kind: Counter}); err == nil {
		t.Error("over-budget accepted")
	}
}

func TestMemoryScalesWithGroup(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := netem.New(eng, netem.LinkProfile{})
	mk := func(addr netem.Addr, maxGroup int) *Node {
		sw := pisa.New(eng, nw, pisa.Config{Addr: addr, MemoryBytes: 64 << 20})
		n, err := NewNode(sw, Config{Reg: 1, Capacity: 1000, Kind: Counter, MaxGroup: maxGroup})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	small, large := mk(1, 2), mk(2, 16)
	if large.MemoryBytes() != 8*small.MemoryBytes() {
		t.Fatalf("counter SRAM should scale linearly with group: %d vs %d",
			small.MemoryBytes(), large.MemoryBytes())
	}
}

func TestHandleIgnoresOtherRegisters(t *testing.T) {
	r := newRig(t, 1, 2, ctrCfg(), netem.LinkProfile{})
	if r.nodes[0].Handle(2, &wire.EWOUpdate{Reg: 99}) {
		t.Fatal("foreign register consumed")
	}
	if r.nodes[0].Handle(2, &wire.Heartbeat{}) {
		t.Fatal("heartbeat consumed")
	}
}

func TestKindString(t *testing.T) {
	if LWW.String() != "LWW" || Counter.String() != "Counter" || PNCounter.String() != "PNCounter" {
		t.Fatal("kind strings")
	}
}

func TestStopHaltsSync(t *testing.T) {
	cfg := ctrCfg()
	cfg.SyncPeriod = 100 * time.Microsecond
	r := newRig(t, 1, 2, cfg, netem.LinkProfile{Latency: 10_000})
	r.nodes[0].Add(1, 1)
	r.eng.RunFor(time.Millisecond)
	r.nodes[0].Stop()
	before := r.nodes[0].Stats.SyncPackets.Value()
	r.eng.RunFor(10 * time.Millisecond)
	// At most one already-dispatched sync round may still fire.
	if got := r.nodes[0].Stats.SyncPackets.Value(); got > before+1 {
		t.Fatalf("sync continued after Stop: %d -> %d", before, got)
	}
}

func TestPNCounterSyncRepairsLostDecrement(t *testing.T) {
	// A Sub whose multicast is lost must be repaired by periodic sync,
	// including gossip of the decrement vector.
	cfg := Config{Reg: 3, Capacity: 64, Kind: PNCounter, SyncPeriod: 500 * time.Microsecond}
	r := newRig(t, 31, 2, cfg, netem.LinkProfile{Latency: 10_000})
	r.nodes[0].Add(1, 100)
	r.eng.RunFor(2 * time.Millisecond)
	// All direct traffic from node 1 to node 2 now drops.
	r.net.SetOneWayLink(1, 2, netem.LinkProfile{Latency: 10_000, LossRate: 1.0})
	r.nodes[0].Sub(1, 30)
	r.eng.RunFor(5 * time.Millisecond)
	if r.nodes[1].Sum(1) != 100 {
		t.Fatalf("setup: decrement leaked through lossy link (%d)", r.nodes[1].Sum(1))
	}
	// Heal; sync gossip must deliver the decrement vector.
	r.net.SetOneWayLink(1, 2, netem.LinkProfile{Latency: 10_000})
	r.eng.RunFor(100 * time.Millisecond)
	if got := r.nodes[1].Sum(1); got != 70 {
		t.Fatalf("after sync = %d, want 70", got)
	}
}

func TestDecEntryIgnoredByGCounter(t *testing.T) {
	// A decrement announcement arriving at a G-counter register (config
	// mismatch / corruption) must be discarded, not misapplied.
	a := mkIsolated(t, Counter, 7)
	e := counterEntry(1, 3, 50, true) // dec entry
	a.merge(&e)
	if a.Sum(1) != 0 {
		t.Fatalf("dec entry applied to G-counter: %d", a.Sum(1))
	}
	if a.Stats.EntriesStale.Value() != 1 {
		t.Fatal("discard not counted")
	}
}

func TestFlushWithoutGroupDropsCleanly(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := netem.New(eng, netem.LinkProfile{})
	sw := pisa.New(eng, nw, pisa.Config{Addr: 1})
	n, err := NewNode(sw, Config{Reg: 1, Capacity: 8, Kind: Counter, SyncDisabled: true})
	if err != nil {
		t.Fatal(err)
	}
	n.Add(1, 1) // no group installed: enqueue + flush must not panic
	if n.PendingDeltas() != 0 {
		t.Fatal("pending deltas retained with no group")
	}
	if n.Stats.UpdatesSent.Value() != 0 {
		t.Fatal("update sent with no group")
	}
}

func TestBatchTimeoutFlushesPartialBatch(t *testing.T) {
	cfg := ctrCfg()
	cfg.Batch = 16
	cfg.BatchTimeout = 200 * time.Microsecond
	cfg.SyncDisabled = true
	r := newRig(t, 41, 2, cfg, netem.LinkProfile{Latency: 10_000})
	r.nodes[0].Add(1, 7) // 1 of 16: would wait forever without the timer
	r.eng.RunFor(100 * time.Microsecond)
	if r.nodes[1].Sum(1) != 0 {
		t.Fatal("partial batch flushed before the timeout")
	}
	r.eng.RunFor(time.Millisecond)
	if got := r.nodes[1].Sum(1); got != 7 {
		t.Fatalf("replica = %d after batch timeout, want 7", got)
	}
	// A full batch still flushes immediately and re-arms cleanly.
	for i := 0; i < 16; i++ {
		r.nodes[0].Add(2, 1)
	}
	r.eng.RunFor(100 * time.Microsecond)
	if got := r.nodes[1].Sum(2); got != 16 {
		t.Fatalf("full batch delayed: %d", got)
	}
}

func TestBatchTimerRearmsPerBatch(t *testing.T) {
	cfg := ctrCfg()
	cfg.Batch = 4
	cfg.BatchTimeout = 300 * time.Microsecond
	cfg.SyncDisabled = true
	r := newRig(t, 43, 2, cfg, netem.LinkProfile{Latency: 10_000})
	// Two partial batches separated in time: each must flush on its own timer.
	r.nodes[0].Add(1, 1)
	r.eng.RunFor(time.Millisecond)
	r.nodes[0].Add(2, 1)
	r.eng.RunFor(time.Millisecond)
	if r.nodes[1].Sum(1) != 1 || r.nodes[1].Sum(2) != 1 {
		t.Fatalf("timers did not re-arm: %d %d", r.nodes[1].Sum(1), r.nodes[1].Sum(2))
	}
}
