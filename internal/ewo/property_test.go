package ewo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"swishmem/internal/netem"
	"swishmem/internal/pisa"
	"swishmem/internal/sim"
	"swishmem/internal/timesync"
	"swishmem/internal/wire"
)

// mkIsolated builds a node with no network activity, for direct merge tests.
func mkIsolated(t testing.TB, kind Kind, addr netem.Addr) *Node {
	t.Helper()
	eng := sim.NewEngine(int64(addr))
	nw := netem.New(eng, netem.LinkProfile{})
	sw := pisa.New(eng, nw, pisa.Config{Addr: addr})
	cfg := Config{Reg: 1, Capacity: 4096, ValueWidth: 8, Kind: kind, SyncDisabled: true}
	n, err := NewNode(sw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func digestEqual(a, b map[uint64]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// Property: LWW merge is order-insensitive — applying the same entry set in
// any two permutations yields identical state (strong eventual consistency
// of the merge function itself).
func TestLWWMergeOrderInsensitive(t *testing.T) {
	f := func(keys []uint8, times []int16, nodes []uint8, seed int64) bool {
		n := len(keys)
		if len(times) < n {
			n = len(times)
		}
		if len(nodes) < n {
			n = len(nodes)
		}
		if n == 0 {
			return true
		}
		entries := make([]wire.EWOEntry, n)
		for i := 0; i < n; i++ {
			entries[i] = wire.EWOEntry{
				Key:   uint64(keys[i] % 8),
				Stamp: timesync.Stamp{Time: sim.Time(times[i]), Node: timesync.NodeID(nodes[i])},
				Value: []byte{keys[i], nodes[i]},
			}
		}
		a := mkIsolated(t, LWW, 1)
		b := mkIsolated(t, LWW, 2)
		for i := range entries {
			a.merge(&entries[i])
		}
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(n)
		for _, i := range perm {
			b.merge(&entries[i])
		}
		return digestEqual(a.StateDigest(), b.StateDigest())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: LWW merge is idempotent — applying an entry twice equals once.
func TestLWWMergeIdempotent(t *testing.T) {
	f := func(key uint8, tm int16, node uint8, v uint8) bool {
		e := wire.EWOEntry{
			Key:   uint64(key),
			Stamp: timesync.Stamp{Time: sim.Time(tm), Node: timesync.NodeID(node)},
			Value: []byte{v},
		}
		a := mkIsolated(t, LWW, 1)
		b := mkIsolated(t, LWW, 2)
		a.merge(&e)
		b.merge(&e)
		b.merge(&e)
		return digestEqual(a.StateDigest(), b.StateDigest())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: counter merge is order-insensitive and duplicate-tolerant, and
// the merged sum equals the true total when every slot's final announcement
// is included.
func TestCounterMergeOrderInsensitive(t *testing.T) {
	f := func(incs []uint8, seed int64) bool {
		if len(incs) == 0 {
			return true
		}
		if len(incs) > 64 {
			incs = incs[:64]
		}
		// Simulate 4 writers incrementing; each increment produces a slot
		// announcement with the running slot value.
		slots := map[uint16]uint64{}
		var entries []wire.EWOEntry
		var total uint64
		for i, inc := range incs {
			owner := uint16(i%4 + 1)
			d := uint64(inc%5 + 1)
			slots[owner] += d
			total += d
			entries = append(entries, counterEntry(7, owner, slots[owner], false))
		}
		a := mkIsolated(t, Counter, 1)
		b := mkIsolated(t, Counter, 2)
		for i := range entries {
			a.merge(&entries[i])
		}
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(len(entries))
		for _, i := range perm {
			b.merge(&entries[i])
			// Duplicate some deliveries.
			if rng.Intn(3) == 0 {
				b.merge(&entries[i])
			}
		}
		return a.Sum(7) == total && b.Sum(7) == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: counter reads are monotone under any merge sequence.
func TestCounterMergeMonotoneProperty(t *testing.T) {
	f := func(vals []uint16, owners []uint8) bool {
		n := len(vals)
		if len(owners) < n {
			n = len(owners)
		}
		a := mkIsolated(t, Counter, 1)
		var last uint64
		for i := 0; i < n; i++ {
			e := counterEntry(1, uint16(owners[i]%6), uint64(vals[i]), false)
			a.merge(&e)
			cur := a.Sum(1)
			if cur < last {
				return false
			}
			last = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: full-cluster convergence under random loss, duplication and
// reordering — after quiescence plus sync rounds, all replicas agree.
func TestClusterConvergenceProperty(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		cfg := Config{Reg: 1, Capacity: 512, Kind: Counter, SyncPeriod: 500_000}
		r := newRig(t, seed, 3, cfg, netem.LinkProfile{
			Latency: 10_000, Jitter: 20_000, LossRate: 0.3, DupRate: 0.2, ReorderRate: 0.3})
		rng := r.eng.Rand()
		var total uint64
		for i := 0; i < 300; i++ {
			d := uint64(rng.Intn(9) + 1)
			r.nodes[rng.Intn(3)].Add(uint64(rng.Intn(20)), d)
			total += d
		}
		r.eng.RunFor(500 * 1000 * 1000) // 500ms: many sync rounds
		for i, n := range r.nodes {
			var sum uint64
			for k := uint64(0); k < 20; k++ {
				sum += n.Sum(k)
			}
			if sum != total {
				t.Fatalf("seed %d node %d total %d, want %d", seed, i, sum, total)
			}
		}
	}
}
