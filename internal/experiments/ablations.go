package experiments

import (
	"fmt"
	"time"

	"swishmem/internal/chain"
	"swishmem/internal/lincheck"
	"swishmem/internal/netem"
	"swishmem/internal/pisa"
	"swishmem/internal/sim"
	"swishmem/internal/stats"
	"swishmem/internal/wire"
)

// The experiments in this file are ablations of SwiShmem design choices
// that the paper motivates but does not measure. They extend the E1–E12
// index (DESIGN.md §3) as E13–E15.

// chainRig builds a raw chain cluster (no public-API controller) so
// ablations can use non-standard chain configurations.
type chainRig struct {
	eng   *sim.Engine
	net   *netem.Network
	nodes []chain.Replicator
}

func newChainRig(seed int64, n int, cfg chain.Config, profile netem.LinkProfile) *chainRig {
	eng := sim.NewEngine(seed)
	nw := netem.New(eng, profile)
	r := &chainRig{eng: eng, net: nw}
	members := make([]uint16, 0, n)
	for i := 0; i < n; i++ {
		sw := pisa.New(eng, nw, pisa.Config{Addr: netem.Addr(i + 1), PipelinePPS: 1e9})
		node, err := chain.New(sw, cfg)
		if err != nil {
			panic(err)
		}
		sw.SetMsgHandler(func(s *pisa.Switch, from netem.Addr, msg wire.Msg) {
			node.Handle(from, msg)
		})
		r.nodes = append(r.nodes, node)
		members = append(members, uint16(i+1))
	}
	cc := wire.ChainConfig{Epoch: 1, Members: members}
	for _, nd := range r.nodes {
		nd.SetChain(cc)
	}
	return r
}

// ReadPathAblation (E13) quantifies what SwiShmem's CRAQ-derived local-read
// optimization buys over classic chain replication / NetChain, where every
// read is served by the tail (§6.1 footnote 1). Under a read-intensive
// workload with occasional writes, local reads cost nothing and only the
// pending fraction pays the tail round trip; always-tail reads pay it on
// every operation and concentrate all read load on one switch.
func ReadPathAblation(seed int64) *Result {
	res := &Result{ID: "E13", Title: "ablation: CRAQ-style local reads vs always-at-tail reads (NetChain baseline)"}
	tab := stats.NewTable("E13: 1000 reads at the head, 1 write per 100 reads (3-switch chain, 10µs links)",
		"Read path", "Mean read latency", "p99", "Reads served locally", "Tail read load")

	run := func(alwaysTail bool) (mean, p99 time.Duration, local, tailLoad uint64) {
		cfg := chain.Config{Reg: 1, Capacity: 1024, ValueWidth: 8, Mode: chain.SRO,
			AlwaysTailReads: alwaysTail}
		r := newChainRig(seed, 3, cfg, netem.LinkProfile{Latency: 10_000, BandwidthBps: 100e9})
		// Seed a value.
		r.nodes[0].Write(1, []byte("v"), nil)
		r.eng.RunFor(10 * 1000 * 1000)
		h := stats.NewHistogram()
		for i := 0; i < 1000; i++ {
			if i%100 == 99 {
				r.nodes[0].Write(1, []byte("w"), nil)
				// No settling: some reads race the write (pending path).
			}
			start := r.eng.Now()
			done := false
			r.nodes[0].Read(1, func(v []byte, ok bool) {
				h.Observe(float64(r.eng.Now() - start))
				done = true
			})
			if !done {
				r.eng.RunFor(5 * 1000 * 1000) // wait for the forwarded reply
			}
			r.eng.RunFor(10_000)
		}
		r.eng.Run()
		return time.Duration(h.Mean()), time.Duration(h.Quantile(0.99)),
			r.nodes[0].Counters().ReadsLocal.Value(), r.nodes[2].Counters().TailReads.Value()
	}

	lMean, lP99, lLocal, lTail := run(false)
	tMean, tP99, tLocal, tTail := run(true)
	tab.AddRow("local unless pending (SwiShmem)", lMean, lP99, lLocal, lTail)
	tab.AddRow("always at tail (NetChain-style)", tMean, tP99, tLocal, tTail)
	res.Tables = append(res.Tables, tab)
	res.note("local-read optimization: %.0fx lower mean read latency and %dx less tail load",
		float64(tMean)/max1(float64(lMean)), tTail/max1u(lTail))
	if tMean <= lMean {
		res.note("SHAPE VIOLATION: always-tail reads not slower")
	}
	return res
}

func max1(v float64) float64 {
	if v < 1 {
		return 1
	}
	return v
}

func max1u(v uint64) uint64 {
	if v < 1 {
		return 1
	}
	return v
}

// GroupSharingAblation (E14) measures the cost side of §7's sequence-group
// sharing: with fewer groups, unrelated keys share pending bits, so a write
// to one key forces reads of other keys in its group to detour to the tail
// (false forwarding). SRAM shrinks linearly; false forwarding grows as
// groups shrink — the trade the paper leaves implicit.
func GroupSharingAblation(seed int64) *Result {
	res := &Result{ID: "E14", Title: "ablation: §7 sequence-group sharing — SRAM vs false read forwarding"}
	tab := stats.NewTable("E14: reads of idle keys while 1 hot key is written continuously (4096 keys)",
		"Groups", "Metadata SRAM", "False-forward rate")

	falseGrows := true
	var prevRate float64 = -1
	for _, groups := range []int{4096, 256, 64, 16, 4} {
		cfg := chain.Config{Reg: 1, Capacity: 4096, ValueWidth: 8, Mode: chain.SRO, Groups: groups}
		r := newChainRig(seed, 3, cfg, netem.LinkProfile{Latency: 200_000, BandwidthBps: 100e9})
		// Populate idle keys.
		for k := uint64(0); k < 512; k++ {
			r.nodes[0].Write(k, []byte("i"), nil)
		}
		r.eng.Run()
		// Hot writer keeps key 9999 pending much of the time.
		stop := false
		var hot func()
		hot = func() {
			if stop {
				return
			}
			r.nodes[0].Write(9999, []byte("h"), func(ok bool) { hot() })
		}
		hot()
		// Reads of idle keys at the head: forwarded only on group collision.
		forwarded := r.nodes[0].Counters().ReadsForwarded.Value()
		total := 0
		for k := uint64(0); k < 512; k++ {
			r.nodes[0].Read(k, func(v []byte, ok bool) {})
			total++
			r.eng.RunFor(100_000)
		}
		stop = true
		r.eng.Run()
		rate := float64(r.nodes[0].Counters().ReadsForwarded.Value()-forwarded) / float64(total)
		meta := r.nodes[0].MemoryBytes() - 4096*(8+8) // subtract the store
		tab.AddRow(groups, meta, rate)
		if prevRate >= 0 && rate < prevRate {
			falseGrows = false
		}
		prevRate = rate
	}
	res.Tables = append(res.Tables, tab)
	res.note("false forwarding grows as groups shrink: %v (SRAM falls linearly)", falseGrows)
	return res
}

// LossAnomaly (E15) measures the consistency anomaly window the chain
// backend documents for lossy chain hops (internal/chain package comment).
// The window needs sequence-group sharing (§7): when keys A and B share a
// group, a write to A dropped on a chain hop leaves A's uncommitted value
// applied upstream; when a later write to B commits, its ack clears the
// SHARED pending bit, exposing A's uncommitted value to local reads until
// A's retry commits. With per-key groups or lossless chain hops the anomaly
// cannot occur — which the loss=0 row verifies. The retransmit backend
// answers the §9 open problem: hop-level hold-back/retransmit buffers keep
// every member's apply in exact sequence order, so the rows measured with it
// must show zero violating histories at every loss rate.
func LossAnomaly(seed int64) *Result {
	res := &Result{ID: "E15", Title: "extension: SRO anomaly rate vs chain-hop loss (the §9 open question, measured)"}
	tab := stats.NewTable("E15: non-linearizable histories out of 40 seeds (2 keys sharing 1 seq group)",
		"Backend", "Chain-hop loss", "Violating histories", "Commit failures")

	for _, rep := range []chain.Replication{chain.ChainReplication, chain.RetransmitReplication} {
		for _, loss := range []float64{0, 0.05, 0.2} {
			violations, failures := lossAnomalyTrial(seed, rep,
				netem.LinkProfile{Latency: 20_000, LossRate: loss})
			tab.AddRow(rep, loss, violations, failures)
			if loss == 0 && violations != 0 {
				res.note("SHAPE VIOLATION: linearizability violated on lossless chain hops (%v)", rep)
			}
			if rep == chain.RetransmitReplication && violations != 0 {
				res.note("SHAPE VIOLATION: retransmit backend admitted %d violating histories at loss %.2f",
					violations, loss)
			}
		}
	}
	res.Tables = append(res.Tables, tab)
	res.note("chain backend: the anomaly window exists only under chain-hop loss and closes via " +
		"writer retries; retransmit backend: in-order apply with data-plane NACK/retransmission " +
		"(the §9 open problem, implemented) measures zero violating histories at every rate")
	return res
}

// NthLossAnomaly (E18) reruns the E15 anomaly measurement with the
// deterministic every-Nth-packet dropper at rates matched to E15's random
// rows (every-20th = 5%, every-5th = 20%). The two models share a long-run
// rate but distribute drops differently: random loss concentrates its drops
// in a few unlucky histories (and leaves others untouched), while the
// periodic dropper guarantees every history eats drops at exactly the
// configured cadence — no lucky seeds. The measured anomaly rate under
// every-Nth loss is therefore at least that of random loss at the same
// rate, which is exactly why the explorer's NthLossBurst episodes exist:
// they reach schedules the random model visits only with luck.
func NthLossAnomaly(seed int64) *Result {
	res := &Result{ID: "E18",
		Title: "extension: SRO anomaly rate — every-Nth vs random loss at equal rates"}
	tab := stats.NewTable("E18: non-linearizable histories out of 40 seeds (2 keys sharing 1 seq group)",
		"Backend", "Loss model", "Rate", "Violating histories", "Commit failures")
	for _, rep := range []chain.Replication{chain.ChainReplication, chain.RetransmitReplication} {
		randV := map[float64]int{}
		for _, row := range []struct {
			model string
			rate  float64
			n     int
		}{
			{"random", 0.05, 0},
			{"every-20th", 0.05, 20},
			{"random", 0.20, 0},
			{"every-5th", 0.20, 5},
		} {
			p := netem.LinkProfile{Latency: 20_000, LossRate: row.rate}
			if row.n > 0 {
				p = netem.LinkProfile{Latency: 20_000, LossEveryN: row.n}
			}
			violations, failures := lossAnomalyTrial(seed, rep, p)
			tab.AddRow(rep, row.model, row.rate, violations, failures)
			if rep == chain.RetransmitReplication {
				if violations != 0 {
					res.note("SHAPE VIOLATION: retransmit backend admitted %d violations under %s loss at %.2f",
						violations, row.model, row.rate)
				}
				continue
			}
			if row.n == 0 {
				randV[row.rate] = violations
			} else if violations < randV[row.rate] {
				res.note("SHAPE VIOLATION: every-Nth loss at rate %.2f found fewer anomalies than random", row.rate)
			}
		}
	}
	res.Tables = append(res.Tables, tab)
	res.note("matched long-run rates, different distribution: random loss spares the lucky " +
		"histories while the periodic dropper hits every one at the exact cadence, so at equal " +
		"rates every-Nth loss finds at least as many anomalies on the chain backend — while the " +
		"retransmit backend repairs every drop pattern to zero anomalies")
	return res
}

func lossAnomalyTrial(seed int64, rep chain.Replication, lossy netem.LinkProfile) (violations, failures int) {
	for trial := int64(0); trial < 40; trial++ {
		cfg := chain.Config{Reg: 1, Capacity: 64, ValueWidth: 16, Mode: chain.SRO,
			Groups: 1, RetryTimeout: 2 * time.Millisecond, Replication: rep}
		r := newChainRig(seed*100+trial, 3, cfg,
			netem.LinkProfile{Latency: 20_000, BandwidthBps: 100e9})
		// Loss only on chain hops 1->2 and 2->3 (writer->head and acks stay
		// clean so every write eventually commits via retries).
		r.net.SetOneWayLink(1, 2, lossy)
		r.net.SetOneWayLink(2, 3, lossy)

		rec := &lincheck.Recorder{}
		fails := 0
		rng := r.eng.Rand()
		n := 0
		var issue func()
		issue = func() {
			if n >= 40 {
				return
			}
			n++
			key := uint64(rng.Intn(2)) // two keys, one shared seq group
			node := r.nodes[rng.Intn(3)]
			start := int64(r.eng.Now())
			if rng.Intn(2) == 0 {
				v := fmt.Sprintf("%08x", rng.Int31())
				node.Write(key, []byte(v), func(ok bool) {
					if ok {
						rec.Add(key, lincheck.Op{Start: start, End: int64(r.eng.Now()), Write: true, Value: v})
					} else {
						fails++
					}
				})
			} else {
				node.Read(key, func(val []byte, ok bool) {
					rec.Add(key, lincheck.Op{Start: start, End: int64(r.eng.Now()), Write: false, Value: string(val)})
				})
			}
			r.eng.After(sim.Duration(rng.Int63n(int64(150*time.Microsecond))), issue)
		}
		for i := 0; i < 4; i++ {
			r.eng.After(sim.Duration(i+1), issue)
		}
		r.eng.Run()
		if _, ok := rec.CheckAll(); !ok {
			violations++
		}
		failures += fails
	}
	return violations, failures
}

// ReplicationBackends (E19) puts a price tag on closing the E15 anomaly
// window: the retransmit backend buys zero non-linearizable histories at
// 20% chain-hop loss with two bounded SRAM buffers per member and the NACK/
// retransmission traffic that repairs drops in the data plane. The table
// compares the backends on all three axes — anomalies, per-member SRAM, and
// fabric bytes per committed write — under the E15 fault shape, plus a
// lossless baseline row showing the wire cost when recovery is idle.
func ReplicationBackends(seed int64) *Result {
	res := &Result{ID: "E19",
		Title: "extension: replication backends — anomaly rate vs SRAM vs wire cost"}
	tab := stats.NewTable("E19: 3-switch chain, 2 keys sharing 1 seq group, 40 seeds x 40 ops",
		"Backend", "Chain-hop loss", "Violating histories", "Commit failures",
		"SRAM bytes/member", "Wire bytes/committed write")

	var chainSRAM, rtxSRAM int
	for _, rep := range []chain.Replication{chain.ChainReplication, chain.RetransmitReplication} {
		for _, loss := range []float64{0, 0.2} {
			lossy := netem.LinkProfile{Latency: 20_000, LossRate: loss}
			violations, failures := lossAnomalyTrial(seed, rep, lossy)
			sram, wireBytes := backendCostTrial(seed, rep, lossy)
			tab.AddRow(rep, loss, violations, failures, sram, wireBytes)
			if rep == chain.ChainReplication {
				chainSRAM = sram
			} else {
				rtxSRAM = sram
				if violations != 0 {
					res.note("SHAPE VIOLATION: retransmit backend admitted %d violations at loss %.2f",
						violations, loss)
				}
			}
		}
	}
	res.Tables = append(res.Tables, tab)
	res.note("the anomaly fix is paid for in bounded SRAM (+%d bytes/member for 2 x groups x "+
		"depth buffer slots) and in recovery traffic only when loss actually occurs",
		rtxSRAM-chainSRAM)
	if rtxSRAM <= chainSRAM {
		res.note("SHAPE VIOLATION: retransmit backend charged no extra SRAM")
	}
	return res
}

// backendCostTrial measures per-member SRAM and fabric bytes per committed
// write for one backend under one loss profile: a fixed 200-write workload
// from the head, counted against total bytes sent on the fabric.
func backendCostTrial(seed int64, rep chain.Replication, lossy netem.LinkProfile) (sram int, bytesPerWrite uint64) {
	cfg := chain.Config{Reg: 1, Capacity: 64, ValueWidth: 16, Mode: chain.SRO,
		Groups: 1, RetryTimeout: 2 * time.Millisecond, Replication: rep}
	r := newChainRig(seed, 3, cfg, netem.LinkProfile{Latency: 20_000, BandwidthBps: 100e9})
	r.net.SetOneWayLink(1, 2, lossy)
	r.net.SetOneWayLink(2, 3, lossy)
	committed := uint64(0)
	const writes = 200
	for i := 0; i < writes; i++ {
		v := fmt.Sprintf("%016d", i)
		r.nodes[0].Write(uint64(i%2), []byte(v), func(ok bool) {
			if ok {
				committed++
			}
		})
		r.eng.RunFor(100 * time.Microsecond)
	}
	r.eng.Run()
	if committed == 0 {
		return r.nodes[1].MemoryBytes(), 0
	}
	return r.nodes[1].MemoryBytes(), r.net.Totals().BytesSent / committed
}
