package experiments

import (
	"time"

	"swishmem"
	"swishmem/internal/chain/ctrlplane"
	"swishmem/internal/stats"
	"swishmem/internal/wire"
)

// DataVsControlPlane (E12) measures the §3.3 argument for data-plane
// replication: "replication protocols that run in the control plane cannot
// operate at this rate, so a control-plane solution would cause significant
// gaps between replicas." A write-intensive counter workload (the DDoS
// sketch pattern) is replicated by (a) EWO in the data plane and (b) the
// control-plane baseline limited by the co-processor's ops/s. The gap is
// the fraction of the writer's updates missing from the remote replica at
// measurement time, plus the baseline's replication backlog.
func DataVsControlPlane(seed int64) *Result {
	res := &Result{ID: "E12", Title: "§3.3: replica gap under write-intensive load, data-plane vs control-plane replication"}
	tab := stats.NewTable("E12: replica state right after a 10ms write burst (2 switches)",
		"Write rate", "Mechanism", "Writer count", "Replica count", "Replica gap", "Backlog")

	gapAlwaysWorse := true
	for _, rate := range []float64{10e3, 100e3, 1e6} { // writes/second
		writes := int(rate * 0.01) // 10ms burst
		gap := func(mechanism string) (float64, int) {
			c, _ := newCluster(swishmem.Config{Switches: 2, Seed: seed})
			interval := time.Duration(float64(time.Second) / rate)
			var writerSum, replicaSum func() uint64
			var backlog func() int
			switch mechanism {
			case "EWO":
				regs, err := c.DeclareCounter("w", swishmem.EventualOptions{Capacity: 64})
				if err != nil {
					panic(err)
				}
				c.RunFor(2 * time.Millisecond)
				for i := 0; i < writes; i++ {
					regs[0].Add(uint64(i%16), 1)
					c.RunFor(interval)
				}
				writerSum = func() uint64 { return sum16(regs[0].Sum) }
				replicaSum = func() uint64 { return sum16(regs[1].Sum) }
				backlog = func() int { return 0 }
			case "ctrl-plane":
				b0, err := c.Instance(0).NewBaselineCounter(ctrlplane.Config{Reg: 99, Capacity: 64})
				if err != nil {
					panic(err)
				}
				b1, err := c.Instance(1).NewBaselineCounter(ctrlplane.Config{Reg: 99, Capacity: 64})
				if err != nil {
					panic(err)
				}
				gc := groupOf(c, 2)
				if err := b0.Node().SetGroup(gc); err != nil {
					panic(err)
				}
				if err := b1.Node().SetGroup(gc); err != nil {
					panic(err)
				}
				c.RunFor(2 * time.Millisecond)
				for i := 0; i < writes; i++ {
					b0.Add(uint64(i%16), 1)
					c.RunFor(interval)
				}
				writerSum = func() uint64 { return sum16(b0.Sum) }
				replicaSum = func() uint64 { return sum16(b1.Sum) }
				backlog = b0.Backlog
			}
			// Measure immediately after the burst: the §3.3 "gap".
			c.RunFor(200 * time.Microsecond)
			w, r := writerSum(), replicaSum()
			if w == 0 {
				return 0, 0
			}
			return 1 - float64(r)/float64(w), backlog()
		}

		for _, mech := range []string{"EWO", "ctrl-plane"} {
			g, bl := gap(mech)
			tab.AddRow(int(rate), mech, writes, int(float64(writes)*(1-g)), g, bl)
			if mech == "EWO" && g > 0.05 && rate <= 100e3 {
				res.note("SHAPE VIOLATION: EWO gap %.2f at %v writes/s", g, rate)
			}
		}
		ewoGap, _ := gap("EWO")
		cpGap, _ := gap("ctrl-plane")
		if rate >= 100e3 && cpGap <= ewoGap {
			gapAlwaysWorse = false
		}
	}
	res.Tables = append(res.Tables, tab)
	res.note("control-plane replication lags increasingly behind as write rate approaches/exceeds the co-processor rate (100k ops/s); data-plane EWO keeps the gap near zero: %v", gapAlwaysWorse)
	return res
}

func sum16(f func(uint64) uint64) uint64 {
	var t uint64
	for k := uint64(0); k < 16; k++ {
		t += f(k)
	}
	return t
}

func groupOf(c *swishmem.Cluster, n int) (gc wire.GroupConfig) {
	gc.Epoch = 1
	for i := 0; i < n; i++ {
		gc.Members = append(gc.Members, uint16(c.Switch(i).Addr()))
	}
	return gc
}
