package experiments

import (
	"fmt"
	"time"

	"swishmem"
	"swishmem/internal/stats"
)

// EWOConvergence (E6) measures §6.2's challenge C1: with lost update
// packets, how long until every replica reflects a write? The per-write
// multicast converges in one fabric hop when it survives; when it is lost,
// the periodic synchronization repairs it — so convergence time is bounded
// by roughly the sync period regardless of loss rate, while without sync it
// never converges under heavy loss.
func EWOConvergence(seed int64) *Result {
	res := &Result{ID: "E6", Title: "§6.2: EWO convergence time vs loss rate and sync period"}
	tab := stats.NewTable("E6: time until all replicas hold a write (3 switches, 50 writes per cell)",
		"Loss", "Sync period", "Mean", "p99", "Unconverged")

	run := func(loss float64, syncPeriod time.Duration, disableSync bool) (h *stats.Histogram, lost int) {
		link := swishmem.LinkProfile{Latency: 10_000, BandwidthBps: 100e9, LossRate: loss}
		c, _ := newCluster(swishmem.Config{Switches: 3, Seed: seed, Link: &link})
		regs, err := c.DeclareCounter("x", swishmem.EventualOptions{
			Capacity: 256, SyncPeriod: syncPeriod, DisableSync: disableSync,
		})
		if err != nil {
			panic(err)
		}
		c.RunFor(2 * time.Millisecond)
		h = stats.NewHistogram()
		for i := 0; i < 50; i++ {
			key := uint64(i)
			start := c.Now()
			regs[0].Add(key, 1)
			// Poll until all replicas see it, with a per-write deadline.
			deadline := start + 100*time.Millisecond
			converged := false
			for c.Now() < deadline {
				c.RunFor(50 * time.Microsecond)
				if regs[1].Sum(key) == 1 && regs[2].Sum(key) == 1 {
					converged = true
					break
				}
			}
			if !converged {
				lost++
				continue
			}
			h.Observe(float64(c.Now() - start))
		}
		// Aggregate EWO traffic accounting across every cell of the sweep.
		res.addMetrics(c, "")
		return h, lost
	}

	bounded := true
	worstRounds := 0.0
	for _, loss := range []float64{0, 0.01, 0.05, 0.10} {
		for _, period := range []time.Duration{500 * time.Microsecond, time.Millisecond, 5 * time.Millisecond} {
			h, lost := run(loss, period, false)
			p99 := time.Duration(h.Quantile(0.99))
			tab.AddRow(loss, period, time.Duration(h.Mean()), p99, lost)
			// The hard claim is eventual consistency: nothing stays
			// unconverged. The p99-in-sync-rounds figure is reported but
			// has a seed-sensitive tail (each sync round gossips to ONE
			// random member), so it is informational.
			if lost > 0 {
				bounded = false
			}
			if r := float64(p99) / float64(period); r > worstRounds {
				worstRounds = r
			}
		}
	}
	// Control: no periodic sync at heavy loss.
	hNo, lostNo := run(0.5, time.Millisecond, true)
	tab.AddRow(0.5, "disabled", time.Duration(hNo.Mean()), time.Duration(hNo.Quantile(0.99)), lostNo)
	res.Tables = append(res.Tables, tab)
	res.note("with periodic sync, every write converged at every loss rate: %v (worst p99 ~%.0f sync rounds)",
		bounded, worstRounds)
	if !bounded {
		res.note("SHAPE VIOLATION: writes left unconverged despite periodic sync")
	}
	res.note("without sync at 50%% loss, %d/50 writes never converged (multicast-only is not eventually consistent)", lostNo)
	if lostNo == 0 {
		res.note("SHAPE VIOLATION: expected unrepaired losses without periodic sync")
	}
	return res
}

// LWWvsCRDT (E8) reproduces the §6.2 merging comparison: a counter
// maintained as a last-writer-wins register loses concurrent increments
// (each writer stamps its own read-modify-write; merges pick one), while
// the G-counter CRDT is exact — "avoids counter-intuitive scenarios such as
// a counter decreasing" and never loses an increment.
func LWWvsCRDT(seed int64) *Result {
	res := &Result{ID: "E8", Title: "§6.2: counter merged by LWW vs counter CRDT"}
	tab := stats.NewTable("E8: final counter value after concurrent increments (truth = switches x increments)",
		"Switches", "Increments each", "Truth", "LWW value", "LWW error", "CRDT value", "CRDT error")

	crdtExact := true
	lwwLossy := false
	for _, n := range []int{2, 4, 8} {
		const perSwitch = 100
		truth := uint64(n * perSwitch)

		// LWW: the counter is one register; increment = local read + write.
		link := swishmem.LinkProfile{Latency: 10_000, BandwidthBps: 100e9}
		cl, _ := newCluster(swishmem.Config{Switches: n, Seed: seed, Link: &link})
		lww, _ := cl.DeclareEventual("ctr", swishmem.EventualOptions{Capacity: 4, ValueWidth: 8})
		cl.RunFor(2 * time.Millisecond)
		for i := 0; i < perSwitch; i++ {
			for s := 0; s < n; s++ {
				v, _ := lww[s].Read(1)
				lww[s].Write(1, u64inc(v))
			}
			cl.RunFor(30 * time.Microsecond) // overlap heavy: merges race
		}
		cl.RunFor(50 * time.Millisecond)
		lwwVal := u64of(firstVal(lww[0].Read(1)))

		// CRDT: the same workload against a G-counter.
		cc, _ := newCluster(swishmem.Config{Switches: n, Seed: seed, Link: &link})
		crdt, _ := cc.DeclareCounter("ctr", swishmem.EventualOptions{Capacity: 4})
		cc.RunFor(2 * time.Millisecond)
		for i := 0; i < perSwitch; i++ {
			for s := 0; s < n; s++ {
				crdt[s].Add(1, 1)
			}
			cc.RunFor(30 * time.Microsecond)
		}
		cc.RunFor(50 * time.Millisecond)
		crdtVal := crdt[0].Sum(1)

		lwwErr := 1 - float64(lwwVal)/float64(truth)
		crdtErr := 1 - float64(crdtVal)/float64(truth)
		tab.AddRow(n, perSwitch, truth, lwwVal, lwwErr, crdtVal, crdtErr)
		if crdtVal != truth {
			crdtExact = false
		}
		if lwwVal < truth {
			lwwLossy = true
		}
	}
	res.Tables = append(res.Tables, tab)
	res.note("CRDT counter exact at every scale: %v; LWW loses concurrent increments: %v", crdtExact, lwwLossy)
	if !crdtExact {
		res.note("SHAPE VIOLATION: CRDT counter lost increments")
	}
	if !lwwLossy {
		res.note("SHAPE VIOLATION: LWW counter unexpectedly exact under concurrency")
	}
	return res
}

func u64inc(v []byte) []byte {
	n := u64of(v) + 1
	out := make([]byte, 8)
	for i := 0; i < 8; i++ {
		out[i] = byte(n >> (56 - 8*i))
	}
	return out
}

func u64of(v []byte) uint64 {
	var n uint64
	for _, b := range v {
		n = n<<8 | uint64(b)
	}
	return n
}

func firstVal(v []byte, ok bool) []byte { return v }

// Batching (E11) quantifies the §7 bandwidth-overhead remedy: "Batching
// write requests may alleviate this issue at the expense of reduced
// availability and consistency." Larger batches cut replication packets
// and bytes per update; staleness (time for the last update to reach the
// replicas) grows because updates wait in the batch buffer.
func Batching(seed int64) *Result {
	res := &Result{ID: "E11", Title: "§7: write batching — bandwidth vs staleness"}
	tab := stats.NewTable("E11: 512 counter increments on 3 switches, per-write multicast only",
		"Batch", "Update msgs", "Bytes", "Bytes/update", "Last-update staleness")

	var bytes1 float64
	monotoneBytes := true
	var prevBytes float64 = -1
	for _, batch := range []int{1, 2, 4, 8, 16, 32, 64} {
		link := swishmem.LinkProfile{Latency: 10_000, BandwidthBps: 100e9}
		c, _ := newCluster(swishmem.Config{Switches: 3, Seed: seed, Link: &link})
		regs, err := c.DeclareCounter("b", swishmem.EventualOptions{
			Capacity: 1024, Batch: batch, DisableSync: true,
		})
		if err != nil {
			panic(err)
		}
		c.RunFor(2 * time.Millisecond)
		c.ResetNetworkTotals()
		const updates = 512
		for i := 0; i < updates; i++ {
			regs[0].Add(uint64(i%128), 1)
			c.RunFor(2 * time.Microsecond)
		}
		lastAt := c.Now()
		// Staleness of the final update: flush happens when the batch
		// fills; a partial batch waits (the availability cost §7 names).
		// Observe replica convergence of the last key written.
		deadline := c.Now() + 100*time.Millisecond
		var staleness time.Duration = -1
		want := regs[0].Sum(511 % 128)
		for c.Now() < deadline {
			if regs[1].Sum(511%128) == want {
				staleness = c.Now() - lastAt
				break
			}
			c.RunFor(20 * time.Microsecond)
		}
		stale := "never (stuck in batch)"
		if staleness >= 0 {
			stale = staleness.String()
		}
		t := c.NetworkTotals()
		perUpdate := float64(t.BytesSent) / updates
		res.addMetrics(c, fmt.Sprintf("batch=%d", batch))
		tab.AddRow(batch, t.MsgsSent, t.BytesSent, perUpdate, stale)
		if batch == 1 {
			bytes1 = float64(t.BytesSent)
		}
		if prevBytes >= 0 && float64(t.BytesSent) > prevBytes {
			monotoneBytes = false
		}
		prevBytes = float64(t.BytesSent)
	}
	res.Tables = append(res.Tables, tab)
	res.note("bytes fall monotonically with batch size: %v (batch=1 baseline %d bytes)", monotoneBytes, int(bytes1))

	// Second table: the batch-aware periodic sync. SyncPacketBytes repacks a
	// sync round's full-state refresh into MTU-shaped updates (one key's
	// entries never split across packets), sized to ride the live fabric's
	// coalesce limit. The ewo.sync_bytes / ewo.update_bytes counters read
	// here are the same registry series the live soak reports, so the
	// bytes-per-update story is directly comparable across sim and live.
	syncTab := stats.NewTable("E11: periodic sync repacking under SyncPacketBytes caps (3 switches, 128 dirty keys)",
		"Cap (bytes)", "Sync packets", "Sync bytes", "Bytes/packet", "Cap respected", "Converged")
	capsOK := true
	allConverged := true
	for _, cap := range []int{0, 256, 1024} {
		c, _ := newCluster(swishmem.Config{Switches: 3, Seed: seed})
		regs, err := c.DeclareCounter("s", swishmem.EventualOptions{
			Capacity: 128, SyncPacketBytes: cap,
		})
		if err != nil {
			panic(err)
		}
		c.RunFor(2 * time.Millisecond)
		for i := 0; i < 128; i++ {
			regs[i%3].Add(uint64(i), uint64(i+1))
		}
		c.RunFor(60 * time.Millisecond)

		snap := c.Metrics().Snapshot()
		packets := snap.Sum("ewo.sync_packets")
		bytes := snap.Sum("ewo.sync_bytes")
		perPacket := 0.0
		if packets > 0 {
			perPacket = bytes / packets
		}
		// One key's entry run never splits, so a cap can only be exceeded by
		// a single oversized run; with counter entries that never happens and
		// the average packet must sit at or under the cap.
		capOK := cap == 0 || (packets > 0 && perPacket <= float64(cap))
		if !capOK {
			capsOK = false
		}
		converged := true
		for k := uint64(0); k < 128; k++ {
			want := regs[0].Sum(k)
			for s := 1; s < 3; s++ {
				if regs[s].Sum(k) != want {
					converged = false
				}
			}
		}
		if !converged {
			allConverged = false
		}
		syncTab.AddRow(cap, uint64(packets), uint64(bytes), perPacket, capOK, converged)
		res.addMetrics(c, fmt.Sprintf("synccap=%d", cap))
		c.Close()
	}
	res.Tables = append(res.Tables, syncTab)
	if capsOK && allConverged {
		res.note("sync repacking honors every byte cap and every cap converges to the same state (packing is invisible)")
	} else {
		res.note("SHAPE VIOLATION: sync repacking broke a byte cap (%v) or convergence (%v)", !capsOK, !allConverged)
	}
	return res
}
