// Package experiments regenerates every table and quantitative claim of the
// SwiShmem paper (see DESIGN.md §3 for the experiment index E1–E19). Each
// experiment builds its own deterministic cluster, drives the workload the
// paper's analysis assumes, and reports paper-style rows.
//
// The package is consumed by two harnesses: cmd/benchtab (prints the
// tables) and the repository-root bench_test.go (runs each experiment under
// go test -bench and asserts the expected shape).
package experiments

import (
	"fmt"

	"swishmem/internal/stats"
)

// Result is one experiment's output.
type Result struct {
	// ID is the experiment identifier (E1..E19).
	ID string
	// Title describes what paper content is reproduced.
	Title string
	// Tables hold the regenerated rows.
	Tables []*stats.Table
	// Notes record the expected shape and whether it held.
	Notes []string
	// Metrics is an optional per-experiment counter section built from the
	// cluster metrics registry (see addMetrics): metric name (optionally
	// suffixed with a capture label) -> aggregated value. It is exported in
	// snapshots (BENCH_*.json) but deliberately NOT rendered by String(),
	// which must stay byte-identical across runner worker counts.
	Metrics map[string]float64
}

// note appends a formatted note.
func (r *Result) note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the result for terminal output.
func (r *Result) String() string {
	out := fmt.Sprintf("### %s — %s\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		out += t.String() + "\n"
	}
	for _, n := range r.Notes {
		out += "  note: " + n + "\n"
	}
	return out
}

// Experiment is a registered experiment entry.
type Experiment struct {
	ID    string
	Name  string
	Paper string // which table/figure/claim it regenerates
	Run   func(seed int64) *Result
}

// All returns the registry in E-number order.
func All() []Experiment {
	return []Experiment{
		{"E1", "table1", "Table 1 (NF access patterns & consistency)", Table1},
		{"E2", "switch-vs-server", "§3.1 switch vs server throughput claim", SwitchVsServer},
		{"E3", "sync-bandwidth", "§6.2 periodic-sync bandwidth math", SyncBandwidth},
		{"E4", "sro-latency", "§6.1 SRO write/read latency vs chain length", SROLatency},
		{"E5", "protocol-matrix", "§5 SRO/ERO/EWO cost matrix", ProtocolMatrix},
		{"E6", "ewo-convergence", "§6.2 C1: convergence under loss", EWOConvergence},
		{"E7", "failover", "§6.3 failover & recovery", Failover},
		{"E8", "lww-vs-crdt", "§6.2 merging: LWW vs counter CRDT", LWWvsCRDT},
		{"E9", "pcc-violations", "§3.2 sharded vs replicated LB under re-routing", PCCViolations},
		{"E10", "memory", "§7 switch memory overheads", Memory},
		{"E11", "batching", "§7 write batching bandwidth/staleness trade", Batching},
		{"E12", "data-vs-control", "§3.3 data-plane vs control-plane replication", DataVsControlPlane},
		{"E13", "read-path", "ablation: local reads vs always-at-tail (NetChain)", ReadPathAblation},
		{"E14", "group-sharing", "ablation: §7 seq-group sharing SRAM/forwarding trade", GroupSharingAblation},
		{"E15", "loss-anomaly", "extension: §9 anomaly window under chain-hop loss", LossAnomaly},
		{"E16", "parallel-scaling", "extension: deterministic parallel simulation across shard counts", ParallelScaling},
		{"E17", "packet-rate", "extension: batched hot-path packets/sec over burst size x shards", PacketRate},
		{"E18", "nthloss-anomaly", "extension: anomaly rate, every-Nth vs random loss at equal rates", NthLossAnomaly},
		{"E19", "replication-backends", "extension: chain vs retransmit backend — anomalies, SRAM, wire cost", ReplicationBackends},
	}
}

// Find returns the experiment with the given ID or name.
func Find(key string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == key || e.Name == key {
			return e, true
		}
	}
	return Experiment{}, false
}
