package experiments

import (
	"strings"
	"testing"
)

// Each experiment runs end-to-end and must not report a shape violation:
// the paper's qualitative claims (who wins, what grows, what stays bounded)
// have to hold in the reproduction.
func TestAllExperimentsHoldPaperShape(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res := e.Run(1)
			if res == nil || len(res.Tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tab := range res.Tables {
				if len(tab.Rows) == 0 {
					t.Errorf("%s: empty table %q", e.ID, tab.Title)
				}
			}
			for _, n := range res.Notes {
				if strings.Contains(n, "SHAPE VIOLATION") || strings.Contains(n, "MISMATCH") {
					t.Errorf("%s: %s", e.ID, n)
				}
			}
			t.Log("\n" + res.String())
		})
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("E1"); !ok {
		t.Fatal("E1 not found by ID")
	}
	if e, ok := Find("table1"); !ok || e.ID != "E1" {
		t.Fatal("table1 not found by name")
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("bogus key found")
	}
}

func TestResultString(t *testing.T) {
	res := Memory(1)
	s := res.String()
	if !strings.Contains(s, "E10") || !strings.Contains(s, "note:") {
		t.Fatalf("render: %q", s[:80])
	}
}
