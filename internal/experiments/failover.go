package experiments

import (
	"fmt"
	"time"

	"swishmem"
	"swishmem/internal/stats"
)

// Failover (E7) measures §6.3's two phases for both protocol families.
//
// SRO: after a mid-chain fail-stop, (a) failover time = failure to first
// committed write under the repaired chain (heartbeat detection +
// reconfiguration + writer retry), and (b) recovery time = failure until a
// spare has received the full snapshot and been promoted to tail — which
// scales with the state size.
//
// EWO: failover is nothing (the multicast group shrinks); recovery is one
// group-join plus about one synchronization period.
func Failover(seed int64) *Result {
	res := &Result{ID: "E7", Title: "§6.3: failover and recovery times"}

	tab := stats.NewTable("E7a: SRO failover/recovery after mid-chain failure (3 switches + 1 spare)",
		"Keys", "Write availability restored", "Recovery (snapshot+promote)", "Snapshot writes")
	recoveryGrows := true
	var prevRecovery time.Duration
	for _, keys := range []int{1000, 5000, 20000} {
		c, _ := newCluster(swishmem.Config{
			Switches: 3, Spares: 1, Seed: seed, HeartbeatPeriod: 500 * time.Microsecond,
		})
		regs, err := c.DeclareStrong("t", swishmem.StrongOptions{
			Capacity: keys * 2, ValueWidth: 8, RetryTimeout: 500 * time.Microsecond,
		})
		if err != nil {
			panic(err)
		}
		c.RunFor(2 * time.Millisecond)
		for i := 0; i < keys; i++ {
			regs[0].Write(uint64(i), []byte("12345678"), nil)
			if i%64 == 63 {
				c.RunFor(time.Millisecond)
			}
		}
		c.RunFor(200 * time.Millisecond)

		failAt := c.Now()
		c.FailSwitch(1)
		// Probe write availability every 200µs.
		var availAt, recoverAt time.Duration
		probe := func() {
			start := c.Now()
			regs[0].Write(uint64(keys)+uint64(start), []byte("p"), func(ok bool) {
				if ok && availAt == 0 {
					availAt = c.Now()
				}
			})
		}
		for c.Now() < failAt+2*time.Second {
			probe()
			c.RunFor(200 * time.Microsecond)
			if recoverAt == 0 && c.Controller().Stats.Recoveries.Value() > 0 {
				recoverAt = c.Now()
			}
			if availAt != 0 && recoverAt != 0 {
				break
			}
		}
		snapWrites := keys // one snapshot write per key
		availStr, recovStr := "never", "never"
		if availAt > 0 {
			availStr = (availAt - failAt).String()
		}
		if recoverAt > 0 {
			recovStr = (recoverAt - failAt).String()
		}
		res.addMetrics(c, fmt.Sprintf("keys=%d", keys))
		tab.AddRow(keys, availStr, recovStr, snapWrites)
		if recoverAt-failAt < prevRecovery {
			recoveryGrows = false
		}
		prevRecovery = recoverAt - failAt
		if availAt == 0 || recoverAt == 0 {
			res.note("SHAPE VIOLATION: failover/recovery did not complete for %d keys", keys)
		}
	}
	res.Tables = append(res.Tables, tab)
	res.note("recovery time grows with state size (snapshot replay): %v", recoveryGrows)
	res.note("write availability returns after detection+reconfig, independent of state size")

	// EWO: join-by-sync.
	tab2 := stats.NewTable("E7b: EWO recovery = add to group + one sync period",
		"Sync period", "Keys", "Join-to-converged")
	for _, period := range []time.Duration{500 * time.Microsecond, time.Millisecond, 5 * time.Millisecond} {
		c, _ := newCluster(swishmem.Config{Switches: 2, Spares: 1, Seed: seed})
		regs, err := c.DeclareCounter("g", swishmem.EventualOptions{
			Capacity: 256, SyncPeriod: period,
		})
		if err != nil {
			panic(err)
		}
		c.RunFor(2 * time.Millisecond)
		const keys = 100
		for i := 0; i < keys; i++ {
			regs[0].Add(uint64(i), 3)
		}
		c.RunFor(10 * time.Millisecond)

		joinAt := c.Now()
		if err := c.JoinCounterGroup("g", 2); err != nil {
			panic(err)
		}
		id, _ := c.RegisterID("g")
		spare, err := c.Instance(2).CounterHandle(id)
		if err != nil {
			panic(err)
		}
		converged := func() bool {
			for i := 0; i < keys; i++ {
				if spare.Sum(uint64(i)) != 3 {
					return false
				}
			}
			return true
		}
		var dur time.Duration = -1
		for c.Now() < joinAt+5*time.Second {
			c.RunFor(period / 4)
			if converged() {
				dur = c.Now() - joinAt
				break
			}
		}
		durStr := "never"
		if dur >= 0 {
			durStr = dur.String()
		}
		res.addMetrics(c, fmt.Sprintf("ewo,sync=%v", period))
		tab2.AddRow(period, keys, durStr)
		if dur < 0 {
			res.note("SHAPE VIOLATION: EWO join never converged at period %v", period)
		}
	}
	res.Tables = append(res.Tables, tab2)
	res.note("EWO recovery completes within a few sync rounds of joining the multicast group")
	_ = fmt.Sprintf
	return res
}
