package experiments

import (
	"fmt"

	"swishmem/internal/chain"
	"swishmem/internal/ewo"
	"swishmem/internal/netem"
	"swishmem/internal/pisa"
	"swishmem/internal/sim"
	"swishmem/internal/stats"
)

// Memory (E10) quantifies the §7 implementation sketch's SRAM overheads by
// allocating real protocol state on a switch model and reading back the
// accounting.
//
//   - SRO: per-key store plus the "register array with a sequence number
//     and an in-progress bit per entry"; §7 notes multiple keys can share a
//     group, "reducing state requirements further" — the sweep shows the
//     saving.
//   - EWO counters: "one register array for each switch in the replica
//     group", so SRAM grows linearly with group size; the table reports how
//     many entries fit in the 10 MB budget ("large replica groups with a
//     few tens of thousands of entries, or small replica groups with over a
//     million entries").
func Memory(seed int64) *Result {
	res := &Result{ID: "E10", Title: "§7: data-plane memory cost of protocol state"}
	eng := sim.NewEngine(seed)
	nw := netem.New(eng, netem.LinkProfile{})
	budget := 10 << 20

	// Fresh switch per measurement (huge budget so nothing fails).
	var addr netem.Addr
	mkSwitch := func() *pisa.Switch {
		addr++
		return pisa.New(eng, nw, pisa.Config{Addr: addr, MemoryBytes: 1 << 30})
	}

	tabS := stats.NewTable("E10a: SRO register SRAM per switch (8B values)",
		"Keys", "Seq groups", "Store bytes", "Seq+pending bytes", "Total", "Share of 10 MB")
	sharingHelps := true
	for _, keys := range []int{10_000, 100_000, 1_000_000} {
		var fullGroups int
		for i, groups := range []int{keys, keys / 16, keys / 256} {
			n, err := chain.NewNode(mkSwitch(), chain.Config{
				Reg: 1, Capacity: keys, ValueWidth: 8, Groups: groups,
			})
			if err != nil {
				panic(err)
			}
			store := keys * (8 + 8) // key + value accounting
			seq := n.MemoryBytes() - store
			total := n.MemoryBytes()
			tabS.AddRow(keys, groups, store, seq, total, float64(total)/float64(budget))
			if i == 0 {
				fullGroups = total
			} else if total >= fullGroups {
				sharingHelps = false
			}
		}
	}
	res.Tables = append(res.Tables, tabS)
	res.note("group sharing reduces SRO metadata SRAM: %v", sharingHelps)

	tabE := stats.NewTable("E10b: EWO counter SRAM vs replica group size (16B per key-slot)",
		"Group size", "Bytes for 10k keys", "Max keys in 10 MB")
	linear := true
	var firstPerKey float64
	for _, group := range []int{2, 4, 8, 16, 32, 64} {
		n, err := ewo.NewNode(mkSwitch(), ewo.Config{
			Reg: 1, Capacity: 10_000, Kind: ewo.Counter, MaxGroup: group,
		})
		if err != nil {
			panic(err)
		}
		perKey := float64(n.MemoryBytes()) / 10_000
		maxKeys := int(float64(budget) / perKey)
		tabE.AddRow(group, n.MemoryBytes(), maxKeys)
		if firstPerKey == 0 {
			firstPerKey = perKey / float64(group)
		} else if perKey/float64(group) != firstPerKey {
			linear = false
		}
	}
	res.Tables = append(res.Tables, tabE)
	res.note("EWO counter SRAM linear in group size: %v", linear)
	res.note(fmt.Sprintf("10 MB fits ~%dk keys at group=64 and ~%dk keys at group=2 — the §7 'tens of thousands ... over a million' span",
		budget/(64*16)/1000, budget/(2*16)/1000))

	// ERO saves the pending bit (§6.1).
	nS, _ := chain.NewNode(mkSwitch(), chain.Config{Reg: 1, Capacity: 100_000, ValueWidth: 8, Mode: chain.SRO})
	nE, _ := chain.NewNode(mkSwitch(), chain.Config{Reg: 1, Capacity: 100_000, ValueWidth: 8, Mode: chain.ERO})
	tabP := stats.NewTable("E10c: pending-bit saving (100k keys)", "Mode", "SRAM bytes")
	tabP.AddRow("SRO", nS.MemoryBytes())
	tabP.AddRow("ERO", nE.MemoryBytes())
	res.Tables = append(res.Tables, tabP)
	res.note("ERO eliminates pending-bit SRAM: %d < %d", nE.MemoryBytes(), nS.MemoryBytes())
	return res
}
