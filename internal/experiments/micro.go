package experiments

import (
	"testing"
	"time"

	"swishmem"
)

// Micro is a hot-path microbenchmark shared by the repo-root bench_test.go
// (go test -bench) and cmd/benchtab's -json regression snapshot (via
// testing.Benchmark). Keeping one body for both means the numbers tracked in
// BENCH_*.json are the numbers developers see locally.
type Micro struct {
	// Name matches the Benchmark<Name> function in bench_test.go.
	Name string
	// About says what path the benchmark exercises.
	About string
	Bench func(b *testing.B)
}

// Micros returns the registered hot-path microbenchmarks.
func Micros() []Micro {
	return []Micro{
		{"SROWriteCommit", "SRO replicated write submission on a 3-switch chain", MicroSROWriteCommit},
		{"EWOCounterAdd", "EWO fast path: local counter apply + multicast enqueue", MicroEWOCounterAdd},
		{"SROLocalRead", "SRO clean-key local read", MicroSROLocalRead},
		{"ShardedCounterAdd", "EWO counter add + windowed parallel drain on a 3-shard group", MicroShardedCounterAdd},
	}
}

// MicroSROWriteCommit measures the replicated write path on a 3-switch
// chain. The timed region covers write submission (control-plane buffering,
// head send); the simulator drains that complete the commits run off the
// clock so ns/op tracks the per-write cost rather than the batch-drain
// schedule.
func MicroSROWriteCommit(b *testing.B) {
	c, _ := swishmem.New(swishmem.Config{Switches: 3, Seed: 1})
	regs, err := c.DeclareStrong("b", swishmem.StrongOptions{Capacity: 1 << 16, ValueWidth: 8})
	if err != nil {
		b.Fatal(err)
	}
	c.RunFor(2 * time.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	committed := 0
	for i := 0; i < b.N; i++ {
		regs[0].Write(uint64(i%(1<<15)), []byte("12345678"), func(ok bool) {
			if ok {
				committed++
			}
		})
		if i%256 == 255 {
			b.StopTimer()
			c.RunFor(50 * time.Millisecond)
			b.StartTimer()
		}
	}
	b.StopTimer()
	c.RunFor(time.Second)
	if committed == 0 {
		b.Fatal("no writes committed")
	}
}

// MicroEWOCounterAdd measures the EWO fast path: local apply plus multicast
// enqueue (steady-state target: 0 allocs/op).
func MicroEWOCounterAdd(b *testing.B) {
	c, _ := swishmem.New(swishmem.Config{Switches: 3, Seed: 1})
	regs, err := c.DeclareCounter("b", swishmem.EventualOptions{Capacity: 1 << 16, DisableSync: true})
	if err != nil {
		b.Fatal(err)
	}
	c.RunFor(2 * time.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		regs[0].Add(uint64(i%(1<<15)), 1)
		if i%1024 == 1023 {
			b.StopTimer()
			c.RunFor(time.Millisecond)
			b.StartTimer()
		}
	}
}

// MicroShardedCounterAdd is MicroEWOCounterAdd on a 3-shard group with the
// windowed parallel drain kept inside the timed region: each op covers the
// local apply, the cross-shard outbox append, and an amortized share of the
// barrier/window machinery (steady-state target: 0 allocs/op — the drain is
// channel wakeups plus pooled events only). Compare against EWOCounterAdd to
// read off the sharding overhead on a given machine.
func MicroShardedCounterAdd(b *testing.B) {
	c, _ := swishmem.New(swishmem.Config{Switches: 3, Seed: 1, Shards: 3})
	defer c.Close()
	regs, err := c.DeclareCounter("b", swishmem.EventualOptions{Capacity: 1 << 16, DisableSync: true})
	if err != nil {
		b.Fatal(err)
	}
	c.RunFor(2 * time.Millisecond)
	// Warm the pools and the window scratch before timing.
	for i := 0; i < 2048; i++ {
		regs[0].Add(uint64(i%(1<<15)), 1)
	}
	c.RunFor(10 * time.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		regs[0].Add(uint64(i%(1<<15)), 1)
		if i%1024 == 1023 {
			c.RunFor(time.Millisecond)
		}
	}
	b.StopTimer()
	c.RunFor(time.Millisecond)
}

// MicroSROLocalRead measures the clean-key local read path (steady-state
// target: 0 allocs/op).
func MicroSROLocalRead(b *testing.B) {
	c, _ := swishmem.New(swishmem.Config{Switches: 3, Seed: 1})
	regs, err := c.DeclareStrong("b", swishmem.StrongOptions{Capacity: 1024, ValueWidth: 8})
	if err != nil {
		b.Fatal(err)
	}
	c.RunFor(2 * time.Millisecond)
	regs[0].Write(1, []byte("12345678"), nil)
	c.RunFor(10 * time.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		regs[1].Read(1, func(v []byte, ok bool) {})
	}
}
