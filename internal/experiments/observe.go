package experiments

import (
	"swishmem"
	"swishmem/internal/obs"
)

// traceCfg is the package-level tracing hook consulted by newCluster. The
// harness (cmd/benchtab -trace) sets it before a *sequential* run; the
// parallel runner must not be combined with tracing because the sink
// collects tracers without locking.
var traceCfg struct {
	capacity int
	sink     func(*obs.Tracer)
}

// SetTracing arranges for every cluster an experiment builds to carry an
// event tracer of the given capacity; sink receives each tracer as its
// cluster is created (experiments build several clusters, e.g. one per
// chain length — merge them with obs.WriteChromeTrace, which assigns each
// tracer its own process-id lane cluster). Pass a nil sink to turn
// tracing back off.
func SetTracing(capacity int, sink func(*obs.Tracer)) {
	traceCfg.capacity = capacity
	traceCfg.sink = sink
}

// newCluster is the constructor every experiment uses instead of calling
// swishmem.New directly, so the tracing hook above sees every cluster.
func newCluster(cfg swishmem.Config) (*swishmem.Cluster, error) {
	c, err := swishmem.New(cfg)
	if err == nil && traceCfg.sink != nil {
		traceCfg.sink(c.EnableTracing(traceCfg.capacity))
	}
	return c, err
}

// addMetrics folds a cluster's live metrics into the result's Metrics
// section: counter and gauge samples are summed across label sets under
// their metric name, histograms contribute their observation count plus a
// mean. suffix (e.g. "n=8") namespaces repeated captures within one
// experiment; pass "" when the experiment snapshots a single cluster.
func (r *Result) addMetrics(c *swishmem.Cluster, suffix string) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	snap := c.Metrics().Snapshot()
	histSum := make(map[string]float64)
	for _, s := range snap.Samples {
		name := s.Name
		if suffix != "" {
			name += "/" + suffix
		}
		switch s.Kind {
		case "histogram":
			r.Metrics[name+".count"] += s.Value
			histSum[name] += s.Value * s.Mean
		default:
			r.Metrics[name] += s.Value
		}
	}
	for name, sum := range histSum {
		if n := r.Metrics[name+".count"]; n > 0 {
			r.Metrics[name+".mean"] = sum / n
		}
	}
}
