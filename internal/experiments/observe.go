package experiments

import (
	"sync"

	"swishmem"
	"swishmem/internal/obs"
)

// traceCfg is the package-level tracing hook consulted by newCluster. The
// harness (cmd/benchtab -trace) sets it before a *sequential* run; the
// parallel runner must not be combined with tracing because the sink
// collects tracers without locking.
var traceCfg struct {
	capacity int
	sink     func(*obs.Tracer)
}

// SetTracing arranges for every cluster an experiment builds to carry an
// event tracer of the given capacity; sink receives each tracer as its
// cluster is created (experiments build several clusters, e.g. one per
// chain length — merge them with obs.WriteChromeTrace, which assigns each
// tracer its own process-id lane cluster). Pass a nil sink to turn
// tracing back off.
func SetTracing(capacity int, sink func(*obs.Tracer)) {
	traceCfg.capacity = capacity
	traceCfg.sink = sink
}

// shardCfg is the package-level parallel-simulation hook consulted by
// newCluster, the -shards counterpart of traceCfg. Because sharded runs are
// byte-identical to sequential ones, turning this on changes wall time
// only, never a single table row. Sharded clusters own worker goroutines;
// they are tracked here and released by CloseClusters (the runner calls it
// after every batch).
var shardCfg struct {
	sync.Mutex
	shards int
	open   []*swishmem.Cluster
}

// SetShards makes every cluster an experiment builds run on n parallel
// simulation shards (0 restores sequential). Experiments that set
// Config.Shards themselves (the parallel-scaling experiment) are not
// overridden.
func SetShards(n int) {
	shardCfg.Lock()
	shardCfg.shards = n
	shardCfg.Unlock()
}

// CloseClusters releases the worker goroutines of every sharded cluster
// built since the last call. Idempotent and safe concurrently.
func CloseClusters() {
	shardCfg.Lock()
	open := shardCfg.open
	shardCfg.open = nil
	shardCfg.Unlock()
	for _, c := range open {
		c.Close()
	}
}

// newCluster is the constructor every experiment uses instead of calling
// swishmem.New directly, so the tracing and sharding hooks above see every
// cluster.
func newCluster(cfg swishmem.Config) (*swishmem.Cluster, error) {
	shardCfg.Lock()
	if cfg.Shards == 0 {
		cfg.Shards = shardCfg.shards
	}
	shardCfg.Unlock()
	c, err := swishmem.New(cfg)
	if err != nil {
		return c, err
	}
	if c.Shards() > 1 {
		shardCfg.Lock()
		shardCfg.open = append(shardCfg.open, c)
		shardCfg.Unlock()
	}
	if traceCfg.sink != nil {
		traceCfg.sink(c.EnableTracing(traceCfg.capacity))
	}
	return c, err
}

// addMetrics folds a cluster's live metrics into the result's Metrics
// section: counter and gauge samples are summed across label sets under
// their metric name, histograms contribute their observation count plus a
// mean. suffix (e.g. "n=8") namespaces repeated captures within one
// experiment; pass "" when the experiment snapshots a single cluster.
func (r *Result) addMetrics(c *swishmem.Cluster, suffix string) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	snap := c.Metrics().Snapshot()
	histSum := make(map[string]float64)
	for _, s := range snap.Samples {
		name := s.Name
		if suffix != "" {
			name += "/" + suffix
		}
		switch s.Kind {
		case "histogram":
			r.Metrics[name+".count"] += s.Value
			histSum[name] += s.Value * s.Mean
		default:
			r.Metrics[name] += s.Value
		}
	}
	for name, sum := range histSum {
		if n := r.Metrics[name+".count"]; n > 0 {
			r.Metrics[name+".mean"] = sum / n
		}
	}
}
