package experiments

import (
	"fmt"
	"runtime"
	"time"

	"swishmem"
	"swishmem/internal/stats"
)

// ParallelScaling (E16) validates the deterministic parallel simulation
// mode end to end: the same 8-switch mixed workload (SRO chain writes from
// every switch, EWO counters with periodic sync, heartbeats, one failure +
// recovery) runs sequentially and on 2, 4, and 8 shards, and every
// model-visible outcome — commits, counter sums, fabric totals, event
// counts — must be byte-identical across the rows.
//
// The table carries only mode-independent columns so the experiment output
// stays byte-stable whatever the host machine; wall-clock seconds and the
// derived speedups land in Metrics (excluded from String() by design)
// under parallel.wall_seconds and parallel.speedup, alongside
// parallel.cpus. Speedup claims are only meaningful when parallel.cpus
// covers the shard count — a single-core host runs the same windows with
// no overlap.
func ParallelScaling(seed int64) *Result {
	res := &Result{ID: "E16", Title: "parallel simulation: determinism and scaling across shard counts"}
	tab := stats.NewTable("E16: 8-switch mixed workload, sequential vs sharded (identical rows = deterministic)",
		"Shards", "Events", "Windows", "Commits", "Counter sum", "Net msgs", "Recoveries", "Matches seq")

	type outcome struct {
		events    uint64
		commits   int
		ctrSum    uint64
		netMsgs   uint64
		recovered uint64
	}
	var base outcome
	identical := true
	for _, shards := range []int{1, 2, 4, 8} {
		wallStart := time.Now()
		c, err := newCluster(swishmem.Config{Switches: 8, Spares: 1, Seed: seed, Shards: shards})
		if err != nil {
			panic(err)
		}
		strong, err := c.DeclareStrong("s", swishmem.StrongOptions{Capacity: 1 << 10, ValueWidth: 8})
		if err != nil {
			panic(err)
		}
		cnt, err := c.DeclareCounter("c", swishmem.EventualOptions{Capacity: 64})
		if err != nil {
			panic(err)
		}
		c.RunFor(2 * time.Millisecond)

		// Per-switch commit counters: completion callbacks run on the shard
		// of the switch whose handle was driven, so each switch gets its own
		// slot and the driver sums them after the run.
		commitBy := make([]int, 8)
		for round := 0; round < 120; round++ {
			for w := 0; w < 8; w++ {
				wc := w
				strong[w].Write(uint64(round*8+w), []byte("12345678"), func(ok bool) {
					if ok {
						commitBy[wc]++
					}
				})
				cnt[w].Add(uint64((round+w)%64), uint64(w+1))
			}
			if round == 60 {
				c.FailSwitch(3)
			}
			c.RunFor(500 * time.Microsecond)
		}
		c.RunFor(100 * time.Millisecond)

		var o outcome
		o.events = c.EventsProcessed()
		for _, n := range commitBy {
			o.commits += n
		}
		for k := uint64(0); k < 64; k++ {
			o.ctrSum += cnt[0].Sum(k)
		}
		o.netMsgs = c.NetworkTotals().MsgsSent
		o.recovered = c.Controller().Stats.Recoveries.Value()

		var windows uint64
		if g := c.ShardGroup(); g != nil {
			windows = g.Windows()
		}
		if shards == 1 {
			base = o
		}
		match := o == base
		if !match {
			identical = false
		}
		tab.AddRow(c.Shards(), o.events, windows, o.commits, o.ctrSum, o.netMsgs, o.recovered, match)

		wall := time.Since(wallStart).Seconds()
		lbl := fmt.Sprintf("shards=%d", shards)
		if res.Metrics == nil {
			res.Metrics = make(map[string]float64)
		}
		res.Metrics["parallel.wall_seconds/"+lbl] = wall
		if shards == 1 {
			res.Metrics["parallel.base_wall_seconds"] = wall
		} else if base := res.Metrics["parallel.base_wall_seconds"]; base > 0 && wall > 0 {
			res.Metrics["parallel.speedup/"+lbl] = base / wall
		}
		c.Close()
	}
	res.Metrics["parallel.cpus"] = float64(runtime.NumCPU())
	res.Tables = append(res.Tables, tab)
	if identical {
		res.note("all shard counts reproduce the sequential outcome exactly (events, commits, sums, fabric totals)")
	} else {
		res.note("SHAPE VIOLATION: sharded execution diverged from sequential")
	}
	res.note("wall-clock speedups are in Metrics (parallel.speedup/*); meaningful only when parallel.cpus >= shard count")
	return res
}
