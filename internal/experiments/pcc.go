package experiments

import (
	"time"

	"swishmem"
	"swishmem/internal/netem"
	"swishmem/internal/nf"
	"swishmem/internal/packet"
	"swishmem/internal/stats"
	"swishmem/internal/topology"
)

// PCCViolations (E9) quantifies the §3.2 motivation: an L4 load balancer
// with sharded (switch-local) state violates per-connection consistency
// whenever a flow's packets reach a different switch — after an ECMP rehash
// caused by a failure, or continuously under random multipath routing. The
// same workload on SwiShmem SRO state produces zero violations.
func PCCViolations(seed int64) *Result {
	res := &Result{ID: "E9", Title: "§3.2: LB per-connection-consistency violations, sharded vs SwiShmem"}
	tab := stats.NewTable("E9: connections observing >1 DIP (400 flows, 4 switches, 3 DIPs)",
		"Routing scenario", "Sharded", "SwiShmem SRO")

	scenarios := []struct {
		name   string
		policy topology.Policy
		fail   bool
	}{
		{"stable ECMP (no failure)", topology.ECMPMod, false},
		{"ECMP + switch failure rehash", topology.ECMPMod, true},
		{"adaptive per-packet routing", topology.RandomPerPacket, false},
	}
	shardedWorse := true
	for _, sc := range scenarios {
		sharded := runPCC(seed, true, sc.policy, sc.fail)
		repl := runPCC(seed, false, sc.policy, sc.fail)
		tab.AddRow(sc.name, sharded, repl)
		if repl != 0 {
			res.note("SHAPE VIOLATION: SwiShmem produced %d violations in %q", repl, sc.name)
		}
		if sc.fail || sc.policy == topology.RandomPerPacket {
			if sharded == 0 {
				shardedWorse = false
			}
		}
	}
	res.Tables = append(res.Tables, tab)
	res.note("sharded state breaks connections under re-routing while SwiShmem preserves PCC: %v", shardedWorse)
	return res
}

func runPCC(seed int64, sharded bool, policy topology.Policy, fail bool) int {
	const (
		switches = 4
		flows    = 400
	)
	c, _ := newCluster(swishmem.Config{Switches: switches, Seed: seed})
	lbs, err := c.DeployLoadBalancer("lb", swishmem.LBOptions{
		Capacity: 1 << 14,
		DIPs: []swishmem.Addr{
			swishmem.Addr4(192, 168, 1, 1),
			swishmem.Addr4(192, 168, 1, 2),
			swishmem.Addr4(192, 168, 1, 3),
		},
		Sharded: sharded,
	})
	if err != nil {
		panic(err)
	}
	vip := packet.Addr4(203, 0, 113, 80)
	// Egress callbacks run on the shard of their own switch, so each switch
	// records into a private map; the driver takes the set-union afterwards
	// (order-independent, hence mode-independent).
	seenBy := make([]map[uint64]map[swishmem.Addr]bool, len(lbs))
	for i := range lbs {
		l, mine := lbs[i], make(map[uint64]map[swishmem.Addr]bool)
		seenBy[i] = mine
		l.Egress = func(p *swishmem.Packet) {
			k, _ := p.Flow()
			orig := k
			orig.Dst = vip
			id := nf.FlowID(orig)
			if mine[id] == nil {
				mine[id] = make(map[swishmem.Addr]bool)
			}
			mine[id][p.IP.Dst] = true
		}
		l.Install()
	}
	c.RunFor(2 * time.Millisecond)

	var addrs []netem.Addr
	for i := 0; i < switches; i++ {
		addrs = append(addrs, c.Switch(i).Addr())
	}
	ing := topology.NewIngress(policy, addrs, c.Engine().Rand().Intn)
	deliver := func(p *swishmem.Packet) {
		k, _ := p.Flow()
		if a, ok := ing.Route(k); ok {
			c.Switch(int(a - 1)).InjectPacket(p)
		}
	}

	keys := make([]packet.FlowKey, flows)
	for i := range keys {
		keys[i] = packet.FlowKey{
			Src:     packet.AddrU32(0x0b000000 + uint32(i)),
			Dst:     vip,
			SrcPort: uint16(1024 + i), DstPort: 80, Proto: packet.ProtoTCP,
		}
		deliver(packet.ForFlow(keys[i], packet.FlagSYN, 0))
	}
	c.RunFor(300 * time.Millisecond)
	for _, k := range keys {
		deliver(packet.ForFlow(k, packet.FlagACK, 64))
	}
	c.RunFor(50 * time.Millisecond)

	if fail {
		c.FailSwitch(switches - 1)
		ing.Fail(c.Switch(switches - 1).Addr())
		c.RunFor(50 * time.Millisecond)
	}
	for round := 0; round < 2; round++ {
		for _, k := range keys {
			deliver(packet.ForFlow(k, packet.FlagACK, 64))
		}
		c.RunFor(100 * time.Millisecond)
	}

	seen := make(map[uint64]map[swishmem.Addr]bool)
	for _, mine := range seenBy {
		for id, dips := range mine {
			if seen[id] == nil {
				seen[id] = make(map[swishmem.Addr]bool)
			}
			for dip := range dips {
				seen[id][dip] = true
			}
		}
	}
	violations := 0
	for _, dips := range seen {
		if len(dips) > 1 {
			violations++
		}
	}
	return violations
}
