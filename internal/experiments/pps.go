package experiments

import (
	"fmt"
	"runtime"
	"time"

	"swishmem"
	"swishmem/internal/netem"
	"swishmem/internal/netem/live"
	"swishmem/internal/sim"
	"swishmem/internal/stats"
	"swishmem/internal/wire"
)

// PacketRate (E17) is the throughput headline: messages per wall-clock
// second through the batched hot path, swept over workload burst size (how
// many same-tick operations each switch issues per round, which controls how
// large the coalesced delivery bursts get) and simulation shard count. The
// deterministic columns — events, delivered messages, counter sums, and a
// match-vs-base flag — prove the batching layers change NOTHING observable
// while the wall-clock rate moves; the rates themselves land in Metrics
// (pps/batch=B,shards=K) so the table stays byte-stable across hosts.
func PacketRate(seed int64) *Result {
	res := &Result{ID: "E17", Title: "packet rate: batched dispatch + delivery coalescing over burst size x shards"}
	tab := stats.NewTable("E17: 8-switch EWO counter blast, per-(batch,shards) outcomes (identical rows per batch = deterministic)",
		"Batch", "Shards", "Events", "Msgs deliv", "Counter sum", "Matches base")

	type outcome struct {
		events uint64
		msgs   uint64
		ctrSum uint64
	}
	res.Metrics = make(map[string]float64)
	identical := true
	for _, batch := range []int{1, 8, 64} {
		var base outcome
		for _, shards := range []int{1, 2, 4} {
			o, wall := ppsRun(seed, batch, shards)
			if shards == 1 {
				base = o
			}
			match := o == base
			if !match {
				identical = false
			}
			tab.AddRow(batch, shards, o.events, o.msgs, o.ctrSum, match)
			lbl := fmt.Sprintf("batch=%d,shards=%d", batch, shards)
			res.Metrics["pps/"+lbl] = float64(o.msgs) / wall
			res.Metrics["pps.wall_seconds/"+lbl] = wall
		}
	}
	res.Metrics["pps.cpus"] = float64(runtime.NumCPU())
	res.Tables = append(res.Tables, tab)
	if identical {
		res.note("every shard count reproduces the sequential outcome exactly at every batch size (coalescing is invisible)")
	} else {
		res.note("SHAPE VIOLATION: batched/sharded execution diverged from sequential")
	}
	res.note("wall-clock packet rates are in Metrics (pps/batch=B,shards=K); compare across rows, not across hosts")
	return res
}

// ppsRun drives one E17 cell: each of 8 switches issues `batch` counter
// increments per round at the same virtual instant (the coalescible burst),
// with rounds scaled so total operations are identical across batch sizes.
func ppsRun(seed int64, batch, shards int) (struct {
	events uint64
	msgs   uint64
	ctrSum uint64
}, float64) {
	var o struct {
		events uint64
		msgs   uint64
		ctrSum uint64
	}
	const opsPerSwitch = 768
	start := time.Now()
	c, err := newCluster(swishmem.Config{Switches: 8, Seed: seed, Shards: shards})
	if err != nil {
		panic(err)
	}
	defer c.Close()
	cnt, err := c.DeclareCounter("c", swishmem.EventualOptions{Capacity: 128})
	if err != nil {
		panic(err)
	}
	c.RunFor(2 * time.Millisecond)
	rounds := opsPerSwitch / batch
	for round := 0; round < rounds; round++ {
		for w := 0; w < 8; w++ {
			for b := 0; b < batch; b++ {
				cnt[w].Add(uint64((round*batch+b+w)%128), uint64(w+1))
			}
		}
		c.RunFor(200 * time.Microsecond)
	}
	c.RunFor(50 * time.Millisecond)

	o.events = c.EventsProcessed()
	o.msgs = c.NetworkTotals().MsgsDeliv
	for k := uint64(0); k < 128; k++ {
		o.ctrSum += cnt[0].Sum(k)
	}
	return o, time.Since(start).Seconds()
}

// MacroResult is one packets/sec macro row in the benchtab snapshot
// (schema 4): a wall-clock throughput number with its op count, so
// cmd/benchdiff can hold a floor under the headline rates.
type MacroResult struct {
	Name   string             `json:"name"`
	About  string             `json:"about"`
	PPS    float64            `json:"pps"`
	Ops    uint64             `json:"ops"`
	WallMs float64            `json:"wall_ms"`
	Meta   map[string]float64 `json:"meta,omitempty"`
}

// Macros runs the packets/sec macro benchmarks: the simulated hot path at
// the largest burst size, and the live UDP loopback pump single-core and
// sharded. Unlike the experiment tables these are wall-clock measurements —
// they go into the snapshot for cmd/benchdiff's pps floor, not to stdout.
func Macros(seed int64) []MacroResult {
	out := []MacroResult{simPPSMacro(seed)}
	out = append(out, livePPSMacro("live.pps/pump=1", "loopback UDP pump, single goroutine", 0, 0))
	out = append(out, livePPSMacro("live.pps/multicore", "loopback UDP pump, 4 decode shards + keyed merge", 4, 0))
	out = append(out, livePPSMacro("live.pps/egress", "loopback UDP pump, coalescing sender on 2 egress workers", 0, 2))
	return out
}

// simPPSMacro measures the simulated fabric's delivered messages per wall
// second under the E17 batch=64 workload, sequentially (the pure hot-path
// number, no window coordination).
func simPPSMacro(seed int64) MacroResult {
	o, wall := ppsRun(seed, 64, 1)
	return MacroResult{
		Name:   "sim.pps/batch=64",
		About:  "simulated fabric: 8-switch EWO blast, 64-op bursts, sequential engine",
		PPS:    float64(o.msgs) / wall,
		Ops:    o.msgs,
		WallMs: wall * 1000,
		Meta:   map[string]float64{"events": float64(o.events)},
	}
}

// livePPSMacro measures the live loopback path: a coalescing sender fabric
// blasts heartbeat bursts at a receiver; the rate is the receiver's injected
// messages per wall second of blast time. pumpShards > 1 exercises the
// multi-core decode + keyed-merge pump; egressShards > 1 moves the sender's
// serialization and socket writes onto egress workers. The row also reports
// the process-wide heap allocations per received datagram over the
// steady-state window (warm pools on both sides drive it toward zero).
func livePPSMacro(name, about string, pumpShards, egressShards int) MacroResult {
	// The offered load is burst heartbeats per virtual 100µs (1.28M msgs/s).
	// The macro is deliberately source-limited at a rate every variant
	// sustains on the single-core reference host, so the rows are stable
	// floors rather than noisy saturation points: the zero-copy receive pump
	// decodes well past 2M msgs/s before it becomes the bottleneck (the
	// pre-view-decoder path saturated near 0.6M, which is why older
	// snapshots pinned the old burst of 64 at ~608k pkts/s).
	const (
		burst  = 128
		warmup = 100 * time.Millisecond
		budget = 400 * time.Millisecond
	)
	sender, err := live.NewFabric(live.FabricConfig{
		Addr: 1, Seed: 1, Coalesce: true, EgressShards: egressShards,
	})
	if err != nil {
		panic(err)
	}
	defer sender.Stop()
	recv, err := live.NewFabric(live.FabricConfig{Addr: 2, Seed: 2, PumpShards: pumpShards})
	if err != nil {
		panic(err)
	}
	defer recv.Stop()

	recv.SetSystemHandler(func(netem.Addr, wire.Msg) bool { return true })
	sender.Network().Attach(1, func(netem.Addr, any, int) {})
	sender.AddRemote(2, recv.AddrPort())
	recv.AddRemote(1, sender.AddrPort())

	// The sender's engine re-arms a blast every virtual 100µs; each blast is
	// one pump round, so the whole burst coalesces into few datagrams. The
	// heartbeats come from a pooled free list — with sharded egress the
	// marshal happens on a worker after the callback returns, so each send
	// needs its own live struct until the pump collects it back.
	seq := uint64(0)
	var free []*wire.Heartbeat
	freeFn := func(h *wire.Heartbeat) { free = append(free, h) }
	sender.Engine().Every(sim.Duration(100*time.Microsecond), func() {
		for i := 0; i < burst; i++ {
			seq++
			var hb *wire.Heartbeat
			if n := len(free); n > 0 {
				hb = free[n-1]
				free[n-1] = nil
				free = free[:n-1]
			} else {
				hb = &wire.Heartbeat{}
				hb.EnablePool(freeFn)
			}
			hb.From, hb.Seq = 1, seq
			hb.Ref()
			sender.Network().Send(1, 2, hb, hb.Size())
			hb.Release()
		}
	})
	start := time.Now()
	recv.Start()
	sender.Start()
	// Steady-state allocation accounting: skip the warm-up (pool growth,
	// socket buffers), then attribute the process's Mallocs delta to the
	// datagrams received over the measured window.
	time.Sleep(warmup)
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	rx0 := recv.Node().Stats().Received
	time.Sleep(budget - warmup)
	runtime.ReadMemStats(&ms1)
	rx1 := recv.Node().Stats().Received
	sender.Stop()
	// Let in-flight datagrams drain before reading the receiver's counters.
	time.Sleep(20 * time.Millisecond)
	wall := time.Since(start).Seconds()
	recv.Stop()
	st := recv.FStats()
	got := st.Injected + st.SystemConsumed
	allocs := 0.0
	if rx1 > rx0 {
		allocs = float64(ms1.Mallocs-ms0.Mallocs) / float64(rx1-rx0)
	}
	return MacroResult{
		Name:   name,
		About:  about,
		PPS:    float64(got) / wall,
		Ops:    got,
		WallMs: wall * 1000,
		Meta: map[string]float64{
			"decode_err":          float64(st.DecodeErr),
			"pump_rounds":         float64(st.PumpRounds),
			"pump_shards":         float64(pumpShards),
			"egress_shards":       float64(egressShards),
			"allocs_per_datagram": allocs,
		},
	}
}
