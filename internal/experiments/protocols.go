package experiments

import (
	"fmt"
	"time"

	"swishmem"
	"swishmem/internal/stats"
)

// SROLatency (E4) characterizes the SRO protocol (§6.1): write commit
// latency grows with chain length (control-plane submission + one fabric
// hop per chain link + tail acknowledgement), reads are free when the key
// is clean and pay a tail round trip when its pending bit is set.
func SROLatency(seed int64) *Result {
	res := &Result{ID: "E4", Title: "§6.1: SRO write latency vs chain length; read cost clean vs pending"}
	tab := stats.NewTable("E4a: SRO write commit latency vs chain length",
		"Chain length", "Mean", "p50", "p99", "Msgs/write")
	var prevMean float64
	monotone := true
	for _, n := range []int{2, 3, 4, 6, 8} {
		c, _ := newCluster(swishmem.Config{Switches: n, Seed: seed})
		regs, err := c.DeclareStrong("t", swishmem.StrongOptions{Capacity: 4096, ValueWidth: 8})
		if err != nil {
			panic(err)
		}
		c.RunFor(2 * time.Millisecond)
		c.ResetNetworkTotals()
		h := stats.NewHistogram()
		const writes = 200
		var issue func(i int)
		issue = func(i int) {
			if i >= writes {
				return
			}
			start := c.Now()
			regs[0].Write(uint64(i), []byte("12345678"), func(ok bool) {
				if ok {
					h.Observe(float64(c.Now() - start))
				}
				issue(i + 1)
			})
		}
		issue(0)
		c.RunFor(2 * time.Second)
		res.addMetrics(c, fmt.Sprintf("n=%d", n))
		msgsPerWrite := float64(c.NetworkTotals().MsgsSent) / writes
		tab.AddRow(n, time.Duration(h.Mean()), time.Duration(h.Quantile(0.5)),
			time.Duration(h.Quantile(0.99)), msgsPerWrite)
		if h.Mean() < prevMean {
			monotone = false
		}
		prevMean = h.Mean()
	}
	res.Tables = append(res.Tables, tab)
	res.note("write latency grows with chain length: %v", monotone)

	// Read cost: clean (local) vs pending (forwarded to tail). Slow links
	// (500us) widen the pending window so the probe reliably lands in it.
	slow := swishmem.LinkProfile{Latency: 500_000, BandwidthBps: 100e9}
	c, _ := newCluster(swishmem.Config{Switches: 3, Seed: seed, Link: &slow})
	regs, _ := c.DeclareStrong("t", swishmem.StrongOptions{Capacity: 64, ValueWidth: 8, RetryTimeout: 20 * time.Millisecond})
	c.RunFor(5 * time.Millisecond)
	regs[0].Write(1, []byte("v"), nil)
	c.RunFor(20 * time.Millisecond)

	cleanLat := readLatency(c, regs, 1)
	// Make the key pending at the head: start a write and probe before the
	// ack returns (commit takes ~2 hops + ack = ~1.5ms on 500us links).
	regs[0].Write(1, []byte("w"), nil)
	c.RunFor(700 * time.Microsecond) // head applied; tail ack still in flight
	pendingLat := readLatency(c, regs, 1)

	tab2 := stats.NewTable("E4b: SRO read cost at the head switch",
		"Key state", "Read latency", "Served by")
	tab2.AddRow("clean", cleanLat, "local replica")
	tab2.AddRow("pending", pendingLat, "tail (forwarded)")
	res.Tables = append(res.Tables, tab2)
	res.note("pending reads pay a tail round trip: %v >> %v", pendingLat, cleanLat)
	if pendingLat <= cleanLat {
		res.note("SHAPE VIOLATION: pending read not more expensive than clean read")
	}
	res.addMetrics(c, "readprobe")
	return res
}

func readLatency(c *swishmem.Cluster, regs []*swishmem.StrongRegister, key uint64) time.Duration {
	start := c.Now()
	var lat time.Duration
	regs[0].Read(key, func(v []byte, ok bool) { lat = c.Now() - start })
	c.RunFor(20 * time.Millisecond)
	return lat
}

// ProtocolMatrix (E5) measures the §5 design space: per-operation cost of
// the three register classes under a read/write mix. SRO buys
// linearizability with expensive writes and occasionally-forwarded reads;
// ERO keeps reads strictly local; EWO makes both nearly free at the price
// of eventual consistency.
func ProtocolMatrix(seed int64) *Result {
	res := &Result{ID: "E5", Title: "§5: SRO / ERO / EWO operation cost matrix"}
	tab := stats.NewTable("E5: per-op cost on a 3-switch cluster (writer at head, reader at mid)",
		"Class", "Write latency (commit)", "Write blocks output?", "Read latency", "Reads forwarded", "Consistency")

	type probe struct {
		name        string
		consistency string
		run         func() (wLat, rLat time.Duration, fwd uint64, blocking bool)
	}
	mkChain := func(ero bool) (wLat, rLat time.Duration, fwd uint64, blocking bool) {
		c, _ := newCluster(swishmem.Config{Switches: 3, Seed: seed})
		regs, _ := c.DeclareStrong("t", swishmem.StrongOptions{
			Capacity: 4096, ValueWidth: 8, ReadOptimized: ero})
		c.RunFor(2 * time.Millisecond)
		// Write latency = time to commit (output packet release).
		wh := stats.NewHistogram()
		for i := 0; i < 50; i++ {
			start := c.Now()
			regs[0].Write(uint64(i), []byte("x"), func(ok bool) {
				wh.Observe(float64(c.Now() - start))
			})
			c.RunFor(5 * time.Millisecond)
		}
		// Read latency with a concurrent write in flight on the same key:
		// the probe lands after the head applied (pending set, ~60us with
		// the default control-plane latency) but before the tail ack
		// (~81us), so SRO must forward it.
		rh := stats.NewHistogram()
		for i := 0; i < 50; i++ {
			regs[0].Write(7, []byte("y"), nil)
			c.RunFor(70 * time.Microsecond)
			start := c.Now()
			regs[0].Read(7, func(v []byte, ok bool) { rh.Observe(float64(c.Now() - start)) })
			c.RunFor(5 * time.Millisecond)
		}
		return time.Duration(wh.Mean()), time.Duration(rh.Mean()),
			regs[0].Node().Counters().ReadsForwarded.Value(), true
	}
	probes := []probe{
		{"SRO", "linearizable", func() (time.Duration, time.Duration, uint64, bool) { return mkChain(false) }},
		{"ERO", "eventual (read-opt)", func() (time.Duration, time.Duration, uint64, bool) { return mkChain(true) }},
		{"EWO", "eventual (write-opt)", func() (time.Duration, time.Duration, uint64, bool) {
			c, _ := newCluster(swishmem.Config{Switches: 3, Seed: seed})
			regs, _ := c.DeclareEventual("t", swishmem.EventualOptions{Capacity: 4096, ValueWidth: 8})
			c.RunFor(2 * time.Millisecond)
			// EWO writes apply locally and return immediately.
			start := c.Now()
			for i := 0; i < 50; i++ {
				regs[0].Write(uint64(i), []byte("x"))
			}
			wLat := (c.Now() - start) / 50 // zero virtual time
			rStart := c.Now()
			for i := 0; i < 50; i++ {
				regs[0].Read(uint64(i))
			}
			rLat := (c.Now() - rStart) / 50
			c.RunFor(10 * time.Millisecond)
			return wLat, rLat, 0, false
		}},
	}
	var sroW, eroR, ewoW time.Duration
	for _, p := range probes {
		w, r, fwd, blocking := p.run()
		blocks := "yes (buffered at ctrl plane)"
		if !blocking {
			blocks = "no"
		}
		tab.AddRow(p.name, w, blocks, r, fwd, p.consistency)
		switch p.name {
		case "SRO":
			sroW = w
		case "ERO":
			eroR = r
		case "EWO":
			ewoW = w
		}
	}
	res.Tables = append(res.Tables, tab)
	res.note("EWO writes are free (%v) vs SRO commit %v; ERO reads always local (%v)", ewoW, sroW, eroR)
	if ewoW >= sroW {
		res.note("SHAPE VIOLATION: EWO writes not cheaper than SRO")
	}
	return res
}
