package experiments

import (
	"strings"
	"sync"
	"time"

	"swishmem/internal/stats"
)

// Report is one experiment execution in a runner batch.
type Report struct {
	Experiment Experiment
	Result     *Result
	Wall       time.Duration
}

// Run executes the given experiments with the seed, using up to workers
// concurrent OS-level goroutines (values < 2 mean sequential).
//
// Every experiment builds its own simulation engine seeded from seed and
// shares no mutable state with any other (package-level protocol state is
// read-only), so the regenerated rows are bit-identical whatever the worker
// count — parallelism buys wall time only, never different results. Reports
// come back in input order.
func Run(exps []Experiment, seed int64, workers int) []Report {
	return RunMetered(exps, seed, workers, nil)
}

// BatchMetrics aggregates accounting across a runner batch. Workers update
// it concurrently, so every field is a stats.AtomicCounter (the simulation's
// own stats stay plain Counters — one engine goroutine each).
type BatchMetrics struct {
	// Experiments counts completed experiment runs.
	Experiments stats.AtomicCounter
	// Tables counts tables emitted across all results.
	Tables stats.AtomicCounter
	// Notes counts notes emitted across all results.
	Notes stats.AtomicCounter
	// Violations counts notes flagging a shape violation.
	Violations stats.AtomicCounter
}

// RunMetered is Run with batch accounting: if m is non-nil each completed
// experiment adds its table/note counts to m from whichever worker ran it.
func RunMetered(exps []Experiment, seed int64, workers int, m *BatchMetrics) []Report {
	// Sharded clusters (SetShards) park worker goroutines; release every
	// cluster the batch opened once all experiments are done.
	defer CloseClusters()
	reports := make([]Report, len(exps))
	runOne := func(i int) {
		start := time.Now()
		res := exps[i].Run(seed)
		reports[i] = Report{Experiment: exps[i], Result: res, Wall: time.Since(start)}
		if m != nil {
			m.Experiments.Inc()
			m.Tables.Add(uint64(len(res.Tables)))
			m.Notes.Add(uint64(len(res.Notes)))
			for _, n := range res.Notes {
				if strings.Contains(n, "SHAPE VIOLATION") {
					m.Violations.Inc()
				}
			}
		}
	}
	ParallelFor(len(exps), workers, runOne)
	return reports
}

// ParallelFor runs fn(i) for every i in [0, n) on up to workers concurrent
// goroutines (values < 2 mean sequential, in index order). fn instances must
// not share mutable state except through their own synchronization; writing
// fn's result to slot i of a pre-sized slice is the intended pattern, and
// keeps output independent of the worker count. ParallelFor returns when
// every call has completed. It is the worker pool under the experiment
// runner and the explore sweeps.
func ParallelFor(n, workers int, fn func(i int)) {
	if workers < 2 || n < 2 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
