package experiments

import (
	"sync"
	"time"
)

// Report is one experiment execution in a runner batch.
type Report struct {
	Experiment Experiment
	Result     *Result
	Wall       time.Duration
}

// Run executes the given experiments with the seed, using up to workers
// concurrent OS-level goroutines (values < 2 mean sequential).
//
// Every experiment builds its own simulation engine seeded from seed and
// shares no mutable state with any other (package-level protocol state is
// read-only), so the regenerated rows are bit-identical whatever the worker
// count — parallelism buys wall time only, never different results. Reports
// come back in input order.
func Run(exps []Experiment, seed int64, workers int) []Report {
	reports := make([]Report, len(exps))
	runOne := func(i int) {
		start := time.Now()
		res := exps[i].Run(seed)
		reports[i] = Report{Experiment: exps[i], Result: res, Wall: time.Since(start)}
	}
	if workers < 2 || len(exps) < 2 {
		for i := range exps {
			runOne(i)
		}
		return reports
	}
	if workers > len(exps) {
		workers = len(exps)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				runOne(i)
			}
		}()
	}
	for i := range exps {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return reports
}
