package experiments

import (
	"strings"
	"sync"
	"time"

	"swishmem/internal/stats"
)

// Report is one experiment execution in a runner batch.
type Report struct {
	Experiment Experiment
	Result     *Result
	Wall       time.Duration
}

// Run executes the given experiments with the seed, using up to workers
// concurrent OS-level goroutines (values < 2 mean sequential).
//
// Every experiment builds its own simulation engine seeded from seed and
// shares no mutable state with any other (package-level protocol state is
// read-only), so the regenerated rows are bit-identical whatever the worker
// count — parallelism buys wall time only, never different results. Reports
// come back in input order.
func Run(exps []Experiment, seed int64, workers int) []Report {
	return RunMetered(exps, seed, workers, nil)
}

// BatchMetrics aggregates accounting across a runner batch. Workers update
// it concurrently, so every field is a stats.AtomicCounter (the simulation's
// own stats stay plain Counters — one engine goroutine each).
type BatchMetrics struct {
	// Experiments counts completed experiment runs.
	Experiments stats.AtomicCounter
	// Tables counts tables emitted across all results.
	Tables stats.AtomicCounter
	// Notes counts notes emitted across all results.
	Notes stats.AtomicCounter
	// Violations counts notes flagging a shape violation.
	Violations stats.AtomicCounter
}

// RunMetered is Run with batch accounting: if m is non-nil each completed
// experiment adds its table/note counts to m from whichever worker ran it.
func RunMetered(exps []Experiment, seed int64, workers int, m *BatchMetrics) []Report {
	reports := make([]Report, len(exps))
	runOne := func(i int) {
		start := time.Now()
		res := exps[i].Run(seed)
		reports[i] = Report{Experiment: exps[i], Result: res, Wall: time.Since(start)}
		if m != nil {
			m.Experiments.Inc()
			m.Tables.Add(uint64(len(res.Tables)))
			m.Notes.Add(uint64(len(res.Notes)))
			for _, n := range res.Notes {
				if strings.Contains(n, "SHAPE VIOLATION") {
					m.Violations.Inc()
				}
			}
		}
	}
	if workers < 2 || len(exps) < 2 {
		for i := range exps {
			runOne(i)
		}
		return reports
	}
	if workers > len(exps) {
		workers = len(exps)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				runOne(i)
			}
		}()
	}
	for i := range exps {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return reports
}
