package experiments

import (
	"testing"
)

// TestRunParallelMatchesSequential pins the runner's core guarantee: every
// experiment builds its own engine from the seed and shares no mutable state,
// so the regenerated rows are bit-identical whatever the worker count.
func TestRunParallelMatchesSequential(t *testing.T) {
	exps := All()
	seq := Run(exps, 1, 1)
	par := Run(exps, 1, 4)
	if len(seq) != len(par) {
		t.Fatalf("got %d parallel reports, want %d", len(par), len(seq))
	}
	for i := range seq {
		if seq[i].Experiment.ID != par[i].Experiment.ID {
			t.Fatalf("report %d: parallel ran %s where sequential ran %s — input order not preserved",
				i, par[i].Experiment.ID, seq[i].Experiment.ID)
		}
		got, want := par[i].Result.String(), seq[i].Result.String()
		if got != want {
			t.Errorf("%s: parallel rows differ from sequential\n--- sequential ---\n%s--- parallel ---\n%s",
				seq[i].Experiment.ID, want, got)
		}
	}
}

// TestRunMoreWorkersThanExperiments: worker counts beyond the job count are
// clamped, not an error.
func TestRunMoreWorkersThanExperiments(t *testing.T) {
	exps := All()[:2]
	reports := Run(exps, 1, 64)
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	for i, r := range reports {
		if r.Result == nil {
			t.Fatalf("report %d has nil result", i)
		}
		if r.Experiment.ID != exps[i].ID {
			t.Fatalf("report %d is %s, want %s", i, r.Experiment.ID, exps[i].ID)
		}
	}
}
