package experiments

import (
	"strings"
	"testing"
)

// TestRunParallelMatchesSequential pins the runner's core guarantee: every
// experiment builds its own engine from the seed and shares no mutable state,
// so the regenerated rows are bit-identical whatever the worker count.
func TestRunParallelMatchesSequential(t *testing.T) {
	exps := All()
	seq := Run(exps, 1, 1)
	par := Run(exps, 1, 4)
	if len(seq) != len(par) {
		t.Fatalf("got %d parallel reports, want %d", len(par), len(seq))
	}
	for i := range seq {
		if seq[i].Experiment.ID != par[i].Experiment.ID {
			t.Fatalf("report %d: parallel ran %s where sequential ran %s — input order not preserved",
				i, par[i].Experiment.ID, seq[i].Experiment.ID)
		}
		got, want := par[i].Result.String(), seq[i].Result.String()
		if got != want {
			t.Errorf("%s: parallel rows differ from sequential\n--- sequential ---\n%s--- parallel ---\n%s",
				seq[i].Experiment.ID, want, got)
		}
	}
}

// TestRunMeteredBatchAndResultMetrics: RunMetered aggregates batch counters
// from whichever workers ran the experiments (AtomicCounter under -race),
// and experiments that snapshot their clusters come back with a non-empty
// Metrics section that String() deliberately omits.
func TestRunMeteredBatchAndResultMetrics(t *testing.T) {
	e4, ok := Find("E4")
	if !ok {
		t.Fatal("E4 not registered")
	}
	e3, _ := Find("E3")
	var m BatchMetrics
	reports := RunMetered([]Experiment{e3, e4}, 1, 2, &m)
	if got := m.Experiments.Value(); got != 2 {
		t.Fatalf("batch experiments = %d, want 2", got)
	}
	if m.Tables.Value() == 0 || m.Notes.Value() == 0 {
		t.Fatalf("batch tables/notes = %d/%d, want non-zero", m.Tables.Value(), m.Notes.Value())
	}
	res := reports[1].Result
	if len(res.Metrics) == 0 {
		t.Fatal("E4 result has no metrics section")
	}
	if v := res.Metrics["chain.writes_committed/n=8"]; v != 200 {
		t.Fatalf("E4 chain.writes_committed/n=8 = %v, want 200", v)
	}
	if res.Metrics["chain.write_latency_ns/n=2.count"] == 0 {
		t.Fatal("E4 write latency histogram recorded nothing")
	}
	for name := range res.Metrics {
		if strings.Contains(res.String(), name) {
			t.Fatalf("String() leaks metric %q — rows must stay identical with metrics on", name)
		}
	}
}

// TestRunMoreWorkersThanExperiments: worker counts beyond the job count are
// clamped, not an error.
func TestRunMoreWorkersThanExperiments(t *testing.T) {
	exps := All()[:2]
	reports := Run(exps, 1, 64)
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	for i, r := range reports {
		if r.Result == nil {
			t.Fatalf("report %d has nil result", i)
		}
		if r.Experiment.ID != exps[i].ID {
			t.Fatalf("report %d is %s, want %s", i, r.Experiment.ID, exps[i].ID)
		}
	}
}
