package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// TestExperimentsShardedRowsIdentical runs the full registry sequentially
// and again with the -shards hook active, and requires every rendered table
// row and note to match byte for byte. This is the experiments half of the
// parallel-simulation contract: turning on shards changes wall time, never
// a result. (E16 sets its own shard counts and is exercised by its own
// rows; it is skipped here to avoid double-driving the hook.)
func TestExperimentsShardedRowsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole registry twice")
	}
	const seed = 1
	var exps []Experiment
	for _, e := range All() {
		if e.ID != "E16" {
			exps = append(exps, e)
		}
	}

	render := func(shards int) map[string]string {
		SetShards(shards)
		defer SetShards(0)
		defer CloseClusters()
		out := make(map[string]string, len(exps))
		for _, e := range exps {
			out[e.ID] = e.Run(seed).String()
		}
		return out
	}
	seq := render(0)
	shd := render(4)
	for _, e := range exps {
		if seq[e.ID] != shd[e.ID] {
			t.Errorf("%s (%s): sharded output diverged from sequential:\n%s",
				e.ID, e.Name, diffLines(seq[e.ID], shd[e.ID]))
		}
	}
}

func diffLines(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(w) || i < len(g); i++ {
		var lw, lg string
		if i < len(w) {
			lw = w[i]
		}
		if i < len(g) {
			lg = g[i]
		}
		if lw != lg {
			return fmt.Sprintf("line %d:\n  sequential: %s\n  sharded:    %s", i+1, lw, lg)
		}
	}
	return "lengths differ"
}
