package experiments

import (
	"fmt"
	"time"

	"swishmem"
	"swishmem/internal/packet"
	"swishmem/internal/stats"
)

// Table1 (E1) empirically re-derives Table 1 of the paper: each NF runs its
// canonical workload on a 3-switch cluster, and the shared-register
// read/write frequencies are measured at the SwiShmem layer. The derived
// classes (write frequency, read frequency, consistency) must match the
// paper's six rows.
func Table1(seed int64) *Result {
	res := &Result{ID: "E1", Title: "Table 1: NFs classified by access pattern and consistency"}
	tab := stats.NewTable("Table 1 (measured)",
		"Application", "State", "Writes/pkt", "Writes/conn", "Reads/pkt",
		"Write freq", "Read freq", "Consistency")

	type row struct {
		app, state   string
		wPkt, wConn  float64
		rPkt         float64
		consistency  string
		readPeriodic bool
	}
	rows := []row{
		natRow(seed), firewallRow(seed), ipsRow(seed), lbRow(seed),
		ddosRow(seed), ratelimitRow(seed),
	}
	paper := map[string][3]string{
		"NAT":          {"New connection", "Every packet", "Strong"},
		"Firewall":     {"New connection", "Every packet", "Strong"},
		"IPS":          {"Low", "Every packet", "Weak"},
		"L4 LB":        {"New connection", "Every packet", "Strong"},
		"DDoS":         {"Every packet", "Every packet", "Weak"},
		"Rate limiter": {"Every packet", "Every window", "Weak"},
	}
	matches := 0
	for _, r := range rows {
		wClass := classifyWrites(r.wPkt, r.wConn)
		rClass := classifyReads(r.rPkt, r.readPeriodic)
		tab.AddRow(r.app, r.state, r.wPkt, r.wConn, r.rPkt, wClass, rClass, r.consistency)
		want := paper[r.app]
		if wClass == want[0] && rClass == want[1] && r.consistency == want[2] {
			matches++
		} else {
			res.note("MISMATCH %s: got (%s, %s, %s), paper says (%s, %s, %s)",
				r.app, wClass, rClass, r.consistency, want[0], want[1], want[2])
		}
	}
	res.Tables = append(res.Tables, tab)
	res.note("%d/6 rows match the paper's classification", matches)
	return res
}

func classifyWrites(perPkt, perConn float64) string {
	switch {
	case perPkt >= 0.9:
		return "Every packet"
	case perConn >= 0.9:
		return "New connection"
	default:
		return "Low"
	}
}

func classifyReads(perPkt float64, periodic bool) string {
	if perPkt >= 0.9 {
		return "Every packet"
	}
	if periodic {
		return "Every window"
	}
	return "Low"
}

// connWorkload drives conns TCP connections of pktsPerConn packets each
// through inject, spreading flows round-robin over switches via route.
func connWorkload(conns, pktsPerConn int, route func(i int) func(*packet.Packet)) (packets int) {
	for c := 0; c < conns; c++ {
		key := packet.FlowKey{
			Src:     packet.AddrU32(0x0a000000 + uint32(c+1)),
			Dst:     packet.Addr4(198, 51, 100, 7),
			SrcPort: uint16(1024 + c), DstPort: 80, Proto: packet.ProtoTCP,
		}
		deliver := route(c)
		deliver(packet.ForFlow(key, packet.FlagSYN, 0))
		for p := 1; p < pktsPerConn-1; p++ {
			deliver(packet.ForFlow(key, packet.FlagACK, 64))
		}
		deliver(packet.ForFlow(key, packet.FlagFIN|packet.FlagACK, 0))
		packets += pktsPerConn
	}
	return packets
}

const t1Conns, t1Pkts = 40, 12

func natRow(seed int64) (r struct {
	app, state   string
	wPkt, wConn  float64
	rPkt         float64
	consistency  string
	readPeriodic bool
}) {
	c, _ := newCluster(swishmem.Config{Switches: 3, Seed: seed})
	nats, err := c.DeployNAT("nat", swishmem.NATOptions{Capacity: 1 << 14, ExternalIP: swishmem.Addr4(203, 0, 113, 1)})
	if err != nil {
		panic(err)
	}
	c.RunFor(2 * time.Millisecond)
	pkts := connWorkload(t1Conns, t1Pkts, func(i int) func(*packet.Packet) {
		sw := nats[i%3].Switch()
		return func(p *packet.Packet) {
			sw.InjectPacket(p)
			c.RunFor(500 * time.Microsecond)
		}
	})
	c.RunFor(100 * time.Millisecond)
	var writes, reads uint64
	for _, n := range nats {
		writes += n.Register().Node().Counters().WritesSubmitted.Value()
		reads += n.Register().Node().Counters().ReadsLocal.Value() + n.Register().Node().Counters().ReadsForwarded.Value()
	}
	r.app, r.state, r.consistency = "NAT", "Translation table", "Strong"
	r.wPkt = float64(writes) / float64(pkts)
	r.wConn = float64(writes) / float64(t1Conns) / 2 // fwd+rev mappings per conn
	r.rPkt = float64(reads) / float64(pkts)
	return r
}

func firewallRow(seed int64) (r struct {
	app, state   string
	wPkt, wConn  float64
	rPkt         float64
	consistency  string
	readPeriodic bool
}) {
	c, _ := newCluster(swishmem.Config{Switches: 3, Seed: seed})
	fws, err := c.DeployFirewall("fw", swishmem.FirewallOptions{Capacity: 1 << 14})
	if err != nil {
		panic(err)
	}
	c.RunFor(2 * time.Millisecond)
	pkts := connWorkload(t1Conns, t1Pkts, func(i int) func(*packet.Packet) {
		sw := fws[i%3].Switch()
		return func(p *packet.Packet) {
			sw.InjectPacket(p)
			c.RunFor(500 * time.Microsecond)
		}
	})
	c.RunFor(100 * time.Millisecond)
	var writes, reads uint64
	for _, f := range fws {
		writes += f.Register().Node().Counters().WritesSubmitted.Value()
		reads += f.Register().Node().Counters().ReadsLocal.Value() + f.Register().Node().Counters().ReadsForwarded.Value()
	}
	r.app, r.state, r.consistency = "Firewall", "Connection states table", "Strong"
	r.wPkt = float64(writes) / float64(pkts)
	r.wConn = float64(writes) / float64(t1Conns) / 2 // open+close per conn
	r.rPkt = float64(reads) / float64(pkts)
	return r
}

func ipsRow(seed int64) (r struct {
	app, state   string
	wPkt, wConn  float64
	rPkt         float64
	consistency  string
	readPeriodic bool
}) {
	c, _ := newCluster(swishmem.Config{Switches: 3, Seed: seed})
	ipss, err := c.DeployIPS("ips", swishmem.IPSOptions{Capacity: 4096})
	if err != nil {
		panic(err)
	}
	c.RunFor(2 * time.Millisecond)
	// Rule pushes are rare relative to traffic.
	for i := 0; i < 3; i++ {
		ipss[0].AddSignature([]byte(fmt.Sprintf("SIGNAT%02d", i)), nil)
	}
	c.RunFor(50 * time.Millisecond)
	const pkts = t1Conns * t1Pkts
	for i := 0; i < pkts; i++ {
		p := packet.NewBuilder().Src(packet.AddrU32(0x2d000000+uint32(i))).
			Dst(packet.Addr4(10, 0, 0, 1)).TCP(1, 80, packet.FlagACK).
			Payload([]byte("ordinary web request payload")).Build()
		ipss[i%3].Switch().InjectPacket(p)
	}
	c.RunFor(50 * time.Millisecond)
	var writes, reads uint64
	for _, s := range ipss {
		writes += s.Register().Node().Counters().WritesSubmitted.Value()
		reads += s.Register().Node().Counters().ReadsLocal.Value() + s.Register().Node().Counters().ReadsForwarded.Value()
	}
	r.app, r.state, r.consistency = "IPS", "Signatures", "Weak"
	r.wPkt = float64(writes) / float64(pkts)
	r.wConn = 0
	r.rPkt = float64(reads) / float64(pkts)
	return r
}

func lbRow(seed int64) (r struct {
	app, state   string
	wPkt, wConn  float64
	rPkt         float64
	consistency  string
	readPeriodic bool
}) {
	c, _ := newCluster(swishmem.Config{Switches: 3, Seed: seed})
	lbs, err := c.DeployLoadBalancer("lb", swishmem.LBOptions{
		Capacity: 1 << 14,
		DIPs:     []swishmem.Addr{swishmem.Addr4(192, 168, 1, 1), swishmem.Addr4(192, 168, 1, 2)},
	})
	if err != nil {
		panic(err)
	}
	c.RunFor(2 * time.Millisecond)
	pkts := connWorkload(t1Conns, t1Pkts, func(i int) func(*packet.Packet) {
		sw := lbs[i%3].Switch()
		return func(p *packet.Packet) {
			sw.InjectPacket(p)
			c.RunFor(500 * time.Microsecond)
		}
	})
	c.RunFor(100 * time.Millisecond)
	var writes, reads uint64
	for _, l := range lbs {
		writes += l.Register().Node().Counters().WritesSubmitted.Value()
		reads += l.Register().Node().Counters().ReadsLocal.Value() + l.Register().Node().Counters().ReadsForwarded.Value()
	}
	r.app, r.state, r.consistency = "L4 LB", "Connection-to-DIP mapping", "Strong"
	r.wPkt = float64(writes) / float64(pkts)
	r.wConn = float64(writes) / float64(t1Conns)
	r.rPkt = float64(reads) / float64(pkts)
	return r
}

func ddosRow(seed int64) (r struct {
	app, state   string
	wPkt, wConn  float64
	rPkt         float64
	consistency  string
	readPeriodic bool
}) {
	c, _ := newCluster(swishmem.Config{Switches: 3, Seed: seed})
	dets, err := c.DeployDDoS("ddos", swishmem.DDoSOptions{Threshold: 1 << 30, Window: 50 * time.Millisecond})
	if err != nil {
		panic(err)
	}
	c.RunFor(2 * time.Millisecond)
	const pkts = t1Conns * t1Pkts
	for i := 0; i < pkts; i++ {
		p := packet.NewBuilder().Src(packet.AddrU32(0x2d000000+uint32(i))).
			Dst(packet.AddrU32(0xc0a80000+uint32(i%32))).UDP(9, 80).Build()
		dets[i%3].Switch().InjectPacket(p)
	}
	c.RunFor(20 * time.Millisecond)
	var writes, reads uint64
	for _, d := range dets {
		writes += d.Register().Node().Stats.Writes.Value()
		reads += d.Register().Node().Stats.Reads.Value()
	}
	r.app, r.state, r.consistency = "DDoS", "Sketch", "Weak"
	// The sketch touches Depth cells per packet; normalize to "state update
	// operations per packet >= 1".
	r.wPkt = float64(writes) / float64(pkts)
	r.rPkt = float64(reads) / float64(pkts)
	return r
}

func ratelimitRow(seed int64) (r struct {
	app, state   string
	wPkt, wConn  float64
	rPkt         float64
	consistency  string
	readPeriodic bool
}) {
	c, _ := newCluster(swishmem.Config{Switches: 3, Seed: seed})
	lims, err := c.DeployRateLimiter("rl", swishmem.RateLimitOptions{
		Capacity: 1024, BytesPerWindow: 1 << 30, Window: 10 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	c.RunFor(2 * time.Millisecond)
	const pkts = t1Conns * t1Pkts
	for i := 0; i < pkts; i++ {
		p := packet.NewBuilder().Src(packet.AddrU32(0x0a000000+uint32(i%8))).
			Dst(packet.Addr4(192, 168, 0, 1)).UDP(5, 443).Payload(make([]byte, 256)).Build()
		lims[i%3].Switch().InjectPacket(p)
	}
	c.RunFor(20 * time.Millisecond)
	var writes, reads uint64
	for _, l := range lims {
		writes += l.Register().Node().Stats.Writes.Value()
		reads += l.Register().Node().Stats.Reads.Value()
	}
	r.app, r.state, r.consistency = "Rate limiter", "Per-user meter", "Weak"
	r.wPkt = float64(writes) / float64(pkts)
	r.rPkt = float64(reads) / float64(pkts) // enforcement reads: per window, << 1
	r.readPeriodic = true
	return r
}
