package experiments

import (
	"fmt"
	"time"

	"swishmem"
	"swishmem/internal/netem"
	"swishmem/internal/packet"
	"swishmem/internal/pisa"
	"swishmem/internal/sim"
	"swishmem/internal/stats"
)

// SwitchVsServer (E2) reproduces the §3.1 throughput argument: "a software-
// based load balancer can process approximately 15 million packets per
// second on a single server [Maglev]; a single switch can process 5 billion
// packets per second [Tofino]" — several hundred times as many.
//
// The experiment measures saturated packet throughput of (a) the pisa
// switch model configured at Tofino-class rate and (b) a "server" modeled
// as the same pipeline abstraction at Maglev-class service rate, both
// driven far beyond capacity, and reports achieved pps and the ratio. The
// simulation runs at 1/1000 scale (5M vs 15k pps) to keep event counts
// tractable; rates scale linearly in the model, so the ratio is exact.
func SwitchVsServer(seed int64) *Result {
	res := &Result{ID: "E2", Title: "§3.1: switch vs server NF packet throughput"}
	const scale = 1000.0
	switchPPS := 5e9 / scale
	serverPPS := 15e6 / scale

	measure := func(pps float64) float64 {
		eng := sim.NewEngine(seed)
		nw := netem.New(eng, netem.LinkProfile{})
		sw := pisa.New(eng, nw, pisa.Config{Addr: 1, PipelinePPS: pps, QueueLimit: 1 << 20})
		done := 0
		sw.SetProgram(func(s *pisa.Switch, p *packet.Packet) pisa.Verdict {
			done++
			return pisa.Drop
		})
		pkt := packet.ForFlow(packet.FlowKey{
			Src: packet.Addr4(1, 1, 1, 1), Dst: packet.Addr4(2, 2, 2, 2),
			SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP}, packet.FlagACK, 0)
		// Offer 2x capacity over 10ms of virtual time.
		offered := int(2 * pps * 0.01)
		for i := 0; i < offered; i++ {
			sw.InjectPacket(pkt)
		}
		eng.RunFor(10 * time.Millisecond)
		return float64(done) / 0.01
	}

	swGot := measure(switchPPS)
	srvGot := measure(serverPPS)
	ratio := swGot / srvGot

	tab := stats.NewTable("E2: saturated NF throughput (1/1000 scale)",
		"Platform", "Configured pps", "Measured pps", "Full-scale pps")
	tab.AddRow("Programmable switch", switchPPS, swGot, swGot*scale)
	tab.AddRow("Commodity server", serverPPS, srvGot, srvGot*scale)
	res.Tables = append(res.Tables, tab)
	res.note("switch/server ratio = %.0fx (paper: 'several hundred times', 5e9/15e6 = 333x)", ratio)
	if ratio < 100 {
		res.note("SHAPE VIOLATION: ratio below 100x")
	}
	return res
}

// SyncBandwidth (E3) verifies the §6.2 back-of-envelope: synchronizing the
// full switch state every period consumes state/(period*linkrate) of the
// switch bandwidth — "even if the switches synchronize 10 MB every 1 ms,
// the total bandwidth ... would constitute ~1% of the total switch
// bandwidth" at 5 Tbps.
//
// The experiment runs a real EWO register through its packet-generator sync
// loop at a scaled state size, measures bytes on the fabric per unit time,
// checks the measurement against the formula, and then reports the paper-
// scale sweep using the validated formula.
func SyncBandwidth(seed int64) *Result {
	res := &Result{ID: "E3", Title: "§6.2: periodic synchronization bandwidth overhead"}

	// Measured, scaled: 2 switches, K keys, LWW entries of ~30B on the wire.
	const keys = 512
	measure := func(period time.Duration) (bytesPerSec float64, statePerRound float64) {
		c, _ := newCluster(swishmem.Config{Switches: 2, Seed: seed})
		regs, err := c.DeclareEventual("s", swishmem.EventualOptions{
			Capacity: keys, ValueWidth: 8, SyncPeriod: period, Batch: 1 << 20, // batch: isolate sync traffic
		})
		if err != nil {
			panic(err)
		}
		c.RunFor(2 * time.Millisecond)
		for k := 0; k < keys; k++ {
			regs[0].Write(uint64(k), []byte("12345678"))
			regs[1].Write(uint64(k), []byte("12345678"))
		}
		c.ResetNetworkTotals()
		const rounds = 40
		c.RunFor(time.Duration(rounds) * period)
		bytes := float64(c.NetworkTotals().BytesSent)
		return bytes / (float64(rounds) * period.Seconds()), bytes / rounds / 2 // per switch
	}

	tabM := stats.NewTable("E3a: measured sync traffic (scaled: 512 keys, 2 switches)",
		"Sync period", "Bytes/round/switch", "Measured B/s", "Formula B/s", "Rel err")
	okFormula := true
	for _, period := range []time.Duration{500 * time.Microsecond, time.Millisecond, 5 * time.Millisecond} {
		gotBps, statePerRound := measure(period)
		formulaBps := 2 * statePerRound / period.Seconds() // both switches sync
		rel := (gotBps - formulaBps) / formulaBps
		if rel < -0.05 || rel > 0.05 {
			okFormula = false
		}
		tabM.AddRow(period, statePerRound, gotBps, formulaBps, rel)
	}
	res.Tables = append(res.Tables, tabM)
	res.note("measured sync traffic matches state/period within 5%%: %v", okFormula)

	// Paper-scale sweep via the validated formula.
	tabP := stats.NewTable("E3b: paper-scale overhead = state/(period x 5 Tbps)",
		"State", "Sync period", "Sync rate", "Share of 5 Tbps")
	for _, state := range []float64{1 << 20, 5 << 20, 10 << 20} {
		for _, period := range []time.Duration{100 * time.Microsecond, 500 * time.Microsecond,
			time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond} {
			rate := state * 8 / period.Seconds() // bits per second
			share := rate / 5e12
			tabP.AddRow(fmtBytes(state), period, fmtBits(rate), share)
		}
	}
	res.Tables = append(res.Tables, tabP)
	res.note("paper's example point (10 MB, 1 ms): %.1f%% of switch bandwidth (paper: ~1%%)",
		(10<<20)*8.0/0.001/5e12*100)
	return res
}

func fmtBytes(b float64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%g MB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%g KB", b/(1<<10))
	default:
		return fmt.Sprintf("%g B", b)
	}
}

func fmtBits(b float64) string {
	switch {
	case b >= 1e12:
		return fmt.Sprintf("%.2f Tbps", b/1e12)
	case b >= 1e9:
		return fmt.Sprintf("%.2f Gbps", b/1e9)
	case b >= 1e6:
		return fmt.Sprintf("%.2f Mbps", b/1e6)
	default:
		return fmt.Sprintf("%.0f bps", b)
	}
}
