package explore

import (
	"math/rand"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		a, b := Generate(seed), Generate(seed)
		if a.Log() != b.Log() {
			t.Fatalf("seed %d: scenario logs differ:\n%s\nvs\n%s", seed, a.Log(), b.Log())
		}
	}
	if Generate(1).Log() == Generate(2).Log() {
		t.Fatal("different seeds generated identical scenarios")
	}
}

func TestGenerateShapes(t *testing.T) {
	strict, episodes := 0, 0
	for seed := int64(1); seed <= 200; seed++ {
		sc := Generate(seed)
		if sc.Switches < 2 || sc.Switches > 5 {
			t.Fatalf("seed %d: switches = %d", seed, sc.Switches)
		}
		if sc.Crashes() > sc.Switches-2 {
			t.Fatalf("seed %d: %d crashes would leave < 2 replicas", seed, sc.Crashes())
		}
		if sc.Strict() {
			strict++
		}
		episodes += len(sc.Episodes)
	}
	// The generator must produce a healthy mix: strict scenarios keep the
	// linearizability oracle exercised, episodes keep faults exercised.
	if strict < 20 {
		t.Errorf("only %d/200 strict scenarios", strict)
	}
	if episodes < 100 {
		t.Errorf("only %d episodes across 200 scenarios", episodes)
	}
}

func TestNormalizeInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		sc := Generate(rng.Int63n(1000))
		// Random hostile mutations that shrinking could produce.
		switch rng.Intn(5) {
		case 0:
			sc.Switches = 2
		case 1:
			sc.Steps /= 3
		case 2:
			sc.Spares = 0
		case 3:
			if len(sc.Episodes) > 0 {
				sc.Episodes[rng.Intn(len(sc.Episodes))].AtStep = rng.Intn(400)
			}
		case 4:
			sc.Switches--
		}
		n := sc.Normalize()
		if n.Switches < 2 || n.Steps < 10 || n.Keys < 1 {
			t.Fatalf("trial %d: bad shape after normalize: %+v", trial, n)
		}
		crashes := 0
		prevEnd := 0
		for _, e := range n.Episodes {
			if e.AtStep < prevEnd || e.AtStep >= n.Steps {
				t.Fatalf("trial %d: episode out of order/range: %v in\n%s", trial, e, n.Log())
			}
			prevEnd = e.AtStep + e.Steps + 1
			switch e.Kind {
			case Crash:
				crashes++
				if e.Switch >= n.Switches {
					t.Fatalf("trial %d: crash of nonexistent switch: %v", trial, e)
				}
			case PartitionFault:
				if len(e.A) == 0 || len(e.B) == 0 || e.AtStep+e.Steps >= n.Steps {
					t.Fatalf("trial %d: bad partition: %v", trial, e)
				}
			case Join:
				if e.Switch >= n.Spares {
					t.Fatalf("trial %d: join of nonexistent spare: %v", trial, e)
				}
			}
		}
		if crashes > n.Switches-2 {
			t.Fatalf("trial %d: %d crashes for %d switches", trial, crashes, n.Switches)
		}
	}
}

// TestRunDeterministic is the replayability contract: the same seed yields a
// byte-identical run log, including every fault application and oracle
// verdict.
func TestRunDeterministic(t *testing.T) {
	for _, seed := range []int64{2, 4, 7} { // strict, faulty, and crashy shapes
		sc := Generate(seed)
		a := Run(sc, RunOptions{})
		b := Run(sc, RunOptions{})
		if a.Log != b.Log {
			t.Fatalf("seed %d: run logs differ:\n%s\nvs\n%s", seed, a.Log, b.Log)
		}
	}
}

func TestRunAllOraclesPass(t *testing.T) {
	n := int64(40)
	if testing.Short() {
		n = 12
	}
	for seed := int64(1); seed <= n; seed++ {
		r := Run(Generate(seed), RunOptions{})
		if r.Failed() {
			t.Errorf("seed %d failed:\n%s", seed, r.Log)
		}
	}
}

func TestSweepCatchesAndShrinksInjectedBug(t *testing.T) {
	opt := RunOptions{InjectSkipForward: 1}
	sr := Sweep(1, 20, 4, opt)
	if len(sr.Failures) == 0 {
		t.Fatal("the injected skip-forward bug was never caught in 20 seeds")
	}
	f := sr.Failures[0]
	if f.Result.FirstOracle() == "" {
		t.Fatal("failure without an oracle name")
	}
	// The shrunk scenario must still fail the same oracle and be no larger.
	if !f.Minned.Failed() || f.Minned.FirstOracle() != f.Result.FirstOracle() {
		t.Fatalf("shrunk scenario does not reproduce the original oracle failure: %v vs %v",
			f.Minned.Failures, f.Result.Failures)
	}
	if f.Shrunk.Steps > f.Result.Scenario.Steps || len(f.Shrunk.Episodes) > len(f.Result.Scenario.Episodes) {
		t.Fatalf("shrunk scenario grew: %d/%d steps, %d/%d episodes",
			f.Shrunk.Steps, f.Result.Scenario.Steps, len(f.Shrunk.Episodes), len(f.Result.Scenario.Episodes))
	}
	// Replay contract: the printed seed reproduces the failure from scratch.
	replay := Run(Generate(f.Seed), opt)
	if !replay.Failed() {
		t.Fatalf("replay of seed %d did not fail", f.Seed)
	}
	if replay.Log != f.Result.Log {
		t.Fatalf("replay of seed %d produced a different log", f.Seed)
	}
}

func TestSweepWorkerCountInvariance(t *testing.T) {
	opt := RunOptions{InjectSkipForward: 1}
	seq := Sweep(1, 12, 1, opt)
	par := Sweep(1, 12, 8, opt)
	if len(seq.Failures) != len(par.Failures) {
		t.Fatalf("worker count changed results: %d vs %d failures", len(seq.Failures), len(par.Failures))
	}
	for i := range seq.Failures {
		if seq.Failures[i].Seed != par.Failures[i].Seed ||
			seq.Failures[i].Result.Log != par.Failures[i].Result.Log ||
			seq.Failures[i].Minned.Log != par.Failures[i].Minned.Log {
			t.Fatalf("failure %d differs between worker counts", i)
		}
	}
}

func TestShrinkKeepsFailingScenarioValid(t *testing.T) {
	opt := RunOptions{InjectSkipForward: 1}
	sr := Sweep(1, 20, 4, opt)
	if len(sr.Failures) == 0 {
		t.Skip("no failure to shrink")
	}
	sc := sr.Failures[0].Shrunk
	if norm := sc.Normalize(); norm.Log() != sc.Log() {
		t.Fatalf("shrunk scenario is not normalized:\n%s\nvs\n%s", sc.Log(), norm.Log())
	}
}

func TestReplayCommandFormat(t *testing.T) {
	f := &Failure{Seed: 42}
	if got, want := f.ReplayCommand(), "go test -run 'TestExplore$' -explore.seed=42"; got != want {
		t.Fatalf("replay = %q, want %q", got, want)
	}
	f.Opt.InjectSkipForward = 1
	if got := f.ReplayCommand(); got != "go test -run 'TestExplore$' -explore.seed=42 -explore.inject=1" {
		t.Fatalf("replay with inject = %q", got)
	}
	f.Opt.Retransmit = true
	f.Opt.InjectDisableRetransmit = true
	want := "go test -run 'TestExplore$' -explore.seed=42 -explore.inject=1" +
		" -explore.backend=retransmit -explore.inject-disable-retransmit"
	if got := f.ReplayCommand(); got != want {
		t.Fatalf("replay with backend+inject = %q, want %q", got, want)
	}
}

func TestTortureShapeRuns(t *testing.T) {
	// The fixed torture scenario (see swishmem's torture test) expressed as
	// a Scenario must pass all oracles too.
	sc := TortureScenario(1)
	r := Run(sc, RunOptions{})
	if r.Failed() {
		t.Fatalf("torture scenario failed:\n%s", r.Log)
	}
	if r.Recoveries < 1 {
		t.Fatalf("torture scenario saw no recovery (crashes=%d spares=%d)", sc.Crashes(), sc.Spares)
	}
	if len(r.ChainMembers) < 2 {
		t.Fatalf("chain shrank to %v", r.ChainMembers)
	}
}
