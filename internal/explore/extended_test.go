package explore

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// TestGenerateExtendedShapes checks the extended fault set produces every
// new episode kind, and that the classic set is untouched by its existence:
// Generate never emits a new kind, and for any seed the cluster shape and
// base link profile are identical across fault sets (the kind draw is the
// only widened draw).
func TestGenerateExtendedShapes(t *testing.T) {
	kinds := map[EpisodeKind]int{}
	for seed := int64(1); seed <= 200; seed++ {
		ext := GenerateWith(seed, FaultsExtended)
		for _, e := range ext.Episodes {
			kinds[e.Kind]++
		}
		classic := Generate(seed)
		for _, e := range classic.Episodes {
			switch e.Kind {
			case NthLossBurst, CorruptBurst, OneWayOutage, PauseResume:
				t.Fatalf("seed %d: classic generator emitted extended kind %v", seed, e.Kind)
			}
		}
		if classic.Switches != ext.Switches || classic.Spares != ext.Spares ||
			classic.Steps != ext.Steps || classic.Link != ext.Link {
			t.Fatalf("seed %d: cluster shape diverged across fault sets:\n%s\nvs\n%s",
				seed, classic.Log(), ext.Log())
		}
	}
	for _, k := range []EpisodeKind{NthLossBurst, CorruptBurst, OneWayOutage, PauseResume} {
		if kinds[k] < 5 {
			t.Errorf("kind %v appeared only %d times across 200 extended scenarios", k, kinds[k])
		}
	}
}

// TestNormalizeExtendedInvariants throws hostile mutations (the kind
// shrinking produces) at extended scenarios and checks Normalize restores
// every admission rule for the new kinds.
func TestNormalizeExtendedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 300; trial++ {
		sc := GenerateWith(rng.Int63n(1000), FaultsExtended)
		switch rng.Intn(5) {
		case 0:
			sc.Switches = 2
		case 1:
			sc.Steps /= 3
		case 2:
			sc.Switches--
		case 3:
			if len(sc.Episodes) > 0 {
				sc.Episodes[rng.Intn(len(sc.Episodes))].AtStep = rng.Intn(400)
			}
		case 4:
			if len(sc.Episodes) > 0 {
				sc.Episodes[rng.Intn(len(sc.Episodes))].Switch = rng.Intn(8)
			}
		}
		n := sc.Normalize()
		prevEnd := 0
		crashed := map[int]bool{}
		pausedSet := map[int]bool{}
		for _, e := range n.Episodes {
			if e.AtStep < prevEnd || e.AtStep >= n.Steps {
				t.Fatalf("trial %d: episode out of order/range: %v in\n%s", trial, e, n.Log())
			}
			prevEnd = e.AtStep + e.Steps + 1
			switch e.Kind {
			case Crash:
				if e.Switch >= n.Switches || pausedSet[e.Switch] {
					t.Fatalf("trial %d: bad crash: %v", trial, e)
				}
				crashed[e.Switch] = true
			case NthLossBurst:
				if e.N < 2 || e.AtStep+e.Steps >= n.Steps {
					t.Fatalf("trial %d: bad nthloss: %v", trial, e)
				}
			case CorruptBurst:
				if e.Loss <= 0 || e.AtStep+e.Steps >= n.Steps {
					t.Fatalf("trial %d: bad corrupt: %v", trial, e)
				}
			case OneWayOutage:
				if len(e.A) != 1 || len(e.B) != 1 || e.A[0] == e.B[0] ||
					e.A[0] >= n.Switches || e.B[0] >= n.Switches ||
					e.AtStep+e.Steps >= n.Steps {
					t.Fatalf("trial %d: bad oneway: %v", trial, e)
				}
			case PauseResume:
				if e.Switch >= n.Switches || crashed[e.Switch] || pausedSet[e.Switch] ||
					e.AtStep+e.Steps >= n.Steps {
					t.Fatalf("trial %d: bad pause: %v", trial, e)
				}
				pausedSet[e.Switch] = true
			}
		}
		// The workload must always have >= 2 targets: crashes and pauses
		// both retire their victim permanently.
		if n.Switches-len(crashed)-len(pausedSet) < 2 {
			t.Fatalf("trial %d: %d crashes + %d pauses for %d switches:\n%s",
				trial, len(crashed), len(pausedSet), n.Switches, n.Log())
		}
	}
}

// TestExploreExtendedAllOraclesPass is chaos parity: under every new fault
// class — deterministic every-Nth loss, payload corruption, one-way
// blackhole and reject outages, process pause/resume — the existing oracles
// all pass, with no fault-specific assertion code. The run also pins that
// the interesting paths were actually exercised: pauses happened, and at
// least one pause straddled the failure timeout so the controller evicted
// and then revived the victim.
func TestExploreExtendedAllOraclesPass(t *testing.T) {
	if testing.Short() {
		t.Skip("extended sweep is not short")
	}
	var (
		mu       sync.Mutex
		paused   int
		revivals uint64
	)
	var wg sync.WaitGroup
	sem := make(chan struct{}, 4)
	for seed := int64(1); seed <= 120; seed++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sc := GenerateWith(seed, FaultsExtended)
			r := Run(sc, RunOptions{})
			mu.Lock()
			defer mu.Unlock()
			if r.Failed() {
				t.Errorf("seed %d failed:\n%s", seed, r.Log)
			}
			for _, e := range sc.Episodes {
				if e.Kind == PauseResume {
					paused++
				}
			}
			revivals += r.Revivals
		}(seed)
	}
	wg.Wait()
	if paused < 5 {
		t.Errorf("only %d pause episodes across 120 extended seeds", paused)
	}
	if revivals == 0 {
		t.Error("no pause was long enough to trigger evict + revive; the detector path went unexercised")
	}
}

// TestExploreExtendedShardDeterminism extends the parallel-simulation
// contract to the new fault classes: with every-Nth loss, corruption,
// one-way outages, and pause/resume in play, the full Result must stay
// byte-identical across 1, 2, and 8 shards.
func TestExploreExtendedShardDeterminism(t *testing.T) {
	const seeds = 30
	type key struct {
		seed   int64
		shards int
	}
	results := make(map[key]*Result)
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, 4)
	for seed := int64(1); seed <= seeds; seed++ {
		for _, shards := range []int{1, 2, 8} {
			wg.Add(1)
			go func(seed int64, shards int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				r := Run(GenerateWith(seed, FaultsExtended), RunOptions{Shards: shards})
				mu.Lock()
				results[key{seed, shards}] = r
				mu.Unlock()
			}(seed, shards)
		}
	}
	wg.Wait()
	for seed := int64(1); seed <= seeds; seed++ {
		want := results[key{seed, 1}]
		for _, shards := range []int{2, 8} {
			got := results[key{seed, shards}]
			if got.Log != want.Log {
				t.Errorf("seed %d shards=%d: log diverged from sequential\n-- sequential --\n%s\n-- sharded --\n%s",
					seed, shards, want.Log, got.Log)
			}
			if got.Committed != want.Committed || got.Recoveries != want.Recoveries || got.Revivals != want.Revivals {
				t.Errorf("seed %d shards=%d: committed/recoveries/revivals %d/%d/%d vs %d/%d/%d",
					seed, shards, got.Committed, got.Recoveries, got.Revivals,
					want.Committed, want.Recoveries, want.Revivals)
			}
			if t.Failed() {
				t.FailNow()
			}
		}
	}
}

// TestExploreCatchesNoRevive is the injected-bug proof for the pause/resume
// fault class: break the controller's revival path and an existing oracle —
// counter totals, with zero pause-specific assertion code — must catch it,
// and the shrinker must minimize the counterexample while keeping both the
// oracle and the pause episode that provokes it.
//
// Seed 46 is the first extended seed whose pause straddles the failure
// timeout (Revivals=1 on the healthy run); pinned by the generator's
// determinism.
func TestExploreCatchesNoRevive(t *testing.T) {
	sc := GenerateWith(46, FaultsExtended)
	if r := Run(sc, RunOptions{}); r.Failed() || r.Revivals == 0 {
		t.Fatalf("seed 46 healthy run: failed=%v revivals=%d, want pass with >= 1 revival:\n%s",
			r.Failed(), r.Revivals, r.Log)
	}
	opt := RunOptions{InjectNoRevive: true}
	r := Run(sc, opt)
	if !r.Failed() {
		t.Fatalf("no-revive bug not caught:\n%s", r.Log)
	}
	if r.FirstOracle() != "counter" {
		t.Fatalf("no-revive caught by %q, want the counter-totals oracle:\n%s", r.FirstOracle(), r.Log)
	}
	shrunk, minned := Shrink(sc, opt, r)
	if minned.FirstOracle() != r.FirstOracle() {
		t.Fatalf("shrunk scenario fails %q, original failed %q", minned.FirstOracle(), r.FirstOracle())
	}
	hasPause := false
	for _, e := range shrunk.Episodes {
		if e.Kind == PauseResume {
			hasPause = true
		}
	}
	if !hasPause {
		t.Fatalf("shrunk counterexample lost the pause episode that provokes the bug:\n%s", minned.Log)
	}
	if len(shrunk.Episodes) >= len(sc.Episodes) && len(sc.Episodes) > 1 {
		t.Errorf("shrinker removed nothing: %d episodes before and after", len(sc.Episodes))
	}
}

// TestExploreCatchesSkipForwardUnderExtendedFaults re-proves the classic
// injected bug under each new fault class separately: a head that skips
// forwarding must still be caught by the durability oracle while the fabric
// is running a corruption burst, an every-Nth loss burst, or a one-way
// outage — and the shrinker must handle each kind while minimizing. One
// injected-bug proof per fault class (pause/resume has its own above).
//
// The seeds are the first extended seeds whose scenario contains the named
// kind, passes healthy, and fails durability with the bug armed; pinned by
// the generator's determinism.
func TestExploreCatchesSkipForwardUnderExtendedFaults(t *testing.T) {
	cases := []struct {
		name string
		kind EpisodeKind
		seed int64
	}{
		{"corrupt-burst", CorruptBurst, 16},
		{"nth-loss-burst", NthLossBurst, 154},
		{"one-way-outage", OneWayOutage, 440},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			sc := GenerateWith(tc.seed, FaultsExtended)
			hasKind := false
			for _, e := range sc.Episodes {
				if e.Kind == tc.kind {
					hasKind = true
				}
			}
			if !hasKind {
				t.Fatalf("seed %d lost its %v episode; regenerate the pin:\n%s", tc.seed, tc.kind, sc.Log())
			}
			if h := Run(sc, RunOptions{}); h.Failed() {
				t.Fatalf("seed %d healthy run failed:\n%s", tc.seed, h.Log)
			}
			opt := RunOptions{InjectSkipForward: 3}
			r := Run(sc, opt)
			if !r.Failed() {
				t.Fatalf("skip-forward bug not caught under %v:\n%s", tc.kind, r.Log)
			}
			if r.FirstOracle() != "durability" {
				t.Fatalf("skip-forward caught by %q, want durability:\n%s", r.FirstOracle(), r.Log)
			}
			_, minned := Shrink(sc, opt, r)
			if minned.FirstOracle() != r.FirstOracle() {
				t.Fatalf("shrunk scenario fails %q, original failed %q", minned.FirstOracle(), r.FirstOracle())
			}
		})
	}
}

// TestReplayCommandExtended: a failure found sweeping the extended set must
// say so in its replay one-liner, or the replay regenerates a different
// scenario.
func TestReplayCommandExtended(t *testing.T) {
	f := &Failure{Seed: 7, Opt: RunOptions{Faults: FaultsExtended}}
	if cmd := f.ReplayCommand(); !strings.Contains(cmd, "-explore.faults=extended") {
		t.Fatalf("replay command %q does not select the extended fault set", cmd)
	}
	f = &Failure{Seed: 7}
	if cmd := f.ReplayCommand(); strings.Contains(cmd, "faults") {
		t.Fatalf("classic replay command %q mentions fault set", cmd)
	}
}
