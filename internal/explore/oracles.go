package explore

import (
	"fmt"
	"sort"
	"strings"
)

// This file factors the explorer's end-state invariants into a data-driven
// oracle library. The checks operate on plain state views rather than on a
// *swishmem.Cluster, so any harness that can read surviving replica state —
// the simulated fault explorer, the live-cluster soak in
// internal/livecluster — runs the exact same oracles.
//
// Each oracle returns a deterministic slice of violation messages (empty
// means the invariant holds). Callers wrap them with their own "oracle
// <name>:" prefixes; names are the shrinker's comparison key.

// ChainView is one chain member's readable strong-register state.
type ChainView struct {
	// Name identifies the member in failure messages (e.g. "switch 2").
	Name string
	// Get reads the member's local replica of a key.
	Get func(key uint64) ([]byte, bool)
}

// EWOView is one EWO replica's readable state. Sum is nil for value (LWW)
// registers.
type EWOView struct {
	Name   string
	Sum    func(key uint64) uint64
	Digest func() map[uint64]string
}

// OracleDurability checks that every listed key is present on every chain
// member: a committed write traversed the whole chain, and recovery
// snapshots carry it to promoted spares, so no surviving member may lack it.
func OracleDurability(keys []uint64, members []ChainView) []string {
	var fails []string
	for _, k := range sortedKeys(keys) {
		for _, m := range members {
			if _, ok := m.Get(k); !ok {
				fails = append(fails, fmt.Sprintf("committed key %d missing on chain member %s", k, m.Name))
			}
		}
	}
	return fails
}

// OracleAgreement checks that every member holds byte-identical values for
// the listed keys (sound only when forwarding was lossless — strict
// scenarios; under loss the chain documents a bounded monotone-apply
// anomaly). Missing keys are OracleDurability's business and are skipped.
func OracleAgreement(keys []uint64, members []ChainView) []string {
	var fails []string
	for _, k := range sortedKeys(keys) {
		var ref []byte
		var refName string
		for _, m := range members {
			val, ok := m.Get(k)
			if !ok {
				continue
			}
			if refName == "" {
				ref, refName = val, m.Name
			} else if string(val) != string(ref) {
				fails = append(fails, fmt.Sprintf("key %d differs: %s has %x, %s has %x",
					k, refName, ref, m.Name, val))
			}
		}
	}
	return fails
}

// OracleCounterTotals checks exact counter totals: expect[k] is the sum of
// every increment ever issued to key k, and every replica's merged Sum must
// equal it (counters are exact and monotone; a calm sync interval makes the
// merged value identical everywhere).
func OracleCounterTotals(expect []uint64, nodes []EWOView) []string {
	var fails []string
	for _, n := range nodes {
		for k := range expect {
			if got := n.Sum(uint64(k)); got != expect[k] {
				fails = append(fails, fmt.Sprintf("%s key %d sum=%d want %d", n.Name, k, got, expect[k]))
			}
		}
	}
	return fails
}

// OracleConvergence checks that all replicas' full state digests agree
// (CRDT convergence after a calm quiesce).
func OracleConvergence(nodes []EWOView) []string {
	var ref, refName string
	for i, n := range nodes {
		s := RenderDigest(n.Digest())
		if i == 0 {
			ref, refName = s, n.Name
		} else if s != ref {
			return []string{fmt.Sprintf("digest disagreement: %s != %s", n.Name, refName)}
		}
	}
	return nil
}

// RenderDigest renders an EWO state digest deterministically (sorted keys).
func RenderDigest(d map[uint64]string) string {
	keys := make([]uint64, 0, len(d))
	for k := range d {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%d=%s;", k, d[k])
	}
	return b.String()
}

func sortedKeys(keys []uint64) []uint64 {
	out := append([]uint64(nil), keys...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
