package explore

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"swishmem"
	"swishmem/internal/lincheck"
)

// Workload/infrastructure constants shared by every scenario run. They are
// part of the model, not the scenario, so shrinking never perturbs them.
const (
	heartbeatPeriod = 500 * time.Microsecond
	retryTimeout    = 500 * time.Microsecond
	syncPeriod      = 500 * time.Microsecond
	settleTime      = 3 * time.Millisecond
	// gossipMargin is the pause inserted before every crash so EWO updates
	// issued at the victim have replicated: losing increments nobody else
	// ever heard is correct CRDT behavior, and asserting exact totals is
	// only sound once the victim has had a few dozen sync rounds.
	gossipMargin = 20 * time.Millisecond
	// quiesceTime runs after the workload on a calmed, healed fabric: long
	// enough for every writer retry budget (100 x 500us = 50ms), failover,
	// snapshot transfer, and EWO synchronization to finish.
	quiesceTime = 250 * time.Millisecond

	strongCapacity = 512
	counterKeys    = 16
	lwwKeys        = 4
)

// RunOptions modifies a run without being part of the scenario.
type RunOptions struct {
	// InjectSkipForward plants the chain.InjectSkipForward bug on the
	// initial head for that many writes — the intentional defect the
	// explorer must catch (TestExploreCatchesInjectedBug).
	InjectSkipForward int
	// Retransmit runs the strong register on the retransmit replication
	// backend (hop-to-hop NACK/retransmit, chain.RetransmitReplication)
	// instead of the default writer-retry chain. Adds the rtx oracle.
	Retransmit bool
	// InjectDisableRetransmit plants the chain.InjectDisableRetransmit bug
	// on every replica: nodes still answer NACKs but their retransmit
	// buffers silently store nothing, so gap recovery degrades to skip
	// cursors. The intentional defect the rtx oracle must catch
	// (TestExploreCatchesDisabledRetransmit). Applied to all replicas
	// because failover can make any of them a predecessor.
	InjectDisableRetransmit bool
	// InjectNoRevive disables the controller's revival path: a switch that
	// is declared failed during a pause and heartbeats again after resume
	// is never re-added to its groups. The intentional defect for the
	// pause/resume fault class — without revival the evicted switch stops
	// receiving EWO pushes and the counter-totals oracle catches the stale
	// replica (TestExploreCatchesNoRevive).
	InjectNoRevive bool
	// Faults selects the fault set Sweep generates scenarios from. It does
	// not affect Run itself (the scenario already carries its episodes);
	// it lives here so a Failure can reproduce its generation exactly.
	Faults FaultSet
	// Shards runs the cluster on that many parallel simulation shards
	// (0/1: sequential). Results — Log, Failures, everything — are
	// byte-identical across shard counts (TestExploreShardDeterminism), so
	// explorations can use all cores without weakening reproducibility.
	Shards int
	// BlackBox arms the flight recorder: the run carries a trace ring and a
	// metrics timeline, and a failing Result gets the rendered record (last
	// trace events, final snapshot, timeline tail) in Result.BlackBox.
	// Instrumentation is passive — Log and Failures stay byte-identical to an
	// unarmed run — but it costs tracer writes on every event, so sweeps run
	// unarmed and re-run only failing seeds with the recorder on.
	BlackBox bool
}

// Flight-recorder shape: enough trace tail to see the failure's final
// moments, a timeline sampled fine enough to catch the failing window.
const (
	blackBoxTraceCap  = 1 << 18
	blackBoxLastN     = 64
	blackBoxInterval  = 500 * time.Microsecond
	blackBoxTailRows  = 32
	blackBoxTimelineW = 8
)

// Result is the outcome of one scenario run.
type Result struct {
	Scenario Scenario
	// Failures lists oracle violations, each prefixed "oracle <name>:".
	// Empty means the run passed.
	Failures []string
	// Log is the deterministic scenario + execution + oracle report; for a
	// given (Scenario, RunOptions) it is byte-identical across runs.
	// RunOptions.BlackBox does not change it.
	Log string
	// BlackBox is the rendered flight record of a failing run when
	// RunOptions.BlackBox was set ("" otherwise): the last trace events, the
	// final metrics snapshot, and the timeline tail.
	BlackBox string

	// Summary facts for callers' own assertions (the torture test).
	Recoveries   uint64
	Revivals     uint64 // evicted switches re-admitted after pause/resume
	ChainMembers []uint16
	Committed    int
	BadKey       uint64
	BadHistory   []lincheck.Op
}

// Failed reports whether any oracle was violated.
func (r *Result) Failed() bool { return len(r.Failures) > 0 }

// FirstOracle returns the name of the first violated oracle ("" if none) —
// the shrinker's comparison key, so a minimized scenario still fails for
// the original reason rather than a different one.
func (r *Result) FirstOracle() string {
	if len(r.Failures) == 0 {
		return ""
	}
	s := strings.TrimPrefix(r.Failures[0], "oracle ")
	if i := strings.IndexByte(s, ':'); i >= 0 {
		return s[:i]
	}
	return s
}

// strongWrite tracks one submitted SRO write through to the history.
type strongWrite struct {
	key       uint64
	val       string
	start     int64
	end       int64
	resolved  bool
	committed bool
}

// Run executes a scenario and checks every oracle. It is deterministic:
// the cluster engine is seeded from the scenario seed and the workload uses
// its own seed-derived RNG, so equal inputs give byte-identical results.
func Run(sc Scenario, opt RunOptions) *Result {
	sc = sc.Normalize()
	res := &Result{Scenario: sc}
	var log strings.Builder
	log.WriteString(sc.Log())
	fail := func(oracle, format string, args ...any) {
		res.Failures = append(res.Failures, fmt.Sprintf("oracle %s: %s", oracle, fmt.Sprintf(format, args...)))
	}

	link := sc.Link
	c, err := swishmem.New(swishmem.Config{
		Switches: sc.Switches, Spares: sc.Spares, Seed: sc.Seed,
		Link: &link, HeartbeatPeriod: heartbeatPeriod, Shards: opt.Shards,
	})
	if err != nil {
		fail("setup", "cluster: %v", err)
		res.Log = log.String()
		return res
	}
	defer c.Close()
	if opt.BlackBox {
		c.EnableTracing(blackBoxTraceCap)
	}
	strong, err := c.DeclareStrong("s", swishmem.StrongOptions{
		Capacity: strongCapacity, ValueWidth: 8, RetryTimeout: retryTimeout,
		Retransmit: opt.Retransmit})
	if err == nil {
		_, err = c.DeclareCounter("c", swishmem.EventualOptions{
			Capacity: 128, SyncPeriod: syncPeriod})
	}
	var lww []*swishmem.EventualRegister
	if err == nil {
		lww, err = c.DeclareEventual("l", swishmem.EventualOptions{
			Capacity: 64, ValueWidth: 8, SyncPeriod: syncPeriod})
	}
	if err != nil {
		fail("setup", "declare: %v", err)
		res.Log = log.String()
		return res
	}
	ctrID, _ := c.RegisterID("c")
	lwwID, _ := c.RegisterID("l")
	var ctr []*swishmem.CounterRegister
	for i := 0; i < sc.Switches; i++ {
		h, err := c.Instance(i).CounterHandle(ctrID)
		if err != nil {
			fail("setup", "counter handle %d: %v", i, err)
			res.Log = log.String()
			return res
		}
		ctr = append(ctr, h)
	}
	if opt.InjectSkipForward > 0 {
		strong[0].Node().InjectSkipForward(opt.InjectSkipForward)
		fmt.Fprintf(&log, "inject skip-forward=%d at initial head\n", opt.InjectSkipForward)
	}
	if opt.InjectDisableRetransmit {
		for i := range strong {
			strong[i].Node().InjectDisableRetransmit()
		}
		fmt.Fprintf(&log, "inject disable-retransmit at all replicas\n")
	}
	if opt.InjectNoRevive && c.Controller() != nil {
		c.Controller().DisableRevival()
		fmt.Fprintf(&log, "inject no-revive at controller\n")
	}
	if opt.BlackBox {
		// The timeline goes nowhere; the flight record keeps only the tail
		// ring. Streaming after the declares so chain/EWO metrics are sampled.
		if _, err := c.StreamMetrics(io.Discard, blackBoxInterval, swishmem.StreamOptions{
			Windows: blackBoxTimelineW, Tail: blackBoxTailRows,
		}); err != nil {
			fail("setup", "stream: %v", err)
		}
	}
	c.RunFor(settleTime)

	// The workload RNG is decoupled from the engine RNG on purpose: shrink
	// mutations change fabric event interleavings, but the op sequence for a
	// seed stays fixed, which keeps shrunk scenarios comparable.
	wrng := rand.New(rand.NewSource(sc.Seed*6364136223846793005 + 1442695040888963407))
	// now is for DRIVER use only (between runs, when all shard clocks
	// agree). Completion callbacks run on the shard of the switch that was
	// driven and must read that switch's own clock — in a sharded run the
	// shard-0 clock is mid-window and touching it would race.
	now := func() int64 { return int64(c.Engine().Now()) }
	swClock := func(i int) func() int64 {
		eng := c.Switch(i).Engine()
		return func() int64 { return int64(eng.Now()) }
	}

	alive := make([]int, 0, sc.Switches) // replicas accepting workload ops
	for i := 0; i < sc.Switches; i++ {
		alive = append(alive, i)
	}
	removeAlive := func(sw int) {
		for i, a := range alive {
			if a == sw {
				alive = append(alive[:i:i], alive[i+1:]...)
				return
			}
		}
	}
	calm := swishmem.LinkProfile{Latency: sc.Link.Latency, BandwidthBps: sc.Link.BandwidthBps}

	var (
		writes     []*strongWrite
		rec        lincheck.Recorder
		ctrExpect  = make([]uint64, counterKeys)
		nStrongW   int
		nStrongR   int
		nCtr       int
		nLWW       int
		crashCount int
		joinedAbs  []int // absolute switch indices of joined spares
		pausedAbs  []int // switches that went through pause/resume
	)
	// Read completions land on the shard of the switch that served them, so
	// each switch records into its own recorder/counter; they merge into rec
	// in switch order after the run — an order independent of shard layout.
	readRecs := make([]lincheck.Recorder, sc.Switches)
	nReadsBy := make([]int, sc.Switches)

	// Episode bookkeeping: start events at AtStep, end events after Steps.
	// The end event carries the whole episode: one-way outages must restore
	// the exact directed link they cut, pauses must resume their victim.
	type endEvent struct {
		step int
		e    Episode
	}
	var ends []endEvent
	epi := 0

	valHex := func(b []byte) string {
		if len(b) == 0 {
			return lincheck.Initial
		}
		return fmt.Sprintf("%x", b)
	}

	for step := 0; step < sc.Steps; step++ {
		for len(ends) > 0 && ends[0].step == step {
			ee := ends[0].e
			switch ee.Kind {
			case PartitionFault:
				c.HealPartition()
				fmt.Fprintf(&log, "t=%s heal\n", c.Now())
			case LossBurst:
				c.SetAllLinks(sc.Link)
				fmt.Fprintf(&log, "t=%s lossburst-end\n", c.Now())
			case NthLossBurst:
				c.SetAllLinks(sc.Link)
				fmt.Fprintf(&log, "t=%s nthloss-end\n", c.Now())
			case CorruptBurst:
				c.SetAllLinks(sc.Link)
				fmt.Fprintf(&log, "t=%s corrupt-end\n", c.Now())
			case OneWayOutage:
				c.SetOneWayLink(ee.A[0], ee.B[0], sc.Link)
				fmt.Fprintf(&log, "t=%s oneway-end\n", c.Now())
			case PauseResume:
				c.ResumeSwitch(ee.Switch)
				fmt.Fprintf(&log, "t=%s resume switch=%d\n", c.Now(), ee.Switch)
				// Rejoin margin: heartbeats restart, an evicted victim is
				// revived and pushed current configs, frozen backlog drains.
				c.RunFor(gossipMargin)
			}
			ends = ends[1:]
		}
		for epi < len(sc.Episodes) && sc.Episodes[epi].AtStep == step {
			e := sc.Episodes[epi]
			epi++
			switch e.Kind {
			case Crash:
				c.RunFor(gossipMargin)
				// Submit writes at the victim moments before it dies: their
				// acknowledgements can never be observed, so they enter the
				// history as pending operations — the chain may or may not
				// have applied them, and the linearizability oracle must
				// accept both outcomes (and reject impossible mixtures).
				for dw := 0; dw < 2; dw++ {
					nStrongW++
					key := uint64(wrng.Intn(sc.Keys))
					v := uint64(step)<<16 | uint64(e.Switch)<<8 | uint64(0xd0+dw)
					buf := make([]byte, 8)
					binary.BigEndian.PutUint64(buf, v)
					sw := &strongWrite{key: key, val: valHex(buf), start: now()}
					writes = append(writes, sw)
					clock := swClock(e.Switch)
					strong[e.Switch].Write(key, buf, func(ok bool) {
						sw.resolved, sw.committed, sw.end = true, ok, clock()
					})
				}
				c.RunFor(50 * time.Microsecond) // let them reach (part of) the chain
				c.FailSwitch(e.Switch)
				removeAlive(e.Switch)
				crashCount++
				fmt.Fprintf(&log, "t=%s crash switch=%d\n", c.Now(), e.Switch)
			case PartitionFault:
				c.Partition(e.A, e.B)
				ends = append(ends, endEvent{e.AtStep + e.Steps, e})
				fmt.Fprintf(&log, "t=%s partition a=%v b=%v\n", c.Now(), e.A, e.B)
			case LossBurst:
				burst := sc.Link
				burst.LossRate = e.Loss
				c.SetAllLinks(burst)
				ends = append(ends, endEvent{e.AtStep + e.Steps, e})
				fmt.Fprintf(&log, "t=%s lossburst loss=%.3f\n", c.Now(), e.Loss)
			case NthLossBurst:
				burst := sc.Link
				burst.LossEveryN = e.N
				c.SetAllLinks(burst)
				ends = append(ends, endEvent{e.AtStep + e.Steps, e})
				fmt.Fprintf(&log, "t=%s nthloss n=%d\n", c.Now(), e.N)
			case CorruptBurst:
				burst := sc.Link
				burst.CorruptRate = e.Loss
				c.SetAllLinks(burst)
				ends = append(ends, endEvent{e.AtStep + e.Steps, e})
				fmt.Fprintf(&log, "t=%s corrupt rate=%.3f\n", c.Now(), e.Loss)
			case OneWayOutage:
				p := sc.Link
				p.Deny = swishmem.DenyBlackhole
				if e.Reject {
					p.Deny = swishmem.DenyReject
				}
				c.SetOneWayLink(e.A[0], e.B[0], p)
				ends = append(ends, endEvent{e.AtStep + e.Steps, e})
				fmt.Fprintf(&log, "t=%s oneway from=%d to=%d reject=%v\n", c.Now(), e.A[0], e.B[0], e.Reject)
			case PauseResume:
				// The victim freezes mid-protocol: heartbeats stop (the GC
				// pause trap for the failure detector), its queues backlog,
				// and on resume everything replays. It is retired from the
				// workload permanently — until the controller re-admits it a
				// rejoining replica's local reads are stale — but the state
				// oracles still cover it (counter totals include pausedAbs).
				c.PauseSwitch(e.Switch)
				removeAlive(e.Switch)
				pausedAbs = append(pausedAbs, e.Switch)
				ends = append(ends, endEvent{e.AtStep + e.Steps, e})
				fmt.Fprintf(&log, "t=%s pause switch=%d\n", c.Now(), e.Switch)
			case Join:
				abs := sc.Switches + e.Switch
				if err := c.JoinCounterGroup("c", abs); err != nil {
					fail("setup", "join spare %d: %v", abs, err)
				} else {
					joinedAbs = append(joinedAbs, abs)
					fmt.Fprintf(&log, "t=%s join spare=%d\n", c.Now(), abs)
				}
			}
		}

		w := alive[wrng.Intn(len(alive))]
		switch r := wrng.Intn(100); {
		case r < 30: // SRO write
			nStrongW++
			key := uint64(wrng.Intn(sc.Keys))
			v := uint64(step)<<16 | uint64(w)<<8 | uint64(wrng.Intn(256))
			buf := make([]byte, 8)
			binary.BigEndian.PutUint64(buf, v)
			sw := &strongWrite{key: key, val: valHex(buf), start: now()}
			writes = append(writes, sw)
			clock := swClock(w)
			strong[w].Write(key, buf, func(ok bool) {
				sw.resolved, sw.committed, sw.end = true, ok, clock()
			})
		case r < 60: // SRO read
			nStrongR++
			key := uint64(wrng.Intn(sc.Keys))
			start := now()
			rrec, clock, wc := &readRecs[w], swClock(w), w
			strong[w].Read(key, func(val []byte, ok bool) {
				nReadsBy[wc]++
				v := lincheck.Initial
				if ok {
					v = valHex(val)
				}
				rrec.Add(key, lincheck.Op{Start: start, End: clock(), Write: false, Value: v})
			})
		case r < 85: // EWO counter add
			nCtr++
			key := uint64(wrng.Intn(counterKeys))
			d := uint64(wrng.Intn(5) + 1)
			ctr[w].Add(key, d)
			ctrExpect[key] += d
		default: // EWO LWW write
			nLWW++
			key := uint64(wrng.Intn(lwwKeys))
			buf := []byte(fmt.Sprintf("%08x", wrng.Uint32()))
			lww[w].Write(key, buf)
		}
		c.RunFor(sc.OpGap)
	}

	// Quiesce on a healed, calm fabric: outstanding retries resolve, the
	// controller finishes failover and recovery, EWO synchronization
	// converges. Calming the links is what makes the convergence oracles
	// deterministic rather than probabilistic.
	c.HealPartition()
	c.SetAllLinks(calm)
	c.RunFor(quiesceTime)

	// Merge the per-switch read histories in switch order (shard-layout
	// independent), then fold the write tracker in. A write whose callback
	// never fired, or that exhausted its retries, may or may not have taken
	// effect (the chain can have applied it while the ack path failed):
	// both are pending operations for the checker.
	nReads := 0
	for i := range readRecs {
		nReads += nReadsBy[i]
		readRecs[i].Each(func(key uint64, op lincheck.Op) { rec.Add(key, op) })
	}
	committedKeys := make(map[uint64]bool)
	for _, sw := range writes {
		if sw.resolved && sw.committed {
			rec.Add(sw.key, lincheck.Op{Start: sw.start, End: sw.end, Write: true, Value: sw.val})
			committedKeys[sw.key] = true
			res.Committed++
		} else {
			rec.Add(sw.key, lincheck.Pending(sw.start, true, sw.val))
		}
	}
	fmt.Fprintf(&log, "run strongw=%d strongr=%d ctr=%d lww=%d committed=%d readsok=%d crashes=%d\n",
		nStrongW, nStrongR, nCtr, nLWW, res.Committed, nReads, crashCount)

	strict := sc.Strict()

	// --- oracle: drain --- every writer control plane resolved all writes.
	for _, i := range alive {
		if n := strong[i].Node().OutstandingWrites(); n != 0 {
			fail("drain", "switch %d still has %d outstanding writes after quiesce", i, n)
		}
	}

	// --- oracle: rtx --- (retransmit backend only) gap recovery is real.
	// Any switch that ever answered a NACK must actually have stored frames
	// in its retransmit buffer — a node that serves NACKs from an empty
	// buffer (InjectDisableRetransmit) forces every gap into an abandon
	// cursor. And after the calm quiesce no hold-back buffer may still hold
	// frames: every gap must have been repaired or explicitly abandoned.
	if opt.Retransmit {
		for _, i := range alive {
			cs := strong[i].Node().Counters()
			if cs.NacksReceived.Value() > 0 && cs.RtxStored.Value() == 0 {
				fail("rtx", "switch %d answered %d NACKs with an empty retransmit buffer",
					i, cs.NacksReceived.Value())
			}
			if held := strong[i].Node().HeldFrames(); held != 0 {
				fail("rtx", "switch %d still holds %d out-of-order frames after quiesce", i, held)
			}
		}
	}

	// --- oracle: chain --- reconfiguration safety. Configs travel the
	// reliable control channel, so after quiesce every surviving member
	// holds the current membership: it must have >= 2 live switches (the
	// generator never crashes below two survivors) and list no dead ones.
	cc := strong[alive[0]].Node().Chain()
	res.ChainMembers = append(res.ChainMembers, cc.Members...)
	if len(cc.Members) < 2 {
		fail("chain", "chain shrank to %v", cc.Members)
	}
	memberIdx := make([]int, 0, len(cc.Members))
	for _, m := range cc.Members {
		idx := int(m) - 1 // switch i has fabric address i+1
		memberIdx = append(memberIdx, idx)
		if c.Switch(idx).Failed() {
			fail("chain", "dead switch %d still a chain member (%v)", idx, cc.Members)
		}
	}
	if c.Controller() != nil {
		res.Recoveries = c.Controller().Stats.Recoveries.Value()
		res.Revivals = c.Controller().Stats.Revivals.Value()
		want := crashCount
		if want > sc.Spares {
			want = sc.Spares
		}
		if got := int(res.Recoveries); got < want {
			fail("chain", "recoveries = %d, want >= %d (crashes=%d spares=%d)",
				got, want, crashCount, sc.Spares)
		}
	}

	// --- oracle: lincheck --- per-key linearizability of the SRO history.
	// Only asserted in strict scenarios: under loss or partition the chain
	// package documents a bounded monotone-apply anomaly (an accepted
	// protocol behavior, not a bug).
	if strict {
		if bad, hist, ok := rec.CheckAllDetailed(); !ok {
			res.BadKey, res.BadHistory = bad, hist
			fail("lincheck", "key %d history not linearizable (%d ops): %v", bad, len(hist), hist)
		}
	}

	// --- oracle: durability --- no committed write lost across failover:
	// every key with a committed write is present on every current chain
	// member (commit means the write traversed the whole chain; recovery
	// snapshots carry it to promoted spares).
	keys := make([]uint64, 0, len(committedKeys))
	for k := range committedKeys {
		keys = append(keys, k)
	}
	chainViews := make([]ChainView, 0, len(memberIdx))
	for _, idx := range memberIdx {
		i := idx
		chainViews = append(chainViews, ChainView{
			Name: fmt.Sprintf("switch %d", i),
			Get:  func(key uint64) ([]byte, bool) { return chainGet(c, i, key) },
		})
	}
	for _, f := range OracleDurability(keys, chainViews) {
		fail("durability", "%s", f)
	}
	// --- oracle: agreement --- (strict only) all members hold the same
	// bytes: lossless forwarding applies every committed write everywhere,
	// so survivors cannot diverge.
	if strict {
		for _, f := range OracleAgreement(keys, chainViews) {
			fail("agreement", "%s", f)
		}
	}

	// --- oracle: counter --- exact totals: every increment ever issued is
	// in the merged sum on every group member (alive replicas + joined
	// spares), and their full digests agree.
	// Paused-and-resumed switches are retired from the workload but NOT from
	// the oracles: after the calm quiesce they must hold the full counter
	// state like everyone else — either the pause was short of the failure
	// timeout (never evicted, kept receiving pushes) or the controller
	// revived them on resume. This is the assertion that catches a failure
	// detector with no revival path (InjectNoRevive).
	ctrNodes := append([]int{}, alive...)
	ctrNodes = append(ctrNodes, joinedAbs...)
	ctrNodes = append(ctrNodes, pausedAbs...)
	var ctrViews []EWOView
	for _, i := range ctrNodes {
		h, err := c.Instance(i).CounterHandle(ctrID)
		if err != nil {
			fail("counter", "handle on switch %d: %v", i, err)
			continue
		}
		ctrViews = append(ctrViews, EWOView{
			Name:   fmt.Sprintf("switch %d", i),
			Sum:    h.Sum,
			Digest: h.Node().StateDigest,
		})
	}
	for _, f := range OracleCounterTotals(ctrExpect, ctrViews) {
		fail("counter", "%s", f)
	}
	for _, f := range OracleConvergence(ctrViews) {
		fail("counter", "%s", f)
	}

	// --- oracle: lww --- convergence: after the calm quiesce all alive
	// replicas hold identical LWW state.
	var lwwViews []EWOView
	for _, i := range alive {
		h, err := c.Instance(i).EventualHandle(lwwID)
		if err != nil {
			fail("lww", "handle on switch %d: %v", i, err)
			continue
		}
		lwwViews = append(lwwViews, EWOView{
			Name:   fmt.Sprintf("switch %d", i),
			Digest: h.Node().StateDigest,
		})
	}
	for _, f := range OracleConvergence(lwwViews) {
		fail("lww", "%s", f)
	}

	// --- oracle: memory --- every switch respects its SRAM budget, and
	// identical declarations cost identical SRAM everywhere.
	first := c.MemoryUsed(0)
	for i := 0; i < sc.Switches+sc.Spares; i++ {
		if free := c.Switch(i).MemoryFree(); free < 0 {
			fail("memory", "switch %d over budget by %d bytes", i, -free)
		}
		if used := c.MemoryUsed(i); used != first {
			fail("memory", "switch %d uses %d bytes, switch 0 uses %d", i, used, first)
		}
	}

	for _, f := range res.Failures {
		log.WriteString("FAIL ")
		log.WriteString(f)
		log.WriteByte('\n')
	}
	if len(res.Failures) == 0 {
		log.WriteString("ok all oracles\n")
	}
	if opt.BlackBox && len(res.Failures) > 0 {
		res.BlackBox = c.FlightRecord(blackBoxLastN).String()
	}
	res.Log = log.String()
	return res
}

// chainGet reads the local replica of the "s" register on switch idx.
func chainGet(c *swishmem.Cluster, idx int, key uint64) ([]byte, bool) {
	id, _ := c.RegisterID("s")
	h, err := c.Instance(idx).StrongHandle(id)
	if err != nil {
		return nil, false
	}
	return h.Node().Get(key)
}
