// Package explore is a deterministic, seed-replayable randomized model
// checker for the SwiShmem protocols. From a single int64 seed it generates
// a whole scenario — cluster shape, link profile, client workload mix, and
// a fault schedule of switch crashes, partitions, loss bursts, and spare
// joins — runs it on the simulated cluster, and checks correctness oracles
// after the run: per-key linearizability of the SRO register (including
// pending operations from failed writers), exact counter totals and LWW
// convergence for EWO, chain-reconfiguration safety (no committed write
// lost across failover), and switch memory-budget invariants.
//
// Everything is a pure function of the seed: the same seed produces a
// byte-identical scenario log, so any failing run is replayable with
//
//	go test -run 'TestExplore$' -explore.seed=N
//
// On failure the explorer shrinks the scenario — dropping fault episodes,
// shortening the workload, reducing the cluster, cleaning the link — to a
// minimal counterexample that still fails the same oracle, and reports both
// the replay command and the shrunk scenario log. See TESTING.md.
package explore

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"swishmem"
	"swishmem/internal/sim"
)

// EpisodeKind enumerates fault-schedule episodes.
type EpisodeKind int

// Episode kinds.
const (
	// Crash fail-stops a replica switch (after a gossip-margin pause, so
	// EWO increments issued at the victim have had time to replicate —
	// otherwise losing them is correct CRDT behavior, not a bug).
	Crash EpisodeKind = iota
	// PartitionFault splits the replicas into two groups for Steps workload
	// steps, then heals.
	PartitionFault
	// LossBurst degrades every inter-switch link to the episode's loss rate
	// for Steps workload steps, then restores the base profile.
	LossBurst
	// Join adds a spare switch to the EWO counter group (§6.3 recovery).
	Join
	// NthLossBurst degrades every inter-switch link to deterministic
	// every-Nth-packet loss for Steps workload steps (pumba's periodic-loss
	// mode; N is Episode.N), then restores the base profile. Unlike
	// LossBurst the drop pattern is exactly periodic per link.
	NthLossBurst
	// CorruptBurst bit-corrupts payloads on every inter-switch link at rate
	// Loss for Steps workload steps. Corrupted messages are dropped after
	// the wire decoder proves it survives their bit-flipped encoding.
	CorruptBurst
	// OneWayOutage administratively kills only the A[0]->B[0] direction for
	// Steps steps — blackhole by default, reject-with-ICMP-analog when
	// Reject is set — while B[0]->A[0] stays healthy (asymmetric fault).
	OneWayOutage
	// PauseResume freezes replica Switch for Steps workload steps (the
	// GC-pause analog: dispatch stops, inbound backlogs), then resumes it
	// and lets the backlog replay. The victim is retired from the workload
	// for the rest of the scenario (a paused-then-evicted switch serves
	// stale reads until it rejoins), but every state oracle still covers
	// it: the controller must either never declare it failed (short pause)
	// or evict it and walk it back in when it beats again.
	PauseResume
)

func (k EpisodeKind) String() string {
	switch k {
	case Crash:
		return "crash"
	case PartitionFault:
		return "partition"
	case LossBurst:
		return "lossburst"
	case Join:
		return "join"
	case NthLossBurst:
		return "nthloss"
	case CorruptBurst:
		return "corrupt"
	case OneWayOutage:
		return "oneway"
	case PauseResume:
		return "pause"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Episode is one entry of a scenario's fault schedule. Episodes never
// overlap: each starts at AtStep and (for partitions and loss bursts) ends
// Steps workload steps later, strictly before the next episode begins.
type Episode struct {
	Kind   EpisodeKind
	AtStep int
	// Steps is the duration of a partition or loss burst, in workload steps.
	Steps int
	// A and B are the partition sides (replica indices).
	A, B []int
	// Loss is the burst loss rate.
	Loss float64
	// Switch is the crash victim (replica index), the joining spare's
	// ordinal (0-based among spares), or the pause victim (replica index).
	Switch int
	// N is the every-Nth-packet period of an NthLossBurst (>= 1).
	N int
	// Reject selects reject-with-notification over silent blackhole for a
	// OneWayOutage.
	Reject bool
}

func (e Episode) String() string {
	switch e.Kind {
	case Crash:
		return fmt.Sprintf("episode crash at=%d switch=%d", e.AtStep, e.Switch)
	case PartitionFault:
		return fmt.Sprintf("episode partition at=%d steps=%d a=%v b=%v", e.AtStep, e.Steps, e.A, e.B)
	case LossBurst:
		return fmt.Sprintf("episode lossburst at=%d steps=%d loss=%.3f", e.AtStep, e.Steps, e.Loss)
	case Join:
		return fmt.Sprintf("episode join at=%d spare=%d", e.AtStep, e.Switch)
	case NthLossBurst:
		return fmt.Sprintf("episode nthloss at=%d steps=%d n=%d", e.AtStep, e.Steps, e.N)
	case CorruptBurst:
		return fmt.Sprintf("episode corrupt at=%d steps=%d rate=%.3f", e.AtStep, e.Steps, e.Loss)
	case OneWayOutage:
		return fmt.Sprintf("episode oneway at=%d steps=%d from=%v to=%v reject=%v", e.AtStep, e.Steps, e.A, e.B, e.Reject)
	case PauseResume:
		return fmt.Sprintf("episode pause at=%d steps=%d switch=%d", e.AtStep, e.Steps, e.Switch)
	}
	return "episode ?"
}

// Scenario is one generated model-checking input: everything Run needs to
// reproduce an execution exactly.
type Scenario struct {
	Seed     int64
	Switches int // replicas, >= 2
	Spares   int
	Link     swishmem.LinkProfile
	// Steps is the number of workload operations.
	Steps int
	// OpGap is the virtual time between workload operations.
	OpGap time.Duration
	// Keys is the SRO key-space size (small, to force per-key concurrency).
	Keys     int
	Episodes []Episode
}

// Strict reports whether the SRO register is expected to be linearizable in
// this scenario. The chain package documents a bounded monotone-apply
// anomaly under message loss (chain.go, "Departure from textbook chain
// replication"), so linearizability and member value agreement are asserted
// only when no messages can be silently dropped: a lossless base link, no
// partitions, and no loss bursts. Crashes, joins, duplication, reordering,
// and jitter are all fair game for the strict oracles.
func (s Scenario) Strict() bool {
	if s.Link.LossRate > 0 || s.Link.LossEveryN > 0 || s.Link.CorruptRate > 0 || s.Link.Deny != 0 {
		return false
	}
	for _, e := range s.Episodes {
		switch e.Kind {
		case PartitionFault, LossBurst, NthLossBurst, CorruptBurst, OneWayOutage:
			return false
		}
	}
	// PauseResume is strict-preserving: a frozen switch delays messages (the
	// backlog replays) rather than dropping them, and the few sends it
	// suppresses (driver-submitted ops while frozen) are protocol-retried —
	// the same ambiguity a crash leaves, which the strict oracles model.
	return true
}

// Crashes counts crash episodes.
func (s Scenario) Crashes() int {
	n := 0
	for _, e := range s.Episodes {
		if e.Kind == Crash {
			n++
		}
	}
	return n
}

// Log renders the scenario deterministically — the replay-comparison
// artifact: same seed, same bytes.
func (s Scenario) Log() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario seed=%d switches=%d spares=%d steps=%d opgap=%s keys=%d strict=%v\n",
		s.Seed, s.Switches, s.Spares, s.Steps, s.OpGap, s.Keys, s.Strict())
	fmt.Fprintf(&b, "link lat=%s jit=%s bw=%.0fbps loss=%.3f dup=%.3f reorder=%.3f\n",
		time.Duration(s.Link.Latency), time.Duration(s.Link.Jitter),
		s.Link.BandwidthBps, s.Link.LossRate, s.Link.DupRate, s.Link.ReorderRate)
	for _, e := range s.Episodes {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// FaultSet selects which episode kinds a generated scenario may contain.
type FaultSet int

// Fault sets.
const (
	// FaultsClassic is the original repertoire: crashes, partitions, random
	// loss bursts, spare joins. Generate(seed) uses it, and its scenarios
	// are byte-identical to those of every earlier release — nightly seeds
	// stay replayable.
	FaultsClassic FaultSet = iota
	// FaultsExtended adds the chaos-parity kinds: every-Nth deterministic
	// loss, payload corruption, one-way outages (blackhole or reject), and
	// process pause/resume. Selected by the -explore.faults=extended flag.
	FaultsExtended
)

// Generate derives a scenario from a seed with the classic fault set. The
// generator RNG is independent of the simulation and workload RNGs, so the
// scenario shape is a function of the seed alone.
func Generate(seed int64) Scenario { return GenerateWith(seed, FaultsClassic) }

// GenerateWith derives a scenario from a seed, drawing episodes from the
// given fault set. The classic set reproduces Generate exactly (same draw
// sequence); the extended set widens only the per-episode kind draw, so the
// cluster shape and link profile of a seed are identical across sets.
func GenerateWith(seed int64, faults FaultSet) Scenario {
	rng := rand.New(rand.NewSource(seed ^ 0x5ee0c0de))
	s := Scenario{
		Seed:     seed,
		Switches: 2 + rng.Intn(4), // 2..5
		Spares:   rng.Intn(3),     // 0..2
		Steps:    80 + rng.Intn(221),
		OpGap:    time.Duration(30+rng.Intn(41)) * time.Microsecond,
		Keys:     4 + rng.Intn(13),
	}
	s.Link = swishmem.LinkProfile{
		Latency:      sim.Duration(5+rng.Intn(16)) * 1000, // 5..20us
		BandwidthBps: 100e9,
	}
	if rng.Intn(2) == 0 {
		s.Link.Jitter = sim.Duration(rng.Intn(26)) * 1000
	}
	if rng.Intn(2) == 0 { // lossy fabric: the non-strict regime
		s.Link.LossRate = 0.005 + rng.Float64()*0.025
		s.Link.DupRate = rng.Float64() * 0.02
		s.Link.ReorderRate = rng.Float64() * 0.08
	}

	kinds := 4
	if faults == FaultsExtended {
		kinds = 8
	}

	// Fault episodes: sequential, non-overlapping, leaving >= 2 replicas.
	nEp := rng.Intn(4)
	cursor := 10 + rng.Intn(20)
	crashes := 0
	joined := make(map[int]bool)
	paused := make(map[int]bool)
	for i := 0; i < nEp && cursor < s.Steps-10; i++ {
		e := Episode{AtStep: cursor}
		switch rng.Intn(kinds) {
		case 0: // crash
			if crashes >= s.Switches-2 {
				continue
			}
			e.Kind = Crash
			e.Switch = rng.Intn(s.Switches)
			crashes++
		case 1: // partition
			if s.Switches < 2 {
				continue
			}
			e.Kind = PartitionFault
			e.Steps = 10 + rng.Intn(40)
			cut := 1 + rng.Intn(s.Switches-1)
			for r := 0; r < s.Switches; r++ {
				if r < cut {
					e.A = append(e.A, r)
				} else {
					e.B = append(e.B, r)
				}
			}
		case 2: // loss burst
			e.Kind = LossBurst
			e.Steps = 10 + rng.Intn(40)
			e.Loss = 0.05 + rng.Float64()*0.20
		case 3: // spare join
			if s.Spares == 0 {
				continue
			}
			sp := rng.Intn(s.Spares)
			if joined[sp] {
				continue
			}
			joined[sp] = true
			e.Kind = Join
			e.Switch = sp
		case 4: // every-Nth deterministic loss burst
			e.Kind = NthLossBurst
			e.Steps = 10 + rng.Intn(40)
			e.N = 2 + rng.Intn(9) // every 2nd..10th packet
		case 5: // payload corruption burst
			e.Kind = CorruptBurst
			e.Steps = 10 + rng.Intn(40)
			e.Loss = 0.05 + rng.Float64()*0.25
		case 6: // one-way outage on a directed replica pair
			e.Kind = OneWayOutage
			e.Steps = 10 + rng.Intn(40)
			from := rng.Intn(s.Switches)
			to := rng.Intn(s.Switches - 1)
			if to >= from {
				to++
			}
			e.A, e.B = []int{from}, []int{to}
			e.Reject = rng.Intn(2) == 0
		case 7: // process pause/resume (GC-pause analog)
			victim := rng.Intn(s.Switches)
			if paused[victim] || s.Switches-crashes-len(paused) < 3 {
				continue
			}
			paused[victim] = true
			e.Kind = PauseResume
			e.Switch = victim
			// 10..59 steps x 30..70us OpGap straddles the controller's 2ms
			// failure timeout: some pauses evict, some stay undetected.
			e.Steps = 10 + rng.Intn(50)
		}
		s.Episodes = append(s.Episodes, e)
		cursor += e.Steps + 15 + rng.Intn(30)
	}
	return s.Normalize()
}

// TortureScenario is the repository's long-standing hand-written stress
// scenario expressed as a Scenario: 4 replicas + 2 spares on a jittery,
// lossy, reordering fabric; mixed register traffic; a mid-run partition;
// and two switch crashes with failover and spare recovery. The root torture
// test feeds it through Run and asserts on the Result, so the hand-written
// test and the explorer share one execution and oracle path.
func TortureScenario(seed int64) Scenario {
	return Scenario{
		Seed:     seed,
		Switches: 4,
		Spares:   2,
		Link: swishmem.LinkProfile{Latency: 15_000, Jitter: 20_000,
			BandwidthBps: 100e9, LossRate: 0.02, DupRate: 0.01, ReorderRate: 0.05},
		Steps: 390,
		OpGap: 50 * time.Microsecond,
		Keys:  12,
		Episodes: []Episode{
			{Kind: PartitionFault, AtStep: 150, Steps: 60, A: []int{0, 1}, B: []int{2, 3}},
			{Kind: Crash, AtStep: 211, Switch: 0},
			{Kind: Crash, AtStep: 311, Switch: 2},
		},
	}.Normalize()
}

// Normalize repairs a scenario after generation or shrink mutations so Run
// can assume its invariants: episodes sorted, in range, non-overlapping;
// crash victims and partition sides are valid replica indices; at least two
// replicas survive all crashes; joins name existing spares, once each.
func (s Scenario) Normalize() Scenario {
	if s.Switches < 2 {
		s.Switches = 2
	}
	if s.Spares < 0 {
		s.Spares = 0
	}
	if s.Steps < 10 {
		s.Steps = 10
	}
	if s.Keys < 1 {
		s.Keys = 1
	}
	if s.OpGap <= 0 {
		s.OpGap = 50 * time.Microsecond
	}
	eps := append([]Episode(nil), s.Episodes...)
	sort.SliceStable(eps, func(i, j int) bool { return eps[i].AtStep < eps[j].AtStep })
	var out []Episode
	crashes := 0
	crashed := make(map[int]bool)
	joined := make(map[int]bool)
	paused := make(map[int]bool)
	// retired counts switches permanently removed from the workload: crashed
	// switches plus paused ones (a paused switch is retired from the workload
	// even after resume, because a rejoining replica's local reads are stale
	// until the controller re-adds it). Classic scenarios never pause, so for
	// them retired == crashes and the admission rules below reduce exactly to
	// the original ones — Normalize stays byte-compatible on classic seeds.
	retired := func() int { return crashes + len(paused) }
	nextFree := 1 // earliest step the next episode may start at
	for _, e := range eps {
		if e.AtStep < nextFree {
			e.AtStep = nextFree
		}
		if e.AtStep >= s.Steps {
			continue
		}
		switch e.Kind {
		case Crash:
			// crashes >= s.Switches-2 is the classic guard; the retired
			// budget additionally keeps >= 2 workload targets alive when
			// pause episodes are present, and forbids crashing a switch
			// that a pause episode already owns.
			if e.Switch < 0 || e.Switch >= s.Switches || crashed[e.Switch] || paused[e.Switch] ||
				crashes >= s.Switches-2 || s.Switches-retired() < 3 {
				continue
			}
			crashed[e.Switch] = true
			crashes++
			e.Steps = 0
		case PartitionFault:
			e.A = filterReplicas(e.A, s.Switches)
			e.B = filterReplicas(e.B, s.Switches)
			if len(e.A) == 0 || len(e.B) == 0 {
				continue
			}
			if e.Steps < 1 {
				e.Steps = 1
			}
			if e.AtStep+e.Steps >= s.Steps {
				e.Steps = s.Steps - 1 - e.AtStep
				if e.Steps < 1 {
					continue
				}
			}
		case LossBurst:
			if e.Loss <= 0 {
				continue
			}
			if e.Steps < 1 {
				e.Steps = 1
			}
			if e.AtStep+e.Steps >= s.Steps {
				e.Steps = s.Steps - 1 - e.AtStep
				if e.Steps < 1 {
					continue
				}
			}
		case Join:
			if e.Switch < 0 || e.Switch >= s.Spares || joined[e.Switch] {
				continue
			}
			joined[e.Switch] = true
			e.Steps = 0
		case NthLossBurst:
			if e.N < 2 { // N==1 would be a full blackout, not a loss pattern
				continue
			}
			if e.Steps < 1 {
				e.Steps = 1
			}
			if e.AtStep+e.Steps >= s.Steps {
				e.Steps = s.Steps - 1 - e.AtStep
				if e.Steps < 1 {
					continue
				}
			}
		case CorruptBurst:
			if e.Loss <= 0 {
				continue
			}
			if e.Steps < 1 {
				e.Steps = 1
			}
			if e.AtStep+e.Steps >= s.Steps {
				e.Steps = s.Steps - 1 - e.AtStep
				if e.Steps < 1 {
					continue
				}
			}
		case OneWayOutage:
			e.A = filterReplicas(e.A, s.Switches)
			e.B = filterReplicas(e.B, s.Switches)
			if len(e.A) != 1 || len(e.B) != 1 || e.A[0] == e.B[0] {
				continue
			}
			if e.Steps < 1 {
				e.Steps = 1
			}
			if e.AtStep+e.Steps >= s.Steps {
				e.Steps = s.Steps - 1 - e.AtStep
				if e.Steps < 1 {
					continue
				}
			}
		case PauseResume:
			// A paused switch is retired from the workload permanently (see
			// retired above), so it consumes the same budget as a crash and
			// each switch may pause at most once.
			if e.Switch < 0 || e.Switch >= s.Switches || crashed[e.Switch] || paused[e.Switch] ||
				s.Switches-retired() < 3 {
				continue
			}
			paused[e.Switch] = true
			if e.Steps < 1 {
				e.Steps = 1
			}
			if e.AtStep+e.Steps >= s.Steps {
				e.Steps = s.Steps - 1 - e.AtStep
				if e.Steps < 1 {
					delete(paused, e.Switch)
					continue
				}
			}
		default:
			continue
		}
		out = append(out, e)
		nextFree = e.AtStep + e.Steps + 1
	}
	s.Episodes = out
	return s
}

func filterReplicas(idx []int, switches int) []int {
	var out []int
	seen := make(map[int]bool)
	for _, i := range idx {
		if i >= 0 && i < switches && !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}
