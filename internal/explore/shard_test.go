package explore

import (
	"sync"
	"testing"
)

// TestExploreShardDeterminism is the explorer's half of the parallel-
// simulation contract: for every generated scenario the full Result —
// the byte-exact Log, the oracle Failures, the summary facts — must be
// identical whether the cluster ran sequentially or on 2 or 8 shards.
// Together with the cluster-level identity tests this means any failure a
// sharded exploration finds replays exactly under `-run` sequentially.
func TestExploreShardDeterminism(t *testing.T) {
	const seeds = 30
	type key struct {
		seed   int64
		shards int
	}
	results := make(map[key]*Result)
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, 4)
	for seed := int64(1); seed <= seeds; seed++ {
		for _, shards := range []int{1, 2, 8} {
			wg.Add(1)
			go func(seed int64, shards int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				r := Run(Generate(seed), RunOptions{Shards: shards})
				mu.Lock()
				results[key{seed, shards}] = r
				mu.Unlock()
			}(seed, shards)
		}
	}
	wg.Wait()

	failed := 0
	for seed := int64(1); seed <= seeds; seed++ {
		want := results[key{seed, 1}]
		if want.Failed() {
			failed++
		}
		for _, shards := range []int{2, 8} {
			got := results[key{seed, shards}]
			if got.Log != want.Log {
				t.Errorf("seed %d shards=%d: log diverged from sequential\n-- sequential --\n%s\n-- sharded --\n%s",
					seed, shards, want.Log, got.Log)
			}
			if len(got.Failures) != len(want.Failures) {
				t.Errorf("seed %d shards=%d: %d failures vs %d sequential",
					seed, shards, len(got.Failures), len(want.Failures))
			}
			if got.Committed != want.Committed || got.Recoveries != want.Recoveries {
				t.Errorf("seed %d shards=%d: committed/recoveries %d/%d vs %d/%d",
					seed, shards, got.Committed, got.Recoveries, want.Committed, want.Recoveries)
			}
			if t.Failed() {
				t.FailNow()
			}
		}
	}
	// The oracles must stay armed in every mode: a sweep of 30 generated
	// scenarios on a healthy build passes everywhere.
	if failed > 0 {
		t.Logf("%d/%d scenarios failed oracles (identically in every mode)", failed, seeds)
	}
}

// TestExploreShardedCatchesInjectedBug: the injected-defect detection that
// anchors the explorer's credibility must also fire under sharded
// execution, with the same oracle verdict.
func TestExploreShardedCatchesInjectedBug(t *testing.T) {
	var verdicts []string
	for _, shards := range []int{1, 4} {
		found := false
		for seed := int64(1); seed <= 20 && !found; seed++ {
			sc := Generate(seed)
			if !sc.Strict() {
				continue
			}
			r := Run(sc, RunOptions{InjectSkipForward: 3, Shards: shards})
			if r.Failed() {
				found = true
				verdicts = append(verdicts, r.FirstOracle())
			}
		}
		if !found {
			t.Fatalf("shards=%d: injected skip-forward bug not caught in 20 strict seeds", shards)
		}
	}
	if len(verdicts) == 2 && verdicts[0] != verdicts[1] {
		t.Fatalf("different first oracle across modes: %v", verdicts)
	}
}
