package explore

import (
	"time"

	"swishmem"
)

// maxShrinkRuns bounds the total scenario re-executions one Shrink may
// spend; greedy shrinking converges long before this in practice.
const maxShrinkRuns = 120

// Shrink minimizes a failing scenario: it greedily tries simpler variants —
// dropping fault episodes, shortening the workload, reducing the cluster,
// cleaning the link — and keeps a variant only if it still fails the SAME
// oracle as the original (so the minimized scenario demonstrates the
// original defect, not a new one). It returns the smallest scenario found
// and its result. The input must be a failing run.
func Shrink(sc Scenario, opt RunOptions, res *Result) (Scenario, *Result) {
	oracle := res.FirstOracle()
	if oracle == "" {
		return sc, res
	}
	runs := 0
	try := func(cand Scenario) *Result {
		if runs >= maxShrinkRuns {
			return nil
		}
		runs++
		r := Run(cand.Normalize(), opt)
		if r.Failed() && r.FirstOracle() == oracle {
			return r
		}
		return nil
	}

	improved := true
	for improved && runs < maxShrinkRuns {
		improved = false
		for _, cand := range candidates(sc) {
			if r := try(cand); r != nil {
				sc, res = r.Scenario, r
				improved = true
				break // restart from the new, smaller scenario
			}
		}
	}
	return sc, res
}

// candidates proposes strictly simpler variants of sc, most aggressive
// first. Order is deterministic, which keeps shrinking replayable.
func candidates(sc Scenario) []Scenario {
	var out []Scenario

	// Drop each fault episode.
	for i := range sc.Episodes {
		c := sc
		c.Episodes = append(append([]Episode(nil), sc.Episodes[:i]...), sc.Episodes[i+1:]...)
		out = append(out, c)
	}
	// Shorten the workload.
	if sc.Steps > 10 {
		c := sc
		c.Steps = sc.Steps / 2
		out = append(out, c)
		c = sc
		c.Steps = sc.Steps * 3 / 4
		out = append(out, c)
	}
	// Shrink the key space (fewer, hotter keys).
	if sc.Keys > 1 {
		c := sc
		c.Keys = sc.Keys / 2
		if c.Keys < 1 {
			c.Keys = 1
		}
		out = append(out, c)
	}
	// Remove a replica (Normalize drops episodes that reference it).
	if sc.Switches > 2 {
		c := sc
		c.Switches = sc.Switches - 1
		out = append(out, c)
	}
	// Remove the spares (Normalize drops join episodes).
	if sc.Spares > 0 {
		c := sc
		c.Spares = 0
		out = append(out, c)
	}
	// Clean the link, one nuisance at a time.
	if sc.Link.Jitter > 0 {
		c := sc
		c.Link.Jitter = 0
		out = append(out, c)
	}
	if sc.Link.LossRate > 0 || sc.Link.DupRate > 0 || sc.Link.ReorderRate > 0 {
		c := sc
		c.Link = swishmem.LinkProfile{Latency: sc.Link.Latency, BandwidthBps: sc.Link.BandwidthBps}
		out = append(out, c)
	}
	// Widen the op gap to a round number (less concurrency).
	if sc.OpGap != 50*time.Microsecond {
		c := sc
		c.OpGap = 50 * time.Microsecond
		out = append(out, c)
	}
	return out
}
