package explore

import (
	"fmt"
	"strings"

	"swishmem/internal/experiments"
)

// Failure is one failing seed from a sweep, with its shrunk counterexample.
type Failure struct {
	Seed   int64
	Opt    RunOptions
	Result *Result // the original failing run
	Shrunk Scenario
	Minned *Result // the shrunk scenario's failing run
	// BlackBox is the flight record of the failing run (last trace events,
	// final metrics snapshot, timeline tail), captured by re-running the seed
	// with the recorder armed — determinism makes the rerun reproduce the
	// failure exactly.
	BlackBox string
}

// ReplayCommand is the one-liner that reproduces the original failure.
func (f *Failure) ReplayCommand() string {
	cmd := fmt.Sprintf("go test -run 'TestExplore$' -explore.seed=%d", f.Seed)
	if f.Opt.InjectSkipForward > 0 {
		cmd += fmt.Sprintf(" -explore.inject=%d", f.Opt.InjectSkipForward)
	}
	if f.Opt.Retransmit {
		cmd += " -explore.backend=retransmit"
	}
	if f.Opt.InjectDisableRetransmit {
		cmd += " -explore.inject-disable-retransmit"
	}
	if f.Opt.Faults == FaultsExtended {
		cmd += " -explore.faults=extended"
	}
	return cmd
}

// Report renders the failure for humans: what broke, how to replay it, and
// the minimized scenario.
func (f *Failure) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d failed %d oracle(s); first: %s\n", f.Seed, len(f.Result.Failures), f.Result.Failures[0])
	fmt.Fprintf(&b, "replay: %s\n", f.ReplayCommand())
	b.WriteString("shrunk counterexample:\n")
	b.WriteString(indent(f.Minned.Log))
	if f.BlackBox != "" {
		b.WriteString(indent(f.BlackBox))
	}
	return b.String()
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "  " + l
	}
	return strings.Join(lines, "\n") + "\n"
}

// SweepResult summarizes a seed sweep.
type SweepResult struct {
	Base     int64
	N        int
	Failures []*Failure
}

// Sweep generates and runs n scenarios for seeds base..base+n-1 on up to
// workers goroutines. Each failing seed is shrunk (within its worker) to a
// minimal counterexample. Scenario runs are fully independent — each builds
// its own engine — so results are identical for any worker count; failures
// come back in ascending seed order.
func Sweep(base int64, n, workers int, opt RunOptions) SweepResult {
	results := make([]*Failure, n)
	experiments.ParallelFor(n, workers, func(i int) {
		seed := base + int64(i)
		sc := GenerateWith(seed, opt.Faults)
		r := Run(sc, opt)
		if !r.Failed() {
			return
		}
		shrunk, minned := Shrink(sc, opt, r)
		f := &Failure{Seed: seed, Opt: opt, Result: r, Shrunk: shrunk, Minned: minned}
		// Re-run the failing seed with the flight recorder armed. The armed
		// run is guaranteed byte-identical in Log/Failures, so the recorder
		// captures exactly the failure the sweep saw; the guard documents the
		// invariant rather than trusting it silently.
		bopt := opt
		bopt.BlackBox = true
		if rerun := Run(sc, bopt); rerun.Log == r.Log {
			f.BlackBox = rerun.BlackBox
		} else {
			f.BlackBox = "flight recorder: armed rerun diverged from the original run (instrumentation is supposed to be passive — investigate)\n"
		}
		results[i] = f
	})
	sr := SweepResult{Base: base, N: n}
	for _, f := range results {
		if f != nil {
			sr.Failures = append(sr.Failures, f)
		}
	}
	return sr
}
