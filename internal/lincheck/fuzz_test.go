package lincheck

import (
	"testing"
)

// refCheck is a brute-force linearizability reference for small histories:
// enumerate every subset of pending writes and every permutation of the
// chosen ops, validate the permutation against real-time order (there must
// exist non-decreasing linearization points t_i ∈ [Start_i, End_i]), and
// replay register semantics. Exponential, so only usable for ≤ ~7 ops.
func refCheck(history []Op) bool {
	var completed, pend []Op
	for _, o := range history {
		if o.IsPending() {
			if o.Write {
				pend = append(pend, o)
			}
			continue
		}
		completed = append(completed, o)
	}
	for sub := 0; sub < 1<<len(pend); sub++ {
		ops := append([]Op(nil), completed...)
		for j := range pend {
			if sub&(1<<j) != 0 {
				ops = append(ops, pend[j])
			}
		}
		if permuteOK(ops, make([]bool, len(ops)), nil) {
			return true
		}
	}
	return false
}

func permuteOK(ops []Op, taken []bool, order []Op) bool {
	if len(order) == len(ops) {
		return validOrder(order)
	}
	for i := range ops {
		if taken[i] {
			continue
		}
		taken[i] = true
		ok := permuteOK(ops, taken, append(order, ops[i]))
		taken[i] = false
		if ok {
			return true
		}
	}
	return false
}

func validOrder(order []Op) bool {
	// Linearization points are real-valued, so a valid assignment exists iff
	// the greedy non-decreasing t_i = max(t_{i-1}, Start_i) stays ≤ End_i.
	t := int64(0)
	value := Initial
	for _, o := range order {
		if o.Start > t {
			t = o.Start
		}
		if t > o.End {
			return false
		}
		if o.Write {
			value = o.Value
		} else if o.Value != value {
			return false
		}
	}
	return true
}

// decodeHistory turns fuzz bytes into a small history: 3 bytes per op
// (start/flags, duration, value), at most 6 ops so the permutation
// reference stays tractable.
func decodeHistory(data []byte) []Op {
	var h []Op
	for i := 0; i+2 < len(data) && len(h) < 6; i += 3 {
		start := int64(data[i] & 15)
		pending := data[i]&16 != 0
		write := data[i]&32 != 0
		value := string(rune('a' + data[i+2]%3))
		if pending {
			h = append(h, Pending(start, write, value))
		} else {
			h = append(h, Op{start, start + int64(data[i+1]%8), write, value})
		}
	}
	return h
}

func encodeOp(o Op) [3]byte {
	var b [3]byte
	b[0] = byte(o.Start) & 15
	if o.IsPending() {
		b[0] |= 16
	}
	if o.Write {
		b[0] |= 32
	}
	if !o.IsPending() {
		b[1] = byte(o.End-o.Start) & 7
	}
	b[2] = byte(o.Value[0] - 'a')
	return b
}

func encodeHistory(h []Op) []byte {
	var out []byte
	for _, o := range h {
		b := encodeOp(o)
		out = append(out, b[:]...)
	}
	return out
}

// FuzzLincheck cross-validates the windowed Wing-Gong search against the
// brute-force permutation reference on small generated histories. The seed
// corpus covers the classically tricky shapes from Lowe's "Testing for
// linearizability" examples: concurrent write/read pairs where only one
// ordering is legal, stale reads, flip-flop reads, and pending writes that
// must not resurface after a completed overwrite.
func FuzzLincheck(f *testing.F) {
	seeds := [][]Op{
		// Lowe Fig. 2-style: read concurrent with two sequential writes may
		// return either, but the trailing read pins the final value.
		{{0, 1, true, "a"}, {2, 9, true, "b"}, {3, 8, false, "a"}, {10, 11, false, "b"}},
		// Illegal: flip-flop between two completed writes.
		{{0, 5, true, "a"}, {0, 5, true, "b"}, {6, 7, false, "a"}, {8, 9, false, "b"}},
		// Stale read after completed overwrite.
		{{0, 1, true, "a"}, {2, 3, true, "b"}, {4, 5, false, "a"}},
		// Pending write observed, then un-observed (illegal).
		{Pending(0, true, "a"), {1, 2, false, "a"}, {3, 4, false, "c"}},
		// Pending write that takes effect (legal).
		{Pending(0, true, "a"), {1, 2, false, "a"}},
		// Read before a pending write's invocation cannot observe it.
		{{0, 1, false, "a"}, Pending(2, true, "a")},
		// Two pending writes racing with a completed read.
		{Pending(0, true, "a"), Pending(0, true, "b"), {1, 2, false, "b"}, {3, 4, false, "a"}},
		// Concurrent chain: overlapping writes with an interleaved read.
		{{0, 4, true, "a"}, {2, 6, true, "b"}, {3, 5, false, "a"}, {7, 8, false, "a"}},
	}
	for _, s := range seeds {
		f.Add(encodeHistory(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		h := decodeHistory(data)
		got := Check(h)
		want := refCheck(h)
		if got != want {
			t.Fatalf("Check = %v, reference = %v, history = %v", got, want, h)
		}
	})
}

// TestRefCheckSanity pins the reference itself on hand-checked cases so a
// fuzz divergence clearly implicates one side.
func TestRefCheckSanity(t *testing.T) {
	if !refCheck([]Op{{0, 1, true, "a"}, {2, 3, false, "a"}}) {
		t.Fatal("reference rejected legal history")
	}
	if refCheck([]Op{{0, 1, true, "a"}, {2, 3, false, "b"}}) {
		t.Fatal("reference accepted illegal read")
	}
	if !refCheck([]Op{Pending(0, true, "a"), {1, 2, false, Initial}}) {
		t.Fatal("reference rejected ignorable pending write")
	}
	if refCheck([]Op{Pending(0, true, "a"), {1, 2, false, "a"}, {3, 4, false, Initial}}) {
		t.Fatal("reference let a pending write un-apply after being observed")
	}
}
