// Package lincheck verifies linearizability of concurrent register
// histories — the correctness condition SRO registers claim (§6.1, citing
// Herlihy & Wing). It implements the Wing-Gong search with the Lowe
// just-visited memoization for single-register histories.
//
// The model checked is a read/write register: a history is linearizable iff
// there is a total order of operations, consistent with real-time order
// (op1 completes before op2 begins ⇒ op1 orders first), in which every read
// returns the value of the most recent preceding write (or the initial
// value if none).
//
// # Pending operations
//
// An operation whose response was never observed — a write submitted at a
// switch that failed, or whose acknowledgement was lost — is recorded with
// End = Inf. A pending write may or may not have taken effect; the checker
// treats it as optional: the history is linearizable iff some subset of the
// pending writes can be linearized together with all completed operations.
// Pending reads have no observable effect and are ignored.
//
// # Long histories
//
// Histories longer than 64 operations are handled by automatic time-windowed
// splitting: the history is cut at quiescent points (instants where every
// earlier operation has completed before every later one begins) and each
// window is checked with the bitmask search, carrying the set of reachable
// (value, consumed-pending) states across the cut. A window that is itself
// wider than 64 operations falls back to an unbounded (big-bitset) search,
// so Check never panics on history length.
package lincheck

import (
	"fmt"
	"math"
	"sort"
)

// Op is one operation in a history.
type Op struct {
	// Start and End are the invocation and response times. End must be
	// >= Start. Concurrent operations have overlapping [Start, End].
	// End = Inf marks a pending operation (no response observed).
	Start, End int64
	// Write is true for writes, false for reads.
	Write bool
	// Value is the written value, or the value the read returned.
	Value string
}

// Inf is the End time of a pending operation: invoked, but its response was
// never observed (writer failed, acknowledgement lost, ...).
const Inf int64 = math.MaxInt64

// Pending builds a pending operation: invoked at start, never completed.
// Pending writes may or may not have taken effect; Check tries both.
// Pending reads have no observable effect and are ignored by Check.
func Pending(start int64, write bool, value string) Op {
	return Op{Start: start, End: Inf, Write: write, Value: value}
}

// IsPending reports whether the operation never completed (End = Inf).
func (o Op) IsPending() bool { return o.End == Inf }

func (o Op) String() string {
	k := "R"
	if o.Write {
		k = "W"
	}
	if o.IsPending() {
		return fmt.Sprintf("%s(%q)@[%d,+inf]", k, o.Value, o.Start)
	}
	return fmt.Sprintf("%s(%q)@[%d,%d]", k, o.Value, o.Start, o.End)
}

// Initial is the register value before any write.
const Initial = ""

// maxCarried bounds the cross-window state set before the windowed search
// gives up and falls back to the unbounded whole-history search.
const maxCarried = 1024

// state is a cross-window search state: the register value at the cut plus
// the set of pending writes already linearized (consumed at most once).
type state struct {
	value string
	used  uint64
}

// Check reports whether the history is linearizable for a single register
// with the given initial value semantics (reads before any write must
// return lincheck.Initial). Operations with End = Inf are pending (see the
// package comment); all other operations must be completed.
//
// Complexity is exponential in the worst case but fast for the histories
// produced by protocol tests: sequential stretches split into independent
// windows, and concurrency within a window is bounded by the protocol's
// outstanding-operation limits.
func Check(history []Op) bool {
	var completed, pend []Op
	for _, o := range history {
		if o.IsPending() {
			if o.Write {
				pend = append(pend, o)
			}
			continue // pending reads have no observable effect
		}
		completed = append(completed, o)
	}
	if len(completed) == 0 {
		return true // any subset of pending writes linearizes in Start order
	}
	// Distinct-value detection enables the forced-read pruning: when no two
	// writes (completed or pending) share a value and none writes Initial,
	// a register value can never reappear after being overwritten, so a read
	// matching the current value can only linearize in the current era —
	// consuming it immediately is lossless and collapses the combinatorial
	// choice among concurrent same-value reads. Histories with wide
	// concurrency windows (a frozen chain member stalling dozens of
	// overlapping ops) are exponential without this and linear with it.
	uniq := true
	seen := make(map[string]struct{})
	for _, o := range history {
		if !o.Write {
			continue
		}
		if _, dup := seen[o.Value]; dup || o.Value == Initial {
			uniq = false
			break
		}
		seen[o.Value] = struct{}{}
	}
	sort.Slice(completed, func(i, j int) bool {
		if completed[i].Start != completed[j].Start {
			return completed[i].Start < completed[j].Start
		}
		return completed[i].End < completed[j].End
	})
	sort.Slice(pend, func(i, j int) bool { return pend[i].Start < pend[j].Start })
	if len(pend) > 64 {
		return checkBig(completed, pend, uniq)
	}

	// Cut the history at quiescent points: between consecutive completed ops
	// i-1 and i when every op so far responded strictly before op i began.
	// Each window is then independent except for the carried register state.
	type span struct{ from, to int }
	var wins []span
	start, maxEnd := 0, completed[0].End
	for i := 1; i < len(completed); i++ {
		if maxEnd < completed[i].Start {
			wins = append(wins, span{start, i})
			start = i
		}
		if completed[i].End > maxEnd {
			maxEnd = completed[i].End
		}
	}
	wins = append(wins, span{start, len(completed)})
	for _, w := range wins {
		if w.to-w.from > 64 {
			return checkBig(completed, pend, uniq)
		}
	}

	states := map[state]struct{}{{Initial, 0}: {}}
	var avail uint64
	pi := 0
	for wi, w := range wins {
		// A pending write becomes available in the first window whose span
		// covers its Start; it stays available (until consumed) afterwards,
		// which models taking effect at any later point.
		limit := int64(math.MaxInt64)
		if wi+1 < len(wins) {
			limit = completed[wins[wi+1].from].Start
		}
		for pi < len(pend) && pend[pi].Start < limit {
			avail |= 1 << pi
			pi++
		}
		states = checkWindow(completed[w.from:w.to], pend, avail, states, uniq)
		if len(states) == 0 {
			return false
		}
		if len(states) > maxCarried {
			return checkBig(completed, pend, uniq)
		}
	}
	return true
}

// checkWindow runs the Wing-Gong search over one window of completed ops
// (sorted by Start, ≤ 64), starting from every state in `in`, and returns
// the set of (value, consumed-pending) states reachable with the whole
// window linearized. pend is the global pending-write list; avail marks the
// pendings usable in this window. uniq asserts globally distinct write
// values and arms the forced-read pruning (see Check).
func checkWindow(ops []Op, pend []Op, avail uint64, in map[state]struct{}, uniq bool) map[state]struct{} {
	n := len(ops)
	full := uint64(1)<<n - 1
	out := make(map[state]struct{})
	type memoKey struct {
		done  uint64
		value string
		used  uint64
	}
	visited := make(map[memoKey]struct{})

	minEndOf := func(done uint64) int64 {
		// minEnd: the earliest response among not-yet-linearized completed
		// ops. Any op linearized next must have started by then.
		minEnd := int64(math.MaxInt64)
		for i := 0; i < n; i++ {
			if done&(1<<i) == 0 && ops[i].End < minEnd {
				minEnd = ops[i].End
			}
		}
		return minEnd
	}

	var search func(done uint64, value string, used uint64)
	search = func(done uint64, value string, used uint64) {
		if uniq {
			// Forced reads: with distinct write values the current value
			// exists only in this era, so every linearizable read of it must
			// linearize here — consume them all eagerly, no branching.
			// Consuming can only raise minEnd, so repeat until stable.
			for {
				minEnd, prev := minEndOf(done), done
				for i := 0; i < n; i++ {
					if done&(1<<i) == 0 && !ops[i].Write && ops[i].Value == value && ops[i].Start <= minEnd {
						done |= 1 << i
					}
				}
				if done == prev {
					break
				}
			}
		}
		if done == full {
			out[state{value, used}] = struct{}{}
			return
		}
		k := memoKey{done, value, used}
		if _, seen := visited[k]; seen {
			return
		}
		visited[k] = struct{}{}

		minEnd := minEndOf(done)
		for i := 0; i < n; i++ {
			if done&(1<<i) != 0 {
				continue
			}
			if ops[i].Start > minEnd {
				break // ops are sorted by Start; none later can be minimal
			}
			o := ops[i]
			if o.Write {
				search(done|(1<<i), o.Value, used)
			} else if o.Value == value {
				search(done|(1<<i), value, used)
			}
		}
		// A pending write may take effect at any point after its invocation.
		for j := range pend {
			bit := uint64(1) << j
			if avail&bit == 0 || used&bit != 0 {
				continue
			}
			if pend[j].Start <= minEnd {
				search(done, pend[j].Value, used|bit)
			}
		}
	}
	for s := range in {
		search(0, s.value, s.used)
	}
	return out
}

// checkBig is the unbounded fallback: the same search over the whole
// history with arbitrary-width bitsets. Exponential worst case, but only
// reached for >64-op windows with no quiescent cut (or >64 pending writes),
// which protocol histories do not produce in practice.
func checkBig(completed, pend []Op, uniq bool) bool {
	n := len(completed)
	done := make([]bool, n)
	used := make([]bool, len(pend))
	remaining := n
	visited := make(map[string]struct{})
	key := func(value string) string {
		b := make([]byte, 0, n+len(pend)+len(value)+1)
		for _, d := range done {
			if d {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
		}
		for _, u := range used {
			if u {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
		}
		b = append(b, 0xff)
		b = append(b, value...)
		return string(b)
	}

	minEndOf := func() int64 {
		minEnd := int64(math.MaxInt64)
		for i := 0; i < n; i++ {
			if !done[i] && completed[i].End < minEnd {
				minEnd = completed[i].End
			}
		}
		return minEnd
	}

	var search func(value string) bool
	search = func(value string) bool {
		// Forced reads under distinct write values — same pruning as
		// checkWindow; undone on backtrack.
		var forced []int
		if uniq {
			for {
				minEnd, n0 := minEndOf(), len(forced)
				for i := 0; i < n; i++ {
					if !done[i] && !completed[i].Write && completed[i].Value == value && completed[i].Start <= minEnd {
						done[i] = true
						remaining--
						forced = append(forced, i)
					}
				}
				if len(forced) == n0 {
					break
				}
			}
		}
		undo := func() {
			for _, i := range forced {
				done[i] = false
				remaining++
			}
		}
		if remaining == 0 {
			undo()
			return true
		}
		k := key(value)
		if _, seen := visited[k]; seen {
			undo()
			return false
		}
		visited[k] = struct{}{}

		minEnd := minEndOf()
		for i := 0; i < n; i++ {
			if done[i] {
				continue
			}
			if completed[i].Start > minEnd {
				break
			}
			o := completed[i]
			if !o.Write && o.Value != value {
				continue
			}
			next := value
			if o.Write {
				next = o.Value
			}
			done[i] = true
			remaining--
			ok := search(next)
			done[i] = false
			remaining++
			if ok {
				undo()
				return true
			}
		}
		for j := range pend {
			if used[j] || pend[j].Start > minEnd {
				continue
			}
			used[j] = true
			ok := search(pend[j].Value)
			used[j] = false
			if ok {
				undo()
				return true
			}
		}
		undo()
		return false
	}
	return search(Initial)
}

// Partition splits a multi-key history into per-key histories. SwiShmem
// promises per-register linearizability (§6.1), so each key's history is
// checked independently.
func Partition(keys []uint64, history []Op) map[uint64][]Op {
	if len(keys) != len(history) {
		panic("lincheck: keys and history length mismatch")
	}
	out := make(map[uint64][]Op)
	for i, k := range keys {
		out[k] = append(out[k], history[i])
	}
	return out
}

// Recorder collects a history with monotonically increasing times, for use
// inside simulation tests.
type Recorder struct {
	keys []uint64
	ops  []Op
}

// Add appends an operation on key (completed, or pending with End = Inf).
func (r *Recorder) Add(key uint64, op Op) {
	if op.End < op.Start {
		panic(fmt.Sprintf("lincheck: op ends before it starts: %v", op))
	}
	r.keys = append(r.keys, key)
	r.ops = append(r.ops, op)
}

// AddPending appends a pending operation on key (End = Inf): invoked at
// start but never observed to complete.
func (r *Recorder) AddPending(key uint64, start int64, write bool, value string) {
	r.Add(key, Pending(start, write, value))
}

// Len returns the number of recorded operations.
func (r *Recorder) Len() int { return len(r.ops) }

// Each visits the recorded operations in recording order, for merging
// several recorders (e.g. per-shard histories) into one.
func (r *Recorder) Each(fn func(key uint64, op Op)) {
	for i := range r.ops {
		fn(r.keys[i], r.ops[i])
	}
}

// CheckAll verifies every key's sub-history in ascending key order,
// returning the smallest violating key (ok=false) or ok=true. The sorted
// iteration makes the reported badKey deterministic across runs.
func (r *Recorder) CheckAll() (badKey uint64, ok bool) {
	badKey, _, ok = r.CheckAllDetailed()
	return badKey, ok
}

// CheckAllDetailed verifies every key's sub-history in ascending key order.
// On violation it returns the smallest violating key and that key's full
// sub-history (in recording order) for counterexample reporting.
func (r *Recorder) CheckAllDetailed() (badKey uint64, history []Op, ok bool) {
	byKey := Partition(r.keys, r.ops)
	keys := make([]uint64, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if !Check(byKey[k]) {
			return k, byKey[k], false
		}
	}
	return 0, nil, true
}
