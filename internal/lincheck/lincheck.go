// Package lincheck verifies linearizability of concurrent register
// histories — the correctness condition SRO registers claim (§6.1, citing
// Herlihy & Wing). It implements the Wing-Gong search with the Lowe
// just-visited memoization for single-register histories.
//
// The model checked is a read/write register: a history is linearizable iff
// there is a total order of operations, consistent with real-time order
// (op1 completes before op2 begins ⇒ op1 orders first), in which every read
// returns the value of the most recent preceding write (or the initial
// value if none).
package lincheck

import (
	"fmt"
	"sort"
)

// Op is one completed operation in a history.
type Op struct {
	// Start and End are the invocation and response times. End must be
	// >= Start. Concurrent operations have overlapping [Start, End].
	Start, End int64
	// Write is true for writes, false for reads.
	Write bool
	// Value is the written value, or the value the read returned.
	Value string
}

func (o Op) String() string {
	k := "R"
	if o.Write {
		k = "W"
	}
	return fmt.Sprintf("%s(%q)@[%d,%d]", k, o.Value, o.Start, o.End)
}

// Initial is the register value before any write.
const Initial = ""

// Check reports whether the history is linearizable for a single register
// with the given initial value semantics (reads before any write must
// return lincheck.Initial). Histories must contain only completed
// operations; pending operations should either be dropped or completed
// with an End of +inf by the caller, per standard practice.
//
// Complexity is exponential in the worst case but fast for the histories
// produced by protocol tests (≤ a few hundred ops with bounded concurrency).
func Check(history []Op) bool {
	n := len(history)
	if n == 0 {
		return true
	}
	ops := make([]Op, n)
	copy(ops, history)
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].Start != ops[j].Start {
			return ops[i].Start < ops[j].Start
		}
		return ops[i].End < ops[j].End
	})
	if n > 64 {
		// The bitmask search below packs the linearized set into a uint64.
		// Split longer histories with Partition before checking.
		panic("lincheck: history longer than 64 ops; partition it first")
	}

	type stateKey struct {
		done  uint64
		value string
	}
	visited := make(map[stateKey]bool)

	var search func(done uint64, value string) bool
	search = func(done uint64, value string) bool {
		if done == (uint64(1)<<n)-1 {
			return true
		}
		key := stateKey{done, value}
		if visited[key] {
			return false
		}
		visited[key] = true

		// minEnd: the earliest response among not-yet-linearized ops. Any op
		// we linearize next must have started before every completed-earlier
		// op's response — i.e. Start <= minEnd of the remaining ops.
		minEnd := int64(1<<63 - 1)
		for i := 0; i < n; i++ {
			if done&(1<<i) == 0 && ops[i].End < minEnd {
				minEnd = ops[i].End
			}
		}
		for i := 0; i < n; i++ {
			if done&(1<<i) != 0 {
				continue
			}
			if ops[i].Start > minEnd {
				break // ops are sorted by Start; none later can be minimal
			}
			o := ops[i]
			if o.Write {
				if search(done|(1<<i), o.Value) {
					return true
				}
			} else if o.Value == value {
				if search(done|(1<<i), value) {
					return true
				}
			}
		}
		return false
	}
	return search(0, Initial)
}

// Partition splits a multi-key history into per-key histories. SwiShmem
// promises per-register linearizability (§6.1), so each key's history is
// checked independently.
func Partition(keys []uint64, history []Op) map[uint64][]Op {
	if len(keys) != len(history) {
		panic("lincheck: keys and history length mismatch")
	}
	out := make(map[uint64][]Op)
	for i, k := range keys {
		out[k] = append(out[k], history[i])
	}
	return out
}

// Recorder collects a history with monotonically increasing times, for use
// inside simulation tests.
type Recorder struct {
	keys []uint64
	ops  []Op
}

// Add appends a completed operation on key.
func (r *Recorder) Add(key uint64, op Op) {
	if op.End < op.Start {
		panic(fmt.Sprintf("lincheck: op ends before it starts: %v", op))
	}
	r.keys = append(r.keys, key)
	r.ops = append(r.ops, op)
}

// Len returns the number of recorded operations.
func (r *Recorder) Len() int { return len(r.ops) }

// CheckAll verifies every key's sub-history, returning the first violating
// key (ok=false) or ok=true.
func (r *Recorder) CheckAll() (badKey uint64, ok bool) {
	for key, h := range Partition(r.keys, r.ops) {
		if !Check(h) {
			return key, false
		}
	}
	return 0, true
}
