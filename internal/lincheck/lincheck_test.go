package lincheck

import (
	"math/rand"
	"testing"
)

func TestEmptyAndTrivial(t *testing.T) {
	if !Check(nil) {
		t.Fatal("empty history must be linearizable")
	}
	if !Check([]Op{{0, 1, true, "a"}}) {
		t.Fatal("single write")
	}
	if !Check([]Op{{0, 1, false, Initial}}) {
		t.Fatal("read of initial value")
	}
	if Check([]Op{{0, 1, false, "ghost"}}) {
		t.Fatal("read of never-written value accepted")
	}
}

func TestSequentialHistory(t *testing.T) {
	h := []Op{
		{0, 1, true, "a"},
		{2, 3, false, "a"},
		{4, 5, true, "b"},
		{6, 7, false, "b"},
	}
	if !Check(h) {
		t.Fatal("legal sequential history rejected")
	}
	// Stale read after a completed overwrite.
	h[3] = Op{6, 7, false, "a"}
	if Check(h) {
		t.Fatal("stale read accepted")
	}
}

func TestConcurrentWriteRead(t *testing.T) {
	// Read concurrent with a write may return either old or new value.
	base := []Op{{0, 10, true, "a"}}
	if !Check(append(base, Op{5, 15, false, "a"})) {
		t.Fatal("concurrent read of new value rejected")
	}
	if !Check(append(base, Op{5, 15, false, Initial})) {
		t.Fatal("concurrent read of old value rejected")
	}
}

func TestRealTimeOrderEnforced(t *testing.T) {
	// W(a) completes, then W(b) completes, then a read returns "a": illegal.
	h := []Op{
		{0, 1, true, "a"},
		{2, 3, true, "b"},
		{4, 5, false, "a"},
	}
	if Check(h) {
		t.Fatal("real-time order violation accepted")
	}
}

func TestConcurrentWritesEitherOrder(t *testing.T) {
	// Two overlapping writes: later reads may see either, but consistently.
	h := []Op{
		{0, 10, true, "a"},
		{0, 10, true, "b"},
		{20, 21, false, "a"},
	}
	if !Check(h) {
		t.Fatal("a-last order rejected")
	}
	h[2] = Op{20, 21, false, "b"}
	if !Check(h) {
		t.Fatal("b-last order rejected")
	}
	// But two sequential reads cannot flip-flop.
	h = append(h, Op{22, 23, false, "a"})
	if Check(h) {
		t.Fatal("flip-flop reads accepted")
	}
}

func TestReadYourWriteViolation(t *testing.T) {
	// A committed write followed by a read of the initial value: illegal.
	h := []Op{
		{0, 1, true, "a"},
		{5, 6, false, Initial},
	}
	if Check(h) {
		t.Fatal("lost update accepted")
	}
}

func TestLongSequentialHistoryFast(t *testing.T) {
	var h []Op
	for i := 0; i < 60; i += 2 {
		v := string(rune('a' + i%26))
		h = append(h, Op{int64(i * 10), int64(i*10 + 5), true, v})
		h = append(h, Op{int64(i*10 + 6), int64(i*10 + 9), false, v})
	}
	if !Check(h) {
		t.Fatal("long legal history rejected")
	}
}

func TestTooLongPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for >64 ops")
		}
	}()
	h := make([]Op, 65)
	for i := range h {
		h[i] = Op{int64(i), int64(i), true, "x"}
	}
	Check(h)
}

func TestPartition(t *testing.T) {
	keys := []uint64{1, 2, 1}
	ops := []Op{{0, 1, true, "a"}, {0, 1, true, "b"}, {2, 3, false, "a"}}
	m := Partition(keys, ops)
	if len(m[1]) != 2 || len(m[2]) != 1 {
		t.Fatalf("partition = %v", m)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	Partition([]uint64{1}, ops)
}

func TestRecorder(t *testing.T) {
	var r Recorder
	r.Add(1, Op{0, 1, true, "a"})
	r.Add(1, Op{2, 3, false, "a"})
	r.Add(2, Op{0, 1, true, "x"})
	if r.Len() != 3 {
		t.Fatal("len")
	}
	if _, ok := r.CheckAll(); !ok {
		t.Fatal("legal history rejected")
	}
	r.Add(2, Op{5, 6, false, "stale"})
	if bad, ok := r.CheckAll(); ok || bad != 2 {
		t.Fatalf("violation not attributed to key 2: %d %v", bad, ok)
	}
}

func TestRecorderBadOpPanics(t *testing.T) {
	var r Recorder
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for End < Start")
		}
	}()
	r.Add(1, Op{Start: 5, End: 1})
}

// Randomized cross-validation: generate histories from a real sequentially
// consistent execution (so they are linearizable by construction) and
// verify Check accepts them; then corrupt one read and verify high
// rejection sensitivity for strictly-sequential histories.
func TestRandomizedLegalHistories(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		var h []Op
		now := int64(0)
		cur := Initial
		n := 5 + rng.Intn(20)
		for i := 0; i < n; i++ {
			dur := int64(rng.Intn(5) + 1)
			if rng.Intn(2) == 0 {
				v := string(rune('a' + rng.Intn(26)))
				h = append(h, Op{now, now + dur, true, v})
				cur = v
			} else {
				h = append(h, Op{now, now + dur, false, cur})
			}
			now += dur + 1
		}
		if !Check(h) {
			t.Fatalf("trial %d: legal history rejected: %v", trial, h)
		}
	}
}

func BenchmarkCheckSequential(b *testing.B) {
	var h []Op
	for i := 0; i < 30; i += 2 {
		v := string(rune('a' + i%26))
		h = append(h, Op{int64(i * 10), int64(i*10 + 5), true, v})
		h = append(h, Op{int64(i*10 + 6), int64(i*10 + 9), false, v})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !Check(h) {
			b.Fatal("rejected")
		}
	}
}
