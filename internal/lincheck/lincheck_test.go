package lincheck

import (
	"math/rand"
	"testing"
)

func TestEmptyAndTrivial(t *testing.T) {
	if !Check(nil) {
		t.Fatal("empty history must be linearizable")
	}
	if !Check([]Op{{0, 1, true, "a"}}) {
		t.Fatal("single write")
	}
	if !Check([]Op{{0, 1, false, Initial}}) {
		t.Fatal("read of initial value")
	}
	if Check([]Op{{0, 1, false, "ghost"}}) {
		t.Fatal("read of never-written value accepted")
	}
}

func TestSequentialHistory(t *testing.T) {
	h := []Op{
		{0, 1, true, "a"},
		{2, 3, false, "a"},
		{4, 5, true, "b"},
		{6, 7, false, "b"},
	}
	if !Check(h) {
		t.Fatal("legal sequential history rejected")
	}
	// Stale read after a completed overwrite.
	h[3] = Op{6, 7, false, "a"}
	if Check(h) {
		t.Fatal("stale read accepted")
	}
}

func TestConcurrentWriteRead(t *testing.T) {
	// Read concurrent with a write may return either old or new value.
	base := []Op{{0, 10, true, "a"}}
	if !Check(append(base, Op{5, 15, false, "a"})) {
		t.Fatal("concurrent read of new value rejected")
	}
	if !Check(append(base, Op{5, 15, false, Initial})) {
		t.Fatal("concurrent read of old value rejected")
	}
}

func TestRealTimeOrderEnforced(t *testing.T) {
	// W(a) completes, then W(b) completes, then a read returns "a": illegal.
	h := []Op{
		{0, 1, true, "a"},
		{2, 3, true, "b"},
		{4, 5, false, "a"},
	}
	if Check(h) {
		t.Fatal("real-time order violation accepted")
	}
}

func TestConcurrentWritesEitherOrder(t *testing.T) {
	// Two overlapping writes: later reads may see either, but consistently.
	h := []Op{
		{0, 10, true, "a"},
		{0, 10, true, "b"},
		{20, 21, false, "a"},
	}
	if !Check(h) {
		t.Fatal("a-last order rejected")
	}
	h[2] = Op{20, 21, false, "b"}
	if !Check(h) {
		t.Fatal("b-last order rejected")
	}
	// But two sequential reads cannot flip-flop.
	h = append(h, Op{22, 23, false, "a"})
	if Check(h) {
		t.Fatal("flip-flop reads accepted")
	}
}

func TestReadYourWriteViolation(t *testing.T) {
	// A committed write followed by a read of the initial value: illegal.
	h := []Op{
		{0, 1, true, "a"},
		{5, 6, false, Initial},
	}
	if Check(h) {
		t.Fatal("lost update accepted")
	}
}

func TestLongSequentialHistoryFast(t *testing.T) {
	var h []Op
	for i := 0; i < 60; i += 2 {
		v := string(rune('a' + i%26))
		h = append(h, Op{int64(i * 10), int64(i*10 + 5), true, v})
		h = append(h, Op{int64(i*10 + 6), int64(i*10 + 9), false, v})
	}
	if !Check(h) {
		t.Fatal("long legal history rejected")
	}
}

func TestLongHistorySplitsIntoWindows(t *testing.T) {
	// 300 ops, far beyond the 64-op bitmask limit, but with quiescent cuts
	// between each write/read pair: the windowed splitter must handle it.
	var h []Op
	cur := Initial
	now := int64(0)
	for i := 0; i < 150; i++ {
		v := string(rune('a' + i%26))
		h = append(h, Op{now, now + 5, true, v})
		h = append(h, Op{now + 3, now + 9, false, v}) // concurrent with its write
		cur = v
		now += 20
	}
	if !Check(h) {
		t.Fatal("long legal history rejected")
	}
	// Corrupt one read deep in the history: must be rejected.
	bad := make([]Op, len(h))
	copy(bad, h)
	bad[201].Value = "ZZZ"
	if Check(bad) {
		t.Fatal("corrupted long history accepted")
	}
	// Stale read across a window boundary: read an old value after a
	// completed overwrite two windows earlier.
	stale := make([]Op, len(h))
	copy(stale, h)
	stale[299].Value = stale[280].Value
	if Check(stale) {
		t.Fatal("stale cross-window read accepted")
	}
	_ = cur
}

func TestLongConcurrentWindowUsesBigFallback(t *testing.T) {
	// A 70-op ladder where op i overlaps op i+1: every adjacent pair is
	// concurrent, so no quiescent cut exists and the >64-op window must go
	// through the big-bitset fallback. Concurrency width stays 2, so the
	// memoized search remains fast.
	var h []Op
	for i := 0; i < 70; i++ {
		v := string(rune('a' + i%26))
		h = append(h, Op{int64(i * 10), int64(i*10 + 15), true, v})
	}
	last := h[69].Value
	h = append(h, Op{800, 801, false, last})
	if !Check(h) {
		t.Fatal("legal >64-op concurrent window rejected")
	}
	h[70].Value = "ZZZ"
	if Check(h) {
		t.Fatal("read of never-written value accepted by big fallback")
	}
}

func TestPendingWriteOptional(t *testing.T) {
	// A pending write may or may not have taken effect; both continuations
	// are legal.
	h := []Op{
		Pending(0, true, "a"),
		{10, 11, false, "a"}, // it took effect
	}
	if !Check(h) {
		t.Fatal("pending write taking effect rejected")
	}
	h[1] = Op{10, 11, false, Initial} // it did not
	if !Check(h) {
		t.Fatal("pending write not taking effect rejected")
	}
	// But it cannot flip-flop: seen, then unseen.
	h = []Op{
		Pending(0, true, "a"),
		{10, 11, false, "a"},
		{12, 13, false, Initial},
	}
	if Check(h) {
		t.Fatal("pending write un-applied after being observed")
	}
}

func TestPendingWriteCannotTakeEffectEarly(t *testing.T) {
	// The pending write starts after the read completes: the read cannot
	// observe it.
	h := []Op{
		{0, 1, false, "a"},
		Pending(5, true, "a"),
	}
	if Check(h) {
		t.Fatal("read observed a write invoked after it completed")
	}
}

func TestPendingReadIgnored(t *testing.T) {
	h := []Op{
		{0, 1, true, "a"},
		Pending(2, false, "nonsense"), // no response observed: no constraint
	}
	if !Check(h) {
		t.Fatal("pending read constrained the history")
	}
}

func TestPendingAcrossWindows(t *testing.T) {
	// A pending write from an early window may take effect in a much later
	// window (e.g. a delayed chain write applying after failover).
	var h []Op
	now := int64(0)
	for i := 0; i < 100; i++ {
		v := string(rune('a' + i%26))
		h = append(h, Op{now, now + 5, true, v})
		h = append(h, Op{now + 6, now + 9, false, v})
		now += 20
	}
	h = append(h, Pending(3, true, "LATE"))
	h = append(h, Op{now, now + 1, false, "LATE"}) // applied at the very end
	if !Check(h) {
		t.Fatal("late-applying pending write rejected")
	}
	// Once overwritten by a later completed write, it cannot resurface.
	h = append(h, Op{now + 10, now + 11, true, "final"})
	h = append(h, Op{now + 20, now + 21, false, "LATE"})
	if Check(h) {
		t.Fatal("pending write resurfaced after completed overwrite")
	}
}

func TestCheckAllDetailed(t *testing.T) {
	var r Recorder
	r.Add(7, Op{0, 1, true, "a"})
	r.Add(7, Op{2, 3, false, "a"})
	if _, _, ok := r.CheckAllDetailed(); !ok {
		t.Fatal("legal history rejected")
	}
	r.Add(9, Op{0, 1, true, "x"})
	r.Add(9, Op{5, 6, false, "stale"})
	r.Add(3, Op{0, 1, true, "y"})
	r.Add(3, Op{5, 6, false, "also-stale"})
	bad, hist, ok := r.CheckAllDetailed()
	if ok {
		t.Fatal("violations not detected")
	}
	if bad != 3 {
		t.Fatalf("badKey = %d, want smallest violating key 3", bad)
	}
	if len(hist) != 2 || hist[1].Value != "also-stale" {
		t.Fatalf("sub-history = %v", hist)
	}
}

func TestCheckAllDeterministicBadKey(t *testing.T) {
	// Multiple violating keys: CheckAll must always report the smallest.
	for trial := 0; trial < 20; trial++ {
		var r Recorder
		for _, k := range []uint64{42, 7, 99, 13} {
			r.Add(k, Op{0, 1, true, "v"})
			r.Add(k, Op{5, 6, false, "stale"})
		}
		if bad, ok := r.CheckAll(); ok || bad != 7 {
			t.Fatalf("trial %d: badKey = %d, want 7", trial, bad)
		}
	}
}

func TestPartition(t *testing.T) {
	keys := []uint64{1, 2, 1}
	ops := []Op{{0, 1, true, "a"}, {0, 1, true, "b"}, {2, 3, false, "a"}}
	m := Partition(keys, ops)
	if len(m[1]) != 2 || len(m[2]) != 1 {
		t.Fatalf("partition = %v", m)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	Partition([]uint64{1}, ops)
}

func TestRecorder(t *testing.T) {
	var r Recorder
	r.Add(1, Op{0, 1, true, "a"})
	r.Add(1, Op{2, 3, false, "a"})
	r.Add(2, Op{0, 1, true, "x"})
	if r.Len() != 3 {
		t.Fatal("len")
	}
	if _, ok := r.CheckAll(); !ok {
		t.Fatal("legal history rejected")
	}
	r.Add(2, Op{5, 6, false, "stale"})
	if bad, ok := r.CheckAll(); ok || bad != 2 {
		t.Fatalf("violation not attributed to key 2: %d %v", bad, ok)
	}
}

func TestRecorderBadOpPanics(t *testing.T) {
	var r Recorder
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for End < Start")
		}
	}()
	r.Add(1, Op{Start: 5, End: 1})
}

// Randomized cross-validation: generate histories from a real sequentially
// consistent execution (so they are linearizable by construction) and
// verify Check accepts them; then corrupt one read and verify high
// rejection sensitivity for strictly-sequential histories.
func TestRandomizedLegalHistories(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		var h []Op
		now := int64(0)
		cur := Initial
		n := 5 + rng.Intn(20)
		for i := 0; i < n; i++ {
			dur := int64(rng.Intn(5) + 1)
			if rng.Intn(2) == 0 {
				v := string(rune('a' + rng.Intn(26)))
				h = append(h, Op{now, now + dur, true, v})
				cur = v
			} else {
				h = append(h, Op{now, now + dur, false, cur})
			}
			now += dur + 1
		}
		if !Check(h) {
			t.Fatalf("trial %d: legal history rejected: %v", trial, h)
		}
	}
}

func BenchmarkCheckSequential(b *testing.B) {
	var h []Op
	for i := 0; i < 30; i += 2 {
		v := string(rune('a' + i%26))
		h = append(h, Op{int64(i * 10), int64(i*10 + 5), true, v})
		h = append(h, Op{int64(i*10 + 6), int64(i*10 + 9), false, v})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !Check(h) {
			b.Fatal("rejected")
		}
	}
}

// TestWideConcurrencyWindowFast pins the forced-read pruning: a frozen
// replica stalling the chain yields dozens of mutually overlapping ops with
// distinct write values — one giant window with no quiescent cut. Without
// eagerly consuming reads that match the current value this is exponential
// (it took ~50s before the pruning); with it, milliseconds.
func TestWideConcurrencyWindowFast(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var h []Op
	// 12 sequential writes with distinct values...
	for i := 0; i < 12; i++ {
		h = append(h, Op{Start: int64(i * 10), End: int64(i*10 + 4), Write: true, Value: string(rune('a' + i))})
	}
	// ...and 30 reads all overlapping the whole history (each returns the
	// value of some write that overlaps its invocation window — legal).
	for i := 0; i < 30; i++ {
		v := rng.Intn(12)
		h = append(h, Op{Start: 0, End: 130, Write: false, Value: string(rune('a' + v))})
	}
	if !Check(h) {
		t.Fatal("legal wide-window history rejected")
	}
	// A read of a value from a strictly earlier era, invoked after that era
	// provably ended, must still be rejected.
	bad := append(append([]Op(nil), h...), Op{Start: 200, End: 201, Write: false, Value: "a"})
	bad = append(bad, Op{Start: 150, End: 160, Write: false, Value: string(rune('a' + 11))})
	if Check(bad) {
		t.Fatal("stale read in wide-window history accepted")
	}
}
