// Package livecluster assembles SwiShmem switches into a cross-process-style
// cluster over the live UDP transport: each member is one fabric (one pump
// goroutine, one socket) running an unmodified PISA switch model with the
// chain and EWO protocols, discovered and configured by a controller.Live.
// The Soak harness drives such a cluster under injected loss for a
// wall-clock budget and then runs the internal/explore oracles over the
// surviving state.
package livecluster

import (
	"net/netip"
	"time"

	"swishmem/internal/chain"
	"swishmem/internal/controller"
	"swishmem/internal/core"
	"swishmem/internal/ewo"
	"swishmem/internal/netem"
	"swishmem/internal/netem/live"
	"swishmem/internal/obs"
	"swishmem/internal/pisa"
	"swishmem/internal/sim"
	"swishmem/internal/wire"
)

// ControllerAddr mirrors the facade's fixed controller address.
const ControllerAddr netem.Addr = 0xfffe

// The fixed register layout every member declares. Wire configs carry no
// register id, so a live cluster uses uniform membership: one chain shared
// by the strong register, one group shared by both EWO registers (see
// controller.Live).
const (
	RegStrong  uint16 = 1
	RegCounter uint16 = 2
	RegLWW     uint16 = 3

	StrongCapacity = 512
	CounterKeys    = 16
	LWWKeys        = 4
)

// MemberConfig parameterizes one cluster member.
type MemberConfig struct {
	// Addr is the member's SwiShmem address (switch i uses i+1). Required.
	Addr netem.Addr
	// Seed seeds the member's engine and fault sampling.
	Seed int64
	// ControllerEP is the controller's UDP endpoint. Required.
	ControllerEP netip.AddrPort
	// Listen is the UDP bind address. Default 127.0.0.1:0.
	Listen string
	// Profile shapes this member's outbound datagrams (the injected fault
	// model: loss, delay, jitter, dup, reorder).
	Profile netem.LinkProfile
	// HeartbeatPeriod is the failure-detection beat. Default 20ms.
	HeartbeatPeriod sim.Duration
	// HelloPeriod is the bootstrap announcement interval. Default 25ms.
	HelloPeriod sim.Duration
	// SyncPeriod is the EWO synchronization interval. Default 5ms.
	SyncPeriod sim.Duration
	// RetryTimeout is the chain writer retransmission timeout. Default 2ms.
	RetryTimeout sim.Duration
}

func (c MemberConfig) withDefaults() MemberConfig {
	if c.HeartbeatPeriod == 0 {
		c.HeartbeatPeriod = 20 * time.Millisecond
	}
	if c.HelloPeriod == 0 {
		c.HelloPeriod = 25 * time.Millisecond
	}
	if c.SyncPeriod == 0 {
		c.SyncPeriod = 5 * time.Millisecond
	}
	if c.RetryTimeout == 0 {
		c.RetryTimeout = 2 * time.Millisecond
	}
	return c
}

// Member is one live cluster node: fabric, switch model, and the three
// standard registers.
type Member struct {
	Fabric  *live.Fabric
	Switch  *pisa.Switch
	Inst    *core.Instance
	Strong  *core.StrongRegister
	Counter *core.CounterRegister
	LWW     *core.EventualRegister
}

// NewMember assembles a member: transport fabric, PISA switch on the
// fabric's engine/network, register declarations, heartbeats to the
// controller, and the bootstrap Hello loop. The fabric is returned stopped;
// call Start to go live.
func NewMember(cfg MemberConfig) (*Member, error) {
	cfg = cfg.withDefaults()
	f, err := live.NewFabric(live.FabricConfig{
		Addr: cfg.Addr,
		Seed: cfg.Seed,
		Node: live.Options{Listen: cfg.Listen, Profile: cfg.Profile},
		// Members run the full batched hot path: per-destination frame
		// coalescing with serialization and socket writes on two egress
		// workers. The soak's oracles (and its byte-counter checks) prove
		// these paths against the simulator's semantics.
		Coalesce:     true,
		EgressShards: 2,
	})
	if err != nil {
		return nil, err
	}
	sw := pisa.New(f.Engine(), f.Network(), pisa.Config{Addr: cfg.Addr})
	in := core.NewInstance(sw)
	m := &Member{Fabric: f, Switch: sw, Inst: in}

	m.Strong, err = in.NewStrongRegister(core.Strong, chainConfig(cfg))
	if err == nil {
		m.Counter, err = in.NewCounterRegister(counterConfig(cfg))
	}
	if err == nil {
		m.LWW, err = in.NewEventualRegister(lwwConfig(cfg))
	}
	if err != nil {
		f.Stop()
		return nil, err
	}

	startHeartbeats(sw, cfg.HeartbeatPeriod)
	f.Bootstrap(ControllerAddr, cfg.ControllerEP, cfg.HelloPeriod)
	return m, nil
}

// RegisterMetrics registers the member's transport counters plus its
// protocol counters and chain write-latency histogram under the given label
// set (e.g. "node=2"). The underlying structs are owned by the member's
// pump goroutine: snapshot or stream the registry only under Fabric.Call,
// or after the pump has stopped.
func (m *Member) RegisterMetrics(reg *obs.Registry, labels string) {
	m.Fabric.RegisterMetrics(reg, labels)
	cn := m.Strong.Node()
	cs := cn.Counters()
	reg.AddCounter("chain.writes_submitted", labels, &cs.WritesSubmitted)
	reg.AddCounter("chain.writes_committed", labels, &cs.WritesCommitted)
	reg.AddCounter("chain.writes_failed", labels, &cs.WritesFailed)
	reg.AddCounter("chain.retries", labels, &cs.Retries)
	reg.AddCounter("chain.applied", labels, &cs.Applied)
	reg.AddHistogram("chain.write_latency_ns", labels, cn.WriteLatency())
	for _, e := range []struct {
		reg  string
		node *ewo.Node
	}{{"counter", m.Counter.Node()}, {"lww", m.LWW.Node()}} {
		rl := labels + ",reg=" + e.reg
		if labels == "" {
			rl = "reg=" + e.reg
		}
		es := &e.node.Stats
		reg.AddCounter("ewo.writes", rl, &es.Writes)
		reg.AddCounter("ewo.updates_sent", rl, &es.UpdatesSent)
		reg.AddCounter("ewo.updates_recv", rl, &es.UpdatesRecv)
		reg.AddCounter("ewo.entries_merged", rl, &es.EntriesMerged)
		reg.AddCounter("ewo.sync_packets", rl, &es.SyncPackets)
		reg.AddCounter("ewo.update_bytes", rl, &es.UpdateBytes)
		reg.AddCounter("ewo.sync_bytes", rl, &es.SyncBytes)
	}
}

// Start launches the member's pump.
func (m *Member) Start() { m.Fabric.Start() }

// Stop halts the pump and closes the socket.
func (m *Member) Stop() { m.Fabric.Stop() }

// NewLiveController assembles the controller side: a fabric on the
// controller address plus a controller.Live expecting the given members.
func NewLiveController(seed int64, listen string, members []netem.Addr,
	hb, resend sim.Duration) (*live.Fabric, *controller.Live, error) {
	f, err := live.NewFabric(live.FabricConfig{
		Addr: ControllerAddr,
		Seed: seed,
		Node: live.Options{Listen: listen},
	})
	if err != nil {
		return nil, nil, err
	}
	ctl := controller.NewLive(controller.LiveConfig{
		Fabric:          f,
		Members:         members,
		HeartbeatPeriod: hb,
		ResendPeriod:    resend,
	})
	return f, ctl, nil
}

func chainConfig(cfg MemberConfig) chain.Config {
	return chain.Config{
		Reg:          RegStrong,
		Capacity:     StrongCapacity,
		ValueWidth:   8,
		RetryTimeout: cfg.RetryTimeout,
	}
}

// syncPacketBytes caps a member's periodic-sync updates just under the
// fabric's 1200-byte coalesce limit (minus batch framing), so a sync round
// packs into MTU-shaped wire.Batch datagrams end to end.
const syncPacketBytes = 1024

func counterConfig(cfg MemberConfig) ewo.Config {
	return ewo.Config{
		Reg: RegCounter, Capacity: 128, SyncPeriod: cfg.SyncPeriod,
		SyncPacketBytes: syncPacketBytes,
	}
}

func lwwConfig(cfg MemberConfig) ewo.Config {
	return ewo.Config{
		Reg: RegLWW, Capacity: 64, ValueWidth: 8, SyncPeriod: cfg.SyncPeriod,
		SyncPacketBytes: syncPacketBytes,
	}
}

// startHeartbeats mirrors controller.Monitor's pooled data-plane heartbeat
// generator, addressed at the live controller.
func startHeartbeats(sw *pisa.Switch, period sim.Duration) {
	seq := uint64(0)
	var free []*wire.Heartbeat
	freeFn := func(h *wire.Heartbeat) { free = append(free, h) }
	sw.PacketGen(period, func() {
		seq++
		var hb *wire.Heartbeat
		if n := len(free); n > 0 {
			hb = free[n-1]
			free[n-1] = nil
			free = free[:n-1]
		} else {
			hb = &wire.Heartbeat{}
			hb.EnablePool(freeFn)
		}
		hb.From, hb.Seq = uint16(sw.Addr()), seq
		hb.Ref()
		sw.Send(ControllerAddr, hb)
		hb.Release()
	})
}
