package livecluster

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"swishmem/internal/explore"
	"swishmem/internal/netem"
	"swishmem/internal/netem/live"
	"swishmem/internal/obs"
	"swishmem/internal/packet"
	"swishmem/internal/workload"
)

// Flight-recorder and timeline shape for soak runs.
const (
	soakTraceCap  = 1 << 14
	soakLastN     = 64
	soakTailRows  = 16
	soakTimelineW = 8
)

// flowHash maps a 5-tuple onto a stable 64-bit value (FNV-1a) so a trace
// packet lands on the same member/key in every run.
func flowHash(k packet.FlowKey) uint64 {
	h := uint64(14695981039346656037)
	mix := func(b byte) { h = (h ^ uint64(b)) * 1099511628211 }
	src, dst := k.Src.As4(), k.Dst.As4()
	for _, b := range src {
		mix(b)
	}
	for _, b := range dst {
		mix(b)
	}
	mix(byte(k.SrcPort >> 8))
	mix(byte(k.SrcPort))
	mix(byte(k.DstPort >> 8))
	mix(byte(k.DstPort))
	mix(byte(k.Proto))
	return h
}

// SoakConfig parameterizes a loopback live-cluster soak.
type SoakConfig struct {
	// Members is the cluster size. Default 3.
	Members int
	// Seed drives the workload op sequence and per-node fault sampling.
	Seed int64
	// Budget is the wall-clock workload duration. Default 2s.
	Budget time.Duration
	// Loss is the injected outbound loss rate on every member. Default 0.05
	// (the acceptance floor).
	Loss float64
	// Latency/Jitter/DupRate/ReorderRate complete the injected fault model.
	// Defaults: 200µs latency, 100µs jitter, 1% dup, 1% reorder.
	Latency     time.Duration
	Jitter      time.Duration
	DupRate     float64
	ReorderRate float64
	// CorruptRate adds payload bit-corruption to every member's egress: a
	// corrupted frame reaches the receiver with its 2-byte sender header
	// intact and must be counted as a clean decode error — never delivered
	// as a wrong message, never a panic. Default 0 (off).
	CorruptRate float64
	// LossEveryN, when >= 2, deterministically kills every Nth outbound
	// datagram per destination on every member (a counter, not a coin — the
	// cadence that random loss at the same rate never produces). Default 0.
	LossEveryN int
	// AsymLoss, when > 0, overrides member 0's egress to the last member
	// with this loss rate while the reverse direction keeps the base
	// profile: a per-direction (asymmetric) link. Default 0 (symmetric).
	AsymLoss float64
	// PauseFor, when > 0, freezes the last member mid-workload (the GC
	// pause / SIGSTOP process fault: dispatch parks, sends stop — including
	// its failure-detector heartbeats — inbound backlogs) and resumes it
	// after this long, replaying the backlog. Keep it under the
	// controller's failure timeout (10 heartbeat periods = 200ms): the
	// detector must ride the pause out without evicting, and every oracle
	// must still pass over the replayed state. Default 0 (off).
	PauseFor time.Duration
	// OpInterval is the pacing between workload ops. Default 300µs.
	OpInterval time.Duration
	// Keys is the strong-register key range. Default 32.
	Keys int
	// Trace, when non-empty, drives the workload from a trafficgen packet
	// trace instead of the synthetic op mix: each packet maps
	// deterministically (by flow hash) onto a member and an op — flow
	// starts become strong writes (connection state), flow ends become LWW
	// writes (last-seen state), and every other packet becomes a counter
	// increment (per-flow packet counting, the paper's DDoS use case). The
	// trace loops until Budget elapses.
	Trace workload.Trace
	// Timeline, when non-nil, receives a continuous JSONL metrics timeline:
	// one schema header + row stream per node (the controller and every
	// member), each row tagged with its node label, sampled every
	// SampleInterval of wall clock under that node's pump lock. Controller
	// rows carry a soak.members_alive gauge (the availability series);
	// member rows carry transport counter deltas (pps) and per-window
	// chain write-latency quantiles.
	Timeline io.Writer
	// SampleInterval paces the timeline sampler. Default 100ms.
	SampleInterval time.Duration
	// Stop, when non-nil, ends the workload phase early when it becomes
	// readable (e.g. closed on SIGINT): the run still calms the network,
	// quiesces, runs the oracles, and renders its telemetry.
	Stop <-chan struct{}
}

func (c SoakConfig) withDefaults() SoakConfig {
	if c.Members == 0 {
		c.Members = 3
	}
	if c.Budget == 0 {
		c.Budget = 2 * time.Second
	}
	if c.Loss == 0 {
		c.Loss = 0.05
	}
	if c.Latency == 0 {
		c.Latency = 200 * time.Microsecond
	}
	if c.Jitter == 0 {
		c.Jitter = 100 * time.Microsecond
	}
	if c.DupRate == 0 {
		c.DupRate = 0.01
	}
	if c.ReorderRate == 0 {
		c.ReorderRate = 0.01
	}
	if c.OpInterval == 0 {
		c.OpInterval = 300 * time.Microsecond
	}
	if c.Keys == 0 {
		c.Keys = 32
	}
	if c.SampleInterval == 0 {
		c.SampleInterval = 100 * time.Millisecond
	}
	return c
}

// SoakReport is the outcome of one soak run.
type SoakReport struct {
	// Failures lists oracle violations ("oracle <name>: ..."); empty = pass.
	Failures []string
	// Workload totals.
	StrongWrites int
	Committed    int
	CounterAdds  int
	LWWWrites    int
	// Metrics is the rendered transport/fabric/protocol metrics snapshot.
	Metrics string
	// TimelineRows counts the rows emitted to SoakConfig.Timeline (0 when no
	// timeline writer was configured).
	TimelineRows int
	// PauseRounds counts completed pause/resume rounds (1 when
	// SoakConfig.PauseFor was set and the victim was frozen and resumed).
	PauseRounds int
	// TxCorrupted and RxDecodeErr total, across every node, the corrupted
	// frames injected on egress and the frames rejected at decode — the
	// byte-fault pipeline's visible ends.
	TxCorrupted uint64
	RxDecodeErr uint64
	// FlightRecord is the rendered flight record of a failing run ("" on
	// pass): the last trace events across every node, the final metrics
	// snapshot, and the timeline tail.
	FlightRecord string
}

// Failed reports whether any oracle was violated.
func (r *SoakReport) Failed() bool { return len(r.Failures) > 0 }

// soakWrite tracks one strong write through its commit callback (touched
// only on its member's pump goroutine until the final collection Call).
type soakWrite struct {
	key       uint64
	resolved  bool
	committed bool
}

// memberTrack is per-member workload bookkeeping, owned by that member's
// pump goroutine.
type memberTrack struct {
	writes   []*soakWrite
	ctrAdded [CounterKeys]uint64
}

// Soak runs a full live-cluster soak on loopback: boot a controller and
// Members member processes-worth of fabrics, drive a mixed workload under
// the injected fault model for Budget — optionally extended with payload
// corruption, deterministic every-Nth loss, an asymmetric link leg, and a
// process pause/resume round — calm the network, quiesce, and run the
// explore durability/counter-total/convergence oracles over the surviving
// state. The linearizability and agreement oracles are strict-mode
// (lossless) checks in the explorer and do not apply under injected loss.
func Soak(cfg SoakConfig) (*SoakReport, error) {
	cfg = cfg.withDefaults()
	rep := &SoakReport{}
	fail := func(oracle, format string, args ...any) {
		rep.Failures = append(rep.Failures, fmt.Sprintf("oracle %s: %s", oracle, fmt.Sprintf(format, args...)))
	}

	addrs := make([]netem.Addr, cfg.Members)
	for i := range addrs {
		addrs[i] = netem.Addr(i + 1)
	}
	ctrlFab, ctl, err := NewLiveController(cfg.Seed, "", addrs, 0, 0)
	if err != nil {
		return nil, fmt.Errorf("livecluster: controller: %w", err)
	}
	defer ctrlFab.Stop()
	// Every node carries a small trace ring from boot: if an oracle fails,
	// the flight record dumps each ring's tail. Attached before Start, while
	// setup is still single-threaded.
	tracers := []*obs.Tracer{obs.NewTracer(soakTraceCap)}
	ctrlFab.Engine().SetTracer(tracers[0])
	soakStart := time.Now()
	ctrlFab.Start()

	faulty := netem.LinkProfile{
		Latency:     cfg.Latency,
		Jitter:      cfg.Jitter,
		LossRate:    cfg.Loss,
		DupRate:     cfg.DupRate,
		ReorderRate: cfg.ReorderRate,
		CorruptRate: cfg.CorruptRate,
		LossEveryN:  cfg.LossEveryN,
	}
	members := make([]*Member, cfg.Members)
	for i := range members {
		m, err := NewMember(MemberConfig{
			Addr:         addrs[i],
			Seed:         cfg.Seed + int64(i)*7919,
			ControllerEP: ctrlFab.AddrPort(),
			Profile:      faulty,
		})
		if err != nil {
			for _, prev := range members {
				if prev != nil {
					prev.Stop()
				}
			}
			return nil, fmt.Errorf("livecluster: member %d: %w", i, err)
		}
		members[i] = m
		tr := obs.NewTracer(soakTraceCap)
		m.Fabric.Engine().SetTracer(tr)
		tracers = append(tracers, tr)
		m.Start()
	}
	defer func() {
		for _, m := range members {
			m.Stop()
		}
	}()
	// Asymmetric leg: one direction of one link degrades beyond the base
	// profile; the reverse path stays at the base. Per-peer egress override,
	// so exactly member0 -> last is shaped.
	asymPeer := addrs[cfg.Members-1]
	if cfg.AsymLoss > 0 && cfg.Members >= 2 {
		ap := faulty
		ap.LossRate = cfg.AsymLoss
		members[0].Fabric.Node().SetPeerProfile(asymPeer, ap)
	}

	// Phase 1: bootstrap. Every member must hold a chain config and a full
	// group before the workload starts.
	if err := waitConfigured(members, 30*time.Second); err != nil {
		return nil, err
	}

	// Timeline sampler: one stream per node, every tick wrapped in that
	// node's Fabric.Call so registry reads serialize with its pump. The
	// sampler is the only goroutine flushing to cfg.Timeline, so rows from
	// different nodes interleave at line granularity only.
	var (
		streams    []*obs.Stream
		stopSample chan struct{}
		sampleDone chan struct{}
	)
	if cfg.Timeline != nil {
		ctrlReg := obs.NewRegistry()
		ctrlFab.RegisterMetrics(ctrlReg, "node=ctrl")
		ctrlReg.AddGaugeFunc("soak.members_alive", "node=ctrl",
			func() float64 { return float64(len(ctl.AliveMembers())) })
		streamOpts := func(node string) obs.StreamConfig {
			return obs.StreamConfig{
				Interval: cfg.SampleInterval, Windows: soakTimelineW,
				Node: node, Tail: soakTailRows,
			}
		}
		streams = append(streams, obs.NewStream(ctrlReg, cfg.Timeline, streamOpts("ctrl")))
		for i, m := range members {
			mreg := obs.NewRegistry()
			m.RegisterMetrics(mreg, fmt.Sprintf("node=%d", i))
			streams = append(streams, obs.NewStream(mreg, cfg.Timeline, streamOpts(strconv.Itoa(i))))
		}
		stopSample, sampleDone = make(chan struct{}), make(chan struct{})
		go func() {
			defer close(sampleDone)
			ticker := time.NewTicker(cfg.SampleInterval)
			defer ticker.Stop()
			for {
				select {
				case <-stopSample:
					return
				case <-ticker.C:
					ts := time.Since(soakStart).Nanoseconds()
					ctrlFab.Call(func() { streams[0].Tick(ts) })
					for i, m := range members {
						s := streams[i+1]
						m.Fabric.Call(func() { s.Tick(ts) })
					}
				}
			}
		}()
	}

	// Phase 2: workload under faults. Ops are posted onto member pumps; all
	// tracking state is owned by the target pump until collection.
	tracks := make([]*memberTrack, cfg.Members)
	for i := range tracks {
		tracks[i] = &memberTrack{}
	}
	wrng := rand.New(rand.NewSource(cfg.Seed*6364136223846793005 + 1442695040888963407))
	postStrong := func(i int, key uint64, v uint64) {
		rep.StrongWrites++
		buf := make([]byte, 8)
		binary.BigEndian.PutUint64(buf, v)
		m, tr := members[i], tracks[i]
		sw := &soakWrite{key: key}
		m.Fabric.Post(func() {
			tr.writes = append(tr.writes, sw)
			m.Strong.Write(key, buf, func(ok bool) {
				sw.resolved, sw.committed = true, ok
			})
		})
	}
	postAdd := func(i int, key, d uint64) {
		rep.CounterAdds++
		m, tr := members[i], tracks[i]
		m.Fabric.Post(func() {
			tr.ctrAdded[key] += d
			m.Counter.Add(key, d)
		})
	}
	postLWW := func(i int, key uint64, val []byte) {
		rep.LWWWrites++
		m := members[i]
		m.Fabric.Post(func() { m.LWW.Write(key, val) })
	}
	start := time.Now()
	// Process-level fault: freeze one member a third of the way into the
	// workload, hold it for PauseFor (its heartbeats stop, peers' chain
	// traffic through it backlogs, driver ops lose their transmissions to
	// retry timers), then resume and replay the frozen backlog. The round
	// runs concurrently with the workload; phase 3 joins it before calming
	// the network so the replay burst happens under the faulty profile.
	pauseDone := make(chan struct{})
	if cfg.PauseFor > 0 {
		victim := members[cfg.Members-1]
		go func() {
			defer close(pauseDone)
			time.Sleep(cfg.Budget / 3)
			victim.Fabric.Post(func() { victim.Switch.Pause() })
			time.Sleep(cfg.PauseFor)
			victim.Fabric.Post(func() { victim.Switch.Resume() })
		}()
	} else {
		close(pauseDone)
	}
	stopped := func() bool {
		if cfg.Stop == nil {
			return false
		}
		select {
		case <-cfg.Stop:
			return true
		default:
			return false
		}
	}
	if len(cfg.Trace) > 0 {
		// Trace-driven: packets arrive in trace order at OpInterval pacing
		// and map deterministically onto ops; the trace loops until the
		// budget elapses.
		for ti := 0; time.Since(start) < cfg.Budget && !stopped(); ti = (ti + 1) % len(cfg.Trace) {
			tp := &cfg.Trace[ti]
			fk, ok := tp.Pkt.Flow()
			if !ok {
				continue
			}
			h := flowHash(fk)
			i := int(h % uint64(cfg.Members))
			switch {
			case tp.FlowStart: // connection state insert
				postStrong(i, h%uint64(cfg.Keys), h)
			case tp.FlowEnd: // last-seen state
				postLWW(i, h%LWWKeys, []byte(fmt.Sprintf("%08x", uint32(h))))
			default: // per-flow packet counting (the DDoS use case)
				postAdd(i, h%CounterKeys, 1)
			}
			time.Sleep(cfg.OpInterval)
		}
	} else {
		for time.Since(start) < cfg.Budget && !stopped() {
			i := wrng.Intn(cfg.Members)
			switch r := wrng.Intn(100); {
			case r < 40:
				postStrong(i, uint64(wrng.Intn(cfg.Keys)), wrng.Uint64())
			case r < 75:
				postAdd(i, uint64(wrng.Intn(CounterKeys)), uint64(wrng.Intn(5)+1))
			default:
				postLWW(i, uint64(wrng.Intn(LWWKeys)), []byte(fmt.Sprintf("%08x", wrng.Uint32())))
			}
			time.Sleep(cfg.OpInterval)
		}
	}

	// Phase 3: join the pause round (the victim must be resumed before the
	// quiesce can complete), then calm the network (shaping off, overrides
	// cleared) and quiesce: writer retries resolve and EWO synchronization
	// converges. Calm links are what make the convergence oracles
	// deterministic rather than probabilistic.
	<-pauseDone
	if cfg.PauseFor > 0 {
		victim := members[cfg.Members-1]
		victim.Fabric.Call(func() {
			if victim.Switch.Paused() {
				victim.Switch.Resume()
			}
		})
		rep.PauseRounds = 1
	}
	for _, m := range members {
		m.Fabric.Node().SetProfile(netem.LinkProfile{})
		m.Fabric.Node().SetRecvLoss(0)
	}
	if cfg.AsymLoss > 0 && cfg.Members >= 2 {
		members[0].Fabric.Node().ClearPeerProfile(asymPeer)
	}
	if err := waitQuiesced(members, 30*time.Second); err != nil {
		return nil, err
	}
	time.Sleep(250 * time.Millisecond) // a few calm sync rounds to converge

	// Phase 4: collect workload tracking and surviving state (one Call per
	// member serializes against its pump).
	var (
		committedKeys = map[uint64]bool{}
		ctrExpect     = make([]uint64, CounterKeys)
	)
	for i, m := range members {
		tr := tracks[i]
		m.Fabric.Call(func() {
			for _, w := range tr.writes {
				if w.resolved && w.committed {
					committedKeys[w.key] = true
					rep.Committed++
				}
			}
			for k, d := range tr.ctrAdded {
				ctrExpect[k] += d
			}
		})
	}
	keys := make([]uint64, 0, len(committedKeys))
	for k := range committedKeys {
		keys = append(keys, k)
	}

	type snapshot struct {
		strong map[uint64][]byte
		sums   [CounterKeys]uint64
		ctrDig map[uint64]string
		lwwDig map[uint64]string
	}
	snaps := make([]snapshot, cfg.Members)
	for i, m := range members {
		snap := &snaps[i]
		m.Fabric.Call(func() {
			snap.strong = make(map[uint64][]byte, len(keys))
			for _, k := range keys {
				if v, ok := m.Strong.Node().Get(k); ok {
					snap.strong[k] = append([]byte(nil), v...)
				}
			}
			for k := range snap.sums {
				snap.sums[k] = m.Counter.Sum(uint64(k))
			}
			snap.ctrDig = m.Counter.Node().StateDigest()
			snap.lwwDig = m.LWW.Node().StateDigest()
		})
	}

	// Phase 5: oracles over the snapshots.
	chainViews := make([]explore.ChainView, cfg.Members)
	ctrViews := make([]explore.EWOView, cfg.Members)
	lwwViews := make([]explore.EWOView, cfg.Members)
	for i := range snaps {
		snap := &snaps[i]
		chainViews[i] = explore.ChainView{
			Name: fmt.Sprintf("member %d", i),
			Get: func(key uint64) ([]byte, bool) {
				v, ok := snap.strong[key]
				return v, ok
			},
		}
		ctrViews[i] = explore.EWOView{
			Name:   fmt.Sprintf("member %d", i),
			Sum:    func(key uint64) uint64 { return snap.sums[key] },
			Digest: func() map[uint64]string { return snap.ctrDig },
		}
		lwwViews[i] = explore.EWOView{
			Name:   fmt.Sprintf("member %d", i),
			Digest: func() map[uint64]string { return snap.lwwDig },
		}
	}
	for _, f := range explore.OracleDurability(keys, chainViews) {
		fail("durability", "%s", f)
	}
	for _, f := range explore.OracleCounterTotals(ctrExpect, ctrViews) {
		fail("counter", "%s", f)
	}
	for _, f := range explore.OracleConvergence(ctrViews) {
		fail("counter", "%s", f)
	}
	for _, f := range explore.OracleConvergence(lwwViews) {
		fail("lww", "%s", f)
	}

	// Pump-efficiency oracle: every pump round is provoked by a wake (a post,
	// an inbound datagram, a decoded batch) or an engine timer deadline, so
	// rounds are bounded by rx+posts plus the fabric's timer rate. A spinning
	// pump (the old 5ms MaxIdle default burned 200 idle rounds/s; a busy-loop
	// regression burns far more) blows through the residual budget. The
	// controller gets a tight residual (its only timers are the 20ms scan and
	// 100ms resend, ~60 rounds/s); members get a loose one (5ms EWO sync
	// timers × 2 registers plus write retries).
	wall := time.Since(soakStart)
	checkPump := func(name string, fs live.FabricStats, rx uint64, perSec float64) {
		budget := fs.Posts + rx + uint64(wall.Seconds()*perSec) + 100
		if fs.PumpRounds > budget {
			fail("pump", "%s: %d pump rounds > budget %d (posts=%d rx=%d wall=%v): pump is spinning",
				name, fs.PumpRounds, budget, fs.Posts, rx, wall)
		}
	}
	checkPump("ctrl", ctrlFab.FStats(), ctrlFab.Node().Stats().Received, 150)
	for i, m := range members {
		checkPump(fmt.Sprintf("member %d", i), m.Fabric.FStats(),
			m.Fabric.Node().Stats().Received, 2000)
	}

	// Wind down telemetry: stop the sampler, flush the streams, then stop
	// every pump (Stop is idempotent; the deferred Stops become no-ops).
	// With all pumps parked, registries and tracer rings are free to read
	// from this goroutine.
	if stopSample != nil {
		close(stopSample)
		<-sampleDone
	}
	var timelineTail []string
	for _, s := range streams {
		s.Close()
		rep.TimelineRows += s.Rows()
		timelineTail = append(timelineTail, s.Tail()...)
	}
	ctrlFab.Stop()
	for _, m := range members {
		m.Stop()
	}
	rep.RxDecodeErr = ctrlFab.Node().Stats().DecodeErr
	for _, m := range members {
		s := m.Fabric.Node().Stats()
		rep.TxCorrupted += s.TxCorrupted
		rep.RxDecodeErr += s.DecodeErr
	}

	final := obs.NewRegistry()
	ctrlFab.RegisterMetrics(final, "node=ctrl")
	for i, m := range members {
		m.RegisterMetrics(final, fmt.Sprintf("node=%d", i))
	}
	var mb strings.Builder
	final.Snapshot().WriteText(&mb)
	rep.Metrics = mb.String()

	if rep.Failed() {
		fr := obs.NewFlightRecord(soakLastN, final.Snapshot(), timelineTail, tracers...)
		rep.FlightRecord = fr.String()
	}
	return rep, nil
}

// waitConfigured polls until every member holds the initial chain + group
// configuration (epoch >= 1, full group).
func waitConfigured(members []*Member, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ready := 0
		for _, m := range members {
			var ok bool
			m.Fabric.Call(func() {
				ok = m.Strong.Node().Chain().Epoch >= 1 &&
					len(m.Counter.Node().Group()) == len(members)
			})
			if ok {
				ready++
			}
		}
		if ready == len(members) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("livecluster: bootstrap timeout: %d/%d members configured", ready, len(members))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitQuiesced polls until no member has outstanding chain writes.
func waitQuiesced(members []*Member, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		pending := 0
		for _, m := range members {
			var n int
			m.Fabric.Call(func() { n = m.Strong.Node().OutstandingWrites() })
			pending += n
		}
		if pending == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("livecluster: quiesce timeout: %d writes outstanding", pending)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
