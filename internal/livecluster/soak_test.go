package livecluster

import (
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"swishmem/internal/workload"
)

var (
	soakBudget = flag.Duration("soak.budget", 800*time.Millisecond,
		"wall-clock workload budget for the live soak (CI uses a longer one)")
	soakLoss = flag.Float64("soak.loss", 0.05, "injected outbound loss rate")
	soakOut  = flag.String("soak.out", "", "write the metrics snapshot to this file")
)

// TestSoak boots a 3-member loopback cluster plus controller, drives a
// mixed workload under injected loss for the budget, then runs the explore
// durability/counter-total/convergence oracles over the surviving state.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("live soak needs wall-clock time")
	}
	rep, err := Soak(SoakConfig{
		Seed:   42,
		Budget: *soakBudget,
		Loss:   *soakLoss,
	})
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	t.Logf("soak: strongw=%d committed=%d ctr=%d lww=%d",
		rep.StrongWrites, rep.Committed, rep.CounterAdds, rep.LWWWrites)
	if *soakOut != "" {
		if err := os.MkdirAll(filepath.Dir(*soakOut), 0o755); err == nil {
			_ = os.WriteFile(*soakOut, []byte(rep.Metrics), 0o644)
		}
	}
	if rep.StrongWrites == 0 || rep.CounterAdds == 0 || rep.LWWWrites == 0 {
		t.Fatalf("workload did not exercise all register classes: %+v", rep)
	}
	if rep.Committed == 0 {
		t.Fatalf("no strong write ever committed")
	}
	for _, f := range rep.Failures {
		t.Errorf("%s", f)
	}
	if t.Failed() {
		t.Logf("transport metrics:\n%s", rep.Metrics)
	}
}

// TestSoakTraceDriven runs a short soak where a trafficgen-style packet
// trace drives the workload: flow starts -> strong writes, flow ends ->
// LWW writes, everything else -> per-flow counter increments.
func TestSoakTraceDriven(t *testing.T) {
	if testing.Short() {
		t.Skip("live soak needs wall-clock time")
	}
	rng := rand.New(rand.NewSource(9))
	trace, err := workload.GenTrace(rng, workload.TraceConfig{
		Duration: 20 * time.Millisecond, FlowsPerSec: 5000})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Soak(SoakConfig{Seed: 9, Budget: 500 * time.Millisecond, Trace: trace})
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	t.Logf("trace soak: strongw=%d committed=%d ctr=%d lww=%d",
		rep.StrongWrites, rep.Committed, rep.CounterAdds, rep.LWWWrites)
	if rep.StrongWrites == 0 || rep.CounterAdds == 0 {
		t.Fatalf("trace did not exercise the register classes: %+v", rep)
	}
	for _, f := range rep.Failures {
		t.Errorf("%s", f)
	}
}
