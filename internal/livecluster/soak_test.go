package livecluster

import (
	"bytes"
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"swishmem/internal/workload"
)

var (
	soakBudget = flag.Duration("soak.budget", 800*time.Millisecond,
		"wall-clock workload budget for the live soak (CI uses a longer one)")
	soakLoss      = flag.Float64("soak.loss", 0.05, "injected outbound loss rate")
	soakOut       = flag.String("soak.out", "", "write the metrics snapshot to this file")
	soakTimeline  = flag.String("soak.timeline", "", "write the JSONL metrics timeline to this file")
	soakFlightRec = flag.String("soak.flightrec", "",
		"write the flight record to this file when an oracle fails")
	soakCorrupt = flag.Float64("soak.corrupt", 0.08,
		"payload bit-corruption rate for the chaos soak")
	soakNthLoss = flag.Int("soak.nthloss", 7,
		"deterministic every-Nth outbound loss for the chaos soak (0 = off)")
	soakPause = flag.Duration("soak.pause", 100*time.Millisecond,
		"member freeze duration for the chaos soak's pause/resume round (keep < 200ms failure timeout)")
)

// TestSoak boots a 3-member loopback cluster plus controller, drives a
// mixed workload under injected loss for the budget, then runs the explore
// durability/counter-total/convergence oracles over the surviving state.
// The run always streams a metrics timeline (to -soak.timeline when set);
// the emitted document is schema-validated below.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("live soak needs wall-clock time")
	}
	var timeline bytes.Buffer
	rep, err := Soak(SoakConfig{
		Seed:           42,
		Budget:         *soakBudget,
		Loss:           *soakLoss,
		Timeline:       &timeline,
		SampleInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	t.Logf("soak: strongw=%d committed=%d ctr=%d lww=%d timeline-rows=%d",
		rep.StrongWrites, rep.Committed, rep.CounterAdds, rep.LWWWrites, rep.TimelineRows)
	writeOut := func(path, body string) {
		if path == "" {
			return
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err == nil {
			_ = os.WriteFile(path, []byte(body), 0o644)
		}
	}
	writeOut(*soakOut, rep.Metrics)
	writeOut(*soakTimeline, timeline.String())
	if rep.Failed() {
		writeOut(*soakFlightRec, rep.FlightRecord)
	}
	if rep.StrongWrites == 0 || rep.CounterAdds == 0 || rep.LWWWrites == 0 {
		t.Fatalf("workload did not exercise all register classes: %+v", rep)
	}
	if rep.Committed == 0 {
		t.Fatalf("no strong write ever committed")
	}
	validateTimeline(t, timeline.String(), rep.TimelineRows)
	for _, f := range rep.Failures {
		t.Errorf("%s", f)
	}
	if t.Failed() {
		t.Logf("transport metrics:\n%s", rep.Metrics)
		if rep.FlightRecord != "" {
			t.Logf("flight record:\n%s", rep.FlightRecord)
		}
	}
}

// validateTimeline checks the soak's JSONL document: per-node schema
// headers, valid rows with per-node monotone timestamps, an availability
// series on the controller rows, and a write-latency quantile series on at
// least one member row.
func validateTimeline(t *testing.T, doc string, wantRows int) {
	t.Helper()
	lines := strings.Split(strings.TrimRight(doc, "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("soak emitted no timeline")
	}
	lastTS := map[string]int64{}
	headers, rows := 0, 0
	sawAlive, sawLatency := false, false
	for i, line := range lines {
		var probe struct {
			Timeline int    `json:"timeline"`
			TS       int64  `json:"ts"`
			Node     string `json:"node"`
			Samples  []struct {
				Name  string  `json:"name"`
				Value float64 `json:"value"`
				N     uint64  `json:"n"`
				P99   float64 `json:"p99"`
			} `json:"samples"`
		}
		if err := json.Unmarshal([]byte(line), &probe); err != nil {
			t.Fatalf("timeline line %d not JSON: %v\n%s", i+1, err, line)
		}
		if probe.Timeline != 0 {
			headers++
			continue
		}
		rows++
		if probe.Node == "" {
			t.Fatalf("timeline row %d missing node tag: %s", i+1, line)
		}
		if probe.TS <= lastTS[probe.Node] {
			t.Fatalf("timeline row %d: node %s timestamp %d not monotone", i+1, probe.Node, probe.TS)
		}
		lastTS[probe.Node] = probe.TS
		for _, sm := range probe.Samples {
			if sm.Name == "soak.members_alive" && probe.Node == "ctrl" && sm.Value > 0 {
				sawAlive = true
			}
			if sm.Name == "chain.write_latency_ns" && sm.N > 0 && sm.P99 > 0 {
				sawLatency = true
			}
		}
	}
	if rows != wantRows {
		t.Errorf("timeline has %d rows, report says %d", rows, wantRows)
	}
	if headers == 0 {
		t.Error("timeline has no schema header")
	}
	if !sawAlive {
		t.Error("no controller availability sample (soak.members_alive) in the timeline")
	}
	if !sawLatency {
		t.Error("no member write-latency quantile sample in the timeline")
	}
}

// TestSoakChaos is the extended-fault round of the live soak: on top of the
// base loss/jitter/dup/reorder profile it runs payload bit-corruption,
// deterministic every-Nth loss, an asymmetric (one-direction) degraded link
// leg, and a process pause/resume round that freezes a member mid-workload —
// the GC-pause trap for the heartbeat failure detector. The same oracles as
// TestSoak must pass with zero fault-specific assertion code; corrupted
// frames must surface as decode errors, never panics or wrong deliveries.
func TestSoakChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("live soak needs wall-clock time")
	}
	rep, err := Soak(SoakConfig{
		Seed:        1117,
		Budget:      *soakBudget,
		Loss:        *soakLoss,
		CorruptRate: *soakCorrupt,
		LossEveryN:  *soakNthLoss,
		AsymLoss:    3 * *soakLoss,
		PauseFor:    *soakPause,
	})
	if err != nil {
		t.Fatalf("chaos soak: %v", err)
	}
	t.Logf("chaos soak: strongw=%d committed=%d ctr=%d lww=%d pause-rounds=%d corrupted=%d decode-err=%d",
		rep.StrongWrites, rep.Committed, rep.CounterAdds, rep.LWWWrites,
		rep.PauseRounds, rep.TxCorrupted, rep.RxDecodeErr)
	if *soakFlightRec != "" && rep.Failed() {
		if err := os.MkdirAll(filepath.Dir(*soakFlightRec), 0o755); err == nil {
			_ = os.WriteFile(*soakFlightRec+".chaos", []byte(rep.FlightRecord), 0o644)
		}
	}
	if rep.StrongWrites == 0 || rep.CounterAdds == 0 || rep.LWWWrites == 0 {
		t.Fatalf("workload did not exercise all register classes: %+v", rep)
	}
	if rep.Committed == 0 {
		t.Fatal("no strong write ever committed under extended faults")
	}
	if *soakPause > 0 && rep.PauseRounds != 1 {
		t.Fatalf("pause/resume round did not complete (rounds=%d)", rep.PauseRounds)
	}
	// Corruption must actually have fired and been rejected cleanly at the
	// receivers: frames were flipped on egress and surfaced as decode
	// errors, not wrong deliveries (a panic would have failed the run).
	if *soakCorrupt > 0 {
		if rep.TxCorrupted == 0 {
			t.Error("corruption enabled but no frame was ever corrupted")
		}
		if rep.RxDecodeErr == 0 {
			t.Errorf("%d corrupted frames produced zero decode errors", rep.TxCorrupted)
		}
	}
	if !strings.Contains(rep.Metrics, "live.tx.corrupted") {
		t.Error("metrics snapshot has no corruption series")
	}
	for _, f := range rep.Failures {
		t.Errorf("%s", f)
	}
	if t.Failed() {
		t.Logf("transport metrics:\n%s", rep.Metrics)
		if rep.FlightRecord != "" {
			t.Logf("flight record:\n%s", rep.FlightRecord)
		}
	}
}

// TestSoakTraceDriven runs a short soak where a trafficgen-style packet
// trace drives the workload: flow starts -> strong writes, flow ends ->
// LWW writes, everything else -> per-flow counter increments.
func TestSoakTraceDriven(t *testing.T) {
	if testing.Short() {
		t.Skip("live soak needs wall-clock time")
	}
	rng := rand.New(rand.NewSource(9))
	trace, err := workload.GenTrace(rng, workload.TraceConfig{
		Duration: 20 * time.Millisecond, FlowsPerSec: 5000})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Soak(SoakConfig{Seed: 9, Budget: 500 * time.Millisecond, Trace: trace})
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	t.Logf("trace soak: strongw=%d committed=%d ctr=%d lww=%d",
		rep.StrongWrites, rep.Committed, rep.CounterAdds, rep.LWWWrites)
	if rep.StrongWrites == 0 || rep.CounterAdds == 0 {
		t.Fatalf("trace did not exercise the register classes: %+v", rep)
	}
	for _, f := range rep.Failures {
		t.Errorf("%s", f)
	}
}
