package netem

import (
	"testing"

	"swishmem/internal/sim"
)

// TestBurstCoalescesSameTick: a run of same-tick sends on one link schedules
// ONE engine event (the burst) yet delivers every message in send order at
// the same virtual time, and the processed-event counter still reports one
// logical dispatch per message (CreditEvents keeps accounting identical to
// the uncoalesced path).
func TestBurstCoalescesSameTick(t *testing.T) {
	eng, net, recs := setup(1, LinkProfile{Latency: 100}, 1, 2)
	const k = 8
	for i := 0; i < k; i++ {
		if !net.Send(1, 2, i, 10) {
			t.Fatalf("send %d refused", i)
		}
	}
	if got := eng.Pending(); got != 1 {
		t.Fatalf("queued %d events for a same-tick burst, want 1", got)
	}
	eng.Run()
	r := recs[2]
	if len(r.msgs) != k {
		t.Fatalf("delivered %d msgs, want %d", len(r.msgs), k)
	}
	for i := 0; i < k; i++ {
		if r.msgs[i] != i {
			t.Fatalf("msg %d = %v: burst reordered the link", i, r.msgs[i])
		}
		if r.times[i] != 100 {
			t.Fatalf("msg %d delivered at %v, want 100", i, r.times[i])
		}
	}
	if got := eng.Processed(); got != k {
		t.Fatalf("processed = %d, want %d (one logical event per message)", got, k)
	}
}

// TestBurstSplitsAcrossTicks: sends landing on different ticks (bandwidth
// serialization pushes each arrival later) must form separate bursts.
func TestBurstSplitsAcrossTicks(t *testing.T) {
	// 1 byte/ns: each 100-byte message serializes 100ns after the previous.
	eng, net, recs := setup(1, LinkProfile{Latency: 50, BandwidthBps: 8e9}, 1, 2)
	net.Send(1, 2, "a", 100)
	net.Send(1, 2, "b", 100)
	if got := eng.Pending(); got != 2 {
		t.Fatalf("queued %d events for two different-tick sends, want 2", got)
	}
	eng.Run()
	if len(recs[2].msgs) != 2 || recs[2].times[0] == recs[2].times[1] {
		t.Fatalf("deliveries = %+v", recs[2])
	}
}

// TestBurstRechecksReceiverPerMessage: a handler that partitions the
// receiver mid-burst must stop the remaining members of the same burst —
// member delivery conditions are re-evaluated per message, exactly as the
// uncoalesced path would at its later events.
func TestBurstRechecksReceiverPerMessage(t *testing.T) {
	eng := sim.NewEngine(1)
	net := New(eng, LinkProfile{Latency: 100})
	var got []any
	net.Attach(1, func(Addr, any, int) {})
	net.Attach(2, func(_ Addr, payload any, _ int) {
		got = append(got, payload)
		if len(got) == 2 {
			net.SetNodeUp(2, false)
		}
	})
	for i := 0; i < 5; i++ {
		net.Send(1, 2, i, 10)
	}
	eng.Run()
	if len(got) != 2 {
		t.Fatalf("delivered %d msgs after mid-burst failure, want 2", len(got))
	}
	if net.Totals().MsgsDropped != 3 {
		t.Fatalf("dropped = %d, want 3", net.Totals().MsgsDropped)
	}
}

// TestBurstCoalesceOffIdentical: the same workload with coalescing disabled
// delivers the same messages at the same times with the same processed-event
// count — the A/B contract at the netem layer.
func TestBurstCoalesceOffIdentical(t *testing.T) {
	run := func(coalesce bool) (*recorder, uint64, LinkStats) {
		eng, net, recs := setup(7, LinkProfile{Latency: 100}, 1, 2, 3)
		net.SetCoalesce(coalesce)
		for i := 0; i < 20; i++ {
			net.Send(1, 2, i, 10)
			if i%3 == 0 {
				net.Send(3, 2, 100+i, 10)
			}
			if i%4 == 0 {
				net.Send(2, 3, 200+i, 10)
			}
		}
		eng.Run()
		return recs[2], eng.Processed(), net.Totals()
	}
	ron, pon, ton := run(true)
	roff, poff, toff := run(false)
	if len(ron.msgs) != len(roff.msgs) {
		t.Fatalf("coalesced delivered %d, uncoalesced %d", len(ron.msgs), len(roff.msgs))
	}
	for i := range ron.msgs {
		if ron.msgs[i] != roff.msgs[i] || ron.froms[i] != roff.froms[i] || ron.times[i] != roff.times[i] {
			t.Fatalf("delivery %d differs: on=(%v,%v,%v) off=(%v,%v,%v)", i,
				ron.msgs[i], ron.froms[i], ron.times[i], roff.msgs[i], roff.froms[i], roff.times[i])
		}
	}
	if pon != poff {
		t.Fatalf("processed: coalesced=%d uncoalesced=%d", pon, poff)
	}
	if ton != toff {
		t.Fatalf("totals: coalesced=%+v uncoalesced=%+v", ton, toff)
	}
}

// TestBurstSendAllocBudget: the coalesced same-tick send path allocates
// nothing once the pools are warm — joining an open burst is an append into
// a pooled items slice, and firing it recycles everything.
func TestBurstSendAllocBudget(t *testing.T) {
	eng := sim.NewEngine(1)
	net := New(eng, LinkProfile{Latency: 100})
	net.Attach(1, func(Addr, any, int) {})
	net.Attach(2, func(Addr, any, int) {})
	for i := 0; i < 64; i++ {
		net.Send(1, 2, "warm", 10)
	}
	eng.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 8; i++ {
			net.Send(1, 2, "hot", 10)
		}
		eng.Run()
	})
	if allocs != 0 {
		t.Fatalf("coalesced burst send+drain allocates %v per run, want 0", allocs)
	}
}
