package live

import (
	"sync"

	"swishmem/internal/netem"
	"swishmem/internal/wire"
)

// egressWorker is one send-side shard: it owns the serialization, batch
// packing, and socket writes for every destination that hashes to it, the
// mirror of pumpShard on the receive side. The pump queues eRec hand-offs
// under the worker mutex (destination affinity keeps per-peer frame order);
// the worker drains, marshals, and writes — the transport Node is
// internally locked, so concurrent workers interleave safely at datagram
// granularity — then parks the pooled messages it is done with on its done
// list for the pump to release (message free lists are pump-owned, so
// workers never Release themselves).
type egressWorker struct {
	f    *Fabric
	wake chan struct{}

	mu    sync.Mutex
	queue []eRec     // pump → worker hand-offs
	done  []wire.Msg // worker → pump finished pooled messages

	// Worker-local state (no locking): per-destination batch builders and
	// the destinations opened since the last flush, plus reusable scratch.
	batches map[netem.Addr]*wire.BatchBuilder
	dirty   []netem.Addr
	local   []eRec
	rel     []wire.Msg
}

// egressDoneWake is the done-list size past which a worker wakes the pump
// for collection; below it, collection piggybacks on the next natural pump
// round (so an idle-ish fabric is not forced into extra rounds, which the
// soak's pump-efficiency oracle would flag).
const egressDoneWake = 256

func newEgressWorker(f *Fabric) *egressWorker {
	return &egressWorker{
		f:       f,
		wake:    make(chan struct{}, 1),
		batches: make(map[netem.Addr]*wire.BatchBuilder),
	}
}

// loop drains hand-offs until the fabric stops; the final pump's
// flushEgress runs before egStop closes, so everything queued is written
// before exit.
func (w *egressWorker) loop() {
	defer w.f.egWG.Done()
	for {
		stopping := false
		select {
		case <-w.f.egStop:
			stopping = true
		case <-w.wake:
		}
		w.drain()
		if stopping {
			return
		}
	}
}

// drain processes every queued record, closing out open batches whenever
// the queue runs dry — the worker-side analogue of the pump's per-round
// flushEgress, so coalescing never delays a frame past the hand-off burst
// that produced it.
func (w *egressWorker) drain() {
	for {
		w.mu.Lock()
		w.local, w.queue = w.queue, w.local[:0]
		w.mu.Unlock()
		if len(w.local) == 0 {
			return
		}
		for i := range w.local {
			w.sendOne(w.local[i].to, w.local[i].msg)
			if _, ok := w.local[i].msg.(netem.Releasable); ok {
				w.rel = append(w.rel, w.local[i].msg)
			}
			w.local[i] = eRec{}
		}
		w.flushBatches()
		if len(w.rel) == 0 {
			continue
		}
		w.mu.Lock()
		w.done = append(w.done, w.rel...)
		n := len(w.done)
		w.mu.Unlock()
		for i := range w.rel {
			w.rel[i] = nil
		}
		w.rel = w.rel[:0]
		if n >= egressDoneWake {
			w.f.signal()
		}
	}
}

// sendOne writes or batches one message, mirroring the pump's inline
// egress exactly (same coalesce-limit formula, same counters).
func (w *egressWorker) sendOne(to netem.Addr, msg wire.Msg) {
	if w.f.cfg.Coalesce {
		bb := w.batches[to]
		if bb == nil {
			bb = &wire.BatchBuilder{}
			bb.Reset()
			w.batches[to] = bb
		}
		if bb.Count() > 0 && bb.Len()+2+msg.Size() > w.f.cfg.CoalesceLimit {
			w.f.flushBatch(to, bb)
		}
		if bb.Count() == 0 {
			w.dirty = append(w.dirty, to)
		}
		bb.Add(msg)
		w.f.cnt.egressMsgs.Add(1)
	} else if err := w.f.node.Send(to, msg); err != nil {
		w.f.cnt.egressErrs.Add(1)
	} else {
		w.f.cnt.egressMsgs.Add(1)
	}
}

// flushBatches closes out every batch opened since the last flush.
func (w *egressWorker) flushBatches() {
	for _, to := range w.dirty {
		if bb := w.batches[to]; bb.Count() > 0 {
			w.f.flushBatch(to, bb)
		}
	}
	w.dirty = w.dirty[:0]
}
