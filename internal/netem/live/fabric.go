package live

import (
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"swishmem/internal/netem"
	"swishmem/internal/obs"
	"swishmem/internal/packet"
	"swishmem/internal/sim"
	"swishmem/internal/wire"
)

// Fabric runs one SwiShmem node (a switch, or the controller) over the live
// UDP transport while keeping the deterministic single-goroutine engine
// programming model every protocol layer was written against.
//
// The construction: each process owns a private sim.Engine plus a local
// netem.Network with a zero-cost default profile. Local components (the
// PISA switch, protocol nodes, timers) attach and run exactly as in
// simulation. For every remote address the fabric attaches a *relay*
// endpoint into the local network: a send from the switch to a remote
// address arrives at the relay as an ordinary netem delivery, and the relay
// marshals it onto the UDP socket. Inbound datagrams take the reverse trip:
// the socket's read loop (raw, allocation-free) parks the bytes in an
// inbox; the pump goroutine decodes them and injects them as local netem
// deliveries from the relay address. The pump drives the engine with
// RunUntil(wall-clock elapsed), so every virtual timer — heartbeats, write
// retries, EWO sync rounds — fires at its wall time and all protocol state
// stays single-goroutine (no locks were added to any protocol package).
//
// Fault injection lives in the transport node (Options.Profile and
// receive-side loss), not the local network, so shaping applies to real
// datagrams only.
type Fabric struct {
	cfg  FabricConfig
	addr netem.Addr
	eng  *sim.Engine
	nw   *netem.Network
	node *Node

	mu      sync.Mutex
	inbox   []inbound
	inFree  [][]byte
	posts   []func()
	started bool
	fstats  FabricStats

	wake chan struct{}
	stop chan struct{}
	done chan struct{}

	stopOnce  sync.Once
	startWall time.Time

	// Pump-goroutine state (no locking needed).
	relays map[netem.Addr]bool
	system func(from netem.Addr, msg wire.Msg) bool

	// Bootstrap state.
	bootCtrl   netem.Addr
	peersEpoch atomic.Uint32
}

// FabricConfig parameterizes a fabric.
type FabricConfig struct {
	// Addr is this node's SwiShmem address. Required.
	Addr netem.Addr
	// Seed seeds the engine and the transport's fault sampling.
	Seed int64
	// Node configures the underlying transport (bind address, shaping).
	Node Options
	// MaxIdle bounds the pump's sleep when the engine has nothing scheduled.
	// Default 5ms.
	MaxIdle time.Duration
}

// FabricStats counts fabric events (all mutated on the pump goroutine,
// snapshotted under the fabric lock).
type FabricStats struct {
	Injected       uint64 // datagrams decoded and injected into the engine
	SystemConsumed uint64 // messages eaten by the system handler (bootstrap)
	DecodeErr      uint64
	EgressMsgs     uint64 // local sends relayed onto the socket
	EgressErrs     uint64
	PacketDropped  uint64 // data packets (unsupported over live) discarded
	Posts          uint64
	PumpRounds     uint64
}

type inbound struct {
	from netem.Addr
	buf  []byte
}

// NewFabric builds a stopped fabric: engine, local network, and transport
// node are live, the pump is not. Attach local components (pisa.New against
// Engine()/Network(), protocol nodes, Bootstrap) and then call Start.
func NewFabric(cfg FabricConfig) (*Fabric, error) {
	if cfg.Addr == 0 {
		return nil, fmt.Errorf("live: fabric needs an address")
	}
	if cfg.MaxIdle <= 0 {
		cfg.MaxIdle = 5 * time.Millisecond
	}
	cfg.Node.Seed = cfg.Seed
	node, err := Listen(cfg.Addr, cfg.Node)
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine(cfg.Seed)
	f := &Fabric{
		cfg:    cfg,
		addr:   cfg.Addr,
		eng:    eng,
		nw:     netem.New(eng, netem.LinkProfile{}),
		node:   node,
		wake:   make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		relays: make(map[netem.Addr]bool),
	}
	node.SetRawHandler(f.onDatagram)
	return f, nil
}

// Engine returns the fabric's private engine. Before Start it may be used
// freely; after Start only from the pump goroutine (Post/Call).
func (f *Fabric) Engine() *sim.Engine { return f.eng }

// Network returns the fabric's local network (for pisa.New).
func (f *Fabric) Network() *netem.Network { return f.nw }

// Node returns the transport node (shaping control, stats).
func (f *Fabric) Node() *Node { return f.node }

// Addr returns the fabric's home address.
func (f *Fabric) Addr() netem.Addr { return f.addr }

// AddrPort returns the UDP endpoint other processes reach this fabric at.
func (f *Fabric) AddrPort() netip.AddrPort { return f.node.AddrPort() }

// SetSystemHandler installs a hook that sees every inbound message before
// injection; returning true consumes it. It runs on the pump goroutine. The
// controller uses it for Hello/Heartbeat handling without a switch model.
func (f *Fabric) SetSystemHandler(h func(from netem.Addr, msg wire.Msg) bool) {
	f.system = h
}

// AddRemote registers a remote node: transport peer plus local relay
// endpoint. Safe before Start; after Start it defers to the pump.
func (f *Fabric) AddRemote(addr netem.Addr, ap netip.AddrPort) {
	f.node.AddPeerAddrPort(addr, ap)
	f.onPump(func() { f.ensureRelay(addr) })
}

// ensureRelay attaches the egress relay endpoint for a remote address.
// Pump goroutine (or pre-start) only.
func (f *Fabric) ensureRelay(peer netem.Addr) {
	if peer == f.addr || f.relays[peer] {
		return
	}
	f.relays[peer] = true
	to := peer
	f.nw.Attach(to, func(_ netem.Addr, payload any, _ int) {
		f.egress(to, payload)
	})
}

// egress relays one local netem delivery onto the UDP socket. The delivery's
// payload reference passes to us; Send marshals synchronously, so pooled
// payloads release immediately after.
func (f *Fabric) egress(to netem.Addr, payload any) {
	msg, ok := payload.(wire.Msg)
	if !ok {
		if p, ok := payload.(*packet.Packet); ok {
			p.Recycle()
		}
		f.count(func(s *FabricStats) { s.PacketDropped++ })
		return
	}
	if err := f.node.Send(to, msg); err != nil {
		f.count(func(s *FabricStats) { s.EgressErrs++ })
	} else {
		f.count(func(s *FabricStats) { s.EgressMsgs++ })
	}
	if r, ok := payload.(netem.Releasable); ok {
		r.Release()
	}
}

// Bootstrap wires this fabric to the controller's discovery service: the
// controller endpoint is registered (peer + relay, so heartbeats flow
// immediately), and a Hello repeats every period until the controller's
// PeerList arrives. PeerLists are applied automatically: every listed peer
// is registered and relayed, after which chain and group traffic to any
// member flows. Call before Start.
func (f *Fabric) Bootstrap(ctrl netem.Addr, ctrlEP netip.AddrPort, period sim.Duration) {
	f.bootCtrl = ctrl
	f.node.AddPeerAddrPort(ctrl, ctrlEP)
	f.ensureRelay(ctrl)
	hello := &wire.Hello{From: uint16(f.addr), Gen: 1}
	f.eng.Every(period, func() {
		if f.peersEpoch.Load() == 0 {
			_ = f.node.Send(ctrl, hello)
		}
	})
}

// Bootstrapped reports whether a PeerList has been applied (thread-safe).
func (f *Fabric) Bootstrapped() bool { return f.peersEpoch.Load() > 0 }

// applyPeerList merges a controller directory broadcast. Pump goroutine.
func (f *Fabric) applyPeerList(pl *wire.PeerList) {
	if pl.Epoch < f.peersEpoch.Load() {
		return
	}
	f.peersEpoch.Store(pl.Epoch)
	for i := range pl.Peers {
		e := &pl.Peers[i]
		if netem.Addr(e.Addr) == f.addr {
			continue
		}
		ap := netip.AddrPortFrom(netip.AddrFrom4(e.IP), e.Port)
		f.node.AddPeerAddrPort(netem.Addr(e.Addr), ap)
		f.ensureRelay(netem.Addr(e.Addr))
	}
}

// onDatagram is the transport raw handler: it runs on the socket read loop,
// learns unknown senders from the kernel-reported source, and parks a copy
// of the payload in the inbox for the pump. Buffers recycle through inFree,
// so a warm fabric receives without allocating.
func (f *Fabric) onDatagram(from netem.Addr, src netip.AddrPort, payload []byte) {
	f.node.AddPeerIfAbsent(from, src)
	f.mu.Lock()
	var buf []byte
	if n := len(f.inFree); n > 0 {
		buf = f.inFree[n-1]
		f.inFree[n-1] = nil
		f.inFree = f.inFree[:n-1]
	}
	f.inbox = append(f.inbox, inbound{from: from, buf: append(buf[:0], payload...)})
	f.mu.Unlock()
	f.signal()
}

func (f *Fabric) signal() {
	select {
	case f.wake <- struct{}{}:
	default:
	}
}

// Post schedules fn on the pump goroutine (the only place engine-side state
// may be touched after Start).
func (f *Fabric) Post(fn func()) {
	f.mu.Lock()
	f.posts = append(f.posts, fn)
	f.fstats.Posts++
	f.mu.Unlock()
	f.signal()
}

// Call runs fn on the pump goroutine and waits for it. Must not be called
// from the pump goroutine itself.
func (f *Fabric) Call(fn func()) {
	done := make(chan struct{})
	f.Post(func() {
		defer close(done)
		fn()
	})
	<-done
}

// onPump runs fn inline before Start (setup is single-threaded) and defers
// to Post afterwards.
func (f *Fabric) onPump(fn func()) {
	f.mu.Lock()
	started := f.started
	f.mu.Unlock()
	if !started {
		fn()
		return
	}
	f.Post(fn)
}

// Start launches the pump: from here on the engine advances on wall time.
func (f *Fabric) Start() {
	f.mu.Lock()
	if f.started {
		f.mu.Unlock()
		return
	}
	f.started = true
	f.startWall = time.Now()
	f.mu.Unlock()
	go f.loop()
}

// Stop halts the pump and closes the transport. Idempotent.
func (f *Fabric) Stop() {
	f.stopOnce.Do(func() {
		f.mu.Lock()
		started := f.started
		f.mu.Unlock()
		close(f.stop)
		if started {
			<-f.done
		}
		_ = f.node.Close()
	})
}

// loop is the pump: wake on inbound traffic, posts, or the next engine
// deadline; drain; advance virtual time to wall time; sleep until whichever
// comes first of the next timer and MaxIdle.
func (f *Fabric) loop() {
	defer close(f.done)
	timer := time.NewTimer(f.cfg.MaxIdle)
	defer timer.Stop()
	for {
		select {
		case <-f.stop:
			f.pump() // final drain so Call-ers are never stranded
			return
		case <-f.wake:
		case <-timer.C:
		}
		f.pump()
		d := f.cfg.MaxIdle
		if next, ok := f.eng.NextAt(); ok {
			until := time.Until(f.startWall.Add(time.Duration(next)))
			if until < 0 {
				until = 0
			}
			if until < d {
				d = until
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(d)
	}
}

// pump runs queued posts, injects inbound messages, and advances the engine
// to the current wall-clock time.
func (f *Fabric) pump() {
	f.mu.Lock()
	posts := f.posts
	f.posts = nil
	inbox := f.inbox
	f.inbox = nil
	f.fstats.PumpRounds++
	f.mu.Unlock()

	for _, fn := range posts {
		fn()
	}
	for i := range inbox {
		f.deliver(inbox[i].from, inbox[i].buf)
	}
	if len(inbox) > 0 {
		f.mu.Lock()
		for i := range inbox {
			f.inFree = append(f.inFree, inbox[i].buf[:0])
			inbox[i].buf = nil
		}
		f.mu.Unlock()
	}
	f.eng.RunUntil(sim.Time(time.Since(f.startWall)))
}

// deliver decodes one inbound payload and hands it to the system handler or
// injects it as a local netem delivery from the sender's relay address.
func (f *Fabric) deliver(from netem.Addr, payload []byte) {
	msg, err := wire.Unmarshal(payload)
	if err != nil {
		f.count(func(s *FabricStats) { s.DecodeErr++ })
		return
	}
	if pl, ok := msg.(*wire.PeerList); ok && f.bootCtrl != 0 && from == f.bootCtrl {
		f.applyPeerList(pl)
		f.count(func(s *FabricStats) { s.SystemConsumed++ })
		return
	}
	if f.system != nil && f.system(from, msg) {
		f.count(func(s *FabricStats) { s.SystemConsumed++ })
		return
	}
	f.ensureRelay(from)
	f.count(func(s *FabricStats) { s.Injected++ })
	f.nw.Send(from, f.addr, msg, msg.Size())
}

func (f *Fabric) count(fn func(*FabricStats)) {
	f.mu.Lock()
	fn(&f.fstats)
	f.mu.Unlock()
}

// FStats snapshots the fabric counters (thread-safe).
func (f *Fabric) FStats() FabricStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fstats
}

// RegisterMetrics exposes transport and fabric counters on a metrics
// registry under the given label (e.g. `node=3`).
func (f *Fabric) RegisterMetrics(reg *obs.Registry, labels string) {
	reg.AddCounterFunc("live.tx.msgs", labels, func() uint64 { return f.node.Stats().Sent })
	reg.AddCounterFunc("live.tx.bytes", labels, func() uint64 { return f.node.Stats().BytesSent })
	reg.AddCounterFunc("live.tx.dropped", labels, func() uint64 { return f.node.Stats().TxDropped })
	reg.AddCounterFunc("live.tx.dup", labels, func() uint64 { return f.node.Stats().TxDup })
	reg.AddCounterFunc("live.tx.delayed", labels, func() uint64 { return f.node.Stats().TxDelayed })
	reg.AddCounterFunc("live.rx.msgs", labels, func() uint64 { return f.node.Stats().Received })
	reg.AddCounterFunc("live.rx.bytes", labels, func() uint64 { return f.node.Stats().BytesReceived })
	reg.AddCounterFunc("live.rx.dropped", labels, func() uint64 { return f.node.Stats().Dropped })
	reg.AddCounterFunc("live.rx.decodeerr", labels, func() uint64 { return f.node.Stats().DecodeErr })
	reg.AddCounterFunc("live.part.dropped", labels, func() uint64 { return f.node.Stats().PartDropped })
	reg.AddCounterFunc("live.fabric.injected", labels, func() uint64 { return f.FStats().Injected })
	reg.AddCounterFunc("live.fabric.system", labels, func() uint64 { return f.FStats().SystemConsumed })
	reg.AddCounterFunc("live.fabric.egress", labels, func() uint64 { return f.FStats().EgressMsgs })
	reg.AddCounterFunc("live.fabric.egresserr", labels, func() uint64 { return f.FStats().EgressErrs })
	reg.AddCounterFunc("live.fabric.pktdropped", labels, func() uint64 { return f.FStats().PacketDropped })
	reg.AddCounterFunc("live.fabric.pumps", labels, func() uint64 { return f.FStats().PumpRounds })
	reg.AddGaugeFunc("live.fabric.peers", labels, func() float64 { return float64(len(f.node.Peers())) })
}
