package live

import (
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"swishmem/internal/netem"
	"swishmem/internal/obs"
	"swishmem/internal/packet"
	"swishmem/internal/sim"
	"swishmem/internal/wire"
)

// Fabric runs one SwiShmem node (a switch, or the controller) over the live
// UDP transport while keeping the deterministic single-goroutine engine
// programming model every protocol layer was written against.
//
// The construction: each process owns a private sim.Engine plus a local
// netem.Network with a zero-cost default profile. Local components (the
// PISA switch, protocol nodes, timers) attach and run exactly as in
// simulation. For every remote address the fabric attaches a *relay*
// endpoint into the local network: a send from the switch to a remote
// address arrives at the relay as an ordinary netem delivery, and the relay
// marshals it onto the UDP socket. Inbound datagrams take the reverse trip:
// the socket's read loop (raw, allocation-free) parks the bytes in an
// inbox; the pump goroutine decodes them and injects them as local netem
// deliveries from the relay address. The pump drives the engine with
// RunUntil(wall-clock elapsed), so every virtual timer — heartbeats, write
// retries, EWO sync rounds — fires at its wall time and all protocol state
// stays single-goroutine (no locks were added to any protocol package).
//
// Fault injection lives in the transport node (Options.Profile and
// receive-side loss), not the local network, so shaping applies to real
// datagrams only.
type Fabric struct {
	cfg  FabricConfig
	addr netem.Addr
	eng  *sim.Engine
	nw   *netem.Network
	node *Node

	mu      sync.Mutex
	inbox   []inbound
	inFree  [][]byte
	posts   []func()
	started bool

	// inboxSpare/postsSpare are the drained previous-round slices handed
	// back by the pump so the producer side appends into warm storage
	// instead of growing a fresh slice every round.
	inboxSpare []inbound
	postsSpare []func()

	// cnt holds the fabric counters as atomics: the pump, the decode
	// shards, and the egress workers all bump them lock-free, and FStats
	// snapshots without stalling anyone.
	cnt fabricCounters

	wake chan struct{}
	stop chan struct{}
	done chan struct{}

	stopOnce  sync.Once
	startWall time.Time

	// Pump-goroutine state (no locking needed).
	relays map[netem.Addr]bool
	system func(from netem.Addr, msg wire.Msg) bool

	// Egress coalescing state (pump goroutine only, inline egress mode):
	// one reusable batch builder per destination, plus the destinations
	// opened this round.
	batches map[netem.Addr]*wire.BatchBuilder
	dirty   []netem.Addr

	// Sharded egress state (EgressShards > 1): the pump queues send records
	// per worker (destination-affine, so per-peer frame order is preserved)
	// and hands them off in chunks; workers serialize, coalesce, and write
	// the socket, then park released pooled messages on their done lists
	// for the pump to collect.
	eworkers []*egressWorker
	epend    [][]eRec
	egDone   []wire.Msg // pump-side scratch for collecting done lists
	egStop   chan struct{}
	egWG     sync.WaitGroup

	// Sharded decode state (PumpShards > 1): the socket goroutine stamps
	// every datagram with a global arrival sequence and routes it by sender
	// to a shard inbox; workers decode in parallel; the pump merges decoded
	// messages back into exact arrival order (nextInj is the next sequence
	// it may inject, pend the per-shard already-decoded queues).
	shards  []*pumpShard
	rxSeq   uint64 // socket goroutine only
	nextInj uint64 // pump goroutine only
	pend    []pendQueue
	decStop chan struct{}
	decWG   sync.WaitGroup

	// View-set recycling. viewFree is the unsharded pump-owned pool;
	// retSets[i] collects shard i's sets as their last message is released
	// on the pump, flushed back to the shard's own pool (under its mutex)
	// once per round.
	viewFree []*wire.ViewSet
	retSets  [][]*wire.ViewSet
	setHooks []func(*wire.ViewSet)

	// Bootstrap state.
	bootCtrl   netem.Addr
	peersEpoch atomic.Uint32
}

// FabricConfig parameterizes a fabric.
type FabricConfig struct {
	// Addr is this node's SwiShmem address. Required.
	Addr netem.Addr
	// Seed seeds the engine and the transport's fault sampling.
	Seed int64
	// Node configures the underlying transport (bind address, shaping).
	Node Options
	// MaxIdle optionally caps the pump's sleep, waking it at least every
	// MaxIdle even with nothing to do. The default (0) imposes no cap: the
	// pump sleeps exactly until the next engine deadline, or indefinitely
	// when nothing is scheduled, relying on inbound traffic and posts to
	// wake it — an idle fabric burns no PumpRounds. (Earlier versions
	// defaulted to 5ms and used it as the idle sleep bound, which made an
	// idle fabric spin at 200 wakeups/s.)
	MaxIdle time.Duration
	// Coalesce packs messages relayed to one destination during a single
	// pump round into multi-update wire.Batch datagrams, flushed at the end
	// of the round or when a batch reaches CoalesceLimit bytes. An EWO sync
	// round's run of updates then costs one datagram instead of N. Off by
	// default (one datagram per message).
	Coalesce bool
	// CoalesceLimit caps a coalesced datagram's payload bytes. Default 1200
	// (under a typical 1500-byte MTU with headroom for headers).
	CoalesceLimit int
	// PumpShards spreads inbound datagram decoding across this many worker
	// goroutines, keyed by sender address, with the pump re-merging decoded
	// messages into exact socket-arrival order before injection — the keyed
	// merge discipline of the sharded simulator applied to the live path.
	// 0 or 1 decodes on the pump goroutine itself.
	PumpShards int
	// EgressShards moves per-destination serialization, batch packing, and
	// socket writes off the pump goroutine onto this many egress workers,
	// keyed by destination address (per-peer frame order is preserved
	// because one destination always maps to one worker) — the send-side
	// mirror of PumpShards. 0 or 1 sends inline on the pump goroutine.
	EgressShards int
}

// FabricStats is a snapshot of the fabric counters (see FStats). The
// underlying counters are atomics shared by the pump, the decode shards,
// and the egress workers.
type FabricStats struct {
	Injected       uint64 // messages decoded and injected into the engine
	SystemConsumed uint64 // messages eaten by the system handler (bootstrap)
	DecodeErr      uint64
	EgressMsgs     uint64 // local sends relayed onto the socket
	EgressBatches  uint64 // coalesced datagrams flushed (Coalesce mode only)
	EgressErrs     uint64
	PacketDropped  uint64 // data packets (unsupported over live) discarded
	Posts          uint64
	PumpRounds     uint64
}

// fabricCounters is the live, concurrency-safe form of FabricStats.
type fabricCounters struct {
	injected       atomic.Uint64
	systemConsumed atomic.Uint64
	decodeErr      atomic.Uint64
	egressMsgs     atomic.Uint64
	egressBatches  atomic.Uint64
	egressErrs     atomic.Uint64
	packetDropped  atomic.Uint64
	posts          atomic.Uint64
	pumpRounds     atomic.Uint64
}

// eRec is one queued egress send: the pump's hand-off unit to an egress
// worker. The netem delivery reference on msg travels with the record; the
// worker moves the message to its done list after the socket write and the
// pump releases it.
type eRec struct {
	to  netem.Addr
	msg wire.Msg
}

type inbound struct {
	from netem.Addr
	buf  []byte
	seq  uint64 // global arrival stamp (sharded pump only)
}

// pumpShard is one decode worker's mailbox pair: raw datagrams in, decoded
// messages out. Both sides are double-buffered swaps under the shard mutex.
type pumpShard struct {
	mu      sync.Mutex
	in      []inbound
	inFree  [][]byte
	out     []decoded
	setFree []*wire.ViewSet // recycled view sets, refilled by the pump
	wake    chan struct{}
}

// decoded is one datagram's decode result, still stamped with its arrival
// sequence. A coalesced datagram expands to several messages; a datagram
// whose decode failed outright keeps msgs nil (a tombstone the merge skips —
// without it the sequence stream would have a permanent gap and injection
// would stall).
type decoded struct {
	seq  uint64
	from netem.Addr
	msgs []wire.Msg
	set  *wire.ViewSet // owns msgs and their backing bytes; released after injection
	errs uint32        // decode errors (frame-level for batches)
}

// pendQueue is the pump-side FIFO of decoded-but-not-yet-injected datagrams
// from one shard; entries are seq-ascending because the shard preserves its
// own arrival order end to end.
type pendQueue struct {
	items []decoded
	head  int
}

// NewFabric builds a stopped fabric: engine, local network, and transport
// node are live, the pump is not. Attach local components (pisa.New against
// Engine()/Network(), protocol nodes, Bootstrap) and then call Start.
func NewFabric(cfg FabricConfig) (*Fabric, error) {
	if cfg.Addr == 0 {
		return nil, fmt.Errorf("live: fabric needs an address")
	}
	if cfg.Coalesce && cfg.CoalesceLimit <= 0 {
		cfg.CoalesceLimit = 1200
	}
	cfg.Node.Seed = cfg.Seed
	node, err := Listen(cfg.Addr, cfg.Node)
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine(cfg.Seed)
	f := &Fabric{
		cfg:    cfg,
		addr:   cfg.Addr,
		eng:    eng,
		nw:     netem.New(eng, netem.LinkProfile{}),
		node:   node,
		wake:   make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		relays: make(map[netem.Addr]bool),
	}
	if cfg.Coalesce {
		f.batches = make(map[netem.Addr]*wire.BatchBuilder)
	}
	if cfg.PumpShards > 1 {
		f.shards = make([]*pumpShard, cfg.PumpShards)
		f.pend = make([]pendQueue, cfg.PumpShards)
		f.retSets = make([][]*wire.ViewSet, cfg.PumpShards)
		f.setHooks = make([]func(*wire.ViewSet), cfg.PumpShards)
		f.decStop = make(chan struct{})
		for i := range f.shards {
			f.shards[i] = &pumpShard{wake: make(chan struct{}, 1)}
			i := i
			// Recycle hook: runs on the pump (the last Release of a set's
			// messages always happens there); the set returns to its shard's
			// pool at the end of the round.
			f.setHooks[i] = func(vs *wire.ViewSet) {
				f.retSets[i] = append(f.retSets[i], vs)
			}
		}
	}
	if cfg.EgressShards > 1 {
		f.eworkers = make([]*egressWorker, cfg.EgressShards)
		f.epend = make([][]eRec, cfg.EgressShards)
		f.egStop = make(chan struct{})
		for i := range f.eworkers {
			f.eworkers[i] = newEgressWorker(f)
		}
	}
	node.SetRawHandler(f.onDatagram)
	return f, nil
}

// Engine returns the fabric's private engine. Before Start it may be used
// freely; after Start only from the pump goroutine (Post/Call).
func (f *Fabric) Engine() *sim.Engine { return f.eng }

// Network returns the fabric's local network (for pisa.New).
func (f *Fabric) Network() *netem.Network { return f.nw }

// Node returns the transport node (shaping control, stats).
func (f *Fabric) Node() *Node { return f.node }

// Addr returns the fabric's home address.
func (f *Fabric) Addr() netem.Addr { return f.addr }

// AddrPort returns the UDP endpoint other processes reach this fabric at.
func (f *Fabric) AddrPort() netip.AddrPort { return f.node.AddrPort() }

// SetSystemHandler installs a hook that sees every inbound message before
// injection; returning true consumes it. It runs on the pump goroutine. The
// controller uses it for Hello/Heartbeat handling without a switch model.
func (f *Fabric) SetSystemHandler(h func(from netem.Addr, msg wire.Msg) bool) {
	f.system = h
}

// AddRemote registers a remote node: transport peer plus local relay
// endpoint. Safe before Start; after Start it defers to the pump.
func (f *Fabric) AddRemote(addr netem.Addr, ap netip.AddrPort) {
	f.node.AddPeerAddrPort(addr, ap)
	f.onPump(func() { f.ensureRelay(addr) })
}

// ensureRelay attaches the egress relay endpoint for a remote address.
// Pump goroutine (or pre-start) only.
func (f *Fabric) ensureRelay(peer netem.Addr) {
	if peer == f.addr || f.relays[peer] {
		return
	}
	f.relays[peer] = true
	to := peer
	f.nw.Attach(to, func(_ netem.Addr, payload any, _ int) {
		f.egress(to, payload)
	})
}

// egressHandoff is the mid-round hand-off threshold: once a worker's
// pending queue reaches this many records the pump pushes them over so
// serialization overlaps with the rest of the engine round.
const egressHandoff = 64

// egress relays one local netem delivery onto the UDP socket. The
// delivery's payload reference passes to us. Inline (unsharded): both Send
// and the batch builder marshal synchronously, so pooled payloads release
// immediately after; in Coalesce mode the message is framed into the
// destination's open batch, and the pump flushes open batches at the end of
// every round (flushEgress), so coalescing never delays a message past the
// round that produced it. With EgressShards the record (and the payload
// reference) is queued to the destination's worker instead; the worker
// marshals and writes off the pump goroutine, then hands the message back
// through its done list for release.
func (f *Fabric) egress(to netem.Addr, payload any) {
	msg, ok := payload.(wire.Msg)
	if !ok {
		if p, ok := payload.(*packet.Packet); ok {
			p.Recycle()
		}
		f.cnt.packetDropped.Add(1)
		return
	}
	if f.eworkers != nil {
		i := int(to) % len(f.eworkers)
		f.epend[i] = append(f.epend[i], eRec{to: to, msg: msg})
		if len(f.epend[i]) >= egressHandoff {
			f.handoffEgress(i)
		}
		return
	}
	if f.cfg.Coalesce {
		bb := f.batches[to]
		if bb == nil {
			bb = &wire.BatchBuilder{}
			bb.Reset()
			f.batches[to] = bb
		}
		if bb.Count() > 0 && bb.Len()+2+msg.Size() > f.cfg.CoalesceLimit {
			f.flushBatch(to, bb)
		}
		if bb.Count() == 0 {
			f.dirty = append(f.dirty, to)
		}
		bb.Add(msg)
		f.cnt.egressMsgs.Add(1)
	} else if err := f.node.Send(to, msg); err != nil {
		f.cnt.egressErrs.Add(1)
	} else {
		f.cnt.egressMsgs.Add(1)
	}
	if r, ok := payload.(netem.Releasable); ok {
		r.Release()
	}
}

// handoffEgress pushes one worker's pending records into its queue and
// wakes it. Pump goroutine only.
func (f *Fabric) handoffEgress(i int) {
	w := f.eworkers[i]
	pend := f.epend[i]
	w.mu.Lock()
	w.queue = append(w.queue, pend...)
	w.mu.Unlock()
	for j := range pend {
		pend[j] = eRec{}
	}
	f.epend[i] = pend[:0]
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// flushBatch sends one destination's open batch and resets the builder.
// Callers serialize per builder (the pump inline, or one egress worker).
func (f *Fabric) flushBatch(to netem.Addr, bb *wire.BatchBuilder) {
	if err := f.node.SendEncoded(to, bb.Bytes()); err != nil {
		f.cnt.egressErrs.Add(1)
	} else {
		f.cnt.egressBatches.Add(1)
	}
	bb.Reset()
}

// flushEgress closes out the round's egress: inline mode flushes every batch
// opened during this pump round; sharded mode hands every still-pending
// record to its worker (workers flush their own batches when their queues
// drain).
func (f *Fabric) flushEgress() {
	if f.eworkers != nil {
		for i := range f.eworkers {
			if len(f.epend[i]) > 0 {
				f.handoffEgress(i)
			}
		}
		return
	}
	if len(f.dirty) == 0 {
		return
	}
	for _, to := range f.dirty {
		if bb := f.batches[to]; bb.Count() > 0 {
			f.flushBatch(to, bb)
		}
	}
	f.dirty = f.dirty[:0]
}

// collectEgressDone releases the pooled messages the egress workers have
// finished with since the last round. Pump goroutine only: the messages'
// free lists (view sets, sender pools) are pump-owned.
func (f *Fabric) collectEgressDone() {
	for _, w := range f.eworkers {
		w.mu.Lock()
		if len(w.done) == 0 {
			w.mu.Unlock()
			continue
		}
		f.egDone = append(f.egDone[:0], w.done...)
		for i := range w.done {
			w.done[i] = nil
		}
		w.done = w.done[:0]
		w.mu.Unlock()
		for i, m := range f.egDone {
			if r, ok := m.(netem.Releasable); ok {
				r.Release()
			}
			f.egDone[i] = nil
		}
	}
}

// Bootstrap wires this fabric to the controller's discovery service: the
// controller endpoint is registered (peer + relay, so heartbeats flow
// immediately), and a Hello repeats every period until the controller's
// PeerList arrives. PeerLists are applied automatically: every listed peer
// is registered and relayed, after which chain and group traffic to any
// member flows. Call before Start.
func (f *Fabric) Bootstrap(ctrl netem.Addr, ctrlEP netip.AddrPort, period sim.Duration) {
	f.bootCtrl = ctrl
	f.node.AddPeerAddrPort(ctrl, ctrlEP)
	f.ensureRelay(ctrl)
	hello := &wire.Hello{From: uint16(f.addr), Gen: 1}
	f.eng.Every(period, func() {
		if f.peersEpoch.Load() == 0 {
			_ = f.node.Send(ctrl, hello)
		}
	})
}

// Bootstrapped reports whether a PeerList has been applied (thread-safe).
func (f *Fabric) Bootstrapped() bool { return f.peersEpoch.Load() > 0 }

// applyPeerList merges a controller directory broadcast. Pump goroutine.
func (f *Fabric) applyPeerList(pl *wire.PeerList) {
	if pl.Epoch < f.peersEpoch.Load() {
		return
	}
	f.peersEpoch.Store(pl.Epoch)
	for i := range pl.Peers {
		e := &pl.Peers[i]
		if netem.Addr(e.Addr) == f.addr {
			continue
		}
		ap := netip.AddrPortFrom(netip.AddrFrom4(e.IP), e.Port)
		f.node.AddPeerAddrPort(netem.Addr(e.Addr), ap)
		f.ensureRelay(netem.Addr(e.Addr))
	}
}

// onDatagram is the transport raw handler: it runs on the socket read loop,
// learns unknown senders from the kernel-reported source, and parks a copy
// of the payload in the inbox for the pump — or, with PumpShards, stamps it
// with the global arrival sequence and routes it to its sender's decode
// shard. Buffers recycle through the inbox free lists, so a warm fabric
// receives without allocating.
func (f *Fabric) onDatagram(from netem.Addr, src netip.AddrPort, payload []byte) {
	f.node.AddPeerIfAbsent(from, src)
	if f.shards != nil {
		s := f.shards[int(from)%len(f.shards)]
		seq := f.rxSeq
		f.rxSeq++
		s.mu.Lock()
		var buf []byte
		if n := len(s.inFree); n > 0 {
			buf = s.inFree[n-1]
			s.inFree[n-1] = nil
			s.inFree = s.inFree[:n-1]
		}
		s.in = append(s.in, inbound{from: from, buf: append(buf[:0], payload...), seq: seq})
		s.mu.Unlock()
		select {
		case s.wake <- struct{}{}:
		default:
		}
		return
	}
	f.mu.Lock()
	var buf []byte
	if n := len(f.inFree); n > 0 {
		buf = f.inFree[n-1]
		f.inFree[n-1] = nil
		f.inFree = f.inFree[:n-1]
	}
	f.inbox = append(f.inbox, inbound{from: from, buf: append(buf[:0], payload...)})
	f.mu.Unlock()
	f.signal()
}

// decodeLoop is one shard's worker: drain raw datagrams, decode them off
// the pump goroutine into pooled view sets, publish the results, wake the
// pump. A worker touches a set only between popping it from the shard's
// setFree pool and publishing the decoded result; from then on the set
// lives on the pump, which recycles it back through the pool once every
// view message has been released.
func (f *Fabric) decodeLoop(s *pumpShard, hook func(*wire.ViewSet)) {
	defer f.decWG.Done()
	var batch []inbound
	var sets []*wire.ViewSet
	var out []decoded
	for {
		stopping := false
		select {
		case <-f.decStop:
			stopping = true
		case <-s.wake:
		}
		for {
			s.mu.Lock()
			batch, s.in = s.in, batch[:0]
			for len(sets) < len(batch) && len(s.setFree) > 0 {
				n := len(s.setFree)
				sets = append(sets, s.setFree[n-1])
				s.setFree[n-1] = nil
				s.setFree = s.setFree[:n-1]
			}
			s.mu.Unlock()
			if len(batch) == 0 {
				break
			}
			out = out[:0]
			for i := range batch {
				var vs *wire.ViewSet
				if n := len(sets); n > 0 {
					vs = sets[n-1]
					sets[n-1] = nil
					sets = sets[:n-1]
				} else {
					vs = wire.NewViewSet(hook)
				}
				d := decoded{seq: batch[i].seq, from: batch[i].from, set: vs}
				d.msgs, d.errs = vs.Decode(batch[i].buf)
				out = append(out, d)
			}
			s.mu.Lock()
			s.out = append(s.out, out...)
			for i := range batch {
				s.inFree = append(s.inFree, batch[i].buf[:0])
				batch[i].buf = nil
			}
			s.mu.Unlock()
			for i := range out {
				out[i] = decoded{}
			}
			f.signal()
		}
		if stopping {
			return
		}
	}
}

func (f *Fabric) signal() {
	select {
	case f.wake <- struct{}{}:
	default:
	}
}

// Post schedules fn on the pump goroutine (the only place engine-side state
// may be touched after Start).
func (f *Fabric) Post(fn func()) {
	f.mu.Lock()
	f.posts = append(f.posts, fn)
	f.mu.Unlock()
	f.cnt.posts.Add(1)
	f.signal()
}

// Call runs fn on the pump goroutine and waits for it. Must not be called
// from the pump goroutine itself.
func (f *Fabric) Call(fn func()) {
	done := make(chan struct{})
	f.Post(func() {
		defer close(done)
		fn()
	})
	<-done
}

// onPump runs fn inline before Start (setup is single-threaded) and defers
// to Post afterwards.
func (f *Fabric) onPump(fn func()) {
	f.mu.Lock()
	started := f.started
	f.mu.Unlock()
	if !started {
		fn()
		return
	}
	f.Post(fn)
}

// Start launches the pump (and the decode workers, when sharded): from here
// on the engine advances on wall time.
func (f *Fabric) Start() {
	f.mu.Lock()
	if f.started {
		f.mu.Unlock()
		return
	}
	f.started = true
	f.startWall = time.Now()
	f.mu.Unlock()
	for i, s := range f.shards {
		f.decWG.Add(1)
		go f.decodeLoop(s, f.setHooks[i])
	}
	for _, w := range f.eworkers {
		f.egWG.Add(1)
		go w.loop()
	}
	go f.loop()
}

// stopWorkers shuts the decode workers down and waits for them; each drains
// its inbox on the way out, so the final pump sees every decoded datagram.
func (f *Fabric) stopWorkers() {
	if f.shards == nil {
		return
	}
	close(f.decStop)
	f.decWG.Wait()
}

// stopEgress runs after the final pump handed every pending record over:
// the workers drain their queues, flush their batches, and exit; the pump
// then releases whatever they finished with. Pump goroutine only.
func (f *Fabric) stopEgress() {
	if f.eworkers == nil {
		return
	}
	close(f.egStop)
	for _, w := range f.eworkers {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
	f.egWG.Wait()
	f.collectEgressDone()
}

// Stop halts the pump and closes the transport. Idempotent.
func (f *Fabric) Stop() {
	f.stopOnce.Do(func() {
		f.mu.Lock()
		started := f.started
		f.mu.Unlock()
		close(f.stop)
		if started {
			<-f.done
		}
		_ = f.node.Close()
	})
}

// loop is the pump: drain and advance, then sleep exactly until the next
// engine deadline — or indefinitely when nothing is scheduled, since every
// external input (inbound datagrams, posts, decoded batches) signals wake.
// A fabric with an empty queue therefore costs zero wakeups, where the old
// MaxIdle-bounded sleep spun at the idle bound. MaxIdle, when set, caps the
// sleep as an opt-in periodic heartbeat.
func (f *Fabric) loop() {
	defer close(f.done)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		f.pump()
		var timerC <-chan time.Time
		if d, ok := f.sleepFor(); ok {
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(d)
			timerC = timer.C
		}
		select {
		case <-f.stop:
			f.stopWorkers()
			f.pump() // final drain so Call-ers are never stranded
			f.stopEgress()
			return
		case <-f.wake:
		case <-timerC: // nil (blocks forever) when nothing is scheduled
		}
	}
}

// sleepFor returns how long the pump may sleep: until the next engine
// deadline, capped by MaxIdle when configured. ok is false when there is no
// deadline to wake for (sleep until signaled).
func (f *Fabric) sleepFor() (time.Duration, bool) {
	var d time.Duration
	next, ok := f.eng.NextAt()
	if ok {
		if d = time.Until(f.startWall.Add(time.Duration(next))); d < 0 {
			d = 0
		}
	}
	if f.cfg.MaxIdle > 0 && (!ok || d > f.cfg.MaxIdle) {
		return f.cfg.MaxIdle, true
	}
	return d, ok
}

// pump runs queued posts, injects inbound messages (via the decode shards
// when sharded), advances the engine to the current wall-clock time, and
// flushes any egress batches the round opened.
func (f *Fabric) pump() {
	f.mu.Lock()
	posts := f.posts
	f.posts = f.postsSpare
	f.postsSpare = nil
	inbox := f.inbox
	f.inbox = f.inboxSpare
	f.inboxSpare = nil
	f.mu.Unlock()
	f.cnt.pumpRounds.Add(1)

	for _, fn := range posts {
		fn()
	}
	if f.eworkers != nil {
		f.collectEgressDone()
	}
	if f.shards != nil {
		f.drainShards()
	}
	for i := range inbox {
		f.deliver(inbox[i].from, inbox[i].buf)
	}
	f.eng.RunUntil(sim.Time(time.Since(f.startWall)))
	f.flushEgress()
	if f.shards != nil {
		f.flushRetSets()
	}

	// Hand the drained slices back as next round's spares (buffers return
	// to the inbox free list) so steady-state rounds reuse warm storage.
	for i := range posts {
		posts[i] = nil
	}
	f.mu.Lock()
	for i := range inbox {
		f.inFree = append(f.inFree, inbox[i].buf[:0])
		inbox[i] = inbound{}
	}
	f.inboxSpare = inbox[:0]
	f.postsSpare = posts[:0]
	f.mu.Unlock()
}

// drainShards collects decoded datagrams from every shard and injects them in
// exact socket-arrival order: only the datagram whose sequence equals nextInj
// may inject, so decode parallelism never reorders the stream. A gap (a
// datagram still being decoded) stalls injection; its worker's signal() will
// re-run the pump. Tombstones (msgs nil) consume their sequence so a corrupt
// datagram cannot stall everything behind it.
func (f *Fabric) drainShards() {
	for i, s := range f.shards {
		s.mu.Lock()
		if len(s.out) > 0 {
			f.pend[i].items = append(f.pend[i].items, s.out...)
			for j := range s.out {
				s.out[j] = decoded{}
			}
			s.out = s.out[:0]
		}
		s.mu.Unlock()
	}
	for {
		advanced := false
		for i := range f.pend {
			q := &f.pend[i]
			for q.head < len(q.items) && q.items[q.head].seq == f.nextInj {
				d := &q.items[q.head]
				if d.errs > 0 {
					f.cnt.decodeErr.Add(uint64(d.errs))
				}
				for _, m := range d.msgs {
					f.inject(d.from, m)
				}
				if d.set != nil {
					d.set.Release() // walk reference; messages hold their own
				}
				*d = decoded{}
				q.head++
				f.nextInj++
				advanced = true
			}
			if q.head == len(q.items) && q.head > 0 {
				q.items = q.items[:0]
				q.head = 0
			}
		}
		if !advanced {
			return
		}
	}
}

// deliver decodes one inbound payload through a pooled view set — expanding
// coalesced batches frame by frame — and injects the result. Bad frames
// inside a batch are skipped and counted; a framing-level error discards
// the datagram, matching the sharded decode path. Pump goroutine only.
func (f *Fabric) deliver(from netem.Addr, payload []byte) {
	vs := f.getViewSet()
	msgs, errs := vs.Decode(payload)
	if errs > 0 {
		f.cnt.decodeErr.Add(uint64(errs))
	}
	for _, m := range msgs {
		f.inject(from, m)
	}
	vs.Release() // walk reference; messages hold their own
}

// getViewSet pops a recycled set from the pump-owned pool or creates one
// wired to return there. Pump goroutine only (unsharded decode path).
func (f *Fabric) getViewSet() *wire.ViewSet {
	if n := len(f.viewFree); n > 0 {
		vs := f.viewFree[n-1]
		f.viewFree[n-1] = nil
		f.viewFree = f.viewFree[:n-1]
		return vs
	}
	return wire.NewViewSet(func(vs *wire.ViewSet) {
		f.viewFree = append(f.viewFree, vs)
	})
}

// inject hands one decoded message to the system handler or injects it as a
// local netem delivery from the sender's relay address, then drops the
// decode path's creator reference: from here the message is kept alive by
// the netem delivery (released by the receiving switch after its handler
// runs) or it is done. Pump goroutine only.
func (f *Fabric) inject(from netem.Addr, msg wire.Msg) {
	if pl, ok := msg.(*wire.PeerList); ok && f.bootCtrl != 0 && from == f.bootCtrl {
		f.applyPeerList(pl)
		f.cnt.systemConsumed.Add(1)
		return
	}
	if f.system != nil && f.system(from, msg) {
		f.cnt.systemConsumed.Add(1)
		f.releaseMsg(msg)
		return
	}
	f.ensureRelay(from)
	f.cnt.injected.Add(1)
	f.nw.Send(from, f.addr, msg, msg.Size())
	f.releaseMsg(msg)
}

func (f *Fabric) releaseMsg(msg wire.Msg) {
	if r, ok := msg.(netem.Releasable); ok {
		r.Release()
	}
}

// flushRetSets returns the view sets whose last message released this round
// to their shards' pools. Pump goroutine only.
func (f *Fabric) flushRetSets() {
	for i, ret := range f.retSets {
		if len(ret) == 0 {
			continue
		}
		s := f.shards[i]
		s.mu.Lock()
		s.setFree = append(s.setFree, ret...)
		s.mu.Unlock()
		for j := range ret {
			ret[j] = nil
		}
		f.retSets[i] = ret[:0]
	}
}

// FStats snapshots the fabric counters (thread-safe).
func (f *Fabric) FStats() FabricStats {
	return FabricStats{
		Injected:       f.cnt.injected.Load(),
		SystemConsumed: f.cnt.systemConsumed.Load(),
		DecodeErr:      f.cnt.decodeErr.Load(),
		EgressMsgs:     f.cnt.egressMsgs.Load(),
		EgressBatches:  f.cnt.egressBatches.Load(),
		EgressErrs:     f.cnt.egressErrs.Load(),
		PacketDropped:  f.cnt.packetDropped.Load(),
		Posts:          f.cnt.posts.Load(),
		PumpRounds:     f.cnt.pumpRounds.Load(),
	}
}

// RegisterMetrics exposes transport and fabric counters on a metrics
// registry under the given label (e.g. `node=3`).
func (f *Fabric) RegisterMetrics(reg *obs.Registry, labels string) {
	reg.AddCounterFunc("live.tx.msgs", labels, func() uint64 { return f.node.Stats().Sent })
	reg.AddCounterFunc("live.tx.bytes", labels, func() uint64 { return f.node.Stats().BytesSent })
	reg.AddCounterFunc("live.tx.dropped", labels, func() uint64 { return f.node.Stats().TxDropped })
	reg.AddCounterFunc("live.tx.dup", labels, func() uint64 { return f.node.Stats().TxDup })
	reg.AddCounterFunc("live.tx.delayed", labels, func() uint64 { return f.node.Stats().TxDelayed })
	reg.AddCounterFunc("live.tx.corrupted", labels, func() uint64 { return f.node.Stats().TxCorrupted })
	reg.AddCounterFunc("live.tx.blackholed", labels, func() uint64 { return f.node.Stats().TxBlackholed })
	reg.AddCounterFunc("live.tx.rejected", labels, func() uint64 { return f.node.Stats().TxRejected })
	reg.AddCounterFunc("live.rx.msgs", labels, func() uint64 { return f.node.Stats().Received })
	reg.AddCounterFunc("live.rx.bytes", labels, func() uint64 { return f.node.Stats().BytesReceived })
	reg.AddCounterFunc("live.rx.dropped", labels, func() uint64 { return f.node.Stats().Dropped })
	reg.AddCounterFunc("live.rx.decodeerr", labels, func() uint64 { return f.node.Stats().DecodeErr })
	reg.AddCounterFunc("live.part.dropped", labels, func() uint64 { return f.node.Stats().PartDropped })
	reg.AddCounterFunc("live.fabric.injected", labels, func() uint64 { return f.FStats().Injected })
	reg.AddCounterFunc("live.fabric.system", labels, func() uint64 { return f.FStats().SystemConsumed })
	reg.AddCounterFunc("live.fabric.egress", labels, func() uint64 { return f.FStats().EgressMsgs })
	reg.AddCounterFunc("live.fabric.egressbatches", labels, func() uint64 { return f.FStats().EgressBatches })
	reg.AddCounterFunc("live.fabric.egresserr", labels, func() uint64 { return f.FStats().EgressErrs })
	reg.AddCounterFunc("live.fabric.pktdropped", labels, func() uint64 { return f.FStats().PacketDropped })
	reg.AddCounterFunc("live.fabric.pumps", labels, func() uint64 { return f.FStats().PumpRounds })
	reg.AddGaugeFunc("live.fabric.peers", labels, func() float64 { return float64(len(f.node.Peers())) })
}
