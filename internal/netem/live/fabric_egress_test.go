package live

import (
	"sync"
	"testing"
	"time"

	"swishmem/internal/netem"
	"swishmem/internal/wire"
)

// TestFabricEgressShardedExchange is the sharded-egress mirror of
// TestFabricCoalescedExchange: a burst of same-round sends to two
// destinations (hashing to different workers) must arrive complete and in
// per-destination order, while still coalescing into batches.
func TestFabricEgressShardedExchange(t *testing.T) {
	// Addrs 1 and 4 hash to different workers under EgressShards=2.
	a := newTestFabric(t, 1)
	c := newTestFabric(t, 4)
	b, err := NewFabric(FabricConfig{Addr: 2, Seed: 2, Coalesce: true, EgressShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Stop)

	gotA := make(chan uint64, 64)
	gotC := make(chan uint64, 64)
	a.Network().Attach(a.Addr(), func(_ netem.Addr, payload any, _ int) {
		if hb, ok := payload.(*wire.Heartbeat); ok {
			gotA <- hb.Seq
		}
	})
	c.Network().Attach(c.Addr(), func(_ netem.Addr, payload any, _ int) {
		if hb, ok := payload.(*wire.Heartbeat); ok {
			gotC <- hb.Seq
		}
	})
	b.Network().Attach(b.Addr(), func(netem.Addr, any, int) {})
	a.AddRemote(b.Addr(), b.AddrPort())
	c.AddRemote(b.Addr(), b.AddrPort())
	b.AddRemote(a.Addr(), a.AddrPort())
	b.AddRemote(c.Addr(), c.AddrPort())
	a.Start()
	c.Start()
	b.Start()

	const burst = 40
	b.Post(func() {
		for i := uint64(0); i < burst; i++ {
			hb := &wire.Heartbeat{From: 2, Seq: i}
			to := a.Addr()
			if i%2 == 1 {
				to = c.Addr()
			}
			b.Network().Send(b.Addr(), to, hb, hb.Size())
		}
	})
	for i := uint64(0); i < burst; i++ {
		ch := gotA
		if i%2 == 1 {
			ch = gotC
		}
		select {
		case s := <-ch:
			if s != i {
				t.Fatalf("heartbeat %d arrived out of order (seq %d)", i, s)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("heartbeat %d never arrived", i)
		}
	}
	waitFor(t, func() bool { return b.FStats().EgressMsgs == burst })
	st := b.FStats()
	if st.EgressBatches == 0 {
		t.Fatal("sharded coalescing fabric sent no batches")
	}
	if st.EgressBatches >= st.EgressMsgs {
		t.Fatalf("EgressBatches=%d not below EgressMsgs=%d: nothing was coalesced",
			st.EgressBatches, st.EgressMsgs)
	}
}

// TestFabricEgressShardedUncoalesced checks the sharded workers' plain-send
// path: without Coalesce every message costs one datagram, order per
// destination still holds, and no batches are counted.
func TestFabricEgressShardedUncoalesced(t *testing.T) {
	a := newTestFabric(t, 1)
	b, err := NewFabric(FabricConfig{Addr: 2, Seed: 2, EgressShards: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Stop)

	got := make(chan uint64, 64)
	a.Network().Attach(a.Addr(), func(_ netem.Addr, payload any, _ int) {
		if hb, ok := payload.(*wire.Heartbeat); ok {
			got <- hb.Seq
		}
	})
	b.Network().Attach(b.Addr(), func(netem.Addr, any, int) {})
	a.AddRemote(b.Addr(), b.AddrPort())
	b.AddRemote(a.Addr(), a.AddrPort())
	a.Start()
	b.Start()

	const burst = 24
	b.Post(func() {
		for i := uint64(0); i < burst; i++ {
			hb := &wire.Heartbeat{From: 2, Seq: i}
			b.Network().Send(b.Addr(), a.Addr(), hb, hb.Size())
		}
	})
	for i := uint64(0); i < burst; i++ {
		select {
		case s := <-got:
			if s != i {
				t.Fatalf("heartbeat %d arrived out of order (seq %d)", i, s)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("heartbeat %d never arrived", i)
		}
	}
	waitFor(t, func() bool { return b.FStats().EgressMsgs == burst })
	if n := b.FStats().EgressBatches; n != 0 {
		t.Fatalf("uncoalesced fabric counted %d batches", n)
	}
}

// TestFabricStatsConcurrent hammers FStats and RegisterMetrics-style reads
// from many goroutines while the fabric moves traffic with sharded egress —
// the counters are atomics now, and the race detector holds it to that.
func TestFabricStatsConcurrent(t *testing.T) {
	a := newTestFabric(t, 1)
	b, err := NewFabric(FabricConfig{Addr: 2, Seed: 2, Coalesce: true, EgressShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Stop)
	a.Network().Attach(a.Addr(), func(netem.Addr, any, int) {})
	b.Network().Attach(b.Addr(), func(netem.Addr, any, int) {})
	a.AddRemote(b.Addr(), b.AddrPort())
	b.AddRemote(a.Addr(), a.AddrPort())
	a.Start()
	b.Start()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sink uint64
			for {
				select {
				case <-stop:
					_ = sink
					return
				default:
					st := b.FStats()
					sink += st.EgressMsgs + st.PumpRounds + st.Posts
				}
			}
		}()
	}
	for round := 0; round < 20; round++ {
		b.Post(func() {
			for i := uint64(0); i < 16; i++ {
				hb := &wire.Heartbeat{From: 2, Seq: i}
				b.Network().Send(b.Addr(), a.Addr(), hb, hb.Size())
			}
		})
		time.Sleep(2 * time.Millisecond)
	}
	waitFor(t, func() bool { return b.FStats().EgressMsgs == 20*16 })
	close(stop)
	wg.Wait()
}

// TestFabricDeliverZeroAllocs pins the zero-copy receive path: once warm, a
// full batch datagram flows through deliver — view decode, system-handler
// consume, reference drain, set recycle — with zero allocations.
func TestFabricDeliverZeroAllocs(t *testing.T) {
	f := newTestFabric(t, 7) // never started: deliver runs on this goroutine
	f.SetSystemHandler(func(netem.Addr, wire.Msg) bool { return true })
	payload := wire.Marshal(&wire.Batch{Msgs: []wire.Msg{
		&wire.Write{Reg: 1, Key: 9, Seq: 4, WriteID: 7, Writer: 2, Epoch: 1, Value: []byte("batched!")},
		&wire.WriteAck{Reg: 1, Key: 9, Seq: 4, WriteID: 7, Writer: 2, Epoch: 1},
		&wire.EWOUpdate{Reg: 2, From: 1, Sync: true, Entries: []wire.EWOEntry{
			{Key: 3, Value: []byte("zig")}, {Key: 4, Value: []byte("zag")}}},
		&wire.Heartbeat{From: 1, Seq: 1},
	}})
	cycle := func() { f.deliver(3, payload) }
	cycle() // warm the view-set pool
	if n := testing.AllocsPerRun(200, cycle); n != 0 {
		t.Fatalf("allocs per delivered datagram = %v, want 0", n)
	}
	if errs := f.FStats().DecodeErr; errs != 0 {
		t.Fatalf("decode errors = %d", errs)
	}
}

// TestFabricEgressWorkerZeroAllocs pins the send side: a warm egress worker
// coalescing pooled messages to a known peer writes datagrams without
// allocating per message.
func TestFabricEgressWorkerZeroAllocs(t *testing.T) {
	peer := newTestFabric(t, 1)
	f, err := NewFabric(FabricConfig{Addr: 2, Seed: 2, Coalesce: true, EgressShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Stop)
	f.AddRemote(peer.Addr(), peer.AddrPort())

	// Never started: drive one worker directly on this goroutine, the way
	// its loop would after a hand-off.
	w := f.eworkers[0]
	var free []*wire.Heartbeat
	freeFn := func(h *wire.Heartbeat) { free = append(free, h) }
	for i := 0; i < 4; i++ {
		h := &wire.Heartbeat{}
		h.EnablePool(freeFn)
		free = append(free, h)
	}
	cycle := func() {
		for i := 0; i < 4; i++ {
			h := free[len(free)-1]
			free = free[:len(free)-1]
			h.From, h.Seq = 2, uint64(i)
			h.Ref()
			w.sendOne(peer.Addr(), h)
			w.rel = append(w.rel, h)
		}
		w.flushBatches()
		// The pump releases via collectEgressDone; the free list here is
		// test-owned, so release inline (back through freeFn).
		for i, m := range w.rel {
			m.(*wire.Heartbeat).Release()
			w.rel[i] = nil
		}
		w.rel = w.rel[:0]
	}
	cycle() // warm builders and scratch
	if n := testing.AllocsPerRun(200, cycle); n != 0 {
		t.Fatalf("allocs per worker send cycle = %v, want 0", n)
	}
	if errs := f.FStats().EgressErrs; errs != 0 {
		t.Fatalf("egress errors = %d", errs)
	}
}
