package live

import (
	"net/netip"
	"testing"
	"time"

	"swishmem/internal/netem"
	"swishmem/internal/wire"
)

// TestFabricIdleNoSpin pins the MaxIdle fix: a started fabric with nothing
// scheduled and no traffic must park on its wake channel instead of polling.
// The old 5ms-default idle bound burned ~50 pump rounds in 250ms; the fixed
// pump runs once at Start and then sleeps until signaled.
func TestFabricIdleNoSpin(t *testing.T) {
	f := newTestFabric(t, 9)
	f.Start()
	time.Sleep(250 * time.Millisecond)
	if n := f.FStats().PumpRounds; n > 5 {
		t.Fatalf("idle fabric ran %d pump rounds in 250ms, want <= 5 (pump is spinning)", n)
	}
}

// TestFabricMaxIdleOptIn checks that a configured MaxIdle still provides the
// periodic wake cap: with MaxIdle=20ms an idle fabric must keep waking.
func TestFabricMaxIdleOptIn(t *testing.T) {
	f, err := NewFabric(FabricConfig{Addr: 11, Seed: 11, MaxIdle: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Stop)
	f.Start()
	time.Sleep(250 * time.Millisecond)
	if n := f.FStats().PumpRounds; n < 5 {
		t.Fatalf("MaxIdle=20ms fabric ran only %d pump rounds in 250ms, want >= 5", n)
	}
}

// TestFabricPumpShardsMergeOrder feeds datagrams from interleaved senders
// straight into the raw handler of a sharded fabric and checks the system
// handler observes them in exact arrival order — the keyed merge must undo
// whatever interleaving the parallel decode workers produce. The stream
// includes a coalesced batch (expands in frame order at its slot) and a
// corrupt datagram (tombstone: counted, never stalls the merge).
func TestFabricPumpShardsMergeOrder(t *testing.T) {
	f, err := NewFabric(FabricConfig{Addr: 1, Seed: 1, PumpShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Stop)

	type rx struct {
		from netem.Addr
		seq  uint64
	}
	got := make(chan rx, 256)
	f.SetSystemHandler(func(from netem.Addr, msg wire.Msg) bool {
		hb := msg.(*wire.Heartbeat)
		got <- rx{from: from, seq: hb.Seq}
		return true
	})
	f.Start()

	src := netip.MustParseAddrPort("127.0.0.1:19")
	var want []rx
	seq := uint64(0)
	send := func(from netem.Addr, payload []byte) {
		f.onDatagram(from, src, payload)
	}
	one := func(from netem.Addr) {
		send(from, wire.Marshal(&wire.Heartbeat{From: uint16(from), Seq: seq}))
		want = append(want, rx{from: from, seq: seq})
		seq++
	}

	senders := []netem.Addr{2, 3, 4, 5, 6}
	for i := 0; i < 40; i++ {
		one(senders[i%len(senders)])
	}
	// A corrupt datagram mid-stream: consumes its arrival slot, injects
	// nothing, and must not stall everything queued behind it.
	send(3, []byte{0xff, 0xee, 0xdd})
	// A coalesced batch from one sender: expands in frame order.
	b := &wire.Batch{}
	for k := 0; k < 3; k++ {
		b.Msgs = append(b.Msgs, &wire.Heartbeat{From: 4, Seq: seq})
		want = append(want, rx{from: 4, seq: seq})
		seq++
	}
	send(4, wire.Marshal(b))
	for i := 0; i < 40; i++ {
		one(senders[(i*3)%len(senders)])
	}

	for i, w := range want {
		select {
		case g := <-got:
			if g != w {
				t.Fatalf("message %d: got from=%d seq=%d, want from=%d seq=%d",
					i, g.from, g.seq, w.from, w.seq)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("message %d (of %d) never arrived", i, len(want))
		}
	}
	waitFor(t, func() bool { return f.FStats().DecodeErr == 1 })
	if n := f.FStats().SystemConsumed; n != uint64(len(want)) {
		t.Fatalf("SystemConsumed = %d, want %d", n, len(want))
	}
}

// TestFabricCoalescedExchange runs the two-fabric exchange with egress
// coalescing on: a burst of same-round sends must arrive complete and in
// order at the peer while costing fewer datagrams than messages.
func TestFabricCoalescedExchange(t *testing.T) {
	a := newTestFabric(t, 1)
	b, err := NewFabric(FabricConfig{Addr: 2, Seed: 2, Coalesce: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Stop)

	got := make(chan uint64, 64)
	a.Network().Attach(a.Addr(), func(_ netem.Addr, payload any, _ int) {
		if hb, ok := payload.(*wire.Heartbeat); ok {
			got <- hb.Seq
		}
	})
	b.Network().Attach(b.Addr(), func(netem.Addr, any, int) {})
	a.AddRemote(b.Addr(), b.AddrPort())
	b.AddRemote(a.Addr(), a.AddrPort())
	a.Start()
	b.Start()

	const burst = 20
	b.Post(func() {
		for i := uint64(0); i < burst; i++ {
			hb := &wire.Heartbeat{From: 2, Seq: i}
			b.Network().Send(b.Addr(), a.Addr(), hb, hb.Size())
		}
	})
	for i := uint64(0); i < burst; i++ {
		select {
		case s := <-got:
			if s != i {
				t.Fatalf("heartbeat %d arrived out of order (seq %d)", i, s)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("heartbeat %d never arrived", i)
		}
	}
	st := b.FStats()
	if st.EgressBatches == 0 {
		t.Fatal("coalescing fabric sent no batches")
	}
	if st.EgressBatches >= st.EgressMsgs {
		t.Fatalf("EgressBatches=%d not below EgressMsgs=%d: nothing was coalesced",
			st.EgressBatches, st.EgressMsgs)
	}
}

// TestFabricCoalesceOverflow forces the CoalesceLimit flush path: messages
// larger than the limit allows must split across multiple datagrams, all of
// which arrive.
func TestFabricCoalesceOverflow(t *testing.T) {
	a := newTestFabric(t, 1)
	b, err := NewFabric(FabricConfig{Addr: 2, Seed: 2, Coalesce: true, CoalesceLimit: 32})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Stop)

	got := make(chan uint64, 64)
	a.Network().Attach(a.Addr(), func(_ netem.Addr, payload any, _ int) {
		if hb, ok := payload.(*wire.Heartbeat); ok {
			got <- hb.Seq
		}
	})
	b.Network().Attach(b.Addr(), func(netem.Addr, any, int) {})
	a.AddRemote(b.Addr(), b.AddrPort())
	b.AddRemote(a.Addr(), a.AddrPort())
	a.Start()
	b.Start()

	const burst = 16
	b.Post(func() {
		for i := uint64(0); i < burst; i++ {
			hb := &wire.Heartbeat{From: 2, Seq: i}
			b.Network().Send(b.Addr(), a.Addr(), hb, hb.Size())
		}
	})
	for i := uint64(0); i < burst; i++ {
		select {
		case s := <-got:
			if s != i {
				t.Fatalf("heartbeat %d arrived out of order (seq %d)", i, s)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("heartbeat %d never arrived", i)
		}
	}
	waitFor(t, func() bool { return b.FStats().EgressBatches >= 2 })
}
