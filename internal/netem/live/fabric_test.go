package live

import (
	"testing"
	"time"

	"swishmem/internal/netem"
	"swishmem/internal/wire"
)

func newTestFabric(t *testing.T, addr netem.Addr) *Fabric {
	t.Helper()
	f, err := NewFabric(FabricConfig{Addr: addr, Seed: int64(addr)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Stop)
	return f
}

// TestFabricExchange wires two fabrics together and routes a protocol
// message from B's local network through the relay, over UDP, into a
// handler attached on A's local network — the full live data path.
func TestFabricExchange(t *testing.T) {
	a := newTestFabric(t, 1)
	b := newTestFabric(t, 2)

	got := make(chan wire.Msg, 1)
	a.Network().Attach(a.Addr(), func(_ netem.Addr, payload any, _ int) {
		if m, ok := payload.(wire.Msg); ok {
			select {
			case got <- m:
			default:
			}
		}
	})
	// The sender's own address must be attached locally for netem.Send.
	b.Network().Attach(b.Addr(), func(netem.Addr, any, int) {})
	a.AddRemote(b.Addr(), b.AddrPort())
	b.AddRemote(a.Addr(), a.AddrPort())
	a.Start()
	b.Start()

	b.Post(func() {
		hb := &wire.Heartbeat{From: 2, Seq: 77}
		b.Network().Send(b.Addr(), a.Addr(), hb, hb.Size())
	})
	select {
	case m := <-got:
		hb, ok := m.(*wire.Heartbeat)
		if !ok || hb.From != 2 || hb.Seq != 77 {
			t.Fatalf("got %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message never crossed the fabric")
	}
	// Counters are bumped just after the socket write; wait rather than race.
	waitFor(t, func() bool { return a.FStats().Injected > 0 })
	waitFor(t, func() bool { return b.FStats().EgressMsgs > 0 })
}

// TestFabricBootstrap has a member fabric Hello a "controller" fabric whose
// system handler answers with a PeerList; the member must apply it, learn
// the third peer, and stop sending Hellos.
func TestFabricBootstrap(t *testing.T) {
	ctrl := newTestFabric(t, 0xfffe)
	member := newTestFabric(t, 1)
	third := newTestFabric(t, 3)

	hellos := make(chan uint16, 16)
	ctrl.SetSystemHandler(func(from netem.Addr, msg wire.Msg) bool {
		if h, ok := msg.(*wire.Hello); ok {
			select {
			case hellos <- h.From:
			default:
			}
			ep, _ := ctrl.Node().Peer(from)
			tp := third.AddrPort()
			ctrl.AddRemote(from, ep)
			ctrl.Node().Send(from, &wire.PeerList{Epoch: 1, Peers: []wire.PeerEntry{
				{Addr: 3, IP: tp.Addr().Unmap().As4(), Port: tp.Port()},
			}})
		}
		return true
	})
	ctrl.Start()
	third.Start()

	member.Bootstrap(0xfffe, ctrl.AddrPort(), 5*time.Millisecond)
	member.Start()
	select {
	case from := <-hellos:
		if from != 1 {
			t.Fatalf("hello from %d, want 1", from)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("controller never saw a Hello")
	}
	deadline := time.Now().Add(5 * time.Second)
	for !member.Bootstrapped() {
		if time.Now().After(deadline) {
			t.Fatal("member never applied the PeerList")
		}
		time.Sleep(time.Millisecond)
	}
	if _, ok := member.Node().Peer(3); !ok {
		t.Fatal("member did not learn peer 3 from the PeerList")
	}
}
