// Package live is the wall-clock counterpart of the simulated fabric: a
// real datagram transport over net.UDPConn carrying the same wire-encoded
// SwiShmem protocol messages between in-process (or cross-process) nodes.
// Where netem delivers typed payloads on virtual time, live marshals every
// message through internal/wire and moves real bytes through the kernel —
// the path a hardware deployment's switch CPUs would use for the protocol's
// control traffic, and a proof that the wire formats are complete.
//
// The transport exposes the same shape as netem (addresses, handlers,
// send), so protocol state machines run unchanged over either, and it
// applies the same fault model: a netem.LinkProfile shapes the send path
// (loss, duplication, latency, jitter, reordering, serialization delay) and
// receive-side loss plus partition groups complete the parity. All fault
// sampling is deterministic given the node's seed; the network underneath
// stays real.
//
// Hot-path discipline matches DESIGN.md §6: sends marshal into pooled
// buffers and receives hand the kernel's read buffer straight to the
// decoder (wire unmarshalers copy every byte they keep), so the unshaped
// send and receive paths run at zero allocations per datagram.
package live

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"time"

	"swishmem/internal/netem"
	"swishmem/internal/wire"
)

// frameHdr is the on-wire frame overhead: a 2-byte sender address plus a
// 4-byte CRC32-C over the payload. The UDP checksum is 16 bits, optional on
// IPv4, and bypassed entirely by loopback offload — far too weak a guard
// for protocol state. The frame CRC is what turns bit corruption (injected
// by CorruptRate or real) into a clean decode error at the receiver instead
// of a silently wrong message: without it a single flipped bit in a counter
// delta merges garbage into every replica.
const frameHdr = 6

// crcTab selects CRC32-C (Castagnoli), hardware-accelerated on amd64/arm64.
var crcTab = crc32.MakeTable(crc32.Castagnoli)

// ErrRejected is returned by Send when the egress profile for the peer is in
// DenyReject mode: the datagram is refused and the sender is told — the
// ICMP-unreachable analog — where a blackhole swallows it silently.
var ErrRejected = errors.New("live: send rejected by link deny policy")

// Handler receives decoded protocol messages.
type Handler func(from netem.Addr, msg wire.Msg)

// RawHandler receives undecoded message payloads (the datagram minus the
// sender-address + CRC frame header) with the kernel-reported source endpoint.
// The payload slice is only valid for the duration of the call: the
// transport reuses the buffer for the next datagram. Consumers that need
// the bytes longer must copy (wire.Unmarshal does, field by field).
type RawHandler func(from netem.Addr, src netip.AddrPort, payload []byte)

// Options configures a node's deterministic fault injection.
type Options struct {
	// LossRate drops this fraction of received messages (applied before
	// delivery so the network itself stays real).
	LossRate float64
	// Seed drives all fault sampling on this node.
	Seed int64
	// Profile shapes the send path with the full netem fault model: LossRate
	// drops datagrams before they reach the socket, DupRate transmits twice,
	// Latency+Jitter delay the transmit, ReorderRate adds an extra delay of
	// up to 4x Latency, and BandwidthBps imposes FIFO serialization delay.
	// The zero profile transmits synchronously (the zero-alloc hot path).
	Profile netem.LinkProfile
	// Listen is the UDP bind address ("ip:port"). Default "127.0.0.1:0".
	Listen string
}

// Node is one live transport endpoint bound to a UDP socket.
type Node struct {
	addr netem.Addr
	conn *net.UDPConn

	mu       sync.RWMutex
	peers    map[netem.Addr]netip.AddrPort
	groups   map[netem.Addr]int // partition group per peer (0 = unpartitioned)
	group    int                // this node's partition group
	handler  Handler
	raw      RawHandler
	lossRate float64 // receive-side loss
	profile  netem.LinkProfile
	// peerProfiles overrides the egress profile per destination. A node owns
	// only its own egress, so an override here shapes exactly one direction
	// of one link — the live counterpart of netem's directed links, and how
	// asymmetric faults (A→B dead, B→A healthy) are built on real sockets.
	peerProfiles map[netem.Addr]netem.LinkProfile
	nth          map[netem.Addr]uint64 // per-destination every-Nth loss counters
	rng          *rand.Rand            // receive-side loss sampling
	sendRng      *rand.Rand            // send-side shaping
	busyUntil    time.Time             // FIFO serialization (BandwidthBps)

	// sendBufs pools marshal buffers (*[]byte); warm sends allocate nothing.
	sendBufs sync.Pool

	closeOnce sync.Once
	closeErr  error
	closed    chan struct{}
	wg        sync.WaitGroup
	stats     Stats
	statsMu   sync.Mutex
}

// Stats counts transport events.
type Stats struct {
	Sent      uint64 // datagrams handed to the socket
	Received  uint64 // datagrams delivered to the handler
	Dropped   uint64 // injected receive-side loss
	DecodeErr uint64

	BytesSent     uint64
	BytesReceived uint64
	TxDropped     uint64 // injected send-side loss (random + every-Nth)
	TxDup         uint64 // injected duplicates
	TxDelayed     uint64 // datagrams sent through the delay path
	PartDropped   uint64 // partition drops, both directions
	TxCorrupted   uint64 // datagrams transmitted with flipped payload bits
	TxBlackholed  uint64 // datagrams swallowed by DenyBlackhole
	TxRejected    uint64 // sends refused by DenyReject (ErrRejected returned)
}

// Listen binds a node to opts.Listen (default 127.0.0.1, ephemeral port).
func Listen(addr netem.Addr, opts Options) (*Node, error) {
	bind := opts.Listen
	if bind == "" {
		bind = "127.0.0.1:0"
	}
	laddr, err := net.ResolveUDPAddr("udp4", bind)
	if err != nil {
		return nil, fmt.Errorf("live: listen address: %w", err)
	}
	conn, err := net.ListenUDP("udp4", laddr)
	if err != nil {
		return nil, fmt.Errorf("live: listen: %w", err)
	}
	n := &Node{
		addr:         addr,
		conn:         conn,
		peers:        make(map[netem.Addr]netip.AddrPort),
		groups:       make(map[netem.Addr]int),
		peerProfiles: make(map[netem.Addr]netem.LinkProfile),
		nth:          make(map[netem.Addr]uint64),
		lossRate:     opts.LossRate,
		profile:      opts.Profile,
		rng:          rand.New(rand.NewSource(opts.Seed)),
		sendRng:      rand.New(rand.NewSource(opts.Seed ^ 0x5deece66d)),
		closed:       make(chan struct{}),
	}
	n.sendBufs.New = func() any {
		b := make([]byte, 0, 2048)
		return &b
	}
	n.wg.Add(1)
	go n.readLoop()
	return n, nil
}

// Addr returns the node's SwiShmem address.
func (n *Node) Addr() netem.Addr { return n.addr }

// UDPAddr returns the bound socket address (for peer registration).
func (n *Node) UDPAddr() *net.UDPAddr { return n.conn.LocalAddr().(*net.UDPAddr) }

// AddrPort returns the bound socket address as a netip.AddrPort.
func (n *Node) AddrPort() netip.AddrPort {
	return n.UDPAddr().AddrPort()
}

// SetHandler installs the message handler. Must be set before traffic flows.
func (n *Node) SetHandler(h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handler = h
}

// SetRawHandler installs a raw payload handler. When set it preempts the
// decoded handler: the transport skips wire.Unmarshal and the receive path
// runs allocation-free. The fabric pump uses this to move decoding onto the
// engine goroutine.
func (n *Node) SetRawHandler(h RawHandler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.raw = h
}

// SetProfile replaces the send-side shaping profile (e.g. calming the fault
// injection before a convergence check). Per-peer overrides installed with
// SetPeerProfile survive; clear them explicitly.
func (n *Node) SetProfile(p netem.LinkProfile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.profile = p
}

// SetPeerProfile overrides the egress profile for one destination. Because
// each node shapes only its own egress, this configures exactly the
// n.addr→addr direction: installing a blackhole here while the peer keeps a
// clean profile back yields a one-way outage on a real network.
func (n *Node) SetPeerProfile(addr netem.Addr, p netem.LinkProfile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peerProfiles[addr] = p
	delete(n.nth, addr) // restart the deterministic every-Nth cadence
}

// ClearPeerProfile removes a per-destination override; traffic to addr
// returns to the node-wide profile.
func (n *Node) ClearPeerProfile(addr netem.Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.peerProfiles, addr)
	delete(n.nth, addr)
}

// SetRecvLoss replaces the receive-side loss rate.
func (n *Node) SetRecvLoss(rate float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.lossRate = rate
}

// SetPartition assigns this node to a partition group. As on the emulated
// fabric, nodes in different nonzero groups cannot exchange messages; group
// 0 talks to everyone. The peer's group is whatever SetPeerGroup recorded —
// each process keeps its own view, mirroring how a real injected partition
// is configured on every box it affects.
func (n *Node) SetPartition(group int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.group = group
}

// SetPeerGroup records the partition group of a peer address.
func (n *Node) SetPeerGroup(addr netem.Addr, group int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.groups[addr] = group
}

// HealPartition returns this node and all peers to group 0.
func (n *Node) HealPartition() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.group = 0
	for a := range n.groups {
		delete(n.groups, a)
	}
}

// partitionedLocked reports whether traffic with peer is partitioned away.
// Caller holds n.mu.
func (n *Node) partitionedLocked(peer netem.Addr) bool {
	if n.group == 0 {
		return false
	}
	g := n.groups[peer]
	return g != 0 && g != n.group
}

// AddPeer registers where another SwiShmem address lives.
func (n *Node) AddPeer(addr netem.Addr, udp *net.UDPAddr) {
	n.AddPeerAddrPort(addr, udp.AddrPort())
}

// AddPeerAddrPort registers a peer endpoint by netip.AddrPort.
func (n *Node) AddPeerAddrPort(addr netem.Addr, ap netip.AddrPort) {
	ap = netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[addr] = ap
}

// AddPeerIfAbsent registers a peer endpoint unless the address is already
// known; it reports whether the entry was added. The fabric's auto-learning
// path uses it so a datagram's kernel-reported source teaches the node
// where its sender lives.
func (n *Node) AddPeerIfAbsent(addr netem.Addr, ap netip.AddrPort) bool {
	ap = netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.peers[addr]; ok {
		return false
	}
	n.peers[addr] = ap
	return true
}

// Peer returns the registered endpoint for addr.
func (n *Node) Peer(addr netem.Addr) (netip.AddrPort, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	ap, ok := n.peers[addr]
	return ap, ok
}

// Peers returns a snapshot of the peer table.
func (n *Node) Peers() map[netem.Addr]netip.AddrPort {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make(map[netem.Addr]netip.AddrPort, len(n.peers))
	for a, ap := range n.peers {
		out[a] = ap
	}
	return out
}

// sendPlan is one outbound datagram's shaping decision, computed under the
// node lock and executed after it is released.
type sendPlan struct {
	dst     netip.AddrPort
	delay   time.Duration
	dupLag  time.Duration
	drop    bool
	dup     bool
	part    bool
	corrupt bool
	deny    netem.DenyMode
}

// plan resolves the destination endpoint and samples the send-side fault
// profile for a datagram of the given on-wire size (sender header included).
func (n *Node) plan(to netem.Addr, size int) (sendPlan, error) {
	var pl sendPlan
	n.mu.Lock()
	dst, ok := n.peers[to]
	if !ok {
		n.mu.Unlock()
		return pl, fmt.Errorf("live: no peer registered for address %d", to)
	}
	pl.dst = dst
	if n.partitionedLocked(to) {
		n.mu.Unlock()
		pl.part = true
		return pl, nil
	}
	p := n.profile
	if pp, ok := n.peerProfiles[to]; ok {
		p = pp
	}
	// Fault order mirrors the simulated fabric: deny, every-Nth, random
	// loss, corruption draw. Every branch is gated on its knob so a profile
	// without extended faults draws exactly the sequence it always did.
	if p.Deny != netem.DenyNone {
		pl.deny = p.Deny
		n.mu.Unlock()
		return pl, nil
	}
	if p.LossEveryN >= 1 {
		n.nth[to]++
		if n.nth[to]%uint64(p.LossEveryN) == 0 {
			pl.drop = true
		}
	}
	if !pl.drop && p.LossRate > 0 && n.sendRng.Float64() < p.LossRate {
		pl.drop = true
	}
	if !pl.drop && p.CorruptRate > 0 && n.sendRng.Float64() < p.CorruptRate {
		pl.corrupt = true
	}
	if !pl.drop {
		if p.BandwidthBps > 0 {
			ser := time.Duration(float64(size*8) / p.BandwidthBps * 1e9)
			now := time.Now()
			depart := now
			if n.busyUntil.After(now) {
				depart = n.busyUntil
			}
			depart = depart.Add(ser)
			n.busyUntil = depart
			pl.delay += depart.Sub(now)
		}
		pl.delay += time.Duration(p.Latency)
		if p.Jitter > 0 {
			pl.delay += time.Duration(n.sendRng.Int63n(int64(p.Jitter) + 1))
		}
		if p.ReorderRate > 0 && p.Latency > 0 && n.sendRng.Float64() < p.ReorderRate {
			pl.delay += time.Duration(n.sendRng.Int63n(int64(4*p.Latency) + 1))
		}
		if p.DupRate > 0 && n.sendRng.Float64() < p.DupRate {
			pl.dup = true
			pl.dupLag = time.Duration(p.Latency)/2 + 1
		}
	}
	n.mu.Unlock()
	return pl, nil
}

// transmit executes a plan over a framed datagram held in a pooled buffer.
// Ownership of bp passes in; it returns to the pool after the last write.
func (n *Node) transmit(pl sendPlan, bp *[]byte) error {
	b := *bp
	if pl.delay <= 0 {
		err := n.write(pl.dst, b)
		if pl.dup {
			n.bump(func(s *Stats) { s.TxDup++ })
			_ = n.write(pl.dst, b)
		}
		n.sendBufs.Put(bp)
		return err
	}
	if pl.dup {
		// The duplicate needs its own buffer: the delayed writes release
		// their buffers independently.
		bp2 := n.sendBufs.Get().(*[]byte)
		*bp2 = append((*bp2)[:0], b...)
		n.bump(func(s *Stats) { s.TxDup++ })
		n.scheduleWrite(pl.delay+pl.dupLag, pl.dst, bp2)
	}
	n.scheduleWrite(pl.delay, pl.dst, bp)
	return nil
}

// Send marshals msg into a pooled buffer and transmits it to the peer
// registered for to, applying the node's send-side fault profile. Unknown
// peers and socket errors are reported; datagram delivery is, as on the
// emulated fabric, never guaranteed. With the zero profile the path is
// synchronous and allocation-free warm.
func (n *Node) Send(to netem.Addr, msg wire.Msg) error {
	pl, err := n.plan(to, frameHdr+msg.Size())
	if err != nil {
		return err
	}
	if done, err := n.applyVerdict(pl); done {
		return err
	}
	bp := n.sendBufs.Get().(*[]byte)
	b := append((*bp)[:0], byte(n.addr>>8), byte(n.addr), 0, 0, 0, 0)
	b = msg.Marshal(b)
	*bp = b
	binary.BigEndian.PutUint32(b[2:frameHdr], crc32.Checksum(b[frameHdr:], crcTab))
	if pl.corrupt {
		n.corruptPayload(b)
	}
	return n.transmit(pl, bp)
}

// applyVerdict consumes a plan's terminal outcomes (partition, deny, drop).
// done means the datagram goes no further; err surfaces a reject.
func (n *Node) applyVerdict(pl sendPlan) (done bool, err error) {
	if pl.part {
		n.bump(func(s *Stats) { s.PartDropped++ })
		return true, nil
	}
	switch pl.deny {
	case netem.DenyBlackhole:
		n.bump(func(s *Stats) { s.TxBlackholed++ })
		return true, nil
	case netem.DenyReject:
		n.bump(func(s *Stats) { s.TxRejected++ })
		return true, ErrRejected
	}
	if pl.drop {
		n.bump(func(s *Stats) { s.TxDropped++ })
		return true, nil
	}
	return false, nil
}

// corruptPayload flips 1-3 bits of a framed datagram's payload after the
// CRC was computed (the frame header is left intact so the receiver
// attributes the frame, then fails the integrity check and counts a decode
// error — real corruption, clean rejection, never a wrong delivery).
func (n *Node) corruptPayload(b []byte) {
	if len(b) <= frameHdr {
		return
	}
	n.mu.Lock()
	netem.FlipBits(n.sendRng, b[frameHdr:], 1+n.sendRng.Intn(3))
	n.mu.Unlock()
	n.bump(func(s *Stats) { s.TxCorrupted++ })
}

// SendEncoded transmits an already wire-encoded payload (a complete Marshal
// encoding, type tag first — typically a coalesced wire.Batch frame built by
// a BatchBuilder) with the same shaping, framing, and pooling as Send. The
// payload is copied into a pooled buffer, so the caller may reuse it
// immediately.
func (n *Node) SendEncoded(to netem.Addr, payload []byte) error {
	pl, err := n.plan(to, frameHdr+len(payload))
	if err != nil {
		return err
	}
	if done, err := n.applyVerdict(pl); done {
		return err
	}
	bp := n.sendBufs.Get().(*[]byte)
	b := append((*bp)[:0], byte(n.addr>>8), byte(n.addr), 0, 0, 0, 0)
	b = append(b, payload...)
	*bp = b
	binary.BigEndian.PutUint32(b[2:frameHdr], crc32.Checksum(b[frameHdr:], crcTab))
	if pl.corrupt {
		n.corruptPayload(b)
	}
	return n.transmit(pl, bp)
}

// write transmits one framed datagram. Zero-alloc: WriteToUDPAddrPort takes
// the endpoint by value.
func (n *Node) write(dst netip.AddrPort, b []byte) error {
	if _, err := n.conn.WriteToUDPAddrPort(b, dst); err != nil {
		return fmt.Errorf("live: send: %w", err)
	}
	n.statsMu.Lock()
	n.stats.Sent++
	n.stats.BytesSent += uint64(len(b))
	n.statsMu.Unlock()
	return nil
}

// scheduleWrite transmits the pooled buffer after d on a timer goroutine
// (the wall-clock analogue of netem's delayed delivery events). Ownership
// of bp passes to the timer, which returns it to the pool after the write.
func (n *Node) scheduleWrite(d time.Duration, dst netip.AddrPort, bp *[]byte) {
	n.bump(func(s *Stats) { s.TxDelayed++ })
	time.AfterFunc(d, func() {
		select {
		case <-n.closed:
		default:
			_ = n.write(dst, *bp)
		}
		n.sendBufs.Put(bp)
	})
}

// Multicast sends msg to every group member except this node.
func (n *Node) Multicast(group []netem.Addr, msg wire.Msg) {
	for _, to := range group {
		if to == n.addr {
			continue
		}
		_ = n.Send(to, msg) // datagram semantics: errors equal loss
	}
}

// Stats returns a snapshot of the transport counters.
func (n *Node) Stats() Stats {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	return n.stats
}

// Close shuts the socket down and waits for the read loop. Safe to call
// concurrently and repeatedly: a sync.Once runs the teardown exactly once
// and every caller observes its result.
func (n *Node) Close() error {
	n.closeOnce.Do(func() {
		close(n.closed)
		n.closeErr = n.conn.Close()
		n.wg.Wait()
	})
	return n.closeErr
}

func (n *Node) readLoop() {
	defer n.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		n.conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		sz, src, err := n.conn.ReadFromUDPAddrPort(buf)
		select {
		case <-n.closed:
			return
		default:
		}
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return
		}
		n.processDatagram(src, buf[:sz])
	}
}

// processDatagram delivers one framed datagram: sender-address header, CRC
// integrity check, receive-side fault injection, then the raw handler (no
// decode) or the decoded handler. The buffer belongs to the read loop;
// nothing here may retain it (wire unmarshalers copy, raw handlers are
// documented not to). The raw delivery path is allocation-free warm.
func (n *Node) processDatagram(src netip.AddrPort, b []byte) {
	if len(b) < frameHdr+1 {
		n.bump(func(s *Stats) { s.DecodeErr++ })
		return
	}
	from := netem.Addr(uint16(b[0])<<8 | uint16(b[1]))
	if crc32.Checksum(b[frameHdr:], crcTab) != binary.BigEndian.Uint32(b[2:frameHdr]) {
		n.bump(func(s *Stats) { s.DecodeErr++ })
		return
	}
	n.mu.Lock()
	drop := n.lossRate > 0 && n.rng.Float64() < n.lossRate
	part := n.partitionedLocked(from)
	h, raw := n.handler, n.raw
	n.mu.Unlock()
	if part {
		n.bump(func(s *Stats) { s.PartDropped++ })
		return
	}
	if drop {
		n.bump(func(s *Stats) { s.Dropped++ })
		return
	}
	if raw != nil {
		n.countRecv(len(b))
		raw(from, src, b[frameHdr:])
		return
	}
	msg, err := wire.Unmarshal(b[frameHdr:])
	if err != nil {
		n.bump(func(s *Stats) { s.DecodeErr++ })
		return
	}
	n.countRecv(len(b))
	if h != nil {
		h(from, msg)
	}
}

func (n *Node) countRecv(bytes int) {
	n.statsMu.Lock()
	n.stats.Received++
	n.stats.BytesReceived += uint64(bytes)
	n.statsMu.Unlock()
}

func (n *Node) bump(f func(*Stats)) {
	n.statsMu.Lock()
	f(&n.stats)
	n.statsMu.Unlock()
}

// Mesh wires a set of live nodes into a full mesh (every node knows every
// other node's socket address).
func Mesh(nodes []*Node) {
	for _, a := range nodes {
		for _, b := range nodes {
			if a != b {
				a.AddPeer(b.Addr(), b.UDPAddr())
			}
		}
	}
}
