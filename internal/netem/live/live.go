// Package live is the wall-clock counterpart of the simulated fabric: a
// real datagram transport over net.UDPConn carrying the same wire-encoded
// SwiShmem protocol messages between in-process (or cross-process) nodes.
// Where netem delivers typed payloads on virtual time, live marshals every
// message through internal/wire and moves real bytes through the kernel —
// the path a hardware deployment's switch CPUs would use for the protocol's
// control traffic, and a proof that the wire formats are complete.
//
// The transport exposes the same shape as netem (addresses, handlers,
// send), so protocol state machines run unchanged over either. Loss and
// delay injection hooks make the unreliable-fabric behaviours reproducible
// on loopback too.
package live

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"swishmem/internal/netem"
	"swishmem/internal/wire"
)

// Handler receives decoded protocol messages.
type Handler func(from netem.Addr, msg wire.Msg)

// Options configures fault injection applied on receive (deterministic
// given Seed, applied before delivery so the network itself stays real).
type Options struct {
	// LossRate drops this fraction of received messages.
	LossRate float64
	// Seed drives the loss sampling.
	Seed int64
}

// Node is one live transport endpoint bound to a UDP socket.
type Node struct {
	addr netem.Addr
	conn *net.UDPConn

	mu      sync.RWMutex
	peers   map[netem.Addr]*net.UDPAddr
	handler Handler
	opts    Options
	rng     *rand.Rand

	closed  chan struct{}
	wg      sync.WaitGroup
	stats   Stats
	statsMu sync.Mutex
}

// Stats counts transport events.
type Stats struct {
	Sent      uint64
	Received  uint64
	Dropped   uint64 // injected loss
	DecodeErr uint64
}

// Listen binds a node to 127.0.0.1 on an ephemeral port.
func Listen(addr netem.Addr, opts Options) (*Node, error) {
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("live: listen: %w", err)
	}
	n := &Node{
		addr:   addr,
		conn:   conn,
		peers:  make(map[netem.Addr]*net.UDPAddr),
		opts:   opts,
		rng:    rand.New(rand.NewSource(opts.Seed)),
		closed: make(chan struct{}),
	}
	n.wg.Add(1)
	go n.readLoop()
	return n, nil
}

// Addr returns the node's SwiShmem address.
func (n *Node) Addr() netem.Addr { return n.addr }

// UDPAddr returns the bound socket address (for peer registration).
func (n *Node) UDPAddr() *net.UDPAddr { return n.conn.LocalAddr().(*net.UDPAddr) }

// SetHandler installs the message handler. Must be set before traffic flows.
func (n *Node) SetHandler(h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handler = h
}

// AddPeer registers where another SwiShmem address lives.
func (n *Node) AddPeer(addr netem.Addr, udp *net.UDPAddr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[addr] = udp
}

// Send marshals msg and transmits it to the peer registered for to.
// Unknown peers and socket errors are reported; datagram delivery is, as on
// the emulated fabric, never guaranteed.
func (n *Node) Send(to netem.Addr, msg wire.Msg) error {
	n.mu.RLock()
	dst, ok := n.peers[to]
	n.mu.RUnlock()
	if !ok {
		return fmt.Errorf("live: no peer registered for address %d", to)
	}
	buf := make([]byte, 2, 2+msg.Size())
	buf[0] = byte(n.addr >> 8)
	buf[1] = byte(n.addr)
	buf = msg.Marshal(buf)
	if _, err := n.conn.WriteToUDP(buf, dst); err != nil {
		return fmt.Errorf("live: send: %w", err)
	}
	n.statsMu.Lock()
	n.stats.Sent++
	n.statsMu.Unlock()
	return nil
}

// Multicast sends msg to every group member except this node.
func (n *Node) Multicast(group []netem.Addr, msg wire.Msg) {
	for _, to := range group {
		if to == n.addr {
			continue
		}
		_ = n.Send(to, msg) // datagram semantics: errors equal loss
	}
}

// Stats returns a snapshot of the transport counters.
func (n *Node) Stats() Stats {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	return n.stats
}

// Close shuts the socket down and waits for the read loop.
func (n *Node) Close() error {
	select {
	case <-n.closed:
		return nil
	default:
	}
	close(n.closed)
	err := n.conn.Close()
	n.wg.Wait()
	return err
}

func (n *Node) readLoop() {
	defer n.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		n.conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		sz, _, err := n.conn.ReadFromUDP(buf)
		select {
		case <-n.closed:
			return
		default:
		}
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return
		}
		if sz < 3 {
			n.bump(func(s *Stats) { s.DecodeErr++ })
			continue
		}
		from := netem.Addr(uint16(buf[0])<<8 | uint16(buf[1]))
		msg, err := wire.Unmarshal(append([]byte(nil), buf[2:sz]...))
		if err != nil {
			n.bump(func(s *Stats) { s.DecodeErr++ })
			continue
		}
		// Injected loss (deterministic wrt the node's RNG sequence).
		drop := false
		n.mu.Lock()
		if n.opts.LossRate > 0 && n.rng.Float64() < n.opts.LossRate {
			drop = true
		}
		h := n.handler
		n.mu.Unlock()
		if drop {
			n.bump(func(s *Stats) { s.Dropped++ })
			continue
		}
		n.bump(func(s *Stats) { s.Received++ })
		if h != nil {
			h(from, msg)
		}
	}
}

func (n *Node) bump(f func(*Stats)) {
	n.statsMu.Lock()
	f(&n.stats)
	n.statsMu.Unlock()
}

// Mesh wires a set of live nodes into a full mesh (every node knows every
// other node's socket address).
func Mesh(nodes []*Node) {
	for _, a := range nodes {
		for _, b := range nodes {
			if a != b {
				a.AddPeer(b.Addr(), b.UDPAddr())
			}
		}
	}
}
