package live

import (
	"encoding/binary"
	"hash/crc32"
	"net/netip"
	"sync"
	"testing"
	"time"

	"swishmem/internal/netem"
	"swishmem/internal/wire"
)

// TestCloseConcurrent hammers Close from many goroutines; the sync.Once
// guard must make this safe (the old check-then-close raced to a double
// close panic). Run under -race.
func TestCloseConcurrent(t *testing.T) {
	n, err := Listen(1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := n.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}()
	}
	wg.Wait()
	if err := n.Close(); err != nil {
		t.Fatalf("close after close: %v", err)
	}
}

// TestSendZeroAlloc pins the unshaped send path at 0 allocs/op warm
// (DESIGN.md §6 pooling invariants). The peer endpoint is a closed port so
// no receiver goroutine allocates during measurement.
func TestSendZeroAlloc(t *testing.T) {
	sink, err := Listen(99, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dst := sink.UDPAddr()
	sink.Close()

	n, err := Listen(1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.AddPeer(2, dst)

	hb := &wire.Heartbeat{From: 1, Seq: 7}
	for i := 0; i < 64; i++ { // warm the buffer pool
		if err := n.Send(2, hb); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		_ = n.Send(2, hb)
	})
	if allocs > 0 {
		t.Fatalf("Send allocates %.2f/op, want 0", allocs)
	}
}

// TestReceiveZeroAlloc pins the raw receive path at 0 allocs/op warm: with
// a RawHandler installed, processDatagram never decodes and never copies.
func TestReceiveZeroAlloc(t *testing.T) {
	n, err := Listen(1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	got := 0
	n.SetRawHandler(func(from netem.Addr, _ netip.AddrPort, payload []byte) {
		got += len(payload)
	})

	frame := []byte{0, 2, 0, 0, 0, 0} // sender header: addr 2 + CRC slot
	frame = (&wire.Heartbeat{From: 2, Seq: 9}).Marshal(frame)
	binary.BigEndian.PutUint32(frame[2:frameHdr], crc32.Checksum(frame[frameHdr:], crcTab))
	src := n.AddrPort()
	for i := 0; i < 64; i++ {
		n.processDatagram(src, frame)
	}
	allocs := testing.AllocsPerRun(200, func() {
		n.processDatagram(src, frame)
	})
	if allocs > 0 {
		t.Fatalf("processDatagram allocates %.2f/op, want 0", allocs)
	}
	if got == 0 {
		t.Fatal("raw handler never ran")
	}
}

// TestSendShapingDupAndLoss verifies deterministic send-side shaping: full
// duplication doubles the datagram count, full loss transmits nothing.
func TestSendShapingDupAndLoss(t *testing.T) {
	recvd := make(chan wire.Msg, 64)
	rx, err := Listen(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	rx.SetHandler(func(_ netem.Addr, msg wire.Msg) { recvd <- msg })

	tx, err := Listen(1, Options{Seed: 5, Profile: netem.LinkProfile{DupRate: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	tx.AddPeer(2, rx.UDPAddr())

	const N = 10
	for i := 0; i < N; i++ {
		if err := tx.Send(2, &wire.Heartbeat{From: 1, Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(2 * time.Second)
	for seen := 0; seen < 2*N; seen++ {
		select {
		case <-recvd:
		case <-deadline:
			t.Fatalf("saw %d datagrams, want %d (every send duplicated)", seen, 2*N)
		}
	}
	st := tx.Stats()
	if st.TxDup != N || st.Sent != 2*N {
		t.Fatalf("stats = %+v, want TxDup=%d Sent=%d", st, N, 2*N)
	}

	tx.SetProfile(netem.LinkProfile{LossRate: 1})
	for i := 0; i < N; i++ {
		if err := tx.Send(2, &wire.Heartbeat{From: 1, Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	st = tx.Stats()
	if st.TxDropped != N || st.Sent != 2*N {
		t.Fatalf("after loss: stats = %+v, want TxDropped=%d and no new sends", st, N)
	}
}

// TestSendShapingDelay verifies latency shaping goes through the delayed
// path and still arrives.
func TestSendShapingDelay(t *testing.T) {
	recvd := make(chan wire.Msg, 8)
	rx, err := Listen(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	rx.SetHandler(func(_ netem.Addr, msg wire.Msg) { recvd <- msg })

	tx, err := Listen(1, Options{Profile: netem.LinkProfile{Latency: 20 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	tx.AddPeer(2, rx.UDPAddr())

	start := time.Now()
	if err := tx.Send(2, &wire.Heartbeat{From: 1, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-recvd:
	case <-time.After(2 * time.Second):
		t.Fatal("delayed datagram never arrived")
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("arrived after %v, want >= ~20ms latency", elapsed)
	}
	if st := tx.Stats(); st.TxDelayed != 1 {
		t.Fatalf("stats = %+v, want TxDelayed=1", st)
	}
}

// TestPartition verifies both directions of partition groups, and healing.
func TestPartition(t *testing.T) {
	recvd := make(chan wire.Msg, 8)
	a, err := Listen(1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.SetHandler(func(_ netem.Addr, msg wire.Msg) { recvd <- msg })
	Mesh([]*Node{a, b})

	// Send-side: a in group 1, knows b is in group 2 -> drop at a.
	a.SetPartition(1)
	a.SetPeerGroup(2, 2)
	if err := a.Send(2, &wire.Heartbeat{From: 1, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.PartDropped != 1 || st.Sent != 0 {
		t.Fatalf("send-side: stats = %+v, want PartDropped=1 Sent=0", st)
	}

	// Receive-side: a healed, b partitioned from a -> drop at b.
	a.HealPartition()
	b.SetPartition(2)
	b.SetPeerGroup(1, 1)
	if err := a.Send(2, &wire.Heartbeat{From: 1, Seq: 2}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return b.Stats().PartDropped == 1 })

	// Healed: traffic flows again.
	b.HealPartition()
	if err := a.Send(2, &wire.Heartbeat{From: 1, Seq: 3}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-recvd:
	case <-time.After(2 * time.Second):
		t.Fatal("message after heal never arrived")
	}
}
