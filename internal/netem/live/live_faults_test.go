package live

import (
	"errors"
	"testing"

	"swishmem/internal/netem"
	"swishmem/internal/wire"
)

// TestPeerProfileAsymmetric builds a one-way outage on real sockets: node 1
// blackholes its egress to node 2 while node 2's path back stays clean. The
// healthy direction must keep delivering; the dead one must not.
func TestPeerProfileAsymmetric(t *testing.T) {
	nodes := mkMesh(t, 2, Options{})
	var c1, c2 collect
	nodes[0].SetHandler(c1.handler)
	nodes[1].SetHandler(c2.handler)
	nodes[0].SetPeerProfile(2, netem.LinkProfile{Deny: netem.DenyBlackhole})

	msg := &wire.Heartbeat{From: 1, Seq: 1}
	for i := 0; i < 5; i++ {
		if err := nodes[0].Send(2, msg); err != nil {
			t.Fatalf("blackholed send must not error: %v", err)
		}
		if err := nodes[1].Send(1, &wire.Heartbeat{From: 2, Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return c1.count() == 5 })
	if got := c2.count(); got != 0 {
		t.Fatalf("%d datagrams crossed a blackholed direction", got)
	}
	if s := nodes[0].Stats(); s.TxBlackholed != 5 {
		t.Fatalf("TxBlackholed = %d, want 5", s.TxBlackholed)
	}

	// Clearing the override heals exactly that direction.
	nodes[0].ClearPeerProfile(2)
	if err := nodes[0].Send(2, msg); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return c2.count() == 1 })
}

// TestDenyRejectSurfacesToSender: reject mode must hand the sender an error
// (the ICMP-unreachable analog) instead of silently eating the datagram.
func TestDenyRejectSurfacesToSender(t *testing.T) {
	nodes := mkMesh(t, 2, Options{})
	nodes[0].SetPeerProfile(2, netem.LinkProfile{Deny: netem.DenyReject})
	err := nodes[0].Send(2, &wire.Heartbeat{From: 1, Seq: 1})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("Send = %v, want ErrRejected", err)
	}
	if err := nodes[0].SendEncoded(2, wire.Marshal(&wire.Heartbeat{From: 1, Seq: 2})); !errors.Is(err, ErrRejected) {
		t.Fatalf("SendEncoded = %v, want ErrRejected", err)
	}
	if s := nodes[0].Stats(); s.TxRejected != 2 || s.Sent != 0 {
		t.Fatalf("stats = %+v, want 2 rejects and 0 sent", s)
	}
}

// TestLossEveryNDeterministic: every-Nth loss is a counter, not a coin — of
// 9 datagrams at N=3, exactly the 3rd, 6th, and 9th die, every run.
func TestLossEveryNDeterministic(t *testing.T) {
	nodes := mkMesh(t, 2, Options{})
	var c collect
	nodes[1].SetHandler(c.handler)
	nodes[0].SetPeerProfile(2, netem.LinkProfile{LossEveryN: 3})
	for i := 0; i < 9; i++ {
		if err := nodes[0].Send(2, &wire.Heartbeat{From: 1, Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return c.count() == 6 })
	if s := nodes[0].Stats(); s.TxDropped != 3 || s.Sent != 6 {
		t.Fatalf("stats = %+v, want exactly 3 dropped / 6 sent", s)
	}
	seen := map[uint64]bool{}
	c.mu.Lock()
	for _, m := range c.msgs {
		seen[m.(*wire.Heartbeat).Seq] = true
	}
	c.mu.Unlock()
	for _, dead := range []uint64{2, 5, 8} { // 0-indexed 3rd/6th/9th
		if seen[dead] {
			t.Fatalf("datagram %d survived; every-Nth cadence broken (saw %v)", dead, seen)
		}
	}
}

// TestCorruptionRejectedCleanly: bit-flipped payloads must be counted as
// decode errors at the receiver — never delivered as a wrong message, never
// a panic — while the frame header keeps attributing the sender.
func TestCorruptionRejectedCleanly(t *testing.T) {
	nodes := mkMesh(t, 2, Options{Seed: 7})
	var c collect
	nodes[1].SetHandler(c.handler)
	nodes[0].SetPeerProfile(2, netem.LinkProfile{CorruptRate: 1.0})
	const sends = 50
	for i := 0; i < sends; i++ {
		if err := nodes[0].Send(2, &wire.Heartbeat{From: 1, Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool {
		s := nodes[1].Stats()
		return s.DecodeErr+s.Received >= sends
	})
	tx := nodes[0].Stats()
	if tx.TxCorrupted != sends {
		t.Fatalf("TxCorrupted = %d, want %d", tx.TxCorrupted, sends)
	}
	// The frame CRC makes rejection exact, not probabilistic: every flipped
	// frame fails the integrity check and none reaches the handler — a
	// corrupted counter delta that decoded "successfully" would silently
	// poison replicated state.
	rx := nodes[1].Stats()
	if rx.DecodeErr != sends {
		t.Fatalf("DecodeErr = %d, want all %d corrupted frames rejected (received=%d)",
			rx.DecodeErr, sends, rx.Received)
	}
	if got := c.count(); got != 0 {
		t.Fatalf("%d corrupted frames were delivered to the handler", got)
	}
}
