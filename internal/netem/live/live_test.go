package live

import (
	"sync"
	"testing"
	"time"

	"swishmem/internal/netem"
	"swishmem/internal/sim"
	"swishmem/internal/timesync"
	"swishmem/internal/wire"
)

// collect gathers messages thread-safely.
type collect struct {
	mu   sync.Mutex
	msgs []wire.Msg
	from []netem.Addr
}

func (c *collect) handler(from netem.Addr, msg wire.Msg) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs = append(c.msgs, msg)
	c.from = append(c.from, from)
}

func (c *collect) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}

func mkMesh(t *testing.T, n int, opts Options) []*Node {
	t.Helper()
	nodes := make([]*Node, n)
	for i := range nodes {
		node, err := Listen(netem.Addr(i+1), opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		nodes[i] = node
	}
	Mesh(nodes)
	return nodes
}

func TestSendReceiveRealUDP(t *testing.T) {
	nodes := mkMesh(t, 2, Options{})
	var c collect
	nodes[1].SetHandler(c.handler)
	msg := &wire.Write{Reg: 3, Key: 42, Seq: 7, WriteID: 9, Writer: 1, Epoch: 2, Value: []byte("live!")}
	if err := nodes[0].Send(2, msg); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return c.count() == 1 })
	got := c.msgs[0].(*wire.Write)
	if got.Key != 42 || string(got.Value) != "live!" {
		t.Fatalf("got %+v", got)
	}
	if c.from[0] != 1 {
		t.Fatalf("from = %d", c.from[0])
	}
	if nodes[0].Stats().Sent != 1 {
		t.Fatal("sent counter")
	}
}

func TestAllMessageTypesRoundTripOverUDP(t *testing.T) {
	nodes := mkMesh(t, 2, Options{})
	var c collect
	nodes[1].SetHandler(c.handler)
	msgs := []wire.Msg{
		&wire.Write{Reg: 1, Key: 2, Value: []byte("v")},
		&wire.WriteAck{Reg: 1, Key: 2, Seq: 3},
		&wire.ReadFwd{Reg: 1, Key: 2, ReqID: 4, Origin: 1},
		&wire.ReadReply{Reg: 1, Key: 2, ReqID: 4, Value: []byte("r")},
		&wire.EWOUpdate{Reg: 1, From: 1, Entries: []wire.EWOEntry{
			{Key: 5, Stamp: timesync.Stamp{Time: 9, Node: 1}, Value: []byte{1}}}},
		&wire.Heartbeat{From: 1, Seq: 11},
		&wire.ChainConfig{Epoch: 1, Members: []uint16{1, 2}},
		&wire.GroupConfig{Epoch: 1, Members: []uint16{1, 2}},
	}
	for _, m := range msgs {
		if err := nodes[0].Send(2, m); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return c.count() == len(msgs) })
	seen := map[wire.Type]bool{}
	c.mu.Lock()
	for _, m := range c.msgs {
		seen[m.WireType()] = true
	}
	c.mu.Unlock()
	if len(seen) != len(msgs) {
		t.Fatalf("only %d distinct types arrived", len(seen))
	}
}

func TestMulticast(t *testing.T) {
	nodes := mkMesh(t, 4, Options{})
	cols := make([]*collect, 4)
	for i, n := range nodes {
		cols[i] = &collect{}
		n.SetHandler(cols[i].handler)
	}
	group := []netem.Addr{1, 2, 3, 4}
	nodes[0].Multicast(group, &wire.Heartbeat{From: 1, Seq: 5})
	waitFor(t, func() bool {
		return cols[1].count() == 1 && cols[2].count() == 1 && cols[3].count() == 1
	})
	if cols[0].count() != 0 {
		t.Fatal("multicast delivered to sender")
	}
}

func TestUnknownPeer(t *testing.T) {
	nodes := mkMesh(t, 1, Options{})
	if err := nodes[0].Send(99, &wire.Heartbeat{}); err == nil {
		t.Fatal("send to unregistered peer succeeded")
	}
}

func TestInjectedLoss(t *testing.T) {
	nodes := mkMesh(t, 2, Options{})
	// Receiver drops ~half.
	lossy, err := Listen(9, Options{LossRate: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer lossy.Close()
	nodes[0].AddPeer(9, lossy.UDPAddr())
	var c collect
	lossy.SetHandler(c.handler)
	const N = 400
	for i := 0; i < N; i++ {
		if err := nodes[0].Send(9, &wire.Heartbeat{From: 1, Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
		if i%50 == 49 {
			time.Sleep(time.Millisecond) // avoid socket buffer overrun
		}
	}
	waitFor(t, func() bool {
		s := lossy.Stats()
		return s.Received+s.Dropped >= N*9/10 // most datagrams arrived at the socket
	})
	s := lossy.Stats()
	if s.Dropped == 0 {
		t.Fatal("no injected loss")
	}
	if c.count() == 0 {
		t.Fatal("everything dropped")
	}
	ratio := float64(s.Dropped) / float64(s.Received+s.Dropped)
	if ratio < 0.3 || ratio > 0.7 {
		t.Fatalf("loss ratio %.2f, want ~0.5", ratio)
	}
}

func TestGarbageIgnored(t *testing.T) {
	nodes := mkMesh(t, 2, Options{})
	var c collect
	nodes[1].SetHandler(c.handler)
	// Raw garbage straight to the socket.
	conn := nodes[0].conn
	if _, err := conn.WriteToUDP([]byte{0xff}, nodes[1].UDPAddr()); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.WriteToUDP([]byte{0, 1, 0xee, 0xee}, nodes[1].UDPAddr()); err != nil {
		t.Fatal(err)
	}
	// Then a valid message, which must still get through.
	if err := nodes[0].Send(2, &wire.Heartbeat{From: 1}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return c.count() == 1 })
	if nodes[1].Stats().DecodeErr == 0 {
		t.Fatal("garbage not counted")
	}
}

func TestCloseIdempotent(t *testing.T) {
	n, err := Listen(1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLiveChainReplication runs a minimal chain-replication exchange over
// real sockets: writer -> head -> tail -> ack, all via wire messages. It
// demonstrates the protocol messages suffice to coordinate over a real
// datagram network, not just the simulator.
func TestLiveChainReplication(t *testing.T) {
	nodes := mkMesh(t, 3, Options{}) // 1=writer/head, 2=mid, 3=tail
	type entry struct {
		seq uint64
		val []byte
	}
	stores := [3]map[uint64]entry{{}, {}, {}}
	var mu sync.Mutex
	acked := make(chan *wire.WriteAck, 1)

	for i, n := range nodes {
		i, n := i, n
		n.SetHandler(func(from netem.Addr, msg wire.Msg) {
			mu.Lock()
			defer mu.Unlock()
			switch m := msg.(type) {
			case *wire.Write:
				if m.Seq == 0 { // head assigns
					m.Seq = uint64(len(stores[i]) + 1)
				}
				if cur, ok := stores[i][m.Key]; !ok || m.Seq > cur.seq {
					stores[i][m.Key] = entry{m.Seq, m.Value}
				}
				if i < 2 {
					n.Send(netem.Addr(i+2), m) // forward down the chain
				} else {
					n.Send(netem.Addr(m.Writer), &wire.WriteAck{
						Reg: m.Reg, Key: m.Key, Seq: m.Seq, WriteID: m.WriteID, Writer: m.Writer})
				}
			case *wire.WriteAck:
				select {
				case acked <- m:
				default:
				}
			}
		})
	}
	// Writer (node 1) submits to itself as head.
	w := &wire.Write{Reg: 1, Key: 77, WriteID: 1, Writer: 1, Value: []byte("over-udp")}
	mu.Lock()
	stores[0][77] = entry{1, w.Value}
	mu.Unlock()
	fwd := *w
	fwd.Seq = 1
	if err := nodes[0].Send(2, &fwd); err != nil {
		t.Fatal(err)
	}
	select {
	case ack := <-acked:
		if ack.Key != 77 {
			t.Fatalf("ack = %+v", ack)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no ack over live transport")
	}
	mu.Lock()
	defer mu.Unlock()
	for i := range stores {
		if string(stores[i][77].val) != "over-udp" {
			t.Fatalf("replica %d missing value", i+1)
		}
	}
}

// TestLiveEWOGossip runs the EWO counter merge discipline over real UDP
// with injected loss: three nodes increment per-node slots, multicast
// announcements, and periodically gossip full state until all converge to
// the exact total — the §6.2 protocol carried by real datagrams.
func TestLiveEWOGossip(t *testing.T) {
	const n = 3
	nodes := make([]*Node, n)
	for i := range nodes {
		node, err := Listen(netem.Addr(i+1), Options{LossRate: 0.3, Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		nodes[i] = node
	}
	Mesh(nodes)
	group := []netem.Addr{1, 2, 3}

	var mu sync.Mutex
	slots := make([]map[uint16]uint64, n) // per node: owner -> value
	for i := range slots {
		slots[i] = make(map[uint16]uint64)
	}
	for i, node := range nodes {
		i, node := i, node
		node.SetHandler(func(from netem.Addr, msg wire.Msg) {
			u, ok := msg.(*wire.EWOUpdate)
			if !ok {
				return
			}
			mu.Lock()
			for _, e := range u.Entries {
				owner := uint16(e.Stamp.Node)
				if v := uint64(e.Stamp.Time); v > slots[i][owner] {
					slots[i][owner] = v
				}
			}
			mu.Unlock()
		})
	}
	// Each node increments its slot 50 times, announcing each (lossy).
	for step := uint64(1); step <= 50; step++ {
		for i, node := range nodes {
			self := uint16(i + 1)
			mu.Lock()
			slots[i][self] = step
			mu.Unlock()
			node.Multicast(group, &wire.EWOUpdate{Reg: 1, From: self, Entries: []wire.EWOEntry{{
				Key: 1, Stamp: timesync.Stamp{Time: sim.Time(step), Node: timesync.NodeID(self)}}}})
		}
	}
	// Gossip rounds: each node announces its full known state.
	sum := func(i int) uint64 {
		mu.Lock()
		defer mu.Unlock()
		var s uint64
		for _, v := range slots[i] {
			s += v
		}
		return s
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for i := range nodes {
			if sum(i) != 150 {
				done = false
			}
		}
		if done {
			return
		}
		for i, node := range nodes {
			mu.Lock()
			var entries []wire.EWOEntry
			for owner, v := range slots[i] {
				entries = append(entries, wire.EWOEntry{
					Key: 1, Stamp: timesync.Stamp{Time: sim.Time(v), Node: timesync.NodeID(owner)}})
			}
			mu.Unlock()
			node.Multicast(group, &wire.EWOUpdate{Reg: 1, From: uint16(i + 1), Sync: true, Entries: entries})
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("no convergence over lossy UDP: sums %d %d %d", sum(0), sum(1), sum(2))
}
