// Package netem emulates the unreliable inter-switch network that SwiShmem
// protocols run over. It is built on the deterministic simulator: messages
// between attached nodes experience configurable latency, jitter,
// bandwidth-limited serialization delay, loss, duplication, and reordering;
// links and nodes can fail and recover; node groups can be partitioned.
//
// The paper's §3.4 challenges — "packets can be dropped, and links and
// switches may fail" with no TCP available — are exactly the properties this
// package injects. Per-link and global byte accounting support the bandwidth
// overhead experiments (E3, E11).
//
// Messages carry an opaque typed payload plus an explicit wire size. In
// simulation mode protocol layers exchange typed messages directly and
// declare the size their wire encoding would have (the encodings themselves
// are implemented and tested in internal/wire and used verbatim by the live
// UDP transport in netem/live).
//
// # Sharded execution
//
// A network built with NewSharded spans the engines of a sim.Group: each
// attached node lives on one shard, sends execute on the sender's shard,
// and deliveries execute on the destination's shard. Same-shard deliveries
// take the exact sequential path; cross-shard deliveries are appended to a
// per-shard outbox (owned by the sending shard's goroutine, so no locks)
// and injected into destination queues at the group's window barrier.
// Determinism does not depend on the injection order: every delivery
// carries a (timestamp, directed-link, per-link-sequence) key and engine
// queues order events by that key, so a sharded run executes deliveries in
// exactly the order a sequential run would (see internal/sim/shard.go).
//
// All model randomness (loss, jitter, reorder, duplication) comes from
// per-link streams seeded by (engine seed, from, to) — never from the
// shared engine source — so the draw sequence of one link is independent of
// traffic on other links and of how links are spread across shards.
package netem

import (
	"fmt"
	"math/rand"
	"reflect"
	"slices"
	"sort"

	"swishmem/internal/obs"
	"swishmem/internal/sim"
)

// Addr identifies an attached node (a switch or the central controller).
type Addr uint16

// Handler receives delivered messages.
type Handler func(from Addr, payload any, size int)

// Releasable is implemented by pooled payloads (e.g. wire.EWOUpdate). The
// network takes one reference per scheduled delivery and releases it when
// the delivery is dropped in flight; when the payload reaches a handler the
// reference passes to the receiver, which must release it after processing.
// Payloads that do not implement Releasable are unaffected.
type Releasable interface {
	Ref()
	Release()
}

// RemoteMsg is implemented by payloads that cannot be shared across shard
// boundaries by pointer: pooled messages (their free lists belong to the
// creating shard) and messages the receiver mutates. When a delivery
// crosses shards the network calls CloneRemote at the barrier and hands the
// clone to the destination, releasing the original on the sending side —
// the shard boundary acts as a serialization boundary, exactly like the
// live UDP transport's encode/decode. Clones must not be pooled.
//
// Payloads implementing Releasable but not RemoteMsg cannot cross shards
// (the network panics): a pooled object must never be released from a
// foreign shard. Plain payloads pass by pointer; ownership transfers to
// the receiver, and the sender must treat the object as immutable after
// Send.
type RemoteMsg interface {
	CloneRemote() any
}

// RemotePooled is an optional extension of RemoteMsg for payloads that cross
// shards on the hot path (EWO updates, heartbeats). Instead of a fresh
// allocation per crossing, the network keeps a free list of clones per
// (destination shard, concrete type): the barrier pops a drained clone and
// asks the payload to refill it, and the receiving shard's final Release
// pushes it back via the recycle hook. The barrier and the shard windows
// strictly alternate, so the pool needs no locking, and steady-state
// cross-shard traffic allocates nothing.
type RemotePooled interface {
	RemoteMsg
	// CloneRemotePooled deep-copies the message for the receiving shard.
	// prev, when non-nil, is an earlier clone of the same concrete type whose
	// receiver has fully released it; its storage must be reused. The clone
	// must hand itself to recycle when its reference count drains (bind the
	// hook once per object — a reused prev already carries it) and must come
	// back holding exactly one reference for the receiver to release.
	CloneRemotePooled(prev any, recycle func(any)) any
}

// PoolAware is implemented by payload types whose Releasable plumbing is
// armed per instance (wire.EnablePool): an instance reporting Pooled()
// false has no free list to corrupt and crosses shards by pointer like any
// plain payload. Without this probe, adding Ref/Release methods to a type
// would force every instance — including the simulator's plain, unpooled
// messages — through the clone-or-panic path at shard boundaries.
type PoolAware interface {
	Pooled() bool
}

// DenyMode is an administrative block on one direction of a link — the
// iptables analog of the fault model (pumba/aerolab distinguish a REJECT
// rule, which surfaces an ICMP error to the sender, from a DROP rule, which
// blackholes silently).
type DenyMode uint8

// Deny modes.
const (
	// DenyNone lets traffic flow (the default).
	DenyNone DenyMode = iota
	// DenyBlackhole silently drops every message (iptables DROP): the
	// sender learns nothing.
	DenyBlackhole
	// DenyReject drops every message and schedules a reject notification
	// back to the sender after a round trip (iptables REJECT / ICMP
	// port-unreachable). Senders observe it via SetRejectHandler.
	DenyReject
)

// LinkProfile describes the behaviour of one direction of a link. Links are
// directed: SetLink applies a profile to both directions as sugar, while
// SetOneWayLink shapes a single direction (asymmetric faults — egress-only
// loss, one-way heartbeat blackholes).
type LinkProfile struct {
	// Latency is the propagation delay.
	Latency sim.Duration
	// Jitter adds a uniform random delay in [0, Jitter].
	Jitter sim.Duration
	// BandwidthBps is the link rate in bits per second; 0 means infinite
	// (no serialization delay or queueing).
	BandwidthBps float64
	// LossRate is the probability a message is silently dropped.
	LossRate float64
	// DupRate is the probability a message is delivered twice.
	DupRate float64
	// ReorderRate is the probability a message gets an extra delay of up to
	// ReorderLagMax, letting later messages overtake it.
	ReorderRate float64
	// LossEveryN, when >= 1, deterministically drops every Nth message on
	// the link (pumba's periodic-loss mode): the link counts sends and the
	// Nth, 2Nth, ... are dropped. Unlike LossRate this consumes no
	// randomness, so the anomaly pattern is exactly periodic.
	LossEveryN int
	// CorruptRate is the probability a message's payload is corrupted in
	// flight. A corrupted message never reaches its destination handler —
	// the model of a datagram failing its checksum / decode at the receiver
	// — but the network offers the (bit-flipped) encoding to the registered
	// CorruptionChecker first, which proves the wire decoder survives it.
	CorruptRate float64
	// Deny administratively blocks the direction (see DenyMode).
	Deny DenyMode
}

// DataCenter is a typical intra-DC link: 10us latency, 100Gbps, lossless.
func DataCenter() LinkProfile {
	return LinkProfile{Latency: 10_000, BandwidthBps: 100e9}
}

// Lossy returns profile p with the given loss rate.
func (p LinkProfile) Lossy(rate float64) LinkProfile { p.LossRate = rate; return p }

// DupLag is the extra delay of the second copy of a duplicated message:
// half a propagation delay, plus one tick so the duplicate never ties with
// the original.
func (p LinkProfile) DupLag() sim.Duration { return p.Latency/2 + 1 }

// ReorderLagMax bounds the extra delay a reordered message can pick up
// (uniform in [0, ReorderLagMax]).
func (p LinkProfile) ReorderLagMax() sim.Duration { return 4 * p.Latency }

// MinDelay is the smallest possible send-to-arrival delay on the link.
// Every stochastic component (jitter, serialization, reorder lag, DupLag)
// is non-negative, so no delivery — duplicated or reordered — ever arrives
// earlier than Latency after its send. This is the lookahead invariant the
// parallel simulation relies on: the conservative window width derived from
// cross-shard MinDelay values can never be violated by a reordered or
// duplicated copy.
func (p LinkProfile) MinDelay() sim.Duration { return p.Latency }

// LinkStats accumulates per-direction accounting.
type LinkStats struct {
	MsgsSent     uint64
	BytesSent    uint64
	MsgsDropped  uint64 // loss + down-link + partition + deny + nth + corrupt drops
	MsgsDeliv    uint64
	BytesDeliv   uint64
	MsgsDup      uint64
	MsgsCorrupt  uint64 // dropped by CorruptRate (subset of MsgsDropped)
	MsgsRejected uint64 // dropped by DenyReject (subset of MsgsDropped)
}

func (s *LinkStats) add(o *LinkStats) {
	s.MsgsSent += o.MsgsSent
	s.BytesSent += o.BytesSent
	s.MsgsDropped += o.MsgsDropped
	s.MsgsDeliv += o.MsgsDeliv
	s.BytesDeliv += o.BytesDeliv
	s.MsgsDup += o.MsgsDup
	s.MsgsCorrupt += o.MsgsCorrupt
	s.MsgsRejected += o.MsgsRejected
}

// link is one direction of a pair. Its fields are split by owner so a
// sharded run never writes the same word from two goroutines: everything
// except recv is touched only at send time (sender's shard); recv only at
// delivery time (destination's shard).
type link struct {
	profile   LinkProfile
	busyUntil sim.Time
	// rng drives this link's loss/jitter/reorder/dup draws. Seeded from
	// (engine seed, from, to) and created on first stochastic use, so
	// deterministic links (the common case) never pay for it.
	rng *rand.Rand
	// seq numbers scheduled arrivals; with the directed link id it forms
	// the delivery's deterministic ordering key.
	seq uint64
	// nth counts messages that reached the LossEveryN check (sender-owned,
	// no randomness): every LossEveryN-th is dropped. It survives profile
	// changes so back-to-back bursts keep the periodic phase.
	nth uint64
	// sent is the sender-owned half: MsgsSent/BytesSent/MsgsDup plus drops
	// decided at send time (loss, partition).
	sent LinkStats
	// recv is the receiver-owned half: MsgsDeliv/BytesDeliv plus drops
	// decided at arrival (down node, partition formed in flight).
	recv LinkStats
	// pending is the open delivery burst for this link: the most recently
	// scheduled arrival batch, joinable while later sends compute the same
	// arrival time. For a same-shard link it is touched at send and at fire,
	// both on the owning shard's goroutine; for a cross-shard link it is
	// touched at the barrier (coordinator, all shards quiescent) and at fire
	// (destination shard window), which strictly alternate. The fired burst
	// clears it, so it never dangles.
	pending *burst
}

// stats merges both halves into the public view.
func (l *link) statsMerged() LinkStats {
	s := l.sent
	s.MsgsDeliv = l.recv.MsgsDeliv
	s.BytesDeliv = l.recv.BytesDeliv
	s.MsgsDropped += l.recv.MsgsDropped
	return s
}

type endpoint struct {
	handler Handler
	up      bool
}

// crossMsg is one cross-shard delivery parked in a sender-shard outbox
// until the next window barrier.
type crossMsg struct {
	at       sim.Time
	khi, klo uint64
	l        *link
	from, to Addr
	payload  any
	size     int
}

// Network is the emulated fabric.
type Network struct {
	engines        []*sim.Engine
	group          *sim.Group // nil in sequential mode
	shardOf        func(Addr) int
	seed           int64
	defaultProfile LinkProfile
	nodes          map[Addr]*endpoint
	links          map[[2]Addr]*link
	partition      map[Addr]int // group id; different nonzero groups can't talk
	// totals are per executing shard (one row in sequential mode); Totals
	// sums them so no row is ever written from two goroutines.
	totals []LinkStats
	// coalesce enables burst delivery: a run of sends arriving on the same
	// directed link at the same virtual time rides one queued event instead
	// of N. Deliveries of one link at one timestamp are already consecutive
	// in the (khi, klo) event order, so bursting is invisible to the model —
	// order, stats, event counts, and traces are byte-identical either way
	// (the burst credits the coalesced dispatches back, see burst.deliver).
	// On by default; SetCoalesce(false) restores one event per arrival.
	coalesce bool
	// dfree pools in-flight delivery records, one free list per shard: a
	// record is always taken and returned on the destination's shard (same-
	// shard sends run there already; cross-shard records materialize at the
	// single-threaded barrier).
	dfree [][]*delivery
	// bfree pools burst records with the same shard discipline as dfree.
	bfree [][]*burst
	// outbox parks cross-shard deliveries per sending shard.
	outbox [][]crossMsg
	// rfree pools shard-crossing clones per destination shard and concrete
	// payload type (see RemotePooled); recycleTo[i] is the bound release
	// hook feeding shard i's pool.
	rfree     []map[reflect.Type][]any
	recycleTo []func(any)
	// corruptCheck, when set, is invoked for every message the CorruptRate
	// draw condemns, before the drop (see SetCorruptionChecker).
	corruptCheck CorruptionChecker
	// rejectHandlers maps a sender address to its ICMP-analog callback for
	// DenyReject notifications (see SetRejectHandler).
	rejectHandlers map[Addr]func(to Addr)
}

// CorruptionChecker is called at send time, on the sending shard, for every
// message the CorruptRate draw selects. It receives the link's private
// random stream (positioned right after the corruption draw) so it can
// bit-flip a deterministic encoding of the payload and prove the wire
// decoder returns a clean error instead of panicking. Implementations must
// draw from rng deterministically (draw count independent of global state)
// and must not retain payload. The cluster facade installs a checker that
// marshals wire messages into per-shard scratch buffers.
type CorruptionChecker func(shard int, rng *rand.Rand, from, to Addr, payload any, size int)

// SetCorruptionChecker installs the decode-proof hook for corrupted
// messages. A driver operation: set it before the run starts. Passing nil
// removes the hook (corrupted messages are then dropped unchecked).
func (n *Network) SetCorruptionChecker(c CorruptionChecker) { n.corruptCheck = c }

// SetRejectHandler registers the callback invoked on from's shard when a
// message from sent hits a DenyReject direction: the emulated ICMP
// port-unreachable. The notification arrives one round trip (2x the link
// latency, plus a tick) after the send, as a local event on the sender's
// shard. Passing nil removes the handler; with no handler the reject is
// still counted in MsgsRejected but the sender learns nothing.
func (n *Network) SetRejectHandler(from Addr, fn func(to Addr)) {
	if n.rejectHandlers == nil {
		n.rejectHandlers = make(map[Addr]func(to Addr))
	}
	if fn == nil {
		delete(n.rejectHandlers, from)
		return
	}
	n.rejectHandlers[from] = fn
}

// FlipBits flips n distinct bits of frame in place, drawing positions from
// rng (exactly 2 draws per flip). It is the shared corruption primitive: the sim
// fabric's decode-proof checker, the live transport's tx corruption, and
// the fuzz-corpus harvester all use it so corrupted frames look alike
// everywhere. A zero-length frame is left untouched (no draws).
func FlipBits(rng *rand.Rand, frame []byte, n int) {
	bits := len(frame) * 8
	if bits == 0 {
		return
	}
	if n > bits {
		n = bits
	}
	// Exactly 2 draws per flip: the draw count is part of the sim link
	// stream's byte-identity contract, so a collision advances to the next
	// bit deterministically instead of redrawing. Sampling with replacement
	// could hit one bit twice, cancel the flips, and deliver the frame
	// intact — "corrupt" must corrupt.
	flipped := make([]int, 0, n)
	for i := 0; i < n; i++ {
		p := rng.Intn(len(frame))*8 + rng.Intn(8)
		for slices.Contains(flipped, p) {
			p = (p + 1) % bits
		}
		flipped = append(flipped, p)
		frame[p/8] ^= 1 << uint(p%8)
	}
}

// delivery is one scheduled message arrival. Its run closure is bound once
// when the record is first created and reused for the record's lifetime.
type delivery struct {
	n        *Network
	l        *link
	from, to Addr
	payload  any
	size     int
	shard    int // destination shard: the pool the record returns to
	run      func()
}

func (n *Network) getDelivery(shard int) *delivery {
	free := n.dfree[shard]
	if ln := len(free); ln > 0 {
		d := free[ln-1]
		free[ln-1] = nil
		n.dfree[shard] = free[:ln-1]
		return d
	}
	d := &delivery{n: n, shard: shard}
	d.run = d.deliver
	return d
}

func (d *delivery) deliver() {
	n, l := d.n, d.l
	from, to, payload, size := d.from, d.to, d.payload, d.size
	// Return the record to the pool before invoking the handler so nested
	// sends can reuse it; all needed fields are copied out above.
	d.l, d.payload = nil, nil
	n.dfree[d.shard] = append(n.dfree[d.shard], d)

	eng := n.engines[d.shard]
	dst, ok := n.nodes[to]
	if !ok || !dst.up || n.partitioned(from, to) {
		l.recv.MsgsDropped++
		n.totals[d.shard].MsgsDropped++
		if tr := eng.Tracer(); tr.Enabled() {
			rec := tr.Emit(obs.PhaseInstant, int64(eng.Now()), 0, obs.PidFabric, "net", "drop.recv")
			rec.K1, rec.V1 = "from", int64(from)
			rec.K2, rec.V2 = "to", int64(to)
		}
		if r, ok := payload.(Releasable); ok {
			r.Release()
		}
		return
	}
	l.recv.MsgsDeliv++
	l.recv.BytesDeliv += uint64(size)
	n.totals[d.shard].MsgsDeliv++
	n.totals[d.shard].BytesDeliv += uint64(size)
	// The delivery's payload reference passes to the receiver here.
	dst.handler(from, payload, size)
}

// burstItem is one coalesced arrival inside a burst.
type burstItem struct {
	payload any
	size    int
}

// burst is one scheduled arrival event carrying the run of deliveries that
// share a directed link and an arrival time. The ordering key of the first
// member places the whole run: same-(link, time) deliveries are consecutive
// in the event order anyway (one khi, ascending klo), so delivering members
// back-to-back reproduces the uncoalesced order exactly while paying the
// heap push/pop and pool round-trip once per run instead of once per
// message.
type burst struct {
	n        *Network
	l        *link
	from, to Addr
	at       sim.Time
	shard    int // destination shard: the pool the record returns to
	items    []burstItem
	run      func()
}

func (n *Network) getBurst(shard int) *burst {
	free := n.bfree[shard]
	if ln := len(free); ln > 0 {
		b := free[ln-1]
		free[ln-1] = nil
		n.bfree[shard] = free[:ln-1]
		return b
	}
	b := &burst{n: n, shard: shard}
	b.run = b.deliver
	return b
}

func (b *burst) deliver() {
	n, l := b.n, b.l
	from, to := b.from, b.to
	// Close the burst before delivering: a send executed by a handler below
	// (even at this same timestamp) must open a fresh burst, never join a
	// fired one. The guard matters because a dup/reorder arrival may have
	// replaced pending with a later burst of this link.
	if l.pending == b {
		l.pending = nil
	}
	shard := b.shard
	eng := n.engines[shard]
	items := b.items
	// The k-1 dispatches this event coalesced away still count as events
	// (and still emit their trace instants below): event totals and traces
	// are model-visible, and the determinism contract keeps them identical
	// with coalescing on or off.
	eng.CreditEvents(uint64(len(items) - 1))
	for i := range items {
		payload, size := items[i].payload, items[i].size
		items[i] = burstItem{}
		if i > 0 {
			eng.EmitEventInstant()
		}
		// Re-check the destination per member: a handler may take the node
		// down mid-burst, and the remaining members must drop exactly as
		// their individual delivery events would have.
		dst, ok := n.nodes[to]
		if !ok || !dst.up || n.partitioned(from, to) {
			l.recv.MsgsDropped++
			n.totals[shard].MsgsDropped++
			if tr := eng.Tracer(); tr.Enabled() {
				rec := tr.Emit(obs.PhaseInstant, int64(eng.Now()), 0, obs.PidFabric, "net", "drop.recv")
				rec.K1, rec.V1 = "from", int64(from)
				rec.K2, rec.V2 = "to", int64(to)
			}
			if r, ok := payload.(Releasable); ok {
				r.Release()
			}
			continue
		}
		l.recv.MsgsDeliv++
		l.recv.BytesDeliv += uint64(size)
		n.totals[shard].MsgsDeliv++
		n.totals[shard].BytesDeliv += uint64(size)
		// Each member's payload reference passes to the receiver here.
		dst.handler(from, payload, size)
	}
	b.items = items[:0]
	b.l = nil
	n.bfree[shard] = append(n.bfree[shard], b)
}

// New creates a network over eng where unset links use defaultProfile.
func New(eng *sim.Engine, defaultProfile LinkProfile) *Network {
	return &Network{
		engines:        []*sim.Engine{eng},
		seed:           eng.Seed(),
		defaultProfile: defaultProfile,
		nodes:          make(map[Addr]*endpoint),
		links:          make(map[[2]Addr]*link),
		partition:      make(map[Addr]int),
		coalesce:       true,
		totals:         make([]LinkStats, 1),
		dfree:          make([][]*delivery, 1),
		bfree:          make([][]*burst, 1),
		outbox:         make([][]crossMsg, 1),
	}
}

// NewSharded creates a network spanning the engines of a sim.Group.
// shardOf maps every address that will ever be attached to its shard (it
// must be pure and total). The network registers its cross-shard outbox
// drain as a group barrier hook.
//
// Topology mutations (Attach, Detach, SetLink, Partition, SetNodeUp, stats
// reads) are driver operations: they may only happen between Group.RunUntil
// calls, never from model callbacks, because shard goroutines read the
// topology maps without locks while a window runs.
func NewSharded(g *sim.Group, defaultProfile LinkProfile, shardOf func(Addr) int) *Network {
	engines := g.Engines()
	n := &Network{
		engines:        engines,
		group:          g,
		shardOf:        shardOf,
		seed:           engines[0].Seed(),
		defaultProfile: defaultProfile,
		nodes:          make(map[Addr]*endpoint),
		links:          make(map[[2]Addr]*link),
		partition:      make(map[Addr]int),
		coalesce:       true,
		totals:         make([]LinkStats, len(engines)),
		dfree:          make([][]*delivery, len(engines)),
		bfree:          make([][]*burst, len(engines)),
		outbox:         make([][]crossMsg, len(engines)),
		rfree:          make([]map[reflect.Type][]any, len(engines)),
		recycleTo:      make([]func(any), len(engines)),
	}
	for i := range n.rfree {
		pool := make(map[reflect.Type][]any)
		n.rfree[i] = pool
		n.recycleTo[i] = func(x any) {
			t := reflect.TypeOf(x)
			pool[t] = append(pool[t], x)
		}
	}
	g.AddFlush(n.flushCross)
	return n
}

// Engine returns the underlying simulation engine (shard 0's when sharded).
func (n *Network) Engine() *sim.Engine { return n.engines[0] }

// SetCoalesce enables or disables burst delivery (on by default). A driver
// operation: call it between runs, never from model callbacks. Both settings
// produce byte-identical runs — the knob exists for that A/B proof and for
// isolating the optimization when profiling.
func (n *Network) SetCoalesce(on bool) { n.coalesce = on }

// shardIdx maps an address to its shard (always 0 in sequential mode).
func (n *Network) shardIdx(a Addr) int {
	if n.shardOf == nil {
		return 0
	}
	return n.shardOf(a)
}

// engineFor returns the engine that owns a's events.
func (n *Network) engineFor(a Addr) *sim.Engine { return n.engines[n.shardIdx(a)] }

// Attach registers a node; messages addressed to addr invoke h. Attaching an
// existing address replaces its handler (used when a failed switch is
// replaced by a fresh one). In sharded mode attaching also materializes the
// links between addr and every other known node, so the hot send path never
// inserts into the links map concurrently.
func (n *Network) Attach(addr Addr, h Handler) {
	n.nodes[addr] = &endpoint{handler: h, up: true}
	if n.group != nil {
		for other := range n.nodes {
			if other == addr {
				continue
			}
			n.linkFor(addr, other)
			n.linkFor(other, addr)
		}
	}
}

// Detach removes a node entirely. Its links remain materialized.
func (n *Network) Detach(addr Addr) { delete(n.nodes, addr) }

// SetNodeUp marks a node up or down. A down node neither sends nor receives —
// this is the fail-stop switch failure model of §6.3.
func (n *Network) SetNodeUp(addr Addr, up bool) {
	if ep, ok := n.nodes[addr]; ok {
		ep.up = up
	}
}

// NodeUp reports whether addr is attached and up.
func (n *Network) NodeUp(addr Addr) bool {
	ep, ok := n.nodes[addr]
	return ok && ep.up
}

// SetLink configures both directions between a and b with profile.
func (n *Network) SetLink(a, b Addr, profile LinkProfile) {
	n.linkFor(a, b).profile = profile
	n.linkFor(b, a).profile = profile
}

// SetOneWayLink configures only the a->b direction.
func (n *Network) SetOneWayLink(a, b Addr, profile LinkProfile) {
	n.linkFor(a, b).profile = profile
}

func (n *Network) linkFor(a, b Addr) *link {
	k := [2]Addr{a, b}
	l, ok := n.links[k]
	if !ok {
		l = &link{profile: n.defaultProfile}
		n.links[k] = l
	}
	return l
}

// sendLink is linkFor for the hot path: in sharded mode every link a send
// can use was materialized at Attach, so a miss is a contract violation
// (it would race on the map), not a condition to repair.
func (n *Network) sendLink(a, b Addr) *link {
	if l, ok := n.links[[2]Addr{a, b}]; ok {
		return l
	}
	if n.group != nil {
		panic(fmt.Sprintf("netem: send %d->%d on a link never materialized by Attach", a, b))
	}
	return n.linkFor(a, b)
}

// linkRand returns the link's private random stream, creating it on first
// stochastic use. The seed depends only on (engine seed, from, to): the
// stream is identical no matter when the link first draws, what other links
// do, or how nodes are sharded.
func (n *Network) linkRand(l *link, from, to Addr) *rand.Rand {
	if l.rng == nil {
		l.rng = rand.New(rand.NewSource(linkSeed(n.seed, from, to)))
	}
	return l.rng
}

// linkSeed mixes the engine seed with the directed pair (splitmix64
// finalizer, same family as the deterministic HashIndex).
func linkSeed(seed int64, from, to Addr) int64 {
	z := uint64(seed) ^ 0x9e3779b97f4a7c15 ^ uint64(from)<<32 ^ uint64(to)<<16
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Profile returns the profile of the a->b direction: the configured link,
// or the network default when the pair was never configured or used. It
// never materializes a link.
func (n *Network) Profile(a, b Addr) LinkProfile {
	if l, ok := n.links[[2]Addr{a, b}]; ok {
		return l.profile
	}
	return n.defaultProfile
}

// MinCrossShardLatency returns the smallest MinDelay over directed links
// whose endpoints live on different shards. The network default is always
// included (any not-yet-configured pair falls back to it), making the
// result safe for pairs that have never talked. This is the fabric's
// contribution to the group lookahead; the cluster recomputes it after
// every profile change.
func (n *Network) MinCrossShardLatency() sim.Duration {
	min := n.defaultProfile.MinDelay()
	for k, l := range n.links {
		if n.shardIdx(k[0]) != n.shardIdx(k[1]) {
			if d := l.profile.MinDelay(); d < min {
				min = d
			}
		}
	}
	return min
}

// Partition assigns nodes to partition groups. Nodes in different nonzero
// groups cannot exchange messages; group 0 (the default) talks to everyone.
func (n *Network) Partition(group int, addrs ...Addr) {
	for _, a := range addrs {
		n.partition[a] = group
	}
}

// HealPartition returns all nodes to group 0.
func (n *Network) HealPartition() { n.partition = make(map[Addr]int) }

func (n *Network) partitioned(a, b Addr) bool {
	ga, gb := n.partition[a], n.partition[b]
	return ga != 0 && gb != 0 && ga != gb
}

// Send transmits payload of the given wire size from->to. It reports whether
// the message entered the network (false if the sender is down/unknown).
// Delivery is never guaranteed. Send must run on the sending node's shard
// (model callbacks do so naturally) or in driver code between runs.
func (n *Network) Send(from, to Addr, payload any, size int) bool {
	if size < 0 {
		panic(fmt.Sprintf("netem: negative size %d", size))
	}
	src, ok := n.nodes[from]
	if !ok || !src.up {
		return false
	}
	l := n.sendLink(from, to)
	eng := n.engineFor(from)
	shard := n.shardIdx(from)
	l.sent.MsgsSent++
	l.sent.BytesSent += uint64(size)
	n.totals[shard].MsgsSent++
	n.totals[shard].BytesSent += uint64(size)

	if n.partitioned(from, to) {
		l.sent.MsgsDropped++
		n.totals[shard].MsgsDropped++
		n.traceDrop(eng, "drop.partition", from, to)
		return true
	}
	switch l.profile.Deny {
	case DenyBlackhole:
		l.sent.MsgsDropped++
		n.totals[shard].MsgsDropped++
		n.traceDrop(eng, "drop.blackhole", from, to)
		return true
	case DenyReject:
		l.sent.MsgsDropped++
		l.sent.MsgsRejected++
		n.totals[shard].MsgsDropped++
		n.totals[shard].MsgsRejected++
		n.traceDrop(eng, "drop.reject", from, to)
		// The ICMP analog: notify the sender after a round trip, as a local
		// event on its own shard (deterministic across shard layouts, and
		// exempt from the cross-shard lookahead floor).
		if h := n.rejectHandlers[from]; h != nil {
			eng.ScheduleAfter(2*l.profile.Latency+1, func() { h(to) })
		}
		return true
	}
	if l.profile.LossEveryN >= 1 {
		l.nth++
		if l.nth%uint64(l.profile.LossEveryN) == 0 {
			l.sent.MsgsDropped++
			n.totals[shard].MsgsDropped++
			n.traceDrop(eng, "drop.nth", from, to)
			return true
		}
	}
	if l.profile.CorruptRate > 0 && n.linkRand(l, from, to).Float64() < l.profile.CorruptRate {
		// Corruption drops the message — the model of a datagram failing its
		// decode at the receiver — but first the checker gets to prove the
		// real decoder survives the bit-flipped encoding. The checker's rng
		// draws are part of the link stream, so they are byte-reproducible.
		if n.corruptCheck != nil {
			n.corruptCheck(shard, n.linkRand(l, from, to), from, to, payload, size)
		}
		l.sent.MsgsDropped++
		l.sent.MsgsCorrupt++
		n.totals[shard].MsgsDropped++
		n.totals[shard].MsgsCorrupt++
		n.traceDrop(eng, "drop.corrupt", from, to)
		return true
	}
	if l.profile.LossRate > 0 && n.linkRand(l, from, to).Float64() < l.profile.LossRate {
		l.sent.MsgsDropped++
		n.totals[shard].MsgsDropped++
		n.traceDrop(eng, "drop.loss", from, to)
		return true
	}

	// Serialization delay with FIFO queueing at the sender side of the link.
	now := eng.Now()
	depart := now
	if l.profile.BandwidthBps > 0 {
		ser := sim.Duration(float64(size*8) / l.profile.BandwidthBps * 1e9)
		if l.busyUntil > now {
			depart = l.busyUntil
		}
		depart = depart.Add(ser)
		l.busyUntil = depart
	}
	delay := depart.Sub(now) + l.profile.Latency
	if l.profile.Jitter > 0 {
		delay += sim.Duration(n.linkRand(l, from, to).Int63n(int64(l.profile.Jitter) + 1))
	}
	if l.profile.ReorderRate > 0 && n.linkRand(l, from, to).Float64() < l.profile.ReorderRate {
		delay += sim.Duration(n.linkRand(l, from, to).Int63n(int64(l.profile.ReorderLagMax()) + 1))
	}

	n.scheduleDelivery(eng, shard, delay, l, from, to, payload, size)
	if l.profile.DupRate > 0 && n.linkRand(l, from, to).Float64() < l.profile.DupRate {
		l.sent.MsgsDup++
		n.totals[shard].MsgsDup++
		n.traceDrop(eng, "dup", from, to)
		n.scheduleDelivery(eng, shard, delay+l.profile.DupLag(), l, from, to, payload, size)
	}
	return true
}

// traceDrop emits a fabric instant for a loss/partition/duplication
// decision made at send time.
func (n *Network) traceDrop(eng *sim.Engine, name string, from, to Addr) {
	tr := eng.Tracer()
	if !tr.Enabled() {
		return
	}
	rec := tr.Emit(obs.PhaseInstant, int64(eng.Now()), 0, obs.PidFabric, "net", name)
	rec.K1, rec.V1 = "from", int64(from)
	rec.K2, rec.V2 = "to", int64(to)
}

// scheduleDelivery queues one arrival, taking a payload reference for pooled
// payloads. Each arrival gets its own pooled record (duplicates included)
// and a (directed link, sequence) ordering key assigned at send time, so
// its position among same-timestamp events is fixed before anyone knows
// which queue it lands in.
func (n *Network) scheduleDelivery(eng *sim.Engine, shard int, delay sim.Duration, l *link, from, to Addr, payload any, size int) {
	if delay < l.profile.MinDelay() {
		panic(fmt.Sprintf("netem: delivery delay %v below link MinDelay %v (lookahead invariant)", delay, l.profile.MinDelay()))
	}
	if r, ok := payload.(Releasable); ok {
		r.Ref()
	}
	if tr := eng.Tracer(); tr.Enabled() {
		// One flight span per scheduled arrival, covering send -> arrival.
		rec := tr.Emit(obs.PhaseSpan, int64(eng.Now()), int64(delay), obs.PidFabric, "net", "msg")
		rec.K1, rec.V1 = "from", int64(from)
		rec.K2, rec.V2 = "to", int64(to)
		rec.K3, rec.V3 = "bytes", int64(size)
	}
	khi := sim.KeyClassDeliver | uint64(from)<<16 | uint64(to)
	klo := l.seq
	l.seq++
	at := eng.Now().Add(delay)
	dst := n.shardIdx(to)
	if dst == shard {
		if n.coalesce {
			if b := l.pending; b != nil && b.at == at {
				b.items = append(b.items, burstItem{payload, size})
				return
			}
			b := n.getBurst(dst)
			b.l, b.from, b.to, b.at = l, from, to, at
			b.items = append(b.items, burstItem{payload, size})
			l.pending = b
			eng.ScheduleKeyed(at, khi, klo, b.run)
			return
		}
		d := n.getDelivery(dst)
		d.l, d.from, d.to, d.payload, d.size = l, from, to, payload, size
		eng.ScheduleKeyed(at, khi, klo, d.run)
		return
	}
	// Cross-shard: park in this shard's outbox; the barrier injects it.
	n.outbox[shard] = append(n.outbox[shard], crossMsg{
		at: at, khi: khi, klo: klo, l: l, from: from, to: to, payload: payload, size: size,
	})
}

// flushCross drains every shard outbox into the destination queues. It runs
// as a group barrier hook (all shards quiescent), which makes it safe to
// touch destination pools and to release sender-pooled payloads. Injection
// order is irrelevant for determinism — the events carry their merge keys —
// so a simple shard-order walk suffices.
func (n *Network) flushCross() {
	for si := range n.outbox {
		box := n.outbox[si]
		for i := range box {
			m := &box[i]
			payload := m.payload
			dst := n.shardIdx(m.to)
			if pm, ok := payload.(RemotePooled); ok {
				t := reflect.TypeOf(payload)
				var prev any
				if pool := n.rfree[dst][t]; len(pool) > 0 {
					prev = pool[len(pool)-1]
					pool[len(pool)-1] = nil
					n.rfree[dst][t] = pool[:len(pool)-1]
				}
				clone := pm.CloneRemotePooled(prev, n.recycleTo[dst])
				if r, ok := payload.(Releasable); ok {
					r.Release()
				}
				payload = clone
			} else if rm, ok := payload.(RemoteMsg); ok {
				clone := rm.CloneRemote()
				if r, ok := payload.(Releasable); ok {
					r.Release()
				}
				payload = clone
			} else if _, ok := payload.(Releasable); ok {
				if pa, ok := payload.(PoolAware); !ok || pa.Pooled() {
					panic(fmt.Sprintf("netem: pooled payload %T crossing shards must implement RemoteMsg", payload))
				}
				// Unpooled instance of a poolable type: plain-payload
				// semantics, passes by pointer.
			}
			// Burst grouping applies the same join-or-replace rule the send
			// path uses for same-shard links. A link's outbox entries appear
			// in send order (one sender shard per directed link), so the
			// bursts formed here are exactly the ones a sequential run forms
			// at send time — event counts and traces stay identical across
			// shard layouts.
			if n.coalesce {
				if b := m.l.pending; b != nil && b.at == m.at {
					b.items = append(b.items, burstItem{payload, m.size})
					*m = crossMsg{}
					continue
				}
				b := n.getBurst(dst)
				b.l, b.from, b.to, b.at = m.l, m.from, m.to, m.at
				b.items = append(b.items, burstItem{payload, m.size})
				m.l.pending = b
				n.engines[dst].ScheduleKeyed(m.at, m.khi, m.klo, b.run)
				*m = crossMsg{}
				continue
			}
			d := n.getDelivery(dst)
			d.l, d.from, d.to, d.payload, d.size = m.l, m.from, m.to, payload, m.size
			n.engines[dst].ScheduleKeyed(m.at, m.khi, m.klo, d.run)
			*m = crossMsg{}
		}
		n.outbox[si] = box[:0]
	}
}

// Multicast sends payload to every address in group except from itself.
// It models the switch multicast engine: one copy per destination.
func (n *Network) Multicast(from Addr, group []Addr, payload any, size int) {
	for _, to := range group {
		if to == from {
			continue
		}
		n.Send(from, to, payload, size)
	}
}

// Stats returns accounting for the a->b direction.
func (n *Network) Stats(a, b Addr) LinkStats { return n.linkFor(a, b).statsMerged() }

// EachLink invokes fn for every directed link the network knows about, in
// ascending (from, to) order so output built from it is deterministic.
// This closes the Stats/Totals asymmetry: Totals returns the global
// aggregate, but per-link stats used to be reachable only by asking for a
// (from, to) pair the caller already knew existed — exporters iterate here
// without any topology knowledge.
func (n *Network) EachLink(fn func(from, to Addr, s LinkStats)) {
	keys := make([][2]Addr, 0, len(n.links))
	for k := range n.links {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		fn(k[0], k[1], n.links[k].statsMerged())
	}
}

// Totals returns network-wide accounting (summed over shards).
func (n *Network) Totals() LinkStats {
	var s LinkStats
	for i := range n.totals {
		s.add(&n.totals[i])
	}
	return s
}

// ResetTotals zeroes all accounting (per-link and global); used between
// experiment phases.
func (n *Network) ResetTotals() {
	for i := range n.totals {
		n.totals[i] = LinkStats{}
	}
	for _, l := range n.links {
		l.sent = LinkStats{}
		l.recv = LinkStats{}
	}
}
