// Package netem emulates the unreliable inter-switch network that SwiShmem
// protocols run over. It is built on the deterministic simulator: messages
// between attached nodes experience configurable latency, jitter,
// bandwidth-limited serialization delay, loss, duplication, and reordering;
// links and nodes can fail and recover; node groups can be partitioned.
//
// The paper's §3.4 challenges — "packets can be dropped, and links and
// switches may fail" with no TCP available — are exactly the properties this
// package injects. Per-link and global byte accounting support the bandwidth
// overhead experiments (E3, E11).
//
// Messages carry an opaque typed payload plus an explicit wire size. In
// simulation mode protocol layers exchange typed messages directly and
// declare the size their wire encoding would have (the encodings themselves
// are implemented and tested in internal/wire and used verbatim by the live
// UDP transport in netem/live).
package netem

import (
	"fmt"
	"sort"

	"swishmem/internal/obs"
	"swishmem/internal/sim"
)

// Addr identifies an attached node (a switch or the central controller).
type Addr uint16

// Handler receives delivered messages.
type Handler func(from Addr, payload any, size int)

// Releasable is implemented by pooled payloads (e.g. wire.EWOUpdate). The
// network takes one reference per scheduled delivery and releases it when
// the delivery is dropped in flight; when the payload reaches a handler the
// reference passes to the receiver, which must release it after processing.
// Payloads that do not implement Releasable are unaffected.
type Releasable interface {
	Ref()
	Release()
}

// LinkProfile describes the behaviour of one direction of a link.
type LinkProfile struct {
	// Latency is the propagation delay.
	Latency sim.Duration
	// Jitter adds a uniform random delay in [0, Jitter].
	Jitter sim.Duration
	// BandwidthBps is the link rate in bits per second; 0 means infinite
	// (no serialization delay or queueing).
	BandwidthBps float64
	// LossRate is the probability a message is silently dropped.
	LossRate float64
	// DupRate is the probability a message is delivered twice.
	DupRate float64
	// ReorderRate is the probability a message gets an extra delay of up to
	// 4x Latency, letting later messages overtake it.
	ReorderRate float64
}

// DataCenter is a typical intra-DC link: 10us latency, 100Gbps, lossless.
func DataCenter() LinkProfile {
	return LinkProfile{Latency: 10_000, BandwidthBps: 100e9}
}

// Lossy returns profile p with the given loss rate.
func (p LinkProfile) Lossy(rate float64) LinkProfile { p.LossRate = rate; return p }

// LinkStats accumulates per-direction accounting.
type LinkStats struct {
	MsgsSent    uint64
	BytesSent   uint64
	MsgsDropped uint64 // loss + down-link + partition drops
	MsgsDeliv   uint64
	BytesDeliv  uint64
	MsgsDup     uint64
}

type link struct {
	profile   LinkProfile
	busyUntil sim.Time
	stats     LinkStats
}

type endpoint struct {
	handler Handler
	up      bool
}

// Network is the emulated fabric.
type Network struct {
	eng            *sim.Engine
	defaultProfile LinkProfile
	nodes          map[Addr]*endpoint
	links          map[[2]Addr]*link
	partition      map[Addr]int // group id; different nonzero groups can't talk
	totals         LinkStats
	// dfree pools in-flight delivery records so steady-state Send/Multicast
	// allocates nothing. The network belongs to one engine (one goroutine),
	// so a plain free list suffices.
	dfree []*delivery
}

// delivery is one scheduled message arrival. Its run closure is bound once
// when the record is first created and reused for the record's lifetime.
type delivery struct {
	n        *Network
	l        *link
	from, to Addr
	payload  any
	size     int
	run      func()
}

func (n *Network) getDelivery() *delivery {
	if ln := len(n.dfree); ln > 0 {
		d := n.dfree[ln-1]
		n.dfree[ln-1] = nil
		n.dfree = n.dfree[:ln-1]
		return d
	}
	d := &delivery{n: n}
	d.run = d.deliver
	return d
}

func (d *delivery) deliver() {
	n, l := d.n, d.l
	from, to, payload, size := d.from, d.to, d.payload, d.size
	// Return the record to the pool before invoking the handler so nested
	// sends can reuse it; all needed fields are copied out above.
	d.l, d.payload = nil, nil
	n.dfree = append(n.dfree, d)

	dst, ok := n.nodes[to]
	if !ok || !dst.up || n.partitioned(from, to) {
		l.stats.MsgsDropped++
		n.totals.MsgsDropped++
		if tr := n.eng.Tracer(); tr.Enabled() {
			rec := tr.Emit(obs.PhaseInstant, int64(n.eng.Now()), 0, obs.PidFabric, "net", "drop.recv")
			rec.K1, rec.V1 = "from", int64(from)
			rec.K2, rec.V2 = "to", int64(to)
		}
		if r, ok := payload.(Releasable); ok {
			r.Release()
		}
		return
	}
	l.stats.MsgsDeliv++
	l.stats.BytesDeliv += uint64(size)
	n.totals.MsgsDeliv++
	n.totals.BytesDeliv += uint64(size)
	// The delivery's payload reference passes to the receiver here.
	dst.handler(from, payload, size)
}

// New creates a network over eng where unset links use defaultProfile.
func New(eng *sim.Engine, defaultProfile LinkProfile) *Network {
	return &Network{
		eng:            eng,
		defaultProfile: defaultProfile,
		nodes:          make(map[Addr]*endpoint),
		links:          make(map[[2]Addr]*link),
		partition:      make(map[Addr]int),
	}
}

// Engine returns the underlying simulation engine.
func (n *Network) Engine() *sim.Engine { return n.eng }

// Attach registers a node; messages addressed to addr invoke h. Attaching an
// existing address replaces its handler (used when a failed switch is
// replaced by a fresh one).
func (n *Network) Attach(addr Addr, h Handler) {
	n.nodes[addr] = &endpoint{handler: h, up: true}
}

// Detach removes a node entirely.
func (n *Network) Detach(addr Addr) { delete(n.nodes, addr) }

// SetNodeUp marks a node up or down. A down node neither sends nor receives —
// this is the fail-stop switch failure model of §6.3.
func (n *Network) SetNodeUp(addr Addr, up bool) {
	if ep, ok := n.nodes[addr]; ok {
		ep.up = up
	}
}

// NodeUp reports whether addr is attached and up.
func (n *Network) NodeUp(addr Addr) bool {
	ep, ok := n.nodes[addr]
	return ok && ep.up
}

// SetLink configures both directions between a and b with profile.
func (n *Network) SetLink(a, b Addr, profile LinkProfile) {
	n.linkFor(a, b).profile = profile
	n.linkFor(b, a).profile = profile
}

// SetOneWayLink configures only the a->b direction.
func (n *Network) SetOneWayLink(a, b Addr, profile LinkProfile) {
	n.linkFor(a, b).profile = profile
}

func (n *Network) linkFor(a, b Addr) *link {
	k := [2]Addr{a, b}
	l, ok := n.links[k]
	if !ok {
		l = &link{profile: n.defaultProfile}
		n.links[k] = l
	}
	return l
}

// Profile returns the profile of the a->b direction: the configured link,
// or the network default when the pair was never configured or used. It
// never materializes a link.
func (n *Network) Profile(a, b Addr) LinkProfile {
	if l, ok := n.links[[2]Addr{a, b}]; ok {
		return l.profile
	}
	return n.defaultProfile
}

// Partition assigns nodes to partition groups. Nodes in different nonzero
// groups cannot exchange messages; group 0 (the default) talks to everyone.
func (n *Network) Partition(group int, addrs ...Addr) {
	for _, a := range addrs {
		n.partition[a] = group
	}
}

// HealPartition returns all nodes to group 0.
func (n *Network) HealPartition() { n.partition = make(map[Addr]int) }

func (n *Network) partitioned(a, b Addr) bool {
	ga, gb := n.partition[a], n.partition[b]
	return ga != 0 && gb != 0 && ga != gb
}

// Send transmits payload of the given wire size from->to. It reports whether
// the message entered the network (false if the sender is down/unknown).
// Delivery is never guaranteed.
func (n *Network) Send(from, to Addr, payload any, size int) bool {
	if size < 0 {
		panic(fmt.Sprintf("netem: negative size %d", size))
	}
	src, ok := n.nodes[from]
	if !ok || !src.up {
		return false
	}
	l := n.linkFor(from, to)
	l.stats.MsgsSent++
	l.stats.BytesSent += uint64(size)
	n.totals.MsgsSent++
	n.totals.BytesSent += uint64(size)

	if n.partitioned(from, to) {
		l.stats.MsgsDropped++
		n.totals.MsgsDropped++
		n.traceDrop("drop.partition", from, to)
		return true
	}
	rng := n.eng.Rand()
	if l.profile.LossRate > 0 && rng.Float64() < l.profile.LossRate {
		l.stats.MsgsDropped++
		n.totals.MsgsDropped++
		n.traceDrop("drop.loss", from, to)
		return true
	}

	// Serialization delay with FIFO queueing at the sender side of the link.
	now := n.eng.Now()
	depart := now
	if l.profile.BandwidthBps > 0 {
		ser := sim.Duration(float64(size*8) / l.profile.BandwidthBps * 1e9)
		if l.busyUntil > now {
			depart = l.busyUntil
		}
		depart = depart.Add(ser)
		l.busyUntil = depart
	}
	delay := depart.Sub(now) + l.profile.Latency
	if l.profile.Jitter > 0 {
		delay += sim.Duration(rng.Int63n(int64(l.profile.Jitter) + 1))
	}
	if l.profile.ReorderRate > 0 && rng.Float64() < l.profile.ReorderRate {
		delay += sim.Duration(rng.Int63n(int64(4*l.profile.Latency) + 1))
	}

	n.scheduleDelivery(delay, l, from, to, payload, size)
	if l.profile.DupRate > 0 && rng.Float64() < l.profile.DupRate {
		l.stats.MsgsDup++
		n.totals.MsgsDup++
		n.traceDrop("dup", from, to)
		n.scheduleDelivery(delay+l.profile.Latency/2+1, l, from, to, payload, size)
	}
	return true
}

// traceDrop emits a fabric instant for a loss/partition/duplication
// decision made at send time.
func (n *Network) traceDrop(name string, from, to Addr) {
	tr := n.eng.Tracer()
	if !tr.Enabled() {
		return
	}
	rec := tr.Emit(obs.PhaseInstant, int64(n.eng.Now()), 0, obs.PidFabric, "net", name)
	rec.K1, rec.V1 = "from", int64(from)
	rec.K2, rec.V2 = "to", int64(to)
}

// scheduleDelivery queues one arrival, taking a payload reference for pooled
// payloads. Each arrival gets its own pooled record (duplicates included).
func (n *Network) scheduleDelivery(delay sim.Duration, l *link, from, to Addr, payload any, size int) {
	if r, ok := payload.(Releasable); ok {
		r.Ref()
	}
	if tr := n.eng.Tracer(); tr.Enabled() {
		// One flight span per scheduled arrival, covering send -> arrival.
		rec := tr.Emit(obs.PhaseSpan, int64(n.eng.Now()), int64(delay), obs.PidFabric, "net", "msg")
		rec.K1, rec.V1 = "from", int64(from)
		rec.K2, rec.V2 = "to", int64(to)
		rec.K3, rec.V3 = "bytes", int64(size)
	}
	d := n.getDelivery()
	d.l, d.from, d.to, d.payload, d.size = l, from, to, payload, size
	n.eng.ScheduleAfter(delay, d.run)
}

// Multicast sends payload to every address in group except from itself.
// It models the switch multicast engine: one copy per destination.
func (n *Network) Multicast(from Addr, group []Addr, payload any, size int) {
	for _, to := range group {
		if to == from {
			continue
		}
		n.Send(from, to, payload, size)
	}
}

// Stats returns accounting for the a->b direction.
func (n *Network) Stats(a, b Addr) LinkStats { return n.linkFor(a, b).stats }

// EachLink invokes fn for every directed link the network knows about, in
// ascending (from, to) order so output built from it is deterministic.
// This closes the Stats/Totals asymmetry: Totals returns the global
// aggregate, but per-link stats used to be reachable only by asking for a
// (from, to) pair the caller already knew existed — exporters iterate here
// without any topology knowledge.
func (n *Network) EachLink(fn func(from, to Addr, s LinkStats)) {
	keys := make([][2]Addr, 0, len(n.links))
	for k := range n.links {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		fn(k[0], k[1], n.links[k].stats)
	}
}

// Totals returns network-wide accounting.
func (n *Network) Totals() LinkStats { return n.totals }

// ResetTotals zeroes all accounting (per-link and global); used between
// experiment phases.
func (n *Network) ResetTotals() {
	n.totals = LinkStats{}
	for _, l := range n.links {
		l.stats = LinkStats{}
	}
}
