package netem

import (
	"testing"
	"time"

	"swishmem/internal/sim"
)

type recorder struct {
	msgs  []any
	froms []Addr
	times []sim.Time
}

func (r *recorder) handler(eng *sim.Engine) Handler {
	return func(from Addr, payload any, size int) {
		r.msgs = append(r.msgs, payload)
		r.froms = append(r.froms, from)
		r.times = append(r.times, eng.Now())
	}
}

func setup(seed int64, p LinkProfile, nodes ...Addr) (*sim.Engine, *Network, map[Addr]*recorder) {
	eng := sim.NewEngine(seed)
	net := New(eng, p)
	recs := make(map[Addr]*recorder)
	for _, a := range nodes {
		r := &recorder{}
		recs[a] = r
		net.Attach(a, r.handler(eng))
	}
	return eng, net, recs
}

func TestBasicDelivery(t *testing.T) {
	eng, net, recs := setup(1, LinkProfile{Latency: 100}, 1, 2)
	if !net.Send(1, 2, "hi", 50) {
		t.Fatal("send refused")
	}
	eng.Run()
	r := recs[2]
	if len(r.msgs) != 1 || r.msgs[0] != "hi" || r.froms[0] != 1 {
		t.Fatalf("delivery = %+v", r)
	}
	if r.times[0] != 100 {
		t.Fatalf("delivered at %v, want latency 100", r.times[0])
	}
}

func TestSendFromUnknownOrDownNode(t *testing.T) {
	eng, net, _ := setup(1, LinkProfile{}, 1, 2)
	if net.Send(99, 2, "x", 1) {
		t.Fatal("unknown sender accepted")
	}
	net.SetNodeUp(1, false)
	if net.Send(1, 2, "x", 1) {
		t.Fatal("down sender accepted")
	}
	if net.NodeUp(1) {
		t.Fatal("NodeUp for down node")
	}
	net.SetNodeUp(1, true)
	if !net.NodeUp(1) || !net.Send(1, 2, "x", 1) {
		t.Fatal("healed sender refused")
	}
	eng.Run()
}

func TestDownReceiverDrops(t *testing.T) {
	eng, net, recs := setup(1, LinkProfile{Latency: 10}, 1, 2)
	net.SetNodeUp(2, false)
	net.Send(1, 2, "x", 1)
	eng.Run()
	if len(recs[2].msgs) != 0 {
		t.Fatal("down receiver got message")
	}
	if net.Totals().MsgsDropped != 1 {
		t.Fatalf("drops = %d, want 1", net.Totals().MsgsDropped)
	}
}

func TestReceiverFailsInFlight(t *testing.T) {
	// A message already in flight when the receiver dies must be dropped:
	// delivery checks happen at arrival time, not send time.
	eng, net, recs := setup(1, LinkProfile{Latency: 100}, 1, 2)
	net.Send(1, 2, "x", 1)
	eng.After(50*time.Nanosecond, func() { net.SetNodeUp(2, false) })
	eng.Run()
	if len(recs[2].msgs) != 0 {
		t.Fatal("message delivered to node that died in flight")
	}
}

func TestLossRate(t *testing.T) {
	eng, net, recs := setup(7, LinkProfile{Latency: 1, LossRate: 0.3}, 1, 2)
	const N = 10000
	for i := 0; i < N; i++ {
		net.Send(1, 2, i, 10)
	}
	eng.Run()
	got := len(recs[2].msgs)
	if got < 6500 || got > 7500 {
		t.Fatalf("delivered %d of %d at 30%% loss", got, N)
	}
	st := net.Stats(1, 2)
	if st.MsgsSent != N || st.MsgsDeliv != uint64(got) || st.MsgsDropped != N-uint64(got) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDuplication(t *testing.T) {
	eng, net, recs := setup(3, LinkProfile{Latency: 10, DupRate: 0.5}, 1, 2)
	const N = 1000
	for i := 0; i < N; i++ {
		net.Send(1, 2, i, 10)
	}
	eng.Run()
	got := len(recs[2].msgs)
	if got < N+400 || got > N+600 {
		t.Fatalf("delivered %d, want ~1500 with 50%% dup", got)
	}
}

func TestBandwidthSerializationAndQueueing(t *testing.T) {
	// 8 Gbps link: 1000-byte message takes 1000ns to serialize.
	eng, net, recs := setup(1, LinkProfile{Latency: 0, BandwidthBps: 8e9}, 1, 2)
	net.Send(1, 2, "a", 1000)
	net.Send(1, 2, "b", 1000)
	eng.Run()
	r := recs[2]
	if len(r.times) != 2 {
		t.Fatalf("delivered %d", len(r.times))
	}
	if r.times[0] != 1000 {
		t.Fatalf("first delivery at %v, want 1000ns", r.times[0])
	}
	if r.times[1] != 2000 {
		t.Fatalf("second delivery at %v, want 2000ns (queued)", r.times[1])
	}
}

func TestInfiniteBandwidthNoQueueing(t *testing.T) {
	eng, net, recs := setup(1, LinkProfile{Latency: 5}, 1, 2)
	for i := 0; i < 10; i++ {
		net.Send(1, 2, i, 1<<20)
	}
	eng.Run()
	for _, at := range recs[2].times {
		if at != 5 {
			t.Fatalf("delivery at %v, want 5 for all", at)
		}
	}
}

func TestJitterBounds(t *testing.T) {
	eng, net, recs := setup(5, LinkProfile{Latency: 100, Jitter: 50}, 1, 2)
	for i := 0; i < 1000; i++ {
		net.Send(1, 2, i, 1)
	}
	eng.Run()
	for _, at := range recs[2].times {
		if at < 100 || at > 150 {
			t.Fatalf("delivery at %v outside [100,150]", at)
		}
	}
}

func TestReordering(t *testing.T) {
	eng, net, recs := setup(11, LinkProfile{Latency: 100, ReorderRate: 0.3}, 1, 2)
	const N = 1000
	for i := 0; i < N; i++ {
		net.Send(1, 2, i, 1)
	}
	eng.Run()
	r := recs[2]
	if len(r.msgs) != N {
		t.Fatalf("delivered %d", len(r.msgs))
	}
	outOfOrder := 0
	for i := 1; i < len(r.msgs); i++ {
		if r.msgs[i].(int) < r.msgs[i-1].(int) {
			outOfOrder++
		}
	}
	if outOfOrder == 0 {
		t.Fatal("no reordering observed at 30% reorder rate")
	}
}

func TestPartition(t *testing.T) {
	eng, net, recs := setup(1, LinkProfile{Latency: 1}, 1, 2, 3)
	net.Partition(1, 1)
	net.Partition(2, 2)
	// 3 stays in group 0 and can talk to both.
	net.Send(1, 2, "blocked", 1)
	net.Send(1, 3, "ok13", 1)
	net.Send(3, 2, "ok32", 1)
	eng.Run()
	if len(recs[2].msgs) != 1 || recs[2].msgs[0] != "ok32" {
		t.Fatalf("node2 got %+v", recs[2].msgs)
	}
	if len(recs[3].msgs) != 1 {
		t.Fatalf("node3 got %+v", recs[3].msgs)
	}
	net.HealPartition()
	net.Send(1, 2, "after", 1)
	eng.Run()
	if len(recs[2].msgs) != 2 {
		t.Fatal("healed partition still blocking")
	}
}

func TestPartitionInFlight(t *testing.T) {
	// Partition applied while a message is in flight drops it on arrival.
	eng, net, recs := setup(1, LinkProfile{Latency: 100}, 1, 2)
	net.Send(1, 2, "x", 1)
	eng.After(10*time.Nanosecond, func() {
		net.Partition(1, 1)
		net.Partition(2, 2)
	})
	eng.Run()
	if len(recs[2].msgs) != 0 {
		t.Fatal("partitioned message delivered")
	}
}

func TestMulticast(t *testing.T) {
	eng, net, recs := setup(1, LinkProfile{Latency: 1}, 1, 2, 3, 4)
	group := []Addr{1, 2, 3, 4}
	net.Multicast(1, group, "m", 10)
	eng.Run()
	if len(recs[1].msgs) != 0 {
		t.Fatal("multicast delivered to sender")
	}
	for _, a := range []Addr{2, 3, 4} {
		if len(recs[a].msgs) != 1 {
			t.Fatalf("node %d got %d messages", a, len(recs[a].msgs))
		}
	}
}

func TestPerLinkProfiles(t *testing.T) {
	eng, net, recs := setup(1, LinkProfile{Latency: 10}, 1, 2, 3)
	net.SetLink(1, 3, LinkProfile{Latency: 500})
	net.Send(1, 2, "fast", 1)
	net.Send(1, 3, "slow", 1)
	eng.Run()
	if recs[2].times[0] != 10 || recs[3].times[0] != 500 {
		t.Fatalf("times: %v %v", recs[2].times, recs[3].times)
	}
	// Symmetric: 3->1 also 500.
	net.SetLink(1, 3, LinkProfile{Latency: 500})
	before := eng.Now()
	net.Send(3, 1, "back", 1)
	eng.Run()
	if recs[1].times[0].Sub(before) != 500 {
		t.Fatal("reverse direction not configured")
	}
}

func TestOneWayLink(t *testing.T) {
	eng, net, recs := setup(1, LinkProfile{Latency: 10}, 1, 2)
	net.SetOneWayLink(1, 2, LinkProfile{Latency: 777})
	net.Send(1, 2, "a", 1)
	net.Send(2, 1, "b", 1)
	eng.Run()
	if recs[2].times[0] != 777 {
		t.Fatalf("one-way profile not applied: %v", recs[2].times[0])
	}
	if recs[1].times[0] != 10 {
		t.Fatalf("reverse should use default: %v", recs[1].times[0])
	}
}

func TestByteAccounting(t *testing.T) {
	eng, net, _ := setup(1, LinkProfile{Latency: 1}, 1, 2)
	net.Send(1, 2, "a", 100)
	net.Send(1, 2, "b", 200)
	eng.Run()
	st := net.Stats(1, 2)
	if st.BytesSent != 300 || st.BytesDeliv != 300 {
		t.Fatalf("bytes = %+v", st)
	}
	tot := net.Totals()
	if tot.BytesSent != 300 {
		t.Fatalf("totals = %+v", tot)
	}
	net.ResetTotals()
	if net.Totals().BytesSent != 0 || net.Stats(1, 2).BytesSent != 0 {
		t.Fatal("reset failed")
	}
}

func TestDetach(t *testing.T) {
	eng, net, recs := setup(1, LinkProfile{Latency: 1}, 1, 2)
	net.Detach(2)
	net.Send(1, 2, "x", 1)
	eng.Run()
	if len(recs[2].msgs) != 0 {
		t.Fatal("detached node received message")
	}
}

func TestNegativeSizePanics(t *testing.T) {
	_, net, _ := setup(1, LinkProfile{}, 1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	net.Send(1, 2, "x", -1)
}

func TestLossyHelper(t *testing.T) {
	p := DataCenter().Lossy(0.25)
	if p.LossRate != 0.25 || p.BandwidthBps != 100e9 {
		t.Fatalf("profile = %+v", p)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []sim.Time {
		eng, net, recs := setup(99, LinkProfile{Latency: 50, Jitter: 30, LossRate: 0.1}, 1, 2)
		for i := 0; i < 500; i++ {
			net.Send(1, 2, i, 64)
		}
		eng.Run()
		return recs[2].times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}

func TestCombinedDupReorderBandwidthAccounting(t *testing.T) {
	// Duplication, reordering, and bandwidth queueing together: byte
	// accounting must stay exact when the same message is both duplicated
	// and reordered while sharing a serialization queue.
	const (
		msgs = 2000
		size = 125 // 1000 bits: 1µs serialization at 1 Gbps
	)
	p := LinkProfile{
		Latency:      20 * 1000, // 20µs
		BandwidthBps: 1e9,
		DupRate:      0.3,
		ReorderRate:  0.3,
	}
	eng, net, recs := setup(7, p, 1, 2)
	for i := 0; i < msgs; i++ {
		if !net.Send(1, 2, i, size) {
			t.Fatal("send refused")
		}
	}
	eng.Run()

	st := net.Stats(1, 2)
	if st.MsgsSent != msgs {
		t.Fatalf("MsgsSent = %d, want %d", st.MsgsSent, msgs)
	}
	if st.BytesSent != uint64(msgs)*size {
		t.Fatalf("BytesSent = %d, want %d", st.BytesSent, uint64(msgs)*size)
	}
	if st.MsgsDup == 0 {
		t.Fatal("no duplicates at DupRate 0.3")
	}
	// Lossless link: every original plus every duplicate arrives.
	wantDeliv := uint64(msgs) + st.MsgsDup
	if st.MsgsDeliv != wantDeliv {
		t.Fatalf("MsgsDeliv = %d, want %d (msgs %d + dups %d)", st.MsgsDeliv, wantDeliv, msgs, st.MsgsDup)
	}
	if st.MsgsDropped != 0 {
		t.Fatalf("MsgsDropped = %d on a lossless link", st.MsgsDropped)
	}
	if st.BytesDeliv != wantDeliv*size {
		t.Fatalf("BytesDeliv = %d, want %d (every delivery, duplicates included, accounts its bytes)",
			st.BytesDeliv, wantDeliv*size)
	}
	if got := uint64(len(recs[2].msgs)); got != wantDeliv {
		t.Fatalf("handler saw %d messages, want %d", got, wantDeliv)
	}
	if tot := net.Totals(); tot != st {
		t.Fatalf("single-link totals diverge from link stats:\n  totals %+v\n  link   %+v", tot, st)
	}
	// Reordering actually happened: with 30% reorder on a FIFO-serialized
	// link, arrival order must not be monotone in send order.
	inOrder := true
	for i := 1; i < len(recs[2].msgs); i++ {
		if recs[2].msgs[i].(int) < recs[2].msgs[i-1].(int) {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Fatal("no reordering observed at ReorderRate 0.3")
	}
	// Serialization queueing was in effect: the last arrival cannot beat
	// the total serialization time of the whole burst.
	minFinish := sim.Time(msgs * 1000) // msgs x 1µs
	last := recs[2].times[len(recs[2].times)-1]
	if last < minFinish {
		t.Fatalf("last delivery at %v, before minimum serialization finish %v", last, minFinish)
	}
}

func TestSendSteadyStateAllocs(t *testing.T) {
	eng, net, _ := setup(1, LinkProfile{Latency: 100, BandwidthBps: 100e9}, 1, 2, 3, 4)
	group := []Addr{1, 2, 3, 4}
	// Warm pools and link records.
	for i := 0; i < 64; i++ {
		net.Multicast(1, group, nil, 64)
	}
	eng.Run()
	if avg := testing.AllocsPerRun(500, func() {
		net.Multicast(1, group, nil, 64)
		eng.Run()
	}); avg != 0 {
		t.Fatalf("steady-state Multicast+deliver allocates %.2f per op, want 0", avg)
	}
}

func BenchmarkSend(b *testing.B) {
	eng, net, _ := setup(1, LinkProfile{Latency: 100}, 1, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net.Send(1, 2, nil, 64)
		if i%1024 == 1023 {
			eng.Run()
		}
	}
	eng.Run()
}

func TestEachLink(t *testing.T) {
	eng, net, _ := setup(1, LinkProfile{Latency: 100}, 1, 2, 3)
	net.Send(2, 1, "a", 10)
	net.Send(2, 1, "b", 20)
	net.Send(1, 3, "c", 30)
	eng.Run()

	type row struct {
		from, to Addr
		s        LinkStats
	}
	var got []row
	net.EachLink(func(from, to Addr, s LinkStats) {
		got = append(got, row{from, to, s})
	})
	if len(got) != 2 {
		t.Fatalf("EachLink visited %d links, want 2: %+v", len(got), got)
	}
	// Deterministic ascending (from, to) order.
	if got[0].from != 1 || got[0].to != 3 || got[1].from != 2 || got[1].to != 1 {
		t.Fatalf("EachLink order wrong: %+v", got)
	}
	if got[1].s.MsgsSent != 2 || got[1].s.BytesSent != 30 || got[1].s.MsgsDeliv != 2 {
		t.Fatalf("2->1 stats wrong: %+v", got[1].s)
	}
	// Per-link stats must agree with the global aggregate Totals().
	var sum LinkStats
	net.EachLink(func(_, _ Addr, s LinkStats) {
		sum.MsgsSent += s.MsgsSent
		sum.BytesSent += s.BytesSent
		sum.MsgsDeliv += s.MsgsDeliv
		sum.BytesDeliv += s.BytesDeliv
		sum.MsgsDropped += s.MsgsDropped
		sum.MsgsDup += s.MsgsDup
	})
	if sum != net.Totals() {
		t.Fatalf("EachLink sum %+v != Totals %+v", sum, net.Totals())
	}
	// ResetTotals clears both views symmetrically.
	net.ResetTotals()
	net.EachLink(func(from, to Addr, s LinkStats) {
		if s != (LinkStats{}) {
			t.Fatalf("link %d->%d not reset: %+v", from, to, s)
		}
	})
	if net.Totals() != (LinkStats{}) {
		t.Fatalf("totals not reset: %+v", net.Totals())
	}
}
