// Package ddos implements the DDoS detector of §4.2 (per Lapolli et al.):
// per-packet frequency tracking of destination (victim) and source
// addresses in count-min sketches, raising an alarm when a destination's
// frequency in the current window crosses a threshold.
//
// The sketch is the canonical write-intensive, weakly consistent NF state
// (Table 1): updated and read on every packet, commutative, tolerant of
// eventual consistency. Each sketch cell is one key of an EWO G-counter
// register, so the cluster-wide sketch is the CRDT sum of all switches'
// local updates — a distributed count-min sketch with strong eventual
// consistency and monotone estimates (§6.2's counter vector, applied
// cell-wise).
//
// Detection windows advance by epoch: cells are keyed (epoch, index), so a
// new window starts fresh without requiring a (non-CRDT) counter reset.
package ddos

import (
	"fmt"

	"swishmem/internal/core"
	"swishmem/internal/ewo"
	"swishmem/internal/packet"
	"swishmem/internal/pisa"
	"swishmem/internal/sim"
	"swishmem/internal/stats"
)

// Config parameterizes one detector instance.
type Config struct {
	// Reg is the shared sketch register ID.
	Reg uint16
	// Width and Depth size the count-min sketch. Defaults 1024x3.
	Width, Depth int
	// Threshold is the per-window packet count that flags a victim.
	Threshold uint64
	// Window is the detection window length. Default 10ms.
	Window sim.Duration
	// Windows is how many epochs of cells the register holds (ring).
	// Default 4.
	Windows int
	// SyncPeriod forwards to the EWO register (0 = default 1ms).
	SyncPeriod sim.Duration
}

func (c Config) withDefaults() Config {
	if c.Width <= 0 {
		c.Width = 1024
	}
	if c.Depth <= 0 {
		c.Depth = 3
	}
	if c.Window <= 0 {
		c.Window = 10_000_000 // 10ms
	}
	if c.Windows <= 0 {
		c.Windows = 4
	}
	return c
}

// Stats counts detector events.
type Stats struct {
	Updated stats.Counter // packets accounted
	Alarms  stats.Counter // packets observed over threshold
	Dropped stats.Counter // packets dropped during an attack
}

// Detector is one per-switch instance.
type Detector struct {
	cfg Config
	sw  *pisa.Switch
	reg *core.CounterRegister

	epoch uint64

	// OnAlarm, if set, is invoked when a destination first crosses the
	// threshold in a window.
	OnAlarm func(victim packet.FlowKey, estimate uint64)

	alarmed map[uint32]bool // victims alarmed this window

	// Egress receives admitted packets.
	Egress func(p *packet.Packet)

	Stats Stats
}

// New declares the detector on a switch instance.
func New(in *core.Instance, cfg Config) (*Detector, error) {
	cfg = cfg.withDefaults()
	if cfg.Threshold == 0 {
		return nil, fmt.Errorf("ddos: need a positive threshold")
	}
	reg, err := in.NewCounterRegister(ewo.Config{
		Reg:        cfg.Reg,
		Capacity:   cfg.Width * cfg.Depth * cfg.Windows,
		Kind:       ewo.Counter,
		SyncPeriod: cfg.SyncPeriod,
	})
	if err != nil {
		return nil, err
	}
	d := &Detector{cfg: cfg, sw: in.Switch(), reg: reg, alarmed: make(map[uint32]bool)}
	return d, nil
}

// Register exposes the EWO counter register.
func (d *Detector) Register() *core.CounterRegister { return d.reg }

// Switch returns the switch this instance runs on.
func (d *Detector) Switch() *pisa.Switch { return d.sw }

// Install wires the detector into the switch pipeline and starts the
// window-advance task (packet generator).
func (d *Detector) Install() {
	d.sw.SetProgram(d.program)
	if d.Egress == nil {
		d.Egress = func(*packet.Packet) {}
	}
	d.sw.SetEgress(d.Egress)
	d.sw.PacketGen(d.cfg.Window, func() {
		d.epoch++
		d.alarmed = make(map[uint32]bool)
	})
}

// cellKey maps (epoch, row, column) to a register key.
func (d *Detector) cellKey(epoch uint64, row, col int) uint64 {
	e := epoch % uint64(d.cfg.Windows)
	return e*uint64(d.cfg.Width*d.cfg.Depth) + uint64(row*d.cfg.Width+col)
}

func mix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Estimate returns the merged cluster-wide count-min estimate of dst's
// packet count in the current window.
func (d *Detector) Estimate(dst uint32) uint64 {
	var min uint64 = ^uint64(0)
	for r := 0; r < d.cfg.Depth; r++ {
		col := int(mix(uint64(dst)^uint64(r+1)*0x9e3779b97f4a7c15) % uint64(d.cfg.Width))
		if v := d.reg.Sum(d.cellKey(d.epoch, r, col)); v < min {
			min = v
		}
	}
	return min
}

func (d *Detector) program(sw *pisa.Switch, p *packet.Packet) pisa.Verdict {
	if p.IP == nil {
		return pisa.Drop
	}
	dst := packet.U32Addr(p.IP.Dst)
	d.Stats.Updated.Inc()
	// Update all rows for the destination.
	var est uint64 = ^uint64(0)
	for r := 0; r < d.cfg.Depth; r++ {
		col := int(mix(uint64(dst)^uint64(r+1)*0x9e3779b97f4a7c15) % uint64(d.cfg.Width))
		key := d.cellKey(d.epoch, r, col)
		d.reg.Add(key, 1)
		if v := d.reg.Sum(key); v < est {
			est = v
		}
	}
	if est >= d.cfg.Threshold {
		d.Stats.Alarms.Inc()
		if !d.alarmed[dst] {
			d.alarmed[dst] = true
			if d.OnAlarm != nil {
				if k, ok := p.Flow(); ok {
					d.OnAlarm(k, est)
				}
			}
		}
		// Under attack: shed traffic toward the victim.
		d.Stats.Dropped.Inc()
		return pisa.Drop
	}
	return pisa.Forward
}
