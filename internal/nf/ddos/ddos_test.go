package ddos

import (
	"math/rand"
	"testing"
	"time"

	"swishmem/internal/core"
	"swishmem/internal/netem"
	"swishmem/internal/packet"
	"swishmem/internal/pisa"
	"swishmem/internal/sim"
	"swishmem/internal/wire"
	"swishmem/internal/workload"
)

type rig struct {
	eng  *sim.Engine
	dets []*Detector
}

func newRig(t testing.TB, seed int64, n int, cfg Config) *rig {
	t.Helper()
	eng := sim.NewEngine(seed)
	nw := netem.New(eng, netem.LinkProfile{Latency: 10_000})
	r := &rig{eng: eng}
	var members []uint16
	for i := 0; i < n; i++ {
		sw := pisa.New(eng, nw, pisa.Config{Addr: netem.Addr(i + 1), PipelinePPS: 1e9})
		in := core.NewInstance(sw)
		d, err := New(in, cfg)
		if err != nil {
			t.Fatal(err)
		}
		d.Install()
		r.dets = append(r.dets, d)
		members = append(members, uint16(i+1))
	}
	gc := wire.GroupConfig{Epoch: 1, Members: members}
	for _, d := range r.dets {
		if err := d.Register().Node().SetGroup(gc); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func pktTo(dst byte) *packet.Packet {
	return packet.NewBuilder().
		Src(packet.Addr4(45, 0, 0, byte(rand.Intn(250)))).Dst(packet.Addr4(192, 168, 0, dst)).
		UDP(1111, 80).Build()
}

func TestBenignTrafficNoAlarm(t *testing.T) {
	r := newRig(t, 1, 2, Config{Reg: 1, Threshold: 1000, Window: 50 * time.Millisecond})
	for i := 0; i < 100; i++ {
		r.dets[0].Switch().InjectPacket(pktTo(byte(i % 20)))
	}
	r.eng.RunFor(10 * time.Millisecond)
	if r.dets[0].Stats.Alarms.Value() != 0 {
		t.Fatal("false alarm on benign traffic")
	}
}

func TestSingleSwitchDetection(t *testing.T) {
	r := newRig(t, 2, 1, Config{Reg: 1, Threshold: 100, Window: 100 * time.Millisecond})
	alarms := 0
	r.dets[0].OnAlarm = func(victim packet.FlowKey, est uint64) {
		alarms++
		if victim.Dst != packet.Addr4(192, 168, 0, 7) {
			t.Errorf("wrong victim: %v", victim.Dst)
		}
		if est < 100 {
			t.Errorf("estimate %d below threshold", est)
		}
	}
	for i := 0; i < 200; i++ {
		r.dets[0].Switch().InjectPacket(pktTo(7))
	}
	r.eng.RunFor(10 * time.Millisecond)
	if alarms != 1 {
		t.Fatalf("alarms = %d, want 1 (per-window dedup)", alarms)
	}
	if r.dets[0].Stats.Dropped.Value() == 0 {
		t.Fatal("attack traffic not shed")
	}
}

func TestDistributedDetection(t *testing.T) {
	// The motivating scenario: the attack is spread over 3 switches, each
	// seeing only ~70 pkt/window — below the 150 threshold locally. Only
	// the CRDT-merged cluster-wide sketch crosses it.
	r := newRig(t, 3, 3, Config{Reg: 1, Threshold: 150, Window: 200 * time.Millisecond})
	alarmed := false
	for _, d := range r.dets {
		d.OnAlarm = func(victim packet.FlowKey, est uint64) { alarmed = true }
	}
	for round := 0; round < 70; round++ {
		for _, d := range r.dets {
			d.Switch().InjectPacket(pktTo(9))
		}
		// Let replication flow between rounds.
		r.eng.RunFor(100 * time.Microsecond)
	}
	r.eng.RunFor(5 * time.Millisecond)
	if !alarmed {
		est := r.dets[0].Estimate(packet.U32Addr(packet.Addr4(192, 168, 0, 9)))
		t.Fatalf("distributed attack not detected (est=%d, want >=150)", est)
	}
}

func TestNoLocalOnlyDetection(t *testing.T) {
	// Control for TestDistributedDetection: without replication (solo
	// switch seeing 1/3 of the attack), the threshold is not crossed.
	r := newRig(t, 4, 1, Config{Reg: 1, Threshold: 150, Window: 200 * time.Millisecond})
	for i := 0; i < 70; i++ {
		r.dets[0].Switch().InjectPacket(pktTo(9))
	}
	r.eng.RunFor(5 * time.Millisecond)
	if r.dets[0].Stats.Alarms.Value() != 0 {
		t.Fatal("one-third of the attack should not trip the threshold")
	}
}

func TestWindowReset(t *testing.T) {
	r := newRig(t, 5, 1, Config{Reg: 1, Threshold: 100, Window: time.Millisecond})
	for i := 0; i < 150; i++ {
		r.dets[0].Switch().InjectPacket(pktTo(3))
	}
	r.eng.RunFor(500 * time.Microsecond)
	if r.dets[0].Stats.Alarms.Value() == 0 {
		t.Fatal("attack not detected in window")
	}
	// Advance several windows with no traffic: estimate resets.
	r.eng.RunFor(10 * time.Millisecond)
	if est := r.dets[0].Estimate(packet.U32Addr(packet.Addr4(192, 168, 0, 3))); est != 0 {
		t.Fatalf("estimate %d after window reset, want 0", est)
	}
}

func TestAttackTraceEndToEnd(t *testing.T) {
	// Replay a generated attack trace over background traffic.
	cfg := Config{Reg: 1, Threshold: 400, Window: 50 * time.Millisecond}
	r := newRig(t, 6, 2, cfg)
	alarm := false
	for _, d := range r.dets {
		d.OnAlarm = func(victim packet.FlowKey, est uint64) { alarm = true }
	}
	rng := rand.New(rand.NewSource(6))
	attack, err := workload.GenAttack(rng, workload.AttackConfig{
		Duration: 10 * time.Millisecond, PacketsPerSec: 100_000, Sources: 500, Victim: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	workload.Replay(r.eng, attack, func(p *packet.Packet) {
		r.dets[i%2].Switch().InjectPacket(p)
		i++
	})
	r.eng.RunFor(20 * time.Millisecond)
	if !alarm {
		t.Fatal("attack trace not detected")
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := netem.New(eng, netem.LinkProfile{})
	in := core.NewInstance(pisa.New(eng, nw, pisa.Config{Addr: 1}))
	if _, err := New(in, Config{Reg: 1}); err == nil {
		t.Fatal("zero threshold accepted")
	}
}
