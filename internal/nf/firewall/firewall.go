// Package firewall implements the stateful firewall of §4.1: context-based
// filtering driven by a connection-state table shared across all firewall
// switches through an SRO register. Outbound SYNs open connections (a
// replicated write through the control plane); inbound traffic is admitted
// only when a matching connection exists — which must hold at EVERY switch,
// or multi-path routing leaks or breaks traffic; hence strong consistency.
package firewall

import (
	"fmt"

	"net/netip"
	"swishmem/internal/chain"
	"swishmem/internal/core"

	"swishmem/internal/nf"
	"swishmem/internal/packet"
	"swishmem/internal/pisa"
	"swishmem/internal/stats"
)

// connection states stored in the register.
const (
	stateSynSent byte = 1
	stateClosing byte = 3
)

// Config parameterizes one firewall instance.
type Config struct {
	// Reg is the shared connection-table register ID.
	Reg uint16
	// Capacity is the connection table size.
	Capacity int
	// Inside reports whether an address is on the protected side.
	// Default: 10.0.0.0/8.
	Inside func(a netip.Addr) bool
}

func (c Config) withDefaults() Config {
	if c.Inside == nil {
		c.Inside = func(a netip.Addr) bool { return a.As4()[0] == 10 }
	}
	return c
}

// Stats counts firewall events.
type Stats struct {
	AllowedOut  stats.Counter
	AllowedIn   stats.Counter
	BlockedIn   stats.Counter // inbound without connection state
	NewConns    stats.Counter
	Closed      stats.Counter
	HeldPackets stats.Counter
}

// Firewall is one per-switch instance.
type Firewall struct {
	cfg Config
	sw  *pisa.Switch
	reg *core.StrongRegister

	// inflight buffers packets per connection key while a state write is in
	// flight (control-plane DRAM).
	inflight map[uint64][]*packet.Packet

	// Egress receives admitted packets.
	Egress func(p *packet.Packet)

	Stats Stats
}

// New declares the firewall on a switch instance.
func New(in *core.Instance, cfg Config) (*Firewall, error) {
	cfg = cfg.withDefaults()
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("firewall: need positive capacity")
	}
	reg, err := in.NewStrongRegister(core.Strong, chain.Config{
		Reg: cfg.Reg, Capacity: cfg.Capacity, ValueWidth: 1,
		Backing: chain.ControlPlane,
	})
	if err != nil {
		return nil, err
	}
	return &Firewall{cfg: cfg, sw: in.Switch(), reg: reg, inflight: make(map[uint64][]*packet.Packet)}, nil
}

// Register exposes the SRO register.
func (f *Firewall) Register() *core.StrongRegister { return f.reg }

// Switch returns the switch this instance runs on.
func (f *Firewall) Switch() *pisa.Switch { return f.sw }

// Install wires the firewall into the switch pipeline.
func (f *Firewall) Install() {
	f.sw.SetProgram(f.program)
	f.sw.SetCtrlPacketHandler(f.ctrlStateChange)
	if f.Egress == nil {
		f.Egress = func(*packet.Packet) {}
	}
	f.sw.SetEgress(f.Egress)
}

// connKey canonicalizes both directions of a connection to one register key
// (the inside-originated orientation).
func (f *Firewall) connKey(k packet.FlowKey) uint64 {
	if f.cfg.Inside(k.Src) {
		return nf.FlowID(k)
	}
	return nf.FlowID(k.Reverse())
}

func (f *Firewall) program(sw *pisa.Switch, p *packet.Packet) pisa.Verdict {
	k, ok := p.Flow()
	if !ok || p.TCP == nil {
		return pisa.Drop
	}
	var st byte
	var known bool
	f.reg.Read(f.connKey(k), func(v []byte, ok bool) {
		if ok && len(v) > 0 {
			known, st = true, v[0]
		}
	})
	if f.cfg.Inside(k.Src) {
		// Outbound: always allowed; state transitions go via control plane.
		switch {
		case p.TCP.Flags.Has(packet.FlagSYN) && !known:
			f.Stats.HeldPackets.Inc()
			return pisa.ToControlPlane
		case p.TCP.Flags.Has(packet.FlagFIN) || p.TCP.Flags.Has(packet.FlagRST):
			if known && st != stateClosing {
				f.Stats.HeldPackets.Inc()
				return pisa.ToControlPlane
			}
		}
		f.Stats.AllowedOut.Inc()
		return pisa.Forward
	}
	// Inbound: needs connection state.
	if !known || st == stateClosing {
		f.Stats.BlockedIn.Inc()
		return pisa.Drop
	}
	f.Stats.AllowedIn.Inc()
	return pisa.Forward
}

// ctrlStateChange installs or updates connection state on the control plane
// and releases the held packet (and any packets buffered behind the same
// key) once the write commits. Outbound packets were already cleared by the
// pipeline, so they go straight to egress.
func (f *Firewall) ctrlStateChange(p *packet.Packet) {
	k, _ := p.Flow()
	key := f.connKey(k)
	if q, dup := f.inflight[key]; dup {
		f.inflight[key] = append(q, p)
		return
	}
	f.inflight[key] = []*packet.Packet{p}
	st := stateSynSent
	switch {
	case p.TCP.Flags.Has(packet.FlagFIN), p.TCP.Flags.Has(packet.FlagRST):
		st = stateClosing
		f.Stats.Closed.Inc()
	default:
		f.Stats.NewConns.Inc()
	}
	f.reg.Write(key, []byte{st}, func(ok bool) {
		q := f.inflight[key]
		delete(f.inflight, key)
		if !ok {
			return
		}
		for _, buffered := range q {
			f.Stats.AllowedOut.Inc()
			f.sw.InjectEgress(buffered)
		}
	})
}
