package firewall

import (
	"testing"
	"time"

	"swishmem/internal/core"
	"swishmem/internal/netem"
	"swishmem/internal/packet"
	"swishmem/internal/pisa"
	"swishmem/internal/sim"
	"swishmem/internal/wire"
)

type rig struct {
	eng *sim.Engine
	fws []*Firewall
	out [][]*packet.Packet
}

func newRig(t testing.TB, seed int64, n int) *rig {
	t.Helper()
	eng := sim.NewEngine(seed)
	nw := netem.New(eng, netem.LinkProfile{Latency: 10_000})
	r := &rig{eng: eng, out: make([][]*packet.Packet, n)}
	var members []uint16
	for i := 0; i < n; i++ {
		sw := pisa.New(eng, nw, pisa.Config{Addr: netem.Addr(i + 1), PipelinePPS: 1e9})
		in := core.NewInstance(sw)
		fw, err := New(in, Config{Reg: 1, Capacity: 4096})
		if err != nil {
			t.Fatal(err)
		}
		i := i
		fw.Egress = func(p *packet.Packet) { r.out[i] = append(r.out[i], p) }
		fw.Install()
		r.fws = append(r.fws, fw)
		members = append(members, uint16(i+1))
	}
	cc := wire.ChainConfig{Epoch: 1, Members: members}
	for _, fw := range r.fws {
		fw.Register().Node().SetChain(cc)
	}
	return r
}

func outPkt(flags packet.TCPFlags) *packet.Packet {
	return packet.NewBuilder().
		Src(packet.Addr4(10, 0, 0, 5)).Dst(packet.Addr4(93, 184, 216, 34)).
		TCP(44444, 443, flags).Build()
}

func inPkt(flags packet.TCPFlags) *packet.Packet {
	return packet.NewBuilder().
		Src(packet.Addr4(93, 184, 216, 34)).Dst(packet.Addr4(10, 0, 0, 5)).
		TCP(443, 44444, flags).Build()
}

func TestUnsolicitedInboundBlocked(t *testing.T) {
	r := newRig(t, 1, 2)
	r.fws[0].Switch().InjectPacket(inPkt(packet.FlagSYN))
	r.eng.RunFor(10 * time.Millisecond)
	if len(r.out[0]) != 0 {
		t.Fatal("unsolicited inbound forwarded")
	}
	if r.fws[0].Stats.BlockedIn.Value() != 1 {
		t.Fatal("block not counted")
	}
}

func TestOutboundOpensPinhole(t *testing.T) {
	r := newRig(t, 2, 2)
	r.fws[0].Switch().InjectPacket(outPkt(packet.FlagSYN))
	r.eng.RunFor(50 * time.Millisecond)
	if len(r.out[0]) != 1 {
		t.Fatalf("SYN not forwarded after state install (%d)", len(r.out[0]))
	}
	// Reply comes back through the SAME switch.
	r.fws[0].Switch().InjectPacket(inPkt(packet.FlagSYN | packet.FlagACK))
	r.eng.RunFor(10 * time.Millisecond)
	if len(r.out[0]) != 2 {
		t.Fatal("reply blocked despite open connection")
	}
}

func TestCrossSwitchPinhole(t *testing.T) {
	// The §3.2 scenario: the reply path traverses a DIFFERENT switch, which
	// must still admit it — only possible with shared state.
	r := newRig(t, 3, 3)
	r.fws[0].Switch().InjectPacket(outPkt(packet.FlagSYN))
	r.eng.RunFor(50 * time.Millisecond)
	r.fws[2].Switch().InjectPacket(inPkt(packet.FlagACK))
	r.eng.RunFor(10 * time.Millisecond)
	if len(r.out[2]) != 1 {
		t.Fatal("cross-switch reply blocked: state not replicated")
	}
	if r.fws[2].Stats.AllowedIn.Value() != 1 {
		t.Fatal("allow not counted")
	}
}

func TestCloseBlocksFurtherInbound(t *testing.T) {
	r := newRig(t, 4, 2)
	r.fws[0].Switch().InjectPacket(outPkt(packet.FlagSYN))
	r.eng.RunFor(50 * time.Millisecond)
	r.fws[0].Switch().InjectPacket(outPkt(packet.FlagFIN | packet.FlagACK))
	r.eng.RunFor(50 * time.Millisecond)
	if r.fws[0].Stats.Closed.Value() != 1 {
		t.Fatal("close not processed")
	}
	// Inbound after close, at the other switch.
	r.fws[1].Switch().InjectPacket(inPkt(packet.FlagACK))
	r.eng.RunFor(10 * time.Millisecond)
	if len(r.out[1]) != 0 {
		t.Fatal("inbound admitted after close")
	}
}

func TestOutboundDataNoControlPlane(t *testing.T) {
	r := newRig(t, 5, 2)
	r.fws[0].Switch().InjectPacket(outPkt(packet.FlagSYN))
	r.eng.RunFor(50 * time.Millisecond)
	held := r.fws[0].Stats.HeldPackets.Value()
	for i := 0; i < 20; i++ {
		r.fws[0].Switch().InjectPacket(outPkt(packet.FlagACK))
	}
	r.eng.RunFor(10 * time.Millisecond)
	if r.fws[0].Stats.HeldPackets.Value() != held {
		t.Fatal("established-connection packets hit the control plane")
	}
	if len(r.out[0]) != 21 {
		t.Fatalf("forwarded %d", len(r.out[0]))
	}
}

func TestNonTCPDropped(t *testing.T) {
	r := newRig(t, 6, 1)
	udp := packet.NewBuilder().Src(packet.Addr4(10, 0, 0, 1)).Dst(packet.Addr4(1, 1, 1, 1)).UDP(1, 2).Build()
	r.fws[0].Switch().InjectPacket(udp)
	r.eng.RunFor(5 * time.Millisecond)
	if len(r.out[0]) != 0 {
		t.Fatal("UDP forwarded by TCP firewall")
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := netem.New(eng, netem.LinkProfile{})
	in := core.NewInstance(pisa.New(eng, nw, pisa.Config{Addr: 1}))
	if _, err := New(in, Config{Reg: 1, Capacity: 0}); err == nil {
		t.Fatal("zero capacity accepted")
	}
}
