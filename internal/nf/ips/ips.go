// Package ips implements the intrusion prevention system of §4.1 (P4ID-
// style): every packet's payload is scanned against a signature set; a
// match drops the packet. Signatures are read on every packet but updated
// rarely (an operator pushing new rules), and the paper classifies the
// state as weakly consistent — a few malicious packets slipping through
// right after a signature push is acceptable. The signature set is
// therefore an ERO register: local reads always (bounded latency), chain
// writes, no pending bits.
//
// Signature matching is 8-byte-gram hashing: a signature is the hash of an
// 8-byte pattern; the data plane slides an 8-byte window over the payload
// and looks each gram hash up in the register. This is the kind of fixed-
// width matching a PISA pipeline can express (P4ID uses similar per-window
// hashing).
package ips

import (
	"encoding/binary"
	"fmt"

	"swishmem/internal/chain"
	"swishmem/internal/core"
	"swishmem/internal/packet"
	"swishmem/internal/pisa"
	"swishmem/internal/stats"
)

// GramSize is the signature window width in bytes.
const GramSize = 8

// Config parameterizes one IPS instance.
type Config struct {
	// Reg is the shared signature register ID.
	Reg uint16
	// Capacity is the maximum number of signatures.
	Capacity int
	// MaxWindows bounds the number of payload windows scanned per packet
	// (pipeline stage budget). Default 16.
	MaxWindows int
}

func (c Config) withDefaults() Config {
	if c.MaxWindows <= 0 {
		c.MaxWindows = 16
	}
	return c
}

// Stats counts IPS events.
type Stats struct {
	Scanned stats.Counter
	Matched stats.Counter // packets dropped on signature match
	Updates stats.Counter // signature installs/removals issued locally
}

// IPS is one per-switch instance.
type IPS struct {
	cfg Config
	sw  *pisa.Switch
	reg *core.StrongRegister // ERO mode

	// Egress receives clean packets.
	Egress func(p *packet.Packet)

	Stats Stats
}

// New declares the IPS on a switch instance.
func New(in *core.Instance, cfg Config) (*IPS, error) {
	cfg = cfg.withDefaults()
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("ips: need positive capacity")
	}
	reg, err := in.NewStrongRegister(core.EventualRead, chain.Config{
		Reg: cfg.Reg, Capacity: cfg.Capacity, ValueWidth: 1,
	})
	if err != nil {
		return nil, err
	}
	return &IPS{cfg: cfg, sw: in.Switch(), reg: reg}, nil
}

// Register exposes the ERO register.
func (s *IPS) Register() *core.StrongRegister { return s.reg }

// Switch returns the switch this instance runs on.
func (s *IPS) Switch() *pisa.Switch { return s.sw }

// Install wires the IPS into the switch pipeline.
func (s *IPS) Install() {
	s.sw.SetProgram(s.program)
	if s.Egress == nil {
		s.Egress = func(*packet.Packet) {}
	}
	s.sw.SetEgress(s.Egress)
}

// SignatureKey hashes an 8-byte pattern into the register key space.
// Patterns shorter than GramSize are zero-padded.
func SignatureKey(pattern []byte) uint64 {
	var b [GramSize]byte
	copy(b[:], pattern)
	return gramHash(binary.BigEndian.Uint64(b[:]))
}

func gramHash(g uint64) uint64 {
	g ^= g >> 33
	g *= 0xff51afd7ed558ccd
	g ^= g >> 33
	g *= 0xc4ceb9fe1a85ec53
	g ^= g >> 33
	return g
}

// AddSignature installs a signature from this switch: an ERO write that
// propagates through the chain. done fires when the write commits (weak
// consistency means other switches may briefly keep matching/admitting in
// the interim — the tolerated window of §4.1).
func (s *IPS) AddSignature(pattern []byte, done func(ok bool)) {
	s.Stats.Updates.Inc()
	s.reg.Write(SignatureKey(pattern), []byte{1}, done)
}

// RemoveSignature retires a signature (writes a tombstone).
func (s *IPS) RemoveSignature(pattern []byte, done func(ok bool)) {
	s.Stats.Updates.Inc()
	s.reg.Write(SignatureKey(pattern), []byte{0}, done)
}

func (s *IPS) program(sw *pisa.Switch, p *packet.Packet) pisa.Verdict {
	if p.IP == nil {
		return pisa.Drop
	}
	s.Stats.Scanned.Inc()
	pl := p.Payload
	windows := len(pl) - GramSize + 1
	if windows > s.cfg.MaxWindows {
		windows = s.cfg.MaxWindows
	}
	for i := 0; i < windows; i++ {
		key := gramHash(binary.BigEndian.Uint64(pl[i : i+GramSize]))
		var hit bool
		s.reg.Read(key, func(v []byte, ok bool) {
			hit = ok && len(v) > 0 && v[0] == 1
		})
		if hit {
			s.Stats.Matched.Inc()
			return pisa.Drop
		}
	}
	return pisa.Forward
}
