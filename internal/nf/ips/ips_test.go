package ips

import (
	"testing"
	"time"

	"swishmem/internal/core"
	"swishmem/internal/netem"
	"swishmem/internal/packet"
	"swishmem/internal/pisa"
	"swishmem/internal/sim"
	"swishmem/internal/wire"
)

type rig struct {
	eng  *sim.Engine
	ipss []*IPS
	out  [][]*packet.Packet
}

func newRig(t testing.TB, seed int64, n int) *rig {
	t.Helper()
	eng := sim.NewEngine(seed)
	nw := netem.New(eng, netem.LinkProfile{Latency: 10_000})
	r := &rig{eng: eng, out: make([][]*packet.Packet, n)}
	var members []uint16
	for i := 0; i < n; i++ {
		sw := pisa.New(eng, nw, pisa.Config{Addr: netem.Addr(i + 1), PipelinePPS: 1e9})
		in := core.NewInstance(sw)
		s, err := New(in, Config{Reg: 1, Capacity: 4096})
		if err != nil {
			t.Fatal(err)
		}
		i := i
		s.Egress = func(p *packet.Packet) { r.out[i] = append(r.out[i], p) }
		s.Install()
		r.ipss = append(r.ipss, s)
		members = append(members, uint16(i+1))
	}
	cc := wire.ChainConfig{Epoch: 1, Members: members}
	for _, s := range r.ipss {
		s.Register().Node().SetChain(cc)
	}
	return r
}

func payloadPkt(payload []byte) *packet.Packet {
	return packet.NewBuilder().
		Src(packet.Addr4(172, 16, 0, 1)).Dst(packet.Addr4(10, 0, 0, 1)).
		TCP(1234, 80, packet.FlagACK).Payload(payload).Build()
}

func TestCleanTrafficForwarded(t *testing.T) {
	r := newRig(t, 1, 2)
	r.ipss[0].Switch().InjectPacket(payloadPkt([]byte("completely harmless data")))
	r.eng.RunFor(10 * time.Millisecond)
	if len(r.out[0]) != 1 {
		t.Fatal("clean packet dropped")
	}
	if r.ipss[0].Stats.Matched.Value() != 0 {
		t.Fatal("false match")
	}
}

func TestSignatureMatchDrops(t *testing.T) {
	r := newRig(t, 2, 2)
	done := false
	r.ipss[0].AddSignature([]byte("EVILWORM"), func(ok bool) { done = ok })
	r.eng.RunFor(50 * time.Millisecond)
	if !done {
		t.Fatal("signature install did not commit")
	}
	// The signature appears mid-payload: window scan must find it.
	r.ipss[0].Switch().InjectPacket(payloadPkt([]byte("xxEVILWORMyy")))
	r.eng.RunFor(10 * time.Millisecond)
	if len(r.out[0]) != 0 {
		t.Fatal("malicious packet forwarded")
	}
	if r.ipss[0].Stats.Matched.Value() != 1 {
		t.Fatal("match not counted")
	}
}

func TestSignaturePropagatesToAllSwitches(t *testing.T) {
	r := newRig(t, 3, 3)
	r.ipss[0].AddSignature([]byte("BADBYTES"), nil)
	r.eng.RunFor(50 * time.Millisecond)
	for i := range r.ipss {
		r.ipss[i].Switch().InjectPacket(payloadPkt([]byte("..BADBYTES..")))
	}
	r.eng.RunFor(10 * time.Millisecond)
	for i := range r.out {
		if len(r.out[i]) != 0 {
			t.Fatalf("switch %d did not enforce the replicated signature", i+1)
		}
	}
}

func TestRemoveSignature(t *testing.T) {
	r := newRig(t, 4, 2)
	r.ipss[0].AddSignature([]byte("OLDRULE!"), nil)
	r.eng.RunFor(50 * time.Millisecond)
	r.ipss[0].RemoveSignature([]byte("OLDRULE!"), nil)
	r.eng.RunFor(50 * time.Millisecond)
	r.ipss[1].Switch().InjectPacket(payloadPkt([]byte("xxOLDRULE!xx")))
	r.eng.RunFor(10 * time.Millisecond)
	if len(r.out[1]) != 1 {
		t.Fatal("retired signature still enforced")
	}
}

func TestEROReadsAreLocalDuringUpdate(t *testing.T) {
	// The §4.1 trade: during signature propagation, other switches keep
	// processing from their local copy with no read forwarding.
	r := newRig(t, 5, 3)
	r.ipss[0].AddSignature([]byte("NEWSIG!!"), nil)
	// Immediately scan at another switch: must not block or forward reads.
	r.ipss[2].Switch().InjectPacket(payloadPkt([]byte("NEWSIG!! payload")))
	r.eng.RunFor(50 * time.Millisecond)
	if r.ipss[2].Register().Node().Counters().ReadsForwarded.Value() != 0 {
		t.Fatal("ERO register forwarded reads")
	}
}

func TestShortPayloadNotScanned(t *testing.T) {
	r := newRig(t, 6, 1)
	r.ipss[0].AddSignature([]byte("ABCDEFGH"), nil)
	r.eng.RunFor(50 * time.Millisecond)
	// 7-byte payload: no full window, must pass.
	r.ipss[0].Switch().InjectPacket(payloadPkt([]byte("ABCDEFG")))
	r.eng.RunFor(10 * time.Millisecond)
	if len(r.out[0]) != 1 {
		t.Fatal("short payload dropped")
	}
}

func TestMaxWindowsBoundsScan(t *testing.T) {
	eng := sim.NewEngine(7)
	nw := netem.New(eng, netem.LinkProfile{Latency: 10_000})
	in := core.NewInstance(pisa.New(eng, nw, pisa.Config{Addr: 1, PipelinePPS: 1e9}))
	s, err := New(in, Config{Reg: 1, Capacity: 128, MaxWindows: 4})
	if err != nil {
		t.Fatal(err)
	}
	var out []*packet.Packet
	s.Egress = func(p *packet.Packet) { out = append(out, p) }
	s.Install()
	s.Register().Node().SetChain(wire.ChainConfig{Epoch: 1, Members: []uint16{1}})
	s.AddSignature([]byte("DEEPSIG!"), nil)
	eng.RunFor(50 * time.Millisecond)
	// Signature starts at offset 10, beyond the 4-window scan budget.
	payload := append(make([]byte, 10), []byte("DEEPSIG!")...)
	s.Switch().InjectPacket(payloadPkt(payload))
	eng.RunFor(10 * time.Millisecond)
	if len(out) != 1 {
		t.Fatal("scan exceeded its window budget")
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := netem.New(eng, netem.LinkProfile{})
	in := core.NewInstance(pisa.New(eng, nw, pisa.Config{Addr: 1}))
	if _, err := New(in, Config{Reg: 1, Capacity: 0}); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestSignatureKeyPadding(t *testing.T) {
	if SignatureKey([]byte("AB")) != SignatureKey([]byte{'A', 'B', 0, 0, 0, 0, 0, 0}) {
		t.Fatal("short patterns should be zero-padded")
	}
	if SignatureKey([]byte("ABCDEFGH")) == SignatureKey([]byte("ABCDEFGI")) {
		t.Fatal("distinct patterns collided")
	}
}
