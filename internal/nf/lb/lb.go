// Package lb implements the L4 load balancer of §4.1 (SilkRoad-style):
// incoming connections are assigned a destination IP (DIP), and
// per-connection consistency (PCC) requires that the assignment never
// change for the connection's lifetime — even when later packets arrive at
// a different switch (multipath, adaptive routing) or the assigning switch
// fails. The connection-to-DIP table is therefore a shared SRO register.
//
// A Sharded mode keeps assignments in switch-local state instead — the
// strawman of §3.2 — so experiment E9 can count the PCC violations that
// re-routing inflicts on it.
package lb

import (
	"fmt"
	"net/netip"

	"swishmem/internal/chain"
	"swishmem/internal/core"
	"swishmem/internal/nf"
	"swishmem/internal/packet"
	"swishmem/internal/pisa"
	"swishmem/internal/stats"
)

// Mode selects state management.
type Mode int

// Modes.
const (
	// Replicated shares the connection table through an SRO register.
	Replicated Mode = iota
	// Sharded keeps assignments switch-local (the §3.2 baseline).
	Sharded
)

func (m Mode) String() string {
	if m == Sharded {
		return "Sharded"
	}
	return "Replicated"
}

// Config parameterizes one LB instance.
type Config struct {
	// Reg is the shared connection-table register ID.
	Reg uint16
	// Capacity is the connection table size.
	Capacity int
	// DIPs is the backend pool (same order on every switch).
	DIPs []netip.Addr
	// Mode selects Replicated (SwiShmem) or Sharded (baseline).
	Mode Mode
}

// Stats counts LB events.
type Stats struct {
	Assigned    stats.Counter // new connections assigned a DIP
	Forwarded   stats.Counter // packets forwarded to their DIP
	HeldPackets stats.Counter
	NoBackend   stats.Counter
}

// LB is one per-switch instance.
type LB struct {
	cfg Config
	sw  *pisa.Switch
	reg *core.StrongRegister // nil in Sharded mode

	local map[uint64][]byte // Sharded-mode state
	rr    int               // round-robin cursor (per switch)

	// inflight buffers packets per connection key while the assignment
	// write is in flight (control-plane DRAM).
	inflight map[uint64][]*packet.Packet

	// Egress receives forwarded packets; the chosen DIP is written into
	// p.IP.Dst (encapsulation elided).
	Egress func(p *packet.Packet)

	Stats Stats
}

// New declares the LB on a switch instance.
func New(in *core.Instance, cfg Config) (*LB, error) {
	if len(cfg.DIPs) == 0 {
		return nil, fmt.Errorf("lb: need at least one DIP")
	}
	for _, d := range cfg.DIPs {
		if !d.Is4() {
			return nil, fmt.Errorf("lb: DIP %v is not IPv4", d)
		}
	}
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("lb: need positive capacity")
	}
	l := &LB{cfg: cfg, sw: in.Switch(), inflight: make(map[uint64][]*packet.Packet)}
	if cfg.Mode == Replicated {
		reg, err := in.NewStrongRegister(core.Strong, chain.Config{
			Reg: cfg.Reg, Capacity: cfg.Capacity, ValueWidth: 6,
			Backing: chain.ControlPlane,
		})
		if err != nil {
			return nil, err
		}
		l.reg = reg
	} else {
		l.local = make(map[uint64][]byte)
	}
	return l, nil
}

// Register exposes the SRO register (nil in Sharded mode).
func (l *LB) Register() *core.StrongRegister { return l.reg }

// Switch returns the switch this instance runs on.
func (l *LB) Switch() *pisa.Switch { return l.sw }

// Install wires the LB into the switch pipeline.
func (l *LB) Install() {
	l.sw.SetProgram(l.program)
	l.sw.SetCtrlPacketHandler(l.ctrlAssign)
	if l.Egress == nil {
		l.Egress = func(*packet.Packet) {}
	}
	l.sw.SetEgress(l.Egress)
}

func (l *LB) lookup(key uint64) ([]byte, bool) {
	if l.cfg.Mode == Sharded {
		v, ok := l.local[key]
		return v, ok
	}
	var val []byte
	var ok bool
	l.reg.Read(key, func(v []byte, o bool) { val, ok = v, o })
	return val, ok
}

func (l *LB) program(sw *pisa.Switch, p *packet.Packet) pisa.Verdict {
	k, ok := p.Flow()
	if !ok || p.TCP == nil {
		return pisa.Drop
	}
	key := nf.FlowID(k)
	if v, hit := l.lookup(key); hit {
		ip, _, ok := nf.GetAddrPort(v)
		if !ok {
			return pisa.Drop
		}
		p.IP.Dst = ip
		l.Stats.Forwarded.Inc()
		return pisa.Forward
	}
	if !p.TCP.Flags.Has(packet.FlagSYN) {
		// Mid-connection packet with no state: in Replicated mode this can
		// only be a pre-commit race (the packet is punted and retried by
		// the client); in Sharded mode it is the PCC hazard E9 measures —
		// the switch has no choice but to assign anew.
		if l.cfg.Mode == Sharded {
			return l.assignLocal(p, key)
		}
		return pisa.Drop
	}
	if l.cfg.Mode == Sharded {
		return l.assignLocal(p, key)
	}
	l.Stats.HeldPackets.Inc()
	return pisa.ToControlPlane
}

// pickDIP selects the next backend round-robin (per switch — which is
// exactly why two switches can disagree in Sharded mode).
func (l *LB) pickDIP() (netip.Addr, bool) {
	if len(l.cfg.DIPs) == 0 {
		return netip.Addr{}, false
	}
	d := l.cfg.DIPs[l.rr%len(l.cfg.DIPs)]
	l.rr++
	return d, true
}

func (l *LB) assignLocal(p *packet.Packet, key uint64) pisa.Verdict {
	dip, ok := l.pickDIP()
	if !ok {
		l.Stats.NoBackend.Inc()
		return pisa.Drop
	}
	l.local[key] = nf.PutAddrPort(dip, 0)
	l.Stats.Assigned.Inc()
	p.IP.Dst = dip
	l.Stats.Forwarded.Inc()
	return pisa.Forward
}

// ctrlAssign handles a punted SYN: duplicate punts for the same connection
// buffer behind the first; the register is re-checked (the assignment may
// have committed or be resolvable at the tail); a confirmed miss assigns a
// DIP, writes it through SwiShmem, and releases every buffered packet on
// commit.
func (l *LB) ctrlAssign(p *packet.Packet) {
	k, _ := p.Flow()
	key := nf.FlowID(k)
	if q, dup := l.inflight[key]; dup {
		l.inflight[key] = append(q, p)
		return
	}
	l.reg.Read(key, func(v []byte, ok bool) {
		if ok {
			if ip, _, ok2 := nf.GetAddrPort(v); ok2 {
				l.releaseTo(p, ip)
			}
			return
		}
		if q, dup := l.inflight[key]; dup {
			l.inflight[key] = append(q, p)
			return
		}
		l.assign(key, p)
	})
}

func (l *LB) releaseTo(p *packet.Packet, dip netip.Addr) {
	p.IP.Dst = dip
	l.Stats.Forwarded.Inc()
	l.sw.InjectEgress(p)
}

func (l *LB) assign(key uint64, p *packet.Packet) {
	dip, ok := l.pickDIP()
	if !ok {
		l.Stats.NoBackend.Inc()
		return
	}
	l.Stats.Assigned.Inc()
	l.inflight[key] = []*packet.Packet{p}
	l.reg.Write(key, nf.PutAddrPort(dip, 0), func(committed bool) {
		q := l.inflight[key]
		delete(l.inflight, key)
		if !committed {
			return
		}
		for _, buffered := range q {
			l.releaseTo(buffered, dip)
		}
	})
}
