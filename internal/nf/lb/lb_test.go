package lb

import (
	"net/netip"
	"testing"
	"time"

	"swishmem/internal/core"
	"swishmem/internal/netem"
	"swishmem/internal/packet"
	"swishmem/internal/pisa"
	"swishmem/internal/sim"
	"swishmem/internal/wire"
)

func dips() []netip.Addr {
	return []netip.Addr{
		packet.Addr4(192, 168, 1, 1),
		packet.Addr4(192, 168, 1, 2),
		packet.Addr4(192, 168, 1, 3),
	}
}

type rig struct {
	eng *sim.Engine
	lbs []*LB
	out [][]*packet.Packet
}

func newRig(t testing.TB, seed int64, n int, mode Mode) *rig {
	t.Helper()
	eng := sim.NewEngine(seed)
	nw := netem.New(eng, netem.LinkProfile{Latency: 10_000})
	r := &rig{eng: eng, out: make([][]*packet.Packet, n)}
	var members []uint16
	for i := 0; i < n; i++ {
		sw := pisa.New(eng, nw, pisa.Config{Addr: netem.Addr(i + 1), PipelinePPS: 1e9})
		in := core.NewInstance(sw)
		l, err := New(in, Config{Reg: 1, Capacity: 8192, DIPs: dips(), Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		i := i
		l.Egress = func(p *packet.Packet) { r.out[i] = append(r.out[i], p) }
		l.Install()
		r.lbs = append(r.lbs, l)
		members = append(members, uint16(i+1))
	}
	if mode == Replicated {
		cc := wire.ChainConfig{Epoch: 1, Members: members}
		for _, l := range r.lbs {
			l.Register().Node().SetChain(cc)
		}
	}
	return r
}

func conn(sport uint16, flags packet.TCPFlags) *packet.Packet {
	return packet.NewBuilder().
		Src(packet.Addr4(10, 9, 8, 7)).Dst(packet.Addr4(203, 0, 113, 80)). // VIP
		TCP(sport, 80, flags).Build()
}

func TestAssignAndForward(t *testing.T) {
	r := newRig(t, 1, 3, Replicated)
	r.lbs[0].Switch().InjectPacket(conn(1000, packet.FlagSYN))
	r.eng.RunFor(50 * time.Millisecond)
	if len(r.out[0]) != 1 {
		t.Fatalf("egressed %d", len(r.out[0]))
	}
	dip := r.out[0][0].IP.Dst
	found := false
	for _, d := range dips() {
		if d == dip {
			found = true
		}
	}
	if !found {
		t.Fatalf("destination %v is not a DIP", dip)
	}
}

func TestPCCAcrossSwitches(t *testing.T) {
	// Connection assigned at switch 1; later packets at switches 2 and 3
	// must reach the SAME DIP.
	r := newRig(t, 2, 3, Replicated)
	r.lbs[0].Switch().InjectPacket(conn(2000, packet.FlagSYN))
	r.eng.RunFor(50 * time.Millisecond)
	dip := r.out[0][0].IP.Dst
	r.lbs[1].Switch().InjectPacket(conn(2000, packet.FlagACK))
	r.lbs[2].Switch().InjectPacket(conn(2000, packet.FlagACK))
	r.eng.RunFor(10 * time.Millisecond)
	for i := 1; i <= 2; i++ {
		if len(r.out[i]) != 1 {
			t.Fatalf("switch %d egressed %d", i+1, len(r.out[i]))
		}
		if r.out[i][0].IP.Dst != dip {
			t.Fatalf("PCC violated: switch %d sent to %v, assigned %v", i+1, r.out[i][0].IP.Dst, dip)
		}
	}
	// Only one assignment happened.
	total := r.lbs[0].Stats.Assigned.Value() + r.lbs[1].Stats.Assigned.Value() + r.lbs[2].Stats.Assigned.Value()
	if total != 1 {
		t.Fatalf("assignments = %d", total)
	}
}

func TestShardedViolatesPCCUnderRerouting(t *testing.T) {
	// The §3.2 strawman: sharded state + rerouted flow = fresh assignment,
	// potentially a different DIP. With 3 DIPs and round-robin, switch 2's
	// independent assignment diverges.
	r := newRig(t, 3, 2, Sharded)
	r.lbs[0].Switch().InjectPacket(conn(3000, packet.FlagSYN))
	// Force divergence: advance switch 2's round-robin cursor.
	r.lbs[1].Switch().InjectPacket(conn(9999, packet.FlagSYN))
	r.eng.RunFor(10 * time.Millisecond)
	dip0 := r.out[0][0].IP.Dst
	// Reroute: mid-connection packet lands on switch 2.
	r.lbs[1].Switch().InjectPacket(conn(3000, packet.FlagACK))
	r.eng.RunFor(10 * time.Millisecond)
	if len(r.out[1]) != 2 {
		t.Fatalf("switch 2 egressed %d", len(r.out[1]))
	}
	dip1 := r.out[1][1].IP.Dst
	if dip0 == dip1 {
		t.Fatalf("expected PCC violation in sharded mode (round-robin offset); both %v", dip0)
	}
}

func TestMidConnectionNoStateDroppedReplicated(t *testing.T) {
	r := newRig(t, 4, 2, Replicated)
	r.lbs[0].Switch().InjectPacket(conn(4000, packet.FlagACK)) // no SYN ever
	r.eng.RunFor(10 * time.Millisecond)
	if len(r.out[0]) != 0 {
		t.Fatal("stateless mid-connection packet forwarded")
	}
}

func TestRoundRobinSpread(t *testing.T) {
	r := newRig(t, 5, 1, Replicated)
	for i := 0; i < 30; i++ {
		r.lbs[0].Switch().InjectPacket(conn(uint16(5000+i), packet.FlagSYN))
	}
	r.eng.RunFor(200 * time.Millisecond)
	counts := map[netip.Addr]int{}
	for _, p := range r.out[0] {
		counts[p.IP.Dst]++
	}
	if len(counts) != 3 {
		t.Fatalf("DIPs used: %d", len(counts))
	}
	for d, c := range counts {
		if c != 10 {
			t.Fatalf("DIP %v got %d/30", d, c)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := netem.New(eng, netem.LinkProfile{})
	in := core.NewInstance(pisa.New(eng, nw, pisa.Config{Addr: 1}))
	if _, err := New(in, Config{Reg: 1, Capacity: 8}); err == nil {
		t.Fatal("no DIPs accepted")
	}
	if _, err := New(in, Config{Reg: 1, Capacity: 0, DIPs: dips()}); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := New(in, Config{Reg: 1, Capacity: 8, DIPs: []netip.Addr{netip.MustParseAddr("::1")}}); err == nil {
		t.Fatal("IPv6 DIP accepted")
	}
	if Replicated.String() != "Replicated" || Sharded.String() != "Sharded" {
		t.Fatal("mode strings")
	}
}

func TestNoBackendAfterConfigError(t *testing.T) {
	// pickDIP with an emptied pool: simulate by building an LB whose DIP
	// slice is drained through the unexported path — instead verify the
	// sharded mid-connection assignment path and stats.
	r := newRig(t, 6, 1, Sharded)
	// Mid-connection packet with no state in sharded mode: assigned anyway.
	r.lbs[0].Switch().InjectPacket(conn(7000, packet.FlagACK))
	r.eng.RunFor(5 * time.Millisecond)
	if len(r.out[0]) != 1 {
		t.Fatal("sharded mid-connection packet not assigned")
	}
	if r.lbs[0].Stats.Assigned.Value() != 1 {
		t.Fatal("assignment not counted")
	}
}

func TestNonTCPDropped(t *testing.T) {
	r := newRig(t, 7, 1, Replicated)
	udp := packet.NewBuilder().Src(packet.Addr4(1, 1, 1, 1)).Dst(packet.Addr4(2, 2, 2, 2)).UDP(1, 2).Build()
	r.lbs[0].Switch().InjectPacket(udp)
	r.eng.RunFor(5 * time.Millisecond)
	if len(r.out[0]) != 0 {
		t.Fatal("UDP forwarded by TCP LB")
	}
}

func TestDuplicateSYNsSingleAssignment(t *testing.T) {
	// Retransmitted SYNs while the first assignment is in flight must not
	// allocate twice (inflight dedup at the control plane).
	r := newRig(t, 8, 2, Replicated)
	for i := 0; i < 5; i++ {
		r.lbs[0].Switch().InjectPacket(conn(8000, packet.FlagSYN))
	}
	r.eng.RunFor(100 * time.Millisecond)
	if got := r.lbs[0].Stats.Assigned.Value(); got != 1 {
		t.Fatalf("assignments = %d, want 1", got)
	}
	if len(r.out[0]) != 5 {
		t.Fatalf("forwarded %d of 5 buffered packets", len(r.out[0]))
	}
	// All five went to the same DIP.
	dip := r.out[0][0].IP.Dst
	for _, p := range r.out[0] {
		if p.IP.Dst != dip {
			t.Fatal("buffered packets diverged")
		}
	}
}
