// Package nat implements the distributed NAT of §4.1: the translation table
// is a shared SRO register (strong consistency — a translation observed by
// one switch must be the translation everywhere, or multi-path routing
// breaks client connections), while the free-port pool is partitioned per
// switch and never shared ("different port ranges can be assigned to
// different switches to avoid sharing this state").
//
// The packet path follows §6.1's write flow exactly: a packet that creates
// a new translation is punted to the control plane, which allocates a port,
// buffers the packet, issues the replicated writes (forward and reverse
// mappings), and re-injects the translated packet into the data plane only
// after the tail acknowledges — strong consistency at the cost of
// control-plane involvement, which is tolerable because translations are
// created once per connection (Observation 1).
package nat

import (
	"fmt"
	"net/netip"

	"swishmem/internal/chain"
	"swishmem/internal/core"
	"swishmem/internal/nf"
	"swishmem/internal/packet"
	"swishmem/internal/pisa"
	"swishmem/internal/stats"
)

// Config parameterizes one NAT instance (one switch).
type Config struct {
	// Reg is the shared translation register ID (same on every switch).
	Reg uint16
	// Capacity is the translation table size (two entries per connection:
	// forward and reverse).
	Capacity int
	// ExternalIP is the NAT's public address.
	ExternalIP netip.Addr
	// PortLo, PortHi is this switch's private slice of the external port
	// space (inclusive); slices must be disjoint across switches.
	PortLo, PortHi uint16
	// Internal reports whether an address is on the inside of the NAT.
	// Default: 10.0.0.0/8.
	Internal func(a netip.Addr) bool
}

func (c Config) withDefaults() Config {
	if c.Internal == nil {
		c.Internal = func(a netip.Addr) bool { return a.As4()[0] == 10 }
	}
	return c
}

// Stats counts NAT events.
type Stats struct {
	Translated  stats.Counter // outbound packets rewritten from state
	Reversed    stats.Counter // inbound packets rewritten from state
	NewConns    stats.Counter // translations created
	HeldPackets stats.Counter // packets buffered awaiting commit
	DropNoState stats.Counter // inbound packets with no translation
	DropNoPorts stats.Counter // pool exhausted
	WriteFails  stats.Counter
}

// NAT is one per-switch instance.
type NAT struct {
	cfg Config
	sw  *pisa.Switch
	reg *core.StrongRegister

	freePorts []uint16

	// inflight queues packets per forward key while its translation write
	// is in flight, so concurrent packets of the same new connection do not
	// allocate duplicate translations (control-plane DRAM state).
	inflight map[uint64]*pendingConn

	// Egress receives translated packets (set by the harness/topology).
	Egress func(p *packet.Packet)

	Stats Stats
}

// New declares the NAT on a switch instance. All switches must use the same
// Reg and Capacity but disjoint port ranges.
func New(in *core.Instance, cfg Config) (*NAT, error) {
	cfg = cfg.withDefaults()
	if !cfg.ExternalIP.Is4() {
		return nil, fmt.Errorf("nat: external IP must be IPv4")
	}
	if cfg.PortHi < cfg.PortLo {
		return nil, fmt.Errorf("nat: empty port range [%d,%d]", cfg.PortLo, cfg.PortHi)
	}
	reg, err := in.NewStrongRegister(core.Strong, chain.Config{
		Reg: cfg.Reg, Capacity: cfg.Capacity, ValueWidth: 6,
		// NAT translation tables are control-plane-updated structures
		// (Observation 1), so chain hops run at control-plane cost.
		Backing: chain.ControlPlane,
	})
	if err != nil {
		return nil, err
	}
	n := &NAT{cfg: cfg, sw: in.Switch(), reg: reg, inflight: make(map[uint64]*pendingConn)}
	for p := cfg.PortLo; ; p++ {
		n.freePorts = append(n.freePorts, p)
		if p == cfg.PortHi {
			break
		}
	}
	return n, nil
}

// Register exposes the SRO register (controller wiring).
func (n *NAT) Register() *core.StrongRegister { return n.reg }

// Switch returns the switch this instance runs on.
func (n *NAT) Switch() *pisa.Switch { return n.sw }

// Install wires the NAT into the switch pipeline.
func (n *NAT) Install() {
	n.sw.SetProgram(n.program)
	n.sw.SetCtrlPacketHandler(n.ctrlNewConnection)
	if n.Egress == nil {
		n.Egress = func(*packet.Packet) {}
	}
	n.sw.SetEgress(n.Egress)
}

// FreePorts returns the local pool size (tests, metrics).
func (n *NAT) FreePorts() int { return len(n.freePorts) }

// program is the data-plane packet path.
func (n *NAT) program(sw *pisa.Switch, p *packet.Packet) pisa.Verdict {
	key, ok := p.Flow()
	if !ok || p.TCP == nil {
		return pisa.Drop
	}
	if n.cfg.Internal(key.Src) {
		// Outbound: translate source.
		var hit bool
		var ext []byte
		n.reg.Read(nf.FlowID(key), func(v []byte, ok bool) {
			// SRO local reads complete synchronously; forwarded reads (key
			// pending) complete later — those packets are treated as a miss
			// here and re-punted, which is safe because a pending forward
			// mapping means the control plane is already installing it.
			hit, ext = ok, v
		})
		if hit {
			ip, port, ok := nf.GetAddrPort(ext)
			if !ok {
				return pisa.Drop
			}
			p.IP.Src = ip
			p.TCP.SrcPort = port
			n.Stats.Translated.Inc()
			return pisa.Forward
		}
		// New connection: §6.1 mutating-packet path through control plane.
		n.Stats.HeldPackets.Inc()
		return pisa.ToControlPlane
	}
	// Inbound: reverse-translate destination.
	var hit bool
	var orig []byte
	n.reg.Read(nf.FlowID(key), func(v []byte, ok bool) { hit, orig = ok, v })
	if !hit {
		n.Stats.DropNoState.Inc()
		return pisa.Drop
	}
	ip, port, ok := nf.GetAddrPort(orig)
	if !ok {
		n.Stats.DropNoState.Inc()
		return pisa.Drop
	}
	p.IP.Dst = ip
	p.TCP.DstPort = port
	n.Stats.Reversed.Inc()
	return pisa.Forward
}

// pendingConn tracks one in-flight translation installation.
type pendingConn struct {
	port    uint16
	packets []*packet.Packet
}

// release translates and emits a buffered packet (§7: after the
// acknowledgement, the output packet is injected back to the data plane and
// forwarded).
func (n *NAT) release(p *packet.Packet, extPort uint16) {
	p.IP.Src = n.cfg.ExternalIP
	p.TCP.SrcPort = extPort
	n.Stats.Translated.Inc()
	n.sw.InjectEgress(p)
}

// ctrlNewConnection handles a punted outbound packet with no visible
// translation: it consults the in-flight table (duplicate SYNs and racing
// data packets buffer behind the first), re-checks the register (the
// mapping may have committed, or be pending — the read then resolves at the
// tail), and only allocates a fresh translation on a confirmed miss.
func (n *NAT) ctrlNewConnection(p *packet.Packet) {
	key, _ := p.Flow()
	fwdKey := nf.FlowID(key)
	if pc, ok := n.inflight[fwdKey]; ok {
		pc.packets = append(pc.packets, p)
		return
	}
	n.reg.Read(fwdKey, func(v []byte, ok bool) {
		if ok {
			// Committed while the packet was punted (e.g. the local pending
			// bit masked it); the authoritative value came from the tail.
			if _, port, ok2 := nf.GetAddrPort(v); ok2 {
				n.release(p, port)
			}
			return
		}
		if pc, dup := n.inflight[fwdKey]; dup {
			pc.packets = append(pc.packets, p)
			return
		}
		n.allocate(key, fwdKey, p)
	})
}

// allocate installs a new translation and releases all buffered packets of
// the connection when both mapping writes commit.
func (n *NAT) allocate(key packet.FlowKey, fwdKey uint64, p *packet.Packet) {
	if len(n.freePorts) == 0 {
		n.Stats.DropNoPorts.Inc()
		return
	}
	extPort := n.freePorts[0]
	n.freePorts = n.freePorts[1:]
	n.Stats.NewConns.Inc()
	pc := &pendingConn{port: extPort, packets: []*packet.Packet{p}}
	n.inflight[fwdKey] = pc

	// Reverse flow as seen at the NAT from outside: server -> extIP:extPort.
	revKey := nf.FlowID(packet.FlowKey{
		Src: key.Dst, Dst: n.cfg.ExternalIP,
		SrcPort: key.DstPort, DstPort: extPort,
		Proto: key.Proto,
	})
	fwdVal := nf.PutAddrPort(n.cfg.ExternalIP, extPort)
	revVal := nf.PutAddrPort(key.Src, key.SrcPort)

	pending := 2
	oneDone := func(ok bool) {
		if !ok {
			n.Stats.WriteFails.Inc()
			delete(n.inflight, fwdKey)
			return
		}
		pending--
		if pending > 0 {
			return
		}
		delete(n.inflight, fwdKey)
		for _, q := range pc.packets {
			n.release(q, extPort)
		}
	}
	n.reg.Write(fwdKey, fwdVal, oneDone)
	n.reg.Write(revKey, revVal, oneDone)
}
