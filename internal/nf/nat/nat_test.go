package nat

import (
	"testing"
	"time"

	"swishmem/internal/core"
	"swishmem/internal/netem"
	"swishmem/internal/packet"
	"swishmem/internal/pisa"
	"swishmem/internal/sim"
	"swishmem/internal/wire"
)

type rig struct {
	eng  *sim.Engine
	net  *netem.Network
	nats []*NAT
	out  [][]*packet.Packet
}

func newRig(t testing.TB, seed int64, n int) *rig {
	t.Helper()
	eng := sim.NewEngine(seed)
	nw := netem.New(eng, netem.LinkProfile{Latency: 10_000})
	r := &rig{eng: eng, net: nw, out: make([][]*packet.Packet, n)}
	var members []uint16
	ext := packet.Addr4(203, 0, 113, 1)
	for i := 0; i < n; i++ {
		sw := pisa.New(eng, nw, pisa.Config{Addr: netem.Addr(i + 1), PipelinePPS: 1e9})
		in := core.NewInstance(sw)
		lo := uint16(10000 + 1000*i)
		nat, err := New(in, Config{
			Reg: 1, Capacity: 4096, ExternalIP: ext,
			PortLo: lo, PortHi: lo + 999,
		})
		if err != nil {
			t.Fatal(err)
		}
		i := i
		nat.Egress = func(p *packet.Packet) { r.out[i] = append(r.out[i], p) }
		nat.Install()
		r.nats = append(r.nats, nat)
		members = append(members, uint16(i+1))
	}
	cc := wire.ChainConfig{Epoch: 1, Members: members}
	for _, nat := range r.nats {
		nat.Register().Node().SetChain(cc)
	}
	return r
}

func clientPkt(cSrc byte, sport uint16, flags packet.TCPFlags) *packet.Packet {
	return packet.NewBuilder().
		Src(packet.Addr4(10, 0, 0, cSrc)).Dst(packet.Addr4(198, 51, 100, 7)).
		TCP(sport, 80, flags).Build()
}

func TestOutboundTranslationCreated(t *testing.T) {
	r := newRig(t, 1, 3)
	r.nats[0].Switch().InjectPacket(clientPkt(1, 5555, packet.FlagSYN))
	r.eng.RunFor(50 * time.Millisecond)
	if len(r.out[0]) != 1 {
		t.Fatalf("egressed %d packets", len(r.out[0]))
	}
	p := r.out[0][0]
	if p.IP.Src != packet.Addr4(203, 0, 113, 1) {
		t.Fatalf("src not translated: %v", p.IP.Src)
	}
	if p.TCP.SrcPort < 10000 || p.TCP.SrcPort > 10999 {
		t.Fatalf("port %d outside switch 1's slice", p.TCP.SrcPort)
	}
	if r.nats[0].Stats.NewConns.Value() != 1 {
		t.Fatal("new connection not counted")
	}
}

func TestSubsequentPacketsFastPath(t *testing.T) {
	r := newRig(t, 2, 3)
	r.nats[0].Switch().InjectPacket(clientPkt(1, 5555, packet.FlagSYN))
	r.eng.RunFor(50 * time.Millisecond)
	held := r.nats[0].Stats.HeldPackets.Value()
	// Follow-up packets translate in the data plane, no control plane.
	for i := 0; i < 10; i++ {
		r.nats[0].Switch().InjectPacket(clientPkt(1, 5555, packet.FlagACK))
	}
	r.eng.RunFor(10 * time.Millisecond)
	if len(r.out[0]) != 11 {
		t.Fatalf("egressed %d packets", len(r.out[0]))
	}
	if r.nats[0].Stats.HeldPackets.Value() != held {
		t.Fatal("fast-path packet went to control plane")
	}
	// All use the same translation.
	port := r.out[0][0].TCP.SrcPort
	for _, p := range r.out[0] {
		if p.TCP.SrcPort != port {
			t.Fatal("translation changed mid-connection")
		}
	}
}

func TestCrossSwitchConsistency(t *testing.T) {
	// The paper's multi-path scenario: a flow's later packets arrive at a
	// DIFFERENT switch and must see the same translation.
	r := newRig(t, 3, 3)
	r.nats[0].Switch().InjectPacket(clientPkt(1, 6000, packet.FlagSYN))
	r.eng.RunFor(50 * time.Millisecond)
	port := r.out[0][0].TCP.SrcPort

	r.nats[2].Switch().InjectPacket(clientPkt(1, 6000, packet.FlagACK))
	r.eng.RunFor(10 * time.Millisecond)
	if len(r.out[2]) != 1 {
		t.Fatalf("switch 3 egressed %d", len(r.out[2]))
	}
	if got := r.out[2][0].TCP.SrcPort; got != port {
		t.Fatalf("switch 3 used port %d, switch 1 used %d", got, port)
	}
	if r.nats[2].Stats.NewConns.Value() != 0 {
		t.Fatal("switch 3 created a duplicate translation")
	}
}

func TestInboundReverseTranslation(t *testing.T) {
	r := newRig(t, 4, 2)
	r.nats[0].Switch().InjectPacket(clientPkt(9, 7000, packet.FlagSYN))
	r.eng.RunFor(50 * time.Millisecond)
	extPort := r.out[0][0].TCP.SrcPort

	// Server reply arrives at the OTHER switch.
	reply := packet.NewBuilder().
		Src(packet.Addr4(198, 51, 100, 7)).Dst(packet.Addr4(203, 0, 113, 1)).
		TCP(80, extPort, packet.FlagACK).Build()
	r.nats[1].Switch().InjectPacket(reply)
	r.eng.RunFor(10 * time.Millisecond)
	if len(r.out[1]) != 1 {
		t.Fatalf("reply not forwarded (%d)", len(r.out[1]))
	}
	p := r.out[1][0]
	if p.IP.Dst != packet.Addr4(10, 0, 0, 9) || p.TCP.DstPort != 7000 {
		t.Fatalf("reverse translation wrong: %v:%d", p.IP.Dst, p.TCP.DstPort)
	}
}

func TestInboundWithoutStateDropped(t *testing.T) {
	r := newRig(t, 5, 2)
	stray := packet.NewBuilder().
		Src(packet.Addr4(198, 51, 100, 7)).Dst(packet.Addr4(203, 0, 113, 1)).
		TCP(80, 12345, packet.FlagSYN).Build()
	r.nats[0].Switch().InjectPacket(stray)
	r.eng.RunFor(10 * time.Millisecond)
	if len(r.out[0]) != 0 {
		t.Fatal("stray inbound packet forwarded")
	}
	if r.nats[0].Stats.DropNoState.Value() != 1 {
		t.Fatal("drop not counted")
	}
}

func TestPortPoolExhaustion(t *testing.T) {
	eng := sim.NewEngine(6)
	nw := netem.New(eng, netem.LinkProfile{Latency: 10_000})
	sw := pisa.New(eng, nw, pisa.Config{Addr: 1, PipelinePPS: 1e9})
	in := core.NewInstance(sw)
	nat, err := New(in, Config{Reg: 1, Capacity: 64, ExternalIP: packet.Addr4(1, 1, 1, 1),
		PortLo: 10000, PortHi: 10001}) // only 2 ports
	if err != nil {
		t.Fatal(err)
	}
	nat.Egress = func(*packet.Packet) {}
	nat.Install()
	nat.Register().Node().SetChain(wire.ChainConfig{Epoch: 1, Members: []uint16{1}})
	for i := 0; i < 4; i++ {
		sw.InjectPacket(clientPkt(1, uint16(5000+i), packet.FlagSYN))
	}
	eng.RunFor(50 * time.Millisecond)
	if nat.Stats.DropNoPorts.Value() != 2 {
		t.Fatalf("pool-exhaustion drops = %d, want 2", nat.Stats.DropNoPorts.Value())
	}
	if nat.FreePorts() != 0 {
		t.Fatal("pool should be empty")
	}
}

func TestDisjointPortSlices(t *testing.T) {
	// Translations created at different switches must use their own slices.
	r := newRig(t, 7, 2)
	r.nats[0].Switch().InjectPacket(clientPkt(1, 8000, packet.FlagSYN))
	r.nats[1].Switch().InjectPacket(clientPkt(2, 8001, packet.FlagSYN))
	r.eng.RunFor(50 * time.Millisecond)
	p0, p1 := r.out[0][0].TCP.SrcPort, r.out[1][0].TCP.SrcPort
	if p0 < 10000 || p0 > 10999 {
		t.Fatalf("switch 1 port %d", p0)
	}
	if p1 < 11000 || p1 > 11999 {
		t.Fatalf("switch 2 port %d", p1)
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := netem.New(eng, netem.LinkProfile{})
	in := core.NewInstance(pisa.New(eng, nw, pisa.Config{Addr: 1}))
	if _, err := New(in, Config{Reg: 1, Capacity: 8, PortLo: 2, PortHi: 1,
		ExternalIP: packet.Addr4(1, 1, 1, 1)}); err == nil {
		t.Fatal("inverted port range accepted")
	}
	in2 := core.NewInstance(pisa.New(eng, nw, pisa.Config{Addr: 2}))
	if _, err := New(in2, Config{Reg: 1, Capacity: 8}); err == nil {
		t.Fatal("missing external IP accepted")
	}
}

func TestNonTCPDropped(t *testing.T) {
	r := newRig(t, 8, 1)
	udp := packet.NewBuilder().Src(packet.Addr4(10, 0, 0, 1)).Dst(packet.Addr4(8, 8, 8, 8)).UDP(53, 53).Build()
	r.nats[0].Switch().InjectPacket(udp)
	r.eng.RunFor(10 * time.Millisecond)
	if len(r.out[0]) != 0 {
		t.Fatal("non-TCP packet forwarded")
	}
}

func TestDuplicateSYNsSingleTranslation(t *testing.T) {
	// Retransmitted SYNs while the first translation write is in flight
	// must not allocate a second port (in-flight dedup, §6.1 buffering).
	r := newRig(t, 9, 2)
	for i := 0; i < 4; i++ {
		r.nats[0].Switch().InjectPacket(clientPkt(3, 9000, packet.FlagSYN))
	}
	r.eng.RunFor(100 * time.Millisecond)
	if got := r.nats[0].Stats.NewConns.Value(); got != 1 {
		t.Fatalf("translations = %d, want 1", got)
	}
	if len(r.out[0]) != 4 {
		t.Fatalf("released %d of 4 buffered packets", len(r.out[0]))
	}
	port := r.out[0][0].TCP.SrcPort
	for _, p := range r.out[0] {
		if p.TCP.SrcPort != port {
			t.Fatal("buffered packets used different translations")
		}
	}
}
