// Package nf holds helpers shared by the network function implementations
// of §4: flow identity, value codecs, and the common deployment shape (one
// NF instance per switch, all instances sharing SwiShmem registers).
package nf

import (
	"encoding/binary"
	"net/netip"

	"swishmem/internal/packet"
)

// FlowID folds a 5-tuple into the 64-bit register key space. The fold is a
// strong mix (splitmix64 over the packed tuple), standing in for the
// exact-match key a P4 table would use; collisions across distinct flows
// are possible in principle but negligible at NF scale.
func FlowID(k packet.FlowKey) uint64 {
	h := uint64(packet.U32Addr(k.Src))
	h = mix(h ^ uint64(packet.U32Addr(k.Dst)))
	h = mix(h ^ uint64(k.SrcPort)<<32 ^ uint64(k.DstPort)<<16 ^ uint64(k.Proto))
	return h
}

func mix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// PutAddrPort encodes an (IPv4 address, port) pair into 6 bytes — the value
// format shared by the NAT and load-balancer registers.
func PutAddrPort(a netip.Addr, port uint16) []byte {
	out := make([]byte, 6)
	b := a.As4()
	copy(out, b[:])
	binary.BigEndian.PutUint16(out[4:], port)
	return out
}

// GetAddrPort decodes a 6-byte (address, port) value. ok is false for short
// buffers.
func GetAddrPort(v []byte) (netip.Addr, uint16, bool) {
	if len(v) < 6 {
		return netip.Addr{}, 0, false
	}
	return netip.AddrFrom4([4]byte(v[0:4])), binary.BigEndian.Uint16(v[4:6]), true
}
