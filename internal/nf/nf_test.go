package nf

import (
	"testing"
	"testing/quick"

	"swishmem/internal/packet"
)

func TestFlowIDDistinct(t *testing.T) {
	seen := map[uint64]packet.FlowKey{}
	for i := 0; i < 10000; i++ {
		k := packet.FlowKey{
			Src:     packet.AddrU32(0x0a000000 + uint32(i)),
			Dst:     packet.Addr4(1, 2, 3, 4),
			SrcPort: uint16(i),
			DstPort: 80,
			Proto:   packet.ProtoTCP,
		}
		id := FlowID(k)
		if prev, dup := seen[id]; dup {
			t.Fatalf("collision: %v and %v", prev, k)
		}
		seen[id] = k
	}
}

func TestFlowIDStableAndDirectional(t *testing.T) {
	k := packet.FlowKey{Src: packet.Addr4(10, 0, 0, 1), Dst: packet.Addr4(10, 0, 0, 2),
		SrcPort: 1000, DstPort: 80, Proto: packet.ProtoTCP}
	if FlowID(k) != FlowID(k) {
		t.Fatal("FlowID not stable")
	}
	if FlowID(k) == FlowID(k.Reverse()) {
		t.Fatal("FlowID should distinguish directions")
	}
}

func TestAddrPortRoundTrip(t *testing.T) {
	f := func(a, b, c, d byte, port uint16) bool {
		v := PutAddrPort(packet.Addr4(a, b, c, d), port)
		ip, p, ok := GetAddrPort(v)
		return ok && ip == packet.Addr4(a, b, c, d) && p == port
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := GetAddrPort([]byte{1, 2, 3}); ok {
		t.Fatal("short value accepted")
	}
}
