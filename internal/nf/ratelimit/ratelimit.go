// Package ratelimit implements the distributed rate limiter of §4.2 (in the
// spirit of cloud distributed rate limiting): each user's aggregate
// bandwidth across ALL switches is restricted. Per-user byte counters are
// EWO G-counters — updated on every packet at every switch, merged
// cluster-wide by the CRDT — and a periodic enforcement task ("the meters
// are read every window") compares each user's cluster-wide consumption
// against its budget, blocking over-limit users for the next window.
//
// The tolerated weakness (§4.2): a few extra packets pass between a user
// exceeding the limit and the next enforcement tick — exactly the window
// eventual consistency implies.
package ratelimit

import (
	"fmt"

	"swishmem/internal/core"
	"swishmem/internal/ewo"
	"swishmem/internal/packet"
	"swishmem/internal/pisa"
	"swishmem/internal/sim"
	"swishmem/internal/stats"
)

// Config parameterizes one rate-limiter instance.
type Config struct {
	// Reg is the shared meter register ID.
	Reg uint16
	// Capacity is the number of distinct users tracked.
	Capacity int
	// BytesPerWindow is each user's cluster-wide budget per window.
	BytesPerWindow uint64
	// Window is the enforcement period. Default 10ms.
	Window sim.Duration
	// UserOf extracts the user ID from a packet. Default: source IPv4.
	UserOf func(p *packet.Packet) uint32
	// SyncPeriod forwards to the EWO register (0 = default).
	SyncPeriod sim.Duration
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 10_000_000 // 10ms
	}
	if c.UserOf == nil {
		c.UserOf = func(p *packet.Packet) uint32 { return packet.U32Addr(p.IP.Src) }
	}
	return c
}

// Stats counts limiter events.
type Stats struct {
	Passed  stats.Counter
	Dropped stats.Counter // packets from blocked users
	Blocked stats.Counter // user-block events
}

// Limiter is one per-switch instance.
type Limiter struct {
	cfg Config
	sw  *pisa.Switch
	reg *core.CounterRegister

	lastSum map[uint32]uint64 // per-user consumption at last window tick
	blocked map[uint32]bool
	seen    map[uint32]bool

	// Egress receives admitted packets.
	Egress func(p *packet.Packet)

	Stats Stats
}

// New declares the limiter on a switch instance.
func New(in *core.Instance, cfg Config) (*Limiter, error) {
	cfg = cfg.withDefaults()
	if cfg.Capacity <= 0 || cfg.BytesPerWindow == 0 {
		return nil, fmt.Errorf("ratelimit: need positive capacity and budget")
	}
	reg, err := in.NewCounterRegister(ewo.Config{
		Reg: cfg.Reg, Capacity: cfg.Capacity, Kind: ewo.Counter, SyncPeriod: cfg.SyncPeriod,
	})
	if err != nil {
		return nil, err
	}
	return &Limiter{
		cfg: cfg, sw: in.Switch(), reg: reg,
		lastSum: make(map[uint32]uint64),
		blocked: make(map[uint32]bool),
		seen:    make(map[uint32]bool),
	}, nil
}

// Register exposes the EWO counter register.
func (l *Limiter) Register() *core.CounterRegister { return l.reg }

// Switch returns the switch this instance runs on.
func (l *Limiter) Switch() *pisa.Switch { return l.sw }

// Install wires the limiter into the pipeline and starts the enforcement
// window task.
func (l *Limiter) Install() {
	l.sw.SetProgram(l.program)
	if l.Egress == nil {
		l.Egress = func(*packet.Packet) {}
	}
	l.sw.SetEgress(l.Egress)
	l.sw.PacketGen(l.cfg.Window, l.enforce)
}

// Blocked reports whether user is currently blocked on this switch.
func (l *Limiter) Blocked(user uint32) bool { return l.blocked[user] }

// Usage returns the cluster-wide byte count attributed to user so far.
func (l *Limiter) Usage(user uint32) uint64 { return l.reg.Sum(uint64(user)) }

func (l *Limiter) program(sw *pisa.Switch, p *packet.Packet) pisa.Verdict {
	if p.IP == nil {
		return pisa.Drop
	}
	user := l.cfg.UserOf(p)
	if l.blocked[user] {
		l.Stats.Dropped.Inc()
		return pisa.Drop
	}
	l.seen[user] = true
	l.reg.Add(uint64(user), uint64(p.Len()))
	l.Stats.Passed.Inc()
	return pisa.Forward
}

// enforce runs every window: users whose cluster-wide consumption in the
// elapsed window exceeded the budget are blocked for the next window.
func (l *Limiter) enforce() {
	for user := range l.seen {
		cur := l.reg.Sum(uint64(user))
		delta := cur - l.lastSum[user]
		l.lastSum[user] = cur
		over := delta > l.cfg.BytesPerWindow
		if over && !l.blocked[user] {
			l.Stats.Blocked.Inc()
		}
		l.blocked[user] = over
	}
}
