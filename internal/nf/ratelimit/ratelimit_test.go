package ratelimit

import (
	"testing"
	"time"

	"swishmem/internal/core"
	"swishmem/internal/netem"
	"swishmem/internal/packet"
	"swishmem/internal/pisa"
	"swishmem/internal/sim"
	"swishmem/internal/wire"
)

type rig struct {
	eng  *sim.Engine
	lims []*Limiter
}

func newRig(t testing.TB, seed int64, n int, cfg Config) *rig {
	t.Helper()
	eng := sim.NewEngine(seed)
	nw := netem.New(eng, netem.LinkProfile{Latency: 10_000})
	r := &rig{eng: eng}
	var members []uint16
	for i := 0; i < n; i++ {
		sw := pisa.New(eng, nw, pisa.Config{Addr: netem.Addr(i + 1), PipelinePPS: 1e9})
		in := core.NewInstance(sw)
		l, err := New(in, cfg)
		if err != nil {
			t.Fatal(err)
		}
		l.Install()
		r.lims = append(r.lims, l)
		members = append(members, uint16(i+1))
	}
	gc := wire.GroupConfig{Epoch: 1, Members: members}
	for _, l := range r.lims {
		if err := l.Register().Node().SetGroup(gc); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func userPkt(user byte, payload int) *packet.Packet {
	return packet.NewBuilder().
		Src(packet.Addr4(10, 0, 0, user)).Dst(packet.Addr4(192, 168, 0, 1)).
		UDP(2000, 443).Payload(make([]byte, payload)).Build()
}

func TestUnderBudgetPasses(t *testing.T) {
	r := newRig(t, 1, 2, Config{Reg: 1, Capacity: 256, BytesPerWindow: 1 << 20, Window: time.Millisecond})
	for i := 0; i < 50; i++ {
		r.lims[0].Switch().InjectPacket(userPkt(1, 100))
	}
	r.eng.RunFor(10 * time.Millisecond)
	if r.lims[0].Stats.Dropped.Value() != 0 {
		t.Fatal("under-budget user throttled")
	}
	if r.lims[0].Stats.Passed.Value() != 50 {
		t.Fatalf("passed = %d", r.lims[0].Stats.Passed.Value())
	}
}

func TestOverBudgetBlockedNextWindow(t *testing.T) {
	r := newRig(t, 2, 1, Config{Reg: 1, Capacity: 256, BytesPerWindow: 1000, Window: time.Millisecond})
	for i := 0; i < 20; i++ { // ~20 * ~150B >> 1000B
		r.lims[0].Switch().InjectPacket(userPkt(2, 100))
	}
	r.eng.RunFor(1100 * time.Microsecond) // one enforcement tick (t=1ms)
	if !r.lims[0].Blocked(userID(2)) {
		t.Fatal("hog not blocked after window")
	}
	// Probe within the blocked window (before the t=2ms tick can lift it).
	before := r.lims[0].Stats.Dropped.Value()
	r.lims[0].Switch().InjectPacket(userPkt(2, 100))
	r.eng.RunFor(300 * time.Microsecond)
	if r.lims[0].Stats.Dropped.Value() != before+1 {
		t.Fatal("blocked user's packet passed")
	}
}

func userID(b byte) uint32 { return packet.U32Addr(packet.Addr4(10, 0, 0, b)) }

func TestUnblockedAfterBackingOff(t *testing.T) {
	r := newRig(t, 3, 1, Config{Reg: 1, Capacity: 256, BytesPerWindow: 1000, Window: time.Millisecond})
	for i := 0; i < 20; i++ {
		r.lims[0].Switch().InjectPacket(userPkt(3, 100))
	}
	r.eng.RunFor(2 * time.Millisecond)
	if !r.lims[0].Blocked(userID(3)) {
		t.Fatal("not blocked")
	}
	// Quiet for several windows: block lifts.
	r.eng.RunFor(5 * time.Millisecond)
	if r.lims[0].Blocked(userID(3)) {
		t.Fatal("block not lifted after user backed off")
	}
}

func TestAggregateLimitAcrossSwitches(t *testing.T) {
	// The defining distributed behaviour: a user splitting traffic over two
	// switches, each seeing only HALF the budget, must still be blocked —
	// only the merged EWO counter sees the aggregate.
	cfg := Config{Reg: 1, Capacity: 256, BytesPerWindow: 3000, Window: 5 * time.Millisecond}
	r := newRig(t, 4, 2, cfg)
	// Each switch sees ~2000B (under budget individually), 4000B total.
	for i := 0; i < 14; i++ {
		r.lims[0].Switch().InjectPacket(userPkt(4, 100))
		r.lims[1].Switch().InjectPacket(userPkt(4, 100))
		r.eng.RunFor(100 * time.Microsecond) // let updates replicate
	}
	r.eng.RunFor(6 * time.Millisecond) // enforcement tick
	if !r.lims[0].Blocked(userID(4)) || !r.lims[1].Blocked(userID(4)) {
		t.Fatalf("aggregate overuse not blocked (usage=%d)", r.lims[0].Usage(userID(4)))
	}
}

func TestIndependentUsers(t *testing.T) {
	r := newRig(t, 5, 1, Config{Reg: 1, Capacity: 256, BytesPerWindow: 1000, Window: time.Millisecond})
	for i := 0; i < 20; i++ {
		r.lims[0].Switch().InjectPacket(userPkt(6, 100))
	}
	r.lims[0].Switch().InjectPacket(userPkt(7, 100))
	r.eng.RunFor(2 * time.Millisecond)
	if !r.lims[0].Blocked(userID(6)) {
		t.Fatal("hog not blocked")
	}
	if r.lims[0].Blocked(userID(7)) {
		t.Fatal("innocent user blocked")
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := netem.New(eng, netem.LinkProfile{})
	in := core.NewInstance(pisa.New(eng, nw, pisa.Config{Addr: 1}))
	if _, err := New(in, Config{Reg: 1, Capacity: 0, BytesPerWindow: 10}); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := New(in, Config{Reg: 1, Capacity: 10}); err == nil {
		t.Fatal("zero budget accepted")
	}
}
