package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Chrome trace-event export. The output is the JSON Object Format of the
// trace-event spec ({"traceEvents":[...]}), loadable directly in Perfetto
// (ui.perfetto.dev) or chrome://tracing. Timestamps are microseconds; the
// simulator's nanosecond virtual time is emitted with three decimals so no
// precision is lost.
//
// Field ordering within each event object is fixed (name, cat, ph, ts,
// [dur|s], pid, tid, args) and events are ordered by (ts, seq), so the
// output is byte-stable for a given trace — the golden-file test depends
// on this.

// laneNames maps the reserved pseudo-component lanes to display names
// emitted as process_name metadata so Perfetto labels the rows.
var laneNames = []struct {
	pid  int32
	name string
}{
	{PidSim, "sim.engine"},
	{PidFabric, "net.fabric"},
	{PidCtrl, "controller"},
}

// WriteChromeTrace serialises the tracer's retained events as Chrome
// trace-event JSON.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, t)
}

// WriteChromeTrace merges the retained events of several tracers into one
// Chrome trace-event JSON document. Tracer i's lanes are offset by
// i * (1<<21) so independent clusters (e.g. one per experiment) never
// collide: switch addresses are uint16 and the reserved lanes stop below
// the stride.
func WriteChromeTrace(w io.Writer, tracers ...*Tracer) error {
	type placed struct {
		ev     Event
		offset int32
	}
	var all []placed
	for i, tr := range tracers {
		if tr == nil {
			continue
		}
		off := int32(i) * pidStride
		for _, ev := range tr.Events() {
			all = append(all, placed{ev, off})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].ev.TS != all[j].ev.TS {
			return all[i].ev.TS < all[j].ev.TS
		}
		return all[i].ev.Seq < all[j].ev.Seq
	})

	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[")
	first := true
	emit := func() *bufio.Writer {
		if !first {
			bw.WriteString(",\n")
		} else {
			bw.WriteByte('\n')
			first = false
		}
		return bw
	}
	// Label the pseudo-component lanes in every cluster that has events.
	seen := map[int32]bool{}
	for _, p := range all {
		seen[p.offset] = true
	}
	var offsets []int32
	for off := range seen {
		offsets = append(offsets, off)
	}
	sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })
	for _, off := range offsets {
		for _, ln := range laneNames {
			fmt.Fprintf(emit(),
				`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
				ln.pid+off, strconv.Quote(ln.name))
		}
	}
	for _, p := range all {
		ev := p.ev
		b := emit()
		b.WriteString(`{"name":`)
		b.WriteString(strconv.Quote(ev.Name))
		b.WriteString(`,"cat":`)
		b.WriteString(strconv.Quote(ev.Cat))
		b.WriteString(`,"ph":"`)
		b.WriteByte(ev.Ph)
		b.WriteString(`","ts":`)
		writeMicros(b, ev.TS)
		if ev.Ph == PhaseSpan {
			b.WriteString(`,"dur":`)
			writeMicros(b, ev.Dur)
		} else if ev.Ph == PhaseInstant {
			b.WriteString(`,"s":"t"`)
		}
		fmt.Fprintf(b, `,"pid":%d,"tid":0,"args":{`, int64(ev.Pid)+int64(p.offset))
		narg := 0
		arg := func(k string) *bufio.Writer {
			if narg > 0 {
				b.WriteByte(',')
			}
			narg++
			b.WriteString(strconv.Quote(k))
			b.WriteByte(':')
			return b
		}
		if ev.K1 != "" {
			fmt.Fprintf(arg(ev.K1), "%d", ev.V1)
		}
		if ev.K2 != "" {
			fmt.Fprintf(arg(ev.K2), "%d", ev.V2)
		}
		if ev.K3 != "" {
			fmt.Fprintf(arg(ev.K3), "%d", ev.V3)
		}
		if ev.KS != "" {
			arg(ev.KS).WriteString(strconv.Quote(ev.VS))
		}
		b.WriteString("}}")
	}
	bw.WriteString("\n],\"displayTimeUnit\":\"ns\"}\n")
	return bw.Flush()
}

// writeMicros renders a nanosecond count as microseconds with exactly three
// decimals (the trace-event "ts"/"dur" unit), without float rounding.
func writeMicros(b *bufio.Writer, ns int64) {
	neg := ns < 0
	if neg {
		b.WriteByte('-')
		ns = -ns
	}
	fmt.Fprintf(b, "%d.%03d", ns/1000, ns%1000)
}
