package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Chrome trace-event export. The output is the JSON Object Format of the
// trace-event spec ({"traceEvents":[...]}), loadable directly in Perfetto
// (ui.perfetto.dev) or chrome://tracing. Timestamps are microseconds; the
// simulator's nanosecond virtual time is emitted with three decimals so no
// precision is lost.
//
// Field ordering within each event object is fixed (name, cat, ph, ts,
// [dur|s], pid, tid, args) and events are ordered by (ts, seq), so the
// output is byte-stable for a given trace — the golden-file test depends
// on this.

// laneNames maps the reserved pseudo-component lanes to display names
// emitted as process_name metadata so Perfetto labels the rows.
var laneNames = []struct {
	pid  int32
	name string
}{
	{PidSim, "sim.engine"},
	{PidFabric, "net.fabric"},
	{PidCtrl, "controller"},
}

// WriteChromeTrace serialises the tracer's retained events as Chrome
// trace-event JSON.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, t)
}

// placed is an event plus the pid-lane offset of its source tracer.
type placed struct {
	ev     Event
	offset int32
}

// WriteChromeTrace merges the retained events of several tracers into one
// Chrome trace-event JSON document. Tracer i's lanes are offset by
// i * (1<<21) so independent clusters (e.g. one per experiment) never
// collide: switch addresses are uint16 and the reserved lanes stop below
// the stride.
func WriteChromeTrace(w io.Writer, tracers ...*Tracer) error {
	var all []placed
	for i, tr := range tracers {
		if tr == nil {
			continue
		}
		off := int32(i) * pidStride
		for _, ev := range tr.Events() {
			all = append(all, placed{ev, off})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].ev.TS != all[j].ev.TS {
			return all[i].ev.TS < all[j].ev.TS
		}
		return all[i].ev.Seq < all[j].ev.Seq
	})
	return writeChromeEvents(w, all)
}

// canonicalLess is a total order over an event's full content, ignoring Seq.
// Seq is emission order on one tracer — a sequential engine and a set of
// shard tracers number the same model events differently — so any export
// meant to be byte-identical across execution modes must order by content
// instead. The model never emits two fully identical records with distinct
// meanings, so ties are harmless.
func canonicalLess(a, b *Event) bool {
	switch {
	case a.TS != b.TS:
		return a.TS < b.TS
	case a.Pid != b.Pid:
		return a.Pid < b.Pid
	case a.Cat != b.Cat:
		return a.Cat < b.Cat
	case a.Name != b.Name:
		return a.Name < b.Name
	case a.Ph != b.Ph:
		return a.Ph < b.Ph
	case a.Dur != b.Dur:
		return a.Dur < b.Dur
	case a.K1 != b.K1:
		return a.K1 < b.K1
	case a.V1 != b.V1:
		return a.V1 < b.V1
	case a.K2 != b.K2:
		return a.K2 < b.K2
	case a.V2 != b.V2:
		return a.V2 < b.V2
	case a.K3 != b.K3:
		return a.K3 < b.K3
	case a.V3 != b.V3:
		return a.V3 < b.V3
	case a.KS != b.KS:
		return a.KS < b.KS
	default:
		return a.VS < b.VS
	}
}

// MergeCanonical combines the retained events of several tracers — e.g. the
// per-shard rings of one parallel cluster — into a single content-ordered
// list with Seq reassigned 1..n in that order. Because the order depends
// only on event content, a sequential run and a sharded run of the same
// model merge to the same list, provided no ring dropped events (check
// Tracer.Dropped; per-shard rings wrap independently).
func MergeCanonical(tracers ...*Tracer) []Event {
	var all []Event
	for _, tr := range tracers {
		if tr == nil {
			continue
		}
		all = append(all, tr.Events()...)
	}
	sort.Slice(all, func(i, j int) bool { return canonicalLess(&all[i], &all[j]) })
	for i := range all {
		all[i].Seq = uint64(i + 1)
	}
	return all
}

// WriteChromeTraceCanonical writes the canonical content-ordered merge of
// the tracers as Chrome trace-event JSON. Unlike WriteChromeTrace it does
// NOT offset lanes per tracer: the tracers are understood as shards of one
// cluster sharing a single lane space. The output is byte-identical for a
// sequential and a sharded run of the same model.
func WriteChromeTraceCanonical(w io.Writer, tracers ...*Tracer) error {
	merged := MergeCanonical(tracers...)
	all := make([]placed, len(merged))
	for i, ev := range merged {
		all[i] = placed{ev: ev}
	}
	return writeChromeEvents(w, all)
}

// writeChromeEvents serialises pre-merged, pre-ordered events.
func writeChromeEvents(w io.Writer, all []placed) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[")
	first := true
	emit := func() *bufio.Writer {
		if !first {
			bw.WriteString(",\n")
		} else {
			bw.WriteByte('\n')
			first = false
		}
		return bw
	}
	// Label the pseudo-component lanes in every cluster that has events.
	seen := map[int32]bool{}
	for _, p := range all {
		seen[p.offset] = true
	}
	var offsets []int32
	for off := range seen {
		offsets = append(offsets, off)
	}
	sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })
	for _, off := range offsets {
		for _, ln := range laneNames {
			fmt.Fprintf(emit(),
				`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
				ln.pid+off, strconv.Quote(ln.name))
		}
	}
	for _, p := range all {
		ev := p.ev
		b := emit()
		b.WriteString(`{"name":`)
		b.WriteString(strconv.Quote(ev.Name))
		b.WriteString(`,"cat":`)
		b.WriteString(strconv.Quote(ev.Cat))
		b.WriteString(`,"ph":"`)
		b.WriteByte(ev.Ph)
		b.WriteString(`","ts":`)
		writeMicros(b, ev.TS)
		if ev.Ph == PhaseSpan {
			b.WriteString(`,"dur":`)
			writeMicros(b, ev.Dur)
		} else if ev.Ph == PhaseInstant {
			b.WriteString(`,"s":"t"`)
		}
		fmt.Fprintf(b, `,"pid":%d,"tid":0,"args":{`, int64(ev.Pid)+int64(p.offset))
		narg := 0
		arg := func(k string) *bufio.Writer {
			if narg > 0 {
				b.WriteByte(',')
			}
			narg++
			b.WriteString(strconv.Quote(k))
			b.WriteByte(':')
			return b
		}
		if ev.K1 != "" {
			fmt.Fprintf(arg(ev.K1), "%d", ev.V1)
		}
		if ev.K2 != "" {
			fmt.Fprintf(arg(ev.K2), "%d", ev.V2)
		}
		if ev.K3 != "" {
			fmt.Fprintf(arg(ev.K3), "%d", ev.V3)
		}
		if ev.KS != "" {
			arg(ev.KS).WriteString(strconv.Quote(ev.VS))
		}
		b.WriteString("}}")
	}
	bw.WriteString("\n],\"displayTimeUnit\":\"ns\"}\n")
	return bw.Flush()
}

// writeMicros renders a nanosecond count as microseconds with exactly three
// decimals (the trace-event "ts"/"dur" unit), without float rounding.
func writeMicros(b *bufio.Writer, ns int64) {
	neg := ns < 0
	if neg {
		b.WriteByte('-')
		ns = -ns
	}
	fmt.Fprintf(b, "%d.%03d", ns/1000, ns%1000)
}
