package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildFixtureTrace emits a deterministic mini-timeline exercising every
// record shape: spans, instants, all argument slots, lane constants, and a
// name that needs JSON escaping.
func buildFixtureTrace() *Tracer {
	tr := NewTracer(16)
	tr.Instant(0, PidSim, "sim", "event")
	ev := tr.Emit(PhaseSpan, 1000, 2500, PidFabric, "net", "msg")
	ev.K1, ev.V1 = "from", 1
	ev.K2, ev.V2 = "to", 2
	ev.K3, ev.V3 = "bytes", 64
	ev = tr.Emit(PhaseInstant, 1500, 0, 2, "chain", "write.submit")
	ev.K1, ev.V1 = "id", 7
	ev.KS, ev.VS = "key", `k"1`
	// Span emitted after a later instant but starting earlier: exporter
	// must order by start time.
	ev = tr.Emit(PhaseSpan, 1200, 4300, 2, "chain", "write.commit")
	ev.K1, ev.V1 = "id", 7
	ev.K2, ev.V2 = "retries", 0
	tr.Instant(6000, PidCtrl, "ctrl", "heartbeat")
	return tr
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixtureTrace().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrometrace.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome trace output drifted from golden.\n-- got --\n%s\n-- want --\n%s", buf.Bytes(), want)
	}
}

// chromeEvent mirrors the subset of the trace-event schema we emit.
type chromeEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat"`
	Ph   string                 `json:"ph"`
	TS   float64                `json:"ts"`
	Dur  float64                `json:"dur"`
	Pid  int64                  `json:"pid"`
	Tid  int64                  `json:"tid"`
	Args map[string]interface{} `json:"args"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func TestChromeTraceParses(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixtureTrace().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter output is not valid JSON: %v\n%s", err, buf.String())
	}
	// 5 events + 3 lane-name metadata records.
	if len(doc.TraceEvents) != 8 {
		t.Fatalf("got %d trace events, want 8", len(doc.TraceEvents))
	}
	// Virtual-time nanoseconds must surface as microseconds.
	var commit *chromeEvent
	for i := range doc.TraceEvents {
		if doc.TraceEvents[i].Name == "write.commit" {
			commit = &doc.TraceEvents[i]
		}
	}
	if commit == nil {
		t.Fatal("write.commit span missing")
	}
	if commit.TS != 1.2 || commit.Dur != 4.3 {
		t.Fatalf("commit ts/dur = %v/%v µs, want 1.2/4.3", commit.TS, commit.Dur)
	}
	if commit.Ph != "X" || commit.Args["id"] != float64(7) {
		t.Fatalf("commit span malformed: %+v", *commit)
	}
}

func TestChromeTraceMultiOffsetsLanes(t *testing.T) {
	a, b := NewTracer(4), NewTracer(4)
	a.Instant(10, 3, "chain", "write.ack")
	b.Instant(20, 3, "chain", "write.ack")
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	pids := map[int64]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Name == "write.ack" {
			pids[ev.Pid] = true
		}
	}
	if !pids[3] || !pids[3+pidStride] {
		t.Fatalf("second tracer's lanes not offset: %v", pids)
	}
}

// checkJSONSnapshot is shared with the metrics tests: parses a snapshot
// dump and checks the sample count.
func checkJSONSnapshot(t *testing.T, doc string, want int) {
	t.Helper()
	var parsed struct {
		Samples []map[string]interface{} `json:"samples"`
	}
	if err := json.Unmarshal([]byte(doc), &parsed); err != nil {
		t.Fatalf("metrics JSON invalid: %v\n%s", err, doc)
	}
	if len(parsed.Samples) != want {
		t.Fatalf("got %d samples, want %d", len(parsed.Samples), want)
	}
}
