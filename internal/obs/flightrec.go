package obs

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"time"
)

// Flight recorder: the black box attached to an oracle failure. Every
// failing run already has the raw material on hand — tracer rings, a metrics
// registry, a timeline stream — and a FlightRecord freezes the relevant tail
// of each so the counterexample artifact is self-contained: what the system
// was doing in its final moments, what every counter read at the end, and
// how the time series got there.

// FlightRecord is a frozen failure context.
type FlightRecord struct {
	// Events is the last-N canonical merge of the tracer rings (content
	// order, shard-layout independent).
	Events []Event
	// TotalEvents counts every event the rings ever saw (including
	// overwritten and truncated ones), so readers know how much history the
	// ring kept.
	TotalEvents uint64
	// Snapshot is the final metrics reading.
	Snapshot Snapshot
	// Timeline is the tail of the metrics timeline (JSONL rows).
	Timeline []string
}

// NewFlightRecord assembles a record: the last lastN events of the
// canonically merged tracer rings (0 keeps everything retained), the given
// final snapshot, and the timeline tail.
func NewFlightRecord(lastN int, snap Snapshot, timeline []string, tracers ...*Tracer) *FlightRecord {
	fr := &FlightRecord{Snapshot: snap, Timeline: timeline}
	for _, tr := range tracers {
		if tr != nil {
			fr.TotalEvents += tr.Total()
		}
	}
	fr.Events = MergeCanonical(tracers...)
	if lastN > 0 && len(fr.Events) > lastN {
		fr.Events = fr.Events[len(fr.Events)-lastN:]
	}
	return fr
}

// Render writes the record as a human-readable report section.
func (fr *FlightRecord) Render(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "flight recorder: last %d of %d trace events\n", len(fr.Events), fr.TotalEvents)
	for i := range fr.Events {
		bw.WriteString("  ")
		bw.WriteString(formatEvent(&fr.Events[i]))
		bw.WriteByte('\n')
	}
	fmt.Fprintf(bw, "final metrics snapshot (%d samples):\n", len(fr.Snapshot.Samples))
	var txt strings.Builder
	if err := fr.Snapshot.WriteText(&txt); err != nil {
		return err
	}
	for _, line := range strings.Split(strings.TrimRight(txt.String(), "\n"), "\n") {
		bw.WriteString("  ")
		bw.WriteString(line)
		bw.WriteByte('\n')
	}
	fmt.Fprintf(bw, "timeline tail (%d rows):\n", len(fr.Timeline))
	for _, row := range fr.Timeline {
		bw.WriteString("  ")
		bw.WriteString(row)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// String renders the record (Render into a string).
func (fr *FlightRecord) String() string {
	var b strings.Builder
	fr.Render(&b)
	return b.String()
}

// formatEvent renders one trace event as a single line:
//
//	t=1.234567ms span [chain] write.commit pid=2 dur=50µs key=7 verdict=ok
func formatEvent(ev *Event) string {
	var b strings.Builder
	ph := "inst"
	if ev.Ph == PhaseSpan {
		ph = "span"
	}
	fmt.Fprintf(&b, "t=%-12v %s [%s] %s pid=%d", time.Duration(ev.TS), ph, ev.Cat, ev.Name, ev.Pid)
	if ev.Dur != 0 {
		fmt.Fprintf(&b, " dur=%v", time.Duration(ev.Dur))
	}
	if ev.K1 != "" {
		fmt.Fprintf(&b, " %s=%d", ev.K1, ev.V1)
	}
	if ev.K2 != "" {
		fmt.Fprintf(&b, " %s=%d", ev.K2, ev.V2)
	}
	if ev.K3 != "" {
		fmt.Fprintf(&b, " %s=%d", ev.K3, ev.V3)
	}
	if ev.KS != "" {
		fmt.Fprintf(&b, " %s=%s", ev.KS, ev.VS)
	}
	return b.String()
}
