package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"

	"swishmem/internal/stats"
)

// Metrics registry: a pull-based unification of the accounting that already
// exists across the codebase (stats.Counter fields on protocol nodes,
// netem.LinkStats totals, pisa memory charges). Components are not
// rewritten to push into the registry; instead the cluster registers
// closures that read the live structs, so building a registry costs nothing
// on any hot path and Snapshot() observes whatever the components already
// maintain.

// Kind distinguishes metric semantics in snapshots and dumps.
type Kind uint8

const (
	KindCounter Kind = iota // monotone count; Diff subtracts
	KindGauge               // point-in-time value; Diff passes through
	KindHist                // distribution; Diff subtracts counts, keeps quantiles
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHist:
		return "histogram"
	}
	return "unknown"
}

type metric struct {
	name    string
	labels  string // "k=v,k=v", pre-rendered; empty for unlabeled
	kind    Kind
	counter func() uint64
	gauge   func() float64
	hist    *stats.Histogram
}

// Registry is a named collection of metric sources. Like the rest of the
// simulation it is single-goroutine; the parallel experiment runner keeps
// one registry per worker and merges snapshots.
type Registry struct {
	metrics []metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// AddCounterFunc registers a monotone counter read through fn at snapshot
// time. labels is a pre-rendered "k=v,k=v" string ("" for none).
func (r *Registry) AddCounterFunc(name, labels string, fn func() uint64) {
	r.metrics = append(r.metrics, metric{name: name, labels: labels, kind: KindCounter, counter: fn})
}

// AddCounter registers an existing stats.Counter.
func (r *Registry) AddCounter(name, labels string, c *stats.Counter) {
	r.AddCounterFunc(name, labels, c.Value)
}

// AddGaugeFunc registers a point-in-time value read through fn.
func (r *Registry) AddGaugeFunc(name, labels string, fn func() float64) {
	r.metrics = append(r.metrics, metric{name: name, labels: labels, kind: KindGauge, gauge: fn})
}

// AddHistogram registers a live histogram; snapshots capture its count,
// mean, and tail quantiles.
func (r *Registry) AddHistogram(name, labels string, h *stats.Histogram) {
	r.metrics = append(r.metrics, metric{name: name, labels: labels, kind: KindHist, hist: h})
}

// Sample is one metric observation inside a Snapshot.
type Sample struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Kind   string  `json:"kind"`
	Value  float64 `json:"value"` // counter/hist: count; gauge: value
	// Distribution fields, histogram samples only.
	Mean float64 `json:"mean,omitempty"`
	P50  float64 `json:"p50,omitempty"`
	P99  float64 `json:"p99,omitempty"`
	Max  float64 `json:"max,omitempty"`
}

func (s Sample) key() string { return s.Name + "{" + s.Labels + "}" }

// Snapshot is a point-in-time reading of every registered metric, sorted by
// (name, labels) so output and diffs are deterministic.
type Snapshot struct {
	Samples []Sample `json:"samples"`
}

// Snapshot reads every metric now.
func (r *Registry) Snapshot() Snapshot {
	out := Snapshot{Samples: make([]Sample, 0, len(r.metrics))}
	for _, m := range r.metrics {
		s := Sample{Name: m.name, Labels: m.labels, Kind: m.kind.String()}
		switch m.kind {
		case KindCounter:
			s.Value = float64(m.counter())
		case KindGauge:
			s.Value = m.gauge()
		case KindHist:
			s.Value = float64(m.hist.Count())
			s.Mean = m.hist.Mean()
			s.P50 = m.hist.Quantile(0.5)
			s.P99 = m.hist.Quantile(0.99)
			s.Max = m.hist.Max()
		}
		out.Samples = append(out.Samples, s)
	}
	sort.Slice(out.Samples, func(i, j int) bool { return out.Samples[i].key() < out.Samples[j].key() })
	return out
}

// Value returns the sample value for an exact (name, labels) pair.
func (s Snapshot) Value(name, labels string) (float64, bool) {
	want := Sample{Name: name, Labels: labels}.key()
	i := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].key() >= want })
	if i < len(s.Samples) && s.Samples[i].key() == want {
		return s.Samples[i].Value, true
	}
	return 0, false
}

// Sum adds the values of every sample with the given name across all label
// sets. For histograms this sums counts.
func (s Snapshot) Sum(name string) float64 {
	var total float64
	for _, sm := range s.Samples {
		if sm.Name == name {
			total += sm.Value
		}
	}
	return total
}

// Diff returns s - prev: counter and histogram counts are subtracted for
// samples present in prev (missing ones keep their absolute value), gauges
// pass through unchanged. Distribution fields stay absolute — log-bucket
// quantiles do not subtract meaningfully.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	base := make(map[string]float64, len(prev.Samples))
	for _, sm := range prev.Samples {
		if sm.Kind != KindGauge.String() {
			base[sm.key()] = sm.Value
		}
	}
	out := Snapshot{Samples: make([]Sample, len(s.Samples))}
	copy(out.Samples, s.Samples)
	for i := range out.Samples {
		sm := &out.Samples[i]
		if sm.Kind == KindGauge.String() {
			continue
		}
		if v, ok := base[sm.key()]; ok {
			sm.Value -= v
		}
	}
	return out
}

// WriteText renders the snapshot as aligned "name{labels} value" lines.
func (s Snapshot) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	width := 0
	ident := func(sm Sample) string {
		if sm.Labels == "" {
			return sm.Name
		}
		return sm.Name + "{" + sm.Labels + "}"
	}
	for _, sm := range s.Samples {
		if n := len(ident(sm)); n > width {
			width = n
		}
	}
	for _, sm := range s.Samples {
		fmt.Fprintf(bw, "%-*s  %s", width, ident(sm), formatValue(sm.Value))
		if sm.Kind == KindHist.String() && sm.Value > 0 {
			fmt.Fprintf(bw, "  mean=%s p50=%s p99=%s max=%s",
				formatValue(sm.Mean), formatValue(sm.P50), formatValue(sm.P99), formatValue(sm.Max))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// WriteJSON renders the snapshot as a stable JSON document (samples sorted,
// field order fixed by the struct tags).
func (s Snapshot) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"samples\":[")
	for i, sm := range s.Samples {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString("\n{\"name\":")
		bw.WriteString(strconv.Quote(sm.Name))
		if sm.Labels != "" {
			bw.WriteString(",\"labels\":")
			bw.WriteString(strconv.Quote(sm.Labels))
		}
		bw.WriteString(",\"kind\":")
		bw.WriteString(strconv.Quote(sm.Kind))
		bw.WriteString(",\"value\":")
		bw.WriteString(formatValue(sm.Value))
		if sm.Kind == KindHist.String() {
			fmt.Fprintf(bw, ",\"mean\":%s,\"p50\":%s,\"p99\":%s,\"max\":%s",
				formatValue(sm.Mean), formatValue(sm.P50), formatValue(sm.P99), formatValue(sm.Max))
		}
		bw.WriteByte('}')
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// formatValue renders a float compactly: integers without a fraction,
// everything else with enough digits to round-trip.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
