// Package obs is the observability layer shared by every SwiShmem
// component: a ring-buffer event tracer stamped with simulator virtual
// time, and a metrics registry that unifies the ad-hoc accounting kept in
// internal/stats counters, netem link totals, and pisa resource charges.
//
// Design constraints, in order:
//
//  1. Zero overhead when disabled. Components keep a possibly-nil *Tracer
//     and guard every emission with tr.Enabled(), which is nil-safe and
//     inlines to two compares. No tracer attached means the hot paths pay
//     one predictable branch and nothing else.
//  2. Zero allocations when enabled. The tracer is a fixed-capacity ring
//     of value-typed Event records written in place; once constructed it
//     never allocates. Event name/category/argument-key fields are meant
//     to hold string constants, which cost a header copy, not an
//     allocation.
//  3. No upward imports. obs sits below internal/sim in the dependency
//     order (sim carries the tracer handle so every component can reach it
//     through its engine), so timestamps here are raw int64 nanoseconds of
//     virtual time rather than sim.Time.
//
// The trace model is a simplified Chrome trace-event timeline: complete
// spans (Ph='X', with a duration) and instants (Ph='i'). Pid selects the
// timeline lane; switches use their fabric address, and the pseudo
// components (engine, fabric) use the reserved Pid* constants.
package obs

import "sort"

// Phase bytes, matching the Chrome trace-event "ph" field.
const (
	PhaseSpan    = 'X' // complete span: TS..TS+Dur
	PhaseInstant = 'i' // point event at TS
)

// Reserved pid lanes for components that are not switches. Switch lanes use
// the switch's fabric address (a uint16), so anything >= 1<<20 is safe.
const (
	PidSim    = 1 << 20                       // the discrete-event engine itself
	PidFabric = 1<<20 + 1                     // the netem fabric
	PidCtrl   = 1<<20 + 2                     // the controller (also reachable by address)
	pidStride = 1 << 21                       // lane offset between clusters in merged exports
	_         = uint(pidStride - PidCtrl - 1) // stride must cover reserved lanes
)

// Event is one fixed-size trace record. Records live in the tracer's ring
// and are reused in place; Emit returns a pointer so the caller can fill
// the argument fields without any variadic packing, but that pointer must
// not be retained past the next Emit on the same tracer.
//
// Up to three integer arguments (K1/V1, K2/V2, K3/V3) and one string
// argument (KS/VS) are exported into the Chrome trace "args" object; an
// empty key means the slot is unused.
type Event struct {
	TS  int64  // virtual time, nanoseconds
	Dur int64  // span length in nanoseconds; 0 for instants
	Seq uint64 // emission order; tie-break for equal timestamps
	Pid int32  // timeline lane: switch address or a Pid* constant
	Ph  byte   // PhaseSpan or PhaseInstant

	Cat  string // coarse category: "sim", "net", "switch", "chain", "ewo", "ctrl"
	Name string // event name within the category

	K1 string
	V1 int64
	K2 string
	V2 int64
	K3 string
	V3 int64
	KS string
	VS string
}

// Tracer records events into a fixed-capacity ring. It is single-goroutine,
// like the simulation it observes. The zero value is unusable; a nil
// *Tracer is valid for Enabled (reporting false), which is the only method
// hot paths may call without a guard.
type Tracer struct {
	on   bool
	buf  []Event
	next uint64 // total emissions; next slot is next % len(buf)
}

// NewTracer returns an enabled tracer holding the most recent capacity
// events. Capacities below 1 are raised to 1.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{on: true, buf: make([]Event, capacity)}
}

// Enabled reports whether events should be emitted. It is safe on a nil
// receiver, so components can keep an unconditional tracer field and guard
// emissions with a single call.
func (t *Tracer) Enabled() bool { return t != nil && t.on }

// SetEnabled pauses or resumes recording without discarding the ring.
func (t *Tracer) SetEnabled(on bool) { t.on = on }

// Cap returns the ring capacity.
func (t *Tracer) Cap() int { return len(t.buf) }

// Len returns the number of events currently retained.
func (t *Tracer) Len() int {
	if t.next < uint64(len(t.buf)) {
		return int(t.next)
	}
	return len(t.buf)
}

// Total returns the number of events ever emitted, including overwritten
// ones.
func (t *Tracer) Total() uint64 { return t.next }

// Dropped returns how many events have been overwritten by ring wrap.
func (t *Tracer) Dropped() uint64 {
	if t.next < uint64(len(t.buf)) {
		return 0
	}
	return t.next - uint64(len(t.buf))
}

// Reset discards all recorded events but keeps the ring storage.
func (t *Tracer) Reset() { t.next = 0 }

// Emit claims the next ring slot, stamps it, and returns it for the caller
// to fill argument fields in place. The slot is fully reset, so stale
// arguments from an overwritten record never leak. Callers must check
// Enabled first: Emit on a nil or disabled tracer is a contract violation
// (nil panics; disabled still records).
func (t *Tracer) Emit(ph byte, ts, dur int64, pid int32, cat, name string) *Event {
	ev := &t.buf[t.next%uint64(len(t.buf))]
	t.next++
	*ev = Event{TS: ts, Dur: dur, Seq: t.next, Pid: pid, Ph: ph, Cat: cat, Name: name}
	return ev
}

// Instant records a point event with no arguments.
func (t *Tracer) Instant(ts int64, pid int32, cat, name string) {
	t.Emit(PhaseInstant, ts, 0, pid, cat, name)
}

// Span records a complete span covering ts..ts+dur with no arguments.
func (t *Tracer) Span(ts, dur int64, pid int32, cat, name string) {
	t.Emit(PhaseSpan, ts, dur, pid, cat, name)
}

// Events returns the retained events ordered by (TS, Seq). The slice is
// freshly allocated; the tracer keeps recording into its ring.
func (t *Tracer) Events() []Event {
	out := make([]Event, t.Len())
	if len(out) == 0 {
		return out
	}
	// Oldest retained record sits at next%cap once the ring has wrapped.
	start := 0
	if t.next >= uint64(len(t.buf)) {
		start = int(t.next % uint64(len(t.buf)))
	}
	for i := range out {
		out[i] = t.buf[(start+i)%len(t.buf)]
	}
	// Ring order is emission order; virtual time is monotone within a run,
	// but spans are emitted at their end, so re-sort by start time for
	// exporters, with Seq as the deterministic tie-break.
	sort.Slice(out, func(i, j int) bool {
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}
