package obs

import (
	"strings"
	"testing"

	"swishmem/internal/stats"
)

func TestNilTracerEnabled(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer must report disabled")
	}
	tr = NewTracer(8)
	if !tr.Enabled() {
		t.Fatal("new tracer must start enabled")
	}
	tr.SetEnabled(false)
	if tr.Enabled() {
		t.Fatal("SetEnabled(false) must disable")
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		ev := tr.Emit(PhaseInstant, int64(10*i), 0, PidSim, "sim", "tick")
		ev.K1, ev.V1 = "i", int64(i)
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := tr.Total(); got != 6 {
		t.Fatalf("Total = %d, want 6", got)
	}
	if got := tr.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
	evs := tr.Events()
	for i, ev := range evs {
		want := int64(i + 2) // events 0 and 1 were overwritten
		if ev.V1 != want || ev.TS != 10*want {
			t.Fatalf("event %d = {TS:%d V1:%d}, want {TS:%d V1:%d}", i, ev.TS, ev.V1, 10*want, want)
		}
	}
	for i := 1; i < len(evs); i++ {
		if evs[i-1].TS > evs[i].TS || (evs[i-1].TS == evs[i].TS && evs[i-1].Seq > evs[i].Seq) {
			t.Fatalf("events not sorted by (TS, Seq) at %d", i)
		}
	}
}

// TestEmitResetsSlot checks that ring reuse never leaks stale argument
// fields from the overwritten record.
func TestEmitResetsSlot(t *testing.T) {
	tr := NewTracer(1)
	ev := tr.Emit(PhaseSpan, 1, 2, 3, "chain", "write.commit")
	ev.K1, ev.V1 = "id", 99
	ev.KS, ev.VS = "verdict", "ok"
	tr.Instant(5, PidSim, "sim", "tick")
	got := tr.Events()[0]
	if got.K1 != "" || got.V1 != 0 || got.KS != "" || got.VS != "" || got.Dur != 0 {
		t.Fatalf("stale fields leaked into reused slot: %+v", got)
	}
}

// TestEmitAllocs pins the tracer's steady-state cost: once constructed,
// emitting allocates nothing.
func TestEmitAllocs(t *testing.T) {
	tr := NewTracer(1024)
	var i int64
	allocs := testing.AllocsPerRun(10000, func() {
		ev := tr.Emit(PhaseInstant, i, 0, PidFabric, "net", "drop.loss")
		ev.K1, ev.V1 = "from", 1
		ev.K2, ev.V2 = "to", 2
		i++
	})
	if allocs != 0 {
		t.Fatalf("Emit allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	var c stats.Counter
	c.Add(41)
	h := stats.NewHistogram()
	h.Observe(100)
	h.Observe(300)

	r := NewRegistry()
	r.AddCounter("chain.retries", "switch=2", &c)
	r.AddCounterFunc("net.msgs_sent", "", func() uint64 { return 7 })
	r.AddGaugeFunc("switch.mem_used", "switch=1", func() float64 { return 1.5 })
	r.AddHistogram("chain.write_latency_ns", "switch=2", h)

	s := r.Snapshot()
	if len(s.Samples) != 4 {
		t.Fatalf("got %d samples, want 4", len(s.Samples))
	}
	// Sorted by (name, labels).
	for i := 1; i < len(s.Samples); i++ {
		if s.Samples[i-1].key() > s.Samples[i].key() {
			t.Fatalf("samples unsorted: %q > %q", s.Samples[i-1].key(), s.Samples[i].key())
		}
	}
	if v, ok := s.Value("chain.retries", "switch=2"); !ok || v != 41 {
		t.Fatalf("Value(chain.retries) = %v,%v want 41,true", v, ok)
	}
	if _, ok := s.Value("chain.retries", ""); ok {
		t.Fatal("Value must match labels exactly")
	}
	if got := s.Sum("chain.write_latency_ns"); got != 2 {
		t.Fatalf("Sum(hist) = %v, want count 2", got)
	}

	// Counter advances; gauge moves; Diff subtracts only monotone kinds.
	c.Add(9)
	d := r.Snapshot().Diff(s)
	if v, _ := d.Value("chain.retries", "switch=2"); v != 9 {
		t.Fatalf("Diff counter = %v, want 9", v)
	}
	if v, _ := d.Value("switch.mem_used", "switch=1"); v != 1.5 {
		t.Fatalf("Diff gauge = %v, want absolute 1.5", v)
	}
}

// TestSnapshotDiffHistogram pins Diff semantics for histogram-derived
// samples: counts subtract (they are monotone), distribution fields stay
// absolute — log-bucket quantiles do not subtract meaningfully.
func TestSnapshotDiffHistogram(t *testing.T) {
	h := stats.NewHistogram()
	h.Observe(100)
	h.Observe(200)
	r := NewRegistry()
	r.AddHistogram("chain.write_latency_ns", "switch=1", h)

	before := r.Snapshot()
	h.Observe(400)
	h.Observe(800)
	h.Observe(1600)
	after := r.Snapshot()
	d := after.Diff(before)

	if v, ok := d.Value("chain.write_latency_ns", "switch=1"); !ok || v != 3 {
		t.Fatalf("hist Diff count = %v,%v want 3,true", v, ok)
	}
	sm := d.Samples[0]
	if sm.Kind != KindHist.String() {
		t.Fatalf("kind = %q", sm.Kind)
	}
	if sm.P50 != after.Samples[0].P50 || sm.P99 != after.Samples[0].P99 || sm.Max != after.Samples[0].Max {
		t.Fatalf("quantiles must stay absolute: diff %+v vs after %+v", sm, after.Samples[0])
	}
	// A histogram absent from prev keeps its absolute count.
	h2 := stats.NewHistogram()
	h2.Observe(5)
	r.AddHistogram("chain.write_latency_ns", "switch=2", h2)
	d2 := r.Snapshot().Diff(before)
	if v, _ := d2.Value("chain.write_latency_ns", "switch=2"); v != 1 {
		t.Fatalf("new hist Diff = %v, want absolute 1", v)
	}
}

// TestSnapshotWritersEmpty pins the writers' behavior on an empty registry:
// WriteText emits nothing, WriteJSON emits a valid document with zero
// samples.
func TestSnapshotWritersEmpty(t *testing.T) {
	s := NewRegistry().Snapshot()
	var txt strings.Builder
	if err := s.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if txt.String() != "" {
		t.Fatalf("empty WriteText produced %q", txt.String())
	}
	var js strings.Builder
	if err := s.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	checkJSONSnapshot(t, js.String(), 0)
	var prom strings.Builder
	if err := s.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if prom.String() != "" {
		t.Fatalf("empty WritePrometheus produced %q", prom.String())
	}
}

func TestSnapshotWriters(t *testing.T) {
	r := NewRegistry()
	r.AddCounterFunc("a.count", "x=1", func() uint64 { return 3 })
	h := stats.NewHistogram()
	h.Observe(50)
	r.AddHistogram("b.lat", "", h)
	s := r.Snapshot()

	var txt strings.Builder
	if err := s.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "a.count{x=1}") || !strings.Contains(txt.String(), "p99=") {
		t.Fatalf("text dump missing fields:\n%s", txt.String())
	}

	var js strings.Builder
	if err := s.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	checkJSONSnapshot(t, js.String(), 2)
}
