package obs

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// Prometheus text-exposition rendering of a Snapshot (format version 0.0.4,
// what every scraper speaks). Dotted metric names become underscored
// families, the pre-rendered "k=v,k=v" label strings become proper label
// sets, and histograms are exported as summaries (quantile-labelled series
// plus _sum/_count) since log-bucket boundaries do not map onto Prometheus'
// cumulative le-buckets. Samples are already sorted by (name, labels), so
// each family is contiguous and gets exactly one TYPE line.

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	prevName := ""
	for _, sm := range s.Samples {
		name := promName(sm.Name)
		if sm.Name != prevName {
			prevName = sm.Name
			bw.WriteString("# TYPE ")
			bw.WriteString(name)
			switch sm.Kind {
			case KindCounter.String():
				bw.WriteString(" counter\n")
			case KindHist.String():
				bw.WriteString(" summary\n")
			default:
				bw.WriteString(" gauge\n")
			}
		}
		if sm.Kind != KindHist.String() {
			bw.WriteString(name)
			bw.WriteString(promLabels(sm.Labels, "", ""))
			bw.WriteByte(' ')
			bw.WriteString(formatValue(sm.Value))
			bw.WriteByte('\n')
			continue
		}
		for _, q := range [...]struct {
			q string
			v float64
		}{{"0.5", sm.P50}, {"0.99", sm.P99}, {"1", sm.Max}} {
			bw.WriteString(name)
			bw.WriteString(promLabels(sm.Labels, "quantile", q.q))
			bw.WriteByte(' ')
			bw.WriteString(formatValue(q.v))
			bw.WriteByte('\n')
		}
		bw.WriteString(name)
		bw.WriteString("_sum")
		bw.WriteString(promLabels(sm.Labels, "", ""))
		bw.WriteByte(' ')
		bw.WriteString(formatValue(sm.Mean * sm.Value))
		bw.WriteByte('\n')
		bw.WriteString(name)
		bw.WriteString("_count")
		bw.WriteString(promLabels(sm.Labels, "", ""))
		bw.WriteByte(' ')
		bw.WriteString(formatValue(sm.Value))
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// promName maps a dotted metric name onto the Prometheus grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabels renders a pre-rendered "k=v,k=v" label string (plus an optional
// extra pair) as a {k="v",...} label set; "" when there are no labels.
func promLabels(labels, extraK, extraV string) string {
	var parts []string
	if labels != "" {
		for _, kv := range strings.Split(labels, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				k, v = kv, ""
			}
			parts = append(parts, promName(k)+"="+strconv.Quote(v))
		}
	}
	if extraK != "" {
		parts = append(parts, extraK+"="+strconv.Quote(extraV))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}
