package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"swishmem/internal/stats"
)

// Timeline streamer: samples a Registry on a fixed interval and appends one
// schema-versioned JSONL row per tick, turning the point-in-time snapshots
// into a time series. Counters are emitted as per-interval deltas, gauges as
// absolute values, and histograms as per-interval p50/p90/p99 computed from
// a stats.WindowedHistogram ring fed by bucket-exact deltas of the live
// cumulative histogram — so tail latency is per-window, not
// cumulative-since-boot, and the components' own instrumentation is never
// touched (with streaming off the hot paths are exactly as before).
//
// Who drives Tick decides the time base: the sim facade calls it at virtual-
// time boundaries (fully deterministic — byte-identical rows across repeated
// runs and shard counts), the live harness on a wall clock.

// TimelineSchema versions the JSONL row format; the header row carries it.
const TimelineSchema = 1

// StreamConfig parameterizes a Stream.
type StreamConfig struct {
	// Interval is the sampling period, recorded in the header so readers can
	// turn deltas into rates. The caller owns the actual tick cadence.
	Interval time.Duration
	// Windows is the per-histogram ring size for the rolling tail quantile
	// (current window + Windows-1 sealed). Default 8.
	Windows int
	// Node is an optional node label recorded in the header and every row
	// (live clusters run one stream per process).
	Node string
	// Tail is how many rendered rows Tail() retains for the /timeline
	// endpoint and the flight recorder. Default 64.
	Tail int
}

// histTrack is the per-histogram interval state: the previous cumulative
// capture, the window ring, and a rollup scratch histogram.
type histTrack struct {
	prev    *stats.Histogram
	win     *stats.WindowedHistogram
	scratch *stats.Histogram
}

// Stream appends timeline rows for one Registry. Single-goroutine, like the
// registry it samples; live callers serialize Tick with the metric owners
// (e.g. under Fabric.Call). Errors are sticky: after a write error every
// Tick is a no-op and Close returns the error.
type Stream struct {
	reg  *Registry
	w    *bufio.Writer
	cfg  StreamConfig
	prev map[string]float64   // counter value at the previous tick
	hist map[string]*histTrack
	tail []string
	rows int
	err  error
	head bool
}

// NewStream attaches a timeline stream to a registry. Nothing is written
// until the first Tick (which emits the header row first).
func NewStream(reg *Registry, w io.Writer, cfg StreamConfig) *Stream {
	if cfg.Windows <= 0 {
		cfg.Windows = 8
	}
	if cfg.Tail <= 0 {
		cfg.Tail = 64
	}
	return &Stream{
		reg:  reg,
		w:    bufio.NewWriter(w),
		cfg:  cfg,
		prev: make(map[string]float64),
		hist: make(map[string]*histTrack),
	}
}

// Rows returns the number of data rows written (the header is not counted).
func (s *Stream) Rows() int { return s.rows }

// Err returns the sticky write error, if any.
func (s *Stream) Err() error { return s.err }

// Tail returns the most recently written rows (oldest first, at most
// cfg.Tail), without trailing newlines.
func (s *Stream) Tail() []string {
	out := make([]string, len(s.tail))
	copy(out, s.tail)
	return out
}

// Tick samples the registry and appends one row stamped ts (nanoseconds;
// virtual time in sim, wall-clock offset in live). Counter samples are
// emitted only when they moved this interval and histogram samples only
// when the interval saw observations, so quiet intervals produce short
// rows; gauges are always present.
func (s *Stream) Tick(ts int64) error {
	if s.err != nil {
		return s.err
	}
	if !s.head {
		s.head = true
		hdr := fmt.Sprintf(`{"timeline":%d,"interval_ns":%d,"windows":%d`,
			TimelineSchema, s.cfg.Interval.Nanoseconds(), s.cfg.Windows)
		if s.cfg.Node != "" {
			hdr += `,"node":` + strconv.Quote(s.cfg.Node)
		}
		hdr += "}"
		s.push(hdr)
	}

	// Sort the registry's metrics by sample key each tick: cheap at this
	// cadence, and robust to registries that grow between ticks.
	idx := make([]int, len(s.reg.metrics))
	for i := range idx {
		idx[i] = i
	}
	key := func(m *metric) string { return m.name + "{" + m.labels + "}" }
	sort.Slice(idx, func(a, b int) bool {
		return key(&s.reg.metrics[idx[a]]) < key(&s.reg.metrics[idx[b]])
	})

	row := fmt.Sprintf(`{"ts":%d`, ts)
	if s.cfg.Node != "" {
		row += `,"node":` + strconv.Quote(s.cfg.Node)
	}
	row += `,"samples":[`
	n := 0
	sample := func(m *metric) string {
		n++
		out := `{"name":` + strconv.Quote(m.name)
		if m.labels != "" {
			out += `,"labels":` + strconv.Quote(m.labels)
		}
		return out
	}
	for _, i := range idx {
		m := &s.reg.metrics[i]
		k := key(m)
		var part string
		switch m.kind {
		case KindCounter:
			v := float64(m.counter())
			d := v - s.prev[k]
			s.prev[k] = v
			if d == 0 {
				continue
			}
			part = sample(m) + `,"delta":` + formatValue(d) + "}"
		case KindGauge:
			part = sample(m) + `,"value":` + formatValue(m.gauge()) + "}"
		case KindHist:
			tr := s.hist[k]
			if tr == nil {
				tr = &histTrack{
					prev:    stats.NewHistogram(),
					win:     stats.NewWindowedHistogram(s.cfg.Windows),
					scratch: stats.NewHistogram(),
				}
				s.hist[k] = tr
			}
			tr.win.Current().AddDelta(m.hist, tr.prev)
			tr.prev.CopyFrom(m.hist)
			sealed := tr.win.Advance()
			if sealed.Count() == 0 {
				continue
			}
			tr.scratch.Reset()
			tr.win.Rollup(tr.scratch)
			part = sample(m) + fmt.Sprintf(`,"n":%d,"p50":%s,"p90":%s,"p99":%s,"max":%s,"roll_n":%d,"roll_p99":%s}`,
				sealed.Count(),
				formatValue(sealed.Quantile(0.5)),
				formatValue(sealed.Quantile(0.9)),
				formatValue(sealed.Quantile(0.99)),
				formatValue(sealed.Max()),
				tr.scratch.Count(),
				formatValue(tr.scratch.Quantile(0.99)))
		}
		if n > 1 {
			row += ","
		}
		row += part
	}
	row += "]}"
	s.rows++
	s.push(row)
	return s.err
}

// push appends one line to the writer and the tail ring.
func (s *Stream) push(line string) {
	if _, err := s.w.WriteString(line + "\n"); err != nil {
		s.err = err
		return
	}
	if err := s.w.Flush(); err != nil {
		s.err = err
		return
	}
	s.tail = append(s.tail, line)
	if len(s.tail) > s.cfg.Tail {
		s.tail = s.tail[len(s.tail)-s.cfg.Tail:]
	}
}

// Close flushes buffered output and returns the sticky error.
func (s *Stream) Close() error {
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}
