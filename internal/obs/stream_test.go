package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"swishmem/internal/stats"
)

// timelineRow is the decoded shape of one data row, for assertions.
type timelineRow struct {
	TS      int64  `json:"ts"`
	Node    string `json:"node"`
	Samples []struct {
		Name   string  `json:"name"`
		Labels string  `json:"labels"`
		Delta  float64 `json:"delta"`
		Value  float64 `json:"value"`
		N      uint64  `json:"n"`
		P50    float64 `json:"p50"`
		P90    float64 `json:"p90"`
		P99    float64 `json:"p99"`
		RollN  uint64  `json:"roll_n"`
	} `json:"samples"`
}

func TestStreamRows(t *testing.T) {
	var c stats.Counter
	var g stats.Gauge
	h := stats.NewHistogram()
	reg := NewRegistry()
	reg.AddCounter("x.ops", "node=1", &c)
	reg.AddGaugeFunc("x.depth", "", g.Value)
	reg.AddHistogram("x.lat_ns", "", h)

	var out strings.Builder
	s := NewStream(reg, &out, StreamConfig{Interval: time.Millisecond, Windows: 4, Node: "n0", Tail: 2})

	// Tick 1: counter moved, histogram saw two values.
	c.Add(5)
	g.Set(2)
	h.Observe(100)
	h.Observe(1000)
	if err := s.Tick(1e6); err != nil {
		t.Fatal(err)
	}
	// Tick 2: quiet interval — only the gauge appears.
	if err := s.Tick(2e6); err != nil {
		t.Fatal(err)
	}
	// Tick 3: counter moves again; histogram interval has one value but the
	// rolling window still covers tick 1's observations.
	c.Add(3)
	h.Observe(500)
	if err := s.Tick(3e6); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 4 { // header + 3 rows
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), out.String())
	}
	var hdr struct {
		Timeline   int    `json:"timeline"`
		IntervalNS int64  `json:"interval_ns"`
		Windows    int    `json:"windows"`
		Node       string `json:"node"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatalf("header not JSON: %v\n%s", err, lines[0])
	}
	if hdr.Timeline != TimelineSchema || hdr.IntervalNS != 1e6 || hdr.Windows != 4 || hdr.Node != "n0" {
		t.Fatalf("header wrong: %+v", hdr)
	}

	rows := make([]timelineRow, 3)
	for i := range rows {
		if err := json.Unmarshal([]byte(lines[i+1]), &rows[i]); err != nil {
			t.Fatalf("row %d not JSON: %v\n%s", i, err, lines[i+1])
		}
	}
	find := func(r timelineRow, name string) (int, bool) {
		for i, sm := range r.Samples {
			if sm.Name == name {
				return i, true
			}
		}
		return 0, false
	}

	if rows[0].TS != 1e6 || rows[0].Node != "n0" {
		t.Fatalf("row 0 stamp wrong: %+v", rows[0])
	}
	if i, ok := find(rows[0], "x.ops"); !ok || rows[0].Samples[i].Delta != 5 {
		t.Fatalf("row 0 counter delta wrong: %+v", rows[0])
	}
	if i, ok := find(rows[0], "x.lat_ns"); !ok || rows[0].Samples[i].N != 2 ||
		rows[0].Samples[i].P50 < 90 || rows[0].Samples[i].P99 < 900 {
		t.Fatalf("row 0 histogram interval wrong: %+v", rows[0])
	}

	// Quiet interval: counter and histogram suppressed, gauge retained.
	if _, ok := find(rows[1], "x.ops"); ok {
		t.Fatalf("unchanged counter leaked into quiet row: %+v", rows[1])
	}
	if _, ok := find(rows[1], "x.lat_ns"); ok {
		t.Fatalf("empty histogram interval leaked into quiet row: %+v", rows[1])
	}
	if i, ok := find(rows[1], "x.depth"); !ok || rows[1].Samples[i].Value != 2 {
		t.Fatalf("gauge missing from quiet row: %+v", rows[1])
	}

	if i, ok := find(rows[2], "x.ops"); !ok || rows[2].Samples[i].Delta != 3 {
		t.Fatalf("row 2 counter delta wrong: %+v", rows[2])
	}
	if i, ok := find(rows[2], "x.lat_ns"); !ok || rows[2].Samples[i].N != 1 ||
		rows[2].Samples[i].RollN != 3 {
		t.Fatalf("row 2 windowed rollup wrong (want interval n=1, rolling n=3): %+v", rows[2])
	}

	// The tail ring retains the last Tail rows.
	tail := s.Tail()
	if len(tail) != 2 || tail[0] != lines[2] || tail[1] != lines[3] {
		t.Fatalf("tail ring wrong: %q", tail)
	}
	if s.Rows() != 3 {
		t.Fatalf("Rows = %d, want 3", s.Rows())
	}
}

// TestStreamDeterministic pins byte-identical output for identical inputs —
// the property the sim facade's timeline relies on.
func TestStreamDeterministic(t *testing.T) {
	run := func() string {
		var c stats.Counter
		h := stats.NewHistogram()
		reg := NewRegistry()
		reg.AddCounter("a.ops", "", &c)
		reg.AddHistogram("a.lat", "", h)
		var out strings.Builder
		s := NewStream(reg, &out, StreamConfig{Interval: time.Millisecond})
		for i := 1; i <= 5; i++ {
			c.Add(uint64(i))
			h.Observe(float64(i * 37))
			s.Tick(int64(i) * 1e6)
		}
		s.Close()
		return out.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("identical runs produced different timelines:\n%s\nvs\n%s", a, b)
	}
}

func TestStreamStickyError(t *testing.T) {
	reg := NewRegistry()
	reg.AddCounterFunc("a", "", func() uint64 { return 1 })
	s := NewStream(reg, failWriter{}, StreamConfig{})
	if err := s.Tick(1); err == nil {
		t.Fatal("write error not surfaced")
	}
	if err := s.Close(); err == nil {
		t.Fatal("Close lost the sticky error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }

func TestWritePrometheus(t *testing.T) {
	var c stats.Counter
	c.Add(7)
	h := stats.NewHistogram()
	h.Observe(100)
	h.Observe(300)
	reg := NewRegistry()
	reg.AddCounter("chain.writes_committed", "switch=2,reg=1", &c)
	reg.AddGaugeFunc("switch.mem_used_bytes", "switch=1", func() float64 { return 1.5 })
	reg.AddHistogram("chain.write_latency_ns", "switch=2,reg=1", h)

	var out strings.Builder
	if err := reg.Snapshot().WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"# TYPE chain_writes_committed counter",
		`chain_writes_committed{switch="2",reg="1"} 7`,
		"# TYPE switch_mem_used_bytes gauge",
		`switch_mem_used_bytes{switch="1"} 1.5`,
		"# TYPE chain_write_latency_ns summary",
		`chain_write_latency_ns{switch="2",reg="1",quantile="0.5"}`,
		`chain_write_latency_ns{switch="2",reg="1",quantile="0.99"}`,
		`chain_write_latency_ns_sum{switch="2",reg="1"} 400`,
		`chain_write_latency_ns_count{switch="2",reg="1"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	// Exactly one TYPE line per family.
	if n := strings.Count(text, "# TYPE chain_write_latency_ns summary"); n != 1 {
		t.Fatalf("TYPE line repeated %d times:\n%s", n, text)
	}
}

func TestFlightRecord(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 12; i++ {
		ev := tr.Emit(PhaseInstant, int64(i)*100, 0, PidSim, "sim", "event")
		ev.K1, ev.V1 = "i", int64(i)
	}
	sp := tr.Emit(PhaseSpan, 1200, 50, 3, "chain", "write.commit")
	sp.KS, sp.VS = "verdict", "ok"

	var c stats.Counter
	c.Add(41)
	reg := NewRegistry()
	reg.AddCounter("chain.writes_committed", "switch=1", &c)

	fr := NewFlightRecord(4, reg.Snapshot(), []string{`{"ts":1}`, `{"ts":2}`}, tr)
	if len(fr.Events) != 4 {
		t.Fatalf("kept %d events, want 4", len(fr.Events))
	}
	if fr.TotalEvents != 13 {
		t.Fatalf("TotalEvents = %d, want 13", fr.TotalEvents)
	}
	text := fr.String()
	for _, want := range []string{
		"flight recorder: last 4 of 13 trace events",
		"[chain] write.commit",
		"verdict=ok",
		"final metrics snapshot (1 samples):",
		"chain.writes_committed{switch=1}  41",
		"timeline tail (2 rows):",
		`{"ts":2}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

func TestTelemetryServer(t *testing.T) {
	var c stats.Counter
	c.Add(3)
	reg := NewRegistry()
	reg.AddCounter("x.ops", "", &c)

	ts, err := StartTelemetry("127.0.0.1:0",
		func() (Snapshot, error) { return reg.Snapshot(), nil },
		func() []string { return []string{`{"ts":1}`, `{"ts":2}`} })
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", ts.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "x_ops 3") {
		t.Fatalf("/metrics = %d:\n%s", code, body)
	}
	if code, body := get("/timeline"); code != 200 || body != "{\"ts\":1}\n{\"ts\":2}\n" {
		t.Fatalf("/timeline = %d:\n%q", code, body)
	}
}
