package obs

import (
	"fmt"
	"net"
	"net/http"
	"time"
)

// TelemetryServer serves the live observability endpoints:
//
//	/metrics   Prometheus text exposition of a fresh Snapshot
//	/timeline  the recent timeline rows (JSONL), newest last
//
// The callbacks own their synchronization: live nodes hand in closures that
// read under Fabric.Call, so a scrape serializes with the pump instead of
// racing it.
type TelemetryServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartTelemetry binds addr (e.g. "127.0.0.1:9100"; port 0 picks one) and
// serves scrapes in a background goroutine. snapshot is called per /metrics
// request; an error turns into a 503 (e.g. the node is shutting down).
// timeline may be nil, which makes /timeline a 404.
func StartTelemetry(addr string, snapshot func() (Snapshot, error), timeline func() []string) (*TelemetryServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: telemetry listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap, err := snapshot()
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snap.WritePrometheus(w)
	})
	mux.HandleFunc("/timeline", func(w http.ResponseWriter, r *http.Request) {
		if timeline == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		for _, row := range timeline() {
			fmt.Fprintln(w, row)
		}
	})
	ts := &TelemetryServer{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go ts.srv.Serve(ln)
	return ts, nil
}

// Addr returns the bound address (useful with port 0).
func (ts *TelemetryServer) Addr() string { return ts.ln.Addr().String() }

// Close stops serving. Safe to call once.
func (ts *TelemetryServer) Close() error { return ts.srv.Close() }
