package packet

import "net/netip"

// Builder provides a fluent constructor for test and workload packets.
// The zero value is not usable; start with NewBuilder.
type Builder struct{ p *Packet }

// NewBuilder starts a packet with an Ethernet+IPv4 skeleton using sensible
// defaults (TTL 64).
func NewBuilder() *Builder {
	return &Builder{p: &Packet{
		Eth: &Ethernet{EtherType: EtherTypeIPv4},
		IP:  &IPv4{TTL: 64},
	}}
}

// Src sets the IPv4 source address.
func (b *Builder) Src(a netip.Addr) *Builder { b.p.IP.Src = a; return b }

// Dst sets the IPv4 destination address.
func (b *Builder) Dst(a netip.Addr) *Builder { b.p.IP.Dst = a; return b }

// TCP attaches a TCP header with the given ports and flags.
func (b *Builder) TCP(srcPort, dstPort uint16, flags TCPFlags) *Builder {
	b.p.IP.Protocol = ProtoTCP
	b.p.TCP = &TCP{SrcPort: srcPort, DstPort: dstPort, Flags: flags, Window: 65535}
	b.p.UDP = nil
	return b
}

// UDP attaches a UDP header with the given ports.
func (b *Builder) UDP(srcPort, dstPort uint16) *Builder {
	b.p.IP.Protocol = ProtoUDP
	b.p.UDP = &UDP{SrcPort: srcPort, DstPort: dstPort}
	b.p.TCP = nil
	return b
}

// Payload sets the packet payload.
func (b *Builder) Payload(data []byte) *Builder { b.p.Payload = data; return b }

// TTL overrides the IPv4 TTL.
func (b *Builder) TTL(ttl uint8) *Builder { b.p.IP.TTL = ttl; return b }

// Build returns the packet.
func (b *Builder) Build() *Packet { return b.p }

// ForFlow builds a minimal packet for a flow key — the workhorse of the
// workload generators.
func ForFlow(k FlowKey, flags TCPFlags, payloadLen int) *Packet {
	b := NewBuilder().Src(k.Src).Dst(k.Dst)
	switch k.Proto {
	case ProtoUDP:
		b.UDP(k.SrcPort, k.DstPort)
	default:
		b.TCP(k.SrcPort, k.DstPort, flags)
	}
	if payloadLen > 0 {
		b.Payload(make([]byte, payloadLen))
	}
	return b.Build()
}

// Addr4 is a convenience constructor for IPv4 addresses from octets.
func Addr4(a, b, c, d byte) netip.Addr { return netip.AddrFrom4([4]byte{a, b, c, d}) }

// AddrU32 converts a uint32 to an IPv4 address (big-endian), handy for
// synthesizing address ranges in workloads.
func AddrU32(v uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// U32Addr converts an IPv4 address back to its uint32 form.
func U32Addr(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
