// Package packet models the network packets processed by the emulated PISA
// switches. It follows the gopacket layering idiom: a packet is decoded into
// a stack of typed layers (Ethernet, IPv4, TCP/UDP, payload), each of which
// can also serialize itself back to bytes. Only the protocols the SwiShmem
// NFs need are implemented, but they are implemented completely: real header
// layouts, real checksums, so the live UDP harness can carry these packets
// verbatim.
package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// EtherType identifies the payload protocol of an Ethernet frame.
type EtherType uint16

// Supported EtherTypes.
const (
	EtherTypeIPv4 EtherType = 0x0800
	EtherTypeARP  EtherType = 0x0806
)

// IPProto identifies the transport protocol of an IPv4 packet.
type IPProto uint8

// Supported IP protocol numbers.
const (
	ProtoICMP IPProto = 1
	ProtoTCP  IPProto = 6
	ProtoUDP  IPProto = 17
)

func (p IPProto) String() string {
	switch p {
	case ProtoICMP:
		return "ICMP"
	case ProtoTCP:
		return "TCP"
	case ProtoUDP:
		return "UDP"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Ethernet is the L2 header.
type Ethernet struct {
	Dst, Src  MAC
	EtherType EtherType
}

const ethernetLen = 14

// IPv4 is the L3 header (without options).
type IPv4 struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8 // 3 bits
	FragOff  uint16
	TTL      uint8
	Protocol IPProto
	Checksum uint16 // filled on serialize
	Src, Dst netip.Addr
}

const ipv4Len = 20

// TCPFlags is the TCP flag byte.
type TCPFlags uint8

// TCP flag bits.
const (
	FlagFIN TCPFlags = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

func (f TCPFlags) Has(bit TCPFlags) bool { return f&bit != 0 }

func (f TCPFlags) String() string {
	names := []struct {
		bit  TCPFlags
		name string
	}{{FlagSYN, "SYN"}, {FlagACK, "ACK"}, {FlagFIN, "FIN"}, {FlagRST, "RST"}, {FlagPSH, "PSH"}, {FlagURG, "URG"}}
	s := ""
	for _, n := range names {
		if f.Has(n.bit) {
			if s != "" {
				s += "|"
			}
			s += n.name
		}
	}
	if s == "" {
		s = "-"
	}
	return s
}

// TCP is the L4 TCP header (without options).
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            TCPFlags
	Window           uint16
	Checksum         uint16
}

const tcpLen = 20

// UDP is the L4 UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

const udpLen = 8

// Packet is a fully decoded packet. Nil layer pointers mean the layer is
// absent. Payload holds whatever follows the last decoded header.
type Packet struct {
	Eth     *Ethernet
	IP      *IPv4
	TCP     *TCP
	UDP     *UDP
	Payload []byte

	// Meta carries per-packet metadata attached by the switch pipeline
	// (ingress port, recirculation count, etc.). It is not serialized.
	Meta Metadata

	// Pool plumbing (see pool.go). Pooled packets carry their layer headers
	// and payload backing inline, so reincarnating one allocates nothing.
	// All fields below are unused (zero) for ordinary packets.
	pool    *Pool
	inPool  bool
	eth     Ethernet
	ip      IPv4
	tcp     TCP
	udp     UDP
	payload []byte
}

// Metadata is pipeline metadata carried alongside a packet inside a switch.
type Metadata struct {
	IngressPort  int
	EgressPort   int
	Recirculated int
	Mirrored     bool
	// ArrivalSeq is a monotone per-switch arrival number, used by audits.
	ArrivalSeq uint64
}

// FlowKey is the canonical 5-tuple used as NF state key.
type FlowKey struct {
	Src, Dst netip.Addr
	SrcPort  uint16
	DstPort  uint16
	Proto    IPProto
}

func (k FlowKey) String() string {
	return fmt.Sprintf("%s %s:%d->%s:%d", k.Proto, k.Src, k.SrcPort, k.Dst, k.DstPort)
}

// Reverse returns the key of the opposite direction of the same flow.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{Src: k.Dst, Dst: k.Src, SrcPort: k.DstPort, DstPort: k.SrcPort, Proto: k.Proto}
}

// Flow extracts the 5-tuple from a decoded packet. ok is false if the packet
// has no IPv4 layer.
func (p *Packet) Flow() (k FlowKey, ok bool) {
	if p.IP == nil {
		return k, false
	}
	k.Src, k.Dst, k.Proto = p.IP.Src, p.IP.Dst, p.IP.Protocol
	switch {
	case p.TCP != nil:
		k.SrcPort, k.DstPort = p.TCP.SrcPort, p.TCP.DstPort
	case p.UDP != nil:
		k.SrcPort, k.DstPort = p.UDP.SrcPort, p.UDP.DstPort
	}
	return k, true
}

// Len returns the serialized length in bytes.
func (p *Packet) Len() int {
	n := 0
	if p.Eth != nil {
		n += ethernetLen
	}
	if p.IP != nil {
		n += ipv4Len
	}
	if p.TCP != nil {
		n += tcpLen
	}
	if p.UDP != nil {
		n += udpLen
	}
	return n + len(p.Payload)
}

// Clone deep-copies the packet (used when a switch mirrors or multicasts).
func (p *Packet) Clone() *Packet {
	q := &Packet{Meta: p.Meta}
	if p.Eth != nil {
		e := *p.Eth
		q.Eth = &e
	}
	if p.IP != nil {
		ip := *p.IP
		q.IP = &ip
	}
	if p.TCP != nil {
		t := *p.TCP
		q.TCP = &t
	}
	if p.UDP != nil {
		u := *p.UDP
		q.UDP = &u
	}
	if p.Payload != nil {
		q.Payload = append([]byte(nil), p.Payload...)
	}
	return q
}

// CloneRemote implements netem.RemoteMsg: a packet crossing a simulation
// shard boundary is deep-copied because pooled packets carry a pointer to
// their creating switch's pool, which the receiving shard must never touch.
// The clone is unpooled; the original is simply dropped (its pool slot is
// reincarnated by GC pressure instead of recycling — cross-shard packet
// forwarding is rare enough that this does not show up in allocation
// budgets).
func (p *Packet) CloneRemote() any { return p.Clone() }

func (p *Packet) String() string {
	if p.IP == nil {
		return "non-IP packet"
	}
	if k, ok := p.Flow(); ok {
		extra := ""
		if p.TCP != nil {
			extra = " [" + p.TCP.Flags.String() + "]"
		}
		return k.String() + extra
	}
	return "packet"
}

// Serialize encodes the packet into wire bytes, computing the IPv4 total
// length, the IPv4 header checksum, and the transport checksums.
func (p *Packet) Serialize() ([]byte, error) {
	buf := make([]byte, 0, p.Len())
	// Compute transport first for the IP TotalLen.
	var l4 []byte
	switch {
	case p.TCP != nil && p.UDP != nil:
		return nil, fmt.Errorf("packet: both TCP and UDP present")
	case p.TCP != nil:
		l4 = make([]byte, tcpLen)
		t := p.TCP
		binary.BigEndian.PutUint16(l4[0:], t.SrcPort)
		binary.BigEndian.PutUint16(l4[2:], t.DstPort)
		binary.BigEndian.PutUint32(l4[4:], t.Seq)
		binary.BigEndian.PutUint32(l4[8:], t.Ack)
		l4[12] = 5 << 4 // data offset: 5 words
		l4[13] = byte(t.Flags)
		binary.BigEndian.PutUint16(l4[14:], t.Window)
		// checksum at [16:18] computed below
	case p.UDP != nil:
		l4 = make([]byte, udpLen)
		u := p.UDP
		binary.BigEndian.PutUint16(l4[0:], u.SrcPort)
		binary.BigEndian.PutUint16(l4[2:], u.DstPort)
		binary.BigEndian.PutUint16(l4[4:], uint16(udpLen+len(p.Payload)))
	}

	var ipHdr []byte
	if p.IP != nil {
		ip := p.IP
		if !ip.Src.Is4() || !ip.Dst.Is4() {
			return nil, fmt.Errorf("packet: non-IPv4 address in IPv4 header (%v -> %v)", ip.Src, ip.Dst)
		}
		ipHdr = make([]byte, ipv4Len)
		ipHdr[0] = 0x45 // version 4, IHL 5
		ipHdr[1] = ip.TOS
		total := ipv4Len + len(l4) + len(p.Payload)
		if total > 0xffff {
			return nil, fmt.Errorf("packet: total length %d exceeds IPv4 maximum", total)
		}
		binary.BigEndian.PutUint16(ipHdr[2:], uint16(total))
		binary.BigEndian.PutUint16(ipHdr[4:], ip.ID)
		binary.BigEndian.PutUint16(ipHdr[6:], uint16(ip.Flags)<<13|ip.FragOff&0x1fff)
		ipHdr[8] = ip.TTL
		ipHdr[9] = byte(ip.Protocol)
		src, dst := ip.Src.As4(), ip.Dst.As4()
		copy(ipHdr[12:16], src[:])
		copy(ipHdr[16:20], dst[:])
		binary.BigEndian.PutUint16(ipHdr[10:], checksum(ipHdr, 0))

		// Transport checksum over pseudo-header + l4 + payload.
		if len(l4) > 0 {
			ph := pseudoHeader(src, dst, byte(ip.Protocol), len(l4)+len(p.Payload))
			sum := partialSum(ph, 0)
			sum = partialSum(l4, sum)
			sum = partialSum(p.Payload, sum)
			ck := foldSum(sum)
			switch {
			case p.TCP != nil:
				binary.BigEndian.PutUint16(l4[16:], ck)
			case p.UDP != nil:
				if ck == 0 {
					ck = 0xffff // UDP: 0 means "no checksum"
				}
				binary.BigEndian.PutUint16(l4[6:], ck)
			}
		}
	}

	if p.Eth != nil {
		e := make([]byte, ethernetLen)
		copy(e[0:6], p.Eth.Dst[:])
		copy(e[6:12], p.Eth.Src[:])
		binary.BigEndian.PutUint16(e[12:], uint16(p.Eth.EtherType))
		buf = append(buf, e...)
	}
	buf = append(buf, ipHdr...)
	buf = append(buf, l4...)
	buf = append(buf, p.Payload...)
	return buf, nil
}

// Decode parses wire bytes into a Packet. The first layer is Ethernet if
// withEth is true, IPv4 otherwise.
func Decode(data []byte, withEth bool) (*Packet, error) {
	p := &Packet{}
	rest := data
	if withEth {
		if len(rest) < ethernetLen {
			return nil, fmt.Errorf("packet: truncated ethernet header (%d bytes)", len(rest))
		}
		e := &Ethernet{}
		copy(e.Dst[:], rest[0:6])
		copy(e.Src[:], rest[6:12])
		e.EtherType = EtherType(binary.BigEndian.Uint16(rest[12:14]))
		p.Eth = e
		rest = rest[ethernetLen:]
		if e.EtherType != EtherTypeIPv4 {
			p.Payload = append([]byte(nil), rest...)
			return p, nil
		}
	}
	if len(rest) < ipv4Len {
		return nil, fmt.Errorf("packet: truncated IPv4 header (%d bytes)", len(rest))
	}
	if v := rest[0] >> 4; v != 4 {
		return nil, fmt.Errorf("packet: IP version %d, want 4", v)
	}
	ihl := int(rest[0]&0x0f) * 4
	if ihl < ipv4Len || len(rest) < ihl {
		return nil, fmt.Errorf("packet: bad IHL %d", ihl)
	}
	ip := &IPv4{
		TOS:      rest[1],
		TotalLen: binary.BigEndian.Uint16(rest[2:4]),
		ID:       binary.BigEndian.Uint16(rest[4:6]),
		TTL:      rest[8],
		Protocol: IPProto(rest[9]),
	}
	fo := binary.BigEndian.Uint16(rest[6:8])
	ip.Flags = uint8(fo >> 13)
	ip.FragOff = fo & 0x1fff
	ip.Src = netip.AddrFrom4([4]byte(rest[12:16]))
	ip.Dst = netip.AddrFrom4([4]byte(rest[16:20]))
	if int(ip.TotalLen) > len(rest) {
		return nil, fmt.Errorf("packet: total length %d exceeds available %d", ip.TotalLen, len(rest))
	}
	if ip.TotalLen > 0 {
		rest = rest[:ip.TotalLen]
	}
	p.IP = ip
	rest = rest[ihl:]

	switch ip.Protocol {
	case ProtoTCP:
		if len(rest) < tcpLen {
			return nil, fmt.Errorf("packet: truncated TCP header (%d bytes)", len(rest))
		}
		t := &TCP{
			SrcPort:  binary.BigEndian.Uint16(rest[0:2]),
			DstPort:  binary.BigEndian.Uint16(rest[2:4]),
			Seq:      binary.BigEndian.Uint32(rest[4:8]),
			Ack:      binary.BigEndian.Uint32(rest[8:12]),
			Flags:    TCPFlags(rest[13]),
			Window:   binary.BigEndian.Uint16(rest[14:16]),
			Checksum: binary.BigEndian.Uint16(rest[16:18]),
		}
		off := int(rest[12]>>4) * 4
		if off < tcpLen || len(rest) < off {
			return nil, fmt.Errorf("packet: bad TCP data offset %d", off)
		}
		p.TCP = t
		rest = rest[off:]
	case ProtoUDP:
		if len(rest) < udpLen {
			return nil, fmt.Errorf("packet: truncated UDP header (%d bytes)", len(rest))
		}
		u := &UDP{
			SrcPort:  binary.BigEndian.Uint16(rest[0:2]),
			DstPort:  binary.BigEndian.Uint16(rest[2:4]),
			Length:   binary.BigEndian.Uint16(rest[4:6]),
			Checksum: binary.BigEndian.Uint16(rest[6:8]),
		}
		p.UDP = u
		rest = rest[udpLen:]
	}
	p.Payload = append([]byte(nil), rest...)
	return p, nil
}

// pseudoHeader builds the IPv4 pseudo-header used by TCP/UDP checksums.
func pseudoHeader(src, dst [4]byte, proto byte, l4len int) []byte {
	ph := make([]byte, 12)
	copy(ph[0:4], src[:])
	copy(ph[4:8], dst[:])
	ph[9] = proto
	binary.BigEndian.PutUint16(ph[10:], uint16(l4len))
	return ph
}

func partialSum(b []byte, sum uint32) uint32 {
	n := len(b)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if n%2 == 1 {
		sum += uint32(b[n-1]) << 8
	}
	return sum
}

func foldSum(sum uint32) uint16 {
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// checksum computes the 16-bit ones-complement checksum of b with an
// initial partial sum.
func checksum(b []byte, initial uint32) uint16 { return foldSum(partialSum(b, initial)) }

// VerifyIPChecksum reports whether the IPv4 header checksum in raw is valid.
// raw must start at the IPv4 header.
func VerifyIPChecksum(raw []byte) bool {
	if len(raw) < ipv4Len {
		return false
	}
	ihl := int(raw[0]&0x0f) * 4
	if ihl < ipv4Len || len(raw) < ihl {
		return false
	}
	return checksum(raw[:ihl], 0) == 0
}
