package packet

import (
	"bytes"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTCPRoundTrip(t *testing.T) {
	p := NewBuilder().
		Src(Addr4(10, 0, 0, 1)).Dst(Addr4(192, 168, 1, 2)).
		TCP(12345, 80, FlagSYN|FlagACK).
		Payload([]byte("hello")).
		Build()
	p.IP.ID = 777
	raw, err := p.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != p.Len() {
		t.Fatalf("len mismatch: raw %d, Len() %d", len(raw), p.Len())
	}
	q, err := Decode(raw, true)
	if err != nil {
		t.Fatal(err)
	}
	if q.IP.Src != p.IP.Src || q.IP.Dst != p.IP.Dst || q.IP.ID != 777 {
		t.Fatalf("IP mismatch: %+v", q.IP)
	}
	if q.TCP == nil || q.TCP.SrcPort != 12345 || q.TCP.DstPort != 80 {
		t.Fatalf("TCP mismatch: %+v", q.TCP)
	}
	if !q.TCP.Flags.Has(FlagSYN) || !q.TCP.Flags.Has(FlagACK) || q.TCP.Flags.Has(FlagFIN) {
		t.Fatalf("flags = %v", q.TCP.Flags)
	}
	if !bytes.Equal(q.Payload, []byte("hello")) {
		t.Fatalf("payload = %q", q.Payload)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	p := NewBuilder().
		Src(Addr4(1, 2, 3, 4)).Dst(Addr4(5, 6, 7, 8)).
		UDP(5000, 53).
		Payload([]byte{0xde, 0xad}).
		Build()
	raw, err := p.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Decode(raw, true)
	if err != nil {
		t.Fatal(err)
	}
	if q.UDP == nil || q.UDP.SrcPort != 5000 || q.UDP.DstPort != 53 {
		t.Fatalf("UDP = %+v", q.UDP)
	}
	if q.UDP.Length != udpLen+2 {
		t.Fatalf("UDP length = %d", q.UDP.Length)
	}
	if !bytes.Equal(q.Payload, []byte{0xde, 0xad}) {
		t.Fatalf("payload = %v", q.Payload)
	}
}

func TestIPChecksumValid(t *testing.T) {
	p := NewBuilder().Src(Addr4(10, 0, 0, 1)).Dst(Addr4(10, 0, 0, 2)).UDP(1, 2).Build()
	raw, err := p.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	ipRaw := raw[ethernetLen:]
	if !VerifyIPChecksum(ipRaw) {
		t.Fatal("IP checksum invalid")
	}
	// Corrupt a byte: checksum must fail.
	ipRaw[15] ^= 0xff
	if VerifyIPChecksum(ipRaw) {
		t.Fatal("corrupted header passed checksum")
	}
}

func TestDecodeWithoutEthernet(t *testing.T) {
	p := NewBuilder().Src(Addr4(1, 1, 1, 1)).Dst(Addr4(2, 2, 2, 2)).TCP(1, 2, FlagACK).Build()
	p.Eth = nil
	raw, err := p.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Decode(raw, false)
	if err != nil {
		t.Fatal(err)
	}
	if q.Eth != nil {
		t.Fatal("unexpected ethernet layer")
	}
	if q.TCP == nil {
		t.Fatal("missing TCP layer")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name    string
		data    []byte
		withEth bool
	}{
		{"empty eth", nil, true},
		{"empty ip", nil, false},
		{"short ip", make([]byte, 10), false},
		{"bad version", append([]byte{0x65}, make([]byte, 19)...), false},
		{"bad ihl", append([]byte{0x41}, make([]byte, 19)...), false},
	}
	for _, c := range cases {
		if _, err := Decode(c.data, c.withEth); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// Truncated TCP.
	p := NewBuilder().Src(Addr4(1, 1, 1, 1)).Dst(Addr4(2, 2, 2, 2)).TCP(1, 2, 0).Build()
	p.Eth = nil
	raw, _ := p.Serialize()
	if _, err := Decode(raw[:ipv4Len+5], false); err == nil {
		t.Error("truncated TCP: expected error")
	}
}

func TestNonIPv4EtherType(t *testing.T) {
	raw := make([]byte, ethernetLen+4)
	raw[12], raw[13] = 0x08, 0x06 // ARP
	raw[14] = 0xaa
	p, err := Decode(raw, true)
	if err != nil {
		t.Fatal(err)
	}
	if p.IP != nil {
		t.Fatal("ARP decoded as IP")
	}
	if p.Eth.EtherType != EtherTypeARP {
		t.Fatalf("ethertype = %#x", p.Eth.EtherType)
	}
	if len(p.Payload) != 4 || p.Payload[0] != 0xaa {
		t.Fatalf("payload = %v", p.Payload)
	}
}

func TestFlowKey(t *testing.T) {
	p := NewBuilder().Src(Addr4(10, 0, 0, 1)).Dst(Addr4(10, 0, 0, 2)).TCP(1111, 80, FlagSYN).Build()
	k, ok := p.Flow()
	if !ok {
		t.Fatal("Flow failed")
	}
	if k.SrcPort != 1111 || k.DstPort != 80 || k.Proto != ProtoTCP {
		t.Fatalf("key = %+v", k)
	}
	r := k.Reverse()
	if r.Src != k.Dst || r.SrcPort != k.DstPort || r.Reverse() != k {
		t.Fatalf("reverse = %+v", r)
	}
	var noIP Packet
	if _, ok := noIP.Flow(); ok {
		t.Fatal("Flow on non-IP packet should fail")
	}
}

func TestClone(t *testing.T) {
	p := NewBuilder().Src(Addr4(1, 2, 3, 4)).Dst(Addr4(4, 3, 2, 1)).TCP(5, 6, FlagACK).Payload([]byte{1, 2, 3}).Build()
	q := p.Clone()
	q.IP.TTL = 1
	q.TCP.SrcPort = 99
	q.Payload[0] = 9
	if p.IP.TTL == 1 || p.TCP.SrcPort == 99 || p.Payload[0] == 9 {
		t.Fatal("clone aliases original")
	}
	if !reflect.DeepEqual(p.Clone().Eth, p.Eth) {
		t.Fatal("eth clone mismatch")
	}
}

func TestForFlow(t *testing.T) {
	k := FlowKey{Src: Addr4(1, 1, 1, 1), Dst: Addr4(2, 2, 2, 2), SrcPort: 10, DstPort: 20, Proto: ProtoUDP}
	p := ForFlow(k, 0, 100)
	got, ok := p.Flow()
	if !ok || got != k {
		t.Fatalf("flow = %+v, want %+v", got, k)
	}
	if len(p.Payload) != 100 {
		t.Fatalf("payload len = %d", len(p.Payload))
	}
	k.Proto = ProtoTCP
	p = ForFlow(k, FlagSYN, 0)
	if p.TCP == nil || !p.TCP.Flags.Has(FlagSYN) {
		t.Fatal("TCP flow packet wrong")
	}
}

func TestAddrConversions(t *testing.T) {
	a := Addr4(192, 168, 0, 1)
	v := U32Addr(a)
	if v != 0xc0a80001 {
		t.Fatalf("U32Addr = %#x", v)
	}
	if AddrU32(v) != a {
		t.Fatalf("round trip failed: %v", AddrU32(v))
	}
}

func TestSerializeErrors(t *testing.T) {
	// IPv6 address in IPv4 header.
	p := &Packet{IP: &IPv4{Src: netip.MustParseAddr("::1"), Dst: Addr4(1, 1, 1, 1)}}
	if _, err := p.Serialize(); err == nil {
		t.Error("expected error for non-v4 address")
	}
	// Both TCP and UDP.
	p2 := NewBuilder().Src(Addr4(1, 1, 1, 1)).Dst(Addr4(2, 2, 2, 2)).TCP(1, 2, 0).Build()
	p2.UDP = &UDP{}
	if _, err := p2.Serialize(); err == nil {
		t.Error("expected error for both TCP and UDP")
	}
	// Oversized payload.
	p3 := NewBuilder().Src(Addr4(1, 1, 1, 1)).Dst(Addr4(2, 2, 2, 2)).UDP(1, 2).Payload(make([]byte, 70000)).Build()
	if _, err := p3.Serialize(); err == nil {
		t.Error("expected error for oversized packet")
	}
}

func TestFlagsString(t *testing.T) {
	if s := (FlagSYN | FlagACK).String(); s != "SYN|ACK" {
		t.Fatalf("flags string = %q", s)
	}
	if s := TCPFlags(0).String(); s != "-" {
		t.Fatalf("empty flags string = %q", s)
	}
}

func TestStringers(t *testing.T) {
	p := NewBuilder().Src(Addr4(1, 1, 1, 1)).Dst(Addr4(2, 2, 2, 2)).TCP(1, 2, FlagSYN).Build()
	if s := p.String(); s == "" || s == "packet" {
		t.Fatalf("String = %q", s)
	}
	if (&Packet{}).String() != "non-IP packet" {
		t.Fatal("non-IP stringer")
	}
	if ProtoTCP.String() != "TCP" || ProtoUDP.String() != "UDP" || ProtoICMP.String() != "ICMP" {
		t.Fatal("proto stringer")
	}
	if IPProto(99).String() != "proto(99)" {
		t.Fatal("unknown proto stringer")
	}
	m := MAC{0xaa, 0xbb, 0xcc, 0, 1, 2}
	if m.String() != "aa:bb:cc:00:01:02" {
		t.Fatalf("mac = %s", m)
	}
}

// Property: serialize→decode is the identity on the header fields we set,
// for arbitrary addresses, ports, flags and payloads.
func TestRoundTripProperty(t *testing.T) {
	f := func(srcV, dstV uint32, sp, dp uint16, fl uint8, useUDP bool, payload []byte) bool {
		k := FlowKey{Src: AddrU32(srcV), Dst: AddrU32(dstV), SrcPort: sp, DstPort: dp}
		var p *Packet
		if useUDP {
			k.Proto = ProtoUDP
			p = ForFlow(k, 0, 0)
		} else {
			k.Proto = ProtoTCP
			p = ForFlow(k, TCPFlags(fl&0x3f), 0)
		}
		p.Payload = payload
		raw, err := p.Serialize()
		if err != nil {
			return false
		}
		q, err := Decode(raw, true)
		if err != nil {
			return false
		}
		k2, ok := q.Flow()
		if !ok || k2 != k {
			return false
		}
		if !useUDP && q.TCP.Flags != TCPFlags(fl&0x3f) {
			return false
		}
		return bytes.Equal(q.Payload, payload) || (len(payload) == 0 && len(q.Payload) == 0)
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSerialize(b *testing.B) {
	p := NewBuilder().Src(Addr4(10, 0, 0, 1)).Dst(Addr4(10, 0, 0, 2)).TCP(1234, 80, FlagACK).Payload(make([]byte, 64)).Build()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Serialize(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	p := NewBuilder().Src(Addr4(10, 0, 0, 1)).Dst(Addr4(10, 0, 0, 2)).TCP(1234, 80, FlagACK).Payload(make([]byte, 64)).Build()
	raw, _ := p.Serialize()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(raw, true); err != nil {
			b.Fatal(err)
		}
	}
}
