package packet

// Pool recycles Packets together with their header structs and payload
// backing arrays, so steady-state packet construction and pipeline
// processing allocate nothing. A Pool belongs to one simulation engine
// (one goroutine); it needs no locking.
//
// Ownership contract:
//
//   - A packet obtained from a Pool has a single owner at any moment. The
//     owner ends the packet's life by calling Recycle (directly or through
//     the switch pipeline, which recycles dropped packets — see
//     internal/pisa).
//   - Once recycled, the packet and everything it references (headers,
//     payload bytes) may be reincarnated by the next Get/ForFlow/Clone.
//     Holding a reference past Recycle is a bug.
//   - Recycle on a packet that did not come from a pool is a no-op, so
//     lifetime-ending call sites can recycle unconditionally.
//   - Do not send pooled packets across links with DupRate > 0: duplicate
//     delivery hands the same packet to two owners.
type Pool struct {
	free []*Packet
}

// Get returns a blank pooled packet: no layers, empty payload, zero Meta.
func (pl *Pool) Get() *Packet {
	var p *Packet
	if n := len(pl.free); n > 0 {
		p = pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		p.inPool = false
	} else {
		p = &Packet{pool: pl}
	}
	return p
}

// Free reports how many packets are parked in the pool (for tests).
func (pl *Pool) Free() int { return len(pl.free) }

// Recycle returns the packet to its owning pool. It is a no-op for nil,
// non-pooled, or already-recycled packets, so every lifetime-ending path
// can call it unconditionally.
func (p *Packet) Recycle() {
	if p == nil || p.pool == nil || p.inPool {
		return
	}
	p.inPool = true
	p.Eth, p.IP, p.TCP, p.UDP = nil, nil, nil, nil
	// Keep the payload backing for reuse; a caller-substituted Payload
	// slice is simply dropped.
	p.Payload = nil
	p.Meta = Metadata{}
	p.pool.free = append(p.pool.free, p)
}

// Pooled reports whether the packet came from a pool (for tests/audits).
func (p *Packet) Pooled() bool { return p.pool != nil }

// grow returns the packet's payload backing resized to n zeroed bytes.
func (p *Packet) growPayload(n int) []byte {
	if cap(p.payload) < n {
		p.payload = make([]byte, n)
		return p.payload
	}
	b := p.payload[:n]
	clear(b)
	return b
}

// ForFlow is the pooled equivalent of the package-level ForFlow: a minimal
// packet for a flow key, with headers and payload drawn from the pool.
func (pl *Pool) ForFlow(k FlowKey, flags TCPFlags, payloadLen int) *Packet {
	p := pl.Get()
	p.eth = Ethernet{EtherType: EtherTypeIPv4}
	p.Eth = &p.eth
	p.ip = IPv4{TTL: 64, Src: k.Src, Dst: k.Dst}
	p.IP = &p.ip
	switch k.Proto {
	case ProtoUDP:
		p.ip.Protocol = ProtoUDP
		p.udp = UDP{SrcPort: k.SrcPort, DstPort: k.DstPort}
		p.UDP = &p.udp
	default:
		p.ip.Protocol = ProtoTCP
		p.tcp = TCP{SrcPort: k.SrcPort, DstPort: k.DstPort, Flags: flags, Window: 65535}
		p.TCP = &p.tcp
	}
	if payloadLen > 0 {
		p.Payload = p.growPayload(payloadLen)
	}
	return p
}

// Clone deep-copies src into a pooled packet (the pooled equivalent of
// Packet.Clone, used by egress mirroring).
func (pl *Pool) Clone(src *Packet) *Packet {
	p := pl.Get()
	p.Meta = src.Meta
	if src.Eth != nil {
		p.eth = *src.Eth
		p.Eth = &p.eth
	}
	if src.IP != nil {
		p.ip = *src.IP
		p.IP = &p.ip
	}
	if src.TCP != nil {
		p.tcp = *src.TCP
		p.TCP = &p.tcp
	}
	if src.UDP != nil {
		p.udp = *src.UDP
		p.UDP = &p.udp
	}
	if src.Payload != nil {
		b := p.growPayload(len(src.Payload))
		copy(b, src.Payload)
		p.Payload = b
	}
	return p
}
