package packet

import "testing"

func poolKey() FlowKey {
	return FlowKey{
		Src: Addr4(10, 0, 0, 1), Dst: Addr4(10, 0, 0, 2),
		SrcPort: 1111, DstPort: 2222, Proto: ProtoTCP,
	}
}

func TestPoolForFlowMatchesBuilder(t *testing.T) {
	var pl Pool
	k := poolKey()
	want := ForFlow(k, FlagSYN|FlagACK, 32)
	got := pl.ForFlow(k, FlagSYN|FlagACK, 32)

	wb, err := want.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	gb, err := got.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	if string(wb) != string(gb) {
		t.Fatalf("pooled ForFlow serialization differs from builder's")
	}
	gk, ok := got.Flow()
	if !ok || gk != k {
		t.Fatalf("pooled packet flow = %v, %v; want %v", gk, ok, k)
	}
}

func TestPoolRecycleAndReuse(t *testing.T) {
	var pl Pool
	k := poolKey()
	p := pl.ForFlow(k, FlagSYN, 64)
	p.Payload[0] = 0xff
	p.Meta.IngressPort = 7
	if !p.Pooled() {
		t.Fatal("pool packet not marked pooled")
	}
	p.Recycle()
	if pl.Free() != 1 {
		t.Fatalf("Free() = %d after recycle, want 1", pl.Free())
	}
	// Double recycle is a no-op, not a double-insert.
	p.Recycle()
	if pl.Free() != 1 {
		t.Fatalf("Free() = %d after double recycle, want 1", pl.Free())
	}
	q := pl.ForFlow(k, 0, 16)
	if q != p {
		t.Fatal("pool did not reuse the recycled packet")
	}
	if pl.Free() != 0 {
		t.Fatalf("Free() = %d after Get, want 0", pl.Free())
	}
	if q.Meta.IngressPort != 0 {
		t.Fatal("reused packet kept stale metadata")
	}
	if len(q.Payload) != 16 {
		t.Fatalf("reused payload len = %d, want 16", len(q.Payload))
	}
	for i, b := range q.Payload {
		if b != 0 {
			t.Fatalf("reused payload byte %d = %#x, want 0", i, b)
		}
	}
	if q.TCP == nil || q.TCP.Flags != 0 {
		t.Fatal("reused packet kept stale TCP flags")
	}
}

func TestPoolRecycleNonPooledNoop(t *testing.T) {
	p := ForFlow(poolKey(), 0, 8)
	p.Recycle() // must not panic or corrupt
	if p.Pooled() {
		t.Fatal("builder packet reports pooled")
	}
	var nilPkt *Packet
	nilPkt.Recycle() // nil-safe
}

func TestPoolCloneDeepCopies(t *testing.T) {
	var pl Pool
	src := ForFlow(poolKey(), FlagACK, 24)
	src.Payload[3] = 9
	c := pl.Clone(src)
	if c.TCP == src.TCP || c.IP == src.IP || &c.Payload[0] == &src.Payload[0] {
		t.Fatal("pooled clone aliases source storage")
	}
	if c.Payload[3] != 9 || c.TCP.Flags != FlagACK {
		t.Fatal("pooled clone lost contents")
	}
	c.TCP.Flags = FlagRST
	if src.TCP.Flags != FlagACK {
		t.Fatal("mutating clone changed source")
	}
}

func TestPoolForFlowZeroAllocs(t *testing.T) {
	var pl Pool
	k := poolKey()
	// Warm the pool.
	pl.ForFlow(k, FlagSYN, 64).Recycle()
	allocs := testing.AllocsPerRun(1000, func() {
		p := pl.ForFlow(k, FlagSYN, 64)
		p.Recycle()
	})
	if allocs != 0 {
		t.Fatalf("pooled ForFlow+Recycle allocates %v per run, want 0", allocs)
	}
}

func TestPoolCloneZeroAllocs(t *testing.T) {
	var pl Pool
	src := ForFlow(poolKey(), FlagACK, 64)
	pl.Clone(src).Recycle()
	allocs := testing.AllocsPerRun(1000, func() {
		pl.Clone(src).Recycle()
	})
	if allocs != 0 {
		t.Fatalf("pooled Clone+Recycle allocates %v per run, want 0", allocs)
	}
}
