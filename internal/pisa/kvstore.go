package pisa

import (
	"fmt"
	"slices"
)

// KVStore is a data-plane-writable exact-match store: the modeling
// idealization of a register array indexed by a hash of the key with
// collision-free placement. Real P4 programs realize this either with
// control-plane-installed exact-match tables or with register arrays plus
// collision handling; SwiShmem's protocols only need get/set semantics with
// bounded capacity and SRAM accounting, which is what this provides.
// Capacity and per-entry width are fixed at allocation and charged against
// the switch budget.
type KVStore struct {
	sw       *Switch
	name     string
	capacity int
	keyW     int
	valW     int
	m        map[uint64][]byte
}

// NewKVStore allocates a keyed store charging capacity*(keyWidth+valWidth)
// bytes of SRAM.
func (s *Switch) NewKVStore(name string, capacity, keyWidth, valWidth int) (*KVStore, error) {
	if capacity <= 0 || keyWidth <= 0 || valWidth <= 0 {
		return nil, fmt.Errorf("pisa: kvstore %q needs positive capacity and widths", name)
	}
	if err := s.charge(capacity*(keyWidth+valWidth), "kvstore "+name); err != nil {
		return nil, err
	}
	return &KVStore{sw: s, name: name, capacity: capacity, keyW: keyWidth, valW: valWidth,
		m: make(map[uint64][]byte)}, nil
}

// Get returns the value for key; ok is false on miss. The returned slice is
// a view of the entry's storage, valid until the next Set of the same key —
// callers that need the bytes past that point must copy (this mirrors the
// hardware: a register read is a snapshot only if you take one).
func (k *KVStore) Get(key uint64) (val []byte, ok bool) {
	v, ok := k.m[key]
	return v, ok
}

// Set stores val (truncated to the value width) under key, reusing the
// entry's existing backing array when it fits so steady-state overwrites
// allocate nothing. It returns an error when inserting a new key into a
// full store.
func (k *KVStore) Set(key uint64, val []byte) error {
	if len(val) > k.valW {
		val = val[:k.valW]
	}
	if old, exists := k.m[key]; exists {
		if cap(old) >= len(val) {
			old = old[:len(val)]
			copy(old, val)
			k.m[key] = old
			return nil
		}
		k.m[key] = append([]byte(nil), val...)
		return nil
	}
	if len(k.m) >= k.capacity {
		return fmt.Errorf("pisa: kvstore %q full (%d entries)", k.name, k.capacity)
	}
	k.m[key] = append([]byte(nil), val...)
	return nil
}

// Delete removes key.
func (k *KVStore) Delete(key uint64) { delete(k.m, key) }

// Len returns the number of stored entries.
func (k *KVStore) Len() int { return len(k.m) }

// Capacity returns the allocation size.
func (k *KVStore) Capacity() int { return k.capacity }

// Bytes returns the SRAM footprint.
func (k *KVStore) Bytes() int { return k.capacity * (k.keyW + k.valW) }

// Range iterates entries in ascending key order (control-plane snapshots).
// The order must be deterministic: donor snapshot transfers replay the
// range, and a map-order walk would make post-failure recovery traces
// differ between identically-seeded runs.
func (k *KVStore) Range(fn func(key uint64, val []byte) bool) {
	keys := make([]uint64, 0, len(k.m))
	for key := range k.m {
		keys = append(keys, key)
	}
	slices.Sort(keys)
	for _, key := range keys {
		if !fn(key, k.m[key]) {
			return
		}
	}
}

// Free releases the store's SRAM.
func (k *KVStore) Free() {
	if k.m != nil {
		k.sw.release(k.capacity * (k.keyW + k.valW))
		k.m = nil
	}
}
