package pisa

import (
	"bytes"
	"testing"

	"swishmem/internal/netem"
	"swishmem/internal/sim"
)

func kvSwitch(t testing.TB, mem int) *Switch {
	t.Helper()
	eng := sim.NewEngine(1)
	nw := netem.New(eng, netem.LinkProfile{})
	return New(eng, nw, Config{Addr: 1, MemoryBytes: mem})
}

func TestKVStoreBasics(t *testing.T) {
	sw := kvSwitch(t, 1<<20)
	kv, err := sw.NewKVStore("t", 4, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := kv.Set(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	v, ok := kv.Get(1)
	if !ok || !bytes.Equal(v, []byte("a")) {
		t.Fatalf("get = %q %v", v, ok)
	}
	if _, ok := kv.Get(9); ok {
		t.Fatal("phantom key")
	}
	if kv.Len() != 1 || kv.Capacity() != 4 || kv.Bytes() != 64 {
		t.Fatal("geometry")
	}
	kv.Delete(1)
	if kv.Len() != 0 {
		t.Fatal("delete")
	}
}

func TestKVStoreCapacityAndOverwrite(t *testing.T) {
	sw := kvSwitch(t, 1<<20)
	kv, _ := sw.NewKVStore("t", 2, 8, 8)
	kv.Set(1, []byte("a"))
	kv.Set(2, []byte("b"))
	if err := kv.Set(3, []byte("c")); err == nil {
		t.Fatal("insert past capacity accepted")
	}
	// Overwriting an existing key at capacity is fine.
	if err := kv.Set(1, []byte("z")); err != nil {
		t.Fatal(err)
	}
	v, _ := kv.Get(1)
	if string(v) != "z" {
		t.Fatal("overwrite lost")
	}
}

func TestKVStoreTruncatesToWidth(t *testing.T) {
	sw := kvSwitch(t, 1<<20)
	kv, _ := sw.NewKVStore("t", 4, 8, 4)
	kv.Set(1, []byte("0123456789"))
	v, _ := kv.Get(1)
	if len(v) != 4 {
		t.Fatalf("width not enforced: %d bytes", len(v))
	}
}

func TestKVStoreValueNotAliased(t *testing.T) {
	sw := kvSwitch(t, 1<<20)
	kv, _ := sw.NewKVStore("t", 4, 8, 8)
	src := []byte("abc")
	kv.Set(1, src)
	src[0] = 'z'
	v, _ := kv.Get(1)
	if v[0] != 'a' {
		t.Fatal("stored value aliases caller buffer")
	}
}

func TestKVStoreRange(t *testing.T) {
	sw := kvSwitch(t, 1<<20)
	kv, _ := sw.NewKVStore("t", 8, 8, 8)
	for k := uint64(0); k < 5; k++ {
		kv.Set(k, []byte{byte(k)})
	}
	seen := 0
	kv.Range(func(k uint64, v []byte) bool { seen++; return true })
	if seen != 5 {
		t.Fatalf("range saw %d", seen)
	}
	seen = 0
	kv.Range(func(k uint64, v []byte) bool { seen++; return false })
	if seen != 1 {
		t.Fatal("early stop")
	}
}

func TestKVStoreMemoryAccounting(t *testing.T) {
	sw := kvSwitch(t, 100)
	if _, err := sw.NewKVStore("big", 100, 8, 8); err == nil {
		t.Fatal("over-budget kvstore accepted")
	}
	kv, err := sw.NewKVStore("ok", 5, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sw.MemoryUsed() != 80 {
		t.Fatalf("used = %d", sw.MemoryUsed())
	}
	kv.Free()
	if sw.MemoryUsed() != 0 {
		t.Fatal("free did not release")
	}
}

func TestKVStoreValidation(t *testing.T) {
	sw := kvSwitch(t, 1<<20)
	for _, bad := range [][3]int{{0, 8, 8}, {4, 0, 8}, {4, 8, 0}} {
		if _, err := sw.NewKVStore("bad", bad[0], bad[1], bad[2]); err == nil {
			t.Fatalf("accepted %v", bad)
		}
	}
}
