// Package pisa models a PISA programmable switch (§2 of the paper) with the
// properties SwiShmem's protocols depend on:
//
//   - A match-action pipeline processing packets at a configurable line rate
//     with atomic per-packet state updates: one packet's writes are fully
//     applied before the next packet observes any state.
//   - A small data-plane memory budget (~10 MB) charged by every register
//     array, table, meter, and counter; allocation fails when exhausted.
//   - P4 object semantics: registers, meters, and counters are data-plane
//     writable; tables can only be modified from the control plane (enforced
//     at runtime).
//   - A control-plane co-processor with DRAM-class (unaccounted) memory and
//     a service rate orders of magnitude below the data plane.
//   - Recirculation, egress mirroring, a multicast engine, and a periodic
//     packet generator — the hardware features §7's implementation sketch
//     uses.
//
// The model is event-driven on the deterministic simulator, so experiments
// can charge realistic per-operation costs without wall-clock limits.
package pisa

import (
	"fmt"
	"time"

	"swishmem/internal/netem"
	"swishmem/internal/obs"
	"swishmem/internal/packet"
	"swishmem/internal/sim"
	"swishmem/internal/stats"
	"swishmem/internal/wire"
)

// Config describes a switch's hardware characteristics. Zero fields take the
// defaults documented on each field.
type Config struct {
	// Addr is the switch's network address. Required.
	Addr netem.Addr
	// MemoryBytes is the data-plane SRAM budget. Default 10 MB (§2).
	MemoryBytes int
	// PipelinePPS is the data-plane packet rate. Default 5e9 (Tofino-class,
	// §3.1). Experiments typically scale this down together with offered
	// load; ratios are what matter.
	PipelinePPS float64
	// PipelineLatency is the ingress-to-egress latency. Default 400ns.
	PipelineLatency sim.Duration
	// QueueLimit is the maximum number of packets awaiting pipeline slots
	// before tail drop. Default 4096.
	QueueLimit int
	// CtrlOpsPerSec is the control-plane co-processor service rate.
	// Default 100,000 ops/s — the orders-of-magnitude gap vs the data plane
	// that motivates data-plane replication (§3.3).
	CtrlOpsPerSec float64
	// CtrlLatency is the PCIe+software latency for a control-plane
	// operation. Default 50µs.
	CtrlLatency sim.Duration
}

func (c Config) withDefaults() Config {
	if c.MemoryBytes == 0 {
		c.MemoryBytes = 10 << 20
	}
	if c.PipelinePPS == 0 {
		c.PipelinePPS = 5e9
	}
	if c.PipelineLatency == 0 {
		c.PipelineLatency = 400 * time.Nanosecond
	}
	if c.QueueLimit == 0 {
		c.QueueLimit = 4096
	}
	if c.CtrlOpsPerSec == 0 {
		c.CtrlOpsPerSec = 100e3
	}
	if c.CtrlLatency == 0 {
		c.CtrlLatency = 50 * time.Microsecond
	}
	return c
}

// Verdict is the pipeline's decision for a packet.
type Verdict int

// Pipeline verdicts.
const (
	// Drop discards the packet.
	Drop Verdict = iota
	// Forward emits the packet through the egress callback.
	Forward
	// Recirculate re-injects the packet at ingress (Meta.Recirculated++).
	Recirculate
	// ToControlPlane punts the packet to the control-plane co-processor.
	ToControlPlane
)

// Program is the data-plane packet program (the P4 program body). It runs
// atomically with respect to other packets on the same switch.
type Program func(sw *Switch, pkt *packet.Packet) Verdict

// MsgHandler processes a SwiShmem protocol message in the data plane.
type MsgHandler func(sw *Switch, from netem.Addr, msg wire.Msg)

// Stats holds switch-level observability counters.
type Stats struct {
	Processed    stats.Counter // packets through the pipeline
	Dropped      stats.Counter // verdict Drop
	Forwarded    stats.Counter // verdict Forward
	Recirculated stats.Counter
	Punted       stats.Counter // to control plane
	QueueDrops   stats.Counter // tail drops at ingress
	Mirrored     stats.Counter
	MsgsHandled  stats.Counter // protocol messages handled in data plane
	CtrlOps      stats.Counter // control-plane operations executed
	Rejected     stats.Counter // sends bounced by a rejecting link (ICMP analog)
}

// Switch is one emulated PISA switch.
type Switch struct {
	cfg Config
	eng *sim.Engine
	net *netem.Network

	program    Program
	msgHandler MsgHandler
	ctrlMsg    func(from netem.Addr, msg wire.Msg) // control-plane message handler
	ctrlPkt    func(pkt *packet.Packet)            // control-plane packet handler
	egress     func(pkt *packet.Packet)

	// Data-plane pipeline occupancy.
	slot     sim.Duration // 1/PPS
	nextFree sim.Time

	// Control-plane occupancy.
	ctrlSlot     sim.Duration
	ctrlNextFree sim.Time

	memUsed    int
	arrivalSeq uint64
	failed     bool

	// paused freezes the switch without killing it (the GC-pause / SIGSTOP
	// analog): dispatch records that come due while paused park in frozen
	// instead of running, in their exact dispatch order, and Resume replays
	// them. Inbound traffic keeps queueing (receive still accepts), so the
	// backlog a real frozen process accumulates is modeled faithfully.
	paused bool
	frozen []*task

	// mail keys control-plane posts originating at this switch (snapshot
	// completion notifications back to the controller). The key is derived
	// from the switch address, so post ordering is identical in sequential
	// and sharded executions.
	mail *sim.Mailbox

	// tfree pools dispatch records so steady-state packet and message
	// processing schedules without allocating.
	tfree []*task
	// ppool recycles packets whose life ends at this switch (drops) and
	// supplies mirror clones. See packet.Pool for the ownership contract.
	ppool packet.Pool

	Stats Stats
}

// taskKind selects what a pooled dispatch record does when its slot fires.
type taskKind uint8

const (
	taskPipeline taskKind = iota // run the packet program on pkt
	taskEgress                   // emit pkt through the egress hook
	taskMsg                      // run the data-plane message handler
	taskCtrl                     // run fn as a control-plane op (counts CtrlOps)
	taskCtrlMsg                  // deliver msg to the control-plane msg handler
	taskFn                       // run fn at data-plane cost (PacketGen)
	taskMirror                   // pass pkt (a pooled mirror clone) to pfn
)

// task is one pooled dispatch record. Its run closure is bound once at
// creation and survives recycling.
type task struct {
	s    *Switch
	kind taskKind
	pkt  *packet.Packet
	from netem.Addr
	msg  wire.Msg
	fn   func()
	pfn  func(*packet.Packet)
	run  func()
}

func (s *Switch) getTask(kind taskKind) *task {
	var t *task
	if n := len(s.tfree); n > 0 {
		t = s.tfree[n-1]
		s.tfree[n-1] = nil
		s.tfree = s.tfree[:n-1]
	} else {
		t = &task{s: s}
		t.run = t.exec
	}
	t.kind = kind
	return t
}

// releaseTask returns a record to the pool, releasing any pooled message or
// packet it still carries (tail drops, failed switches).
func (s *Switch) releaseTask(t *task) {
	if r, ok := t.msg.(netem.Releasable); ok {
		r.Release()
	}
	t.pkt.Recycle()
	t.pkt, t.msg, t.fn, t.pfn = nil, nil, nil, nil
	s.tfree = append(s.tfree, t)
}

func (t *task) exec() {
	s := t.s
	if s.paused {
		// The process is frozen: park the record, payload and all, in
		// dispatch order. Resume replays the backlog; Fail drains it.
		s.frozen = append(s.frozen, t)
		return
	}
	kind, pkt, from, msg, fn, pfn := t.kind, t.pkt, t.from, t.msg, t.fn, t.pfn
	// Recycle before running: nested dispatches reuse the record. The
	// message reference (if any) is consumed below, not by releaseTask.
	t.pkt, t.msg, t.fn, t.pfn = nil, nil, nil, nil
	s.tfree = append(s.tfree, t)

	if s.failed {
		if r, ok := msg.(netem.Releasable); ok {
			r.Release()
		}
		pkt.Recycle()
		return
	}
	switch kind {
	case taskPipeline:
		s.runPipeline(pkt)
	case taskEgress:
		s.Stats.Forwarded.Inc()
		if s.egress != nil {
			s.egress(pkt)
		} else {
			pkt.Recycle()
		}
	case taskMsg:
		s.Stats.MsgsHandled.Inc()
		s.msgHandler(s, from, msg)
		// Handlers consume messages synchronously (they must not retain
		// pooled messages past return — see DESIGN.md "Performance model").
		if r, ok := msg.(netem.Releasable); ok {
			r.Release()
		}
	case taskCtrl:
		s.Stats.CtrlOps.Inc()
		s.traceCtrlOp("ctrl.op")
		fn()
	case taskCtrlMsg:
		s.Stats.CtrlOps.Inc()
		s.traceCtrlOp("ctrl.msg")
		if s.ctrlMsg != nil {
			s.ctrlMsg(from, msg)
		}
		if r, ok := msg.(netem.Releasable); ok {
			r.Release()
		}
	case taskFn:
		fn()
	case taskMirror:
		pfn(pkt)
	}
}

// New creates a switch and attaches it to the network.
func New(eng *sim.Engine, nw *netem.Network, cfg Config) *Switch {
	cfg = cfg.withDefaults()
	s := &Switch{
		cfg:      cfg,
		eng:      eng,
		net:      nw,
		slot:     sim.Duration(1e9 / cfg.PipelinePPS),
		ctrlSlot: sim.Duration(1e9 / cfg.CtrlOpsPerSec),
		mail:     sim.NewMailbox(uint64(cfg.Addr)),
	}
	if s.slot <= 0 {
		s.slot = 1
	}
	if s.ctrlSlot <= 0 {
		s.ctrlSlot = 1
	}
	nw.Attach(cfg.Addr, s.receive)
	return s
}

// Addr returns the switch's network address.
func (s *Switch) Addr() netem.Addr { return s.cfg.Addr }

// pid is the switch's trace timeline lane: its fabric address.
func (s *Switch) pid() int32 { return int32(s.cfg.Addr) }

// tracer returns the engine's tracer (nil when tracing is off).
func (s *Switch) tracer() *obs.Tracer { return s.eng.Tracer() }

// traceCtrlOp emits the co-processor occupancy span for a control-plane
// operation that completed now.
func (s *Switch) traceCtrlOp(name string) {
	tr := s.tracer()
	if !tr.Enabled() {
		return
	}
	now := int64(s.eng.Now())
	tr.Emit(obs.PhaseSpan, now-int64(s.cfg.CtrlLatency), int64(s.cfg.CtrlLatency), s.pid(), "switch", name)
}

// Engine returns the simulation engine.
func (s *Switch) Engine() *sim.Engine { return s.eng }

// Network returns the fabric the switch is attached to.
func (s *Switch) Network() *netem.Network { return s.net }

// PacketPool returns the switch's packet pool. Workloads driving this switch
// can draw packets from it; the pipeline recycles them when they are dropped
// (see packet.Pool for the ownership contract).
func (s *Switch) PacketPool() *packet.Pool { return &s.ppool }

// Config returns the (defaulted) switch configuration.
func (s *Switch) Config() Config { return s.cfg }

// SetProgram installs the data-plane packet program.
func (s *Switch) SetProgram(p Program) { s.program = p }

// SetMsgHandler installs the data-plane protocol message handler.
func (s *Switch) SetMsgHandler(h MsgHandler) { s.msgHandler = h }

// SetCtrlMsgHandler installs the control-plane message handler; messages
// whose data-plane handler is absent, and messages the data-plane handler
// punts via PuntMsg, are delivered here at control-plane cost.
func (s *Switch) SetCtrlMsgHandler(h func(from netem.Addr, msg wire.Msg)) { s.ctrlMsg = h }

// SetEgress installs the callback invoked for forwarded packets.
func (s *Switch) SetEgress(fn func(pkt *packet.Packet)) { s.egress = fn }

// Fail marks the switch fail-stop: it stops processing everything and
// detaches from the network (§6.3 failure model).
func (s *Switch) Fail() {
	s.failed = true
	s.net.SetNodeUp(s.cfg.Addr, false)
	// A paused switch can still die: its frozen backlog dies with it.
	for _, t := range s.frozen {
		s.releaseTask(t)
	}
	s.frozen = s.frozen[:0]
}

// Failed reports whether the switch has failed.
func (s *Switch) Failed() bool { return s.failed }

// Pause freezes the switch (the GC-pause / SIGSTOP analog, pumba's
// container pause): every dispatch record that comes due parks instead of
// running, outbound sends are suppressed, and inbound traffic backlogs.
// Unlike Fail the switch stays attached and up — peers' messages to it are
// accepted by the fabric and queue behind the freeze. A driver operation:
// call it between runs, never from model callbacks. Idempotent.
func (s *Switch) Pause() { s.paused = true }

// Resume unfreezes the switch and replays the frozen backlog in its
// original dispatch order, at the current virtual time — the burst of stale
// heartbeats, timers, and queued messages a real process emits when the GC
// pause ends. A driver operation; no-op if not paused.
func (s *Switch) Resume() {
	if !s.paused {
		return
	}
	s.paused = false
	frozen := s.frozen
	s.frozen = nil
	now := s.eng.Now()
	for _, t := range frozen {
		s.eng.Schedule(now, t.run)
	}
}

// Paused reports whether the switch is frozen.
func (s *Switch) Paused() bool { return s.paused }

// NotifyReject records that a send from this switch was bounced by a link
// in reject mode — the ICMP-unreachable analog. Unlike a blackhole the
// sender learns its peer is unreachable; protocols observe it as a counted,
// traceable event rather than silence.
func (s *Switch) NotifyReject(to netem.Addr) {
	s.Stats.Rejected.Inc()
	if tr := s.tracer(); tr.Enabled() {
		tr.Instant(int64(s.eng.Now()), s.pid(), "switch", "net.reject")
	}
}

// dpDispatch charges one data-plane pipeline slot and runs the task after
// the pipeline latency. Returns false on tail drop (the task is recycled).
func (s *Switch) dpDispatch(t *task) bool {
	now := s.eng.Now()
	start := s.nextFree
	if start < now {
		start = now
	}
	queued := int(start.Sub(now) / s.slot)
	if queued >= s.cfg.QueueLimit {
		s.Stats.QueueDrops.Inc()
		s.releaseTask(t)
		return false
	}
	s.nextFree = start.Add(s.slot)
	s.eng.Schedule(start.Add(s.cfg.PipelineLatency), t.run)
	return true
}

// dpDispatchFn charges a pipeline slot for a bare callback.
func (s *Switch) dpDispatchFn(fn func()) bool {
	t := s.getTask(taskFn)
	t.fn = fn
	return s.dpDispatch(t)
}

// receive is the netem handler: dispatches data packets to the pipeline and
// protocol messages to the message handler, both at data-plane cost.
func (s *Switch) receive(from netem.Addr, payload any, size int) {
	if s.failed {
		if r, ok := payload.(netem.Releasable); ok {
			r.Release()
		}
		if p, ok := payload.(*packet.Packet); ok {
			p.Recycle()
		}
		return
	}
	switch v := payload.(type) {
	case *packet.Packet:
		s.InjectPacket(v)
	case wire.Msg:
		s.injectMsg(from, v)
	default:
		panic(fmt.Sprintf("pisa: switch %d received unknown payload %T", s.cfg.Addr, payload))
	}
}

// InjectPacket delivers a packet at ingress; it is processed when a pipeline
// slot frees up. Reports false if tail-dropped.
func (s *Switch) InjectPacket(pkt *packet.Packet) bool {
	if s.failed {
		return false
	}
	s.arrivalSeq++
	pkt.Meta.ArrivalSeq = s.arrivalSeq
	t := s.getTask(taskPipeline)
	t.pkt = pkt
	return s.dpDispatch(t)
}

func (s *Switch) runPipeline(pkt *packet.Packet) {
	if s.program == nil {
		s.Stats.Dropped.Inc()
		pkt.Recycle()
		return
	}
	s.Stats.Processed.Inc()
	v := s.program(s, pkt)
	if tr := s.tracer(); tr.Enabled() {
		// The packet occupied the pipeline from its scheduled slot until now
		// (dispatch runs PipelineLatency after the slot was claimed).
		now := int64(s.eng.Now())
		rec := tr.Emit(obs.PhaseSpan, now-int64(s.cfg.PipelineLatency), int64(s.cfg.PipelineLatency), s.pid(), "switch", "pipeline")
		rec.K1, rec.V1 = "seq", int64(pkt.Meta.ArrivalSeq)
		rec.K2, rec.V2 = "verdict", int64(v)
		rec.K3, rec.V3 = "recirc", int64(pkt.Meta.Recirculated)
	}
	switch v {
	case Forward:
		s.Stats.Forwarded.Inc()
		if s.egress != nil {
			s.egress(pkt)
		} else {
			pkt.Recycle()
		}
	case Recirculate:
		s.Stats.Recirculated.Inc()
		if tr := s.tracer(); tr.Enabled() {
			rec := tr.Emit(obs.PhaseInstant, int64(s.eng.Now()), 0, s.pid(), "switch", "recirc")
			rec.K1, rec.V1 = "seq", int64(pkt.Meta.ArrivalSeq)
		}
		pkt.Meta.Recirculated++
		t := s.getTask(taskPipeline)
		t.pkt = pkt
		s.dpDispatch(t)
	case ToControlPlane:
		s.Stats.Punted.Inc()
		s.CtrlDo(func() {
			if s.ctrlPkt != nil {
				s.ctrlPkt(pkt)
			}
		})
	default:
		// A Drop verdict ends the packet's life. Programs that buffer a
		// packet (e.g. while a state write is in flight) must punt it via
		// ToControlPlane or return Forward, never Drop.
		s.Stats.Dropped.Inc()
		pkt.Recycle()
	}
}

func (s *Switch) injectMsg(from netem.Addr, msg wire.Msg) {
	if s.msgHandler == nil {
		// No data-plane handler: messages go to the control plane.
		s.deliverCtrlMsg(from, msg)
		return
	}
	t := s.getTask(taskMsg)
	t.from, t.msg = from, msg
	s.dpDispatch(t)
}

// PuntMsg hands a message to the control-plane handler at control-plane
// cost. Used by data-plane handlers for message types that need the
// co-processor (e.g. SRO writes to control-plane-owned tables).
func (s *Switch) PuntMsg(from netem.Addr, msg wire.Msg) { s.deliverCtrlMsg(from, msg) }

func (s *Switch) deliverCtrlMsg(from netem.Addr, msg wire.Msg) {
	if s.failed {
		if r, ok := msg.(netem.Releasable); ok {
			r.Release()
		}
		return
	}
	t := s.getTask(taskCtrlMsg)
	t.from, t.msg = from, msg
	s.ctrlDispatch(t)
}

// Send transmits a protocol message from the data plane. A paused switch
// sends nothing: work initiated from outside its own (frozen) dispatch —
// e.g. a driver-submitted op — loses its transmission, exactly as if the
// kernel had the process stopped; protocol retry timers recover it.
func (s *Switch) Send(to netem.Addr, msg wire.Msg) {
	if s.failed || s.paused {
		return
	}
	s.net.Send(s.cfg.Addr, to, msg, msg.Size())
}

// SendPacket transmits a data packet to another network node.
func (s *Switch) SendPacket(to netem.Addr, pkt *packet.Packet) {
	if s.failed || s.paused {
		return
	}
	s.net.Send(s.cfg.Addr, to, pkt, pkt.Len())
}

// Mirror clones the packet at egress and passes the clone to fn, charging a
// pipeline slot — the egress mirroring feature of §7. The clone comes from
// the switch's packet pool; fn owns it and may Recycle it when done.
func (s *Switch) Mirror(pkt *packet.Packet, fn func(clone *packet.Packet)) {
	clone := s.ppool.Clone(pkt)
	clone.Meta.Mirrored = true
	t := s.getTask(taskMirror)
	t.pkt, t.pfn = clone, fn
	if s.dpDispatch(t) {
		s.Stats.Mirrored.Inc()
	}
}

// Multicast sends msg to every group member except this switch, one copy
// per destination (the multicast engine of §7).
func (s *Switch) Multicast(group []netem.Addr, msg wire.Msg) {
	if s.failed || s.paused {
		return
	}
	s.net.Multicast(s.cfg.Addr, group, msg, msg.Size())
}

// InjectEgress charges one pipeline slot and emits pkt through the egress
// hook without re-running the packet program. Control planes use it to
// release a buffered output packet whose processing already happened (§7:
// after the chain acknowledges, "the packet is injected back to the data
// plane and forwarded to its destination"). Reports false on tail drop.
func (s *Switch) InjectEgress(pkt *packet.Packet) bool {
	if s.failed {
		return false
	}
	t := s.getTask(taskEgress)
	t.pkt = pkt
	return s.dpDispatch(t)
}

// PacketGen installs a periodic data-plane task (the switch packet
// generator of §7): fn runs every period at data-plane cost. The returned
// ticker stops it; it also stops itself when the switch fails.
func (s *Switch) PacketGen(period sim.Duration, fn func()) *sim.Ticker {
	var tk *sim.Ticker
	tk = s.eng.Every(period, func() {
		if s.failed {
			tk.Stop()
			return
		}
		s.dpDispatchFn(fn)
	})
	return tk
}

// CtrlDo schedules fn on the control-plane co-processor: it runs after the
// control-plane latency once a control-plane slot frees up.
func (s *Switch) CtrlDo(fn func()) {
	if s.failed {
		return
	}
	t := s.getTask(taskCtrl)
	t.fn = fn
	s.ctrlDispatch(t)
}

// ctrlDispatch charges one control-plane slot and schedules the task after
// the control-plane latency.
func (s *Switch) ctrlDispatch(t *task) {
	now := s.eng.Now()
	start := s.ctrlNextFree
	if start < now {
		start = now
	}
	s.ctrlNextFree = start.Add(s.ctrlSlot)
	s.eng.Schedule(start.Add(s.cfg.CtrlLatency), t.run)
}

// PostTo schedules fn on engine to, d after this switch's current time,
// keyed by this switch's mailbox. It is how control-plane notifications
// leave the switch for another entity's engine (e.g. a donor reporting
// snapshot completion to the controller): in a sharded run a direct
// cross-engine Schedule would race and order nondeterministically, while a
// post carries a (source, counter) key that sorts the same in both modes.
// d must be at least the group lookahead when to is on another shard.
func (s *Switch) PostTo(to *sim.Engine, d sim.Duration, fn func()) {
	s.mail.Post(s.eng, to, d, fn)
}

// CtrlAfter schedules fn on the control plane after at least d (a
// control-plane timer: retransmission timeouts, heartbeats).
func (s *Switch) CtrlAfter(d sim.Duration, fn func()) *sim.Timer {
	return s.eng.After(d, func() {
		if s.failed {
			return
		}
		s.CtrlDo(fn)
	})
}

// SetCtrlPacketHandler installs the handler for packets punted to the
// control plane (ToControlPlane verdicts).
func (s *Switch) SetCtrlPacketHandler(fn func(pkt *packet.Packet)) { s.ctrlPkt = fn }

// MemoryUsed returns data-plane memory charged so far.
func (s *Switch) MemoryUsed() int { return s.memUsed }

// MemoryFree returns the remaining data-plane budget.
func (s *Switch) MemoryFree() int { return s.cfg.MemoryBytes - s.memUsed }

// charge reserves data-plane memory or fails.
func (s *Switch) charge(bytes int, what string) error {
	if bytes < 0 {
		panic("pisa: negative memory charge")
	}
	if s.memUsed+bytes > s.cfg.MemoryBytes {
		return fmt.Errorf("pisa: switch %d out of data-plane memory allocating %s: need %d, free %d",
			s.cfg.Addr, what, bytes, s.MemoryFree())
	}
	s.memUsed += bytes
	if tr := s.tracer(); tr.Enabled() {
		rec := tr.Emit(obs.PhaseInstant, int64(s.eng.Now()), 0, s.pid(), "switch", "mem.charge")
		rec.K1, rec.V1 = "bytes", int64(bytes)
		rec.K2, rec.V2 = "used", int64(s.memUsed)
		rec.KS, rec.VS = "what", what
	}
	return nil
}

// release returns data-plane memory to the budget.
func (s *Switch) release(bytes int) {
	s.memUsed -= bytes
	if s.memUsed < 0 {
		panic("pisa: memory accounting underflow")
	}
}
