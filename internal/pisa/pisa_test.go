package pisa

import (
	"testing"
	"time"

	"swishmem/internal/netem"
	"swishmem/internal/packet"
	"swishmem/internal/sim"
	"swishmem/internal/wire"
)

func testRig(seed int64, cfgs ...Config) (*sim.Engine, *netem.Network, []*Switch) {
	eng := sim.NewEngine(seed)
	nw := netem.New(eng, netem.LinkProfile{Latency: 1000})
	sws := make([]*Switch, len(cfgs))
	for i, c := range cfgs {
		sws[i] = New(eng, nw, c)
	}
	return eng, nw, sws
}

func mkPkt() *packet.Packet {
	return packet.NewBuilder().Src(packet.Addr4(1, 1, 1, 1)).Dst(packet.Addr4(2, 2, 2, 2)).
		TCP(1000, 80, packet.FlagSYN).Build()
}

func TestDefaults(t *testing.T) {
	_, _, sws := testRig(1, Config{Addr: 1})
	cfg := sws[0].Config()
	if cfg.MemoryBytes != 10<<20 {
		t.Fatalf("memory default = %d", cfg.MemoryBytes)
	}
	if cfg.PipelinePPS != 5e9 {
		t.Fatalf("pps default = %v", cfg.PipelinePPS)
	}
	if sws[0].Addr() != 1 {
		t.Fatal("addr")
	}
}

func TestPipelineForward(t *testing.T) {
	eng, _, sws := testRig(1, Config{Addr: 1})
	sw := sws[0]
	var out []*packet.Packet
	sw.SetProgram(func(s *Switch, p *packet.Packet) Verdict { return Forward })
	sw.SetEgress(func(p *packet.Packet) { out = append(out, p) })
	sw.InjectPacket(mkPkt())
	eng.Run()
	if len(out) != 1 {
		t.Fatalf("forwarded %d", len(out))
	}
	if sw.Stats.Processed.Value() != 1 || sw.Stats.Forwarded.Value() != 1 {
		t.Fatalf("stats: %+v", sw.Stats)
	}
}

func TestPipelineLatencyAndRate(t *testing.T) {
	// 1e9 pps -> 1ns slot; latency 400ns default.
	eng, _, sws := testRig(1, Config{Addr: 1, PipelinePPS: 1e9})
	sw := sws[0]
	var times []sim.Time
	sw.SetProgram(func(s *Switch, p *packet.Packet) Verdict { return Forward })
	sw.SetEgress(func(p *packet.Packet) { times = append(times, eng.Now()) })
	for i := 0; i < 3; i++ {
		sw.InjectPacket(mkPkt())
	}
	eng.Run()
	if len(times) != 3 {
		t.Fatalf("egress count %d", len(times))
	}
	if times[0] != sim.Time(400*time.Nanosecond) {
		t.Fatalf("first egress at %v", times[0])
	}
	// Subsequent packets spaced by 1ns slots.
	if times[1]-times[0] != 1 || times[2]-times[1] != 1 {
		t.Fatalf("spacing: %v", times)
	}
}

func TestQueueLimitTailDrop(t *testing.T) {
	eng, _, sws := testRig(1, Config{Addr: 1, PipelinePPS: 1e6, QueueLimit: 8})
	sw := sws[0]
	sw.SetProgram(func(s *Switch, p *packet.Packet) Verdict { return Drop })
	accepted := 0
	for i := 0; i < 100; i++ {
		if sw.InjectPacket(mkPkt()) {
			accepted++
		}
	}
	eng.Run()
	if accepted > 9 { // queue of 8 plus the in-service slot boundary
		t.Fatalf("accepted %d with queue limit 8", accepted)
	}
	if sw.Stats.QueueDrops.Value() != uint64(100-accepted) {
		t.Fatalf("queue drops = %d", sw.Stats.QueueDrops.Value())
	}
}

func TestRecirculation(t *testing.T) {
	eng, _, sws := testRig(1, Config{Addr: 1})
	sw := sws[0]
	sw.SetProgram(func(s *Switch, p *packet.Packet) Verdict {
		if p.Meta.Recirculated < 3 {
			return Recirculate
		}
		return Forward
	})
	done := false
	sw.SetEgress(func(p *packet.Packet) {
		done = true
		if p.Meta.Recirculated != 3 {
			t.Errorf("recirculated %d times", p.Meta.Recirculated)
		}
	})
	sw.InjectPacket(mkPkt())
	eng.Run()
	if !done {
		t.Fatal("packet never egressed")
	}
	if sw.Stats.Recirculated.Value() != 3 {
		t.Fatalf("recirc stat = %d", sw.Stats.Recirculated.Value())
	}
}

func TestPuntToControlPlane(t *testing.T) {
	eng, _, sws := testRig(1, Config{Addr: 1, CtrlLatency: time.Millisecond})
	sw := sws[0]
	sw.SetProgram(func(s *Switch, p *packet.Packet) Verdict { return ToControlPlane })
	var handledAt sim.Time
	sw.SetCtrlPacketHandler(func(p *packet.Packet) { handledAt = eng.Now() })
	sw.InjectPacket(mkPkt())
	eng.Run()
	if handledAt < sim.Time(time.Millisecond) {
		t.Fatalf("control handler ran at %v, before ctrl latency", handledAt)
	}
	if sw.Stats.Punted.Value() != 1 || sw.Stats.CtrlOps.Value() != 1 {
		t.Fatalf("stats: punted=%d ctrl=%d", sw.Stats.Punted.Value(), sw.Stats.CtrlOps.Value())
	}
}

func TestControlPlaneServiceRate(t *testing.T) {
	// 1000 ops/s -> 1ms per op; 10 ops take >= 10ms minus latency pipelining.
	eng, _, sws := testRig(1, Config{Addr: 1, CtrlOpsPerSec: 1000, CtrlLatency: 1})
	sw := sws[0]
	var last sim.Time
	for i := 0; i < 10; i++ {
		sw.CtrlDo(func() { last = eng.Now() })
	}
	eng.Run()
	if last < sim.Time(9*time.Millisecond) {
		t.Fatalf("10 ctrl ops finished at %v; service rate not enforced", last)
	}
}

func TestSendBetweenSwitches(t *testing.T) {
	eng, _, sws := testRig(1, Config{Addr: 1}, Config{Addr: 2})
	var got []wire.Msg
	sws[1].SetMsgHandler(func(s *Switch, from netem.Addr, m wire.Msg) {
		if from != 1 {
			t.Errorf("from = %d", from)
		}
		got = append(got, m)
	})
	sws[0].Send(2, &wire.Heartbeat{From: 1, Seq: 7})
	eng.Run()
	if len(got) != 1 {
		t.Fatalf("got %d msgs", len(got))
	}
	if got[0].(*wire.Heartbeat).Seq != 7 {
		t.Fatalf("msg = %+v", got[0])
	}
	if sws[1].Stats.MsgsHandled.Value() != 1 {
		t.Fatal("MsgsHandled")
	}
}

func TestMsgWithoutDataHandlerGoesToCtrl(t *testing.T) {
	eng, _, sws := testRig(1, Config{Addr: 1}, Config{Addr: 2})
	var ctrlGot wire.Msg
	sws[1].SetCtrlMsgHandler(func(from netem.Addr, m wire.Msg) { ctrlGot = m })
	sws[0].Send(2, &wire.Heartbeat{From: 1, Seq: 9})
	eng.Run()
	if ctrlGot == nil {
		t.Fatal("control-plane handler not invoked")
	}
}

func TestPacketSendBetweenSwitches(t *testing.T) {
	eng, _, sws := testRig(1, Config{Addr: 1}, Config{Addr: 2})
	n := 0
	sws[1].SetProgram(func(s *Switch, p *packet.Packet) Verdict { n++; return Drop })
	sws[0].SendPacket(2, mkPkt())
	eng.Run()
	if n != 1 {
		t.Fatalf("pipeline ran %d times", n)
	}
}

func TestMirror(t *testing.T) {
	eng, _, sws := testRig(1, Config{Addr: 1})
	sw := sws[0]
	var clone *packet.Packet
	orig := mkPkt()
	sw.SetProgram(func(s *Switch, p *packet.Packet) Verdict {
		s.Mirror(p, func(c *packet.Packet) { clone = c })
		return Forward
	})
	sw.SetEgress(func(p *packet.Packet) {})
	sw.InjectPacket(orig)
	eng.Run()
	if clone == nil {
		t.Fatal("mirror never ran")
	}
	if !clone.Meta.Mirrored {
		t.Fatal("clone not marked mirrored")
	}
	if clone == orig {
		t.Fatal("mirror did not clone")
	}
	if sw.Stats.Mirrored.Value() != 1 {
		t.Fatal("mirror stat")
	}
}

func TestMulticast(t *testing.T) {
	eng, _, sws := testRig(1, Config{Addr: 1}, Config{Addr: 2}, Config{Addr: 3})
	counts := map[netem.Addr]int{}
	for _, sw := range sws[1:] {
		sw := sw
		sw.SetMsgHandler(func(s *Switch, from netem.Addr, m wire.Msg) { counts[s.Addr()]++ })
	}
	sws[0].Multicast([]netem.Addr{1, 2, 3}, &wire.Heartbeat{From: 1})
	eng.Run()
	if counts[2] != 1 || counts[3] != 1 || counts[1] != 0 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestPacketGen(t *testing.T) {
	eng, _, sws := testRig(1, Config{Addr: 1})
	n := 0
	tk := sws[0].PacketGen(time.Millisecond, func() { n++ })
	// The handler runs one pipeline latency after each tick, so allow a
	// little slack past the 10th tick.
	eng.RunFor(10*time.Millisecond + time.Microsecond)
	if n != 10 {
		t.Fatalf("packet gen ran %d times", n)
	}
	tk.Stop()
	eng.RunFor(10 * time.Millisecond)
	if n != 10 {
		t.Fatal("packet gen ran after stop")
	}
}

func TestFailStop(t *testing.T) {
	eng, nw, sws := testRig(1, Config{Addr: 1}, Config{Addr: 2})
	sw := sws[0]
	ran := false
	sw.SetProgram(func(s *Switch, p *packet.Packet) Verdict { ran = true; return Drop })
	sw.Fail()
	if !sw.Failed() {
		t.Fatal("Failed()")
	}
	if sw.InjectPacket(mkPkt()) {
		t.Fatal("failed switch accepted packet")
	}
	sw.CtrlDo(func() { ran = true })
	sw.Send(2, &wire.Heartbeat{})
	sw.PacketGen(time.Millisecond, func() { ran = true })
	eng.RunFor(5 * time.Millisecond)
	if ran {
		t.Fatal("failed switch executed work")
	}
	if nw.NodeUp(1) {
		t.Fatal("failed switch still up in network")
	}
	// Messages sent to a failed switch are dropped.
	sws[1].Send(1, &wire.Heartbeat{})
	eng.Run()
}

func TestFailDuringFlight(t *testing.T) {
	// Packet accepted, switch fails before the pipeline event fires: no processing.
	eng, _, sws := testRig(1, Config{Addr: 1})
	sw := sws[0]
	ran := false
	sw.SetProgram(func(s *Switch, p *packet.Packet) Verdict { ran = true; return Drop })
	sw.InjectPacket(mkPkt())
	sw.Fail()
	eng.Run()
	if ran {
		t.Fatal("pipeline ran after fail-stop")
	}
}

func TestMemoryBudget(t *testing.T) {
	_, _, sws := testRig(1, Config{Addr: 1, MemoryBytes: 1000})
	sw := sws[0]
	r, err := sw.NewRegisterArray("a", 100, 8) // 800 bytes
	if err != nil {
		t.Fatal(err)
	}
	if sw.MemoryUsed() != 800 || sw.MemoryFree() != 200 {
		t.Fatalf("used/free = %d/%d", sw.MemoryUsed(), sw.MemoryFree())
	}
	if _, err := sw.NewRegisterArray("b", 100, 8); err == nil {
		t.Fatal("over-budget allocation succeeded")
	}
	r.Free()
	if sw.MemoryUsed() != 0 {
		t.Fatalf("used after free = %d", sw.MemoryUsed())
	}
	if _, err := sw.NewRegisterArray("c", 100, 8); err != nil {
		t.Fatalf("allocation after free failed: %v", err)
	}
}

func TestRegisterArrayOps(t *testing.T) {
	_, _, sws := testRig(1, Config{Addr: 1})
	r, err := sws[0].NewRegisterArray("r", 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	r.U64Set(2, 0xdeadbeefcafe)
	if r.U64Get(2) != 0xdeadbeefcafe {
		t.Fatalf("U64 = %#x", r.U64Get(2))
	}
	if got := r.U64Add(2, 2); got != 0xdeadbeefcb00 {
		t.Fatalf("U64Add = %#x", got)
	}
	r.Set(1, []byte{1, 2})
	got := r.Get(1)
	if got[0] != 1 || got[1] != 2 || got[7] != 0 {
		t.Fatalf("Set pad: %v", got)
	}
	if r.Entries() != 4 || r.Width() != 8 || r.Bytes() != 32 {
		t.Fatal("geometry")
	}
	// Mutating a Get copy must not affect the array.
	got[0] = 99
	if r.View(1)[0] != 1 {
		t.Fatal("Get returned aliased memory")
	}
}

func TestRegisterArrayPanics(t *testing.T) {
	_, _, sws := testRig(1, Config{Addr: 1})
	r, _ := sws[0].NewRegisterArray("r", 4, 8)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("oob", func() { r.Get(4) })
	mustPanic("neg", func() { r.Get(-1) })
	r.Free()
	mustPanic("freed", func() { r.Get(0) })
	if _, err := sws[0].NewRegisterArray("bad", 0, 8); err == nil {
		t.Error("zero entries accepted")
	}
}

func TestTable(t *testing.T) {
	_, _, sws := testRig(1, Config{Addr: 1})
	tb, err := sws[0].NewTable("t", 2, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(1, []byte{0xa}); err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(2, []byte{0xb}); err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(3, []byte{0xc}); err == nil {
		t.Fatal("insert beyond capacity succeeded")
	}
	// Overwrite existing is fine at capacity.
	if err := tb.Insert(1, []byte{0xd}); err != nil {
		t.Fatal(err)
	}
	v, ok := tb.Lookup(1)
	if !ok || v[0] != 0xd {
		t.Fatalf("lookup = %v %v", v, ok)
	}
	if _, ok := tb.Lookup(99); ok {
		t.Fatal("miss returned ok")
	}
	tb.Delete(1)
	if tb.Len() != 1 {
		t.Fatalf("len = %d", tb.Len())
	}
	seen := 0
	tb.Range(func(k uint64, v []byte) bool { seen++; return true })
	if seen != 1 {
		t.Fatalf("range saw %d", seen)
	}
	if tb.Capacity() != 2 || tb.Bytes() != 32 {
		t.Fatal("geometry")
	}
	tb.Free()
	if sws[0].MemoryUsed() != 0 {
		t.Fatal("table free did not release memory")
	}
}

func TestTableRangeEarlyStop(t *testing.T) {
	_, _, sws := testRig(1, Config{Addr: 1})
	tb, _ := sws[0].NewTable("t", 10, 8, 8)
	for i := uint64(0); i < 5; i++ {
		tb.Insert(i, nil)
	}
	seen := 0
	tb.Range(func(k uint64, v []byte) bool { seen++; return false })
	if seen != 1 {
		t.Fatalf("early stop saw %d", seen)
	}
}

func TestMeter(t *testing.T) {
	eng, _, sws := testRig(1, Config{Addr: 1})
	m, err := sws[0].NewMeter("m", 2, 1000, 100) // 1000 tokens/s, burst 100
	if err != nil {
		t.Fatal(err)
	}
	if m.Entries() != 2 {
		t.Fatal("entries")
	}
	// Burst allows 100 immediately.
	if !m.Allow(0, 100) {
		t.Fatal("burst denied")
	}
	if m.Allow(0, 1) {
		t.Fatal("empty bucket allowed")
	}
	// After 50ms, 50 tokens refilled.
	eng.RunFor(50 * time.Millisecond)
	if !m.Allow(0, 50) {
		t.Fatal("refill denied")
	}
	if m.Allow(0, 10) {
		t.Fatal("over-refill allowed")
	}
	// Cell 1 is independent.
	if !m.Allow(1, 100) {
		t.Fatal("independent cell denied")
	}
}

func TestCounterArray(t *testing.T) {
	_, _, sws := testRig(1, Config{Addr: 1})
	c, err := sws[0].NewCounterArray("c", 4)
	if err != nil {
		t.Fatal(err)
	}
	c.Inc(0, 5)
	c.Inc(0, 3)
	if c.Read(0) != 8 || c.Read(1) != 0 {
		t.Fatalf("counts = %d %d", c.Read(0), c.Read(1))
	}
	if c.Entries() != 4 {
		t.Fatal("entries")
	}
}

func TestHashIndexStableAndInRange(t *testing.T) {
	for _, size := range []int{1, 7, 1024} {
		for k := uint64(0); k < 1000; k++ {
			i := HashIndex(k, size)
			if i < 0 || i >= size {
				t.Fatalf("HashIndex(%d,%d) = %d", k, size, i)
			}
			if HashIndex(k, size) != i {
				t.Fatal("HashIndex not stable")
			}
		}
	}
	// Spread check: 1000 keys into 1024 buckets should hit many buckets.
	hit := map[int]bool{}
	for k := uint64(0); k < 1000; k++ {
		hit[HashIndex(k, 1024)] = true
	}
	if len(hit) < 400 {
		t.Fatalf("hash spread too poor: %d distinct buckets", len(hit))
	}
}

func TestAtomicityAcrossPackets(t *testing.T) {
	// §2: a packet's multiple writes are atomic — the next packet must see
	// either all or none. The model guarantees this by serializing pipeline
	// executions; this test asserts the invariant via a two-register write.
	eng, _, sws := testRig(1, Config{Addr: 1, PipelinePPS: 1e9})
	sw := sws[0]
	ra, _ := sw.NewRegisterArray("a", 1, 8)
	rb, _ := sw.NewRegisterArray("b", 1, 8)
	violations := 0
	sw.SetProgram(func(s *Switch, p *packet.Packet) Verdict {
		if ra.U64Get(0) != rb.U64Get(0) {
			violations++
		}
		ra.U64Add(0, 1)
		rb.U64Add(0, 1)
		return Drop
	})
	for i := 0; i < 1000; i++ {
		sw.InjectPacket(mkPkt())
	}
	eng.Run()
	if violations != 0 {
		t.Fatalf("%d atomicity violations", violations)
	}
	if ra.U64Get(0) != 1000 {
		t.Fatalf("count = %d", ra.U64Get(0))
	}
}

func BenchmarkPipeline(b *testing.B) {
	eng, _, sws := testRig(1, Config{Addr: 1})
	sw := sws[0]
	r, _ := sw.NewRegisterArray("r", 1024, 8)
	sw.SetProgram(func(s *Switch, p *packet.Packet) Verdict {
		r.U64Add(int(p.Meta.ArrivalSeq)&1023, 1)
		return Drop
	})
	pkt := mkPkt()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sw.InjectPacket(pkt)
		if i%1024 == 1023 {
			eng.Run()
		}
	}
	eng.Run()
}

func TestPuntWithoutCtrlHandlerIsSafe(t *testing.T) {
	eng, _, sws := testRig(1, Config{Addr: 1})
	sws[0].SetProgram(func(s *Switch, p *packet.Packet) Verdict { return ToControlPlane })
	sws[0].InjectPacket(mkPkt())
	eng.Run() // no handler installed: must not panic
	if sws[0].Stats.Punted.Value() != 1 {
		t.Fatal("punt not counted")
	}
}

func TestPuntMsgReachesCtrlHandler(t *testing.T) {
	eng, _, sws := testRig(1, Config{Addr: 1}, Config{Addr: 2})
	var got wire.Msg
	sws[0].SetCtrlMsgHandler(func(from netem.Addr, m wire.Msg) { got = m })
	sws[0].SetMsgHandler(func(s *Switch, from netem.Addr, m wire.Msg) {
		s.PuntMsg(from, m) // data plane defers to the co-processor
	})
	sws[1].Send(1, &wire.Heartbeat{From: 2, Seq: 3})
	eng.Run()
	if got == nil || got.(*wire.Heartbeat).Seq != 3 {
		t.Fatalf("punted msg = %v", got)
	}
}

func TestInjectEgress(t *testing.T) {
	eng, _, sws := testRig(1, Config{Addr: 1})
	var out []*packet.Packet
	sws[0].SetEgress(func(p *packet.Packet) { out = append(out, p) })
	if !sws[0].InjectEgress(mkPkt()) {
		t.Fatal("InjectEgress refused")
	}
	eng.Run()
	if len(out) != 1 {
		t.Fatal("packet not emitted")
	}
	if sws[0].Stats.Forwarded.Value() != 1 {
		t.Fatal("forwarded not counted")
	}
	sws[0].Fail()
	if sws[0].InjectEgress(mkPkt()) {
		t.Fatal("failed switch accepted InjectEgress")
	}
}

func TestSendPacketFromFailedSwitch(t *testing.T) {
	eng, _, sws := testRig(1, Config{Addr: 1}, Config{Addr: 2})
	n := 0
	sws[1].SetProgram(func(s *Switch, p *packet.Packet) Verdict { n++; return Drop })
	sws[0].Fail()
	sws[0].SendPacket(2, mkPkt())
	eng.Run()
	if n != 0 {
		t.Fatal("failed switch transmitted a packet")
	}
}

func TestPipelineRecyclesPooledPackets(t *testing.T) {
	eng, _, sws := testRig(1, Config{Addr: 1})
	sw := sws[0]
	pl := sw.PacketPool()
	k := packet.FlowKey{Src: packet.Addr4(1, 1, 1, 1), Dst: packet.Addr4(2, 2, 2, 2),
		SrcPort: 9, DstPort: 80, Proto: packet.ProtoTCP}

	// Drop verdict returns the packet to the pool.
	sw.SetProgram(func(s *Switch, p *packet.Packet) Verdict { return Drop })
	sw.InjectPacket(pl.ForFlow(k, 0, 32))
	eng.Run()
	if pl.Free() != 1 {
		t.Fatalf("pool free = %d after drop, want 1", pl.Free())
	}

	// Forward with no egress hook also ends the packet's life.
	sw.SetProgram(func(s *Switch, p *packet.Packet) Verdict { return Forward })
	sw.InjectPacket(pl.ForFlow(k, 0, 32))
	eng.Run()
	if pl.Free() != 1 {
		t.Fatalf("pool free = %d after egress-less forward, want 1", pl.Free())
	}

	// An egress hook takes ownership and may recycle explicitly.
	got := 0
	sw.SetEgress(func(p *packet.Packet) { got++; p.Recycle() })
	sw.InjectPacket(pl.ForFlow(k, 0, 32))
	eng.Run()
	if got != 1 || pl.Free() != 1 {
		t.Fatalf("egress got %d, pool free %d; want 1, 1", got, pl.Free())
	}
}

func TestPipelineSteadyStateZeroAllocs(t *testing.T) {
	eng, _, sws := testRig(1, Config{Addr: 1})
	sw := sws[0]
	pl := sw.PacketPool()
	k := packet.FlowKey{Src: packet.Addr4(1, 1, 1, 1), Dst: packet.Addr4(2, 2, 2, 2),
		SrcPort: 9, DstPort: 80, Proto: packet.ProtoTCP}
	sw.SetProgram(func(s *Switch, p *packet.Packet) Verdict { return Drop })
	// Warm the packet, task, and event pools.
	for i := 0; i < 64; i++ {
		sw.InjectPacket(pl.ForFlow(k, 0, 64))
	}
	eng.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		sw.InjectPacket(pl.ForFlow(k, 0, 64))
		eng.Run()
	})
	if allocs != 0 {
		t.Fatalf("pipeline processes a pooled packet with %v allocs per run, want 0", allocs)
	}
}

func TestMirrorCloneIsPooled(t *testing.T) {
	eng, _, sws := testRig(1, Config{Addr: 1})
	sw := sws[0]
	orig := mkPkt()
	var clone *packet.Packet
	sw.SetProgram(func(s *Switch, p *packet.Packet) Verdict {
		s.Mirror(p, func(c *packet.Packet) { clone = c })
		return Drop
	})
	sw.InjectPacket(orig)
	eng.Run()
	if clone == nil || !clone.Pooled() {
		t.Fatal("mirror clone should come from the switch packet pool")
	}
	if !clone.Meta.Mirrored {
		t.Fatal("mirror clone not marked")
	}
	clone.Recycle()
	if sw.PacketPool().Free() != 1 {
		t.Fatal("recycled mirror clone did not return to the switch pool")
	}
}
